package fxdist_test

import (
	"testing"

	"fxdist"
)

// Sweep the thin facade wrappers that the deeper tests reach only through
// internal packages, so the public surface is exercised end to end.
func TestFacadeCoverage(t *testing.T) {
	// Paper spec constructors.
	for _, ts := range []fxdist.TableSpec{
		fxdist.PaperTable7(), fxdist.PaperTable8(), fxdist.PaperTable9(),
	} {
		if len(ts.Methods) != 5 {
			t.Errorf("%s: %d methods", ts.Name, len(ts.Methods))
		}
	}
	for _, fig := range []fxdist.FigureSpec{
		fxdist.PaperFigure1(), fxdist.PaperFigure2(),
		fxdist.PaperFigure3(), fxdist.PaperFigure4(),
	} {
		if fig.N != 6 && fig.N != 10 {
			t.Errorf("%s: n = %d", fig.Name, fig.N)
		}
	}

	fs := mustFS(t, []int{4, 4}, 16)
	fx, err := fxdist.NewFX(fs, fxdist.WithKinds([]fxdist.Kind{fxdist.I, fxdist.U}))
	if err != nil {
		t.Fatal(err)
	}
	if e, err := fxdist.ExpectedLargestResponse(fx, []float64{0.5, 0.5}); err != nil || e < 1 {
		t.Errorf("ExpectedLargestResponse = %v, %v", e, err)
	}

	// Growth planning through the facade.
	oldFX, _ := fxdist.NewBasicFX(mustFS(t, []int{4, 4}, 16))
	newFX, _ := fxdist.NewBasicFX(mustFS(t, []int{8, 4}, 16))
	plan, err := fxdist.PlanGrowth(oldFX, newFX, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total != 32 {
		t.Errorf("growth total = %d", plan.Total)
	}

	// Closed-loop queueing through the facade.
	pool, err := fxdist.QueryLoadPool(fx, []fxdist.Query{fxdist.AllQuery(2)})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := fxdist.RunClosedQueue(pool, 2, 10, fxdist.MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Makespan <= 0 {
		t.Error("closed queue makespan not positive")
	}

	// Custom field hash through the facade.
	constant := fxdist.FieldHash(func(string) uint64 { return 1 })
	file, err := fxdist.NewFile(fxdist.Schema{
		Fields: []string{"k"}, Depths: []int{2},
	}, fxdist.WithFieldHash(0, constant))
	if err != nil {
		t.Fatal(err)
	}
	if err := file.Insert(fxdist.Record{"anything"}); err != nil {
		t.Fatal(err)
	}
	b, _ := file.BucketOf(fxdist.Record{"other"})
	if b[0] != 1 {
		t.Errorf("custom hash ignored: %v", b)
	}
}

// Replicated cluster and device-server wrappers.
func TestFacadeReplicationSurface(t *testing.T) {
	file := buildTestFile(t)
	fs, _ := file.FileSystem(4)
	fx, _ := fxdist.NewFX(fs)

	rc, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx},
		fxdist.WithReplication(fxdist.ChainedFailover))
	if err != nil {
		t.Fatal(err)
	}
	if rc.Kind() != fxdist.KindReplicated {
		t.Fatalf("kind = %q, want replicated", rc.Kind())
	}
	if err := rc.Replicated().Fail(1); err != nil {
		t.Fatal(err)
	}
	pm, _ := file.Spec(map[string]string{"b": "b-2"})
	want, _ := file.Search(pm)
	got, err := rc.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want) {
		t.Errorf("replicated retrieve %d records, want %d", len(got.Records), len(want))
	}

	// Manual server construction via the facade.
	spec, err := fxdist.DescribeAllocator(fx)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := fxdist.PartitionFile(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fxdist.NewDeviceServer(0, spec, parts[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := fxdist.NewReplicatedDeviceServer(1, spec, parts[1], parts[0]); err != nil {
		t.Fatal(err)
	}

	// Durable cluster create + reopen through Open.
	dir := t.TempDir()
	dc, err := fxdist.Open(fxdist.Config{Dir: dir, File: file, Allocator: fx})
	if err != nil {
		t.Fatal(err)
	}
	dc.Close()
	re, err := fxdist.Open(fxdist.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Durable().Len() != file.Len() {
		t.Errorf("reopened %d records, want %d", re.Durable().Len(), file.Len())
	}
}

// ResponseTimeTable through the facade: the §5.2.1 composite on disks.
func TestFacadeResponseTimeTable(t *testing.T) {
	fs := mustFS(t, []int{4, 4}, 16)
	fx, _ := fxdist.NewFX(fs)
	md := fxdist.NewModulo(fs)
	rows := fxdist.ResponseTimeTable(fs, []fxdist.GroupAllocator{md, fx}, []int{2},
		fxdist.ParallelDisk.PerQuery, fxdist.ParallelDisk.PerBucket)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Avg[1] >= rows[0].Avg[0] {
		t.Errorf("FX response %v not below Modulo %v", rows[0].Avg[1], rows[0].Avg[0])
	}
}
