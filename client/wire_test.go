package client

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"fxdist"
)

// TestErrorCodeWireRoundTrip drives every taxonomy code through the
// exact JSON that crosses the fxgate wire — FromError → marshal →
// unmarshal → Err() — and asserts the taxonomy survives byte-for-byte,
// including the device/trace/coverage/retry-after payload. The numeric
// JSON-RPC codes are asserted against literals: they are part of the
// public contract, and this table is what fails if someone renumbers.
func TestErrorCodeWireRoundTrip(t *testing.T) {
	cases := []struct {
		code fxdist.ErrorCode
		wire int
	}{
		{fxdist.ErrCodeInvalidQuery, -32602},
		{fxdist.ErrCodeUnknownMethod, -32601},
		{fxdist.ErrCodeInternal, -32603},
		{fxdist.ErrCodeUnauthorized, -32001},
		{fxdist.ErrCodeRateLimited, -32002},
		{fxdist.ErrCodeOverloaded, -32003},
		{fxdist.ErrCodeTimeout, -32004},
		{fxdist.ErrCodeCanceled, -32005},
		{fxdist.ErrCodeDeviceFailure, -32006},
		{fxdist.ErrCodePartialResult, -32007},
		{fxdist.ErrCodeBreakerOpen, -32008},
		{fxdist.ErrCodeFaultInjected, -32009},
	}
	for _, tc := range cases {
		t.Run(string(tc.code), func(t *testing.T) {
			in := &fxdist.Error{
				Code:       tc.code,
				Message:    "message for " + string(tc.code),
				Device:     3,
				TraceID:    0xfeed,
				Coverage:   0.75,
				RetryAfter: 1500 * time.Millisecond,
			}
			if got := WireCode(tc.code); got != tc.wire {
				t.Fatalf("WireCode(%s) = %d, want %d", tc.code, got, tc.wire)
			}
			obj := FromError(in)
			if obj.Code != tc.wire {
				t.Fatalf("FromError code = %d, want %d", obj.Code, tc.wire)
			}
			raw, err := json.Marshal(Response{JSONRPC: "2.0", Error: obj})
			if err != nil {
				t.Fatal(err)
			}
			var res Response
			if err := json.Unmarshal(raw, &res); err != nil {
				t.Fatal(err)
			}
			out := res.Error.Err()
			if out.Code != tc.code {
				t.Fatalf("round-tripped code = %s, want %s", out.Code, tc.code)
			}
			if out.Message != in.Message {
				t.Fatalf("message = %q, want %q", out.Message, in.Message)
			}
			if out.Device != 3 || out.TraceID != 0xfeed || out.Coverage != 0.75 {
				t.Fatalf("payload drifted: %+v", out)
			}
			if out.RetryAfter != 1500*time.Millisecond {
				t.Fatalf("retry-after = %v, want 1.5s", out.RetryAfter)
			}
			// The taxonomy type must keep working with errors.As through
			// wrapping, exactly like in-process errors.
			wrapped := &fxdist.Error{Code: fxdist.ErrCodeInternal, Message: "outer", Device: -1, Err: out}
			var target *fxdist.Error
			if !errors.As(wrapped, &target) {
				t.Fatal("errors.As failed on wrapped *fxdist.Error")
			}
		})
	}
}

// TestErrorObjectNumericFallback covers a foreign server that sends no
// taxonomy data: the numeric code alone must still classify.
func TestErrorObjectNumericFallback(t *testing.T) {
	cases := []struct {
		wire int
		want fxdist.ErrorCode
	}{
		{-32601, fxdist.ErrCodeUnknownMethod},
		{-32602, fxdist.ErrCodeInvalidQuery},
		{-32600, fxdist.ErrCodeInvalidQuery},
		{-32700, fxdist.ErrCodeInvalidQuery},
		{-32603, fxdist.ErrCodeInternal},
		{-31999, fxdist.ErrCodeInternal}, // unknown numeric space
	}
	for _, tc := range cases {
		e := (&ErrorObject{Code: tc.wire, Message: "m"}).Err()
		if e.Code != tc.want {
			t.Fatalf("numeric %d classified as %s, want %s", tc.wire, e.Code, tc.want)
		}
		if e.Device != -1 {
			t.Fatalf("device should default to -1, got %d", e.Device)
		}
	}
}

// TestDeviceZeroSurvivesWire pins the regression where device 0 (a
// perfectly valid device id) is dropped by omitempty semantics.
func TestDeviceZeroSurvivesWire(t *testing.T) {
	in := &fxdist.Error{Code: fxdist.ErrCodeDeviceFailure, Message: "dev 0 down", Device: 0}
	raw, err := json.Marshal(FromError(in))
	if err != nil {
		t.Fatal(err)
	}
	var obj ErrorObject
	if err := json.Unmarshal(raw, &obj); err != nil {
		t.Fatal(err)
	}
	if out := obj.Err(); out.Device != 0 {
		t.Fatalf("device 0 became %d across the wire", out.Device)
	}
}
