package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"fxdist"
)

// rateLimitingServer rejects the first reject calls with a JSON-RPC
// 429-class error carrying a Retry-After hint, then answers.
func rateLimitingServer(t *testing.T, reject int, hint time.Duration) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("bad request: %v", err)
		}
		w.Header().Set("Content-Type", "application/json")
		if int(n) <= reject {
			e := fxdist.NewError(fxdist.ErrCodeRateLimited, "tenant over budget")
			e.RetryAfter = hint
			w.WriteHeader(http.StatusTooManyRequests)
			resp := Response{JSONRPC: "2.0", ID: req.ID, Error: FromError(e)}
			if err := json.NewEncoder(w).Encode(&resp); err != nil {
				t.Error(err)
			}
			return
		}
		result, _ := json.Marshal(RetrieveResult{APIVersion: APIVersion, Records: [][]string{{"a", "b"}}})
		resp := Response{JSONRPC: "2.0", ID: req.ID, Result: result}
		if err := json.NewEncoder(w).Encode(&resp); err != nil {
			t.Error(err)
		}
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestRetryOn429HonorsRetryAfter(t *testing.T) {
	srv, calls := rateLimitingServer(t, 2, 10*time.Millisecond)
	c := New(srv.URL, WithRetryOn429(4, time.Second))
	defer c.Close()

	start := time.Now()
	res, err := c.Retrieve(context.Background(), map[string]string{"part": "p1"})
	if err != nil {
		t.Fatalf("retries exhausted: %v", err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("got %v", res.Records)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	// Two rejections, each with a 10ms hint: the client must have slept
	// at least that long in total.
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("client returned after %v, ignored Retry-After", waited)
	}
}

func TestRetryOn429DisabledByDefault(t *testing.T) {
	srv, calls := rateLimitingServer(t, 1, time.Millisecond)
	c := New(srv.URL)
	defer c.Close()

	_, err := c.Retrieve(context.Background(), map[string]string{"part": "p1"})
	var fe *fxdist.Error
	if !errors.As(err, &fe) || fe.Code != fxdist.ErrCodeRateLimited {
		t.Fatalf("got %v, want rate_limited", err)
	}
	if fe.RetryAfter != time.Millisecond {
		t.Fatalf("RetryAfter %v not surfaced", fe.RetryAfter)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry configured)", got)
	}
}

func TestRetryOn429RespectsAttemptCeiling(t *testing.T) {
	srv, calls := rateLimitingServer(t, 100, time.Millisecond)
	c := New(srv.URL, WithRetryOn429(3, time.Second))
	defer c.Close()

	_, err := c.Retrieve(context.Background(), map[string]string{"part": "p1"})
	var fe *fxdist.Error
	if !errors.As(err, &fe) || fe.Code != fxdist.ErrCodeRateLimited {
		t.Fatalf("got %v, want rate_limited", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want exactly maxAttempts", got)
	}
}

func TestRetryOn429RespectsWaitBudget(t *testing.T) {
	// The server demands 10s per retry; a 50ms budget must give up
	// immediately rather than sleep.
	srv, calls := rateLimitingServer(t, 100, 10*time.Second)
	c := New(srv.URL, WithRetryOn429(5, 50*time.Millisecond))
	defer c.Close()

	start := time.Now()
	_, err := c.Retrieve(context.Background(), map[string]string{"part": "p1"})
	if err == nil {
		t.Fatal("succeeded against a permanently limiting server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("client slept %v past its wait budget", elapsed)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (hint exceeds budget)", got)
	}
}

func TestRetryOn429DoesNotRetryOtherErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		var req Request
		_ = json.NewDecoder(r.Body).Decode(&req)
		w.Header().Set("Content-Type", "application/json")
		resp := Response{JSONRPC: "2.0", ID: req.ID,
			Error: FromError(fxdist.NewError(fxdist.ErrCodeInvalidQuery, "unknown field"))}
		_ = json.NewEncoder(w).Encode(&resp)
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetryOn429(5, time.Second))
	defer c.Close()

	_, err := c.Retrieve(context.Background(), map[string]string{"bogus": "x"})
	var fe *fxdist.Error
	if !errors.As(err, &fe) || fe.Code != fxdist.ErrCodeInvalidQuery {
		t.Fatalf("got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls for a non-retryable error", got)
	}
}

func TestRetryOn429ContextCancel(t *testing.T) {
	srv, _ := rateLimitingServer(t, 100, 10*time.Second)
	c := New(srv.URL, WithRetryOn429(5, 0)) // no wait cap: only ctx stops it
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Retrieve(ctx, map[string]string{"part": "p1"})
	var fe *fxdist.Error
	if !errors.As(err, &fe) || fe.Code != fxdist.ErrCodeTimeout {
		t.Fatalf("got %v, want timeout from the canceled wait", err)
	}
}
