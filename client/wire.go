// Package client is the public client contract of the fxgate serving
// tier: the JSON-RPC 2.0 envelope, the versioned request/response
// types of every fx.* method, and a small HTTP client speaking them
// over persistent connections. These types ARE the wire format — the
// gateway (internal/gate, cmd/fxgate) marshals exactly these structs,
// so embedding this package is all a Go caller needs to talk to a
// cluster's front door, and the JSON shapes double as the contract for
// non-Go clients (see README "Serving tier" for curl examples).
//
// Errors cross the wire as the unified fxdist.Error taxonomy: every
// JSON-RPC error object carries the stable machine-readable code in
// its data, and the client folds it back into a *fxdist.Error, so
// errors.As-based handling is identical in-process and remote.
package client

import (
	"encoding/json"
	"time"

	"fxdist"
)

// APIVersion stamps every result envelope. It only changes on an
// incompatible redesign of the method surface; additive fields do not
// bump it.
const APIVersion = "fx/v1"

// The gateway's method registry. Method names are part of the wire
// contract.
const (
	MethodRetrieve      = "fx.retrieve"
	MethodRetrieveBatch = "fx.retrieveBatch"
	MethodExplain       = "fx.explain"
	MethodHealth        = "fx.health"
)

// Request is one JSON-RPC 2.0 request frame.
type Request struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id,omitempty"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params,omitempty"`
}

// Response is one JSON-RPC 2.0 response frame; exactly one of Result
// and Error is set.
type Response struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   *ErrorObject    `json:"error,omitempty"`
}

// ErrorObject is the JSON-RPC error member. Code follows the JSON-RPC
// numeric conventions; Data carries the fxdist taxonomy, which is the
// source of truth (the numeric code is derived from it).
type ErrorObject struct {
	Code    int        `json:"code"`
	Message string     `json:"message"`
	Data    *ErrorData `json:"data,omitempty"`
}

// ErrorData is the taxonomy payload of a wire error.
type ErrorData struct {
	// Code is the stable fxdist.ErrorCode string.
	Code string `json:"code"`
	// Device is the failing device id; omitted when the failure is not
	// device-scoped.
	Device *int `json:"device,omitempty"`
	// TraceID joins the failure against the serving node's
	// /debug/traces.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Coverage is the served fraction of |R(q)| on partial_result.
	Coverage float64 `json:"coverage,omitempty"`
	// RetryAfterMillis mirrors the HTTP Retry-After hint for
	// rate_limited/overloaded rejections.
	RetryAfterMillis int64 `json:"retry_after_ms,omitempty"`
}

// JSON-RPC numeric codes. The -32601/-32602/-32603 values are the
// spec's; taxonomy codes with no spec equivalent map into the
// implementation-defined -32000..-32099 server-error range. Stable.
const (
	codeParse          = -32700
	codeInvalidRequest = -32600
	codeMethodNotFound = -32601
	codeInvalidParams  = -32602
	codeInternal       = -32603
)

var wireCodes = map[fxdist.ErrorCode]int{
	fxdist.ErrCodeInvalidQuery:  codeInvalidParams,
	fxdist.ErrCodeUnknownMethod: codeMethodNotFound,
	fxdist.ErrCodeInternal:      codeInternal,
	fxdist.ErrCodeUnauthorized:  -32001,
	fxdist.ErrCodeRateLimited:   -32002,
	fxdist.ErrCodeOverloaded:    -32003,
	fxdist.ErrCodeTimeout:       -32004,
	fxdist.ErrCodeCanceled:      -32005,
	fxdist.ErrCodeDeviceFailure: -32006,
	fxdist.ErrCodePartialResult: -32007,
	fxdist.ErrCodeBreakerOpen:   -32008,
	fxdist.ErrCodeFaultInjected: -32009,
}

// ParseError builds the envelope-level JSON-RPC parse error (-32700).
func ParseError(msg string) *ErrorObject {
	return &ErrorObject{Code: codeParse, Message: msg,
		Data: &ErrorData{Code: string(fxdist.ErrCodeInvalidQuery)}}
}

// InvalidRequestError builds the envelope-level invalid-request error
// (-32600): a frame that is not a well-formed JSON-RPC 2.0 request.
func InvalidRequestError(msg string) *ErrorObject {
	return &ErrorObject{Code: codeInvalidRequest, Message: msg,
		Data: &ErrorData{Code: string(fxdist.ErrCodeInvalidQuery)}}
}

// WireCode returns the JSON-RPC numeric code for a taxonomy code
// (unknown codes map to the internal-error code).
func WireCode(code fxdist.ErrorCode) int {
	if c, ok := wireCodes[code]; ok {
		return c
	}
	return codeInternal
}

// FromError projects a classified fxdist error onto the wire.
func FromError(e *fxdist.Error) *ErrorObject {
	if e == nil {
		return nil
	}
	data := &ErrorData{
		Code:     string(e.Code),
		TraceID:  e.TraceID,
		Coverage: e.Coverage,
	}
	if e.Device >= 0 {
		dev := e.Device
		data.Device = &dev
	}
	if e.RetryAfter > 0 {
		data.RetryAfterMillis = e.RetryAfter.Milliseconds()
	}
	return &ErrorObject{Code: WireCode(e.Code), Message: e.Message, Data: data}
}

// Err folds a wire error back into the unified taxonomy. The numeric
// code is only consulted when the taxonomy data is missing (a foreign
// or pre-taxonomy server).
func (o *ErrorObject) Err() *fxdist.Error {
	if o == nil {
		return nil
	}
	e := &fxdist.Error{Code: fxdist.ErrCodeInternal, Message: o.Message, Device: -1}
	if o.Data != nil && o.Data.Code != "" {
		e.Code = fxdist.ErrorCode(o.Data.Code)
		e.TraceID = o.Data.TraceID
		e.Coverage = o.Data.Coverage
		if o.Data.Device != nil {
			e.Device = *o.Data.Device
		}
		if o.Data.RetryAfterMillis > 0 {
			e.RetryAfter = time.Duration(o.Data.RetryAfterMillis) * time.Millisecond
		}
		return e
	}
	switch o.Code {
	case codeMethodNotFound:
		e.Code = fxdist.ErrCodeUnknownMethod
	case codeInvalidParams, codeInvalidRequest, codeParse:
		e.Code = fxdist.ErrCodeInvalidQuery
	}
	return e
}

// RetrieveParams are the fx.retrieve / fx.explain parameters: field
// name → required value; unmentioned fields are unspecified.
type RetrieveParams struct {
	Query map[string]string `json:"query"`
}

// BatchParams are the fx.retrieveBatch parameters.
type BatchParams struct {
	Queries []map[string]string `json:"queries"`
}

// RetrieveResult is the fx.retrieve result envelope.
type RetrieveResult struct {
	APIVersion string `json:"api_version"`
	// Records are the matching records, field values in schema order.
	Records [][]string `json:"records"`
	// DeviceBuckets[i] is the number of qualified buckets device i
	// accessed — the paper's per-device response size.
	DeviceBuckets []int `json:"device_buckets"`
	// LargestResponseSize is max(DeviceBuckets); the strict-optimality
	// bound says it never exceeds ceil(rq/m) on an FX cluster.
	LargestResponseSize int `json:"largest_response_size"`
	// TraceID joins the retrieval against the serving node's traces.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Coalesced reports that the gateway served this request as part of
	// a cross-tenant batch of BatchSize shape-grouped queries (one plan
	// compilation, one engine fan-out wave).
	Coalesced bool `json:"coalesced,omitempty"`
	BatchSize int  `json:"batch_size,omitempty"`
}

// BatchItem is one query's outcome inside a fx.retrieveBatch result:
// exactly one of Result and Error is set.
type BatchItem struct {
	Result *RetrieveResult `json:"result,omitempty"`
	Error  *ErrorObject    `json:"error,omitempty"`
}

// BatchResult is the fx.retrieveBatch result envelope; Items is
// index-aligned with the request's Queries.
type BatchResult struct {
	APIVersion string      `json:"api_version"`
	Items      []BatchItem `json:"items"`
}

// ExplainResult is the fx.explain result envelope: the compiled plan's
// view of a query without running it.
type ExplainResult struct {
	APIVersion string `json:"api_version"`
	// Shape is the query-shape key ('s' per specified field, '*' per
	// unspecified) — the unit of plan caching, coalescing and auditing.
	Shape string `json:"shape"`
	// RQ is |R(q)|, Bound the paper's ceil(|R(q)|/M), M the device
	// count.
	RQ    int `json:"rq"`
	Bound int `json:"bound"`
	M     int `json:"m"`
	// DeviceLoads[i] is the exact number of qualified buckets device i
	// would access; present only when the gateway knows the allocator.
	DeviceLoads []int `json:"device_loads,omitempty"`
	// PlanCached reports whether the shape's compiled plan is resident
	// in the serving cluster's plan cache right now.
	PlanCached bool `json:"plan_cached"`
}

// HealthResult is the fx.health result envelope.
type HealthResult struct {
	APIVersion string `json:"api_version"`
	Status     string `json:"status"`
	// Backend is the serving cluster's kind: memory, durable,
	// replicated or netdist.
	Backend string `json:"backend"`
	M       int    `json:"m"`
	// Fields are the schema's field names, in order.
	Fields        []string `json:"fields"`
	UptimeSeconds float64  `json:"uptime_seconds"`
}
