package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"fxdist"
)

// Client talks JSON-RPC 2.0 to an fxgate endpoint over persistent
// (keep-alive) HTTP connections. It is safe for concurrent use; a
// single Client multiplexes any number of in-flight calls over the
// transport's connection pool.
type Client struct {
	endpoint      string
	apiKey        string
	httpc         *http.Client
	nextID        atomic.Uint64
	retryAttempts int
	retryMaxWait  time.Duration
}

// Option configures New.
type Option func(*Client)

// WithAPIKey authenticates every request as the tenant owning key
// (sent as a Bearer token).
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// WithHTTPClient substitutes the underlying HTTP client (custom
// transport, TLS, proxies). The default keeps connections alive and
// applies no overall timeout — use context deadlines per call.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.httpc = h }
}

// WithRetryOn429 retries calls the gateway rejected with a 429-class
// error (rate_limited or overloaded), sleeping the server's Retry-After
// hint between attempts — the cooperative half of the gateway's
// admission control. maxAttempts counts total tries (values below 2
// disable retrying); maxWait caps the cumulative time spent sleeping,
// after which the last rejection is returned as is (zero means no cap).
// Rejections carrying no hint back off exponentially from 25ms. Other
// error classes are never retried here: device-level retry policy
// belongs to the cluster's retry controller, not the edge client.
func WithRetryOn429(maxAttempts int, maxWait time.Duration) Option {
	return func(c *Client) {
		c.retryAttempts = maxAttempts
		c.retryMaxWait = maxWait
	}
}

// New builds a client for an fxgate RPC endpoint, e.g.
// "http://127.0.0.1:8080/rpc".
func New(endpoint string, opts ...Option) *Client {
	c := &Client{endpoint: endpoint, httpc: &http.Client{}}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// call runs one JSON-RPC request, retrying 429-class rejections per the
// client's WithRetryOn429 policy, and unmarshals the result into out.
func (c *Client) call(ctx context.Context, method string, params any, out any) error {
	var waited time.Duration
	for attempt := 1; ; attempt++ {
		err := c.callOnce(ctx, method, params, out)
		if err == nil || attempt >= c.retryAttempts {
			return err
		}
		var fe *fxdist.Error
		if !errors.As(err, &fe) ||
			(fe.Code != fxdist.ErrCodeRateLimited && fe.Code != fxdist.ErrCodeOverloaded) {
			return err
		}
		delay := fe.RetryAfter
		if delay <= 0 {
			delay = 25 * time.Millisecond << (attempt - 1)
		}
		if c.retryMaxWait > 0 && waited+delay > c.retryMaxWait {
			return err
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return classifyTransport(ctx, ctx.Err())
		}
		waited += delay
	}
}

// callOnce runs one JSON-RPC round trip.
func (c *Client) callOnce(ctx context.Context, method string, params any, out any) error {
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("client: marshal params: %w", err)
		}
		raw = b
	}
	id := c.nextID.Add(1)
	req := Request{
		JSONRPC: "2.0",
		ID:      json.RawMessage(strconv.FormatUint(id, 10)),
		Method:  method,
		Params:  raw,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("client: marshal request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.apiKey != "" {
		hreq.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	hres, err := c.httpc.Do(hreq)
	if err != nil {
		return classifyTransport(ctx, err)
	}
	defer hres.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hres.Body, 64<<20))
	if err != nil {
		return classifyTransport(ctx, err)
	}
	var res Response
	if err := json.Unmarshal(data, &res); err != nil {
		// No JSON-RPC envelope at all: surface the HTTP status.
		e := fxdist.NewError(fxdist.ErrCodeInternal,
			fmt.Sprintf("HTTP %d: %.200s", hres.StatusCode, data))
		if ra := retryAfterHeader(hres); ra > 0 {
			e.Code = fxdist.ErrCodeOverloaded
			e.RetryAfter = ra
		}
		return e
	}
	if res.Error != nil {
		e := res.Error.Err()
		if e.RetryAfter == 0 {
			e.RetryAfter = retryAfterHeader(hres)
		}
		return e
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(res.Result, out); err != nil {
		return fxdist.NewError(fxdist.ErrCodeInternal, "malformed result: "+err.Error())
	}
	return nil
}

// classifyTransport folds transport-level failures onto the taxonomy.
func classifyTransport(ctx context.Context, err error) error {
	e := fxdist.Classify(err)
	if ctx.Err() == context.DeadlineExceeded {
		e.Code = fxdist.ErrCodeTimeout
	} else if ctx.Err() == context.Canceled {
		e.Code = fxdist.ErrCodeCanceled
	}
	return e
}

// retryAfterHeader parses an HTTP Retry-After delay (seconds form).
func retryAfterHeader(res *http.Response) time.Duration {
	v := res.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil && secs > 0 {
		return time.Duration(secs * float64(time.Second))
	}
	return 0
}

// Retrieve answers one partial match query: field name → required
// value; unmentioned fields are unspecified. Failures are *fxdist.Error
// values carrying the taxonomy code from the wire.
func (c *Client) Retrieve(ctx context.Context, query map[string]string) (*RetrieveResult, error) {
	var out RetrieveResult
	if err := c.call(ctx, MethodRetrieve, RetrieveParams{Query: query}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RetrieveBatch answers a batch of queries in one round trip; the
// result's Items are index-aligned with queries, each carrying either
// a result or a per-query error.
func (c *Client) RetrieveBatch(ctx context.Context, queries []map[string]string) (*BatchResult, error) {
	var out BatchResult
	if err := c.call(ctx, MethodRetrieveBatch, BatchParams{Queries: queries}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Explain reports the compiled plan's view of a query — shape, |R(q)|,
// the strict bound, per-device loads when known — without running it.
func (c *Client) Explain(ctx context.Context, query map[string]string) (*ExplainResult, error) {
	var out ExplainResult
	if err := c.call(ctx, MethodExplain, RetrieveParams{Query: query}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health reports the serving cluster's identity and liveness.
func (c *Client) Health(ctx context.Context) (*HealthResult, error) {
	var out HealthResult
	if err := c.call(ctx, MethodHealth, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Close releases idle connections held by the default transport.
func (c *Client) Close() {
	c.httpc.CloseIdleConnections()
}
