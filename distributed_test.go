package fxdist_test

import (
	"bytes"
	"testing"
	"time"

	"fxdist"
)

func buildTestFile(t *testing.T) *fxdist.File {
	t.Helper()
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "a", Cardinality: 60},
		{Name: "b", Cardinality: 15},
	}}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{3, 2}))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := fxdist.GenerateRecords(spec, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := file.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return file
}

func TestPublicDistributedRetrieval(t *testing.T) {
	file := buildTestFile(t)
	fs, err := file.FileSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	addrs, stop, err := fxdist.DeployLocal(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	coord, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	pm, err := file.Spec(map[string]string{"b": "b-3"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	want, err := file.Search(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want) {
		t.Errorf("distributed %d records, local %d", len(got.Records), len(want))
	}
}

func TestPublicReplicatedFailover(t *testing.T) {
	file := buildTestFile(t)
	fs, _ := file.FileSystem(4)
	fx, _ := fxdist.NewFX(fs)
	addrs, stop, err := fxdist.DeployReplicatedLocal(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	coord, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs},
		fxdist.WithDialTimeout(5e9), fxdist.WithFailover())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	pm, _ := file.Spec(map[string]string{"b": "b-5"})
	want, _ := file.Search(pm)
	got, err := coord.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want) {
		t.Errorf("failover retrieve %d records, want %d", len(got.Records), len(want))
	}
}

func TestPublicAllocatorSpecRoundTrip(t *testing.T) {
	fs, _ := fxdist.NewFileSystem([]int{4, 8}, 8)
	fx, _ := fxdist.NewFX(fs)
	spec, err := fxdist.DescribeAllocator(fx)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := fxdist.BuildAllocator(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Name() != fx.Name() {
		t.Errorf("rebuilt %q, want %q", rebuilt.Name(), fx.Name())
	}
}

func TestPublicSnapshotRoundTrip(t *testing.T) {
	file := buildTestFile(t)
	fs, _ := file.FileSystem(4)
	fx, _ := fxdist.NewFX(fs)
	var buf bytes.Buffer
	if err := fxdist.SaveSnapshot(&buf, file, fx); err != nil {
		t.Fatal(err)
	}
	restored, alloc, err := fxdist.LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != file.Len() || alloc == nil {
		t.Errorf("restored %d records, alloc %v", restored.Len(), alloc)
	}
}

func TestPublicQueueSimulation(t *testing.T) {
	fs, _ := fxdist.NewFileSystem([]int{4, 4}, 16)
	fx, _ := fxdist.NewFX(fs)
	queries := []fxdist.Query{fxdist.AllQuery(2), fxdist.AllQuery(2)}
	jobs, err := fxdist.JobsFromQueries(fx, queries, fxdist.UniformArrivals(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := fxdist.RunQueue(jobs, fxdist.ParallelDisk)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MeanResponse <= 0 || stats.Makespan <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	if len(fxdist.PoissonArrivals(5, time.Second, 1)) != 5 {
		t.Error("PoissonArrivals length wrong")
	}
}

func TestPublicGrowthPlanning(t *testing.T) {
	plans, err := fxdist.GrowthSeries([]int{4, 8}, 8, 0, 2,
		func(fs fxdist.FileSystem) (fxdist.GroupAllocator, error) {
			return fxdist.NewBasicFX(fs)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("plans = %d", len(plans))
	}
	for _, p := range plans {
		if p.MoveFraction() > 0.5 {
			t.Errorf("Basic FX move fraction %.2f > 0.5", p.MoveFraction())
		}
	}
}

func TestPublicSearchAndWitness(t *testing.T) {
	fs, _ := fxdist.NewFileSystem([]int{2, 2, 2, 2}, 16)
	res, err := fxdist.SearchBestPlan(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalPct == 100 {
		t.Error("L=4 all-small system cannot be perfect optimal")
	}
	bfx, _ := fxdist.NewBasicFX(fs)
	if _, ok := fxdist.FindWitness(bfx); !ok {
		t.Error("no witness for Basic FX on all-small system")
	}
	gres, err := fxdist.SearchGDM(fs, 2, 10, 32)
	if err != nil {
		t.Fatal(err)
	}
	if gres.Evaluated != 10 {
		t.Errorf("evaluated %d", gres.Evaluated)
	}
	p, err := fxdist.WeightedOptimality(4, 0.5, func(s []int) bool { return len(s) <= 1 })
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p >= 1 {
		t.Errorf("weighted probability %v", p)
	}
}
