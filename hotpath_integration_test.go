package fxdist_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"fxdist"
)

// hotpathWorkload drives the same query mix through one backend: every
// value of field b specified (shape "*s"), cycling so each backend
// profiles ~2 queries per value.
func hotpathWorkload(t *testing.T, file *fxdist.File, c *fxdist.Cluster, queries int) []fxdist.RetrieveResult {
	t.Helper()
	out := make([]fxdist.RetrieveResult, 0, queries)
	for i := 0; i < queries; i++ {
		pm, err := file.Spec(map[string]string{"b": fmt.Sprintf("b-%d", i%15)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Retrieve(pm)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

// TestHotpathStageSums drives the same workload through all four
// retrieval backends and asserts the tentpole property of the cost
// profiler: the four top-level stages (plan, fanout, merge, audit)
// partition each query, so their wall-time sum stays within 20% of the
// measured whole-query latency (StageCoverage in [0.8, 1.2]) on every
// backend, and every retrieval carries its own stage breakdown in
// Result.Stages. CI uploads the /debug/hotpath and /debug/flight
// documents as build artifacts when HOTPATH_JSON / FLIGHT_JSON name
// destinations.
func TestHotpathStageSums(t *testing.T) {
	fxdist.ResetCostProfilers()
	fxdist.ResetFlightRecorders()
	file := buildTestFile(t)
	fs, err := file.FileSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}

	const queries = 30
	backends := map[string]func(t *testing.T) []fxdist.RetrieveResult{
		"memory": func(t *testing.T) []fxdist.RetrieveResult {
			c, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx})
			if err != nil {
				t.Fatal(err)
			}
			return hotpathWorkload(t, file, c, queries)
		},
		"durable": func(t *testing.T) []fxdist.RetrieveResult {
			c, err := fxdist.Open(fxdist.Config{Dir: t.TempDir(), File: file, Allocator: fx},
				fxdist.WithCostModel(fxdist.ParallelDisk))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			return hotpathWorkload(t, file, c, queries)
		},
		"replicated": func(t *testing.T) []fxdist.RetrieveResult {
			c, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx},
				fxdist.WithReplication(fxdist.ChainedFailover))
			if err != nil {
				t.Fatal(err)
			}
			return hotpathWorkload(t, file, c, queries)
		},
		"netdist": func(t *testing.T) []fxdist.RetrieveResult {
			addrs, stop, err := fxdist.DeployLocal(file, fx)
			if err != nil {
				t.Fatal(err)
			}
			defer stop()
			c, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			return hotpathWorkload(t, file, c, queries)
		},
	}
	for backend, run := range backends {
		results := run(t)
		for i, res := range results {
			if len(res.Stages) == 0 {
				t.Fatalf("%s query %d returned no stage breakdown", backend, i)
			}
		}
	}

	report := fxdist.CostReport()
	byBackend := make(map[string]fxdist.BackendCost, len(report))
	for _, b := range report {
		byBackend[b.Backend] = b
	}
	for backend := range backends {
		b, ok := byBackend[backend]
		if !ok {
			t.Errorf("no cost profile for backend %s", backend)
			continue
		}
		var shape *fxdist.ShapeCost
		for i := range b.Shapes {
			if b.Shapes[i].Shape == "*s" {
				shape = &b.Shapes[i]
			}
		}
		if shape == nil {
			t.Errorf("%s profiled no *s shape: %+v", backend, b.Shapes)
			continue
		}
		if shape.Queries != queries {
			t.Errorf("%s/*s profiled %d queries, want %d", backend, shape.Queries, queries)
		}
		// The tentpole invariant: top-level stages explain the measured
		// latency to within 20%.
		if shape.StageCoverage < 0.8 || shape.StageCoverage > 1.2 {
			t.Errorf("%s/*s stage coverage %.3f outside [0.8, 1.2]: stage sums do not match whole-query latency",
				backend, shape.StageCoverage)
		}
		got := make(map[string]fxdist.StageCost, len(shape.Stages))
		for _, st := range shape.Stages {
			got[st.Stage] = st
		}
		for _, want := range []string{fxdist.StagePlan, fxdist.StageFanout, fxdist.StageMerge, fxdist.StageAudit, fxdist.StageDeviceScan} {
			st, ok := got[want]
			if !ok {
				t.Errorf("%s/*s missing stage %s", backend, want)
				continue
			}
			if st.Count != queries {
				t.Errorf("%s/*s stage %s counted %d samples, want %d", backend, want, st.Count, queries)
			}
		}
		// Alloc attribution must be live: a retrieval allocates, and the
		// breakdown says where.
		var objects float64
		for _, st := range shape.Stages {
			objects += st.MeanObjects
		}
		if objects == 0 {
			t.Errorf("%s/*s reports zero allocations across all stages", backend)
		}
		// Recycle attribution must be live too: with pooling on (the
		// default) part of each stage's demand is served from slabs,
		// and the breakdown must say so or the profiler overstates how
		// allocation-free the hot path is.
		var recycled float64
		for _, st := range shape.Stages {
			recycled += st.MeanRecycledBytes
		}
		if recycled == 0 {
			t.Errorf("%s/*s reports zero pool-recycled bytes across all stages", backend)
		}
		// The coordinator additionally attributes the wire.
		if backend == "netdist" {
			for _, want := range []string{fxdist.StageNetDispatch, fxdist.StageNetWait, fxdist.StageNetDecode} {
				st, ok := got[want]
				if !ok {
					t.Errorf("netdist/*s missing wire stage %s", want)
					continue
				}
				// One sample per device request: queries × 4 devices.
				if st.Count != queries*4 {
					t.Errorf("netdist/*s wire stage %s counted %d samples, want %d", want, st.Count, queries*4)
				}
			}
			if got[fxdist.StageNetDispatch].MeanBytes == 0 || got[fxdist.StageNetDecode].MeanBytes == 0 {
				t.Error("netdist wire stages report zero wire bytes")
			}
		}
	}

	// The flight recorder retained the slowest queries of the workload.
	flights := fxdist.FlightReport()
	flightBackends := make(map[string]bool, len(flights))
	for _, b := range flights {
		flightBackends[b.Backend] = true
		for _, s := range b.Shapes {
			if len(s.Records) == 0 || len(s.Records) > 8 {
				t.Errorf("%s/%s retained %d flight records, want 1..8", b.Backend, s.Shape, len(s.Records))
			}
			for i, r := range s.Records {
				if i > 0 && r.Elapsed > s.Records[i-1].Elapsed {
					t.Errorf("%s/%s flight records not slowest-first", b.Backend, s.Shape)
				}
				if len(r.Stages) == 0 || len(r.Devices) == 0 {
					t.Errorf("%s/%s flight record lacks stages or devices: %+v", b.Backend, s.Shape, r)
				}
			}
		}
	}
	for backend := range backends {
		if !flightBackends[backend] {
			t.Errorf("no flight records for backend %s", backend)
		}
	}

	// Both documents are served over the shared debug handler; CI
	// uploads them as artifacts.
	srv := httptest.NewServer(fxdist.MetricsHandler())
	defer srv.Close()
	for _, ep := range []struct{ path, env string }{
		{"/debug/hotpath", "HOTPATH_JSON"},
		{"/debug/flight", "FLIGHT_JSON"},
	} {
		resp, err := http.Get(srv.URL + ep.path)
		if err != nil {
			t.Fatalf("GET %s: %v", ep.path, err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d err %v", ep.path, resp.StatusCode, err)
		}
		if !json.Valid(raw) {
			t.Fatalf("%s is not JSON:\n%s", ep.path, raw)
		}
		if path := os.Getenv(ep.env); path != "" {
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatalf("write %s: %v", ep.env, err)
			}
			t.Logf("%s written to %s", ep.path, path)
		}
	}
}

// TestFlightRecorderSlowDevice injects latency into one device and
// asserts the flight recorder's evidence points at it: the retained
// records' per-device timings show the chaos-injected device dominating
// the critical path.
func TestFlightRecorderSlowDevice(t *testing.T) {
	fxdist.ResetFlightRecorders()
	file := buildTestFile(t)
	fs, err := file.FileSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	const slow = 0
	c, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx},
		fxdist.WithFaultInjection(1988, map[int]fxdist.FaultSchedule{
			slow: {Latency: 5 * time.Millisecond},
		}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		pm, err := file.Spec(map[string]string{"b": fmt.Sprintf("b-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Retrieve(pm); err != nil {
			t.Fatal(err)
		}
	}

	rep := c.FlightReport()
	if len(rep.Shapes) == 0 {
		t.Fatal("no flight records after slow-device workload")
	}
	for _, s := range rep.Shapes {
		for _, r := range s.Records {
			if r.Elapsed < 5*time.Millisecond {
				t.Errorf("%s record elapsed %v < injected 5ms", s.Shape, r.Elapsed)
			}
			var slowest fxdist.FlightDevice
			for _, d := range r.Devices {
				if d.Scan > slowest.Scan {
					slowest = d
				}
			}
			if slowest.Device != slow {
				t.Errorf("%s record blames device %d (scan %v), want injected device %d: %+v",
					s.Shape, slowest.Device, slowest.Scan, slow, r.Devices)
			}
			if slowest.Scan < r.Elapsed/2 {
				t.Errorf("%s record: slow device scan %v is not dominant in elapsed %v",
					s.Shape, slowest.Scan, r.Elapsed)
			}
		}
	}
}
