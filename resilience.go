package fxdist

import (
	"errors"
	"time"

	"fxdist/internal/engine"
	"fxdist/internal/resilience"
	"fxdist/internal/retry"
)

// FaultSchedule is one device's deterministic fault plan for
// WithFaultInjection: injected errors, latency, hangs, flapping and
// partitions. See internal/resilience.Schedule for the decision order.
type FaultSchedule = resilience.Schedule

// FaultInjector applies per-device FaultSchedules at a backend's device
// seam. Build one with NewFaultInjector to mutate schedules at runtime
// (Set/Clear); Open's WithFaultInjection builds one internally.
type FaultInjector = resilience.Injector

// NewFaultInjector builds a named, seeded fault injector; the name keys
// its /debug/resilience report. Pass it to a cluster via
// WithFaultInjector.
func NewFaultInjector(name string, seed int64, schedules map[int]FaultSchedule) *FaultInjector {
	return resilience.NewInjector(name, seed, schedules)
}

// ErrFaultInjected marks failures manufactured by a fault injector;
// match with errors.Is.
var ErrFaultInjected = resilience.ErrInjected

// ErrBreakerOpen marks a device attempt vetoed by its open circuit
// breaker; match with errors.Is.
var ErrBreakerOpen = retry.ErrOpen

// PartialResult is the graceful-degradation error returned (alongside a
// populated RetrieveResult) when WithPartialResults is set and some —
// but not all — devices failed: Res holds the surviving devices' merged
// answer, Failed the per-device error manifest, and Coverage the
// fraction of the query's |R(q)| buckets the survivors covered.
type PartialResult = engine.PartialError

// AsPartial unwraps a retrieval error into its PartialResult, reporting
// whether the retrieval was served degraded rather than failing
// outright.
func AsPartial(err error) (*PartialResult, bool) {
	var pe *engine.PartialError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// BackendResilience is one backend's resilience snapshot: retry, hedge
// and breaker counters plus per-device breaker states.
type BackendResilience = retry.Report

// InjectorReport is one fault injector's snapshot: per-device schedules
// and injection counters.
type InjectorReport = resilience.Report

// ResilienceReport is the programmatic /debug/resilience: every retry
// controller and fault injector in the process.
type ResilienceReport struct {
	Retry     []BackendResilience `json:"retry"`
	Injectors []InjectorReport    `json:"injectors"`
}

// Resilience snapshots the process's resilience state.
func Resilience() ResilienceReport {
	return ResilienceReport{Retry: retry.ReportAll(), Injectors: resilience.ReportAll()}
}

// WithRetryBudget enables adaptive retries on the cluster: up to
// maxAttempts attempts per device slot with full-jitter exponential
// backoff in [0, min(max, base<<n)], deadline-aware (a retry that would
// outlive the caller's context deadline is declined). Zero arguments
// keep the defaults (3 attempts, 2ms base, 250ms cap).
func WithRetryBudget(maxAttempts int, base, max time.Duration) Option {
	return func(s *openSettings) {
		s.resilSet = true
		s.retryCfg.MaxAttempts = maxAttempts
		s.retryCfg.BackoffBase = base
		s.retryCfg.BackoffMax = max
	}
}

// WithCircuitBreaker adds per-device circuit breakers: failures
// consecutive primary failures open a device's breaker, which rejects
// attempts for cooldown and then admits a single half-open probe whose
// outcome closes or re-opens it. Breaker transitions surface in
// fxdist_resilience_breaker_* metrics and /debug/resilience.
func WithCircuitBreaker(failures int, cooldown time.Duration) Option {
	return func(s *openSettings) {
		s.resilSet = true
		s.retryCfg.BreakerFailures = failures
		s.retryCfg.BreakerCooldown = cooldown
	}
}

// WithHedging enables hedged requests: when a device's observed p99
// latency breaches twice its peers', retrievals race a backup request
// (the ring successor's backup partition on the distributed backend, a
// second same-device scan locally) after a delay of the peers' p99,
// floored at min. On the distributed backend hedging applies to the
// WithFailover path.
func WithHedging(min time.Duration) Option {
	return func(s *openSettings) {
		s.resilSet = true
		s.retryCfg.Hedge = true
		s.retryCfg.HedgeMin = min
	}
}

// WithPartialResults enables graceful degradation: a retrieval on which
// some (not all) devices exhausted their retries returns the surviving
// devices' merged records plus a PartialResult error carrying the
// failure manifest and coverage fraction, instead of failing outright.
func WithPartialResults() Option {
	return func(s *openSettings) {
		s.resilSet = true
		s.retryCfg.Partial = true
	}
}

// WithRetrySeed fixes the seed behind retry jitter, making backoff
// schedules reproducible (default 1).
func WithRetrySeed(seed int64) Option {
	return func(s *openSettings) {
		s.resilSet = true
		s.retryCfg.Seed = seed
	}
}

// WithFaultInjection fronts every device with a deterministic, seeded
// fault injector running the given per-device schedules — chaos testing
// through the public facade. The injector registers under the backend
// kind on /debug/resilience.
func WithFaultInjection(seed int64, schedules map[int]FaultSchedule) Option {
	return func(s *openSettings) {
		s.faultSet = true
		s.faultSeed = seed
		s.faultScheds = schedules
	}
}

// WithFaultInjector installs a caller-built injector (see
// NewFaultInjector) instead of an internally constructed one, so tests
// can mutate schedules at runtime via Set/Clear.
func WithFaultInjector(in *FaultInjector) Option {
	return func(s *openSettings) { s.injector = in }
}

// WithHealthProbing starts the distributed backend's health prober:
// every interval the coordinator pings each device server, redials dead
// connections, and feeds the outcomes into the circuit breakers so a
// restarted server rejoins without risking live traffic. Ignored on
// local backends.
func WithHealthProbing(interval time.Duration) Option {
	return func(s *openSettings) { s.probeEvery = interval }
}
