// Package fxdist implements FX (Fieldwise eXclusive-or) declustering for
// partial match retrieval, reproducing Kim & Pramanik, "Optimal File
// Distribution For Partial Match Retrieval", SIGMOD 1988, together with
// the Modulo and GDM baseline allocation methods, the paper's optimality
// theory, a multi-key hashed file substrate, and a parallel device
// simulator.
//
// # Overview
//
// A multi-key hashed file is a grid of buckets f_1 x ... x f_n (field i is
// hashed into F_i cells, F_i a power of two). To answer partial match
// queries — queries that specify some fields and leave others free — on M
// parallel devices with maximum concurrency, the buckets must be
// *declustered* so that every query's qualified buckets spread evenly.
//
// FX places bucket <J_1..J_n> on device
//
//	T_M( X_1(J_1) xor ... xor X_n(J_n) )
//
// where T_M keeps the low log2(M) bits and each X_i is a field
// transformation (identity for F_i >= M; I, U, IU1 or IU2 for smaller
// fields). The library plans transformations automatically following the
// paper's Theorem 9 and §4.2 guidance.
//
// # Quick start
//
//	fs, _ := fxdist.NewFileSystem([]int{8, 8, 4}, 16) // F_i, M
//	fx, _ := fxdist.NewFX(fs)
//	dev := fx.Device([]int{3, 5, 1})                  // bucket -> device
//	q := fxdist.NewQuery([]int{3, fxdist.Unspecified, fxdist.Unspecified})
//	loads := fxdist.Loads(fx, q)                      // per-device buckets
//
// See the examples directory for record-level usage with the multi-key
// hash file and the parallel device simulator.
package fxdist

import (
	"fxdist/internal/convolve"
	"fxdist/internal/decluster"
	"fxdist/internal/field"
	"fxdist/internal/optimal"
	"fxdist/internal/query"
)

// FileSystem describes a bucket grid: per-field hashed domain sizes
// (powers of two) and the parallel device count M (a power of two).
type FileSystem = decluster.FileSystem

// NewFileSystem validates and builds a FileSystem.
func NewFileSystem(sizes []int, m int) (FileSystem, error) {
	return decluster.NewFileSystem(sizes, m)
}

// Allocator maps bucket coordinate vectors to devices 0..M-1.
type Allocator = decluster.Allocator

// GroupAllocator is an Allocator whose device function folds per-field
// contributions under a commutative group on Z_M; FX, Modulo and GDM all
// are. Load analysis and inverse mapping require this interface.
type GroupAllocator = decluster.GroupAllocator

// FX is the paper's fieldwise exclusive-or allocator.
type FX = decluster.FX

// Modulo is the Disk Modulo baseline [DuSo82].
type Modulo = decluster.Modulo

// GDM is the Generalized Disk Modulo baseline [DuSo82].
type GDM = decluster.GDM

// DHW is the Doerr–Hebbinghaus–Werth latin-square low-discrepancy
// allocator: each field contributes one row of a latin square over Z_M
// built from the bit-reversal radical inverse, folded under addition.
type DHW = decluster.DHW

// Transformation method kinds (paper §4.1).
const (
	// I is the identity transformation.
	I = field.I
	// U spreads a small field equally over Z_M: l -> l * (M/F).
	U = field.U
	// IU1 xor-folds a small field: l -> l xor l*(M/F).
	IU1 = field.IU1
	// IU2 doubly xor-folds: l -> l xor l*d1 xor l*d2.
	IU2 = field.IU2
)

// Kind identifies a field transformation method.
type Kind = field.Kind

// TransformFamily selects IU1 or IU2 as the planner's xor-folded method.
type TransformFamily = field.Family

// Planner families.
const (
	// FamilyIU1 cycles I, U, IU1 (used in the paper's Tables 7-8).
	FamilyIU1 = field.FamilyIU1
	// FamilyIU2 cycles I, U, IU2 (used in Table 9; subsumes IU1).
	FamilyIU2 = field.FamilyIU2
)

// PlanOption configures transformation planning for NewFX.
type PlanOption = field.PlanOption

// WithKinds fixes the per-field transformation methods explicitly.
func WithKinds(kinds []Kind) PlanOption { return field.WithKinds(kinds) }

// WithFamily selects the xor-folded transform family (default FamilyIU2).
func WithFamily(fam TransformFamily) PlanOption { return field.WithFamily(fam) }

// NewFX builds an Extended FX allocator, planning field transformations
// per the paper's §4.2 guidance (options override the plan).
func NewFX(fs FileSystem, opts ...PlanOption) (*FX, error) {
	return decluster.NewFX(fs, opts...)
}

// NewBasicFX builds the Basic FX allocator of §3 (identity transform on
// every field).
func NewBasicFX(fs FileSystem) (*FX, error) { return decluster.NewBasicFX(fs) }

// NewModulo builds the Disk Modulo allocator: device = (sum J_i) mod M.
func NewModulo(fs FileSystem) *Modulo { return decluster.NewModulo(fs) }

// NewGDM builds a Generalized Disk Modulo allocator:
// device = (sum a_i * J_i) mod M.
func NewGDM(fs FileSystem, multipliers []int) (*GDM, error) {
	return decluster.NewGDM(fs, multipliers)
}

// NewDHW builds the latin-square low-discrepancy allocator — the
// large-M baseline whose per-query deviations grow polylogarithmically
// in M (Doerr, Hebbinghaus, Werth).
func NewDHW(fs FileSystem) *DHW { return decluster.NewDHW(fs) }

// DoerrBound returns the per-device deviation allowance over the strict
// bound ceil(|R(q)|/M) that low-discrepancy declustering grants a query
// leaving freeFields dimensions unspecified: O((log M)^(freeFields-1)),
// floored at 1. The rescale auditor gates cutover on it.
func DoerrBound(m, freeFields int) int { return decluster.DoerrBound(m, freeFields) }

// TableAllocator is an explicit bucket-to-device mapping — the escape
// hatch for methods that are not group folds (it satisfies Allocator but
// not GroupAllocator, so analyses fall back to enumeration).
type TableAllocator = decluster.Table

// NewTableAllocator wraps an explicit device vector, indexed by
// row-major linear bucket order.
func NewTableAllocator(fs FileSystem, devices []int) (*TableAllocator, error) {
	return decluster.NewTable(fs, devices)
}

// NewMSP builds the minimal-spanning-path declustering heuristic of Fang,
// Lee & Chang [FaRC86] — the third prior method the paper's related work
// names. O(B^2) construction; small grids only.
func NewMSP(fs FileSystem) *TableAllocator { return decluster.NewMSP(fs) }

// Unspecified marks a free field in a Query.
const Unspecified = query.Unspecified

// Query is a bucket-level partial match query.
type Query = query.Query

// NewQuery builds a query from hashed field values (or Unspecified).
func NewQuery(spec []int) Query { return query.New(spec) }

// AllQuery returns the query with all n fields unspecified.
func AllQuery(n int) Query { return query.All(n) }

// Loads returns the per-device qualified-bucket counts (response sizes)
// for q under a, computed exactly by group convolution.
func Loads(a GroupAllocator, q Query) []int { return convolve.Loads(a, q) }

// LargestLoad returns the largest response size for q under a — the
// quantity that determines parallel response time (§5.2.1).
func LargestLoad(a GroupAllocator, q Query) int {
	max := 0
	for _, v := range convolve.Loads(a, q) {
		if v > max {
			max = v
		}
	}
	return max
}

// InverseMapper enumerates, per device, the qualified buckets of a query
// that reside on that device — without scanning the bucket grid (§4.2).
type InverseMapper = query.InverseMapper

// NewInverseMapper precomputes reverse contribution indexes for a.
func NewInverseMapper(a GroupAllocator) *InverseMapper {
	return query.NewInverseMapper(a)
}

// StrictOptimal reports whether a is strict optimal for q: no device holds
// more than ceil(|R(q)|/M) qualified buckets. Exact.
func StrictOptimal(a GroupAllocator, q Query) bool {
	return optimal.StrictForQuery(a, q)
}

// KOptimal reports whether a is strict optimal for every query with
// exactly k unspecified fields. Exact.
func KOptimal(a GroupAllocator, k int) bool { return optimal.KOptimal(a, k) }

// PerfectOptimal reports whether a is k-optimal for all k = 0..n. Exact.
func PerfectOptimal(a GroupAllocator) bool { return optimal.PerfectOptimal(a) }

// FXGuaranteed evaluates the paper's §4.2 sufficient conditions: true
// means the theory guarantees x is strict optimal for every query with
// q's unspecified field set (false means "not guaranteed", not "not
// optimal").
func FXGuaranteed(x *FX, q Query) bool {
	return optimal.FXSufficient(x, q.UnspecifiedFields())
}

// ModuloGuaranteed evaluates the [DuSo82] sufficient condition for Modulo
// allocation.
func ModuloGuaranteed(fs FileSystem, q Query) bool {
	return optimal.ModuloSufficient(fs, q.UnspecifiedFields())
}
