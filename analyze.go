package fxdist

import (
	"time"

	"fxdist/internal/analysis"
	"fxdist/internal/cost"
	"fxdist/internal/field"
	"fxdist/internal/mkhash"
	"fxdist/internal/optimal"
	"fxdist/internal/stats"
	"fxdist/internal/workload"
)

// ResponseRow is one row of a largest-response-size comparison (the shape
// of the paper's Tables 7-9): for queries with K unspecified fields, the
// average largest response size per method and the theoretical optimum.
type ResponseRow = analysis.ResponseRow

// ResponseTable averages the largest response size over all k-element
// unspecified field subsets for each method, for each k in ks. All
// methods must share fs.
func ResponseTable(fs FileSystem, methods []GroupAllocator, ks []int) []ResponseRow {
	return analysis.ResponseTable(fs, methods, ks)
}

// ResponseTimeRow is a ResponseRow expressed in simulated time under a
// device service model.
type ResponseTimeRow = analysis.ResponseTimeRow

// ResponseTimeTable converts the Tables 7-9 bucket counts to simulated
// response times (§5.2.1's composite): perQuery + largest * perBucket.
func ResponseTimeTable(fs FileSystem, methods []GroupAllocator, ks []int,
	perQuery, perBucket time.Duration) []ResponseTimeRow {
	return analysis.ResponseTimeTable(fs, methods, ks, perQuery, perBucket)
}

// ResponseTableExhaustive computes the same rows as ResponseTable by
// enumerating every concrete query, accepting arbitrary Allocators (e.g.
// the MSP table heuristic) whose load vectors are not translation
// invariant. Small grids only: cost is O(C(n,k) * total buckets) per row.
func ResponseTableExhaustive(fs FileSystem, methods []Allocator, ks []int) []ResponseRow {
	return analysis.ResponseTableExhaustive(fs, methods, ks)
}

// OptimalityPoint is one x-position of a probability-of-optimality curve
// (the shape of the paper's Figures 1-4).
type OptimalityPoint = analysis.OptimalityPoint

// OptimalityCurve computes the percentage of partial match queries
// certified strict-optimal for Modulo and FX, for file systems with
// 0..n fields of size smallF (< M) and the rest largeF (>= M). With exact
// set, it also computes the exact percentages by convolution.
func OptimalityCurve(n, m, smallF, largeF int, fam TransformFamily, exact bool) []OptimalityPoint {
	return analysis.OptimalityCurve(n, m, smallF, largeF, fam, exact)
}

// TableSpec describes one of the paper's Tables 7-9; FigureSpec one of
// Figures 1-4. Use the PaperTableN/PaperFigureN constructors to reproduce
// the paper's evaluation.
type (
	TableSpec  = analysis.TableSpec
	FigureSpec = analysis.FigureSpec
)

// PaperTable7 reproduces Table 7: M=32, six fields of size 8, FX with
// I/U/IU1 cycled.
func PaperTable7() TableSpec { return analysis.Table7() }

// PaperTable8 reproduces Table 8: M=64, six fields of size 8.
func PaperTable8() TableSpec { return analysis.Table8() }

// PaperTable9 reproduces Table 9: M=512, fields (8,8,8,16,16,16), FX with
// IU2.
func PaperTable9() TableSpec { return analysis.Table9() }

// PaperFigure1 reproduces Figure 1 (n=6, pairwise F_pF_q >= M, I/U/IU1).
func PaperFigure1() FigureSpec { return analysis.Figure1() }

// PaperFigure2 reproduces Figure 2 (n=10 variant of Figure 1).
func PaperFigure2() FigureSpec { return analysis.Figure2() }

// PaperFigure3 reproduces Figure 3 (n=6, pairwise products < M but triple
// products >= M, I/U/IU2).
func PaperFigure3() FigureSpec { return analysis.Figure3() }

// PaperFigure4 reproduces Figure 4 (n=10 variant of Figure 3).
func PaperFigure4() FigureSpec { return analysis.Figure4() }

// GDM multiplier sets used in the paper's §5.2.1 comparison.
var (
	GDM1Multipliers = []int{2, 3, 5, 7, 11, 13}
	GDM2Multipliers = []int{2, 5, 11, 43, 51, 57}
	GDM3Multipliers = []int{41, 43, 47, 51, 53, 57}
)

// CPU holds per-instruction cycle counts for the §5.2.2 address
// computation cost model.
type CPU = cost.CPU

// Cycle tables.
var (
	// MC68000 is the cycle table the paper quotes.
	MC68000 = cost.MC68000
	// I80286 approximates the Intel 80286 the paper mentions.
	I80286 = cost.I80286
)

// CostComparison is one row of the §5.2.2 comparison.
type CostComparison = cost.Comparison

// CompareCPUCost evaluates the FX (under x's plan), GDM and Modulo
// address-computation instruction mixes on the CPU; the FX row's VsGDM
// reproduces the paper's "about one third of GDM" claim.
func CompareCPUCost(c CPU, x *FX) []CostComparison {
	return cost.Compare(c, x.Plan())
}

// Workload generation (§5's query model: fields specified independently
// with equal probability).

// FieldSpec describes one synthetic field's value universe.
type FieldSpec = workload.FieldSpec

// RecordSpec describes a synthetic relation.
type RecordSpec = workload.RecordSpec

// GenerateRecords generates n records under the spec, deterministically
// for a seed.
func GenerateRecords(spec RecordSpec, n int, seed int64) ([]Record, error) {
	return workload.Records(spec, n, seed)
}

// GenerateSchema derives a file schema from a record spec and per-field
// directory depths.
func GenerateSchema(spec RecordSpec, depths []int) Schema {
	return workload.Schema(spec, depths)
}

// GeneratePartialMatches generates value-level queries, each field
// specified independently with probability p.
func GeneratePartialMatches(spec RecordSpec, count int, p float64, seed int64) ([]PartialMatch, error) {
	return workload.PartialMatches(spec, count, p, seed)
}

// GenerateBucketQueries generates bucket-level queries against a grid
// with the given field sizes, each field specified independently with
// probability p.
func GenerateBucketQueries(sizes []int, count int, p float64, seed int64) ([]Query, error) {
	return workload.BucketQueries(sizes, count, p, seed)
}

// FieldHash maps a field value to a 64-bit hash.
type FieldHash = mkhash.FieldHash

// Plan introspection: Kinds returns the transformation method assigned to
// each field of the FX allocator.
func Kinds(x *FX) []Kind { return x.Plan().Kinds() }

// WeightedOptimality computes the probability that a random partial match
// query (each field specified independently with probability p, the
// paper's §5 model) is distributed strict-optimally, judged by pred on
// the unspecified field set.
func WeightedOptimality(n int, p float64, pred func(unspec []int) bool) (float64, error) {
	return analysis.WeightedOptimality(n, p, pred)
}

// PlanSearchResult reports an exhaustive transform-assignment search.
type PlanSearchResult = analysis.PlanSearchResult

// SearchBestPlan exhaustively scores every FX transform assignment on fs
// by exact strict-optimality percentage and compares it with the default
// planner. Cost is 4^(small fields) * 2^n convolutions.
func SearchBestPlan(fs FileSystem) (PlanSearchResult, error) {
	return analysis.SearchBestPlan(fs)
}

// GDMSearchResult reports a GDM multiplier search.
type GDMSearchResult = analysis.GDMSearchResult

// SearchGDM scores deterministic pseudo-random odd multiplier sets by
// k-averaged largest response size — the "trial and error" the paper says
// GDM requires.
func SearchGDM(fs FileSystem, k, trials, maxMultiplier int) (GDMSearchResult, error) {
	return analysis.SearchGDM(fs, k, trials, maxMultiplier)
}

// LoadStats summarises one per-device load vector (min/max/mean,
// coefficient of variation, mean/max balance).
type LoadStats = analysis.LoadStats

// LoadStatsOf computes statistics for a load vector (e.g. from Loads).
func LoadStatsOf(loads []int) (LoadStats, error) { return analysis.StatsOf(loads) }

// WorkloadBalance averages the mean/max balance of an allocator over a
// query mix: 1.0 means every query is spread perfectly.
func WorkloadBalance(a GroupAllocator, queries []Query) (float64, error) {
	return analysis.WorkloadBalance(a, queries)
}

// WorkloadTracker accumulates per-field specification frequencies from an
// observed query stream (safe for concurrent use).
type WorkloadTracker = stats.Tracker

// NewWorkloadTracker builds a tracker for an n-field file.
func NewWorkloadTracker(nFields int) (*WorkloadTracker, error) {
	return stats.NewTracker(nFields)
}

// FileStats summarises a file's per-field distinct-value counts.
type FileStats = stats.FileStats

// CollectStats scans a file and counts distinct values per field.
func CollectStats(file *File) FileStats { return stats.Collect(file) }

// ExpectedLargestResponse computes the workload-weighted expected largest
// response size of an allocator, with field i specified independently
// with probability probs[i].
func ExpectedLargestResponse(a GroupAllocator, probs []float64) (float64, error) {
	return analysis.ExpectedLargest(a, probs)
}

// MethodRecommendation reports a workload-aware declustering choice.
type MethodRecommendation = analysis.Recommendation

// RecommendMethod scores candidate allocators by expected largest
// response size under the observed specification probabilities.
func RecommendMethod(candidates []GroupAllocator, probs []float64) (MethodRecommendation, error) {
	return analysis.Recommend(candidates, probs)
}

// PSweepPoint is one specification-probability position of a p-sweep.
type PSweepPoint = analysis.PSweepPoint

// PSweep computes the exact strict-optimality probability of FX and
// Modulo as a function of the per-field specification probability —
// generalising the figures' implicit p = 1/2 across the workload
// spectrum.
func PSweep(fs FileSystem, fam TransformFamily, ps []float64) ([]PSweepPoint, error) {
	return analysis.PSweep(fs, fam, ps)
}

// MSweepPoint is one device-count position of an M-sweep.
type MSweepPoint = analysis.MSweepPoint

// MSweep measures exact and certified strict-optimality percentages for
// FX and Modulo as the device count grows over fixed field sizes — the
// regime the paper's conclusion flags as FX's open problem.
func MSweep(sizes []int, ms []int, fam TransformFamily) ([]MSweepPoint, error) {
	return analysis.MSweep(sizes, ms, fam)
}

// OptimalityWitness describes a query class on which an allocator misses
// strict optimality.
type OptimalityWitness = optimal.Witness

// FindWitness returns a minimal-k query class for which a is not strict
// optimal, or ok=false when a is perfect optimal.
func FindWitness(a GroupAllocator) (w OptimalityWitness, ok bool) {
	return optimal.FindWitness(a)
}

// WithRoundRobinPlan forces the paper's Tables 7-9 transform assignment:
// cycling I, U, then the family transform (see WithFamily) over fields
// smaller than M, in field order.
func WithRoundRobinPlan() PlanOption {
	return field.WithStrategy(field.RoundRobin)
}
