package fxdist

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"fxdist/internal/audit"
	"fxdist/internal/netdist"
	"fxdist/internal/plancache"
	"fxdist/internal/retry"
	"fxdist/internal/storage"
)

// Config selects what Open builds. Exactly one backend kind is implied
// by which fields are set:
//
//	File + Allocator                    in-memory cluster
//	File + Allocator + WithReplication  replicated in-memory cluster
//	Dir + File + Allocator              durable cluster, created under Dir
//	Dir                                 durable cluster, reopened from Dir
//	Addrs + File                        distributed coordinator (File is
//	                                    the schema; it may hold no records)
type Config struct {
	// File is the multi-key hashed file: schema plus records for the
	// in-memory kinds, schema only for the coordinator.
	File *File
	// Allocator is the declustering method, built for File's directory
	// sizes. Required except when reopening a durable cluster (its
	// allocator spec lives in the metadata snapshot) or dialing servers
	// (they run their own inverse mapping).
	Allocator GroupAllocator
	// Dir, when set, selects the durable backend rooted at this
	// directory.
	Dir string
	// Addrs, when set, selects the distributed backend; Addrs[i] must
	// serve device i.
	Addrs []string
}

// openSettings accumulates the functional options of Open.
type openSettings struct {
	model       CostModel
	modelSet    bool
	replicated  bool
	replicaMode ReplicaMode
	dialTimeout time.Duration
	failover    bool
	sloSet      bool
	slo         LatencySLO
	shapeSLOs   map[string]LatencySLO
	cacheSize   int // 0 = default, < 0 = disabled
	fileOpts    []FileOption
	noPool      bool
	arena       bool
	rescaleJrnl string
	dialEpoch   int

	// Resilience (see resilience.go for the options).
	resilSet    bool
	retryCfg    retry.Config
	faultSet    bool
	faultSeed   int64
	faultScheds map[int]FaultSchedule
	injector    *FaultInjector
	probeEvery  time.Duration
	statsEvery  time.Duration
}

// storageOpts lowers the resilience settings onto one local backend
// kind (the kind names the controller and injector on
// /debug/resilience).
func (s *openSettings) storageOpts(kind string) []storage.Option {
	var opts []storage.Option
	if s.resilSet {
		opts = append(opts, storage.WithRetry(s.retryCfg))
	}
	if in := s.buildInjector(kind); in != nil {
		opts = append(opts, storage.WithInjector(in))
	}
	if s.noPool {
		opts = append(opts, storage.WithoutMemPool())
	}
	if s.arena {
		opts = append(opts, storage.WithArenaResults())
	}
	return opts
}

func (s *openSettings) buildInjector(kind string) *FaultInjector {
	if s.injector != nil {
		return s.injector
	}
	if s.faultSet {
		return NewFaultInjector(kind, s.faultSeed, s.faultScheds)
	}
	return nil
}

// Option configures Open.
type Option func(*openSettings)

// WithCostModel prices each device's simulated work (default
// MainMemory). The coordinator backend attaches no cost model; the
// option is ignored there.
func WithCostModel(m CostModel) Option {
	return func(s *openSettings) { s.model, s.modelSet = m, true }
}

// WithReplication selects the replicated in-memory backend: every
// bucket is stored on its primary device and the ring successor, under
// the given failover mode (e.g. ChainedFailover).
func WithReplication(mode ReplicaMode) Option {
	return func(s *openSettings) { s.replicated, s.replicaMode = true, mode }
}

// WithDialTimeout bounds each per-device request of the distributed
// backend; zero (the default) waits indefinitely.
func WithDialTimeout(d time.Duration) Option {
	return func(s *openSettings) { s.dialTimeout = d }
}

// WithStatsPull makes the distributed backend's coordinator pull every
// device server's metrics snapshot each interval, keeping the federated
// fleet view on /debug/cluster fresh. Ignored on other backend kinds.
func WithStatsPull(interval time.Duration) Option {
	return func(s *openSettings) { s.statsEvery = interval }
}

// WithFailover routes the distributed backend's retrievals through the
// ring-successor retry policy: when a device's server is unreachable,
// its successor answers from the backup copy (requires servers deployed
// with replication, e.g. DeployReplicatedLocal).
func WithFailover() Option {
	return func(s *openSettings) { s.failover = true }
}

// WithLatencySLO sets the default latency objective for every query
// shape of the cluster's backend: at least goal (e.g. 0.99) of queries
// must complete within target.
func WithLatencySLO(target time.Duration, goal float64) Option {
	return func(s *openSettings) { s.sloSet, s.slo = true, LatencySLO{Target: target, Goal: goal} }
}

// WithShapeLatencySLO overrides the latency objective for one query
// shape ('s' per specified field, '*' per unspecified — e.g. "s**").
func WithShapeLatencySLO(shape string, target time.Duration, goal float64) Option {
	return func(s *openSettings) {
		if s.shapeSLOs == nil {
			s.shapeSLOs = make(map[string]LatencySLO)
		}
		s.shapeSLOs[shape] = LatencySLO{Target: target, Goal: goal}
	}
}

// WithPlanCacheSize bounds the cluster's plan cache to n shapes
// (LRU-evicted beyond it). n = 0 keeps the default (256); n < 0
// disables the cache entirely, taking the uncached retrieval path.
func WithPlanCacheSize(n int) Option {
	return func(s *openSettings) {
		if n < 0 {
			s.cacheSize = -1
		} else {
			s.cacheSize = n
		}
	}
}

// WithoutPlanCache disables the cluster's plan cache; equivalent to
// WithPlanCacheSize(-1).
func WithoutPlanCache() Option { return WithPlanCacheSize(-1) }

// WithFileOptions passes file options (e.g. WithFieldHash) through to
// the schema reconstruction when reopening a durable cluster whose file
// was built with custom field hashes.
func WithFileOptions(opts ...FileOption) Option {
	return func(s *openSettings) { s.fileOpts = append(s.fileOpts, opts...) }
}

// WithoutMemPool disables the cluster's buffer pools on every backend
// kind: hit frames, fan-out scratch, page frames, wire frames, and
// decode arenas all fall back to plain allocation. Results are
// byte-identical either way — this is the A/B switch for differential
// testing and for ruling pooling out when chasing a corruption bug.
func WithoutMemPool() Option {
	return func(s *openSettings) { s.noPool = true }
}

// WithArenaResults opts into zero-copy result ownership: retrievals
// lease their record slabs from the pools, and the caller returns them
// with RetrieveResult.Release once done reading. After Release the
// Records (and, on the durable and distributed backends, the field
// strings they point at) are invalid. Callers that never Release simply
// fall back to the garbage collector — correct, just slower. Ignored
// under WithoutMemPool. Without this option results are plain
// caller-owned allocations and Release is a no-op.
func WithArenaResults() Option {
	return func(s *openSettings) { s.arena = true }
}

// WithRescale sets the default journal path for live rescales started
// with Cluster.Rescale: migration progress persists there, so a
// coordinator killed mid-rescale resumes from the journal instead of
// re-streaming every bucket. Only meaningful on the distributed
// backend.
func WithRescale(journalPath string) Option {
	return func(s *openSettings) { s.rescaleJrnl = journalPath }
}

// WithDialEpoch pins the distributed coordinator's requests to the
// fleet's serving epoch. Every completed live rescale advances the
// servers' epoch by one, and servers reject requests naming any other
// epoch (a stale coordinator fanning out over the pre-rescale device
// set would otherwise silently return partial answers). A coordinator
// that lived through the rescale is re-pinned automatically; use this
// to dial a fleet from a fresh process after n rescales. Zero, the
// default, matches a fleet that has never rescaled.
func WithDialEpoch(epoch int) Option {
	return func(s *openSettings) { s.dialEpoch = epoch }
}

// Cluster is the unified handle over every backend kind — in-memory,
// replicated, durable, distributed — built by Open. All kinds retrieve
// through the same engine executor and plan cache, so the handle offers
// one surface: RetrieveContext (canonical), Retrieve, RetrieveBatch,
// SLO and audit knobs, and plan-cache introspection. Backend-specific
// operations (durable inserts, replica failure injection, distributed
// failover) are reachable through the typed accessors Memory, Durable,
// Replicated and Coordinator.
type Cluster struct {
	kind     string
	file     *File // schema source; nil only for reopened durable clusters
	mem      *MemoryCluster
	dur      *DurableCluster
	repl     *ReplicatedCluster
	failover bool

	// coordMu guards coord, which Rescale swaps at cutover while
	// retrievals are in flight.
	coordMu sync.RWMutex
	coord   *Coordinator

	// resc is the live rescale, nil outside a rescale window; its
	// routing intercepts retrievals during dual-read. rescaleJournal is
	// the default journal path (WithRescale); dialOpts are the options
	// the coordinator was dialed with, reused for the new epoch's
	// coordinator so timeouts, retry budgets, pooling and injectors
	// survive a rescale.
	resc           atomic.Pointer[Rescale]
	rescaleJournal string
	dialOpts       []DialOption
}

// Backend kinds reported by Cluster.Kind.
const (
	KindMemory     = "memory"
	KindDurable    = "durable"
	KindReplicated = "replicated"
	KindNetdist    = "netdist"
)

// Open builds a cluster of the backend kind cfg implies (see Config)
// and applies the options. It is the single entry point for every
// backend (the pre-Open constructor zoo — NewCluster, DialCluster and
// friends — was removed after a deprecation cycle; see README for the
// migration table).
func Open(cfg Config, opts ...Option) (*Cluster, error) {
	var s openSettings
	for _, opt := range opts {
		opt(&s)
	}
	model := MainMemory
	if s.modelSet {
		model = s.model
	}

	c := &Cluster{file: cfg.File}
	switch {
	case len(cfg.Addrs) > 0:
		if cfg.Dir != "" || s.replicated {
			return nil, errors.New("fxdist: Addrs selects the distributed backend; it cannot combine with Dir or WithReplication")
		}
		if cfg.File == nil {
			return nil, errors.New("fxdist: the distributed backend needs Config.File as the query schema")
		}
		var dialOpts []DialOption
		if s.dialTimeout > 0 {
			dialOpts = append(dialOpts, WithRequestTimeout(s.dialTimeout))
		}
		if s.resilSet {
			dialOpts = append(dialOpts, netdist.WithResilience(s.retryCfg))
		}
		if in := s.buildInjector(KindNetdist); in != nil {
			dialOpts = append(dialOpts, netdist.WithInjector(in))
		}
		if s.noPool {
			dialOpts = append(dialOpts, netdist.WithoutMemPool())
		}
		if s.arena {
			dialOpts = append(dialOpts, netdist.WithArenaResults())
		}
		if s.dialEpoch > 0 {
			dialOpts = append(dialOpts, netdist.WithEpoch(s.dialEpoch))
		}
		coord, err := netdist.Dial(cfg.File, cfg.Addrs, dialOpts...)
		if err != nil {
			return nil, err
		}
		if s.probeEvery > 0 {
			coord.StartHealthProbes(s.probeEvery)
		}
		if s.statsEvery > 0 {
			coord.StartStatsPull(s.statsEvery)
		}
		c.kind, c.coord, c.failover = KindNetdist, coord, s.failover
		c.rescaleJournal = s.rescaleJrnl
		c.dialOpts = dialOpts

	case cfg.Dir != "":
		if s.replicated {
			return nil, errors.New("fxdist: the durable backend does not support WithReplication")
		}
		if cfg.File != nil {
			if cfg.Allocator == nil {
				return nil, errors.New("fxdist: creating a durable cluster needs Config.Allocator")
			}
			dur, err := storage.CreateDurable(cfg.Dir, cfg.File, cfg.Allocator, model, s.storageOpts(KindDurable)...)
			if err != nil {
				return nil, err
			}
			c.kind, c.dur = KindDurable, dur
		} else {
			sopts := append(s.storageOpts(KindDurable), storage.WithFileOptions(s.fileOpts...))
			dur, err := storage.OpenDurable(cfg.Dir, model, sopts...)
			if err != nil {
				return nil, err
			}
			c.kind, c.dur = KindDurable, dur
		}

	case s.replicated:
		if cfg.File == nil || cfg.Allocator == nil {
			return nil, errors.New("fxdist: the replicated backend needs Config.File and Config.Allocator")
		}
		repl, err := storage.NewReplicated(cfg.File, cfg.Allocator, s.replicaMode, model, s.storageOpts(KindReplicated)...)
		if err != nil {
			return nil, err
		}
		c.kind, c.repl = KindReplicated, repl

	default:
		if cfg.File == nil || cfg.Allocator == nil {
			return nil, errors.New("fxdist: the in-memory backend needs Config.File and Config.Allocator")
		}
		mem, err := storage.NewCluster(cfg.File, cfg.Allocator, model, s.storageOpts(KindMemory)...)
		if err != nil {
			return nil, err
		}
		c.kind, c.mem = KindMemory, mem
	}

	if pc := c.planCache(); pc != nil {
		switch {
		case s.cacheSize < 0:
			pc.SetEnabled(false)
		case s.cacheSize > 0:
			pc.Resize(s.cacheSize)
		}
	}
	if s.sloSet {
		c.SetLatencySLO(s.slo.Target, s.slo.Goal)
	}
	for shape, slo := range s.shapeSLOs {
		c.SetShapeLatencySLO(shape, slo.Target, slo.Goal)
	}
	return c, nil
}

// Kind returns the backend kind: "memory", "durable", "replicated" or
// "netdist".
func (c *Cluster) Kind() string { return c.kind }

// Memory returns the underlying in-memory cluster, nil for other kinds.
func (c *Cluster) Memory() *MemoryCluster { return c.mem }

// Durable returns the underlying durable cluster, nil for other kinds.
func (c *Cluster) Durable() *DurableCluster { return c.dur }

// Replicated returns the underlying replicated cluster, nil for other
// kinds.
func (c *Cluster) Replicated() *ReplicatedCluster { return c.repl }

// Coordinator returns the underlying distributed coordinator, nil for
// other kinds. During a rescale the handle is swapped at cutover; see
// Cluster.Rescale.
func (c *Cluster) Coordinator() *Coordinator { return c.coordinator() }

// coordinator reads the current coordinator under the swap lock.
func (c *Cluster) coordinator() *Coordinator {
	c.coordMu.RLock()
	defer c.coordMu.RUnlock()
	return c.coord
}

// M returns the device count.
func (c *Cluster) M() int {
	switch c.kind {
	case KindMemory:
		return c.mem.M()
	case KindDurable:
		return c.dur.M()
	case KindReplicated:
		return c.repl.M()
	default:
		return c.coordinator().M()
	}
}

// Spec builds a value-level partial match query against the cluster's
// schema: pairs of (field name, value); unmentioned fields are
// unspecified.
func (c *Cluster) Spec(pairs map[string]string) (PartialMatch, error) {
	if c.kind == KindDurable {
		return c.dur.Spec(pairs)
	}
	return c.file.Spec(pairs)
}

// RetrieveContext answers one value-level partial match query. It is
// the canonical retrieval entry point on every backend kind; Retrieve
// is its context.Background() wrapper. The distributed backend carries
// no cost model, so its results leave Response, TotalWork and
// DeviceTime zero; with WithFailover set it routes through the
// ring-successor retry policy.
func (c *Cluster) RetrieveContext(ctx context.Context, pm PartialMatch) (RetrieveResult, error) {
	switch c.kind {
	case KindMemory:
		return c.mem.RetrieveContext(ctx, pm)
	case KindDurable:
		return c.dur.RetrieveContext(ctx, pm)
	case KindReplicated:
		return c.repl.RetrieveContext(ctx, pm)
	default:
		// A live rescale window intercepts retrievals: dual reads while
		// both epochs serve, new-epoch reads once the old one drains.
		if r := c.resc.Load(); r != nil {
			if res, err, handled := r.retrieve(ctx, pm); handled {
				return res, err
			}
		}
		var res DistributedResult
		var err error
		if c.failover {
			res, err = c.coordinator().RetrieveWithFailoverContext(ctx, pm)
		} else {
			res, err = c.coordinator().RetrieveContext(ctx, pm)
		}
		// A degraded retrieval (WithPartialResults) carries the surviving
		// devices' answer alongside its PartialResult error.
		return fromDistributed(res), err
	}
}

// Retrieve is RetrieveContext with context.Background().
func (c *Cluster) Retrieve(pm PartialMatch) (RetrieveResult, error) {
	return c.RetrieveContext(context.Background(), pm)
}

// RetrieveBatch answers a batch of queries, pipelining their fan-outs
// over the shared worker pool (see engine.Executor.RetrieveBatch).
// Queries sharing a shape reuse one cached plan.
func (c *Cluster) RetrieveBatch(ctx context.Context, pms []PartialMatch) ([]RetrieveResult, error) {
	switch c.kind {
	case KindMemory:
		return c.mem.RetrieveBatch(ctx, pms)
	case KindDurable:
		return c.dur.RetrieveBatch(ctx, pms)
	case KindReplicated:
		return c.repl.RetrieveBatch(ctx, pms)
	default:
		// During a rescale window, run the batch query-by-query through
		// the epoch-aware path (dual reads don't batch across epochs).
		if r := c.resc.Load(); r != nil && r.intercepting() {
			out := make([]RetrieveResult, len(pms))
			for i, pm := range pms {
				res, err := c.RetrieveContext(ctx, pm)
				if err != nil {
					return out, err
				}
				out[i] = res
			}
			return out, nil
		}
		dres, err := c.coordinator().RetrieveBatch(ctx, pms)
		out := make([]RetrieveResult, len(dres))
		for i, r := range dres {
			out[i] = fromDistributed(r)
		}
		return out, err
	}
}

// fromDistributed lifts a coordinator result onto the unified result
// type (no cost model on the wire, so the time fields stay zero). The
// arena lease rides along so Release keeps working through the facade.
func fromDistributed(r DistributedResult) RetrieveResult {
	res := RetrieveResult{
		TraceID:             r.TraceID,
		Records:             r.Records,
		DeviceBuckets:       r.DeviceBuckets,
		DeviceRecords:       r.DeviceRecords,
		LargestResponseSize: r.LargestResponseSize,
		Stages:              r.Stages,
	}
	res.SetLease(r.Lease())
	return res
}

// Close releases the backend's resources: device logs for durable
// clusters, server connections for coordinators; a no-op for the
// in-memory kinds.
func (c *Cluster) Close() error {
	switch c.kind {
	case KindDurable:
		return c.dur.Close()
	case KindNetdist:
		if r := c.resc.Load(); r != nil {
			r.closeNew()
		}
		c.coordinator().Close()
	}
	return nil
}

// planCache returns the backend's plan cache handle.
func (c *Cluster) planCache() *plancache.Cache {
	switch c.kind {
	case KindMemory:
		return c.mem.PlanCache()
	case KindDurable:
		return c.dur.PlanCache()
	case KindReplicated:
		return c.repl.PlanCache()
	default:
		return c.coordinator().PlanCache()
	}
}

// PlanCacheStats is a point-in-time snapshot of one cluster's plan
// cache: hit/miss/eviction counters and the resident plans.
type PlanCacheStats = plancache.Snapshot

// PlanCache snapshots the cluster's plan cache.
func (c *Cluster) PlanCache() PlanCacheStats { return c.planCache().Stats() }

// SetLatencySLO sets the default latency objective for every query
// shape served by this cluster's backend kind: at least goal (e.g.
// 0.99) of queries must complete within target. The objective is
// backend-wide (all clusters of one kind share an auditor).
func (c *Cluster) SetLatencySLO(target time.Duration, goal float64) {
	audit.SetSLO(c.kind, audit.SLO{Target: target, Goal: goal})
}

// SetShapeLatencySLO overrides the latency objective for one query
// shape of this cluster's backend kind.
func (c *Cluster) SetShapeLatencySLO(shape string, target time.Duration, goal float64) {
	audit.SetShapeSLO(c.kind, shape, audit.SLO{Target: target, Goal: goal})
}

// OptimalityReport snapshots the strict-optimality audit of this
// cluster's backend kind: per-shape violation counts against the
// paper's ceil(|R(q)|/M) bound and SLO state.
func (c *Cluster) OptimalityReport() BackendAudit {
	return audit.For(c.kind).Report()
}

// ResetAudit zeroes the accumulated audit state of this cluster's
// backend kind (mirrored Prometheus counters stay monotonic;
// configured SLOs are kept).
func (c *Cluster) ResetAudit() { audit.For(c.kind).Reset() }

// PlanCacheReport snapshots every live plan cache in the process,
// sorted by backend — the programmatic /debug/plancache.
func PlanCacheReport() []PlanCacheStats { return plancache.Report() }
