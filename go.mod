module fxdist

go 1.22
