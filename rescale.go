package fxdist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"fxdist/internal/audit"
	"fxdist/internal/engine"
	"fxdist/internal/netdist"
	"fxdist/internal/rebalance"
)

// Live elastic rescaling: grow a distributed cluster from M to 2M
// devices (or shrink 2M to M) with zero downtime. The rescale runs as
// an epoch transition driven by rebalance.Driver:
//
//  1. copying — every surviving server is prepared with the new epoch's
//     allocator spec and the moving buckets stream old-owner →
//     new-owner over the binary wire protocol. Queries keep answering
//     from the old epoch, untouched.
//  2. dual-read — with every bucket copied, retrievals race both epochs
//     (engine.DualReader): the first complete answer wins, the loser is
//     cross-checked in the background. The optimality auditor watches
//     the new layout and cutover waits until its per-shape deviation is
//     within the Doerr bound.
//  3. cutover — old-epoch reads drain, every server promotes its
//     prepared view, and the cluster handle swaps to the new
//     coordinator. The old epoch is only released here; Abort at any
//     earlier point rolls every server back byte-for-byte.
//
// Progress journals through WithRescale / RescaleConfig.Journal, so a
// coordinator killed mid-migration resumes instead of restarting.

// RescaleConfig configures Cluster.Rescale.
type RescaleConfig struct {
	// Addrs is the post-rescale address list: Addrs[i] must serve device
	// i under the new M. Growing, the first M entries are the current
	// servers and the rest must already run empty rescale-target servers
	// (NewRescaleTargetServer, or `fxnode serve -rescale-target`);
	// shrinking, Addrs is a prefix of the current list.
	Addrs []string
	// NewM is the post-rescale device count; must equal len(Addrs) and
	// be exactly double or half the current M.
	NewM int
	// Allocator is the cluster's current allocator — the one its device
	// servers were deployed with (coordinators dial by address and don't
	// hold it). The new epoch reuses its method and per-field settings
	// with M doubled or halved.
	Allocator GroupAllocator
	// Journal overrides the cluster's WithRescale journal path.
	Journal string
	// Concurrency bounds in-flight bucket copies (default 4).
	Concurrency int
	// GuardMinQueries is how many audited new-epoch queries cutover
	// requires before trusting the optimality report (default 4). Dual
	// reads feed the auditor; an idle cluster can pump traffic with
	// Rescale.Verify.
	GuardMinQueries uint64
	// DisableGuard cuts over as soon as copying and the dual-read drain
	// finish, without waiting on the optimality auditor.
	DisableGuard bool
	// DialOptions are extra options for dialing the new epoch's
	// coordinator — e.g. a request timeout, or a fault injector so chaos
	// schedules also exercise the migration stream and dual reads.
	DialOptions []DialOption
}

// Rescale phases beyond the driver's journalled ones are routing
// states; see phase constants below.
const (
	rescRouteOld int32 = iota // copying: old epoch answers alone
	rescRouteDual             // dual-read window
	rescRouteNew              // drained: new epoch answers alone
)

// RescaleStatus combines the migration driver's progress with the
// dual-read cross-check counters.
type RescaleStatus struct {
	rebalance.DriverStatus
	DualReads DualReadStats `json:"dual_reads"`
}

// DualReadStats re-exports engine.DualReadStats.
type DualReadStats = engine.DualReadStats

// Rescale is a live rescale in flight (or finished); obtain one from
// Cluster.Rescale.
type Rescale struct {
	c        *Cluster
	driver   *rebalance.Driver
	dual     *engine.DualReader
	newCoord *Coordinator

	route   atomic.Int32
	oldGate sync.RWMutex // held (R) by dual retrievals, (W) by the drain

	done chan struct{}
	err  error

	finalizeOnce sync.Once
	closeOnce    sync.Once
}

// rescaleBackend is the telemetry/audit label of the new epoch's
// coordinator during the window ("netdist" itself after cutover would
// double-count).
const rescaleBackend = "netdist-next"

// Rescale starts a live rescale to cfg.NewM devices and returns a
// handle immediately; the migration runs in the background. Watch it
// with Status/Wait, steer it with Pause/Resume/Abort, and pump
// self-check traffic with Verify. Only the distributed backend
// rescales, one rescale at a time.
func (c *Cluster) Rescale(ctx context.Context, cfg RescaleConfig) (*Rescale, error) {
	if c.kind != KindNetdist {
		return nil, fmt.Errorf("fxdist: only the distributed backend rescales (this cluster is %q)", c.kind)
	}
	if c.resc.Load() != nil {
		return nil, errors.New("fxdist: a rescale is already in flight")
	}
	old := c.coordinator()
	oldM := old.M()
	if cfg.NewM != 2*oldM && oldM != 2*cfg.NewM {
		return nil, fmt.Errorf("fxdist: rescale %d -> %d devices: only doubling or halving is supported", oldM, cfg.NewM)
	}
	if len(cfg.Addrs) != cfg.NewM {
		return nil, fmt.Errorf("fxdist: rescale needs %d addresses, got %d", cfg.NewM, len(cfg.Addrs))
	}
	if cfg.GuardMinQueries == 0 {
		cfg.GuardMinQueries = 4
	}
	journal := cfg.Journal
	if journal == "" {
		journal = c.rescaleJournal
	}

	if cfg.Allocator == nil {
		return nil, errors.New("fxdist: RescaleConfig.Allocator must be the cluster's current allocator")
	}
	oldSpec, err := DescribeAllocator(cfg.Allocator)
	if err != nil {
		return nil, err
	}
	if oldSpec.M != oldM {
		return nil, fmt.Errorf("fxdist: allocator declusters over %d devices, cluster has %d", oldSpec.M, oldM)
	}
	newSpec, err := oldSpec.Rescaled(cfg.NewM)
	if err != nil {
		return nil, err
	}

	// Dial the new epoch's coordinator over the post-rescale address
	// list. It audits and logs under its own backend name, so the
	// cutover guard reads the new layout's optimality in isolation.
	dialOpts := append(append([]DialOption{
		netdist.WithBackendName(rescaleBackend),
		netdist.WithEpoch(old.Epoch() + 1),
	}, c.dialOpts...), cfg.DialOptions...)
	newCoord, err := netdist.Dial(c.file, cfg.Addrs, dialOpts...)
	if err != nil {
		return nil, fmt.Errorf("fxdist: dial new-epoch coordinator: %w", err)
	}
	audit.For(rescaleBackend).Reset()

	r := &Rescale{c: c, newCoord: newCoord, done: make(chan struct{})}
	r.dual = &engine.DualReader{
		Old: old.EngineRetrieve,
		New: newCoord.EngineRetrieve,
	}

	// The transport must span the union of the two device sets: the
	// larger coordinator's conn table does.
	var transport rebalance.Transport = newCoord
	if oldM > cfg.NewM {
		transport = old
	}
	dcfg := rebalance.DriverConfig{
		OldSpec:     oldSpec,
		NewSpec:     newSpec,
		Transport:   transport,
		JournalPath: journal,
		Concurrency: cfg.Concurrency,
		EnterDualRead: func(context.Context) error {
			r.route.Store(rescRouteDual)
			return nil
		},
		BeforeRelease:  r.drainOldEpoch,
		BeforeRollback: r.leaveNewEpoch,
	}
	if !cfg.DisableGuard {
		dcfg.Guard = rebalance.AuditGuard(audit.For(rescaleBackend).Report, cfg.NewM, cfg.GuardMinQueries)
	}
	driver, err := rebalance.NewDriver(dcfg)
	if err != nil {
		newCoord.Close()
		return nil, err
	}
	r.driver = driver
	c.resc.Store(r)
	rebalance.RegisterDriver(rescaleBackend, driver)

	go func() {
		err := driver.Run(ctx)
		r.finish(err)
	}()
	return r, nil
}

// intercepting reports whether the rescale currently routes retrievals
// away from the plain old-epoch path.
func (r *Rescale) intercepting() bool { return r.route.Load() != rescRouteOld }

// retrieve answers one retrieval according to the window's routing
// state. handled is false while the old epoch still answers alone.
func (r *Rescale) retrieve(ctx context.Context, pm PartialMatch) (RetrieveResult, error, bool) {
	switch r.route.Load() {
	case rescRouteDual:
		// Hold the gate while the dual read may touch the old epoch; the
		// drain (and a rollback) takes the write side after flipping the
		// route, so a recheck under the lock decides authoritatively.
		r.oldGate.RLock()
		defer r.oldGate.RUnlock()
		switch r.route.Load() {
		case rescRouteNew:
			// The drain won the race: the old epoch is released.
			res, err := r.newCoord.EngineRetrieve(ctx, pm)
			return res, err, true
		case rescRouteOld:
			// A rollback won the race: the new epoch's prepared views
			// are about to drop, so fall back to the plain old-epoch
			// path (handled=false).
			return RetrieveResult{}, nil, false
		}
		res, err := r.dual.Retrieve(ctx, pm)
		return res, err, true
	case rescRouteNew:
		res, err := r.newCoord.EngineRetrieve(ctx, pm)
		return res, err, true
	default:
		return RetrieveResult{}, nil, false
	}
}

// drainOldEpoch is the driver's BeforeRelease hook: stop routing to the
// old epoch, wait out in-flight dual reads and their background
// cross-checks, and veto cutover if any answer diverged.
func (r *Rescale) drainOldEpoch(context.Context) error {
	r.route.Store(rescRouteNew)
	r.oldGate.Lock() // barrier: every in-flight dual read has returned
	r.oldGate.Unlock()
	r.dual.Drain() // background cross-checks too
	if st := r.dual.Stats(); st.Mismatches > 0 {
		return fmt.Errorf("fxdist: %d dual-read mismatches between epochs; migration is inconsistent", st.Mismatches)
	}
	return nil
}

// leaveNewEpoch routes queries back to the old epoch alone and waits
// out any retrieval still touching the new one — called before a
// rollback drops the servers' prepared views.
func (r *Rescale) leaveNewEpoch() {
	r.route.Store(rescRouteOld)
	r.oldGate.Lock() // barrier: in-flight dual reads have returned
	r.oldGate.Unlock()
	r.dual.Drain()
}

// finish records the driver's outcome and, on success, swaps the
// cluster handle onto the new coordinator and releases the old one.
func (r *Rescale) finish(err error) {
	r.finalizeOnce.Do(func() {
		if errors.Is(err, rebalance.ErrPartialCutover) {
			// Past the point of no return with stragglers: keep answering
			// from the new epoch (most servers promoted; the old epoch no
			// longer exists on them) and surface the error. Recovery is
			// re-running the rescale against the same journal, which
			// replays the idempotent cutover broadcast.
			r.err = err
			close(r.done)
			return
		}
		if err != nil {
			// Rolled back: the old epoch keeps answering alone
			// (BeforeRollback already rerouted and drained).
			r.err = err
			r.c.resc.CompareAndSwap(r, nil)
			r.closeNew()
			rebalance.UnregisterDriver(rescaleBackend)
			close(r.done)
			return
		}
		r.c.coordMu.Lock()
		old := r.c.coord
		r.c.coord = r.newCoord
		r.c.coordMu.Unlock()
		r.c.resc.CompareAndSwap(r, nil)
		old.Close()
		close(r.done)
	})
}

// closeNew releases the new-epoch coordinator if it never took over.
func (r *Rescale) closeNew() {
	r.closeOnce.Do(func() { r.newCoord.Close() })
}

// Status snapshots the migration and the dual-read counters.
func (r *Rescale) Status() RescaleStatus {
	return RescaleStatus{DriverStatus: r.driver.Status(), DualReads: r.dual.Stats()}
}

// Pause stops issuing new bucket copies and holds the cutover guard;
// Resume lifts it. Queries are unaffected either way.
func (r *Rescale) Pause()  { r.driver.Pause() }
func (r *Rescale) Resume() { r.driver.Resume() }

// Abort cancels the rescale and rolls every server back to the old
// epoch; Wait then returns rebalance.ErrAborted.
func (r *Rescale) Abort() { r.driver.Abort() }

// Wait blocks until the rescale completes (the cluster handle then
// answers from the new epoch) or fails after rollback.
func (r *Rescale) Wait() error {
	<-r.done
	return r.err
}

// Done reports completion without blocking.
func (r *Rescale) Done() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Verify pumps self-check queries through the window's current routing
// — during dual-read each one races both epochs, is cross-checked, and
// feeds the cutover guard's audit floor. It returns the first query
// error.
func (r *Rescale) Verify(ctx context.Context, pms []PartialMatch) error {
	for _, pm := range pms {
		if _, err := r.c.RetrieveContext(ctx, pm); err != nil {
			return err
		}
	}
	return nil
}

// ErrRescaleAborted is returned by Rescale.Wait after an abort.
var ErrRescaleAborted = rebalance.ErrAborted

// RescalePlanOf previews the data movement of rescaling alloc's layout
// to newM devices without touching any server: the moving buckets,
// per-device in/out traffic, and whether the new owner is derivable
// from the old via the T_M low-bit identity.
func RescalePlanOf(alloc GroupAllocator, newM int) (rebalance.RescalePlan, error) {
	spec, err := DescribeAllocator(alloc)
	if err != nil {
		return rebalance.RescalePlan{}, err
	}
	nspec, err := spec.Rescaled(newM)
	if err != nil {
		return rebalance.RescalePlan{}, err
	}
	nalloc, err := nspec.Build()
	if err != nil {
		return rebalance.RescalePlan{}, err
	}
	return rebalance.PlanRescale(alloc, nalloc)
}

// NewRescaleTargetServer builds an empty device server for a device
// joining the cluster in a grow (device IDs M..2M-1 under the new
// spec). It starts at the given epoch — the one the growing cluster is
// rescaling into (current epoch + 1, normally 1) — so the migration can
// install buckets and the new coordinator can query it immediately.
func NewRescaleTargetServer(deviceID int, spec AllocatorSpec, epoch int) (*DeviceServer, error) {
	srv, err := netdist.NewServer(deviceID, spec, map[int][]Record{})
	if err != nil {
		return nil, err
	}
	srv.SetEpoch(epoch)
	return srv, nil
}
