package fxdist

import (
	"fxdist/internal/design"
	"fxdist/internal/replica"
)

// Availability: chained declustering on top of any group allocator, and
// the classic directory design problem that precedes declustering.

// ReplicaMode selects the failover policy of a replicated placement.
type ReplicaMode = replica.Mode

// Failover policies.
const (
	// ChainedFailover spreads a failed device's load around the ring
	// (max per-device load M/(M-1) of normal).
	ChainedFailover = replica.Chained
	// NaiveFailover serves all of a failed device's buckets from its one
	// backup holder (max load 2x normal).
	NaiveFailover = replica.Naive
)

// ReplicaPlacement wraps an allocator with primary/backup placement
// (backup on the ring successor) and failure-aware bucket service.
type ReplicaPlacement = replica.Placement

// DegradationReport compares largest response sizes with and without the
// current failures.
type DegradationReport = replica.DegradationReport

// NewReplicaPlacement builds a healthy placement over the allocator.
func NewReplicaPlacement(alloc GroupAllocator, mode ReplicaMode) *ReplicaPlacement {
	return replica.New(alloc, mode)
}

// DesignField is one field's directory-design input: how often queries
// specify it, and an optional depth cap.
type DesignField = design.Field

// DesignResult is an optimal depth assignment.
type DesignResult = design.Result

// DesignDepths optimally assigns totalBits directory bits across fields
// to minimize the expected number of qualified buckets per query (the
// Aho-Ullman / Rothnie-Lozano file design problem; greedy, provably
// optimal for this objective).
func DesignDepths(totalBits int, fields []DesignField) (DesignResult, error) {
	return design.Depths(totalBits, fields)
}

// DirectoryBitsFor returns the directory budget needed to hold records at
// the target mean bucket occupancy.
func DirectoryBitsFor(records, occupancy int) (int, error) {
	return design.BitsFor(records, occupancy)
}

// ExpectedQualifiedBuckets evaluates the design objective for an explicit
// depth assignment.
func ExpectedQualifiedBuckets(depths []int, probs []float64) float64 {
	return design.ExpectedQualified(depths, probs)
}
