package fxdist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fxdist/internal/engine"
	"fxdist/internal/netdist"
	"fxdist/internal/resilience"
	"fxdist/internal/retry"
)

// Error is the unified retrieval error of the public API: every failure
// the library can produce — device scan errors, degraded partial
// results, breaker vetoes, injected faults, timeouts, gateway admission
// rejections — classifies onto one taxonomy with a stable,
// machine-readable Code. The gateway (cmd/fxgate) and the client
// package speak exactly these codes on the wire, so a remote caller
// sees the same taxonomy an embedder does.
//
// Error wraps the original cause unmodified: errors.Is and errors.As
// still find the concrete types underneath (DeviceFailure, TracedError,
// PartialResult, ErrRequestTimeout, ...), so pre-taxonomy call sites
// keep working against a classified error.
type Error struct {
	// Code is the stable taxonomy code (see the ErrCode constants).
	Code ErrorCode
	// Message is a human-readable description (the cause's Error()
	// unless overridden).
	Message string
	// Device is the failing device id, -1 when the failure is not
	// scoped to one device.
	Device int
	// TraceID joins the failure against /debug/traces; 0 when untraced.
	TraceID uint64
	// Coverage is the fraction of |R(q)| a degraded retrieval still
	// covered; only meaningful with ErrCodePartialResult.
	Coverage float64
	// RetryAfter, when positive, is the server's load-shedding or
	// admission-control hint: do not retry before this long (the wire's
	// Retry-After). Set for ErrCodeRateLimited and ErrCodeOverloaded.
	RetryAfter time.Duration
	// Err is the wrapped cause; nil for errors born at the gateway
	// boundary (auth, rate limits, unknown method).
	Err error
}

// ErrorCode is a stable machine-readable failure class. Codes are part
// of the wire contract: they never change meaning and are only ever
// added to.
type ErrorCode string

// The error taxonomy. Every retrieval failure classifies onto exactly
// one of these.
const (
	// ErrCodeInvalidQuery: the query is malformed — unknown field,
	// out-of-range value, bad parameters.
	ErrCodeInvalidQuery ErrorCode = "invalid_query"
	// ErrCodeUnauthorized: missing or unrecognized API key.
	ErrCodeUnauthorized ErrorCode = "unauthorized"
	// ErrCodeRateLimited: the tenant exceeded its request rate or
	// in-flight quota; honor RetryAfter before retrying.
	ErrCodeRateLimited ErrorCode = "rate_limited"
	// ErrCodeOverloaded: the service (gateway admission control or a
	// shedding device server) refused the request to protect itself;
	// honor RetryAfter.
	ErrCodeOverloaded ErrorCode = "overloaded"
	// ErrCodeTimeout: the retrieval exceeded its deadline.
	ErrCodeTimeout ErrorCode = "timeout"
	// ErrCodeCanceled: the caller canceled the retrieval.
	ErrCodeCanceled ErrorCode = "canceled"
	// ErrCodeBreakerOpen: a device's circuit breaker vetoed the attempt.
	ErrCodeBreakerOpen ErrorCode = "breaker_open"
	// ErrCodeFaultInjected: the failure was manufactured by a fault
	// injector (chaos testing).
	ErrCodeFaultInjected ErrorCode = "fault_injected"
	// ErrCodePartialResult: some devices failed but the survivors'
	// merged answer is attached (graceful degradation); Coverage says
	// how much of |R(q)| it spans.
	ErrCodePartialResult ErrorCode = "partial_result"
	// ErrCodeDeviceFailure: one or more device scans failed and the
	// retrieval could not be served.
	ErrCodeDeviceFailure ErrorCode = "device_failure"
	// ErrCodeUnknownMethod: the gateway does not serve the requested
	// RPC method.
	ErrCodeUnknownMethod ErrorCode = "unknown_method"
	// ErrCodeInternal: anything that fits no other class.
	ErrCodeInternal ErrorCode = "internal"
)

func (e *Error) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("fxdist: %s: %s", e.Code, e.Message)
	}
	return fmt.Sprintf("fxdist: %s", e.Code)
}

// Unwrap exposes the original cause, keeping errors.Is/As transparent
// through the classification.
func (e *Error) Unwrap() error { return e.Err }

// NewError builds a taxonomy error with no underlying cause — the
// constructor for failures born at a service boundary (auth, rate
// limits, unknown method).
func NewError(code ErrorCode, message string) *Error {
	return &Error{Code: code, Message: message, Device: -1}
}

// Classify folds any retrieval error onto the unified taxonomy. The
// returned *Error wraps err, so errors.Is/As keep seeing the original
// chain. Classifying nil returns nil; an already-classified error is
// returned as is (no double wrapping).
//
// Classification priority, most specific first: partial result,
// load-shedding cooldown, breaker veto, injected fault, timeout,
// cancellation, device failure, internal.
func Classify(err error) *Error {
	if err == nil {
		return nil
	}
	var fe *Error
	if errors.As(err, &fe) {
		return fe
	}
	e := &Error{Code: ErrCodeInternal, Message: err.Error(), Device: -1, Err: err}

	// Context carried by wrapper types, whatever the final code.
	var te *engine.TracedError
	if errors.As(err, &te) {
		e.TraceID = te.TraceID
	}
	var de *netdist.DeviceError
	if errors.As(err, &de) {
		e.Device = de.Device
		if e.TraceID == 0 {
			e.TraceID = de.TraceID
		}
	}
	var df *engine.DeviceFailure
	if errors.As(err, &df) && e.Device < 0 {
		e.Device = df.Device
	}

	var pe *engine.PartialError
	var cd *retry.Cooldown
	switch {
	case errors.As(err, &pe):
		e.Code = ErrCodePartialResult
		e.Coverage = pe.Coverage
	case errors.As(err, &cd):
		e.Code = ErrCodeOverloaded
		e.RetryAfter = cd.After
	case errors.Is(err, retry.ErrOpen):
		e.Code = ErrCodeBreakerOpen
	case errors.Is(err, resilience.ErrInjected):
		e.Code = ErrCodeFaultInjected
	case errors.Is(err, netdist.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		e.Code = ErrCodeTimeout
	case errors.Is(err, context.Canceled):
		e.Code = ErrCodeCanceled
	case errors.As(err, &df), errors.As(err, &de):
		e.Code = ErrCodeDeviceFailure
	}
	return e
}
