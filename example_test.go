package fxdist_test

import (
	"fmt"

	"fxdist"
)

// Example declusters a small bucket grid with FX and inspects a query's
// per-device spread.
func Example() {
	fs, _ := fxdist.NewFileSystem([]int{8, 8, 4}, 16)
	fx, _ := fxdist.NewFX(fs)
	q := fxdist.NewQuery([]int{3, fxdist.Unspecified, fxdist.Unspecified})
	fmt.Println("largest response size:", fxdist.LargestLoad(fx, q))
	fmt.Println("strict optimal:", fxdist.StrictOptimal(fx, q))
	// Output:
	// largest response size: 2
	// strict optimal: true
}

// ExampleNewFX shows the planner assigning different transformation
// methods to fields smaller than M (Theorem 9's ordering).
func ExampleNewFX() {
	fs, _ := fxdist.NewFileSystem([]int{2, 8, 4}, 16)
	fx, _ := fxdist.NewFX(fs)
	fmt.Println(fx.Name())
	fmt.Println("perfect optimal:", fxdist.PerfectOptimal(fx))
	// Output:
	// FX[U I IU2]
	// perfect optimal: true
}

// ExampleNewModulo shows the baseline losing exactly where the paper says
// it does: two unspecified fields, both smaller than M.
func ExampleNewModulo() {
	fs, _ := fxdist.NewFileSystem([]int{4, 4}, 16)
	md := fxdist.NewModulo(fs)
	fx, _ := fxdist.NewFX(fs)
	q := fxdist.AllQuery(2)
	fmt.Println("Modulo largest response:", fxdist.LargestLoad(md, q))
	fmt.Println("FX largest response:    ", fxdist.LargestLoad(fx, q))
	// Output:
	// Modulo largest response: 4
	// FX largest response:     1
}

// ExampleNewInverseMapper enumerates one device's share of a query
// without scanning the grid.
func ExampleNewInverseMapper() {
	fs, _ := fxdist.NewFileSystem([]int{4, 8}, 4)
	fx, _ := fxdist.NewBasicFX(fs)
	im := fxdist.NewInverseMapper(fx)
	q := fxdist.NewQuery([]int{2, fxdist.Unspecified})
	im.EachOnDevice(q, 0, func(b []int) {
		fmt.Println(b)
	})
	// Output:
	// [2 2]
	// [2 6]
}

// ExampleFXGuaranteed certifies a query class with the paper's §4.2
// sufficient conditions — no enumeration needed.
func ExampleFXGuaranteed() {
	fs, _ := fxdist.NewFileSystem([]int{8, 8, 8, 8, 8, 8}, 32)
	fx, _ := fxdist.NewFX(fs, fxdist.WithRoundRobinPlan(), fxdist.WithFamily(fxdist.FamilyIU1))
	q := fxdist.NewQuery([]int{fxdist.Unspecified, fxdist.Unspecified, 0, 0, 0, 0})
	fmt.Println("certified:", fxdist.FXGuaranteed(fx, q))
	// Output:
	// certified: true
}

// ExampleResponseTable regenerates two rows of the paper's Table 7.
func ExampleResponseTable() {
	fs, _ := fxdist.NewFileSystem([]int{8, 8, 8, 8, 8, 8}, 32)
	fx, _ := fxdist.NewFX(fs, fxdist.WithRoundRobinPlan(), fxdist.WithFamily(fxdist.FamilyIU1))
	md := fxdist.NewModulo(fs)
	rows := fxdist.ResponseTable(fs, []fxdist.GroupAllocator{md, fx}, []int{2, 3})
	for _, r := range rows {
		fmt.Printf("k=%d Modulo=%.1f FX=%.1f Optimal=%.1f\n", r.K, r.Avg[0], r.Avg[1], r.Optimal)
	}
	// Output:
	// k=2 Modulo=8.0 FX=3.2 Optimal=2.0
	// k=3 Modulo=48.0 FX=16.0 Optimal=16.0
}

// ExampleFindWitness extracts the smallest failing query class of a
// non-optimal distribution.
func ExampleFindWitness() {
	fs, _ := fxdist.NewFileSystem([]int{2, 8}, 16)
	basic, _ := fxdist.NewBasicFX(fs)
	w, ok := fxdist.FindWitness(basic)
	fmt.Println(ok, w.Unspec, w.MaxLoad, w.Bound)
	// Output:
	// true [0 1] 2 1
}
