package fxdist

import (
	"io"
	"net/http"

	"fxdist/internal/obs"
)

// Observability: the runtime introspection surface. Every hot path in
// the distributed stack (netdist coordinator and device servers, the
// durable and replicated clusters, the pagestore logs) reports into a
// process-wide metric registry and trace ring; this file is the
// embedder's API to it. cmd/fxnode and cmd/pmquery expose the same data
// over HTTP via -metrics-addr.

// MetricPoint is one metric sample: name, kind, labels and either a
// scalar value (counters, gauges) or a histogram snapshot.
type MetricPoint = obs.Point

// MetricHistogram is a point-in-time histogram copy with quantile
// estimation (Quantile(0.99) etc.).
type MetricHistogram = obs.HistogramSnapshot

// MetricsSnapshot returns the current value of every registered metric,
// sorted by name then labels — the programmatic equivalent of scraping
// /metrics.
func MetricsSnapshot() []MetricPoint { return obs.Default().Snapshot() }

// WriteMetricsPrometheus renders all metrics in the Prometheus text
// exposition format.
func WriteMetricsPrometheus(w io.Writer) error { return obs.Default().WritePrometheus(w) }

// WriteMetricsJSON renders all metrics as an expvar-style JSON object.
func WriteMetricsJSON(w io.Writer) error { return obs.Default().WriteJSON(w) }

// MetricsHandler serves /metrics (Prometheus text), /debug/vars
// (JSON), /debug/traces (recent query spans) and /debug/pprof/.
func MetricsHandler() http.Handler { return obs.Handler() }

// ServeMetrics starts MetricsHandler on addr (":0" picks a free port),
// returning the bound address and a shutdown function.
func ServeMetrics(addr string) (string, func(), error) { return obs.ListenAndServe(addr) }

// TraceSpan is a completed or in-flight query trace: coordinator fan-out
// and device-server spans correlate via RequestID.
type TraceSpan = obs.SpanSnapshot

// RecentTraces returns up to n recent query spans, most recent first.
func RecentTraces(n int) []TraceSpan { return obs.DefaultTracer().Recent(n) }

// SetLogLevel tunes the runtime logger: "debug", "info", "warn",
// "error" or "off". The default is "warn", which keeps routine
// recovery/compaction events (logged at info) quiet.
func SetLogLevel(level string) error {
	l, err := obs.ParseLevel(level)
	if err != nil {
		return err
	}
	obs.SetLogLevel(l)
	return nil
}
