package fxdist

import (
	"context"
	"io"
	"net/http"
	"time"

	"fxdist/internal/audit"
	"fxdist/internal/engine"
	"fxdist/internal/obs"
	"fxdist/internal/telemetry"
)

// Observability: the runtime introspection surface. Every hot path in
// the distributed stack (netdist coordinator and device servers, the
// durable and replicated clusters, the pagestore logs) reports into a
// process-wide metric registry and trace ring; this file is the
// embedder's API to it. cmd/fxnode and cmd/pmquery expose the same data
// over HTTP via -metrics-addr.

// MetricPoint is one metric sample: name, kind, labels and either a
// scalar value (counters, gauges) or a histogram snapshot.
type MetricPoint = obs.Point

// MetricHistogram is a point-in-time histogram copy with quantile
// estimation (Quantile(0.99) etc.).
type MetricHistogram = obs.HistogramSnapshot

// MetricsSnapshot returns the current value of every registered metric,
// sorted by name then labels — the programmatic equivalent of scraping
// /metrics.
func MetricsSnapshot() []MetricPoint { return obs.Default().Snapshot() }

// WriteMetricsPrometheus renders all metrics in the Prometheus text
// exposition format.
func WriteMetricsPrometheus(w io.Writer) error { return obs.Default().WritePrometheus(w) }

// WriteMetricsJSON renders all metrics as an expvar-style JSON object.
func WriteMetricsJSON(w io.Writer) error { return obs.Default().WriteJSON(w) }

// MetricsHandler serves /metrics (Prometheus text), /debug/vars
// (JSON), /debug/traces (recent query spans) and /debug/pprof/.
func MetricsHandler() http.Handler { return obs.Handler() }

// ServeMetrics starts MetricsHandler on addr (":0" picks a free port),
// returning the bound address and a shutdown function.
func ServeMetrics(addr string) (string, func(), error) { return obs.ListenAndServe(addr) }

// TraceSpan is a completed or in-flight query trace: coordinator fan-out
// and device-server spans correlate via RequestID, and parent→child
// links (TraceID/Parent) stitch one query's spans into a tree even
// across processes.
type TraceSpan = obs.SpanSnapshot

// RecentTraces returns up to n recent query spans, most recent first.
func RecentTraces(n int) []TraceSpan { return obs.DefaultTracer().Recent(n) }

// TraceTree is one span and the spans that ran under it — for a netdist
// query: the coordinator's retrieval span as root with one device-server
// span per device as children.
type TraceTree = obs.SpanTree

// RecentTraceTrees groups up to n recent spans into parent→child trees,
// most recent root first (the programmatic /debug/traces?tree=1).
func RecentTraceTrees(n int) []TraceTree { return obs.DefaultTracer().Trees(n) }

// Online optimality auditing: every retrieval on every backend is
// compared against the paper's strict-optimality bound ceil(|R(q)|/M),
// aggregated by query shape (the set of unspecified fields). The same
// data is served on /debug/optimality by MetricsHandler.

// ShapeAudit is one (backend, query shape) row of the audit: violation
// counts, max/mean deviation from the bound, worst offender device, and
// the shape's latency-SLO counters.
type ShapeAudit = audit.ShapeReport

// BackendAudit is every query shape one backend has served.
type BackendAudit = audit.BackendReport

// OptimalityReport snapshots the optimality audit of every backend,
// sorted by backend then shape.
func OptimalityReport() []BackendAudit { return audit.Report() }

// ResetAudit zeroes all accumulated audit state (counters exported to
// Prometheus stay monotonic; configured SLOs are kept).
//
// Deprecated: use Cluster.ResetAudit to scope the reset to one
// cluster's backend; this package-level form clears every backend.
func ResetAudit() { audit.Reset() }

// LatencySLO is a per-shape latency objective: at least Goal (e.g. 0.99)
// of a shape's queries must complete within Target.
type LatencySLO = audit.SLO

// SetLatencySLO sets the default latency objective for every query shape
// of one backend ("memory", "durable", "replicated", "netdist"); an
// empty backend applies it everywhere.
//
// Deprecated: use Cluster.SetLatencySLO (or WithLatencySLO at Open
// time), which derives the backend name from the cluster itself.
func SetLatencySLO(backend string, target time.Duration, goal float64) {
	audit.SetSLO(backend, audit.SLO{Target: target, Goal: goal})
}

// SetShapeLatencySLO overrides the latency objective for one query shape
// (e.g. "s**" — 's' per specified field, '*' per unspecified) of one
// backend.
//
// Deprecated: use Cluster.SetShapeLatencySLO (or WithShapeLatencySLO at
// Open time), which derives the backend name from the cluster itself.
func SetShapeLatencySLO(backend, shape string, target time.Duration, goal float64) {
	audit.SetShapeSLO(backend, shape, audit.SLO{Target: target, Goal: goal})
}

// Wide-event query log: one structured event per retrieval, head+tail
// sampled per shape with always-keep rules for errors, SLO-slow and
// bound-violating queries. The same data is served on /debug/events.

// QueryEvent is one wide event — everything known about a single
// retrieval: shape, backend, plan-cache hit, per-stage costs, per-device
// bucket counts against the strict bound, trace id, and error/partial
// manifest.
type QueryEvent = telemetry.Event

// QueryLogStats summarises one backend's event log: seen/kept counts
// and the sampling configuration.
type QueryLogStats = telemetry.LogStats

// QueryLogConfig tunes a backend's event sampling (ring capacity, head
// events per shape, 1-in-N tail sampling).
type QueryLogConfig = telemetry.Config

// ContextWithCaller attributes every retrieval under ctx to caller (a
// tenant name, a job id, ...): the wide-event query log records it as
// the event's tenant, so per-caller slices of the telemetry reports
// fall out of the same event stream.
func ContextWithCaller(ctx context.Context, caller string) context.Context {
	return engine.ContextWithCaller(ctx, caller)
}

// ContextWithCallers attributes the queries of one RetrieveBatch under
// ctx to callers, index-aligned with the batch (query i is attributed
// to callers[i]) — the seam a coalescing gateway uses to drive one
// engine batch on behalf of many tenants and still get per-tenant wide
// events.
func ContextWithCallers(ctx context.Context, callers []string) context.Context {
	return engine.ContextWithCallers(ctx, callers)
}

// QueryEvents returns up to n recent kept events of one backend
// ("memory", "durable", "replicated", "netdist"), most recent first.
func QueryEvents(backend string, n int) []QueryEvent {
	return telemetry.LogFor(backend).Recent(n)
}

// QueryLogStatsFor returns one backend's event-log statistics.
func QueryLogStatsFor(backend string) QueryLogStats {
	return telemetry.LogFor(backend).Stats()
}

// ConfigureQueryLog replaces one backend's event sampling configuration
// (zero fields keep their defaults) and clears its ring.
func ConfigureQueryLog(backend string, cfg QueryLogConfig) {
	telemetry.LogFor(backend).Configure(cfg)
}

// Metrics federation: a netdist coordinator pulls every device server's
// metrics snapshot over the wire (Coordinator.StartStatsPull or
// WithStatsPull) and merges them into a fleet view on /debug/cluster.

// FleetReport is one fleet's merged view: per-node liveness/lag rows,
// summed counters and merged histograms, and the worst-of digests
// (bound discrepancy, SLO burn) fxtop leads with.
type FleetReport = telemetry.ClusterReport

// FleetNodeStats is one node's self-description and metric snapshot as
// pulled over the wire.
type FleetNodeStats = telemetry.NodeStats

// FleetReports snapshots every registered fleet by name — the
// programmatic /debug/cluster.
func FleetReports() map[string]FleetReport { return telemetry.FleetReports() }

// Tail-based trace retention: the trace ring is a short staging window;
// queries that end up mattering (errors, SLO-slow, bound violations,
// plus a uniform sample) have their complete span trees copied into a
// decision buffer before the ring evicts them. Histogram exemplars link
// latency buckets to the retained trace ids (see /metrics?exemplars=1).

// RetainedTrace is one kept span tree plus why it was kept ("error",
// "slow", "bound" or "sample").
type RetainedTrace = obs.RetainedTrace

// RetainedTraces returns up to n retained traces, most recently kept
// first (the programmatic /debug/traces?retained=1).
func RetainedTraces(n int) []RetainedTrace {
	return obs.DefaultTracer().Retained(n)
}

// RetainedTraceByID looks one retained trace up by trace id — the
// recovery path from a histogram exemplar's trace_id to the full tree.
func RetainedTraceByID(traceID uint64) (RetainedTrace, bool) {
	return obs.DefaultTracer().RetainedTrace(traceID)
}

// SetTraceRetention tunes the decision buffer: capacity bounds how many
// traces stay recoverable, sampleEvery keeps 1 in N ordinary queries
// alongside the always-keep rules (0 keeps either default).
func SetTraceRetention(capacity, sampleEvery int) {
	obs.DefaultTracer().SetRetention(capacity, sampleEvery)
}

// SetLogLevel tunes the runtime logger: "debug", "info", "warn",
// "error" or "off". The default is "warn", which keeps routine
// recovery/compaction events (logged at info) quiet.
func SetLogLevel(level string) error {
	l, err := obs.ParseLevel(level)
	if err != nil {
		return err
	}
	obs.SetLogLevel(l)
	return nil
}
