// Mainmemory: a Butterfly-style main-memory database with M = 512
// processing nodes — the paper's large-M regime (§5.2.2 and Table 9),
// where every field directory is much smaller than the machine and
// address-computation cost matters as much as balance.
//
// The example builds the Table 9 file system (F = 8,8,8,16,16,16), plans
// FX with IU2 transforms, certifies queries with the §4.2 sufficient
// conditions, and compares the address-computation cost of FX, GDM and
// Modulo on the paper's MC68000 cycle model.
//
// Run with: go run ./examples/mainmemory
package main

import (
	"fmt"

	"fxdist"
)

func main() {
	const m = 512
	sizes := []int{8, 8, 8, 16, 16, 16}
	fs, err := fxdist.NewFileSystem(sizes, m)
	check(err)

	fx, err := fxdist.NewFX(fs, fxdist.WithRoundRobinPlan(), fxdist.WithFamily(fxdist.FamilyIU2))
	check(err)
	fmt.Printf("machine: %d nodes; directory %v; plan %v\n\n", m, sizes, fxdist.Kinds(fx))

	// Every field is smaller than M: the regime where Modulo's guarantee
	// never applies but FX still certifies a large class of queries.
	queries, err := fxdist.GenerateBucketQueries(sizes, 12, 0.5, 1988)
	check(err)
	fmt.Println("query           unspec  |R(q)|  FX-certified  FX-optimal  maxload  opt-bound")
	for _, q := range queries {
		loads := fxdist.Loads(fx, q)
		max, sum := 0, 0
		for _, l := range loads {
			sum += l
			if l > max {
				max = l
			}
		}
		bound := (sum + m - 1) / m
		fmt.Printf("%-15v %6d %7d %13v %11v %8d %10d\n",
			q, q.NumUnspecified(), sum,
			fxdist.FXGuaranteed(fx, q), fxdist.StrictOptimal(fx, q), max, bound)
	}

	// Main-memory response simulation: the whole-file query on 512 nodes.
	all := fxdist.AllQuery(len(sizes))
	res := fxdist.Simulate(fxdist.Loads(fx, all), fxdist.MainMemory)
	fmt.Printf("\nwhole-file retrieval: %d buckets/node max, simulated response %v\n",
		res.LargestResponseSize, res.Response)

	// §5.2.2: address computation cycles per bucket. In main memory this
	// dominates; FX needs no multiplies because its multipliers are powers
	// of two.
	fmt.Println("\naddress computation (MC68000 cycle model):")
	for _, row := range fxdist.CompareCPUCost(fxdist.MC68000, fx) {
		fmt.Println("  " + row.String())
	}

	// Inverse mapping: node 137 locates its share of a supplier-style
	// query without scanning the 2M-bucket grid.
	q := fxdist.NewQuery([]int{3, fxdist.Unspecified, fxdist.Unspecified, 9,
		fxdist.Unspecified, fxdist.Unspecified})
	im := fxdist.NewInverseMapper(fx)
	fmt.Printf("\nnode 137 holds %d of query %v's %d qualified buckets\n",
		im.CountOnDevice(q, 137), q, q.NumQualified(fs))

	// The interconnect is real on a Butterfly: simulate repartitioning
	// this query's qualified buckets through the 512-node network (the
	// parallel-projection traffic pattern of the machine's era).
	nw, err := fxdist.NewButterfly(m)
	check(err)
	msgs, err := nw.Repartition(fxdist.Loads(fx, q), 7)
	check(err)
	ns, err := nw.Run(msgs)
	check(err)
	fmt.Printf("network repartition of %d buckets: %d cycles over %d stages (ideal %d)\n",
		ns.Delivered, ns.Cycles, nw.Stages(), ns.IdealCycles)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
