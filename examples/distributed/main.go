// Distributed: the paper's parallel-device model as an actual distributed
// system. One TCP server per device holds that device's bucket partition;
// a coordinator fans partial match queries out and merges results. Each
// device answers with per-device inverse mapping — it never scans the
// grid. The example also snapshots the file with its allocator spec and
// restores it, the deployment path a real operator would use.
//
// Run with: go run ./examples/distributed
package main

import (
	"bytes"
	"fmt"

	"fxdist"
)

func main() {
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "sensor", Cardinality: 300},
		{Name: "metric", Cardinality: 24},
		{Name: "site", Cardinality: 12},
	}}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{4, 3, 2}))
	check(err)
	records, err := fxdist.GenerateRecords(spec, 20000, 11)
	check(err)
	for _, r := range records {
		check(file.Insert(r))
	}

	const m = 8
	fs, err := file.FileSystem(m)
	check(err)
	fx, err := fxdist.NewFX(fs)
	check(err)

	// Snapshot the loaded file + allocator spec: this is what ships to a
	// new deployment.
	var snap bytes.Buffer
	check(fxdist.SaveSnapshot(&snap, file, fx))
	fmt.Printf("snapshot: %d records, %d bytes, allocator %s\n",
		file.Len(), snap.Len(), fx.Name())

	// Restore and deploy: one TCP server per device on loopback.
	restored, alloc, err := fxdist.LoadSnapshot(&snap)
	check(err)
	addrs, stop, err := fxdist.DeployLocal(restored, alloc)
	check(err)
	defer stop()
	fmt.Printf("deployed %d device servers: %v ...\n\n", len(addrs), addrs[:2])

	// The coordinator needs only the schema (an empty file would do).
	coord, err := fxdist.Open(fxdist.Config{File: restored, Addrs: addrs})
	check(err)
	defer coord.Close()

	queries := []struct {
		label string
		spec  map[string]string
	}{
		{"metric=metric-3", map[string]string{"metric": "metric-3"}},
		{"site=site-7 metric=metric-1", map[string]string{"site": "site-7", "metric": "metric-1"}},
		{"sensor=sensor-42", map[string]string{"sensor": "sensor-42"}},
	}
	for _, q := range queries {
		pm, err := restored.Spec(q.spec)
		check(err)
		res, err := coord.Retrieve(pm)
		check(err)
		fmt.Printf("query %-30s hits=%-5d buckets/device=%v largest=%d\n",
			q.label, len(res.Records), res.DeviceBuckets, res.LargestResponseSize)
	}

	// Availability: redeploy with chained replication (each server also
	// holds its ring predecessor's backup partition) and keep answering
	// through a failover path.
	raddrs, rstop, err := fxdist.DeployReplicatedLocal(restored, alloc)
	check(err)
	defer rstop()
	rcoord, err := fxdist.Open(fxdist.Config{File: restored, Addrs: raddrs}, fxdist.WithFailover())
	check(err)
	defer rcoord.Close()
	pm, err := restored.Spec(map[string]string{"metric": "metric-3"})
	check(err)
	res, err := rcoord.Retrieve(pm)
	check(err)
	fmt.Printf("\nreplicated deployment: %d hits with failover-capable retrieval\n",
		len(res.Records))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
