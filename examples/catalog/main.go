// Catalog: a parts catalog declustered over 16 simulated parallel disks —
// the workload the paper's introduction motivates. Records are multi-key
// hashed on (part, supplier, warehouse, status); partial match queries
// like "every record for supplier S" are answered by all disks in
// parallel. The example compares FX and Modulo declustering on the same
// query mix and reports simulated response times.
//
// Run with: go run ./examples/catalog
package main

import (
	"fmt"
	"time"

	"fxdist"
)

func main() {
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "part", Cardinality: 5000},
		{Name: "supplier", Cardinality: 400, ZipfS: 1.5}, // a few big suppliers
		{Name: "warehouse", Cardinality: 30},
		{Name: "status", Cardinality: 6},
	}}
	// Directory: F = (16, 16, 8, 4) — every field directory is smaller
	// than the disk count M = 32, exactly the regime where Modulo
	// struggles and FX's field transformations matter.
	schema := fxdist.GenerateSchema(spec, []int{4, 4, 3, 2})
	const m = 32

	file, err := fxdist.NewFile(schema)
	check(err)
	records, err := fxdist.GenerateRecords(spec, 50000, 42)
	check(err)
	for _, r := range records {
		check(file.Insert(r))
	}
	fmt.Printf("catalog: %d records in a %v bucket grid on %d disks\n\n",
		file.Len(), file.Sizes(), m)

	fs, err := file.FileSystem(m)
	check(err)
	fx, err := fxdist.NewFX(fs)
	check(err)
	md := fxdist.NewModulo(fs)

	queries, err := fxdist.GeneratePartialMatches(spec, 40, 0.4, 7)
	check(err)

	for _, alloc := range []fxdist.GroupAllocator{fx, md} {
		cluster, err := fxdist.Open(fxdist.Config{File: file, Allocator: alloc},
			fxdist.WithCostModel(fxdist.ParallelDisk))
		check(err)
		var worstResp, totalResp time.Duration
		var worstLRS, hits int
		for _, pm := range queries {
			res, err := cluster.Retrieve(pm)
			check(err)
			hits += len(res.Records)
			totalResp += res.Response
			if res.Response > worstResp {
				worstResp = res.Response
			}
			if res.LargestResponseSize > worstLRS {
				worstLRS = res.LargestResponseSize
			}
		}
		fmt.Printf("%-22s hits=%-6d avg response=%-12v worst response=%-12v worst buckets/disk=%d\n",
			alloc.Name(), hits, totalResp/time.Duration(len(queries)), worstResp, worstLRS)
	}

	// Drill into one query: everything from one supplier.
	pm, err := file.Spec(map[string]string{"supplier": "supplier-0"})
	check(err)
	fmt.Println("\nquery: supplier=supplier-0 (all parts, warehouses, statuses)")
	for _, alloc := range []fxdist.GroupAllocator{fx, md} {
		cluster, err := fxdist.Open(fxdist.Config{File: file, Allocator: alloc},
			fxdist.WithCostModel(fxdist.ParallelDisk))
		check(err)
		res, err := cluster.Retrieve(pm)
		check(err)
		fmt.Printf("%-22s hits=%-6d buckets/disk=%v response=%v\n",
			alloc.Name(), len(res.Records), res.DeviceBuckets, res.Response)
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
