// Declustercompare: a side-by-side study of the declustering methods on
// the paper's Table 7 configuration (M = 32, six fields of size 8),
// including the GDM "trial and error" problem: GDM can match FX, but only
// if you search for good multipliers — FX needs no search.
//
// Run with: go run ./examples/declustercompare
package main

import (
	"fmt"
	"math/rand"

	"fxdist"
)

func main() {
	sizes := []int{8, 8, 8, 8, 8, 8}
	const m = 32
	fs, err := fxdist.NewFileSystem(sizes, m)
	check(err)

	fx, err := fxdist.NewFX(fs, fxdist.WithRoundRobinPlan(), fxdist.WithFamily(fxdist.FamilyIU1))
	check(err)
	md := fxdist.NewModulo(fs)
	gdm1, err := fxdist.NewGDM(fs, fxdist.GDM1Multipliers)
	check(err)
	dhw := fxdist.NewDHW(fs)

	methods := []fxdist.GroupAllocator{md, gdm1, dhw, fx}
	fmt.Printf("file system: F = %v, M = %d\n\n", sizes, m)
	fmt.Println("average largest response size over all queries with k unspecified fields:")
	fmt.Printf("%-3s %10s %10s %10s %10s %10s\n", "k", "Modulo", "GDM1", "DHW", "FX", "Optimal")
	for _, row := range fxdist.ResponseTable(fs, methods, []int{2, 3, 4, 5, 6}) {
		fmt.Printf("%-3d %10.1f %10.1f %10.1f %10.1f %10.1f\n",
			row.K, row.Avg[0], row.Avg[1], row.Avg[2], row.Avg[3], row.Optimal)
	}

	// The GDM trial-and-error search the paper alludes to: sample random
	// odd multiplier sets and keep the best k=2 average. FX hits the value
	// its theorems promise with zero search.
	fmt.Println("\nGDM multiplier search (k=2 average largest response size):")
	r := rand.New(rand.NewSource(1))
	best, bestSet := 1e18, []int(nil)
	const trials = 60
	for t := 0; t < trials; t++ {
		mult := make([]int, len(sizes))
		for i := range mult {
			mult[i] = 2*r.Intn(32) + 1 // odd multipliers
		}
		g, err := fxdist.NewGDM(fs, mult)
		check(err)
		rows := fxdist.ResponseTable(fs, []fxdist.GroupAllocator{g}, []int{2})
		if avg := rows[0].Avg[0]; avg < best {
			best, bestSet = avg, mult
		}
	}
	fxRows := fxdist.ResponseTable(fs, []fxdist.GroupAllocator{fx}, []int{2})
	fmt.Printf("  best of %d random GDM sets: %.2f with %v\n", trials, best, bestSet)
	fmt.Printf("  FX, no search:             %.2f\n", fxRows[0].Avg[0])

	// Why FX wins: the transform images interlock. Show the device of the
	// same bucket under each method.
	bucket := []int{1, 2, 3, 4, 5, 6}
	fmt.Printf("\nbucket %v -> Modulo:%d GDM1:%d DHW:%d FX:%d\n",
		bucket, md.Device(bucket), gdm1.Device(bucket), dhw.Device(bucket), fx.Device(bucket))

	// Optimality certificates across query shapes.
	fmt.Println("\nstrict-optimality certificates (3 unspecified fields):")
	q := fxdist.NewQuery([]int{fxdist.Unspecified, fxdist.Unspecified, fxdist.Unspecified, 0, 0, 0})
	fmt.Printf("  query %v: FX guaranteed=%v exact=%v; Modulo guaranteed=%v exact=%v\n",
		q, fxdist.FXGuaranteed(fx, q), fxdist.StrictOptimal(fx, q),
		fxdist.ModuloGuaranteed(fs, q), fxdist.StrictOptimal(md, q))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
