// Pipeline: the full life of a partial-match file, end to end —
//
//  1. DESIGN   the directory: split the bit budget across fields by how
//     often queries specify them (the Aho-Ullman problem the paper cites),
//  2. DECLUSTER with FX over M devices,
//  3. REPLICATE with chained declustering (backup on the ring successor),
//  4. FAIL a device and watch load spread around the ring instead of
//     doubling on one neighbour,
//  5. GROW a directory field and plan the redistribution.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"

	"fxdist"
)

func main() {
	const m = 16

	// 1. Design: ~40k records at ~10 records/bucket => 12 directory bits.
	// "part" is specified by 80% of queries, "status" by 10%.
	bits, err := fxdist.DirectoryBitsFor(40000, 10)
	check(err)
	res, err := fxdist.DesignDepths(bits, []fxdist.DesignField{
		{SpecProb: 0.8},              // part
		{SpecProb: 0.5},              // supplier
		{SpecProb: 0.3, MaxDepth: 4}, // warehouse (only ~16 distinct values)
		{SpecProb: 0.1, MaxDepth: 3}, // status
	})
	check(err)
	fmt.Printf("design: %d directory bits -> depths %v (F = %v), E[qualified buckets] = %.1f\n",
		bits, res.Depths, res.Sizes(), res.ExpectedQualified)

	// 2. Decluster the designed grid with FX.
	fs, err := fxdist.NewFileSystem(res.Sizes(), m)
	check(err)
	fx, err := fxdist.NewFX(fs)
	check(err)
	fmt.Printf("decluster: %s over %d devices; perfect optimal: %v\n",
		fx.Name(), m, fxdist.PerfectOptimal(fx))

	// 3. + 4. Replicate and fail a device.
	q := fxdist.NewQuery([]int{3, fxdist.Unspecified, fxdist.Unspecified, fxdist.Unspecified})
	for _, mode := range []fxdist.ReplicaMode{fxdist.NaiveFailover, fxdist.ChainedFailover} {
		p := fxdist.NewReplicaPlacement(fx, mode)
		check(p.Fail(5))
		d := p.Degradation(q)
		fmt.Printf("failover %-8v device 5 down: max load %d -> %d (%.2fx)\n",
			mode, d.HealthyMax, d.DegradedMax, d.Ratio)
	}

	// 5. Grow the hottest field (part) one doubling and plan the move.
	plans, err := fxdist.GrowthSeries(res.Sizes(), m, 0, 1,
		func(fs fxdist.FileSystem) (fxdist.GroupAllocator, error) {
			return fxdist.NewFX(fs)
		})
	check(err)
	fmt.Printf("growth: doubling field 0 moves %d of %d buckets (%.0f%%) between devices\n",
		plans[0].Moved, plans[0].Total, 100*plans[0].MoveFraction())
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
