// Quickstart: decluster a multi-key hashed bucket grid with FX and answer
// partial match queries with maximum parallelism.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"fxdist"
)

func main() {
	// A file hashed on three fields into 8 x 8 x 4 buckets, spread over
	// 16 parallel devices.
	fs, err := fxdist.NewFileSystem([]int{8, 8, 4}, 16)
	if err != nil {
		panic(err)
	}

	// FX plans field transformations automatically: fields smaller than M
	// get I, U or IU2 so that partial match queries spread evenly.
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		panic(err)
	}
	fmt.Println("allocator:", fx.Name())
	fmt.Println("transforms:", fxdist.Kinds(fx))

	// Where does a bucket live?
	bucket := []int{3, 5, 1}
	fmt.Printf("bucket %v -> device %d\n\n", bucket, fx.Device(bucket))

	// A partial match query: field 0 = 3, fields 1 and 2 free.
	q := fxdist.NewQuery([]int{3, fxdist.Unspecified, fxdist.Unspecified})
	loads := fxdist.Loads(fx, q)
	fmt.Printf("query %v qualifies %d buckets\n", q, 8*4)
	fmt.Println("per-device qualified buckets:", loads)
	fmt.Println("largest response size:", fxdist.LargestLoad(fx, q))
	fmt.Println("strict optimal:", fxdist.StrictOptimal(fx, q))

	// With at most three fields smaller than M, FX is perfect optimal —
	// strict optimal for every possible partial match query (Theorem 9).
	fmt.Println("perfect optimal:", fxdist.PerfectOptimal(fx))

	// Compare with the Modulo baseline on the same query.
	md := fxdist.NewModulo(fs)
	fmt.Println("\nModulo per-device loads:", fxdist.Loads(md, q))
	fmt.Println("Modulo largest response size:", fxdist.LargestLoad(md, q))

	// Each device finds its own qualified buckets without scanning the
	// grid (inverse mapping).
	im := fxdist.NewInverseMapper(fx)
	fmt.Println("\nqualified buckets on device 0:")
	im.EachOnDevice(q, 0, func(b []int) {
		fmt.Printf("  %v\n", b)
	})
}
