// Adaptive: the closed loop a long-lived deployment runs —
//
//  1. OBSERVE  the query stream with a workload tracker,
//  2. RECOMMEND a declustering method for the measured specification
//     probabilities (expected largest response size),
//  3. MIGRATE  if the recommendation beats the current method, with a
//     bucket-movement plan,
//  4. WATCH    occupancy and grow the directory field that splits best.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"

	"fxdist"
)

func main() {
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "device", Cardinality: 900},
		{Name: "metric", Cardinality: 40},
		{Name: "region", Cardinality: 10},
	}}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{3, 3, 2}))
	check(err)
	records, err := fxdist.GenerateRecords(spec, 30000, 3)
	check(err)
	for _, r := range records {
		check(file.Insert(r))
	}
	const m = 32
	fs, err := file.FileSystem(m)
	check(err)

	// The deployment starts on Modulo (a legacy choice).
	current := fxdist.GroupAllocator(fxdist.NewModulo(fs))
	fmt.Printf("running on %s, %d records, %d devices\n\n", current.Name(), file.Len(), m)

	// 1. Observe: a scan-heavy stream (few fields specified).
	tracker, err := fxdist.NewWorkloadTracker(file.NumFields())
	check(err)
	queries, err := fxdist.GeneratePartialMatches(spec, 500, 0.3, 9)
	check(err)
	for _, pm := range queries {
		check(tracker.ObservePartialMatch(pm))
	}
	probs := tracker.SpecProbs()
	fmt.Printf("observed %d queries; specification probabilities %.2f\n",
		tracker.Queries(), probs)

	// 2. Recommend.
	fx, err := fxdist.NewFX(fs)
	check(err)
	candidates := []fxdist.GroupAllocator{current, fx}
	rec, err := fxdist.RecommendMethod(candidates, probs)
	check(err)
	fmt.Printf("expected largest response: %s=%.2f, %s=%.2f -> recommend %s\n",
		current.Name(), rec.Expected[0], fx.Name(), rec.Expected[1], rec.Name)

	// 3. Migrate if it pays.
	if rec.Best != 0 {
		plan, err := fxdist.PlanMigration(current, candidates[rec.Best])
		check(err)
		fmt.Printf("migration: %d of %d buckets move (%.0f%%)\n",
			plan.Moved, plan.Total, 100*plan.MoveFraction())
		current = candidates[rec.Best]
	}

	// 4. Directory health: grow the field that splits best when buckets
	// run hot.
	mean, max := file.Occupancy()
	fmt.Printf("\noccupancy: mean %.1f, max %d records/bucket\n", mean, max)
	if idx, ok := file.GrowAdvice(); ok {
		check(file.Grow(idx))
		mean2, max2 := file.Occupancy()
		fmt.Printf("grew field %d (%s): occupancy now mean %.1f, max %d\n",
			idx, spec.Fields[idx].Name, mean2, max2)
		// The allocator must follow the new directory sizes.
		fs2, err := file.FileSystem(m)
		check(err)
		next, err := fxdist.NewFX(fs2)
		check(err)
		fmt.Printf("re-declustered as %s on the grown grid\n", next.Name())
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
