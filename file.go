package fxdist

import (
	"fxdist/internal/engine"
	"fxdist/internal/mkhash"
	"fxdist/internal/storage"
)

// Record is one tuple of a multi-key hashed file.
type Record = mkhash.Record

// Schema names a file's fields and fixes the initial per-field directory
// depths (field i starts with 2^Depths[i] hash cells).
type Schema = mkhash.Schema

// File is a multi-key hashed file: records hash field-wise into a bucket
// grid, the substrate the paper's declustering operates on.
type File = mkhash.File

// PartialMatch is a value-level partial match query over a File; nil
// entries are unspecified fields.
type PartialMatch = mkhash.PartialMatch

// FileOption configures NewFile.
type FileOption = mkhash.Option

// WithFieldHash overrides the hash function of one field.
func WithFieldHash(fieldIdx int, h mkhash.FieldHash) FileOption {
	return mkhash.WithHash(fieldIdx, h)
}

// NewFile builds an empty multi-key hashed file.
func NewFile(schema Schema, opts ...FileOption) (*File, error) {
	return mkhash.New(schema, opts...)
}

// MemoryCluster distributes a File's buckets over M simulated parallel
// devices according to a declustering allocator, and answers partial
// match queries in parallel with per-device inverse mapping. All cluster
// kinds — MemoryCluster, DurableCluster, ReplicatedCluster and the
// distributed Coordinator — retrieve through one shared engine executor
// and therefore share the same capabilities: RetrieveContext
// (cancellation/deadlines) and RetrieveBatch (multi-query pipelining
// over one bounded worker pool). Most callers should build clusters
// through Open, whose unified Cluster handle wraps every kind.
type MemoryCluster = storage.Cluster

// DeviceFailure wraps one device's retrieval failure with the failing
// device's id. A failed retrieval reports every failing device in its
// error; match individual failures with errors.As.
type DeviceFailure = engine.DeviceFailure

// TracedError wraps a retrieval error with the trace id of the failed
// retrieval — every retrieval error from a traced cluster carries one,
// so log lines join against RecentTraces//debug/traces output. Match
// with errors.As; Unwrap exposes the underlying cause.
type TracedError = engine.TracedError

// CostModel is the simulated per-device service time model.
type CostModel = storage.CostModel

// Device service models for the paper's two environments (§5.2).
var (
	// ParallelDisk models late-1980s disks on a shared bus.
	ParallelDisk = storage.ParallelDisk
	// MainMemory models a Butterfly-style multiprocessor memory node.
	MainMemory = storage.MainMemory
)

// RetrieveResult reports a parallel retrieval: matching records and the
// simulated cost breakdown.
type RetrieveResult = storage.Result

// SimResult is a record-free simulated retrieval at bucket granularity.
type SimResult = storage.SimResult

// Simulate computes the simulated parallel response time of a query from
// its per-device load vector (see Loads): response time is the slowest
// device's service time (§5.2.1's symmetric-device model).
func Simulate(loads []int, model CostModel) SimResult {
	return storage.Simulate(loads, model)
}

// ProjectResult reports a parallel projection with duplicate elimination
// (Cluster.Project) — the relational operator the paper's Butterfly
// citation [RoJa87] studies. Pass a ButterflyNetwork to cost the gather
// phase on the simulated interconnect.
type ProjectResult = storage.ProjectResult

// ReplicatedCluster is a simulated cluster with chained-declustering
// replication: each bucket is stored on its primary device and the ring
// successor, devices can Fail and Restore, and retrieval keeps answering
// through any single failure.
type ReplicatedCluster = storage.ReplicatedCluster

// DurableCluster is the disk-backed cluster: every device persists its
// bucket partition in a crash-safe log under one directory, with the
// schema and allocator spec in a metadata snapshot.
type DurableCluster = storage.DurableCluster
