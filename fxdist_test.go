package fxdist_test

import (
	"testing"

	"fxdist"
)

// The public facade must support the full quickstart flow.
func TestPublicAPIQuickstart(t *testing.T) {
	fs, err := fxdist.NewFileSystem([]int{8, 8, 4}, 16)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	dev := fx.Device([]int{3, 5, 1})
	if dev < 0 || dev >= 16 {
		t.Fatalf("device %d out of range", dev)
	}
	q := fxdist.NewQuery([]int{3, fxdist.Unspecified, fxdist.Unspecified})
	loads := fxdist.Loads(fx, q)
	sum := 0
	for _, l := range loads {
		sum += l
	}
	if sum != 32 {
		t.Errorf("loads sum %d, want 32", sum)
	}
	if !fxdist.StrictOptimal(fx, q) {
		t.Error("FX not strict optimal for this query")
	}
	if got := fxdist.LargestLoad(fx, q); got != 2 {
		t.Errorf("LargestLoad = %d, want 2", got)
	}
	if !fxdist.PerfectOptimal(fx) {
		t.Error("three small fields should be perfect optimal (Theorem 9)")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	fs, _ := fxdist.NewFileSystem([]int{4, 4}, 16)
	md := fxdist.NewModulo(fs)
	if fxdist.KOptimal(md, 2) {
		t.Error("Modulo should not be 2-optimal here")
	}
	gdm, err := fxdist.NewGDM(fs, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if gdm.Device([]int{2, 3}) != (3*2+4*3)%16 {
		t.Error("GDM device wrong")
	}
	bfx, err := fxdist.NewBasicFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range fxdist.Kinds(bfx) {
		if k != fxdist.I {
			t.Error("Basic FX should be all identity")
		}
	}
}

func TestPublicAPISufficientConditions(t *testing.T) {
	fs, _ := fxdist.NewFileSystem([]int{2, 2, 2, 2}, 16)
	fx, _ := fxdist.NewFX(fs, fxdist.WithRoundRobinPlan(), fxdist.WithFamily(fxdist.FamilyIU2))
	q := fxdist.NewQuery([]int{0, fxdist.Unspecified, 1, fxdist.Unspecified})
	if !fxdist.FXGuaranteed(fx, q) {
		t.Error("two different-method small fields should be guaranteed")
	}
	if fxdist.ModuloGuaranteed(fs, q) {
		t.Error("Modulo should not be guaranteed without a large field")
	}
}

func TestPublicAPIFileAndCluster(t *testing.T) {
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "part", Cardinality: 100},
		{Name: "supplier", Cardinality: 20},
		{Name: "city", Cardinality: 10},
	}}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{4, 3, 2}))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := fxdist.GenerateRecords(spec, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := file.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := file.FileSystem(8)
	if err != nil {
		t.Fatal(err)
	}
	fx, _ := fxdist.NewFX(fs)
	cluster, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx})
	if err != nil {
		t.Fatal(err)
	}
	pms, err := fxdist.GeneratePartialMatches(spec, 20, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, pm := range pms {
		res, err := cluster.Retrieve(pm)
		if err != nil {
			t.Fatal(err)
		}
		want, err := file.Search(pm)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != len(want) {
			t.Fatalf("cluster returned %d records, file search %d", len(res.Records), len(want))
		}
		if res.Response > res.TotalWork {
			t.Error("response exceeds total work")
		}
	}
}

func TestPublicAPIAnalysis(t *testing.T) {
	rows := fxdist.PaperTable7().Rows()
	if len(rows) != 5 || rows[0].K != 2 {
		t.Fatalf("table rows = %+v", rows)
	}
	pts := fxdist.PaperFigure1().Points(false)
	if len(pts) != 7 {
		t.Fatalf("figure points = %d", len(pts))
	}
	curve := fxdist.OptimalityCurve(4, 16, 4, 16, fxdist.FamilyIU1, false)
	if len(curve) != 5 {
		t.Fatalf("curve points = %d", len(curve))
	}
}

func TestPublicAPICPUCost(t *testing.T) {
	fs, _ := fxdist.NewFileSystem([]int{8, 8, 8, 8, 8, 8}, 32)
	fx, _ := fxdist.NewFX(fs, fxdist.WithRoundRobinPlan(), fxdist.WithFamily(fxdist.FamilyIU1))
	rows := fxdist.CompareCPUCost(fxdist.MC68000, fx)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Method != "FX" || rows[0].VsGDM > 0.45 {
		t.Errorf("FX row = %+v", rows[0])
	}
}

func TestPublicAPIInverseMapper(t *testing.T) {
	fs, _ := fxdist.NewFileSystem([]int{8, 8}, 4)
	fx, _ := fxdist.NewFX(fs)
	im := fxdist.NewInverseMapper(fx)
	q := fxdist.AllQuery(2)
	total := 0
	for dev := 0; dev < 4; dev++ {
		total += im.CountOnDevice(q, dev)
	}
	if total != 64 {
		t.Errorf("inverse map total %d, want 64", total)
	}
}

func TestPublicAPISimulate(t *testing.T) {
	fs, _ := fxdist.NewFileSystem([]int{4, 4}, 16)
	fx, _ := fxdist.NewFX(fs)
	res := fxdist.Simulate(fxdist.Loads(fx, fxdist.AllQuery(2)), fxdist.ParallelDisk)
	if res.LargestResponseSize != 1 {
		t.Errorf("LargestResponseSize = %d", res.LargestResponseSize)
	}
}
