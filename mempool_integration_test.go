package fxdist_test

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"fxdist"
)

// poolDiffSetup builds a loaded file plus a query mix that exercises
// multi-device fan-out with value filters (hash false positives
// included).
func poolDiffSetup(t *testing.T) (*fxdist.File, []fxdist.PartialMatch) {
	t.Helper()
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "a", Cardinality: 120},
		{Name: "b", Cardinality: 40},
		{Name: "c", Cardinality: 8},
	}}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{3, 3, 2}))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := fxdist.GenerateRecords(spec, 5000, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := file.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	pms, err := fxdist.GeneratePartialMatches(spec, 24, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	return file, pms
}

// copyKeys materializes a result's records as owned strings — safe to
// keep after an arena result is released.
func copyKeys(recs []fxdist.Record) []string {
	keys := make([]string, len(recs))
	for i, r := range recs {
		keys[i] = strings.Join(r, "\x00")
	}
	return keys
}

func sortedCopy(keys []string) []string {
	out := append([]string(nil), keys...)
	sort.Strings(out)
	return out
}

// TestPoolingDifferentialAcrossBackends runs the same query mix through
// every backend in all three ownership modes — copy-out pooling
// (default), WithoutMemPool, and WithArenaResults — and demands
// byte-identical answers: identical record order across modes within a
// backend (pooling must not reorder a backend's merge), identical
// record multisets across backends. This is the gate that pooled slab
// reuse never leaks one query's records into another's answer.
func TestPoolingDifferentialAcrossBackends(t *testing.T) {
	file, pms := poolDiffSetup(t)
	fs, err := file.FileSystem(8)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}

	type opener func(t *testing.T, opts ...fxdist.Option) (*fxdist.Cluster, func())
	backends := map[string]opener{
		"memory": func(t *testing.T, opts ...fxdist.Option) (*fxdist.Cluster, func()) {
			c, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx}, opts...)
			if err != nil {
				t.Fatal(err)
			}
			return c, func() {}
		},
		"durable": func(t *testing.T, opts ...fxdist.Option) (*fxdist.Cluster, func()) {
			c, err := fxdist.Open(fxdist.Config{Dir: t.TempDir(), File: file, Allocator: fx}, opts...)
			if err != nil {
				t.Fatal(err)
			}
			return c, func() { c.Close() }
		},
		"replicated": func(t *testing.T, opts ...fxdist.Option) (*fxdist.Cluster, func()) {
			c, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx},
				append([]fxdist.Option{fxdist.WithReplication(fxdist.ChainedFailover)}, opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			return c, func() {}
		},
		"netdist": func(t *testing.T, opts ...fxdist.Option) (*fxdist.Cluster, func()) {
			addrs, stop, err := fxdist.DeployLocal(file, fx)
			if err != nil {
				t.Fatal(err)
			}
			c, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs}, opts...)
			if err != nil {
				stop()
				t.Fatal(err)
			}
			return c, func() { c.Close(); stop() }
		},
	}
	modes := []struct {
		name string
		opts []fxdist.Option
	}{
		{"pooled", nil},
		{"nopool", []fxdist.Option{fxdist.WithoutMemPool()}},
		{"arena", []fxdist.Option{fxdist.WithArenaResults()}},
	}

	// want[qi] is the reference answer from a direct single-device file
	// search, sorted.
	want := make([][]string, len(pms))
	for qi, pm := range pms {
		recs, err := file.Search(pm)
		if err != nil {
			t.Fatal(err)
		}
		want[qi] = sortedCopy(copyKeys(recs))
	}

	for name, open := range backends {
		t.Run(name, func(t *testing.T) {
			// exact[qi] is the backend's record order under the first
			// mode; later modes must reproduce it exactly.
			var exact [][]string
			for _, mode := range modes {
				c, cleanup := open(t, mode.opts...)
				got := make([][]string, len(pms))
				for qi, pm := range pms {
					res, err := c.Retrieve(pm)
					if err != nil {
						t.Fatalf("%s/%s query %d: %v", name, mode.name, qi, err)
					}
					got[qi] = copyKeys(res.Records)
					res.Release()
					res.Release() // idempotent, also on copy-out results
				}
				cleanup()
				for qi := range pms {
					if s := sortedCopy(got[qi]); !equalStrings(s, want[qi]) {
						t.Fatalf("%s/%s query %d: %d records, file.Search has %d (answers differ)",
							name, mode.name, qi, len(s), len(want[qi]))
					}
				}
				if exact == nil {
					exact = got
					continue
				}
				for qi := range pms {
					if !equalStrings(got[qi], exact[qi]) {
						t.Fatalf("%s/%s query %d: record order differs from %s mode",
							name, mode.name, qi, modes[0].name)
					}
				}
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestArenaRetrieveReleaseHammer pounds an arena-mode cluster with
// concurrent Retrieve → read → Release loops (plus double releases) —
// the race-detector gate that slab recycling is properly fenced: a
// recycled hit frame or record arena must never be visible to another
// in-flight retrieval.
func TestArenaRetrieveReleaseHammer(t *testing.T) {
	file, pms := poolDiffSetup(t)
	fs, err := file.FileSystem(8)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	addrs, stop, err := fxdist.DeployLocal(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	want := make(map[int]int, len(pms))
	for qi, pm := range pms {
		recs, err := file.Search(pm)
		if err != nil {
			t.Fatal(err)
		}
		want[qi] = len(recs)
	}

	clusters := map[string]*fxdist.Cluster{}
	mem, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx}, fxdist.WithArenaResults())
	if err != nil {
		t.Fatal(err)
	}
	clusters["memory"] = mem
	net, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs}, fxdist.WithArenaResults())
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	clusters["netdist"] = net

	const workers, iters = 8, 40
	for name, c := range clusters {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						qi := (w*iters + i) % len(pms)
						res, err := c.Retrieve(pms[qi])
						if err != nil {
							errs <- err
							return
						}
						// Touch every field byte while the lease is held,
						// then verify the count against the reference.
						total := 0
						for _, r := range res.Records {
							for _, f := range r {
								total += len(f)
							}
						}
						n := len(res.Records)
						res.Release()
						go res.Release() // idempotent across goroutines too
						if n != want[qi] {
							t.Errorf("query %d returned %d records, want %d (total field bytes %d)",
								qi, n, want[qi], total)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}
