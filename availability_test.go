package fxdist_test

import (
	"testing"

	"fxdist"
)

func TestPublicReplicaPlacement(t *testing.T) {
	fs, _ := fxdist.NewFileSystem([]int{16, 16}, 8)
	fx, _ := fxdist.NewFX(fs)
	q := fxdist.AllQuery(2)

	naive := fxdist.NewReplicaPlacement(fx, fxdist.NaiveFailover)
	if err := naive.Fail(2); err != nil {
		t.Fatal(err)
	}
	nd := naive.Degradation(q)

	chained := fxdist.NewReplicaPlacement(fx, fxdist.ChainedFailover)
	if err := chained.Fail(2); err != nil {
		t.Fatal(err)
	}
	cd := chained.Degradation(q)

	if nd.Ratio != 2.0 {
		t.Errorf("naive degradation ratio %.2f, want 2.0", nd.Ratio)
	}
	if cd.Ratio >= nd.Ratio {
		t.Errorf("chained ratio %.2f not better than naive %.2f", cd.Ratio, nd.Ratio)
	}
	// Served loads cover the query exactly.
	loads := chained.Loads(q)
	sum := 0
	for _, l := range loads {
		sum += l
	}
	if sum != q.NumQualified(fs) {
		t.Errorf("served %d buckets, want %d", sum, q.NumQualified(fs))
	}
}

func TestPublicDesign(t *testing.T) {
	bits, err := fxdist.DirectoryBitsFor(10000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if bits != 10 {
		t.Errorf("bits = %d, want 10", bits)
	}
	res, err := fxdist.DesignDepths(bits, []fxdist.DesignField{
		{SpecProb: 0.9}, {SpecProb: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depths[0] <= res.Depths[1] {
		t.Errorf("depths %v: hot field should be deeper", res.Depths)
	}
	probs := []float64{0.9, 0.2}
	if got := fxdist.ExpectedQualifiedBuckets(res.Depths, probs); got != res.ExpectedQualified {
		t.Errorf("objective mismatch: %v vs %v", got, res.ExpectedQualified)
	}
	// The designed sizes feed straight into a file system.
	if _, err := fxdist.NewFileSystem(res.Sizes(), 16); err != nil {
		t.Errorf("designed sizes rejected: %v", err)
	}
}
