package fxdist_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"fxdist"
	"fxdist/client"
	"fxdist/internal/gate"
)

// gateFixture builds a loaded file, an FX allocator, a fresh in-memory
// cluster (empty plan cache) and a Gate over them, served via httptest
// with the observability surface mounted like cmd/fxgate mounts it.
func gateFixture(t *testing.T, tenants []gate.TenantConfig, window time.Duration, maxBatch int) (*fxdist.Cluster, *gate.Gate, *httptest.Server) {
	t.Helper()
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "part", Cardinality: 200},
		{Name: "supplier", Cardinality: 40},
		{Name: "warehouse", Cardinality: 8},
	}}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{4, 3, 2}))
	if err != nil {
		t.Fatal(err)
	}
	records, err := fxdist.GenerateRecords(spec, 1200, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := file.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := file.FileSystem(8)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	g, err := gate.New(gate.Config{
		Cluster:        cluster,
		File:           file,
		Allocator:      fx,
		Tenants:        tenants,
		CoalesceWindow: window,
		MaxBatch:       maxBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	mux := http.NewServeMux()
	mux.Handle("/rpc", g)
	mux.Handle("/debug/", fxdist.MetricsHandler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return cluster, g, srv
}

// TestGateMultiTenantCoalescing is the tentpole's acceptance test: two
// tenants fire a concurrent burst of same-shape queries and the gate
// must (a) compile the shape's plan exactly once, (b) drive at most
// ceil(N/maxBatch) engine fan-outs, (c) return byte-identical records
// to every caller of the same query, and (d) expose per-tenant audit
// rows at /debug/tenants. Runs under -race in CI's whole-module pass.
func TestGateMultiTenantCoalescing(t *testing.T) {
	const (
		perTenant = 16
		n         = 2 * perTenant
		maxBatch  = 8
	)
	tenants := []gate.TenantConfig{
		{Name: "alpha", APIKey: "key-alpha"},
		{Name: "beta", APIKey: "key-beta"},
	}
	// A generous window so one flush drains the whole burst: the bound
	// in (b) is only guaranteed when all N land inside one window.
	cluster, g, srv := gateFixture(t, tenants, 50*time.Millisecond, maxBatch)

	alpha := client.New(srv.URL+"/rpc", client.WithAPIKey("key-alpha"))
	beta := client.New(srv.URL+"/rpc", client.WithAPIKey("key-beta"))
	defer alpha.Close()
	defer beta.Close()

	query := map[string]string{"supplier": "supplier-3"}
	results := make([]*client.RetrieveResult, n)
	errs := make([]error, n)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			c := alpha
			if i >= perTenant {
				c = beta
			}
			start.Wait()
			results[i], errs[i] = c.Retrieve(context.Background(), query)
		}(i)
	}
	start.Done()
	done.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	// (a) one plan-cache compilation across both tenants.
	pc := cluster.PlanCache()
	if pc.Misses != 1 {
		t.Fatalf("plan cache misses = %d, want exactly 1 (shape compiled once across tenants)", pc.Misses)
	}

	// (b) at most ceil(N/maxBatch) engine fan-outs.
	rep := g.Report()
	wantMax := uint64((n + maxBatch - 1) / maxBatch)
	if rep.Batches == 0 || rep.Batches > wantMax {
		t.Fatalf("batches = %d, want 1..%d", rep.Batches, wantMax)
	}
	if rep.CoalescedQueries != n {
		t.Fatalf("coalesced queries = %d, want %d", rep.CoalescedQueries, n)
	}

	// (c) byte-identical per-tenant results.
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[i].Records, results[0].Records) {
			t.Fatalf("request %d records diverge from request 0", i)
		}
		if !reflect.DeepEqual(results[i].DeviceBuckets, results[0].DeviceBuckets) {
			t.Fatalf("request %d device buckets diverge", i)
		}
		if !results[i].Coalesced || results[i].BatchSize < 2 {
			t.Fatalf("request %d not marked coalesced (batch %d)", i, results[i].BatchSize)
		}
	}
	// ... and identical to an uncoalesced retrieval of the same query.
	pm, err := cluster.Spec(query)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := cluster.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Records) != len(results[0].Records) {
		t.Fatalf("coalesced result has %d records, direct retrieval %d",
			len(results[0].Records), len(direct.Records))
	}

	// (d) per-tenant audit rows on /debug/tenants.
	res, err := http.Get(srv.URL + "/debug/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/debug/tenants status %d", res.StatusCode)
	}
	var doc gate.Report
	if err := json.NewDecoder(res.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Tenants) != 2 {
		t.Fatalf("tenant rows = %d, want 2", len(doc.Tenants))
	}
	for _, row := range doc.Tenants {
		if row.Requests != perTenant {
			t.Fatalf("tenant %s requests = %d, want %d", row.Name, row.Requests, perTenant)
		}
		if row.Coalesced != perTenant {
			t.Fatalf("tenant %s coalesced = %d, want %d", row.Name, row.Coalesced, perTenant)
		}
		if len(row.Shapes) != 1 || row.Shapes[0].Shape != "*s*" {
			t.Fatalf("tenant %s shape rows = %+v, want one *s* row", row.Name, row.Shapes)
		}
		if row.Shapes[0].Queries != perTenant {
			t.Fatalf("tenant %s shape queries = %d, want %d", row.Name, row.Shapes[0].Queries, perTenant)
		}
	}

	// The engine's wide events carry the tenant dimension for both.
	seen := map[string]bool{}
	for _, ev := range fxdist.QueryEvents(cluster.Kind(), 512) {
		if ev.Tenant != "" {
			seen[ev.Tenant] = true
		}
	}
	if !seen["alpha"] || !seen["beta"] {
		t.Fatalf("wide events missing tenant attribution: %v", seen)
	}
}

// TestGateQuotaIsolation pins the admission story: a rate-limited
// tenant hitting its budget gets 429 with a Retry-After hint while a
// second tenant on the same gate stays unaffected.
func TestGateQuotaIsolation(t *testing.T) {
	tenants := []gate.TenantConfig{
		{Name: "small", APIKey: "key-small", RatePerSec: 0.01, Burst: 1},
		{Name: "big", APIKey: "key-big"},
	}
	_, _, srv := gateFixture(t, tenants, -1, 8) // coalescing off: admission only

	small := client.New(srv.URL+"/rpc", client.WithAPIKey("key-small"))
	big := client.New(srv.URL+"/rpc", client.WithAPIKey("key-big"))
	defer small.Close()
	defer big.Close()

	ctx := context.Background()
	query := map[string]string{"warehouse": "warehouse-1"}
	if _, err := small.Retrieve(ctx, query); err != nil {
		t.Fatalf("first request within burst should pass: %v", err)
	}
	_, err := small.Retrieve(ctx, query)
	var fe *fxdist.Error
	if !errors.As(err, &fe) {
		t.Fatalf("want *fxdist.Error, got %T: %v", err, err)
	}
	if fe.Code != fxdist.ErrCodeRateLimited {
		t.Fatalf("code = %s, want %s", fe.Code, fxdist.ErrCodeRateLimited)
	}
	if fe.RetryAfter <= 0 {
		t.Fatal("rate-limited rejection carries no Retry-After hint")
	}

	// The rejection also rides the HTTP layer: 429 plus Retry-After.
	body := `{"jsonrpc":"2.0","id":9,"method":"fx.retrieve","params":{"query":{"warehouse":"warehouse-1"}}}`
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/rpc", jsonBody(body))
	req.Header.Set("Authorization", "Bearer key-small")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP status = %d, want 429", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}

	// The other tenant is untouched.
	for i := 0; i < 3; i++ {
		if _, err := big.Retrieve(ctx, query); err != nil {
			t.Fatalf("unaffected tenant rejected: %v", err)
		}
	}

	// Unknown keys stay out entirely.
	nobody := client.New(srv.URL+"/rpc", client.WithAPIKey("wrong"))
	defer nobody.Close()
	_, err = nobody.Retrieve(ctx, query)
	if !errors.As(err, &fe) || fe.Code != fxdist.ErrCodeUnauthorized {
		t.Fatalf("want unauthorized, got %v", err)
	}
}

// TestGateMethodSurface walks the non-retrieve methods end to end:
// fx.explain (shape, |R(q)|, bound, exact loads, plan-cache residency)
// and fx.health, plus unknown-method classification.
func TestGateMethodSurface(t *testing.T) {
	tenants := []gate.TenantConfig{{Name: "solo", APIKey: "key-solo"}}
	cluster, _, srv := gateFixture(t, tenants, time.Millisecond, 8)

	c := client.New(srv.URL+"/rpc", client.WithAPIKey("key-solo"))
	defer c.Close()
	ctx := context.Background()

	query := map[string]string{"supplier": "supplier-5"}
	ex, err := c.Explain(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Shape != "*s*" {
		t.Fatalf("shape = %q, want *s*", ex.Shape)
	}
	if ex.M != cluster.M() || ex.RQ <= 0 || ex.Bound != (ex.RQ+ex.M-1)/ex.M {
		t.Fatalf("explain invariants broken: %+v", ex)
	}
	if len(ex.DeviceLoads) != ex.M {
		t.Fatalf("device loads = %v, want %d entries", ex.DeviceLoads, ex.M)
	}
	if ex.PlanCached {
		t.Fatal("plan reported cached before any retrieval")
	}
	if _, err := c.Retrieve(ctx, query); err != nil {
		t.Fatal(err)
	}
	ex, err = c.Explain(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.PlanCached {
		t.Fatal("plan not reported cached after retrieval")
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Backend != cluster.Kind() || h.M != cluster.M() {
		t.Fatalf("health = %+v", h)
	}
	if h.APIVersion != client.APIVersion {
		t.Fatalf("api version = %q, want %q", h.APIVersion, client.APIVersion)
	}

	// Batch method: mixed valid and invalid queries demux per item.
	batch, err := c.RetrieveBatch(ctx, []map[string]string{
		{"supplier": "supplier-5"},
		{"no_such_field": "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Items) != 2 {
		t.Fatalf("items = %d, want 2", len(batch.Items))
	}
	if batch.Items[0].Result == nil || batch.Items[0].Error != nil {
		t.Fatalf("item 0 should succeed: %+v", batch.Items[0])
	}
	if batch.Items[1].Error == nil ||
		batch.Items[1].Error.Err().Code != fxdist.ErrCodeInvalidQuery {
		t.Fatalf("item 1 should fail invalid_query: %+v", batch.Items[1])
	}

	// Unknown method comes back as the taxonomy's unknown_method.
	var out json.RawMessage
	err = rawCall(srv.URL+"/rpc", "key-solo", "fx.nope", nil, &out)
	var fe *fxdist.Error
	if !errors.As(err, &fe) || fe.Code != fxdist.ErrCodeUnknownMethod {
		t.Fatalf("want unknown_method, got %v", err)
	}
}

// rawCall drives one JSON-RPC frame outside the typed client.
func rawCall(endpoint, key, method string, params any, out any) error {
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return err
		}
		raw = b
	}
	frame, err := json.Marshal(client.Request{JSONRPC: "2.0", ID: json.RawMessage("1"), Method: method, Params: raw})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, endpoint, jsonBody(string(frame)))
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+key)
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	var rpc client.Response
	if err := json.NewDecoder(res.Body).Decode(&rpc); err != nil {
		return err
	}
	if rpc.Error != nil {
		return rpc.Error.Err()
	}
	if out != nil {
		return json.Unmarshal(rpc.Result, out)
	}
	return nil
}

func jsonBody(s string) io.Reader { return strings.NewReader(s) }
