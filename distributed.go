package fxdist

import (
	"io"
	"time"

	"fxdist/internal/decluster"
	"fxdist/internal/netdist"
	"fxdist/internal/persist"
)

// AllocatorSpec is a serializable allocator description — everything a
// remote device server or a snapshot needs to rebuild the same
// bucket-to-device mapping.
type AllocatorSpec = decluster.Spec

// DescribeAllocator extracts a spec from an FX, Modulo or GDM allocator.
func DescribeAllocator(a Allocator) (AllocatorSpec, error) {
	return decluster.SpecOf(a)
}

// BuildAllocator reconstructs the allocator a spec describes.
func BuildAllocator(spec AllocatorSpec) (GroupAllocator, error) {
	return spec.Build()
}

// DeviceServer is one device's TCP frontend in a distributed deployment:
// it holds that device's bucket partition and answers partial match
// queries using per-device inverse mapping.
type DeviceServer = netdist.Server

// Coordinator fans partial match queries out to device servers and merges
// the results.
type Coordinator = netdist.Coordinator

// DistributedResult is a merged distributed retrieval.
type DistributedResult = netdist.Result

// DeviceError carries the failing device's id, server address and
// pipelined wire request id when a distributed retrieval fails; match
// with errors.As to correlate failures with the per-device failover and
// error counters.
type DeviceError = netdist.DeviceError

// ErrRequestTimeout marks a per-device request that exceeded the
// coordinator's timeout; match with errors.Is.
var ErrRequestTimeout = netdist.ErrTimeout

// NewDeviceServer builds a device server from an allocator spec and the
// device's bucket partition (see PartitionFile).
func NewDeviceServer(deviceID int, spec AllocatorSpec, buckets map[int][]Record) (*DeviceServer, error) {
	return netdist.NewServer(deviceID, spec, buckets)
}

// PartitionFile splits a file's non-empty buckets into per-device
// partitions under the allocator, keyed by linear bucket index.
func PartitionFile(file *File, alloc GroupAllocator) ([]map[int][]Record, error) {
	return netdist.Partition(file, alloc)
}

// DeployLocal partitions the file and starts one device server per device
// on loopback TCP listeners; addrs[i] serves device i. Call stop to shut
// everything down.
func DeployLocal(file *File, alloc GroupAllocator) (addrs []string, stop func(), err error) {
	return netdist.Deploy(file, alloc)
}

// NewReplicatedDeviceServer builds a device server that also holds the
// backup partition of its ring predecessor (chained declustering over
// TCP), enabling Coordinator.RetrieveWithFailover.
func NewReplicatedDeviceServer(deviceID int, spec AllocatorSpec, primary, backup map[int][]Record) (*DeviceServer, error) {
	return netdist.NewReplicatedServer(deviceID, spec, primary, backup)
}

// DeployReplicatedLocal is DeployLocal with chained replication: each
// server holds its primary partition plus its predecessor's backup, and
// the coordinator's RetrieveWithFailover survives any single server
// death.
func DeployReplicatedLocal(file *File, alloc GroupAllocator) (addrs []string, stop func(), err error) {
	return netdist.DeployReplicated(file, alloc)
}

// DialOption configures dialing a distributed cluster (see
// WithDialTimeout on Open, or the deprecated DialCluster).
type DialOption = netdist.DialOption

// WithRequestTimeout bounds each per-device request; zero (the default)
// waits indefinitely.
func WithRequestTimeout(d time.Duration) DialOption {
	return netdist.WithTimeout(d)
}

// WithDialInjector installs a fault injector on a dialed coordinator's
// per-device requests — the DialOption form of WithFaultInjector, for
// coordinators dialed outside Open (e.g. RescaleConfig.DialOptions, so
// chaos schedules also hit the migration stream and dual reads).
func WithDialInjector(in *FaultInjector) DialOption {
	return netdist.WithInjector(in)
}

// SaveSnapshot writes the file — and, when alloc is non-nil, its
// allocator spec — to w as a self-contained snapshot.
func SaveSnapshot(w io.Writer, file *File, alloc Allocator) error {
	return persist.Save(w, file, alloc)
}

// LoadSnapshot restores a file (and allocator, if one was stored) from r.
// Files built with custom field hashes must pass the same WithFieldHash
// options here.
func LoadSnapshot(r io.Reader, opts ...FileOption) (*File, GroupAllocator, error) {
	return persist.Load(r, opts...)
}

// SaveSnapshotFile and LoadSnapshotFile are the path-based variants
// (atomic write via temp file + rename).
func SaveSnapshotFile(path string, file *File, alloc Allocator) error {
	return persist.SaveFile(path, file, alloc)
}

// LoadSnapshotFile restores a snapshot from a path.
func LoadSnapshotFile(path string, opts ...FileOption) (*File, GroupAllocator, error) {
	return persist.LoadFile(path, opts...)
}
