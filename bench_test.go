// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkTableN / BenchmarkFigureN measures the cost of
// recomputing that artifact and logs the regenerated rows/series once, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation section end to end. EXPERIMENTS.md
// records the paper-vs-measured comparison.
package fxdist_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fxdist"
	"fxdist/internal/analysis"
	"fxdist/internal/bitsx"
	"fxdist/internal/cost"
	"fxdist/internal/decluster"
	"fxdist/internal/field"
)

// logOnce guards the one-time table/series logging inside benchmarks.
var logOnce sync.Map

func once(b *testing.B, key string, f func()) {
	if _, loaded := logOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

// --- Tables 1-6: worked bucket-to-device mappings -----------------------

type exampleTable struct {
	name  string
	sizes []int
	m     int
	kinds []field.Kind
}

var exampleTables = map[string]exampleTable{
	"Table1": {"Basic FX", []int{2, 8}, 4, []field.Kind{field.I, field.I}},
	"Table2": {"FX I+U", []int{4, 4}, 16, []field.Kind{field.I, field.U}},
	"Table3": {"FX I+IU1", []int{4, 4}, 16, []field.Kind{field.I, field.IU1}},
	"Table4": {"FX I+U+IU1", []int{2, 4, 2}, 8, []field.Kind{field.I, field.U, field.IU1}},
	"Table5": {"FX I+IU2", []int{8, 2}, 16, []field.Kind{field.I, field.IU2}},
	"Table6": {"FX I+U+IU2", []int{4, 2, 2}, 16, []field.Kind{field.I, field.U, field.IU2}},
}

func benchExampleTable(b *testing.B, key string) {
	def := exampleTables[key]
	fs := decluster.MustFileSystem(def.sizes, def.m)
	fx := decluster.MustFX(fs, field.WithKinds(def.kinds))
	once(b, key, func() {
		var rows []string
		fs.EachBucket(func(bk []int) {
			vals := make([]string, len(bk))
			for i, v := range bk {
				vals[i] = bitsx.Binary(fx.Plan().Funcs[i].Apply(v), bitsx.Log2(def.m))
			}
			rows = append(rows, fmt.Sprintf("%s -> %d", strings.Join(vals, " "), fx.Device(bk)))
		})
		b.Logf("%s (%s, F=%v, M=%d):\n%s", key, def.name, def.sizes, def.m, strings.Join(rows, "\n"))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.EachBucket(func(bk []int) {
			_ = fx.Device(bk)
		})
	}
}

func BenchmarkTable1(b *testing.B) { benchExampleTable(b, "Table1") }
func BenchmarkTable2(b *testing.B) { benchExampleTable(b, "Table2") }
func BenchmarkTable3(b *testing.B) { benchExampleTable(b, "Table3") }
func BenchmarkTable4(b *testing.B) { benchExampleTable(b, "Table4") }
func BenchmarkTable5(b *testing.B) { benchExampleTable(b, "Table5") }
func BenchmarkTable6(b *testing.B) { benchExampleTable(b, "Table6") }

// --- Tables 7-9: average largest response size --------------------------

func benchResponseTable(b *testing.B, key string, spec analysis.TableSpec) {
	once(b, key, func() {
		var rows []string
		rows = append(rows, strings.Join(spec.Header(), " | "))
		for _, r := range spec.Rows() {
			rows = append(rows, analysis.FormatRow(r))
		}
		b.Logf("%s (%s):\n%s", spec.Name, spec.Caption, strings.Join(rows, "\n"))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = spec.Rows()
	}
}

func BenchmarkTable7(b *testing.B) { benchResponseTable(b, "Table7", analysis.Table7()) }
func BenchmarkTable8(b *testing.B) { benchResponseTable(b, "Table8", analysis.Table8()) }
func BenchmarkTable9(b *testing.B) { benchResponseTable(b, "Table9", analysis.Table9()) }

// --- Figures 1-4: probability of strict optimality ----------------------

func benchFigure(b *testing.B, key string, spec analysis.FigureSpec) {
	once(b, key, func() {
		var rows []string
		for _, p := range spec.Points(false) {
			rows = append(rows, fmt.Sprintf("smallFields=%d MD=%.1f%% FD=%.1f%%",
				p.SmallFields, p.ModuloPct, p.FXPct))
		}
		b.Logf("%s (%s):\n%s", spec.Name, spec.Caption, strings.Join(rows, "\n"))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = spec.Points(false)
	}
}

func BenchmarkFigure1(b *testing.B) { benchFigure(b, "Figure1", analysis.Figure1()) }
func BenchmarkFigure2(b *testing.B) { benchFigure(b, "Figure2", analysis.Figure2()) }
func BenchmarkFigure3(b *testing.B) { benchFigure(b, "Figure3", analysis.Figure3()) }
func BenchmarkFigure4(b *testing.B) { benchFigure(b, "Figure4", analysis.Figure4()) }

// BenchmarkFigure1Exact regenerates Figure 1 with exact (convolution)
// optimality percentages instead of the sufficient conditions — the
// extension series reported in EXPERIMENTS.md.
func BenchmarkFigure1Exact(b *testing.B) {
	spec := analysis.Figure1()
	once(b, "Figure1Exact", func() {
		var rows []string
		for _, p := range spec.Points(true) {
			rows = append(rows, fmt.Sprintf("smallFields=%d MDexact=%.1f%% FDexact=%.1f%%",
				p.SmallFields, p.ModuloExactPct, p.FXExactPct))
		}
		b.Logf("Figure 1 exact:\n%s", strings.Join(rows, "\n"))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = spec.Points(true)
	}
}

// --- §5.2.2: CPU computation time ---------------------------------------

// BenchmarkCPUCostModel evaluates the paper's cycle-count comparison.
func BenchmarkCPUCostModel(b *testing.B) {
	plan := field.MustPlan([]int{8, 8, 8, 8, 8, 8}, 32,
		field.WithStrategy(field.RoundRobin), field.WithFamily(field.FamilyIU1))
	once(b, "CPUCost", func() {
		var rows []string
		for _, cpu := range []cost.CPU{cost.MC68000, cost.I80286} {
			for _, row := range cost.Compare(cpu, plan) {
				rows = append(rows, row.String())
			}
		}
		b.Logf("§5.2.2 address computation:\n%s", strings.Join(rows, "\n"))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cost.Compare(cost.MC68000, plan)
	}
}

// Live address-computation micro-benchmarks: the modern-hardware analogue
// of §5.2.2. FX and Modulo are table lookups and xors/adds; GDM pays for
// multiplies.
func benchDevice(b *testing.B, alloc fxdist.GroupAllocator) {
	fs := alloc.FileSystem()
	buckets := make([][]int, 256)
	for i := range buckets {
		bk := make([]int, fs.NumFields())
		for j := range bk {
			bk[j] = (i * (j + 3)) % fs.Sizes[j]
		}
		buckets[i] = bk
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = alloc.Device(buckets[i%256])
	}
}

func table7FS() fxdist.FileSystem {
	fs, err := fxdist.NewFileSystem([]int{8, 8, 8, 8, 8, 8}, 32)
	if err != nil {
		panic(err)
	}
	return fs
}

func BenchmarkAddressFX(b *testing.B) {
	fx, err := fxdist.NewFX(table7FS(), fxdist.WithRoundRobinPlan(), fxdist.WithFamily(fxdist.FamilyIU1))
	if err != nil {
		b.Fatal(err)
	}
	benchDevice(b, fx)
}

func BenchmarkAddressGDM(b *testing.B) {
	g, err := fxdist.NewGDM(table7FS(), fxdist.GDM1Multipliers)
	if err != nil {
		b.Fatal(err)
	}
	benchDevice(b, g)
}

func BenchmarkAddressModulo(b *testing.B) {
	benchDevice(b, fxdist.NewModulo(table7FS()))
}

// --- Inverse mapping and end-to-end retrieval ----------------------------

func BenchmarkInverseMapping(b *testing.B) {
	fx, err := fxdist.NewFX(table7FS(), fxdist.WithRoundRobinPlan(), fxdist.WithFamily(fxdist.FamilyIU1))
	if err != nil {
		b.Fatal(err)
	}
	im := fxdist.NewInverseMapper(fx)
	q := fxdist.NewQuery([]int{3, fxdist.Unspecified, fxdist.Unspecified, 1,
		fxdist.Unspecified, fxdist.Unspecified})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = im.CountOnDevice(q, i%32)
	}
}

func benchCluster(b *testing.B) (*fxdist.Cluster, []fxdist.PartialMatch) {
	b.Helper()
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "a", Cardinality: 500},
		{Name: "b", Cardinality: 100},
		{Name: "c", Cardinality: 20},
	}}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{4, 3, 2}))
	if err != nil {
		b.Fatal(err)
	}
	recs, err := fxdist.GenerateRecords(spec, 20000, 5)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range recs {
		if err := file.Insert(r); err != nil {
			b.Fatal(err)
		}
	}
	fs, err := file.FileSystem(16)
	if err != nil {
		b.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		b.Fatal(err)
	}
	cluster, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx})
	if err != nil {
		b.Fatal(err)
	}
	pms, err := fxdist.GeneratePartialMatches(spec, 64, 0.5, 6)
	if err != nil {
		b.Fatal(err)
	}
	return cluster, pms
}

func BenchmarkClusterRetrieve(b *testing.B) {
	cluster, pms := benchCluster(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Retrieve(pms[i%64]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchRetrieve compares a 16-query RetrieveBatch against the
// same 16 queries retrieved sequentially — the capability the unified
// engine exists for: all fan-outs share one worker pool and pipeline
// instead of hitting a per-query barrier.
func BenchmarkBatchRetrieve(b *testing.B) {
	cluster, pms := benchCluster(b)
	batch := pms[:16]
	b.Run("sequential16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pm := range batch {
				if _, err := cluster.Retrieve(pm); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch16", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.RetrieveBatch(ctx, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanCacheRepeatedShape measures what the per-shape plan
// cache buys on the hot path: a repeated-shape workload (64 queries over
// a handful of shapes, the pattern a real query mix produces) against
// the same cluster with the cache disabled, which pays validation,
// |R(q)| counting and the per-device inverse-mapper walk on every
// retrieval. One warm-up pass primes the cache, so the cached
// sub-benchmark measures pure hits.
func BenchmarkPlanCacheRepeatedShape(b *testing.B) {
	run := func(b *testing.B, opts ...fxdist.Option) {
		spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
			{Name: "a", Cardinality: 500},
			{Name: "b", Cardinality: 100},
			{Name: "c", Cardinality: 20},
		}}
		file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{5, 4, 3}))
		if err != nil {
			b.Fatal(err)
		}
		recs, err := fxdist.GenerateRecords(spec, 4000, 5)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := file.Insert(r); err != nil {
				b.Fatal(err)
			}
		}
		fs, err := file.FileSystem(16)
		if err != nil {
			b.Fatal(err)
		}
		fx, err := fxdist.NewFX(fs)
		if err != nil {
			b.Fatal(err)
		}
		cluster, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx}, opts...)
		if err != nil {
			b.Fatal(err)
		}
		pms, err := fxdist.GeneratePartialMatches(spec, 64, 0.35, 6)
		if err != nil {
			b.Fatal(err)
		}
		for _, pm := range pms { // warm-up: compile every shape once
			if _, err := cluster.Retrieve(pm); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.Retrieve(pms[i%64]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cached", func(b *testing.B) { run(b) })
	b.Run("uncached", func(b *testing.B) { run(b, fxdist.WithoutPlanCache()) })
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationPlanner quantifies what the transformation planner buys:
// Basic FX (all identity) vs planned FX on the Table 7 file system, k=2
// average largest response size.
func BenchmarkAblationPlanner(b *testing.B) {
	fs := table7FS()
	basic, err := fxdist.NewBasicFX(fs)
	if err != nil {
		b.Fatal(err)
	}
	planned, err := fxdist.NewFX(fs, fxdist.WithRoundRobinPlan(), fxdist.WithFamily(fxdist.FamilyIU1))
	if err != nil {
		b.Fatal(err)
	}
	methods := []fxdist.GroupAllocator{basic, planned}
	once(b, "AblationPlanner", func() {
		rows := fxdist.ResponseTable(fs, methods, []int{2, 3})
		for _, r := range rows {
			b.Logf("k=%d basicFX=%.1f plannedFX=%.1f optimal=%.1f",
				r.K, r.Avg[0], r.Avg[1], r.Optimal)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fxdist.ResponseTable(fs, methods, []int{2})
	}
}

// BenchmarkAblationMSweep quantifies the paper's closing caveat: FX
// optimality as the machine outgrows fixed-size directories.
func BenchmarkAblationMSweep(b *testing.B) {
	sizes := []int{8, 8, 8, 8}
	ms := []int{8, 32, 128, 512}
	once(b, "MSweep", func() {
		pts, err := fxdist.MSweep(sizes, ms, fxdist.FamilyIU2)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.Logf("M=%-4d smallFields=%d FXexact=%.1f%% FXcertified=%.1f%% MDexact=%.1f%%",
				p.M, p.SmallFields, p.FXExactPct, p.FXCertifiedPct, p.ModuloExactPct)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fxdist.MSweep(sizes, ms, fxdist.FamilyIU2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueueingThroughput extends §5.2.1 to sustained load: mean
// response under a Poisson stream, FX vs Modulo.
func BenchmarkQueueingThroughput(b *testing.B) {
	fs := table7FS()
	fx, err := fxdist.NewFX(fs, fxdist.WithRoundRobinPlan(), fxdist.WithFamily(fxdist.FamilyIU1))
	if err != nil {
		b.Fatal(err)
	}
	md := fxdist.NewModulo(fs)
	queries, err := fxdist.GenerateBucketQueries(fs.Sizes, 200, 0.5, 7)
	if err != nil {
		b.Fatal(err)
	}
	arrivals := fxdist.PoissonArrivals(200, 40*time.Millisecond, 7)
	once(b, "Queueing", func() {
		for _, alloc := range []fxdist.GroupAllocator{fx, md} {
			jobs, err := fxdist.JobsFromQueries(alloc, queries, arrivals)
			if err != nil {
				b.Fatal(err)
			}
			stats, err := fxdist.RunQueue(jobs, fxdist.ParallelDisk)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("%-10s mean=%v max=%v makespan=%v",
				shortAllocName(alloc.Name()), stats.MeanResponse, stats.MaxResponse, stats.Makespan)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs, err := fxdist.JobsFromQueries(fx, queries, arrivals)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fxdist.RunQueue(jobs, fxdist.ParallelDisk); err != nil {
			b.Fatal(err)
		}
	}
}

func shortAllocName(name string) string {
	if strings.HasPrefix(name, "FX[") {
		return "FX"
	}
	return name
}

// benchRelationFile builds a loaded file for storage-layer benches.
func benchRelationFile(b *testing.B, n int) (*fxdist.File, fxdist.RecordSpec) {
	b.Helper()
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "a", Cardinality: 500},
		{Name: "b", Cardinality: 100},
		{Name: "c", Cardinality: 20},
	}}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{4, 3, 2}))
	if err != nil {
		b.Fatal(err)
	}
	recs, err := fxdist.GenerateRecords(spec, n, 5)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range recs {
		if err := file.Insert(r); err != nil {
			b.Fatal(err)
		}
	}
	return file, spec
}

// BenchmarkDurableRetrieve measures the disk-backed retrieval path.
func BenchmarkDurableRetrieve(b *testing.B) {
	file, spec := benchRelationFile(b, 20000)
	fs, err := file.FileSystem(16)
	if err != nil {
		b.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		b.Fatal(err)
	}
	c, err := fxdist.Open(fxdist.Config{Dir: b.TempDir(), File: file, Allocator: fx})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	pms, err := fxdist.GeneratePartialMatches(spec, 64, 0.5, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Retrieve(pms[i%64]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurableBulkLoad measures concurrent partitioned loading.
func BenchmarkDurableBulkLoad(b *testing.B) {
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "a", Cardinality: 500},
		{Name: "b", Cardinality: 100},
		{Name: "c", Cardinality: 20},
	}}
	recs, err := fxdist.GenerateRecords(spec, 10000, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{4, 3, 2}))
		if err != nil {
			b.Fatal(err)
		}
		fs, err := file.FileSystem(16)
		if err != nil {
			b.Fatal(err)
		}
		fx, err := fxdist.NewFX(fs)
		if err != nil {
			b.Fatal(err)
		}
		c, err := fxdist.Open(fxdist.Config{Dir: b.TempDir(), File: file, Allocator: fx})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := c.Durable().BulkInsert(recs); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		c.Close()
		b.StartTimer()
	}
}

// BenchmarkDistributedRetrieve measures the TCP path end to end.
func BenchmarkDistributedRetrieve(b *testing.B) {
	file, spec := benchRelationFile(b, 20000)
	fs, err := file.FileSystem(8)
	if err != nil {
		b.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		b.Fatal(err)
	}
	addrs, stop, err := fxdist.DeployLocal(file, fx)
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	coord, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs})
	if err != nil {
		b.Fatal(err)
	}
	defer coord.Close()
	pms, err := fxdist.GeneratePartialMatches(spec, 64, 0.5, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coord.Retrieve(pms[i%64]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicaFailover compares chained vs naive failover degradation
// on the whole-file query.
func BenchmarkReplicaFailover(b *testing.B) {
	fs := table7FS()
	fx, err := fxdist.NewFX(fs, fxdist.WithRoundRobinPlan(), fxdist.WithFamily(fxdist.FamilyIU1))
	if err != nil {
		b.Fatal(err)
	}
	q := fxdist.AllQuery(6)
	once(b, "ReplicaFailover", func() {
		for _, mode := range []fxdist.ReplicaMode{fxdist.NaiveFailover, fxdist.ChainedFailover} {
			p := fxdist.NewReplicaPlacement(fx, mode)
			if err := p.Fail(3); err != nil {
				b.Fatal(err)
			}
			d := p.Degradation(q)
			b.Logf("%-8v max load %d -> %d (%.2fx; ideal chained %.2fx)",
				mode, d.HealthyMax, d.DegradedMax, d.Ratio, float64(32)/31)
		}
	})
	p := fxdist.NewReplicaPlacement(fx, fxdist.ChainedFailover)
	if err := p.Fail(3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Degradation(q)
	}
}

// BenchmarkButterflyRepartition runs FX's balanced vs Modulo's skewed
// query loads through the simulated Butterfly interconnect: declustering
// balance translates into network throughput.
func BenchmarkButterflyRepartition(b *testing.B) {
	fs, err := fxdist.NewFileSystem([]int{8, 8}, 16)
	if err != nil {
		b.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		b.Fatal(err)
	}
	md := fxdist.NewModulo(fs)
	nw, err := fxdist.NewButterfly(16)
	if err != nil {
		b.Fatal(err)
	}
	q := fxdist.AllQuery(2)
	once(b, "Butterfly", func() {
		for _, alloc := range []fxdist.GroupAllocator{fx, md} {
			msgs, err := nw.Repartition(fxdist.Loads(alloc, q), 3)
			if err != nil {
				b.Fatal(err)
			}
			stats, err := nw.Run(msgs)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("%-8s repartition: %d msgs in %d cycles (ideal %d, max queue %d)",
				shortAllocName(alloc.Name()), stats.Delivered, stats.Cycles,
				stats.IdealCycles, stats.MaxQueue)
		}
	})
	msgs, err := nw.Repartition(fxdist.Loads(fx, q), 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Run(msgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPSweep sweeps the per-field specification probability:
// the optimality-probability gap between FX and Modulo across the whole
// workload spectrum (the figures fix p = 1/2).
func BenchmarkAblationPSweep(b *testing.B) {
	fs, err := fxdist.NewFileSystem([]int{4, 4, 4, 4, 4, 4}, 32)
	if err != nil {
		b.Fatal(err)
	}
	ps := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	once(b, "PSweep", func() {
		pts, err := fxdist.PSweep(fs, fxdist.FamilyIU2, ps)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.Logf("p=%.1f FX=%.1f%% Modulo=%.1f%%", p.P, 100*p.FXPct, 100*p.ModuloPct)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fxdist.PSweep(fs, fxdist.FamilyIU2, ps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosedLoopThroughput sweeps the multiprogramming level: FX
// sustains more queries per second than Modulo once devices saturate.
func BenchmarkClosedLoopThroughput(b *testing.B) {
	fs := table7FS()
	fx, err := fxdist.NewFX(fs, fxdist.WithRoundRobinPlan(), fxdist.WithFamily(fxdist.FamilyIU1))
	if err != nil {
		b.Fatal(err)
	}
	md := fxdist.NewModulo(fs)
	// Selective queries (most fields specified) touch few devices, so a
	// single client cannot keep the machine busy — the regime where the
	// multiprogramming level matters.
	queries, err := fxdist.GenerateBucketQueries(fs.Sizes, 100, 0.85, 23)
	if err != nil {
		b.Fatal(err)
	}
	once(b, "ClosedLoop", func() {
		for _, mpl := range []int{1, 4, 16} {
			for _, alloc := range []fxdist.GroupAllocator{fx, md} {
				pool, err := fxdist.QueryLoadPool(alloc, queries)
				if err != nil {
					b.Fatal(err)
				}
				stats, err := fxdist.RunClosedQueue(pool, mpl, 400, fxdist.ParallelDisk)
				if err != nil {
					b.Fatal(err)
				}
				qps := 400 / stats.Makespan.Seconds()
				b.Logf("MPL=%-3d %-8s throughput=%.2f q/s mean=%v",
					mpl, shortAllocName(alloc.Name()), qps, stats.MeanResponse.Round(time.Millisecond))
			}
		}
	})
	pool, err := fxdist.QueryLoadPool(fx, queries)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fxdist.RunClosedQueue(pool, 8, 400, fxdist.ParallelDisk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMSPBaseline compares the FaRC86 spanning-path heuristic with
// FX and Modulo on a small grid (exhaustive analysis: MSP is not a group
// allocator).
func BenchmarkMSPBaseline(b *testing.B) {
	fs, err := fxdist.NewFileSystem([]int{4, 4, 4}, 16)
	if err != nil {
		b.Fatal(err)
	}
	msp := fxdist.NewMSP(fs)
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		b.Fatal(err)
	}
	md := fxdist.NewModulo(fs)
	once(b, "MSP", func() {
		rows := fxdist.ResponseTableExhaustive(fs,
			[]fxdist.Allocator{msp, fx, md}, []int{1, 2, 3})
		for _, r := range rows {
			b.Logf("k=%d MSP=%.2f FX=%.2f Modulo=%.2f optimal=%.2f",
				r.K, r.Avg[0], r.Avg[1], r.Avg[2], r.Optimal)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fxdist.NewMSP(fs)
	}
}

// BenchmarkGrowthPlanning measures redistribution planning for a
// directory doubling.
func BenchmarkGrowthPlanning(b *testing.B) {
	once(b, "Growth", func() {
		for _, build := range []struct {
			name string
			fn   func(fs fxdist.FileSystem) (fxdist.GroupAllocator, error)
		}{
			{"BasicFX", func(fs fxdist.FileSystem) (fxdist.GroupAllocator, error) { return fxdist.NewBasicFX(fs) }},
			{"FX", func(fs fxdist.FileSystem) (fxdist.GroupAllocator, error) { return fxdist.NewFX(fs) }},
			{"Modulo", func(fs fxdist.FileSystem) (fxdist.GroupAllocator, error) { return fxdist.NewModulo(fs), nil }},
		} {
			plans, err := fxdist.GrowthSeries([]int{2, 4, 8}, 16, 0, 3, build.fn)
			if err != nil {
				b.Fatal(err)
			}
			for s, p := range plans {
				b.Logf("%-8s step %d: moved %d/%d (%.0f%%)", build.name, s, p.Moved, p.Total, 100*p.MoveFraction())
			}
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fxdist.GrowthSeries([]int{2, 4, 8}, 16, 0, 3,
			func(fs fxdist.FileSystem) (fxdist.GroupAllocator, error) { return fxdist.NewFX(fs) }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationIU1vsIU2 compares the two xor-folded families on the
// Table 9 file system — why the paper switches to IU2 when pairwise
// products fall below M.
func BenchmarkAblationIU1vsIU2(b *testing.B) {
	fs, err := fxdist.NewFileSystem([]int{8, 8, 8, 16, 16, 16}, 512)
	if err != nil {
		b.Fatal(err)
	}
	iu1, err := fxdist.NewFX(fs, fxdist.WithRoundRobinPlan(), fxdist.WithFamily(fxdist.FamilyIU1))
	if err != nil {
		b.Fatal(err)
	}
	iu2, err := fxdist.NewFX(fs, fxdist.WithRoundRobinPlan(), fxdist.WithFamily(fxdist.FamilyIU2))
	if err != nil {
		b.Fatal(err)
	}
	methods := []fxdist.GroupAllocator{iu1, iu2}
	once(b, "AblationIU", func() {
		rows := fxdist.ResponseTable(fs, methods, []int{2, 3, 4})
		for _, r := range rows {
			b.Logf("k=%d IU1-family=%.1f IU2-family=%.1f optimal=%.1f",
				r.K, r.Avg[0], r.Avg[1], r.Optimal)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fxdist.ResponseTable(fs, methods, []int{3})
	}
}

// BenchmarkRetrieveWithInjectedLatency measures what hedging buys
// against a single straggler device: device 0 carries injected latency
// with wide jitter (the tail-latency profile chained declustering is
// meant to absorb), and the hedged variant races a second scan against
// it once its p99 breaches the peers'. Unhedged retrievals pay the full
// straggler delay on every query that touches device 0.
func BenchmarkRetrieveWithInjectedLatency(b *testing.B) {
	build := func(b *testing.B, hedge bool) (*fxdist.Cluster, fxdist.PartialMatch) {
		b.Helper()
		spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
			{Name: "a", Cardinality: 60},
			{Name: "b", Cardinality: 15},
		}}
		file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{3, 2}))
		if err != nil {
			b.Fatal(err)
		}
		recs, err := fxdist.GenerateRecords(spec, 2000, 11)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := file.Insert(r); err != nil {
				b.Fatal(err)
			}
		}
		fs, err := file.FileSystem(8)
		if err != nil {
			b.Fatal(err)
		}
		fx, err := fxdist.NewFX(fs)
		if err != nil {
			b.Fatal(err)
		}
		opts := []fxdist.Option{
			fxdist.WithRetryBudget(2, time.Millisecond, 10*time.Millisecond),
			fxdist.WithRetrySeed(1),
			fxdist.WithFaultInjection(1, map[int]fxdist.FaultSchedule{
				0: {Jitter: 4 * time.Millisecond},
			}),
		}
		if hedge {
			opts = append(opts, fxdist.WithHedging(100*time.Microsecond))
		}
		cluster, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx}, opts...)
		if err != nil {
			b.Fatal(err)
		}
		pm, err := file.Spec(nil) // all-free: device 0 is always load-bearing
		if err != nil {
			b.Fatal(err)
		}
		// Warm past the hedger's observation gate so the hedged variant
		// measures steady state, not the arming ramp.
		for i := 0; i < 16; i++ {
			if _, err := cluster.Retrieve(pm); err != nil {
				b.Fatal(err)
			}
		}
		return cluster, pm
	}
	for _, hedge := range []bool{false, true} {
		name := "unhedged"
		if hedge {
			name = "hedged"
		}
		b.Run(name, func(b *testing.B) {
			cluster, pm := build(b, hedge)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Retrieve(pm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
