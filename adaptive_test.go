package fxdist_test

import (
	"testing"

	"fxdist"
)

// The adaptive loop's public pieces: tracker, stats, recommendation,
// migration, growth advice, sweeps, and the durable integrity check.
func TestPublicAdaptiveLoop(t *testing.T) {
	file := buildTestFile(t)
	fs, _ := file.FileSystem(8)

	tracker, err := fxdist.NewWorkloadTracker(2)
	if err != nil {
		t.Fatal(err)
	}
	pms, _ := fxdist.GeneratePartialMatches(fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "a", Cardinality: 10}, {Name: "b", Cardinality: 10},
	}}, 100, 0.4, 1)
	for _, pm := range pms {
		if err := tracker.ObservePartialMatch(pm); err != nil {
			t.Fatal(err)
		}
	}
	probs := tracker.SpecProbs()
	if len(probs) != 2 {
		t.Fatalf("probs = %v", probs)
	}

	st := fxdist.CollectStats(file)
	if st.Records != file.Len() || len(st.Distinct) != 2 {
		t.Errorf("stats = %+v", st)
	}

	md := fxdist.NewModulo(fs)
	fx, _ := fxdist.NewFX(fs)
	rec, err := fxdist.RecommendMethod([]fxdist.GroupAllocator{md, fx}, probs)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fxdist.PlanMigration(md, fx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total != fs.NumBuckets() {
		t.Errorf("migration total = %d", plan.Total)
	}
	_ = rec

	if _, ok := file.GrowAdvice(); !ok {
		t.Error("no growth advice for a populated file")
	}
	mean, max := file.Occupancy()
	if mean <= 0 || max <= 0 {
		t.Errorf("occupancy = %v, %v", mean, max)
	}
}

func TestPublicSweeps(t *testing.T) {
	pts, err := fxdist.PSweep(mustFS(t, []int{4, 4, 4}, 16), fxdist.FamilyIU2, []float64{0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("psweep = %v", pts)
	}
	ms, err := fxdist.MSweep([]int{4, 4, 4}, []int{4, 16}, fxdist.FamilyIU2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("msweep = %v", ms)
	}
}

func TestPublicDurableCheck(t *testing.T) {
	file := buildTestFile(t)
	fs, _ := file.FileSystem(4)
	fx, _ := fxdist.NewFX(fs)
	h, err := fxdist.Open(fxdist.Config{Dir: t.TempDir(), File: file, Allocator: fx})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	report, err := h.Durable().Check()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Ok() || report.Records != file.Len() {
		t.Errorf("check = %+v", report)
	}
}

func mustFS(t *testing.T, sizes []int, m int) fxdist.FileSystem {
	t.Helper()
	fs, err := fxdist.NewFileSystem(sizes, m)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}
