package fxdist_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"testing"
	"time"

	"fxdist"
)

// chaosServers starts one replicated device server per device on its own
// loopback listener (each holding its primary partition plus its ring
// predecessor's backup), so individual servers can be killed and
// restarted mid-test. Returns the servers, their addresses, the
// partitions, the allocator spec, and a stop function.
func chaosServers(t *testing.T, file *fxdist.File, fx fxdist.GroupAllocator) ([]*fxdist.DeviceServer, []string, []map[int][]fxdist.Record, fxdist.AllocatorSpec, func()) {
	t.Helper()
	spec, err := fxdist.DescribeAllocator(fx)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := fxdist.PartitionFile(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	m := len(parts)
	servers := make([]*fxdist.DeviceServer, m)
	addrs := make([]string, m)
	for dev := 0; dev < m; dev++ {
		prev := (dev - 1 + m) % m
		srv, err := fxdist.NewReplicatedDeviceServer(dev, spec, parts[dev], parts[prev])
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers[dev] = srv
		addrs[dev] = l.Addr().String()
		go srv.Serve(l) //nolint:errcheck // ends when srv.Close closes l
	}
	return servers, addrs, parts, spec, func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

// sortedRecords renders a record set in a canonical order for
// byte-identical comparison.
func sortedRecords(recs []fxdist.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = fmt.Sprint([]string(r))
	}
	sort.Strings(out)
	return out
}

func netdistReport(t *testing.T) fxdist.BackendResilience {
	t.Helper()
	for _, r := range fxdist.Resilience().Retry {
		if r.Backend == "netdist" {
			return r
		}
	}
	t.Fatal("no netdist resilience report registered")
	return fxdist.BackendResilience{}
}

// TestChaosDistributedRetrieval runs the seeded chaos schedule from the
// acceptance criteria against a replicated 4-server deployment: server 1
// is dead, server 3 answers 10x slow, server 2 flaps every other
// request. With retries, breakers, failover and hedging on, every
// retrieval must still return byte-identical records to the in-process
// reference search, and the breaker/hedge activity must be observable
// on /debug/resilience.
func TestChaosDistributedRetrieval(t *testing.T) {
	file := buildTestFile(t)
	fs, err := file.FileSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	servers, addrs, _, _, stop := chaosServers(t, file, fx)
	defer stop()

	// The chaos schedule: one dead server (killed right after dialing),
	// one slow (coordinator-side injected latency ~10x a loopback round
	// trip), one flapping.
	in := fxdist.NewFaultInjector("chaos-netdist", 42, map[int]fxdist.FaultSchedule{
		3: {Latency: 40 * time.Millisecond},
		2: {FlapEvery: 1},
	})

	coord, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs},
		fxdist.WithFailover(),
		fxdist.WithDialTimeout(5*time.Second),
		fxdist.WithRetryBudget(4, time.Millisecond, 10*time.Millisecond),
		fxdist.WithCircuitBreaker(3, time.Hour),
		fxdist.WithHedging(time.Millisecond),
		fxdist.WithRetrySeed(42),
		fxdist.WithFaultInjector(in),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	servers[1].Close()

	// Warm up past the hedger's observation gate, checking byte-identical
	// results the whole way: the dead server fails over to its ring
	// successor's backup, the flapping server recovers on retry, the slow
	// one is merely slow (and eventually hedged).
	queries := []map[string]string{
		{"b": "b-3"}, {"b": "b-5"}, {"a": "a-7"}, {},
	}
	for round := 0; round < 12; round++ {
		spec := queries[round%len(queries)]
		pm, err := file.Spec(spec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := file.Search(pm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.Retrieve(pm)
		if err != nil {
			t.Fatalf("round %d %v: %v", round, spec, err)
		}
		ws, gs := sortedRecords(want), sortedRecords(got.Records)
		if fmt.Sprint(ws) != fmt.Sprint(gs) {
			t.Fatalf("round %d %v: %d records != reference %d", round, spec, len(gs), len(ws))
		}
	}

	rep := netdistReport(t)
	if rep.Retries == 0 {
		t.Error("flapping server triggered no retries")
	}
	if rep.Transitions["open"] == 0 {
		t.Error("dead server opened no breaker")
	}
	open := false
	for _, b := range rep.Breakers {
		if b.Device == 1 && b.State == "open" {
			open = true
		}
	}
	if !open {
		t.Errorf("device 1 breaker not open: %+v", rep.Breakers)
	}
	if rep.Hedges == 0 || rep.HedgeWins == 0 {
		t.Errorf("slow server hedging: hedges=%d wins=%d, want both > 0", rep.Hedges, rep.HedgeWins)
	}

	// CI artifact: the full /debug/resilience payload.
	if path := os.Getenv("RESILIENCE_JSON"); path != "" {
		blob, err := json.MarshalIndent(fxdist.Resilience(), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChaosHealthProbeRecovery kills a server, lets the breaker open,
// restarts the server on the same address, and waits for the health
// prober to redial it and close the breaker — recovery with no live
// query ever risked on the restarting server.
func TestChaosHealthProbeRecovery(t *testing.T) {
	file := buildTestFile(t)
	fs, _ := file.FileSystem(4)
	fx, _ := fxdist.NewFX(fs)
	servers, addrs, parts, spec, stop := chaosServers(t, file, fx)
	defer stop()

	coord, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs},
		fxdist.WithFailover(),
		fxdist.WithDialTimeout(2*time.Second),
		fxdist.WithRetryBudget(2, time.Millisecond, 5*time.Millisecond),
		fxdist.WithCircuitBreaker(1, 50*time.Millisecond),
		fxdist.WithHealthProbing(20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	pm, _ := file.Spec(map[string]string{"b": "b-2"})
	want, _ := file.Search(pm)

	servers[2].Close()
	// Retrievals survive through failover while the breaker opens.
	for i := 0; i < 3; i++ {
		got, err := coord.Retrieve(pm)
		if err != nil {
			t.Fatalf("retrieve with dead server: %v", err)
		}
		if len(got.Records) != len(want) {
			t.Fatalf("degraded retrieve %d records, want %d", len(got.Records), len(want))
		}
	}
	rep := netdistReport(t)
	opened := false
	for _, b := range rep.Breakers {
		if b.Device == 2 && b.State != "closed" {
			opened = true
		}
	}
	if !opened {
		t.Fatalf("device 2 breaker still closed after server death: %+v", rep.Breakers)
	}

	// Restart the server on the same address; the prober must redial,
	// ping, and close the breaker on its own.
	srv, err := fxdist.NewReplicatedDeviceServer(2, spec, parts[2], parts[1])
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", addrs[2])
	if err != nil {
		t.Fatal(err)
	}
	servers[2] = srv // stop() closes the restarted server
	go srv.Serve(l)  //nolint:errcheck

	deadline := time.Now().Add(10 * time.Second)
	for {
		closed := false
		for _, b := range netdistReport(t).Breakers {
			if b.Device == 2 && b.State == "closed" {
				closed = true
			}
		}
		if closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never closed device 2's breaker: %+v", netdistReport(t).Breakers)
		}
		time.Sleep(20 * time.Millisecond)
	}

	got, err := coord.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sortedRecords(got.Records)) != fmt.Sprint(sortedRecords(want)) {
		t.Errorf("post-recovery retrieve differs from reference")
	}
}

// TestChaosMemoryPartialResults partitions one device of the in-memory
// backend and checks graceful degradation end to end: the retrieval
// returns the surviving devices' records plus a PartialResult whose
// manifest names the dead device, then clearing the fault and letting
// the breaker's cooldown lapse restores full byte-identical results.
func TestChaosMemoryPartialResults(t *testing.T) {
	file := buildTestFile(t)
	fs, _ := file.FileSystem(4)
	fx, _ := fxdist.NewFX(fs)
	in := fxdist.NewFaultInjector("chaos-memory", 7, map[int]fxdist.FaultSchedule{
		0: {Partition: true},
	})
	c, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx},
		fxdist.WithRetryBudget(2, time.Millisecond, 5*time.Millisecond),
		fxdist.WithCircuitBreaker(2, 100*time.Millisecond),
		fxdist.WithPartialResults(),
		fxdist.WithFaultInjector(in),
	)
	if err != nil {
		t.Fatal(err)
	}

	pm, _ := file.Spec(nil) // all-free: every device load-bearing
	want, _ := file.Search(pm)

	// Expected survivors: every matching record not placed on device 0.
	var survivors []fxdist.Record
	lost := 0
	for _, r := range want {
		coords, err := file.BucketOf(r)
		if err != nil {
			t.Fatal(err)
		}
		if fx.Device(coords) == 0 {
			lost++
		} else {
			survivors = append(survivors, r)
		}
	}
	if lost == 0 {
		t.Fatal("test premise broken: no records on device 0")
	}

	res, err := c.Retrieve(pm)
	if err == nil {
		t.Fatal("partitioned device produced a full result")
	}
	pe, ok := fxdist.AsPartial(err)
	if !ok {
		t.Fatalf("error is not a PartialResult: %v", err)
	}
	if len(pe.Failed) != 1 || !errors.Is(pe.Failed[0], fxdist.ErrFaultInjected) {
		t.Fatalf("manifest = %v, want injected fault on device 0", pe.Failed)
	}
	if pe.Coverage <= 0 || pe.Coverage >= 1 {
		t.Errorf("coverage = %v, want in (0,1)", pe.Coverage)
	}
	if fmt.Sprint(sortedRecords(res.Records)) != fmt.Sprint(sortedRecords(survivors)) {
		t.Errorf("degraded result %d records, want the %d survivor records", len(res.Records), len(survivors))
	}

	// A couple more failures open device 0's breaker.
	c.Retrieve(pm) //nolint:errcheck
	memOpen := func() string {
		for _, r := range fxdist.Resilience().Retry {
			if r.Backend == "memory" {
				for _, b := range r.Breakers {
					if b.Device == 0 {
						return b.State
					}
				}
			}
		}
		return "absent"
	}
	if st := memOpen(); st != "open" {
		t.Fatalf("device 0 breaker = %q, want open", st)
	}

	// Heal the device; after the cooldown the half-open probe readmits it
	// and full results come back.
	in.Clear(0)
	time.Sleep(150 * time.Millisecond)
	got, err := c.Retrieve(pm)
	if err != nil {
		t.Fatalf("healed retrieve still degraded: %v", err)
	}
	if fmt.Sprint(sortedRecords(got.Records)) != fmt.Sprint(sortedRecords(want)) {
		t.Errorf("healed result differs from reference")
	}
	if st := memOpen(); st != "closed" {
		t.Errorf("device 0 breaker = %q after recovery, want closed", st)
	}
}
