package fxdist_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"fxdist"
)

// scrapeMetrics GETs url and parses the Prometheus text exposition into
// a map keyed by the full series name (labels included).
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("scrape %s: status %d", url, resp.StatusCode)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	return out
}

// TestMetricsScrapeDuringDistributedRetrieve drives the full stack —
// durable cluster retrieve, replicated distributed retrieve, one server
// death — and asserts the /metrics scrape reflects each of them: per-
// device latency histograms, the live load-imbalance gauge, and the
// failover counter for the killed device.
func TestMetricsScrapeDuringDistributedRetrieve(t *testing.T) {
	srv := httptest.NewServer(fxdist.MetricsHandler())
	defer srv.Close()

	file := buildTestFile(t)
	fs, err := file.FileSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := file.Spec(map[string]string{"b": "b-3"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := file.Search(pm)
	if err != nil {
		t.Fatal(err)
	}

	// Durable cluster retrieve feeds the storage latency histogram and
	// the load-imbalance gauge.
	dc, err := fxdist.Open(fxdist.Config{Dir: t.TempDir(), File: file, Allocator: fx},
		fxdist.WithCostModel(fxdist.ParallelDisk))
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	if _, err := dc.Retrieve(pm); err != nil {
		t.Fatal(err)
	}

	// Deploy replicated servers individually so one can be killed.
	spec, err := fxdist.DescribeAllocator(fx)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := fxdist.PartitionFile(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	const m = 4
	servers := make([]*fxdist.DeviceServer, m)
	addrs := make([]string, m)
	for dev := 0; dev < m; dev++ {
		prev := (dev + m - 1) % m
		s, err := fxdist.NewReplicatedDeviceServer(dev, spec, parts[dev], parts[prev])
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers[dev] = s
		addrs[dev] = l.Addr().String()
		go s.Serve(l) //nolint:errcheck
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	coord, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs},
		fxdist.WithDialTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	got, err := coord.Coordinator().RetrieveWithFailover(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want) {
		t.Fatalf("healthy retrieve %d records, want %d", len(got.Records), len(want))
	}

	// The coordinator's trace id rode the wire to every device server, so
	// the query's spans stitch into one tree: coordinator root, one serve
	// child per device.
	if got.TraceID == 0 {
		t.Fatal("retrieve result carries no trace id")
	}
	var tree *fxdist.TraceTree
	trees := fxdist.RecentTraceTrees(256)
	for i := range trees {
		if trees[i].ID == got.TraceID {
			tree = &trees[i]
			break
		}
	}
	if tree == nil {
		t.Fatalf("no span tree for trace %d in recent traces", got.TraceID)
	}
	if tree.Name != "netdist.retrieve-failover" {
		t.Errorf("trace root = %q, want netdist.retrieve-failover", tree.Name)
	}
	if len(tree.Children) != m {
		t.Fatalf("trace %d has %d child spans, want one per device (%d): %+v",
			got.TraceID, len(tree.Children), m, tree.Children)
	}
	for _, c := range tree.Children {
		if c.Name != "netdist.serve" {
			t.Errorf("child span = %q, want netdist.serve", c.Name)
		}
		if c.TraceID != tree.ID || c.Parent != tree.ID {
			t.Errorf("child %d trace=%d parent=%d, want both %d", c.ID, c.TraceID, c.Parent, tree.ID)
		}
	}

	before := scrapeMetrics(t, srv.URL+"/metrics")
	for dev := 0; dev < m; dev++ {
		key := `fxdist_netdist_coordinator_device_request_seconds_count{device="` + strconv.Itoa(dev) + `"}`
		if before[key] == 0 {
			t.Errorf("per-device latency histogram empty: %s", key)
		}
	}
	if v := before[`fxdist_storage_load_imbalance_ratio{cluster="durable"}`]; v < 1 {
		t.Errorf("load-imbalance gauge = %g, want >= 1", v)
	}
	if before[`fxdist_storage_retrieve_seconds_count{cluster="durable"}`] == 0 {
		t.Error("durable retrieve latency histogram empty")
	}

	// Kill device 2's server and wait for the coordinator to notice.
	servers[2].Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := coord.Retrieve(pm); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("plain retrieve kept succeeding after server death")
		}
		time.Sleep(10 * time.Millisecond)
	}
	got, err = coord.Coordinator().RetrieveWithFailover(pm)
	if err != nil {
		t.Fatalf("failover retrieve: %v", err)
	}
	if len(got.Records) != len(want) {
		t.Fatalf("failover retrieve %d records, want %d", len(got.Records), len(want))
	}

	after := scrapeMetrics(t, srv.URL+"/metrics")
	failKey := `fxdist_netdist_coordinator_failovers_total{device="2"}`
	if after[failKey] <= before[failKey] {
		t.Errorf("failover counter did not increment: before=%g after=%g",
			before[failKey], after[failKey])
	}
	if after[`fxdist_netdist_coordinator_retrieves_total`] <= before[`fxdist_netdist_coordinator_retrieves_total`] {
		t.Error("coordinator retrieve counter did not advance")
	}

	// The failover fan-out also leaves a trace span correlating the
	// coordinator's view of the query.
	spans := fxdist.RecentTraces(64)
	var sawFailover bool
	for _, sp := range spans {
		if sp.Name == "netdist.retrieve-failover" {
			sawFailover = true
			break
		}
	}
	if !sawFailover {
		t.Error("no netdist.retrieve-failover span in recent traces")
	}

	// The optimality audit is served over the same handler. CI uploads
	// this JSON as a build artifact when AUDIT_JSON names a destination.
	resp, err := http.Get(srv.URL + "/debug/optimality")
	if err != nil {
		t.Fatalf("GET /debug/optimality: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read /debug/optimality: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET /debug/optimality: status %d", resp.StatusCode)
	}
	var audits []fxdist.BackendAudit
	if err := json.Unmarshal(raw, &audits); err != nil {
		t.Fatalf("/debug/optimality is not audit JSON: %v\n%s", err, raw)
	}
	var netdist *fxdist.BackendAudit
	for i := range audits {
		if audits[i].Backend == "netdist" {
			netdist = &audits[i]
		}
	}
	if netdist == nil || len(netdist.Shapes) == 0 {
		t.Fatalf("/debug/optimality has no netdist shapes: %s", raw)
	}
	var audited uint64
	for _, s := range netdist.Shapes {
		audited += s.Queries
	}
	if audited < 2 {
		t.Errorf("netdist audit saw %d queries, want >= 2 (healthy + failover)", audited)
	}
	if path := os.Getenv("AUDIT_JSON"); path != "" {
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatalf("write AUDIT_JSON: %v", err)
		}
		t.Logf("optimality audit written to %s", path)
	}
}
