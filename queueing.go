package fxdist

import (
	"time"

	"fxdist/internal/decluster"
	"fxdist/internal/queuesim"
	"fxdist/internal/rebalance"
)

// Queueing simulation: the §5.2.1 response-time model extended to a
// sustained query stream with per-device FIFO queues. Declustering skew
// compounds under load, so the FX-vs-Modulo gap widens with utilization.

// QueueJob is one query's arrival time and per-device bucket work.
type QueueJob = queuesim.Job

// QueueStats aggregates a queueing simulation run, including per-device
// total queue wait (DeviceWait) — the same waits are observed into the
// fxdist_queuesim_device_wait_seconds{device} histograms of the metric
// registry, so simulated skew and live per-device latency land on the
// same dashboard.
type QueueStats = queuesim.Stats

// RunQueue simulates a job stream under the device cost model. Every
// device task's queue wait is recorded in QueueStats.DeviceWait and in
// the per-device obs wait histograms.
func RunQueue(jobs []QueueJob, model CostModel) (QueueStats, error) {
	return queuesim.Run(jobs, model)
}

// JobsFromQueries builds jobs for a bucket-level query mix under an
// allocator, pairing queries[i] with arrivals[i].
func JobsFromQueries(a GroupAllocator, queries []Query, arrivals []time.Duration) ([]QueueJob, error) {
	return queuesim.FromQueries(a, queries, arrivals)
}

// RunClosedQueue simulates a closed system: `clients` concurrent clients
// cycle through the pool of per-query load vectors at a fixed
// multiprogramming level until `completions` queries finish. Per-device
// queue waits are reported like RunQueue's.
func RunClosedQueue(pool [][]int, clients, completions int, model CostModel) (QueueStats, error) {
	return queuesim.RunClosed(pool, clients, completions, model)
}

// QueryLoadPool precomputes per-query device-load vectors for
// RunClosedQueue.
func QueryLoadPool(a GroupAllocator, queries []Query) ([][]int, error) {
	return queuesim.LoadPool(a, queries)
}

// PoissonArrivals generates n arrival times with exponential interarrival
// gaps of the given mean, deterministically for a seed.
func PoissonArrivals(n int, mean time.Duration, seed int64) []time.Duration {
	return queuesim.PoissonArrivals(n, mean, seed)
}

// UniformArrivals generates n arrival times with a fixed gap.
func UniformArrivals(n int, gap time.Duration) []time.Duration {
	return queuesim.UniformArrivals(n, gap)
}

// Growth redistribution planning: what doubling a field's directory costs
// in cross-device data movement.

// GrowthPlan reports the device movement caused by doubling one field.
type GrowthPlan = rebalance.GrowthPlan

// PlanGrowth compares bucket placement before and after doubling field g;
// oldAlloc is built for the pre-growth sizes, newAlloc for post-growth.
func PlanGrowth(oldAlloc, newAlloc GroupAllocator, g int) (GrowthPlan, error) {
	return rebalance.PlanGrowth(oldAlloc, newAlloc, g)
}

// MigrationPlan reports the bucket movement of switching allocation
// methods on the same file system.
type MigrationPlan = rebalance.MigrationPlan

// PlanMigration compares bucket placement under two allocators over the
// same file system (e.g. re-declustering Modulo data to FX).
func PlanMigration(from, to Allocator) (MigrationPlan, error) {
	return rebalance.PlanMigration(from, to)
}

// GrowthSeries doubles field g repeatedly and returns the per-step plans;
// build constructs the allocator for each post-growth file system.
func GrowthSeries(sizes []int, m, g, steps int,
	build func(fs FileSystem) (GroupAllocator, error)) ([]GrowthPlan, error) {
	return rebalance.GrowthSeries(sizes, m, g, steps,
		func(fs decluster.FileSystem) (decluster.GroupAllocator, error) { return build(fs) })
}
