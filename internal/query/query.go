// Package query defines partial match queries over a multi-key hashed
// bucket grid and the machinery to answer them against a declustered file:
// qualified-bucket enumeration, per-device load measurement, and the
// *inverse mapping* the paper's §4.2 calls out — finding the qualified
// buckets that live on one particular device without scanning the whole
// grid, which is what each parallel device must do locally.
package query

import (
	"fmt"
	"strings"

	"fxdist/internal/decluster"
)

// Unspecified marks a field that the query leaves free.
const Unspecified = -1

// Query is a partial match query: Spec[i] is the hashed value the query
// specifies for field i, or Unspecified.
type Query struct {
	Spec []int
}

// New builds a query from a specification vector (values or Unspecified).
func New(spec []int) Query {
	return Query{Spec: append([]int(nil), spec...)}
}

// Exact builds the exact-match query for a bucket (no unspecified fields).
func Exact(bucket []int) Query { return New(bucket) }

// All builds the query with all n fields unspecified (whole-file
// retrieval).
func All(n int) Query {
	spec := make([]int, n)
	for i := range spec {
		spec[i] = Unspecified
	}
	return Query{Spec: spec}
}

// FromSubset builds a query whose unspecified fields are exactly those in
// unspec (field indices); every other field is specified with the
// corresponding entry of values (values[i] is ignored for unspecified i).
func FromSubset(values []int, unspec []int) Query {
	q := New(values)
	for _, i := range unspec {
		q.Spec[i] = Unspecified
	}
	return q
}

// Validate checks q against a file system.
func (q Query) Validate(fs decluster.FileSystem) error {
	if len(q.Spec) != fs.NumFields() {
		return fmt.Errorf("query: %d fields specified, file system has %d", len(q.Spec), fs.NumFields())
	}
	for i, v := range q.Spec {
		if v == Unspecified {
			continue
		}
		if v < 0 || v >= fs.Sizes[i] {
			return fmt.Errorf("query: field %d value %d outside domain [0,%d)", i, v, fs.Sizes[i])
		}
	}
	return nil
}

// UnspecifiedFields returns the indices of unspecified fields in order.
func (q Query) UnspecifiedFields() []int {
	var out []int
	for i, v := range q.Spec {
		if v == Unspecified {
			out = append(out, i)
		}
	}
	return out
}

// NumUnspecified returns the count of unspecified fields (the paper's k).
func (q Query) NumUnspecified() int {
	k := 0
	for _, v := range q.Spec {
		if v == Unspecified {
			k++
		}
	}
	return k
}

// NumQualified returns |R(q)|: the number of buckets matching q, the
// product of the unspecified field sizes.
func (q Query) NumQualified(fs decluster.FileSystem) int {
	n := 1
	for i, v := range q.Spec {
		if v == Unspecified {
			n *= fs.Sizes[i]
		}
	}
	return n
}

// Matches reports whether bucket satisfies q.
func (q Query) Matches(bucket []int) bool {
	for i, v := range q.Spec {
		if v != Unspecified && bucket[i] != v {
			return false
		}
	}
	return true
}

// EachQualified calls fn for every bucket in R(q), in row-major order over
// the unspecified fields. The slice passed to fn is reused; copy to
// retain.
func (q Query) EachQualified(fs decluster.FileSystem, fn func(bucket []int)) {
	b := make([]int, len(q.Spec))
	copy(b, q.Spec)
	unspec := q.UnspecifiedFields()
	var rec func(j int)
	rec = func(j int) {
		if j == len(unspec) {
			fn(b)
			return
		}
		i := unspec[j]
		for v := 0; v < fs.Sizes[i]; v++ {
			b[i] = v
			rec(j + 1)
		}
	}
	rec(0)
}

// Shape returns the query's shape key: one byte per field, 's' for
// specified and '*' for unspecified — e.g. "s**s". Two queries with the
// same unspecified field set are the same shape (the paper's query
// class), whatever values they specify.
func (q Query) Shape() string {
	b := make([]byte, len(q.Spec))
	for i, v := range q.Spec {
		if v == Unspecified {
			b[i] = '*'
		} else {
			b[i] = 's'
		}
	}
	return string(b)
}

// String renders the query with '*' for unspecified fields, e.g. "<3,*,0>".
func (q Query) String() string {
	parts := make([]string, len(q.Spec))
	for i, v := range q.Spec {
		if v == Unspecified {
			parts[i] = "*"
		} else {
			parts[i] = fmt.Sprint(v)
		}
	}
	return "<" + strings.Join(parts, ",") + ">"
}

// Loads scans R(q) through the allocator and returns per-device qualified
// bucket counts — the response sizes r_i(q) of the paper's §5.2. This is
// the brute-force ground truth; package convolve computes the same vector
// without enumeration.
func Loads(a decluster.Allocator, q Query) []int {
	fs := a.FileSystem()
	if err := q.Validate(fs); err != nil {
		panic(err)
	}
	h := make([]int, fs.M)
	q.EachQualified(fs, func(b []int) {
		h[a.Device(b)]++
	})
	return h
}

// LargestLoad returns MAX(r_0(q) ... r_{M-1}(q)), the paper's largest
// response size for q.
func LargestLoad(a decluster.Allocator, q Query) int {
	max := 0
	for _, v := range Loads(a, q) {
		if v > max {
			max = v
		}
	}
	return max
}
