package query

import (
	"math/rand"
	"reflect"
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/field"
)

func TestQueryConstruction(t *testing.T) {
	q := New([]int{3, Unspecified, 0})
	if q.NumUnspecified() != 1 {
		t.Errorf("NumUnspecified = %d", q.NumUnspecified())
	}
	if got := q.UnspecifiedFields(); len(got) != 1 || got[0] != 1 {
		t.Errorf("UnspecifiedFields = %v", got)
	}
	if q.String() != "<3,*,0>" {
		t.Errorf("String = %q", q.String())
	}
	all := All(3)
	if all.NumUnspecified() != 3 {
		t.Error("All not fully unspecified")
	}
	ex := Exact([]int{1, 2, 3})
	if ex.NumUnspecified() != 0 {
		t.Error("Exact has unspecified fields")
	}
}

func TestFromSubset(t *testing.T) {
	q := FromSubset([]int{5, 6, 7, 8}, []int{1, 3})
	want := []int{5, Unspecified, 7, Unspecified}
	if !reflect.DeepEqual(q.Spec, want) {
		t.Errorf("FromSubset spec = %v, want %v", q.Spec, want)
	}
}

func TestValidate(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 8}, 4)
	if err := New([]int{3, Unspecified}).Validate(fs); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := New([]int{3}).Validate(fs); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := New([]int{4, 0}).Validate(fs); err == nil {
		t.Error("out-of-domain value accepted")
	}
	if err := New([]int{-2, 0}).Validate(fs); err == nil {
		t.Error("negative non-sentinel value accepted")
	}
}

func TestNumQualifiedAndEnumeration(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 8, 2}, 4)
	q := New([]int{2, Unspecified, Unspecified})
	if got := q.NumQualified(fs); got != 16 {
		t.Errorf("NumQualified = %d, want 16", got)
	}
	count := 0
	q.EachQualified(fs, func(b []int) {
		if !q.Matches(b) {
			t.Fatalf("enumerated non-matching bucket %v", b)
		}
		count++
	})
	if count != 16 {
		t.Errorf("enumerated %d buckets, want 16", count)
	}
}

func TestMatches(t *testing.T) {
	q := New([]int{2, Unspecified})
	if !q.Matches([]int{2, 7}) {
		t.Error("matching bucket rejected")
	}
	if q.Matches([]int{3, 7}) {
		t.Error("non-matching bucket accepted")
	}
}

// Loads must agree with counting over a manual scan, and must sum to |R(q)|.
func TestLoadsAgainstManualScan(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 8, 2}, 8)
	fx := decluster.MustFX(fs)
	q := New([]int{Unspecified, 5, Unspecified})
	loads := Loads(fx, q)
	manual := make([]int, fs.M)
	fs.EachBucket(func(b []int) {
		if q.Matches(b) {
			manual[fx.Device(b)]++
		}
	})
	if !reflect.DeepEqual(loads, manual) {
		t.Errorf("Loads = %v, manual = %v", loads, manual)
	}
	sum := 0
	for _, v := range loads {
		sum += v
	}
	if sum != q.NumQualified(fs) {
		t.Errorf("loads sum %d != |R(q)| %d", sum, q.NumQualified(fs))
	}
}

// The paper's §3 example: f = (2,8), M = 4, first field specified as 1,
// second unspecified: every device holds exactly 2 qualified buckets.
func TestSection3Example(t *testing.T) {
	fs := decluster.MustFileSystem([]int{2, 8}, 4)
	fx, err := decluster.NewBasicFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	loads := Loads(fx, New([]int{1, Unspecified}))
	for dev, v := range loads {
		if v != 2 {
			t.Errorf("device %d holds %d qualified buckets, want 2", dev, v)
		}
	}
	if LargestLoad(fx, New([]int{1, Unspecified})) != 2 {
		t.Error("LargestLoad wrong")
	}
}

func TestLoadsPanicsOnInvalidQuery(t *testing.T) {
	fs := decluster.MustFileSystem([]int{2, 8}, 4)
	fx := decluster.MustFX(fs)
	defer func() {
		if recover() == nil {
			t.Fatal("Loads with invalid query did not panic")
		}
	}()
	Loads(fx, New([]int{5, Unspecified}))
}

// Inverse mapping must produce exactly the qualified buckets on each
// device, across allocators, query shapes and devices.
func TestInverseMappingMatchesForwardScan(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 8, 2, 4}, 8)
	allocs := []decluster.GroupAllocator{
		decluster.MustFX(fs),
		decluster.MustFX(fs, field.WithKinds([]field.Kind{field.I, field.I, field.I, field.I})),
		decluster.NewModulo(fs),
		decluster.MustGDM(fs, []int{2, 3, 5, 7}),
	}
	queries := []Query{
		All(4),
		New([]int{1, Unspecified, Unspecified, 2}),
		New([]int{Unspecified, 3, 1, Unspecified}),
		Exact([]int{3, 7, 1, 0}),
		New([]int{Unspecified, Unspecified, Unspecified, 1}),
	}
	for _, a := range allocs {
		im := NewInverseMapper(a)
		for _, q := range queries {
			// Forward: scan R(q), group by device.
			want := make(map[int]map[[4]int]bool)
			q.EachQualified(fs, func(b []int) {
				d := a.Device(b)
				if want[d] == nil {
					want[d] = map[[4]int]bool{}
				}
				want[d][[4]int{b[0], b[1], b[2], b[3]}] = true
			})
			for dev := 0; dev < fs.M; dev++ {
				got := map[[4]int]bool{}
				im.EachOnDevice(q, dev, func(b []int) {
					key := [4]int{b[0], b[1], b[2], b[3]}
					if got[key] {
						t.Fatalf("%s %v dev %d: duplicate bucket %v", a.Name(), q, dev, b)
					}
					got[key] = true
				})
				if len(got) != len(want[dev]) {
					t.Fatalf("%s %v dev %d: %d buckets, want %d", a.Name(), q, dev, len(got), len(want[dev]))
				}
				for b := range got {
					if !want[dev][b] {
						t.Fatalf("%s %v dev %d: spurious bucket %v", a.Name(), q, dev, b)
					}
				}
			}
		}
	}
}

func TestInverseMapperCountAndCollect(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 8}, 4)
	fx := decluster.MustFX(fs)
	im := NewInverseMapper(fx)
	q := New([]int{Unspecified, Unspecified})
	total := 0
	for dev := 0; dev < fs.M; dev++ {
		c := im.CountOnDevice(q, dev)
		if got := len(im.OnDevice(q, dev)); got != c {
			t.Fatalf("OnDevice len %d != CountOnDevice %d", got, c)
		}
		total += c
	}
	if total != fs.NumBuckets() {
		t.Errorf("inverse map total %d != bucket count %d", total, fs.NumBuckets())
	}
	if im.Allocator() != fx {
		t.Error("Allocator accessor wrong")
	}
}

func TestInverseMapperExactMatch(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 8}, 4)
	fx := decluster.MustFX(fs)
	im := NewInverseMapper(fx)
	b := []int{2, 5}
	dev := fx.Device(b)
	q := Exact(b)
	for d := 0; d < fs.M; d++ {
		got := im.OnDevice(q, d)
		if d == dev {
			if len(got) != 1 || !reflect.DeepEqual(got[0], b) {
				t.Fatalf("device %d: got %v, want [%v]", d, got, b)
			}
		} else if len(got) != 0 {
			t.Fatalf("device %d: got %v, want none", d, got)
		}
	}
}

// Randomized cross-check between inverse-map counts and Loads.
func TestInverseCountsEqualLoadsRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		nf := 2 + r.Intn(3)
		sizes := make([]int, nf)
		for i := range sizes {
			sizes[i] = 1 << (1 + r.Intn(3))
		}
		m := 1 << (1 + r.Intn(4))
		fs := decluster.MustFileSystem(sizes, m)
		fx := decluster.MustFX(fs)
		im := NewInverseMapper(fx)
		spec := make([]int, nf)
		for i := range spec {
			if r.Intn(2) == 0 {
				spec[i] = Unspecified
			} else {
				spec[i] = r.Intn(sizes[i])
			}
		}
		q := New(spec)
		loads := Loads(fx, q)
		for dev := 0; dev < m; dev++ {
			if got := im.CountOnDevice(q, dev); got != loads[dev] {
				t.Fatalf("sizes=%v m=%d q=%v dev=%d: inverse count %d != load %d",
					sizes, m, q, dev, got, loads[dev])
			}
		}
	}
}
