package query

import (
	"fxdist/internal/decluster"
)

// InverseMapper answers the per-device question of the paper's §4.2: which
// qualified buckets of a query reside on one given device? Each parallel
// device runs this locally, so it must not scan the whole grid. For group
// allocators the device equation
//
//	c_1(J_1) · ... · c_n(J_n) = dev        (in (Z_M, op))
//
// can be solved for the last unspecified field: fix values for all but one
// unspecified field, compute the contribution the remaining field must
// supply, and look it up in a per-field reverse index. The enumeration
// cost is |R(q)| / F_last * (average preimage size), independent of the
// total grid size.
type InverseMapper struct {
	a decluster.GroupAllocator
	// reverse[i][c] lists the values v of field i with Contribution(i,v)=c.
	reverse [][][]int
}

// NewInverseMapper precomputes reverse contribution indexes for a.
func NewInverseMapper(a decluster.GroupAllocator) *InverseMapper {
	fs := a.FileSystem()
	rev := make([][][]int, fs.NumFields())
	for i, f := range fs.Sizes {
		r := make([][]int, fs.M)
		for v := 0; v < f; v++ {
			c := a.Contribution(i, v)
			r[c] = append(r[c], v)
		}
		rev[i] = r
	}
	return &InverseMapper{a: a, reverse: rev}
}

// Allocator returns the allocator the mapper was built for.
func (im *InverseMapper) Allocator() decluster.GroupAllocator { return im.a }

// EachOnDevice calls fn for every bucket of R(q) that the allocator places
// on device dev. The slice passed to fn is reused; copy to retain. Buckets
// are produced in row-major order over all unspecified fields except the
// solved one.
func (im *InverseMapper) EachOnDevice(q Query, dev int, fn func(bucket []int)) {
	fs := im.a.FileSystem()
	if err := q.Validate(fs); err != nil {
		panic(err)
	}
	g := im.a.Op()

	// Fold the specified contributions into h.
	h := 0
	for i, v := range q.Spec {
		if v != Unspecified {
			h = g.Combine(h, im.a.Contribution(i, v), fs.M)
		}
	}

	unspec := q.UnspecifiedFields()
	if len(unspec) == 0 {
		if h == dev {
			fn(append([]int(nil), q.Spec...))
		}
		return
	}

	// Solve for the largest unspecified field: it has the biggest domain,
	// so removing it from the enumeration saves the most work.
	solveIdx := 0
	for j, i := range unspec {
		if fs.Sizes[i] > fs.Sizes[unspec[solveIdx]] {
			solveIdx = j
		}
	}
	solved := unspec[solveIdx]
	rest := make([]int, 0, len(unspec)-1)
	rest = append(rest, unspec[:solveIdx]...)
	rest = append(rest, unspec[solveIdx+1:]...)

	b := make([]int, len(q.Spec))
	copy(b, q.Spec)

	var rec func(j, acc int)
	rec = func(j, acc int) {
		if j == len(rest) {
			// Need contribution c with acc · c = dev, i.e. c = acc⁻¹ · dev.
			c := g.Combine(g.Invert(acc, fs.M), dev, fs.M)
			for _, v := range im.reverse[solved][c] {
				b[solved] = v
				fn(b)
			}
			return
		}
		i := rest[j]
		for v := 0; v < fs.Sizes[i]; v++ {
			b[i] = v
			rec(j+1, g.Combine(acc, im.a.Contribution(i, v), fs.M))
		}
	}
	rec(0, h)
}

// OnDevice returns the buckets of R(q) on device dev as copied slices.
func (im *InverseMapper) OnDevice(q Query, dev int) [][]int {
	var out [][]int
	im.EachOnDevice(q, dev, func(b []int) {
		out = append(out, append([]int(nil), b...))
	})
	return out
}

// CountOnDevice returns r_dev(q) without materialising buckets.
func (im *InverseMapper) CountOnDevice(q Query, dev int) int {
	n := 0
	im.EachOnDevice(q, dev, func([]int) { n++ })
	return n
}
