package analysis

import (
	"fmt"
	"math"

	"fxdist/internal/convolve"
	"fxdist/internal/decluster"
	"fxdist/internal/query"
)

// LoadStats summarises one per-device load vector.
type LoadStats struct {
	Min, Max int
	Mean     float64
	// CV is the coefficient of variation (stddev/mean); 0 for a perfectly
	// even spread.
	CV float64
	// Balance is mean/max in (0, 1]; 1 means every device carries exactly
	// the average (response time at its lower bound).
	Balance float64
}

// StatsOf computes load statistics for a non-empty load vector with a
// positive total.
func StatsOf(loads []int) (LoadStats, error) {
	if len(loads) == 0 {
		return LoadStats{}, fmt.Errorf("analysis: empty load vector")
	}
	s := LoadStats{Min: loads[0], Max: loads[0]}
	sum := 0
	for _, l := range loads {
		if l < s.Min {
			s.Min = l
		}
		if l > s.Max {
			s.Max = l
		}
		sum += l
	}
	if sum == 0 {
		return LoadStats{}, fmt.Errorf("analysis: zero total load")
	}
	s.Mean = float64(sum) / float64(len(loads))
	varSum := 0.0
	for _, l := range loads {
		d := float64(l) - s.Mean
		varSum += d * d
	}
	s.CV = math.Sqrt(varSum/float64(len(loads))) / s.Mean
	s.Balance = s.Mean / float64(s.Max)
	return s, nil
}

// WorkloadBalance averages the Balance statistic of an allocator over a
// query mix — a single scalar for "how close to ideal parallelism does
// this method get on this workload" (1.0 = every query perfectly spread).
func WorkloadBalance(a decluster.GroupAllocator, queries []query.Query) (float64, error) {
	if len(queries) == 0 {
		return 0, fmt.Errorf("analysis: empty query mix")
	}
	total := 0.0
	for i, q := range queries {
		if err := q.Validate(a.FileSystem()); err != nil {
			return 0, fmt.Errorf("analysis: query %d: %w", i, err)
		}
		st, err := StatsOf(convolve.Loads(a, q))
		if err != nil {
			return 0, fmt.Errorf("analysis: query %d: %w", i, err)
		}
		total += st.Balance
	}
	return total / float64(len(queries)), nil
}
