package analysis

import (
	"math"
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/field"
	"fxdist/internal/optimal"
)

func TestWeightedOptimalityBounds(t *testing.T) {
	if _, err := WeightedOptimality(3, -0.1, func([]int) bool { return true }); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := WeightedOptimality(3, 1.1, func([]int) bool { return true }); err == nil {
		t.Error("p > 1 accepted")
	}
	// Always-true predicate integrates to 1 for any p.
	for _, p := range []float64{0, 0.3, 0.5, 1} {
		got, err := WeightedOptimality(4, p, func([]int) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-1) > 1e-12 {
			t.Errorf("p=%v: total probability %v, want 1", p, got)
		}
	}
}

func TestWeightedOptimalityDegenerateP(t *testing.T) {
	// p = 1: only the exact-match class (no unspecified fields) has mass.
	got, err := WeightedOptimality(3, 1, func(s []int) bool { return len(s) == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("p=1 exact-match mass = %v", got)
	}
	// p = 0: only the whole-file class has mass.
	got, err = WeightedOptimality(3, 0, func(s []int) bool { return len(s) == 3 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("p=0 whole-file mass = %v", got)
	}
}

// With p = 0.5 the weighted probability equals the uniform percentage.
func TestWeightedMatchesUniformAtHalf(t *testing.T) {
	fs := decluster.MustFileSystem([]int{2, 2, 4, 8}, 16)
	fx := decluster.MustFX(fs)
	pred := func(s []int) bool { return optimal.StrictForSubset(fx, s) }
	weighted, err := WeightedOptimality(4, 0.5, pred)
	if err != nil {
		t.Fatal(err)
	}
	uniform := percentOf(4, pred) / 100
	if math.Abs(weighted-uniform) > 1e-12 {
		t.Errorf("weighted %v != uniform %v", weighted, uniform)
	}
}

// Lower specification probability means more unspecified fields and lower
// optimality probability for Modulo in the all-small regime.
func TestWeightedOptimalityMonotoneForModulo(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4, 4, 4}, 16)
	pred := func(s []int) bool { return optimal.ModuloSufficient(fs, s) }
	prev := -1.0
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		got, err := WeightedOptimality(4, p, pred)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev {
			t.Errorf("optimality probability decreased as p grew: %v after %v", got, prev)
		}
		prev = got
	}
}

// The exhaustive plan search can never do worse than the default planner,
// and on a Theorem 9 system both reach 100%.
func TestSearchBestPlan(t *testing.T) {
	fs := decluster.MustFileSystem([]int{2, 4, 8}, 16)
	res, err := SearchBestPlan(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 64 { // 4^3 assignments
		t.Errorf("evaluated %d assignments, want 64", res.Evaluated)
	}
	if res.OptimalPct < res.PlannerPct {
		t.Errorf("search best %.1f%% below planner %.1f%%", res.OptimalPct, res.PlannerPct)
	}
	if res.PlannerPct != 100 {
		t.Errorf("planner should be perfect optimal on L=3 (Theorem 9), got %.1f%%", res.PlannerPct)
	}
	if res.OptimalPct != 100 {
		t.Errorf("search should find a perfect plan, got %.1f%%", res.OptimalPct)
	}
	if len(res.Kinds) != 3 {
		t.Errorf("kinds = %v", res.Kinds)
	}
}

// On an L=4 system (no method is always perfect optimal, [Sung87]), the
// search must confirm that no FX transform assignment reaches 100%.
func TestSearchConfirmsSungImpossibilityForFX(t *testing.T) {
	fs := decluster.MustFileSystem([]int{2, 2, 2, 2}, 16)
	res, err := SearchBestPlan(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalPct == 100 {
		t.Errorf("an FX assignment reached 100%% on an L=4 all-small system: %v", res.Kinds)
	}
	if res.OptimalPct < res.PlannerPct {
		t.Errorf("search (%.1f%%) below planner (%.1f%%)", res.OptimalPct, res.PlannerPct)
	}
}

// Large fields are forced to identity; search space shrinks accordingly.
func TestSearchBestPlanLargeFieldsForced(t *testing.T) {
	fs := decluster.MustFileSystem([]int{16, 4}, 8)
	res, err := SearchBestPlan(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 4 {
		t.Errorf("evaluated %d, want 4", res.Evaluated)
	}
	if res.Kinds[0] != field.I {
		t.Errorf("large field kind = %v, want I", res.Kinds[0])
	}
}

func TestSearchGDM(t *testing.T) {
	fs := decluster.MustFileSystem([]int{8, 8, 8, 8, 8, 8}, 32)
	res, err := SearchGDM(fs, 2, 40, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 40 {
		t.Errorf("evaluated %d", res.Evaluated)
	}
	for _, a := range res.Multipliers {
		if a%2 == 0 || a < 1 || a > 64 {
			t.Errorf("multiplier %d not an odd value in range", a)
		}
	}
	// Any found set must beat plain Modulo's 8.0 at k=2 here.
	if res.AvgLargest >= 8.0 {
		t.Errorf("best GDM avg %.2f no better than Modulo", res.AvgLargest)
	}
	// Determinism.
	res2, _ := SearchGDM(fs, 2, 40, 64)
	if res2.AvgLargest != res.AvgLargest {
		t.Error("search not deterministic")
	}
	if _, err := SearchGDM(fs, 2, 0, 64); err == nil {
		t.Error("zero trials accepted")
	}
}

// The exhaustive response table must agree with the convolution path on
// group allocators (same definition, different engines), and must rank
// the MSP heuristic: better than nothing, worse than or equal to FX.
func TestResponseTableExhaustive(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 8)
	fx := decluster.MustFX(fs)
	md := decluster.NewModulo(fs)
	ks := []int{1, 2}
	fast := ResponseTable(fs, []decluster.GroupAllocator{fx, md}, ks)
	slow := ResponseTableExhaustive(fs, []decluster.Allocator{fx, md}, ks)
	for r := range fast {
		for c := range fast[r].Avg {
			if math.Abs(fast[r].Avg[c]-slow[r].Avg[c]) > 1e-9 {
				t.Errorf("row %d col %d: convolution %.3f vs exhaustive %.3f",
					r, c, fast[r].Avg[c], slow[r].Avg[c])
			}
		}
		if math.Abs(fast[r].Optimal-slow[r].Optimal) > 1e-9 {
			t.Errorf("row %d optimal differs", r)
		}
	}

	msp := decluster.NewMSP(fs)
	rows := ResponseTableExhaustive(fs, []decluster.Allocator{msp, fx, md}, []int{2})
	mspAvg, fxAvg, mdAvg := rows[0].Avg[0], rows[0].Avg[1], rows[0].Avg[2]
	if fxAvg > mspAvg+1e-9 {
		t.Errorf("FX (%.2f) worse than MSP (%.2f)", fxAvg, mspAvg)
	}
	if mspAvg > mdAvg+1e-9 {
		t.Logf("note: MSP (%.2f) worse than Modulo (%.2f) on this grid", mspAvg, mdAvg)
	}
}

// ExpectedLargest at p = 0 reduces to the whole-file largest load; at
// p = 1 to the exact-match load of 1.
func TestExpectedLargestDegenerate(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 16)
	fx := decluster.MustFX(fs)
	md := decluster.NewModulo(fs)
	all0 := []float64{0, 0}
	all1 := []float64{1, 1}
	if e, _ := ExpectedLargest(fx, all0); e != 1 { // FX(I,U) whole-file max = 1
		t.Errorf("FX p=0 expected largest = %v", e)
	}
	if e, _ := ExpectedLargest(md, all0); e != 4 { // Modulo triangle peak
		t.Errorf("Modulo p=0 expected largest = %v", e)
	}
	for _, a := range []decluster.GroupAllocator{fx, md} {
		if e, _ := ExpectedLargest(a, all1); e != 1 {
			t.Errorf("%s p=1 expected largest = %v", a.Name(), e)
		}
	}
	if _, err := ExpectedLargest(fx, []float64{0.5}); err == nil {
		t.Error("prob count mismatch accepted")
	}
	if _, err := ExpectedLargest(fx, []float64{0.5, 1.5}); err == nil {
		t.Error("prob out of range accepted")
	}
}

// The recommender must pick FX over Modulo and Basic FX on a system where
// FX's transforms matter.
func TestRecommend(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4, 8}, 32)
	fx := decluster.MustFX(fs)
	basic, err := decluster.NewBasicFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	md := decluster.NewModulo(fs)
	probs := []float64{0.5, 0.5, 0.5}
	rec, err := Recommend([]decluster.GroupAllocator{md, basic, fx}, probs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best != 2 || rec.Name != fx.Name() {
		t.Errorf("recommended %q (index %d), expected %s; scores %v",
			rec.Name, rec.Best, fx.Name(), rec.Expected)
	}
	for i, e := range rec.Expected {
		if e < 1 {
			t.Errorf("candidate %d expected largest %v < 1", i, e)
		}
	}
	if _, err := Recommend(nil, probs); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := Recommend([]decluster.GroupAllocator{fx}, []float64{0.5}); err == nil {
		t.Error("prob mismatch accepted")
	}
}

// P-sweep: FX dominates Modulo at every specification probability, and
// both reach certainty at p = 1 (exact match is always optimal). The
// curve need not be monotone in p: weight shifts through the middle-k
// query classes, which are the hardest to certify.
func TestPSweep(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4, 4, 4}, 32)
	pts, err := PSweep(fs, field.FamilyIU2, []float64{0.1, 0.5, 0.9, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.FXPct < p.ModuloPct-1e-12 {
			t.Errorf("p=%.1f: FX %.3f below Modulo %.3f", p.P, p.FXPct, p.ModuloPct)
		}
		if p.FXPct < 0 || p.FXPct > 1 || p.ModuloPct < 0 || p.ModuloPct > 1 {
			t.Errorf("p=%.1f: probabilities out of range: %+v", p.P, p)
		}
	}
	last := pts[3]
	if math.Abs(last.FXPct-1) > 1e-12 || math.Abs(last.ModuloPct-1) > 1e-12 {
		t.Errorf("p=1 should be certain: FX=%v MD=%v", last.FXPct, last.ModuloPct)
	}
	if _, err := PSweep(fs, field.FamilyIU2, []float64{-0.5}); err == nil {
		t.Error("invalid p accepted")
	}
}

// M-sweep: optimality degrades as the machine outgrows the directories,
// and FX stays above Modulo throughout.
func TestMSweep(t *testing.T) {
	pts, err := MSweep([]int{8, 8, 8, 8}, []int{4, 16, 64, 256}, field.FamilyIU2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// At M=4 every field is >= M: perfect for both.
	if pts[0].FXExactPct != 100 || pts[0].ModuloExactPct != 100 {
		t.Errorf("M=4: FX %.1f MD %.1f, want 100/100", pts[0].FXExactPct, pts[0].ModuloExactPct)
	}
	if pts[0].SmallFields != 0 || pts[3].SmallFields != 4 {
		t.Errorf("small-field counts wrong: %+v", pts)
	}
	for i, p := range pts {
		if p.FXExactPct < p.ModuloExactPct {
			t.Errorf("M=%d: FX %.1f below Modulo %.1f", p.M, p.FXExactPct, p.ModuloExactPct)
		}
		if p.FXCertifiedPct > p.FXExactPct+1e-9 {
			t.Errorf("M=%d: certified %.1f exceeds exact %.1f", p.M, p.FXCertifiedPct, p.FXExactPct)
		}
		if i > 0 && p.FXExactPct > pts[i-1].FXExactPct+1e-9 {
			t.Errorf("FX optimality increased with M at %d", p.M)
		}
	}
	if _, err := MSweep([]int{8}, []int{3}, field.FamilyIU2); err == nil {
		t.Error("non-power-of-two M accepted")
	}
}

func TestFindWitness(t *testing.T) {
	// Perfect optimal: no witness.
	fs := decluster.MustFileSystem([]int{2, 4, 8}, 16)
	fx := decluster.MustFX(fs)
	if w, ok := optimal.FindWitness(fx); ok {
		t.Errorf("witness %v on a perfect optimal allocator", w)
	}
	// Basic FX on two small fields: witness must be the pair itself.
	fs2 := decluster.MustFileSystem([]int{2, 8}, 16)
	bfx, err := decluster.NewBasicFX(fs2)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := optimal.FindWitness(bfx)
	if !ok {
		t.Fatal("no witness on a non-optimal allocator")
	}
	if len(w.Unspec) != 2 || w.MaxLoad <= w.Bound {
		t.Errorf("witness = %+v", w)
	}
}
