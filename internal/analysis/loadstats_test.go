package analysis

import (
	"math"
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/field"
	"fxdist/internal/query"
	"fxdist/internal/workload"
)

func TestStatsOfValidation(t *testing.T) {
	if _, err := StatsOf(nil); err == nil {
		t.Error("empty vector accepted")
	}
	if _, err := StatsOf([]int{0, 0}); err == nil {
		t.Error("zero total accepted")
	}
}

func TestStatsOfUniform(t *testing.T) {
	s, err := StatsOf([]int{4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 4 || s.Max != 4 || s.Mean != 4 || s.CV != 0 || s.Balance != 1 {
		t.Errorf("uniform stats = %+v", s)
	}
}

func TestStatsOfSkewed(t *testing.T) {
	s, err := StatsOf([]int{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 0 || s.Max != 8 || s.Mean != 4 || s.Balance != 0.5 {
		t.Errorf("skewed stats = %+v", s)
	}
	if math.Abs(s.CV-1.0) > 1e-12 {
		t.Errorf("CV = %v, want 1", s.CV)
	}
}

// FX's workload balance dominates Modulo's on the Table 2 file system.
func TestWorkloadBalanceRanksMethods(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 16)
	fx := decluster.MustFX(fs, field.WithKinds([]field.Kind{field.I, field.U}))
	md := decluster.NewModulo(fs)
	queries, err := workload.BucketQueries(fs.Sizes, 100, 0.5, 13)
	if err != nil {
		t.Fatal(err)
	}
	fxBal, err := WorkloadBalance(fx, queries)
	if err != nil {
		t.Fatal(err)
	}
	mdBal, err := WorkloadBalance(md, queries)
	if err != nil {
		t.Fatal(err)
	}
	if fxBal <= mdBal {
		t.Errorf("FX balance %.3f not above Modulo %.3f", fxBal, mdBal)
	}
	if fxBal <= 0 || fxBal > 1 || mdBal <= 0 || mdBal > 1 {
		t.Errorf("balances out of range: %v %v", fxBal, mdBal)
	}
	if _, err := WorkloadBalance(fx, nil); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := WorkloadBalance(fx, []query.Query{query.New([]int{9, 0})}); err == nil {
		t.Error("invalid query accepted")
	}
}
