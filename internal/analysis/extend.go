package analysis

import (
	"fmt"
	"math"

	"fxdist/internal/convolve"
	"fxdist/internal/decluster"
	"fxdist/internal/field"
	"fxdist/internal/optimal"
	"fxdist/internal/query"
)

// WeightedOptimality computes the probability that a random partial match
// query is distributed strict-optimally, under the paper's §5 query model:
// every field is specified independently with probability p. Subsets are
// weighted binomially — a query class with k unspecified fields has
// probability p^(n-k) * (1-p)^k. pred receives the unspecified field set.
//
// With p = 0.5 this reduces to the uniform percentage used by Figures 1-4
// (every subset equally likely).
func WeightedOptimality(n int, p float64, pred func(unspec []int) bool) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("analysis: specification probability %v outside [0,1]", p)
	}
	prob := 0.0
	optimal.EachSubset(n, func(s []int) {
		if pred(s) {
			k := len(s)
			prob += math.Pow(p, float64(n-k)) * math.Pow(1-p, float64(k))
		}
	})
	return prob, nil
}

// PlanSearchResult reports the best transform assignment found by
// exhaustive search.
type PlanSearchResult struct {
	// Kinds is the best per-field assignment.
	Kinds []field.Kind
	// OptimalPct is the exact percentage of query classes (subsets) the
	// assignment distributes strict-optimally.
	OptimalPct float64
	// PlannerPct is the same metric for the library's default planner, for
	// comparison.
	PlannerPct float64
	// Evaluated is the number of assignments scored.
	Evaluated int
}

// SearchBestPlan exhaustively scores every per-field transform assignment
// (I, U, IU1, IU2 on fields smaller than M; identity is forced elsewhere)
// by exact strict-optimality percentage over all query classes, and
// returns the best together with the default planner's score. Cost grows
// as 4^(small fields) * 2^n convolutions — fine for the paper-scale n
// this library targets; use it to validate or beat the planner on a
// specific file system.
func SearchBestPlan(fs decluster.FileSystem) (PlanSearchResult, error) {
	n := fs.NumFields()
	var small []int
	for i, f := range fs.Sizes {
		if f < fs.M {
			small = append(small, i)
		}
	}
	kindsOf := func(assignment []field.Kind) []field.Kind {
		kinds := make([]field.Kind, n)
		for j, i := range small {
			kinds[i] = assignment[j]
		}
		return kinds
	}
	score := func(fx *decluster.FX) float64 {
		return percentOf(n, func(s []int) bool { return optimal.StrictForSubset(fx, s) })
	}

	res := PlanSearchResult{OptimalPct: -1}
	options := []field.Kind{field.I, field.U, field.IU1, field.IU2}
	assignment := make([]field.Kind, len(small))
	var rec func(j int) error
	rec = func(j int) error {
		if j == len(assignment) {
			fx, err := decluster.NewFX(fs, field.WithKinds(kindsOf(assignment)))
			if err != nil {
				return err
			}
			res.Evaluated++
			if pct := score(fx); pct > res.OptimalPct {
				res.OptimalPct = pct
				res.Kinds = kindsOf(assignment)
			}
			return nil
		}
		for _, k := range options {
			assignment[j] = k
			if err := rec(j + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return PlanSearchResult{}, err
	}

	planner, err := decluster.NewFX(fs)
	if err != nil {
		return PlanSearchResult{}, err
	}
	res.PlannerPct = score(planner)
	return res, nil
}

// ResponseTableExhaustive computes the same rows as ResponseTable by
// enumerating every concrete query — every unspecified subset and every
// assignment of specified values — instead of one convolution per subset.
// It therefore accepts arbitrary Allocators (e.g. the MSP table
// heuristic), whose load vectors are not translation invariant. Cost is
// O(C(n,k) * prod F_i) per row: small grids only.
func ResponseTableExhaustive(fs decluster.FileSystem, methods []decluster.Allocator, ks []int) []ResponseRow {
	n := fs.NumFields()
	rows := make([]ResponseRow, 0, len(ks))
	for _, k := range ks {
		row := ResponseRow{K: k, Avg: make([]float64, len(methods))}
		queries := 0
		optSum := 0
		sums := make([]int, len(methods))
		optimal.EachSubsetOfSize(n, k, func(unspec []int) {
			isUnspec := make([]bool, n)
			for _, i := range unspec {
				isUnspec[i] = true
			}
			r := convolve.QualifiedCount(fs, unspec)
			bound := (r + fs.M - 1) / fs.M
			spec := make([]int, n)
			var rec func(i int)
			rec = func(i int) {
				if i == n {
					queries++
					optSum += bound
					q := query.New(spec)
					for mi, m := range methods {
						max := 0
						for _, l := range query.Loads(m, q) {
							if l > max {
								max = l
							}
						}
						sums[mi] += max
					}
					return
				}
				if isUnspec[i] {
					spec[i] = query.Unspecified
					rec(i + 1)
					return
				}
				for v := 0; v < fs.Sizes[i]; v++ {
					spec[i] = v
					rec(i + 1)
				}
			}
			rec(0)
		})
		if queries == 0 {
			continue
		}
		for i := range methods {
			row.Avg[i] = float64(sums[i]) / float64(queries)
		}
		row.Optimal = float64(optSum) / float64(queries)
		rows = append(rows, row)
	}
	return rows
}

// MSweepPoint is one device-count position of an M-sweep: fixed field
// sizes, growing machine.
type MSweepPoint struct {
	M int
	// FXExactPct / ModuloExactPct are exact strict-optimality percentages
	// over all query classes.
	FXExactPct, ModuloExactPct float64
	// FXCertifiedPct is the §4.2 sufficient-condition percentage.
	FXCertifiedPct float64
	// SmallFields is the number of fields smaller than this M.
	SmallFields int
}

// MSweep quantifies the paper's closing caveat — "FX distribution does
// not guarantee strict optimal distribution when the number of parallel
// devices is quite large and all field sizes are much smaller" — by
// sweeping the device count over fixed field sizes and measuring exact
// and certified optimality percentages. ms entries must be powers of two.
func MSweep(sizes []int, ms []int, fam Family) ([]MSweepPoint, error) {
	out := make([]MSweepPoint, 0, len(ms))
	for _, m := range ms {
		fs, err := decluster.NewFileSystem(sizes, m)
		if err != nil {
			return nil, err
		}
		fx, err := decluster.NewFX(fs, field.WithFamily(fam))
		if err != nil {
			return nil, err
		}
		md := decluster.NewModulo(fs)
		n := fs.NumFields()
		out = append(out, MSweepPoint{
			M:           m,
			SmallFields: fs.SmallFieldCount(),
			FXExactPct: percentOf(n, func(s []int) bool {
				return optimal.StrictForSubset(fx, s)
			}),
			ModuloExactPct: percentOf(n, func(s []int) bool {
				return optimal.StrictForSubset(md, s)
			}),
			FXCertifiedPct: percentOf(n, func(s []int) bool {
				return optimal.FXSufficient(fx, s)
			}),
		})
	}
	return out, nil
}

// ExpectedLargest computes the workload-weighted expected largest
// response size of an allocator: sum over query classes of
// P(class) * largest load, with field i specified independently with
// probability probs[i]. This is the scalar that a method recommendation
// should minimise for a known workload.
func ExpectedLargest(a decluster.GroupAllocator, probs []float64) (float64, error) {
	fs := a.FileSystem()
	n := fs.NumFields()
	if len(probs) != n {
		return 0, fmt.Errorf("analysis: %d probabilities for %d fields", len(probs), n)
	}
	for i, p := range probs {
		if p < 0 || p > 1 {
			return 0, fmt.Errorf("analysis: probability %v of field %d outside [0,1]", p, i)
		}
	}
	total := 0.0
	optimal.EachSubset(n, func(s []int) {
		w := 1.0
		inS := make(map[int]bool, len(s))
		for _, i := range s {
			inS[i] = true
		}
		for i := 0; i < n; i++ {
			if inS[i] {
				w *= 1 - probs[i]
			} else {
				w *= probs[i]
			}
		}
		if w == 0 {
			return
		}
		total += w * float64(convolve.LargestLoad(a, s))
	})
	return total, nil
}

// Recommendation reports a workload-aware method choice.
type Recommendation struct {
	// Best is the index into the candidate slice of the method with the
	// lowest expected largest response size.
	Best int
	// Name is the winning method's name.
	Name string
	// Expected[i] is candidate i's workload-weighted expected largest
	// response size.
	Expected []float64
}

// Recommend scores candidate allocators by ExpectedLargest under the
// observed specification probabilities and returns the winner.
func Recommend(candidates []decluster.GroupAllocator, probs []float64) (Recommendation, error) {
	if len(candidates) == 0 {
		return Recommendation{}, fmt.Errorf("analysis: no candidates")
	}
	rec := Recommendation{Expected: make([]float64, len(candidates))}
	best := math.Inf(1)
	for i, a := range candidates {
		e, err := ExpectedLargest(a, probs)
		if err != nil {
			return Recommendation{}, fmt.Errorf("analysis: candidate %s: %w", a.Name(), err)
		}
		rec.Expected[i] = e
		if e < best {
			best = e
			rec.Best = i
			rec.Name = a.Name()
		}
	}
	return rec, nil
}

// PSweepPoint is one specification-probability position of a p-sweep.
type PSweepPoint struct {
	P float64
	// FXPct / ModuloPct are strict-optimality probabilities (0..1) under
	// the exact verdicts, weighted by the query distribution at p.
	FXPct, ModuloPct float64
}

// PSweep computes the probability that a random partial match query is
// distributed strict-optimally as a function of the per-field
// specification probability p — generalising Figures 1-4's implicit
// p = 1/2 to the whole workload spectrum. fam selects FX's transform
// family.
func PSweep(fs decluster.FileSystem, fam Family, ps []float64) ([]PSweepPoint, error) {
	fx, err := decluster.NewFX(fs, field.WithFamily(fam))
	if err != nil {
		return nil, err
	}
	md := decluster.NewModulo(fs)
	n := fs.NumFields()
	// The exact verdict per subset is p-independent; compute once.
	fxOpt := make(map[string]bool)
	mdOpt := make(map[string]bool)
	key := func(s []int) string {
		b := make([]byte, n)
		for _, i := range s {
			b[i] = 1
		}
		return string(b)
	}
	optimal.EachSubset(n, func(s []int) {
		k := key(s)
		fxOpt[k] = optimal.StrictForSubset(fx, s)
		mdOpt[k] = optimal.StrictForSubset(md, s)
	})
	out := make([]PSweepPoint, 0, len(ps))
	for _, p := range ps {
		fxP, err := WeightedOptimality(n, p, func(s []int) bool { return fxOpt[key(s)] })
		if err != nil {
			return nil, err
		}
		mdP, err := WeightedOptimality(n, p, func(s []int) bool { return mdOpt[key(s)] })
		if err != nil {
			return nil, err
		}
		out = append(out, PSweepPoint{P: p, FXPct: fxP, ModuloPct: mdP})
	}
	return out, nil
}

// GDMSearchResult reports a multiplier search.
type GDMSearchResult struct {
	Multipliers []int
	// AvgLargest is the k-averaged largest response size of the best set.
	AvgLargest float64
	Evaluated  int
}

// SearchGDM scores `trials` deterministic pseudo-random odd multiplier
// sets by average largest response size over all subsets of size k and
// returns the best — the "trial and error" the paper says GDM requires.
// The generator is a small linear congruential sequence so results are
// reproducible without a seed parameter.
func SearchGDM(fs decluster.FileSystem, k, trials, maxMultiplier int) (GDMSearchResult, error) {
	if trials <= 0 || maxMultiplier < 3 {
		return GDMSearchResult{}, fmt.Errorf("analysis: need trials > 0 and maxMultiplier >= 3")
	}
	res := GDMSearchResult{AvgLargest: math.Inf(1)}
	state := uint64(0x9E3779B97F4A7C15)
	next := func() int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state >> 33)
	}
	for t := 0; t < trials; t++ {
		mult := make([]int, fs.NumFields())
		for i := range mult {
			// Odd multipliers in [1, maxMultiplier].
			mult[i] = 2*(next()%((maxMultiplier+1)/2)) + 1
		}
		g, err := decluster.NewGDM(fs, mult)
		if err != nil {
			return GDMSearchResult{}, err
		}
		rows := ResponseTable(fs, []decluster.GroupAllocator{g}, []int{k})
		res.Evaluated++
		if avg := rows[0].Avg[0]; avg < res.AvgLargest {
			res.AvgLargest = avg
			res.Multipliers = mult
		}
	}
	return res, nil
}
