package analysis

import (
	"fmt"

	"fxdist/internal/decluster"
	"fxdist/internal/field"
)

// Family re-exports field.Family for curve construction.
type Family = field.Family

// TableSpec describes one of the paper's largest-response-size tables
// (Tables 7-9): the file system, the methods in column order, and the row
// range.
type TableSpec struct {
	Name    string
	Caption string
	FS      decluster.FileSystem
	Methods []decluster.GroupAllocator
	Ks      []int
}

// newCurveFX builds the FX allocator used by the paper's figures: I, U and
// the family transform cycled over the fields smaller than M.
func newCurveFX(fs decluster.FileSystem, fam Family) *decluster.FX {
	return decluster.MustFX(fs,
		field.WithStrategy(field.RoundRobin), field.WithFamily(fam))
}

// paperMethods assembles the Modulo, GDM1-3 and FX columns of Tables 7-9.
func paperMethods(fs decluster.FileSystem, fam Family) []decluster.GroupAllocator {
	return []decluster.GroupAllocator{
		decluster.NewModulo(fs),
		decluster.MustGDM(fs, decluster.GDM1Multipliers),
		decluster.MustGDM(fs, decluster.GDM2Multipliers),
		decluster.MustGDM(fs, decluster.GDM3Multipliers),
		newCurveFX(fs, fam),
	}
}

// Table7 reproduces the paper's Table 7: M = 32, six fields of size 8,
// FX with I, U, IU1 cycled (fields 1,4 -> I; 2,5 -> U; 3,6 -> IU1).
func Table7() TableSpec {
	fs := decluster.MustFileSystem([]int{8, 8, 8, 8, 8, 8}, 32)
	return TableSpec{
		Name:    "Table 7",
		Caption: "M = 32, F1 = ... = F6 = 8",
		FS:      fs,
		Methods: paperMethods(fs, field.FamilyIU1),
		Ks:      []int{2, 3, 4, 5, 6},
	}
}

// Table8 reproduces the paper's Table 8: M = 64, six fields of size 8.
func Table8() TableSpec {
	fs := decluster.MustFileSystem([]int{8, 8, 8, 8, 8, 8}, 64)
	return TableSpec{
		Name:    "Table 8",
		Caption: "M = 64, F1 = ... = F6 = 8",
		FS:      fs,
		Methods: paperMethods(fs, field.FamilyIU1),
		Ks:      []int{2, 3, 4, 5, 6},
	}
}

// Table9 reproduces the paper's Table 9: M = 512, F1-3 = 8, F4-6 = 16,
// FX with IU2 instead of IU1.
func Table9() TableSpec {
	fs := decluster.MustFileSystem([]int{8, 8, 8, 16, 16, 16}, 512)
	return TableSpec{
		Name:    "Table 9",
		Caption: "M = 512, F1=F2=F3=8 and F4=F5=F6=16",
		FS:      fs,
		Methods: paperMethods(fs, field.FamilyIU2),
		Ks:      []int{2, 3, 4, 5, 6},
	}
}

// Rows computes the table's rows.
func (ts TableSpec) Rows() []ResponseRow {
	return ResponseTable(ts.FS, ts.Methods, ts.Ks)
}

// Header returns the column names in order.
func (ts TableSpec) Header() []string {
	h := make([]string, 0, len(ts.Methods)+2)
	h = append(h, "k")
	for _, m := range ts.Methods {
		h = append(h, m.Name())
	}
	h = append(h, "Optimal")
	return h
}

// FigureSpec describes one of the paper's probability-of-optimality
// figures (Figures 1-4).
type FigureSpec struct {
	Name    string
	Caption string
	N       int
	M       int
	SmallF  int
	LargeF  int
	Family  Family
}

// Figure1 reproduces Figure 1: n = 6, any two fields satisfy FpFq >= M
// (small fields of size 8 against M = 32), FX with I, U, IU1.
func Figure1() FigureSpec {
	return FigureSpec{
		Name:    "Figure 1",
		Caption: "n = 6, FpFq >= M for all pairs (M = 32, small F = 8), FX uses I/U/IU1",
		N:       6, M: 32, SmallF: 8, LargeF: 32,
		Family: field.FamilyIU1,
	}
}

// Figure2 reproduces Figure 2: as Figure 1 with n = 10.
func Figure2() FigureSpec {
	f := Figure1()
	f.Name = "Figure 2"
	f.Caption = "n = 10, FpFq >= M for all pairs (M = 32, small F = 8), FX uses I/U/IU1"
	f.N = 10
	return f
}

// Figure3 reproduces Figure 3: n = 6, every pair of small fields has
// FpFq < M but every triple has FpFqFr >= M (small fields of size 8
// against M = 512), FX with I, U, IU2.
func Figure3() FigureSpec {
	return FigureSpec{
		Name:    "Figure 3",
		Caption: "n = 6, FpFq < M but FpFqFr >= M (M = 512, small F = 8), FX uses I/U/IU2",
		N:       6, M: 512, SmallF: 8, LargeF: 512,
		Family: field.FamilyIU2,
	}
}

// Figure4 reproduces Figure 4: as Figure 3 with n = 10.
func Figure4() FigureSpec {
	f := Figure3()
	f.Name = "Figure 4"
	f.Caption = "n = 10, FpFq < M but FpFqFr >= M (M = 512, small F = 8), FX uses I/U/IU2"
	f.N = 10
	return f
}

// Points computes the figure's series; exact additionally computes the
// exact percentages by convolution.
func (fsp FigureSpec) Points(exact bool) []OptimalityPoint {
	return OptimalityCurve(fsp.N, fsp.M, fsp.SmallF, fsp.LargeF, fsp.Family, exact)
}

// FormatRow renders a response row to the paper's one-decimal style.
func FormatRow(r ResponseRow) string {
	s := fmt.Sprintf("%d", r.K)
	for _, v := range r.Avg {
		s += fmt.Sprintf(" %10.1f", v)
	}
	s += fmt.Sprintf(" %10.1f", r.Optimal)
	return s
}
