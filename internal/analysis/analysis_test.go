package analysis

import (
	"math"
	"testing"
	"time"

	"fxdist/internal/decluster"
	"fxdist/internal/field"
)

func approxRow(t *testing.T, got ResponseRow, want []float64, optimal float64, name string) {
	t.Helper()
	if len(got.Avg) != len(want) {
		t.Fatalf("%s k=%d: %d methods, want %d", name, got.K, len(got.Avg), len(want))
	}
	for i, w := range want {
		if math.Abs(got.Avg[i]-w) > 0.05 {
			t.Errorf("%s k=%d method %d: %.2f, want %.1f", name, got.K, i, got.Avg[i], w)
		}
	}
	if math.Abs(got.Optimal-optimal) > 0.05 {
		t.Errorf("%s k=%d optimal: %.2f, want %.1f", name, got.K, got.Optimal, optimal)
	}
}

// Table 7 (M=32, F=8^6). The Modulo, GDM1, GDM3 and Optimal columns match
// the paper's printed values exactly; FX matches except the paper's k=3
// row, where the printed 18.9 contradicts the paper's own Theorem 3 /
// Corollary 6.1 (every 3-subset contains an I+U, I+IU1 or U+IU1 pair with
// F_p*F_q = 64 >= M = 32, so FX is strict optimal and the average must be
// exactly 16.0). See EXPERIMENTS.md.
func TestTable7MatchesPaper(t *testing.T) {
	rows := Table7().Rows()
	// columns: Modulo, GDM1, GDM2, GDM3, FX
	approxRow(t, rows[0], []float64{8.0, 3.3, 3.5, 3.7, 3.2}, 2.0, "T7")
	approxRow(t, rows[1], []float64{48.0, 18.1, 18.9, 18.9, 16.0}, 16.0, "T7")
	approxRow(t, rows[2], []float64{344.0, 130.5, 132.7, 132.5, 128.0}, 128.0, "T7")
	approxRow(t, rows[3], []float64{2460.0, 1026.3, 1029.7, 1031.7, 1024.0}, 1024.0, "T7")
	approxRow(t, rows[4], []float64{18152.0, 8196.0, 8196.0, 8202.0, 8192.0}, 8192.0, "T7")
}

// Table 8 (M=64, F=8^6). Modulo, GDM1, GDM2, FX and Optimal columns match
// the paper exactly; GDM3's k=2 entry computes to 2.3 against the paper's
// printed 2.4.
func TestTable8MatchesPaper(t *testing.T) {
	rows := Table8().Rows()
	approxRow(t, rows[0], []float64{8.0, 2.1, 2.2, 2.3, 2.4}, 1.0, "T8")
	approxRow(t, rows[1], []float64{48.0, 10.2, 10.3, 10.6, 8.0}, 8.0, "T8")
	approxRow(t, rows[2], []float64{344.0, 68.3, 68.1, 67.5, 64.0}, 64.0, "T8")
	approxRow(t, rows[3], []float64{2460.0, 520.5, 517.0, 517.3, 512.0}, 512.0, "T8")
	approxRow(t, rows[4], []float64{18152.0, 4114.0, 4102.0, 4102.0, 4096.0}, 4096.0, "T8")
}

// Table 9 (M=512, F=(8,8,8,16,16,16), FX with IU2). Modulo and GDM1 match
// the paper exactly; FX k>=4 matches exactly (37.3, 384.0, 4096.0). For
// k=2 and k=3 we compute 1.9 / 5.2 against the paper's printed 2.3 / 5.6 —
// our values are *better* and consistent with Theorems 7-9 (the I+IU2 and
// U+IU2 pairs are perfect optimal), see EXPERIMENTS.md.
func TestTable9MatchesPaper(t *testing.T) {
	rows := Table9().Rows()
	approxRow(t, rows[0], []float64{9.6, 1.7, 1.3, 1.3, 1.9}, 1.0, "T9")
	approxRow(t, rows[1], []float64{91.2, 10.0, 5.5, 5.5, 5.2}, 3.1, "T9")
	approxRow(t, rows[2], []float64{911.2, 90.3, 40.4, 42.1, 37.3}, 35.2, "T9")
	approxRow(t, rows[3], []float64{9076.0, 909.5, 397.3, 408.7, 384.0}, 384.0, "T9")
	approxRow(t, rows[4], []float64{90404.0, 9176.0, 4144.0, 4158.0, 4096.0}, 4096.0, "T9")
}

// FX must dominate or match every other method for k >= 3 in all three
// tables (the paper's headline comparison), and sit at the optimum for
// every k >= 3.
func TestFXDominatesForLargeK(t *testing.T) {
	for _, ts := range []TableSpec{Table7(), Table8(), Table9()} {
		rows := ts.Rows()
		fxCol := len(rows[0].Avg) - 1
		for _, r := range rows {
			if r.K < 3 {
				continue
			}
			for i := 0; i < fxCol; i++ {
				if r.Avg[fxCol] > r.Avg[i]+1e-9 {
					t.Errorf("%s k=%d: FX %.2f worse than method %d (%.2f)",
						ts.Name, r.K, r.Avg[fxCol], i, r.Avg[i])
				}
			}
		}
	}
}

// No method can beat the Optimal column.
func TestNoMethodBeatsOptimal(t *testing.T) {
	for _, ts := range []TableSpec{Table7(), Table8(), Table9()} {
		for _, r := range ts.Rows() {
			for i, v := range r.Avg {
				if v < r.Optimal-1e-9 {
					t.Errorf("%s k=%d method %d: %.3f below optimal %.3f",
						ts.Name, r.K, i, v, r.Optimal)
				}
			}
		}
	}
}

// ResponseTimeTable is the §5.2.1 composite: bucket counts times the
// device model, ordering preserved.
func TestResponseTimeTable(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 16)
	fx := decluster.MustFX(fs, field.WithKinds([]field.Kind{field.I, field.U}))
	md := decluster.NewModulo(fs)
	rows := ResponseTimeTable(fs, []decluster.GroupAllocator{md, fx}, []int{2},
		time.Millisecond, 28*time.Millisecond)
	if len(rows) != 1 || rows[0].K != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	// Modulo avg 4 buckets -> 1ms + 112ms; FX avg 1 -> 1ms + 28ms.
	if rows[0].Avg[0] != 113*time.Millisecond {
		t.Errorf("Modulo time = %v", rows[0].Avg[0])
	}
	if rows[0].Avg[1] != 29*time.Millisecond {
		t.Errorf("FX time = %v", rows[0].Avg[1])
	}
	if rows[0].Optimal != 29*time.Millisecond {
		t.Errorf("Optimal time = %v", rows[0].Optimal)
	}
}

func TestResponseTablePanicsOnMismatchedMethods(t *testing.T) {
	fsA := decluster.MustFileSystem([]int{8, 8}, 4)
	fsB := decluster.MustFileSystem([]int{8, 8}, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched method file systems accepted")
		}
	}()
	ResponseTable(fsA, []decluster.GroupAllocator{decluster.NewModulo(fsB)}, []int{1})
}

func TestTableSpecHeader(t *testing.T) {
	h := Table7().Header()
	if len(h) != 7 || h[0] != "k" || h[6] != "Optimal" {
		t.Errorf("header = %v", h)
	}
}

// Figures 1-4 shapes. The exact printed percentages are unreadable in the
// scanned figures, so we assert the properties the paper's §5.1 narrative
// claims: FD >= MD everywhere; MD collapses as small fields are added;
// FD stays at 100%% while the optimality conditions cover all subsets and
// degrades gently after; and the sufficient-condition series never
// exceeds the exact series.
func TestFigureShapes(t *testing.T) {
	for _, spec := range []FigureSpec{Figure1(), Figure3()} {
		pts := spec.Points(true)
		if len(pts) != spec.N+1 {
			t.Fatalf("%s: %d points, want %d", spec.Name, len(pts), spec.N+1)
		}
		for i, p := range pts {
			if p.FXPct < p.ModuloPct-1e-9 {
				t.Errorf("%s x=%d: FD %.1f%% < MD %.1f%%", spec.Name, p.SmallFields, p.FXPct, p.ModuloPct)
			}
			if p.FXPct > p.FXExactPct+1e-9 {
				t.Errorf("%s x=%d: sufficient %.1f%% exceeds exact %.1f%%", spec.Name, p.SmallFields, p.FXPct, p.FXExactPct)
			}
			if p.ModuloPct > p.ModuloExactPct+1e-9 {
				t.Errorf("%s x=%d: MD sufficient %.1f%% exceeds exact %.1f%%", spec.Name, p.SmallFields, p.ModuloPct, p.ModuloExactPct)
			}
			if i > 0 && p.ModuloPct > pts[i-1].ModuloPct+1e-9 {
				t.Errorf("%s: MD percentage increased at x=%d", spec.Name, p.SmallFields)
			}
		}
		if pts[0].ModuloPct != 100 || pts[0].FXPct != 100 {
			t.Errorf("%s: x=0 should be 100%% for both, got MD=%.1f FD=%.1f",
				spec.Name, pts[0].ModuloPct, pts[0].FXPct)
		}
		last := pts[spec.N]
		if last.FXPct <= last.ModuloPct {
			t.Errorf("%s: at x=n FD (%.1f%%) should strictly beat MD (%.1f%%)",
				spec.Name, last.FXPct, last.ModuloPct)
		}
	}
}

// Golden series for Figure 1: the regenerated percentages are locked so
// any regression in the predicates or planner shows up as a diff here.
func TestFigure1GoldenSeries(t *testing.T) {
	pts := Figure1().Points(false)
	wantMD := []float64{100, 100, 98.4375, 93.75, 82.8125, 59.375, 10.9375}
	wantFD := []float64{100, 100, 100, 100, 98.4375, 96.875, 95.3125}
	for i, p := range pts {
		if math.Abs(p.ModuloPct-wantMD[i]) > 1e-9 {
			t.Errorf("x=%d MD=%.4f want %.4f", i, p.ModuloPct, wantMD[i])
		}
		if math.Abs(p.FXPct-wantFD[i]) > 1e-9 {
			t.Errorf("x=%d FD=%.4f want %.4f", i, p.FXPct, wantFD[i])
		}
	}
}

// Golden series for Figure 3 (IU2 family, M=512).
func TestFigure3GoldenSeries(t *testing.T) {
	pts := Figure3().Points(false)
	wantFD := []float64{100, 100, 100, 100, 95.3125, 85.9375, 71.875}
	for i, p := range pts {
		if math.Abs(p.FXPct-wantFD[i]) > 1e-9 {
			t.Errorf("x=%d FD=%.4f want %.4f", i, p.FXPct, wantFD[i])
		}
	}
}

// Figure 1 regime: with up to 3 small fields FX keeps 100% strict
// optimality (Theorem 9 territory via pairwise products >= M).
func TestFigure1FXStaysPerfectEarly(t *testing.T) {
	pts := Figure1().Points(false)
	for _, p := range pts[:4] {
		if p.FXPct != 100 {
			t.Errorf("x=%d: FD = %.1f%%, want 100", p.SmallFields, p.FXPct)
		}
	}
}

// In the Figure 1 regime every pair of small fields has F_p*F_q >= M, so
// the only uncertified subsets are those whose small unspecified fields
// all share a transform method; the exact series confirms genuine
// failures exist at x = n (FX is not perfect optimal there).
func TestFigure1FXNotPerfectAtFullSmall(t *testing.T) {
	pts := Figure1().Points(true)
	last := pts[len(pts)-1]
	if last.FXExactPct == 100 {
		t.Error("FX unexpectedly perfect optimal with 6 small fields")
	}
}

func TestOptimalityCurveValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { OptimalityCurve(3, 16, 16, 32, field.FamilyIU1, false) }, // smallF >= M
		func() { OptimalityCurve(3, 16, 8, 8, field.FamilyIU1, false) },   // largeF < M
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid curve parameters accepted")
				}
			}()
			bad()
		}()
	}
}

func TestFormatRow(t *testing.T) {
	r := ResponseRow{K: 2, Avg: []float64{8.0, 3.25}, Optimal: 2.0}
	got := FormatRow(r)
	want := "2        8.0        3.2        2.0"
	if got != want {
		t.Errorf("FormatRow = %q, want %q", got, want)
	}
}

// Figure 2 and 4 (n=10) are bench-tier; smoke-test the sufficient-only
// path to keep tests fast.
func TestFigures2And4Smoke(t *testing.T) {
	for _, spec := range []FigureSpec{Figure2(), Figure4()} {
		pts := spec.Points(false)
		if len(pts) != 11 {
			t.Fatalf("%s: %d points", spec.Name, len(pts))
		}
		if pts[10].FXPct <= pts[10].ModuloPct {
			t.Errorf("%s: FD should beat MD at x=10", spec.Name)
		}
	}
}
