// Package analysis regenerates the paper's evaluation artifacts: the
// average largest-response-size tables (Tables 7-9) and the
// probability-of-strict-optimality figures (Figures 1-4).
//
// Both rest on the translation-invariance theorem (see package convolve):
// for group allocators the load multiset of a query depends only on its
// set of unspecified fields, so "averaging over all possible partial match
// queries with k unspecified fields" — the paper's procedure — reduces to
// averaging one exact profile per k-element field subset. The paper's
// printed numbers confirm this reading: e.g. Table 9's Modulo entry for
// k=2 is (3*8 + 9*8 + 3*16)/15 = 9.6, the unweighted subset average.
package analysis

import (
	"fmt"
	"time"

	"fxdist/internal/bitsx"
	"fxdist/internal/convolve"
	"fxdist/internal/decluster"
	"fxdist/internal/optimal"
)

// ResponseRow is one row of a largest-response-size table: the average
// largest response size per method for queries with K unspecified fields,
// plus the information-theoretic optimum avg(ceil(|R(q)|/M)).
type ResponseRow struct {
	K       int
	Avg     []float64 // one entry per method, in spec order
	Optimal float64
}

// ResponseTable computes rows for each k in ks, averaging the largest
// response size over all k-element unspecified field subsets for every
// method. All methods must share the same file system.
func ResponseTable(fs decluster.FileSystem, methods []decluster.GroupAllocator, ks []int) []ResponseRow {
	for _, m := range methods {
		mfs := m.FileSystem()
		if mfs.M != fs.M || mfs.NumFields() != fs.NumFields() {
			panic(fmt.Sprintf("analysis: method %s built for a different file system", m.Name()))
		}
	}
	rows := make([]ResponseRow, 0, len(ks))
	for _, k := range ks {
		row := ResponseRow{K: k, Avg: make([]float64, len(methods))}
		subsets := 0
		optSum := 0
		sums := make([]int, len(methods))
		optimal.EachSubsetOfSize(fs.NumFields(), k, func(s []int) {
			subsets++
			r := convolve.QualifiedCount(fs, s)
			optSum += bitsx.CeilDiv(r, fs.M)
			for i, m := range methods {
				sums[i] += convolve.LargestLoad(m, s)
			}
		})
		if subsets == 0 {
			continue
		}
		for i := range methods {
			row.Avg[i] = float64(sums[i]) / float64(subsets)
		}
		row.Optimal = float64(optSum) / float64(subsets)
		rows = append(rows, row)
	}
	return rows
}

// ResponseTimeRow is a ResponseRow expressed in simulated time under a
// device service model: the §5.2.1 composite of Tables 7-9 ("response
// time is determined by the device which has the largest number of
// qualified buckets") with the disk or main-memory cost model applied.
type ResponseTimeRow struct {
	K int
	// Avg[i] is method i's average response time; Optimal the bound.
	Avg     []time.Duration
	Optimal time.Duration
}

// ResponseTimeTable converts ResponseTable rows to simulated response
// times: perQuery + largestResponseSize * perBucket.
func ResponseTimeTable(fs decluster.FileSystem, methods []decluster.GroupAllocator, ks []int,
	perQuery, perBucket time.Duration) []ResponseTimeRow {
	rows := ResponseTable(fs, methods, ks)
	out := make([]ResponseTimeRow, len(rows))
	toTime := func(buckets float64) time.Duration {
		return perQuery + time.Duration(buckets*float64(perBucket))
	}
	for r, row := range rows {
		tr := ResponseTimeRow{K: row.K, Avg: make([]time.Duration, len(row.Avg))}
		for i, v := range row.Avg {
			tr.Avg[i] = toTime(v)
		}
		tr.Optimal = toTime(row.Optimal)
		out[r] = tr
	}
	return out
}

// OptimalityPoint is one x-position of a Figure 1-4 series: the percentage
// of partial match queries (equivalently, unspecified field subsets) that
// each method distributes strict-optimally, for a file system with
// SmallFields fields smaller than M.
type OptimalityPoint struct {
	SmallFields int
	// ModuloPct is the Modulo percentage from the [DuSo82] sufficient
	// condition (the paper's MD series).
	ModuloPct float64
	// FXPct is the FX percentage from the §4.2 sufficient conditions (the
	// paper's FD series).
	FXPct float64
	// ModuloExactPct and FXExactPct are the exact percentages computed by
	// convolution — an extension: the paper plots only the
	// sufficient-condition series.
	ModuloExactPct float64
	FXExactPct     float64
}

// percentOf counts predicate hits over all 2^n subsets.
func percentOf(n int, pred func(s []int) bool) float64 {
	hits, total := 0, 0
	optimal.EachSubset(n, func(s []int) {
		total++
		if pred(s) {
			hits++
		}
	})
	return 100 * float64(hits) / float64(total)
}

// OptimalityCurve computes one Figure 1-4 series. For each x = 0..n it
// builds a file system with x fields of size smallF (< M) and n-x fields
// of size largeF (>= M), plans FX transformations round-robin in the given
// family (the paper's I, U, IU1/IU2 cycling), and reports the percentage
// of subsets certified optimal by each method's sufficient condition.
// When exact is true it additionally computes the exact percentages, which
// is feasible for the paper's parameter ranges but was beyond 1988 budgets.
func OptimalityCurve(n, m, smallF, largeF int, fam Family, exact bool) []OptimalityPoint {
	if smallF >= m {
		panic(fmt.Sprintf("analysis: smallF=%d must be < M=%d", smallF, m))
	}
	if largeF < m {
		panic(fmt.Sprintf("analysis: largeF=%d must be >= M=%d", largeF, m))
	}
	points := make([]OptimalityPoint, 0, n+1)
	for x := 0; x <= n; x++ {
		sizes := make([]int, n)
		for i := range sizes {
			if i < x {
				sizes[i] = smallF
			} else {
				sizes[i] = largeF
			}
		}
		fs := decluster.MustFileSystem(sizes, m)
		fx := newCurveFX(fs, fam)
		md := decluster.NewModulo(fs)
		p := OptimalityPoint{
			SmallFields: x,
			ModuloPct:   percentOf(n, func(s []int) bool { return optimal.ModuloSufficient(fs, s) }),
			FXPct:       percentOf(n, func(s []int) bool { return optimal.FXSufficient(fx, s) }),
		}
		if exact {
			p.ModuloExactPct = percentOf(n, func(s []int) bool { return optimal.StrictForSubset(md, s) })
			p.FXExactPct = percentOf(n, func(s []int) bool { return optimal.StrictForSubset(fx, s) })
		}
		points = append(points, p)
	}
	return points
}
