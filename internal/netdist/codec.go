package netdist

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math/bits"

	"fxdist/internal/engine"
	"fxdist/internal/mempool"
	"fxdist/internal/mkhash"
)

// Binary wire protocol. A connection that opens with the 4-byte magic
// speaks length-prefixed binary frames; anything else is the legacy gob
// stream, so old coordinators and old servers interoperate with new
// ones in both directions (see handshake / Server.handle).
//
// Frame layout, both directions, after the handshake:
//
//	[4] magic "FXB" + version 1   (handshake only, once per connection)
//	[4] frame length N, little-endian uint32
//	[N] payload
//
// Payloads use uvarints for counts/ids and zigzag varints for signed
// ints; strings are uvarint length + raw bytes. Request payload:
//
//	flags(1: bit0=Ping bit1=Stats bit2=rescale extension) id traceID
//	parentSpan zigzag(asDevice)
//	uvarint(len(Spec)) zigzag(Spec...)
//	uvarint(numFields) then per field: 1 byte specified, if set
//	uvarint(len)+bytes of the value
//	[bit2 only] uvarint(Epoch) uvarint(Control) zigzag(Bucket)
//	uvarint(len)+bytes of SpecJSON
//	uvarint(numRecords) then records as in the response payload
//
// The rescale extension (Epoch, Control, Bucket, SpecJSON, Payload) is
// gated by flags bit2 and appended after the value filters, so frames
// from pre-rescale peers — which never set the bit — decode unchanged,
// and pre-rescale decoders never see the extension (a rescale requires
// every server at this version; Prepare fails cleanly on older ones).
//
// Response payload:
//
//	id string(Err) zigzag(Buckets) zigzag(Scanned)
//	zigzag(RetryAfterMillis)
//	uvarint(numRecords) then per record: uvarint(numFields) and per
//	field uvarint(len)+bytes
//	[optional trailing] uvarint(len)+bytes of StatsJSON
//
// The StatsJSON field is trailing-optional for wire compatibility:
// encoders append it only when non-empty, and decoders read it only
// when payload bytes remain after the records, so frames from peers on
// either side of the addition round-trip cleanly (old decoders never
// reach the trailing bytes of a frame they've fully parsed; gob
// tolerates added struct fields in both directions by design).
//
// Encoders size the payload exactly, fill one pooled frame, and write
// it with a single Write; decoders read the whole frame into a pooled
// slab and slice records out of it, copying field bytes into a
// RecordBuilder arena so the frame recycles immediately.

var wireMagic = [4]byte{'F', 'X', 'B', 1}

// maxFrame bounds one message; a length prefix beyond it is treated as
// stream corruption, not an allocation request.
const maxFrame = 64 << 20

const frameLenSize = 4

// uvarintLen returns the encoded size of v without encoding it.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// zigzag maps signed ints onto uvarints (small magnitudes stay small).
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func stringSize(s string) int { return uvarintLen(uint64(len(s))) + len(s) }

// frameReader pulls uvarints, zigzags and byte views out of one decoded
// frame. Views alias the frame slab and must be copied before the frame
// is recycled.
type frameReader struct {
	buf []byte
	off int
}

var errFrameCorrupt = fmt.Errorf("netdist: corrupt binary frame")

func (f *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(f.buf[f.off:])
	if n <= 0 {
		return 0, errFrameCorrupt
	}
	f.off += n
	return v, nil
}

func (f *frameReader) zigzag() (int64, error) {
	u, err := f.uvarint()
	return unzigzag(u), err
}

func (f *frameReader) bytes() ([]byte, error) {
	n, err := f.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(f.buf)-f.off) {
		return nil, errFrameCorrupt
	}
	b := f.buf[f.off : f.off+int(n)]
	f.off += int(n)
	return b, nil
}

func (f *frameReader) byte() (byte, error) {
	if f.off >= len(f.buf) {
		return 0, errFrameCorrupt
	}
	b := f.buf[f.off]
	f.off++
	return b, nil
}

// hasRescaleExt reports whether the request needs the flags-bit2
// trailing extension on the wire.
func (req *Request) hasRescaleExt() bool {
	return req.Epoch != 0 || req.Control != 0
}

// recordsSize returns the wire size of a record list (shared by the
// response body and the request's install payload).
func recordsSize(recs []mkhash.Record) int {
	n := uvarintLen(uint64(len(recs)))
	for _, r := range recs {
		n += uvarintLen(uint64(len(r)))
		for _, field := range r {
			n += stringSize(field)
		}
	}
	return n
}

func appendRecords(b []byte, recs []mkhash.Record) []byte {
	b = appendUvarint(b, uint64(len(recs)))
	for _, r := range recs {
		b = appendUvarint(b, uint64(len(r)))
		for _, field := range r {
			b = appendString(b, field)
		}
	}
	return b
}

// decodeRecordsPlain reads a record list with plain (GC-owned) copies —
// the control path; the query hot path uses the pooled decode in
// decodeResponse instead.
func decodeRecordsPlain(f *frameReader) ([]mkhash.Record, error) {
	nr, err := f.uvarint()
	if err != nil {
		return nil, err
	}
	if nr > uint64(len(f.buf)-f.off) {
		return nil, errFrameCorrupt
	}
	if nr == 0 {
		return nil, nil
	}
	recs := make([]mkhash.Record, 0, nr)
	for i := uint64(0); i < nr; i++ {
		nf, err := f.uvarint()
		if err != nil {
			return nil, err
		}
		if nf > uint64(len(f.buf)-f.off) {
			return nil, errFrameCorrupt
		}
		rec := make(mkhash.Record, nf)
		for j := range rec {
			v, err := f.bytes()
			if err != nil {
				return nil, err
			}
			rec[j] = string(v)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// requestSize returns the exact payload size appendRequest will emit.
func requestSize(req *Request) int {
	n := 1 + uvarintLen(req.ID) + uvarintLen(req.TraceID) + uvarintLen(req.ParentSpan) +
		uvarintLen(zigzag(int64(req.AsDevice))) + uvarintLen(uint64(len(req.Spec)))
	for _, v := range req.Spec {
		n += uvarintLen(zigzag(int64(v)))
	}
	n += uvarintLen(uint64(len(req.Specified)))
	for i, sp := range req.Specified {
		n++
		if sp {
			n += stringSize(req.Values[i])
		}
	}
	if req.hasRescaleExt() {
		n += uvarintLen(uint64(req.Epoch)) + uvarintLen(uint64(req.Control)) +
			uvarintLen(zigzag(int64(req.Bucket))) +
			uvarintLen(uint64(len(req.SpecJSON))) + len(req.SpecJSON) +
			recordsSize(req.Payload)
	}
	return n
}

func appendRequest(b []byte, req *Request) []byte {
	var flags byte
	if req.Ping {
		flags |= 1
	}
	if req.Stats {
		flags |= 2
	}
	if req.hasRescaleExt() {
		flags |= 4
	}
	b = append(b, flags)
	b = appendUvarint(b, req.ID)
	b = appendUvarint(b, req.TraceID)
	b = appendUvarint(b, req.ParentSpan)
	b = appendUvarint(b, zigzag(int64(req.AsDevice)))
	b = appendUvarint(b, uint64(len(req.Spec)))
	for _, v := range req.Spec {
		b = appendUvarint(b, zigzag(int64(v)))
	}
	b = appendUvarint(b, uint64(len(req.Specified)))
	for i, sp := range req.Specified {
		if sp {
			b = append(b, 1)
			b = appendString(b, req.Values[i])
		} else {
			b = append(b, 0)
		}
	}
	if req.hasRescaleExt() {
		b = appendUvarint(b, uint64(req.Epoch))
		b = appendUvarint(b, uint64(req.Control))
		b = appendUvarint(b, zigzag(int64(req.Bucket)))
		b = appendUvarint(b, uint64(len(req.SpecJSON)))
		b = append(b, req.SpecJSON...)
		b = appendRecords(b, req.Payload)
	}
	return b
}

// decodeRequest parses one request payload. Values are copied out of
// the frame (requests are small; the server holds them past the frame).
func decodeRequest(buf []byte, req *Request) error {
	f := frameReader{buf: buf}
	flags, err := f.byte()
	if err != nil {
		return err
	}
	req.Ping = flags&1 != 0
	req.Stats = flags&2 != 0
	req.Epoch, req.Control, req.Bucket = 0, 0, 0
	req.SpecJSON, req.Payload = nil, nil
	if req.ID, err = f.uvarint(); err != nil {
		return err
	}
	if req.TraceID, err = f.uvarint(); err != nil {
		return err
	}
	if req.ParentSpan, err = f.uvarint(); err != nil {
		return err
	}
	as, err := f.zigzag()
	if err != nil {
		return err
	}
	req.AsDevice = int(as)
	ns, err := f.uvarint()
	if err != nil {
		return err
	}
	if ns > uint64(len(buf)) {
		return errFrameCorrupt
	}
	req.Spec = make([]int, ns)
	for i := range req.Spec {
		v, err := f.zigzag()
		if err != nil {
			return err
		}
		req.Spec[i] = int(v)
	}
	nf, err := f.uvarint()
	if err != nil {
		return err
	}
	if nf > uint64(len(buf)) {
		return errFrameCorrupt
	}
	req.Specified = make([]bool, nf)
	req.Values = make([]string, nf)
	for i := range req.Specified {
		sp, err := f.byte()
		if err != nil {
			return err
		}
		if sp > 1 {
			return errFrameCorrupt
		}
		if sp == 1 {
			req.Specified[i] = true
			v, err := f.bytes()
			if err != nil {
				return err
			}
			req.Values[i] = string(v)
		}
	}
	if flags&4 != 0 {
		ep, err := f.uvarint()
		if err != nil {
			return err
		}
		req.Epoch = int(ep)
		op, err := f.uvarint()
		if err != nil {
			return err
		}
		req.Control = int(op)
		bk, err := f.zigzag()
		if err != nil {
			return err
		}
		req.Bucket = int(bk)
		sj, err := f.bytes()
		if err != nil {
			return err
		}
		if len(sj) > 0 {
			req.SpecJSON = append([]byte(nil), sj...)
		}
		if req.Payload, err = decodeRecordsPlain(&f); err != nil {
			return err
		}
	}
	return nil
}

// responseSize returns the exact payload size appendResponse will emit.
func responseSize(resp *Response) int {
	n := uvarintLen(resp.ID) + stringSize(resp.Err) +
		uvarintLen(zigzag(int64(resp.Buckets))) + uvarintLen(zigzag(int64(resp.Scanned))) +
		uvarintLen(zigzag(resp.RetryAfterMillis)) + uvarintLen(uint64(len(resp.Records)))
	for _, r := range resp.Records {
		n += uvarintLen(uint64(len(r)))
		for _, field := range r {
			n += stringSize(field)
		}
	}
	if len(resp.StatsJSON) > 0 {
		n += uvarintLen(uint64(len(resp.StatsJSON))) + len(resp.StatsJSON)
	}
	return n
}

func appendResponse(b []byte, resp *Response) []byte {
	b = appendUvarint(b, resp.ID)
	b = appendString(b, resp.Err)
	b = appendUvarint(b, zigzag(int64(resp.Buckets)))
	b = appendUvarint(b, zigzag(int64(resp.Scanned)))
	b = appendUvarint(b, zigzag(resp.RetryAfterMillis))
	b = appendUvarint(b, uint64(len(resp.Records)))
	for _, r := range resp.Records {
		b = appendUvarint(b, uint64(len(r)))
		for _, field := range r {
			b = appendString(b, field)
		}
	}
	if len(resp.StatsJSON) > 0 {
		b = appendUvarint(b, uint64(len(resp.StatsJSON)))
		b = append(b, resp.StatsJSON...)
	}
	return b
}

// decodeTrailingStats reads the trailing-optional StatsJSON field: bytes
// remaining after the records are the stats blob, copied out because the
// frame slab recycles; an exhausted frame means the peer didn't send one.
func decodeTrailingStats(f *frameReader, resp *Response) error {
	resp.StatsJSON = nil
	if f.off >= len(f.buf) {
		return nil
	}
	v, err := f.bytes()
	if err != nil {
		return err
	}
	resp.StatsJSON = append([]byte(nil), v...)
	return nil
}

// decodeResponse parses one response payload. Record field bytes are
// copied into a RecordBuilder arena (pooled when arena is true, plain
// GC'd chunks otherwise) and the record-header slice comes from the
// engine's hits pool, so the merged result can recycle it. release is
// non-nil only for pooled arenas; the caller owns folding it into the
// result's lease.
func decodeResponse(buf []byte, resp *Response, hits *mempool.SlicePool[mkhash.Record], arena bool) (release func(), err error) {
	f := frameReader{buf: buf}
	if resp.ID, err = f.uvarint(); err != nil {
		return nil, err
	}
	e, err := f.bytes()
	if err != nil {
		return nil, err
	}
	resp.Err = string(e)
	bk, err := f.zigzag()
	if err != nil {
		return nil, err
	}
	resp.Buckets = int(bk)
	sc, err := f.zigzag()
	if err != nil {
		return nil, err
	}
	resp.Scanned = int(sc)
	if resp.RetryAfterMillis, err = f.zigzag(); err != nil {
		return nil, err
	}
	nr, err := f.uvarint()
	if err != nil {
		return nil, err
	}
	// A record costs at least 1 byte on the wire; a count beyond the
	// remaining payload is corruption, not a huge allocation.
	if nr > uint64(len(buf)-f.off) {
		return nil, errFrameCorrupt
	}
	if nr == 0 {
		resp.Records = nil
		return nil, decodeTrailingStats(&f, resp)
	}
	b := mempool.NewRecordBuilder(arena)
	recs := hits.Get(int(nr))[:0]
	fail := func(err error) (func(), error) {
		hits.Put(recs)
		b.Release()
		return nil, err
	}
	for i := uint64(0); i < nr; i++ {
		nf, err := f.uvarint()
		if err != nil {
			return fail(err)
		}
		if nf > uint64(len(buf)-f.off) {
			return fail(errFrameCorrupt)
		}
		fields := b.Fields(int(nf))
		for j := range fields {
			v, err := f.bytes()
			if err != nil {
				return fail(err)
			}
			fields[j] = b.Bytes(v)
		}
		recs = append(recs, mkhash.Record(fields))
	}
	if err := decodeTrailingStats(&f, resp); err != nil {
		return fail(err)
	}
	resp.Records = recs
	if arena {
		return b.Release, nil
	}
	return nil, nil
}

// writeFrame sizes the payload with size, fills one pooled buffer via
// fill (length prefix + payload), writes it with a single Write, and
// recycles the buffer. frames may be nil (WithoutMemPool).
func writeFrame(w io.Writer, frames *mempool.SlicePool[byte], size int, fill func([]byte) []byte) error {
	if size > maxFrame {
		return fmt.Errorf("netdist: frame of %d bytes exceeds limit %d", size, maxFrame)
	}
	buf := frames.Get(frameLenSize + size)[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(size))
	buf = fill(buf)
	_, err := w.Write(buf)
	frames.Put(buf)
	return err
}

// readFrame reads one length-prefixed payload into a pooled slab; the
// caller must Put it back via the returned done func once decoded.
func readFrame(r io.Reader, frames *mempool.SlicePool[byte]) (payload []byte, done func(), err error) {
	var hdr [frameLenSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, nil, fmt.Errorf("netdist: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	buf := frames.Get(int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		frames.Put(buf)
		return nil, nil, err
	}
	return buf, func() { frames.Put(buf) }, nil
}

// wireCodec is the coordinator-side protocol seam: writeRequest runs
// under the connection's write mutex against the counting writer,
// readResponse runs on the read-loop goroutine against the timing
// reader. release, when non-nil, returns the response's record arena
// to its pool (binary codec in arena mode only).
type wireCodec interface {
	writeRequest(req *Request) error
	readResponse(resp *Response) (release func(), err error)
}

// gobCodec is the legacy protocol, kept both as the fallback for old
// peers and as the reference encoding for differential tests.
type gobCodec struct {
	enc *gob.Encoder
	dec *gob.Decoder
}

func (g *gobCodec) writeRequest(req *Request) error { return g.enc.Encode(req) }
func (g *gobCodec) readResponse(resp *Response) (func(), error) {
	return nil, g.dec.Decode(resp)
}

// binCodec speaks the length-prefixed binary protocol. Writer state and
// reader state are disjoint (writeMu vs read loop), matching gob's
// Encoder/Decoder split.
type binCodec struct {
	w      io.Writer
	r      io.Reader
	frames *mempool.SlicePool[byte]
	hits   *mempool.SlicePool[mkhash.Record]
	arena  bool
}

func (b *binCodec) writeRequest(req *Request) error {
	return writeFrame(b.w, b.frames, requestSize(req), func(buf []byte) []byte {
		return appendRequest(buf, req)
	})
}

func (b *binCodec) readResponse(resp *Response) (func(), error) {
	payload, done, err := readFrame(b.r, b.frames)
	if err != nil {
		return nil, err
	}
	defer done()
	return decodeResponse(payload, resp, b.hits, b.arena)
}

// serverCodec is the device-server side of the same seam.
type serverCodec interface {
	readRequest(req *Request) error
	writeResponse(resp *Response) error
}

type gobServerCodec struct {
	enc *gob.Encoder
	dec *gob.Decoder
}

func (g *gobServerCodec) readRequest(req *Request) error { return g.dec.Decode(req) }
func (g *gobServerCodec) writeResponse(resp *Response) error {
	return g.enc.Encode(resp)
}

type binServerCodec struct {
	w      io.Writer
	r      io.Reader
	frames *mempool.SlicePool[byte]
}

func (b *binServerCodec) readRequest(req *Request) error {
	payload, done, err := readFrame(b.r, b.frames)
	if err != nil {
		return err
	}
	defer done()
	return decodeRequest(payload, req)
}

func (b *binServerCodec) writeResponse(resp *Response) error {
	return writeFrame(b.w, b.frames, responseSize(resp), func(buf []byte) []byte {
		return appendResponse(buf, resp)
	})
}

// clientHits returns the hit-frame pool binary decodes draw record
// slices from; nil (pass-through) when pooling is off so WithoutMemPool
// reaches the wire layer too.
func clientHits(noPool bool) *mempool.SlicePool[mkhash.Record] {
	return engine.HitsPool(!noPool)
}

func clientFrames(noPool bool) *mempool.SlicePool[byte] {
	if noPool {
		return nil
	}
	return mempool.Frames
}
