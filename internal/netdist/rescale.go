package netdist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"fxdist/internal/decluster"
	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

// Server-side half of the elastic rescale protocol. A rescale runs as
// an epoch transition: the migration driver Prepares every surviving
// server with the next epoch's allocator spec (the server then answers
// queries at both epochs), streams each moving bucket with Fetch from
// its old owner and Install on its new one, and finally Cutovers — the
// prepared view becomes current, the epoch bumps, and buckets the
// server no longer owns are pruned. Abort at any point before cutover
// deletes the installed buckets and drops the prepared view, returning
// the server byte-for-byte to its pre-rescale state (the migration only
// ever copies; the old partition stays authoritative until cutover).

// nextView is the prepared next-epoch state of an in-flight rescale.
type nextView struct {
	spec  decluster.Spec
	alloc decluster.GroupAllocator
	fs    decluster.FileSystem
	im    *query.InverseMapper
	// installed tracks buckets written during this rescale so Abort can
	// delete exactly them.
	installed map[int]struct{}
}

// SetEpoch declares the server's base epoch. Fresh servers joining a
// cluster mid-rescale (the grow targets M..2M-1) start at the new epoch
// with an empty partition: they were never part of the old epoch, so
// there is nothing to prepare or cut over on them. Call before Serve.
func (s *Server) SetEpoch(epoch int) {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	s.epoch = epoch
}

// Epoch returns the server's current declustering epoch.
func (s *Server) Epoch() int {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	return s.epoch
}

// control dispatches one rescale control operation.
func (s *Server) control(req *Request) Response {
	switch req.Control {
	case OpPrepare:
		return s.prepare(req)
	case OpFetch:
		return s.fetch(req)
	case OpInstall:
		return s.install(req)
	case OpCutover:
		return s.cutover(req)
	case OpAbort:
		return s.abort(req)
	default:
		return Response{ID: req.ID, Err: fmt.Sprintf("netdist: unknown control op %d", req.Control)}
	}
}

// prepare builds the next-epoch view from the spec in the request.
// Idempotent: re-preparing with the same spec succeeds (the resume path
// after a coordinator crash), with a different one fails. A server that
// already serves the requested spec answers success WITHOUT creating a
// next view: after a partial cutover the driver's replay re-broadcasts
// Prepare, and an already-promoted server must not prepare a spurious
// current→current transition — the replayed cutover would bump it a
// second epoch ahead of the stragglers and split the fleet.
func (s *Server) prepare(req *Request) Response {
	var spec decluster.Spec
	if err := json.Unmarshal(req.SpecJSON, &spec); err != nil {
		return Response{ID: req.ID, Err: fmt.Sprintf("netdist: prepare: decode spec: %v", err)}
	}
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	if s.hasBackup {
		return Response{ID: req.ID, Err: "netdist: prepare: replicated deployments do not support live rescale"}
	}
	if specEqual(s.spec, spec) {
		return Response{ID: req.ID}
	}
	if s.next != nil {
		if specEqual(s.next.spec, spec) {
			return Response{ID: req.ID}
		}
		return Response{ID: req.ID, Err: "netdist: prepare: a different rescale is already prepared (abort it first)"}
	}
	alloc, err := spec.Build()
	if err != nil {
		return Response{ID: req.ID, Err: fmt.Sprintf("netdist: prepare: %v", err)}
	}
	fs := alloc.FileSystem()
	if fs.NumFields() != s.fs.NumFields() {
		return Response{ID: req.ID, Err: fmt.Sprintf("netdist: prepare: %d fields, serving %d", fs.NumFields(), s.fs.NumFields())}
	}
	for i, size := range s.fs.Sizes {
		if fs.Sizes[i] != size {
			return Response{ID: req.ID, Err: fmt.Sprintf("netdist: prepare: field %d sized %d, serving %d", i, fs.Sizes[i], size)}
		}
	}
	if s.deviceID >= fs.M {
		return Response{ID: req.ID, Err: fmt.Sprintf("netdist: prepare: device %d retires under M=%d and serves no next epoch", s.deviceID, fs.M)}
	}
	s.next = &nextView{
		spec:      spec,
		alloc:     alloc,
		fs:        fs,
		im:        query.NewInverseMapper(alloc),
		installed: make(map[int]struct{}),
	}
	return Response{ID: req.ID}
}

// fetch returns one bucket's records from the current partition. An
// absent bucket (nothing hashed there) is an empty, successful answer.
func (s *Server) fetch(req *Request) Response {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	if req.Bucket < 0 || req.Bucket >= s.fs.NumBuckets() {
		return Response{ID: req.ID, Err: fmt.Sprintf("netdist: fetch: bucket %d outside grid", req.Bucket)}
	}
	recs := s.buckets[req.Bucket]
	resp := Response{ID: req.ID, Buckets: 1, Scanned: len(recs)}
	for _, r := range recs {
		resp.Records = serverHits.AppendOne(resp.Records, r)
	}
	return resp
}

// install stores one bucket into the next-epoch partition. The bucket
// must belong to this device under the prepared spec (or under the
// current spec on a fresh server already at the new epoch). Records are
// copied out of the request, so wire buffers never alias the partition.
func (s *Server) install(req *Request) Response {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	owner := s.im.Allocator()
	gridFS := s.fs
	if s.next != nil {
		owner, gridFS = s.next.alloc, s.next.fs
	}
	if req.Bucket < 0 || req.Bucket >= gridFS.NumBuckets() {
		return Response{ID: req.ID, Err: fmt.Sprintf("netdist: install: bucket %d outside grid", req.Bucket)}
	}
	coords := gridFS.Coords(req.Bucket, nil)
	if dev := owner.Device(coords); dev != s.deviceID {
		return Response{ID: req.ID, Err: fmt.Sprintf("netdist: install: bucket %v belongs to device %d, not %d", coords, dev, s.deviceID)}
	}
	if len(req.Payload) == 0 {
		// An empty move: make the install idempotent by clearing any
		// previous (also empty-in-practice) content.
		delete(s.buckets, req.Bucket)
	} else {
		recs := make([]mkhash.Record, len(req.Payload))
		for i, r := range req.Payload {
			rec := make(mkhash.Record, len(r))
			for j, f := range r {
				rec[j] = strings.Clone(f)
			}
			recs[i] = rec
		}
		s.buckets[req.Bucket] = recs
	}
	if s.next != nil {
		s.next.installed[req.Bucket] = struct{}{}
	}
	return Response{ID: req.ID, Buckets: 1, Scanned: len(req.Payload)}
}

// cutover promotes the prepared view to current and prunes buckets this
// device no longer owns. A server with nothing prepared answers success
// (fresh rescale targets are already at the new epoch), so the driver's
// broadcast — and its replay after a crash — is idempotent.
func (s *Server) cutover(req *Request) Response {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	if s.next == nil {
		return Response{ID: req.ID}
	}
	nv := s.next
	var coords []int
	for idx := range s.buckets {
		coords = nv.fs.Coords(idx, coords[:0])
		if nv.alloc.Device(coords) != s.deviceID {
			delete(s.buckets, idx)
		}
	}
	s.spec, s.fs, s.im = nv.spec, nv.fs, nv.im
	s.epoch++
	s.next = nil
	return Response{ID: req.ID}
}

// abort drops the prepared view and deletes every bucket installed
// during the rescale — the rollback to the pre-rescale epoch. A server
// with nothing prepared answers success (idempotent broadcast).
func (s *Server) abort(req *Request) Response {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	if s.next == nil {
		return Response{ID: req.ID}
	}
	for idx := range s.next.installed {
		delete(s.buckets, idx)
	}
	s.next = nil
	return Response{ID: req.ID}
}

// specEqual compares two allocator specs field by field.
func specEqual(a, b decluster.Spec) bool {
	if a.Method != b.Method || a.M != b.M ||
		len(a.Sizes) != len(b.Sizes) || len(a.Kinds) != len(b.Kinds) || len(a.Multipliers) != len(b.Multipliers) {
		return false
	}
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] {
			return false
		}
	}
	for i := range a.Kinds {
		if a.Kinds[i] != b.Kinds[i] {
			return false
		}
	}
	for i := range a.Multipliers {
		if a.Multipliers[i] != b.Multipliers[i] {
			return false
		}
	}
	return true
}

// Coordinator-side control methods. Each is one round trip against one
// device's server, passing through the fault injector like every other
// request, so chaos schedules exercise the migration stream too.

// control runs one rescale control round trip against device dev.
func (c *Coordinator) controlOp(ctx context.Context, dev int, req Request) (Response, error) {
	req.AsDevice = -1
	dc := c.conn(dev)
	if c.injector != nil {
		if ierr := c.injector.Before(ctx, dev); ierr != nil {
			c.dm[dev].errors.Inc()
			return Response{}, &DeviceError{Device: dev, Addr: dc.addr, Err: ierr}
		}
	}
	resp, id, _, release, err := dc.roundTrip(ctx, req, c.timeout)
	if err != nil {
		c.dm[dev].errors.Inc()
		if errors.Is(err, ErrTimeout) {
			c.dm[dev].timeouts.Inc()
		}
		return Response{}, &DeviceError{Device: dev, Addr: dc.addr, RequestID: id, Err: err}
	}
	if resp.Err != "" {
		if release != nil {
			release()
		}
		dc.hits.Put(resp.Records)
		c.dm[dev].errors.Inc()
		return Response{}, &DeviceError{Device: dev, Addr: dc.addr, RequestID: id, Remote: true, Err: errors.New(resp.Err)}
	}
	if len(resp.Records) > 0 {
		// Control responses outlive the wire buffers: deep-copy the
		// records and recycle the pooled slabs immediately.
		recs := make([]mkhash.Record, len(resp.Records))
		for i, r := range resp.Records {
			rec := make(mkhash.Record, len(r))
			for j, f := range r {
				rec[j] = strings.Clone(f)
			}
			recs[i] = rec
		}
		dc.hits.Put(resp.Records)
		resp.Records = recs
	}
	if release != nil {
		release()
	}
	return resp, nil
}

// Prepare hands device dev the next epoch's allocator spec.
func (c *Coordinator) Prepare(ctx context.Context, dev int, spec decluster.Spec) error {
	b, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("netdist: encode rescale spec: %w", err)
	}
	_, err = c.controlOp(ctx, dev, Request{Control: OpPrepare, SpecJSON: b})
	return err
}

// FetchBucket returns bucket's records from device dev's current
// partition (empty when nothing hashed there).
func (c *Coordinator) FetchBucket(ctx context.Context, dev, bucket int) ([]mkhash.Record, error) {
	resp, err := c.controlOp(ctx, dev, Request{Control: OpFetch, Bucket: bucket})
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// InstallBucket stores bucket's records into device dev's next-epoch
// partition. Idempotent.
func (c *Coordinator) InstallBucket(ctx context.Context, dev, bucket int, recs []mkhash.Record) error {
	_, err := c.controlOp(ctx, dev, Request{Control: OpInstall, Bucket: bucket, Payload: recs})
	return err
}

// CutoverDevice promotes device dev's prepared view to current.
func (c *Coordinator) CutoverDevice(ctx context.Context, dev int) error {
	_, err := c.controlOp(ctx, dev, Request{Control: OpCutover})
	return err
}

// AbortRescale drops device dev's prepared view and installed buckets.
func (c *Coordinator) AbortRescale(ctx context.Context, dev int) error {
	_, err := c.controlOp(ctx, dev, Request{Control: OpAbort})
	return err
}
