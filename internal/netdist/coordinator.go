package netdist

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"fxdist/internal/audit"
	"fxdist/internal/engine"
	"fxdist/internal/mkhash"
	"fxdist/internal/obs"
	"fxdist/internal/plancache"
	"fxdist/internal/query"
)

// ErrTimeout marks a per-device request that exceeded the coordinator's
// timeout; match with errors.Is.
var ErrTimeout = errors.New("request timed out")

// DeviceError carries the failing device's identity so a retrieval
// failure correlates with the per-device failover and error counters.
// Match with errors.As; Unwrap exposes the transport cause (including
// ErrTimeout).
type DeviceError struct {
	// Device is the device id the request addressed (the impersonated
	// device for failover requests, not the server that answered).
	Device int
	// Addr is the address of the server that was asked.
	Addr string
	// RequestID is the pipelined wire request id, 0 if the request was
	// never assigned one.
	RequestID uint64
	// Remote is true when the server answered but rejected the request
	// (a protocol error), false for transport failures and timeouts.
	Remote bool
	// TraceID is the retrieval's trace id (0 when untraced); join it
	// against /debug/traces to see the whole query's span tree.
	TraceID uint64
	// Err is the underlying cause.
	Err error
}

func (e *DeviceError) Error() string {
	if e.TraceID != 0 {
		return fmt.Sprintf("netdist: device %d (%s) request %d trace %d: %v", e.Device, e.Addr, e.RequestID, e.TraceID, e.Err)
	}
	return fmt.Sprintf("netdist: device %d (%s) request %d: %v", e.Device, e.Addr, e.RequestID, e.Err)
}

func (e *DeviceError) Unwrap() error { return e.Err }

// deviceConn is one persistent connection with pipelined request/response
// framing: many requests may be in flight concurrently, matched to
// waiters by request ID. A single reader goroutine demultiplexes
// responses; writers serialise on a mutex.
type deviceConn struct {
	conn net.Conn
	addr string

	writeMu sync.Mutex
	enc     *gob.Encoder

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Response
	err     error // sticky transport error; set once the reader exits
}

func newDeviceConn(conn net.Conn, addr string) *deviceConn {
	dc := &deviceConn{
		conn:    conn,
		addr:    addr,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]chan Response),
	}
	go dc.readLoop(gob.NewDecoder(conn))
	return dc
}

// readLoop dispatches responses to their waiters until the connection
// dies, then fails every pending and future request.
func (dc *deviceConn) readLoop(dec *gob.Decoder) {
	for {
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			dc.mu.Lock()
			if dc.err == nil {
				dc.err = fmt.Errorf("connection lost: %w", err)
			}
			for id, ch := range dc.pending {
				close(ch)
				delete(dc.pending, id)
			}
			dc.mu.Unlock()
			return
		}
		dc.mu.Lock()
		ch, ok := dc.pending[resp.ID]
		if ok {
			delete(dc.pending, resp.ID)
		}
		dc.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// roundTrip sends req and waits for its response, returning the wire
// request id it assigned (0 when the connection was already dead).
// Cancelling ctx abandons the wait (the response, if it ever arrives, is
// discarded by the read loop).
func (dc *deviceConn) roundTrip(ctx context.Context, req Request, timeout time.Duration) (Response, uint64, error) {
	dc.mu.Lock()
	if dc.err != nil {
		err := dc.err
		dc.mu.Unlock()
		return Response{}, 0, err
	}
	dc.nextID++
	req.ID = dc.nextID
	ch := make(chan Response, 1)
	dc.pending[req.ID] = ch
	dc.mu.Unlock()

	dc.writeMu.Lock()
	err := dc.enc.Encode(&req)
	dc.writeMu.Unlock()
	if err != nil {
		dc.mu.Lock()
		delete(dc.pending, req.ID)
		dc.mu.Unlock()
		return Response{}, req.ID, err
	}

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			dc.mu.Lock()
			err := dc.err
			dc.mu.Unlock()
			return Response{}, req.ID, err
		}
		return resp, req.ID, nil
	case <-timer:
		dc.mu.Lock()
		delete(dc.pending, req.ID)
		dc.mu.Unlock()
		return Response{}, req.ID, fmt.Errorf("%w after %v", ErrTimeout, timeout)
	case <-ctx.Done():
		dc.mu.Lock()
		delete(dc.pending, req.ID)
		dc.mu.Unlock()
		return Response{}, req.ID, ctx.Err()
	}
}

// Coordinator fans partial match queries out to the device servers and
// merges their answers. It holds the file *schema* (for hashing query
// values) but no data. Concurrent Retrieve calls pipeline over the same
// device connections. Retrieval runs on the shared engine executor: eng
// is the plain path, feng the same devices under the ring-successor
// failover retry policy.
type Coordinator struct {
	file    *mkhash.File
	conns   []*deviceConn
	dm      []coordDevMetrics
	tracer  *obs.Tracer
	timeout time.Duration
	eng     *engine.Executor
	feng    *engine.Executor
}

// DialOption configures Dial.
type DialOption func(*Coordinator)

// WithTimeout bounds each per-device request; zero (the default) waits
// indefinitely.
func WithTimeout(d time.Duration) DialOption {
	return func(c *Coordinator) { c.timeout = d }
}

// Dial connects to one server per device; addrs[i] must serve device i.
// The file provides the schema and hash functions used to lower value
// queries to bucket coordinates — it can be empty of records.
func Dial(file *mkhash.File, addrs []string, opts ...DialOption) (*Coordinator, error) {
	c := &Coordinator{file: file, tracer: obs.DefaultTracer()}
	for _, opt := range opts {
		opt(c)
	}
	for i, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netdist: dial %s: %w", addr, err)
		}
		c.conns = append(c.conns, newDeviceConn(conn, addr))
		c.dm = append(c.dm, newCoordDevMetrics(i))
	}
	devices := make([]engine.Device, len(c.conns))
	for i := range devices {
		devices[i] = &remoteDevice{c: c, server: i, as: -1}
	}
	// The coordinator holds no allocator (servers do their own inverse
	// mapping), so its plans are summaries: cached |R(q)| and bound per
	// shape, computed once — keeping the audit's strict bound stable
	// across the workload instead of re-deriving it per retrieval.
	eng, err := engine.New(engine.Config{
		Schema:   file,
		Devices:  devices,
		Observer: coordObserver{},
		Tracer:   c.tracer,
		Span:     "netdist.retrieve",
		Audit:    audit.For("netdist"),
		Plans:    plancache.New("netdist"),
	})
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("netdist: %w", err)
	}
	c.eng = eng
	c.feng = eng.Derive("netdist.retrieve-failover", c.failover)
	return c, nil
}

// coordObserver maps the engine's retrieval events onto the coordinator's
// whole-query instruments.
type coordObserver struct{}

func (coordObserver) RetrieveStarted() { mCoordRetrieves.Inc() }
func (coordObserver) RetrieveError()   { mCoordRetrieveErrors.Inc() }
func (coordObserver) RetrieveDone(elapsed time.Duration, _ []int) {
	mCoordRetrieveLatency.Observe(elapsed.Seconds())
}

// remoteDevice adapts one device server connection to the engine's Device
// contract: the bucket query travels as a gob Request and the server does
// its own inverse mapping and value re-check. as >= 0 impersonates a dead
// device against the server holding its backup partition (failover).
type remoteDevice struct {
	c      *Coordinator
	server int
	as     int
}

func (d *remoteDevice) Scan(ctx context.Context, q query.Query, pm mkhash.PartialMatch) (engine.Answer, error) {
	req := NewRequest(q.Spec, pm)
	req.AsDevice = d.as
	if span := engine.SpanFromContext(ctx); span != nil {
		req.TraceID, req.ParentSpan = span.Trace(), span.SpanID()
	}
	resp, err := d.c.ask(ctx, d.server, req)
	if err != nil {
		return engine.Answer{}, err
	}
	return engine.Answer{Buckets: resp.Buckets, Records: resp.Scanned, Hits: resp.Records}, nil
}

// failover is the engine retry policy for replicated deployments: a
// transport failure on a device re-asks its ring successor to answer from
// the backup copy. Remote rejections (the server answered and said no)
// are not retried — the backup would reject the same request.
func (c *Coordinator) failover(ctx context.Context, dev int, err error) engine.Device {
	var derr *DeviceError
	if errors.As(err, &derr) && derr.Remote {
		return nil
	}
	m := len(c.conns)
	c.dm[dev].failovers.Inc()
	engine.SpanFromContext(ctx).Event(
		fmt.Sprintf("failover: re-asking ring successor %d for device %d", (dev+1)%m, dev))
	return &remoteDevice{c: c, server: (dev + 1) % m, as: dev}
}

// Close drops all device connections and releases the plan cache.
func (c *Coordinator) Close() {
	if c.eng != nil && c.eng.Plans() != nil {
		c.eng.Plans().Close()
	}
	for _, dc := range c.conns {
		if dc != nil {
			dc.conn.Close()
		}
	}
}

// PlanCache returns the coordinator's per-shape plan cache.
func (c *Coordinator) PlanCache() *plancache.Cache { return c.eng.Plans() }

// M returns the device count.
func (c *Coordinator) M() int { return len(c.conns) }

// ask runs one instrumented round trip against device dev's server,
// classifying errors into the per-device counters and wrapping failures
// with the device id, server address and wire request id. The retrieval
// span travels in ctx (see engine.SpanFromContext).
func (c *Coordinator) ask(ctx context.Context, dev int, req Request) (Response, error) {
	dc := c.conns[dev]
	span := engine.SpanFromContext(ctx)
	dm := &c.dm[dev]
	dm.inflight.Inc()
	t0 := time.Now()
	resp, id, err := dc.roundTrip(ctx, req, c.timeout)
	dm.latency.ObserveSince(t0)
	dm.inflight.Dec()
	if err != nil {
		dm.errors.Inc()
		if errors.Is(err, ErrTimeout) {
			dm.timeouts.Inc()
		}
		derr := &DeviceError{Device: req.targetDevice(dev), Addr: dc.addr, RequestID: id, TraceID: span.Trace(), Err: err}
		span.Event(derr.Error())
		return Response{}, derr
	}
	if resp.Err != "" {
		dm.errors.Inc()
		derr := &DeviceError{Device: req.targetDevice(dev), Addr: dc.addr, RequestID: id, TraceID: span.Trace(), Remote: true, Err: errors.New(resp.Err)}
		span.Event(derr.Error())
		return Response{}, derr
	}
	span.SetRequestID(id)
	span.Event(fmt.Sprintf("device %d (%s) req %d: %d buckets, %d records in %v",
		req.targetDevice(dev), dc.addr, id, resp.Buckets, resp.Scanned, time.Since(t0)))
	return resp, nil
}

// targetDevice reports which device's partition req addresses when sent
// to server dev (failover requests impersonate the dead device).
func (r Request) targetDevice(server int) int {
	if r.AsDevice >= 0 {
		return r.AsDevice
	}
	return server
}

// Result is a merged distributed retrieval.
type Result struct {
	// TraceID identifies the retrieval's stitched span tree in
	// /debug/traces?tree=1 (coordinator root + one child per device).
	TraceID uint64
	// Records are the matching records, grouped by device in device order.
	Records []mkhash.Record
	// DeviceBuckets[i] / DeviceRecords[i] are device i's accessed bucket
	// and scanned record counts.
	DeviceBuckets []int
	DeviceRecords []int
	// LargestResponseSize is max(DeviceBuckets) — the paper's response
	// time determinant.
	LargestResponseSize int
}

// fromEngine projects the engine's merged result onto the wire-level
// Result (the coordinator attaches no cost model, so time fields drop).
func fromEngine(r engine.Result) Result {
	return Result{
		TraceID:             r.TraceID,
		Records:             r.Records,
		DeviceBuckets:       r.DeviceBuckets,
		DeviceRecords:       r.DeviceRecords,
		LargestResponseSize: r.LargestResponseSize,
	}
}

// Retrieve lowers the value-level query, broadcasts it to every device in
// parallel, and merges the responses. Any device error fails the whole
// retrieval (partial answers would silently drop matches); the error
// reports every failing device.
func (c *Coordinator) Retrieve(pm mkhash.PartialMatch) (Result, error) {
	return c.RetrieveContext(context.Background(), pm)
}

// RetrieveContext is Retrieve with cancellation and deadlines.
func (c *Coordinator) RetrieveContext(ctx context.Context, pm mkhash.PartialMatch) (Result, error) {
	res, err := c.eng.Retrieve(ctx, pm)
	if err != nil {
		return Result{}, err
	}
	return fromEngine(res), nil
}

// RetrieveBatch answers a batch of queries, pipelining all of them over
// the device connections at once; see engine.Executor.RetrieveBatch.
func (c *Coordinator) RetrieveBatch(ctx context.Context, pms []mkhash.PartialMatch) ([]Result, error) {
	engRes, err := c.eng.RetrieveBatch(ctx, pms)
	out := make([]Result, len(engRes))
	for i, r := range engRes {
		out[i] = fromEngine(r)
	}
	return out, err
}
