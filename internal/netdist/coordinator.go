package netdist

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"fxdist/internal/mkhash"
	"fxdist/internal/obs"
)

// ErrTimeout marks a per-device request that exceeded the coordinator's
// timeout; match with errors.Is.
var ErrTimeout = errors.New("request timed out")

// DeviceError carries the failing device's identity so a retrieval
// failure correlates with the per-device failover and error counters.
// Match with errors.As; Unwrap exposes the transport cause (including
// ErrTimeout).
type DeviceError struct {
	// Device is the device id the request addressed (the impersonated
	// device for failover requests, not the server that answered).
	Device int
	// Addr is the address of the server that was asked.
	Addr string
	// RequestID is the pipelined wire request id, 0 if the request was
	// never assigned one.
	RequestID uint64
	// Remote is true when the server answered but rejected the request
	// (a protocol error), false for transport failures and timeouts.
	Remote bool
	// Err is the underlying cause.
	Err error
}

func (e *DeviceError) Error() string {
	return fmt.Sprintf("netdist: device %d (%s) request %d: %v", e.Device, e.Addr, e.RequestID, e.Err)
}

func (e *DeviceError) Unwrap() error { return e.Err }

// deviceConn is one persistent connection with pipelined request/response
// framing: many requests may be in flight concurrently, matched to
// waiters by request ID. A single reader goroutine demultiplexes
// responses; writers serialise on a mutex.
type deviceConn struct {
	conn net.Conn
	addr string

	writeMu sync.Mutex
	enc     *gob.Encoder

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Response
	err     error // sticky transport error; set once the reader exits
}

func newDeviceConn(conn net.Conn, addr string) *deviceConn {
	dc := &deviceConn{
		conn:    conn,
		addr:    addr,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]chan Response),
	}
	go dc.readLoop(gob.NewDecoder(conn))
	return dc
}

// readLoop dispatches responses to their waiters until the connection
// dies, then fails every pending and future request.
func (dc *deviceConn) readLoop(dec *gob.Decoder) {
	for {
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			dc.mu.Lock()
			if dc.err == nil {
				dc.err = fmt.Errorf("connection lost: %w", err)
			}
			for id, ch := range dc.pending {
				close(ch)
				delete(dc.pending, id)
			}
			dc.mu.Unlock()
			return
		}
		dc.mu.Lock()
		ch, ok := dc.pending[resp.ID]
		if ok {
			delete(dc.pending, resp.ID)
		}
		dc.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// roundTrip sends req and waits for its response, returning the wire
// request id it assigned (0 when the connection was already dead).
func (dc *deviceConn) roundTrip(req Request, timeout time.Duration) (Response, uint64, error) {
	dc.mu.Lock()
	if dc.err != nil {
		err := dc.err
		dc.mu.Unlock()
		return Response{}, 0, err
	}
	dc.nextID++
	req.ID = dc.nextID
	ch := make(chan Response, 1)
	dc.pending[req.ID] = ch
	dc.mu.Unlock()

	dc.writeMu.Lock()
	err := dc.enc.Encode(&req)
	dc.writeMu.Unlock()
	if err != nil {
		dc.mu.Lock()
		delete(dc.pending, req.ID)
		dc.mu.Unlock()
		return Response{}, req.ID, err
	}

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			dc.mu.Lock()
			err := dc.err
			dc.mu.Unlock()
			return Response{}, req.ID, err
		}
		return resp, req.ID, nil
	case <-timer:
		dc.mu.Lock()
		delete(dc.pending, req.ID)
		dc.mu.Unlock()
		return Response{}, req.ID, fmt.Errorf("%w after %v", ErrTimeout, timeout)
	}
}

// Coordinator fans partial match queries out to the device servers and
// merges their answers. It holds the file *schema* (for hashing query
// values) but no data. Concurrent Retrieve calls pipeline over the same
// device connections.
type Coordinator struct {
	file    *mkhash.File
	conns   []*deviceConn
	dm      []coordDevMetrics
	tracer  *obs.Tracer
	timeout time.Duration
}

// DialOption configures Dial.
type DialOption func(*Coordinator)

// WithTimeout bounds each per-device request; zero (the default) waits
// indefinitely.
func WithTimeout(d time.Duration) DialOption {
	return func(c *Coordinator) { c.timeout = d }
}

// Dial connects to one server per device; addrs[i] must serve device i.
// The file provides the schema and hash functions used to lower value
// queries to bucket coordinates — it can be empty of records.
func Dial(file *mkhash.File, addrs []string, opts ...DialOption) (*Coordinator, error) {
	c := &Coordinator{file: file, tracer: obs.DefaultTracer()}
	for _, opt := range opts {
		opt(c)
	}
	for i, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netdist: dial %s: %w", addr, err)
		}
		c.conns = append(c.conns, newDeviceConn(conn, addr))
		c.dm = append(c.dm, newCoordDevMetrics(i))
	}
	return c, nil
}

// Close drops all device connections.
func (c *Coordinator) Close() {
	for _, dc := range c.conns {
		if dc != nil {
			dc.conn.Close()
		}
	}
}

// ask runs one instrumented round trip against device dev's server,
// classifying errors into the per-device counters and wrapping failures
// with the device id, server address and wire request id.
func (c *Coordinator) ask(dev int, dc *deviceConn, req Request, span *obs.Span) (Response, error) {
	dm := &c.dm[dev]
	dm.inflight.Inc()
	t0 := time.Now()
	resp, id, err := dc.roundTrip(req, c.timeout)
	dm.latency.ObserveSince(t0)
	dm.inflight.Dec()
	if err != nil {
		dm.errors.Inc()
		if errors.Is(err, ErrTimeout) {
			dm.timeouts.Inc()
		}
		derr := &DeviceError{Device: req.targetDevice(dev), Addr: dc.addr, RequestID: id, Err: err}
		span.Event(derr.Error())
		return Response{}, derr
	}
	if resp.Err != "" {
		dm.errors.Inc()
		derr := &DeviceError{Device: req.targetDevice(dev), Addr: dc.addr, RequestID: id, Remote: true, Err: errors.New(resp.Err)}
		span.Event(derr.Error())
		return Response{}, derr
	}
	span.SetRequestID(id)
	span.Event(fmt.Sprintf("device %d (%s) req %d: %d buckets, %d records in %v",
		req.targetDevice(dev), dc.addr, id, resp.Buckets, resp.Scanned, time.Since(t0)))
	return resp, nil
}

// targetDevice reports which device's partition req addresses when sent
// to server dev (failover requests impersonate the dead device).
func (r Request) targetDevice(server int) int {
	if r.AsDevice >= 0 {
		return r.AsDevice
	}
	return server
}

// Result is a merged distributed retrieval.
type Result struct {
	// Records are the matching records, grouped by device in device order.
	Records []mkhash.Record
	// DeviceBuckets[i] / DeviceRecords[i] are device i's accessed bucket
	// and scanned record counts.
	DeviceBuckets []int
	DeviceRecords []int
	// LargestResponseSize is max(DeviceBuckets) — the paper's response
	// time determinant.
	LargestResponseSize int
}

// Retrieve lowers the value-level query, broadcasts it to every device in
// parallel, and merges the responses. Any device error fails the whole
// retrieval (partial answers would silently drop matches).
func (c *Coordinator) Retrieve(pm mkhash.PartialMatch) (Result, error) {
	q, err := c.file.BucketQuery(pm)
	if err != nil {
		return Result{}, err
	}
	req := NewRequest(q.Spec, pm)

	mCoordRetrieves.Inc()
	t0 := time.Now()
	span := c.tracer.Start("netdist.retrieve")
	defer func() {
		mCoordRetrieveLatency.ObserveSince(t0)
		span.End()
	}()

	type devAnswer struct {
		resp Response
		err  error
	}
	answers := make([]devAnswer, len(c.conns))
	var wg sync.WaitGroup
	for i, dc := range c.conns {
		wg.Add(1)
		go func(i int, dc *deviceConn) {
			defer wg.Done()
			resp, err := c.ask(i, dc, req, span)
			answers[i] = devAnswer{resp, err}
		}(i, dc)
	}
	wg.Wait()

	res := Result{
		DeviceBuckets: make([]int, len(c.conns)),
		DeviceRecords: make([]int, len(c.conns)),
	}
	for i, a := range answers {
		if a.err != nil {
			mCoordRetrieveErrors.Inc()
			return Result{}, a.err
		}
		res.Records = append(res.Records, a.resp.Records...)
		res.DeviceBuckets[i] = a.resp.Buckets
		res.DeviceRecords[i] = a.resp.Scanned
		if a.resp.Buckets > res.LargestResponseSize {
			res.LargestResponseSize = a.resp.Buckets
		}
	}
	return res, nil
}
