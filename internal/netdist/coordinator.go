package netdist

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"fxdist/internal/mkhash"
)

// deviceConn is one persistent connection with pipelined request/response
// framing: many requests may be in flight concurrently, matched to
// waiters by request ID. A single reader goroutine demultiplexes
// responses; writers serialise on a mutex.
type deviceConn struct {
	conn net.Conn

	writeMu sync.Mutex
	enc     *gob.Encoder

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Response
	err     error // sticky transport error; set once the reader exits
}

func newDeviceConn(conn net.Conn) *deviceConn {
	dc := &deviceConn{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]chan Response),
	}
	go dc.readLoop(gob.NewDecoder(conn))
	return dc
}

// readLoop dispatches responses to their waiters until the connection
// dies, then fails every pending and future request.
func (dc *deviceConn) readLoop(dec *gob.Decoder) {
	for {
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			dc.mu.Lock()
			if dc.err == nil {
				dc.err = fmt.Errorf("netdist: connection lost: %w", err)
			}
			for id, ch := range dc.pending {
				close(ch)
				delete(dc.pending, id)
			}
			dc.mu.Unlock()
			return
		}
		dc.mu.Lock()
		ch, ok := dc.pending[resp.ID]
		if ok {
			delete(dc.pending, resp.ID)
		}
		dc.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

func (dc *deviceConn) roundTrip(req Request, timeout time.Duration) (Response, error) {
	dc.mu.Lock()
	if dc.err != nil {
		err := dc.err
		dc.mu.Unlock()
		return Response{}, err
	}
	dc.nextID++
	req.ID = dc.nextID
	ch := make(chan Response, 1)
	dc.pending[req.ID] = ch
	dc.mu.Unlock()

	dc.writeMu.Lock()
	err := dc.enc.Encode(&req)
	dc.writeMu.Unlock()
	if err != nil {
		dc.mu.Lock()
		delete(dc.pending, req.ID)
		dc.mu.Unlock()
		return Response{}, err
	}

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			dc.mu.Lock()
			err := dc.err
			dc.mu.Unlock()
			return Response{}, err
		}
		return resp, nil
	case <-timer:
		dc.mu.Lock()
		delete(dc.pending, req.ID)
		dc.mu.Unlock()
		return Response{}, fmt.Errorf("netdist: request timed out after %v", timeout)
	}
}

// Coordinator fans partial match queries out to the device servers and
// merges their answers. It holds the file *schema* (for hashing query
// values) but no data. Concurrent Retrieve calls pipeline over the same
// device connections.
type Coordinator struct {
	file    *mkhash.File
	conns   []*deviceConn
	timeout time.Duration
}

// DialOption configures Dial.
type DialOption func(*Coordinator)

// WithTimeout bounds each per-device request; zero (the default) waits
// indefinitely.
func WithTimeout(d time.Duration) DialOption {
	return func(c *Coordinator) { c.timeout = d }
}

// Dial connects to one server per device; addrs[i] must serve device i.
// The file provides the schema and hash functions used to lower value
// queries to bucket coordinates — it can be empty of records.
func Dial(file *mkhash.File, addrs []string, opts ...DialOption) (*Coordinator, error) {
	c := &Coordinator{file: file}
	for _, opt := range opts {
		opt(c)
	}
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netdist: dial %s: %w", addr, err)
		}
		c.conns = append(c.conns, newDeviceConn(conn))
	}
	return c, nil
}

// Close drops all device connections.
func (c *Coordinator) Close() {
	for _, dc := range c.conns {
		if dc != nil {
			dc.conn.Close()
		}
	}
}

// Result is a merged distributed retrieval.
type Result struct {
	// Records are the matching records, grouped by device in device order.
	Records []mkhash.Record
	// DeviceBuckets[i] / DeviceRecords[i] are device i's accessed bucket
	// and scanned record counts.
	DeviceBuckets []int
	DeviceRecords []int
	// LargestResponseSize is max(DeviceBuckets) — the paper's response
	// time determinant.
	LargestResponseSize int
}

// Retrieve lowers the value-level query, broadcasts it to every device in
// parallel, and merges the responses. Any device error fails the whole
// retrieval (partial answers would silently drop matches).
func (c *Coordinator) Retrieve(pm mkhash.PartialMatch) (Result, error) {
	q, err := c.file.BucketQuery(pm)
	if err != nil {
		return Result{}, err
	}
	req := NewRequest(q.Spec, pm)

	type devAnswer struct {
		resp Response
		err  error
	}
	answers := make([]devAnswer, len(c.conns))
	var wg sync.WaitGroup
	for i, dc := range c.conns {
		wg.Add(1)
		go func(i int, dc *deviceConn) {
			defer wg.Done()
			resp, err := dc.roundTrip(req, c.timeout)
			answers[i] = devAnswer{resp, err}
		}(i, dc)
	}
	wg.Wait()

	res := Result{
		DeviceBuckets: make([]int, len(c.conns)),
		DeviceRecords: make([]int, len(c.conns)),
	}
	for i, a := range answers {
		if a.err != nil {
			return Result{}, fmt.Errorf("netdist: device %d: %w", i, a.err)
		}
		if a.resp.Err != "" {
			return Result{}, fmt.Errorf("netdist: device %d: %s", i, a.resp.Err)
		}
		res.Records = append(res.Records, a.resp.Records...)
		res.DeviceBuckets[i] = a.resp.Buckets
		res.DeviceRecords[i] = a.resp.Scanned
		if a.resp.Buckets > res.LargestResponseSize {
			res.LargestResponseSize = a.resp.Buckets
		}
	}
	return res, nil
}
