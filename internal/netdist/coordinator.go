package netdist

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fxdist/internal/audit"
	"fxdist/internal/engine"
	"fxdist/internal/mempool"
	"fxdist/internal/mkhash"
	"fxdist/internal/obs"
	"fxdist/internal/plancache"
	"fxdist/internal/query"
	"fxdist/internal/resilience"
	"fxdist/internal/retry"
	"fxdist/internal/telemetry"
)

// ErrTimeout marks a per-device request that exceeded the coordinator's
// timeout; match with errors.Is.
var ErrTimeout = errors.New("request timed out")

// DeviceError carries the failing device's identity so a retrieval
// failure correlates with the per-device failover and error counters.
// Match with errors.As; Unwrap exposes the transport cause (including
// ErrTimeout).
type DeviceError struct {
	// Device is the device id the request addressed (the impersonated
	// device for failover requests, not the server that answered).
	Device int
	// Addr is the address of the server that was asked.
	Addr string
	// RequestID is the pipelined wire request id, 0 if the request was
	// never assigned one.
	RequestID uint64
	// Remote is true when the server answered but rejected the request
	// (a protocol error), false for transport failures and timeouts.
	Remote bool
	// TraceID is the retrieval's trace id (0 when untraced); join it
	// against /debug/traces to see the whole query's span tree.
	TraceID uint64
	// Err is the underlying cause.
	Err error
}

func (e *DeviceError) Error() string {
	if e.TraceID != 0 {
		return fmt.Sprintf("netdist: device %d (%s) request %d trace %d: %v", e.Device, e.Addr, e.RequestID, e.TraceID, e.Err)
	}
	return fmt.Sprintf("netdist: device %d (%s) request %d: %v", e.Device, e.Addr, e.RequestID, e.Err)
}

func (e *DeviceError) Unwrap() error { return e.Err }

// countingWriter counts wire bytes out. Writes are serialised by the
// connection's writeMu, so callers may read n around an Encode to
// attribute the delta to one request.
type countingWriter struct {
	w io.Writer
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

// timingReader wraps the connection under the read loop's decoder,
// stamping when the first byte of each armed message arrives and
// counting bytes read. Only the read-loop goroutine touches it. Both
// codecs buffer reads, so a message may decode without any underlying
// Read (armed stays true) — the read loop then falls back to the arm
// time.
type timingReader struct {
	r         io.Reader
	armed     bool
	armedAt   time.Time
	firstByte time.Time
	n         uint64
}

func (t *timingReader) arm() {
	t.armed = true
	t.armedAt = time.Now()
	t.n = 0
}

func (t *timingReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if n > 0 {
		if t.armed {
			t.firstByte = time.Now()
			t.armed = false
		}
		t.n += uint64(n)
	}
	return n, err
}

// wireDelivery is one demultiplexed response plus the read loop's
// timing evidence for it. release, when non-nil, returns the response's
// record arena to its pool (binary codec in arena mode).
type wireDelivery struct {
	resp      Response
	firstByte time.Time
	decode    time.Duration
	bytes     uint64
	release   func()
}

// deviceConn is one persistent connection with pipelined request/response
// framing: many requests may be in flight concurrently, matched to
// waiters by request ID. A single reader goroutine demultiplexes
// responses; writers serialise on a mutex. The codec (binary or gob
// fallback) is fixed at dial time by the handshake.
type deviceConn struct {
	conn   net.Conn
	addr   string
	binary bool

	writeMu sync.Mutex
	codec   wireCodec
	cw      *countingWriter

	// hits is the pool record slices were drawn from, for recycling
	// orphaned responses (nil pass-through when pooling is off).
	hits *mempool.SlicePool[mkhash.Record]

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan wireDelivery
	err     error // sticky transport error; set once the reader exits
}

func newDeviceConn(conn net.Conn, addr string, binary, noPool, arena bool) *deviceConn {
	cw := &countingWriter{w: conn}
	tr := &timingReader{r: conn}
	dc := &deviceConn{
		conn:    conn,
		addr:    addr,
		binary:  binary,
		cw:      cw,
		hits:    clientHits(noPool),
		pending: make(map[uint64]chan wireDelivery),
	}
	if binary {
		dc.codec = &binCodec{w: cw, r: tr, frames: clientFrames(noPool), hits: dc.hits, arena: arena && !noPool}
	} else {
		dc.codec = &gobCodec{enc: gob.NewEncoder(cw), dec: gob.NewDecoder(tr)}
	}
	go dc.readLoop(tr)
	return dc
}

// discard recycles a delivery nobody will consume: the record arena (if
// leased) and the record-header slab both go back to their pools.
func (dc *deviceConn) discard(d wireDelivery) {
	if d.release != nil {
		d.release()
	}
	dc.hits.Put(d.resp.Records)
}

// readLoop dispatches responses to their waiters until the connection
// dies, then fails every pending and future request.
func (dc *deviceConn) readLoop(tr *timingReader) {
	for {
		tr.arm()
		var resp Response
		release, err := dc.codec.readResponse(&resp)
		if err != nil {
			dc.mu.Lock()
			if dc.err == nil {
				dc.err = fmt.Errorf("connection lost: %w", err)
			}
			for id, ch := range dc.pending {
				close(ch)
				delete(dc.pending, id)
			}
			dc.mu.Unlock()
			return
		}
		d := wireDelivery{resp: resp, firstByte: tr.firstByte, bytes: tr.n, release: release}
		if tr.armed {
			// Fully buffered message: no Read happened, the bytes were
			// already here when we armed.
			d.firstByte = tr.armedAt
			d.bytes = 0
		}
		d.decode = time.Since(d.firstByte)
		dc.mu.Lock()
		ch, ok := dc.pending[resp.ID]
		if ok {
			delete(dc.pending, resp.ID)
		}
		dc.mu.Unlock()
		if ok {
			ch <- d
		} else {
			// The waiter gave up (cancel or timeout): recycle instead of
			// leaking the slabs to the garbage collector.
			dc.discard(d)
		}
	}
}

// dead returns the sticky transport error once the reader has exited,
// nil while the connection is healthy (the health prober's redial
// trigger).
func (dc *deviceConn) dead() error {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.err
}

// WireStages breaks one round trip into the coordinator-side wire
// stages: Dispatch (request encode + write; OutBytes on the wire),
// Wait (write done → first response byte), Decode (first byte → gob
// decode done; InBytes on the wire).
type WireStages struct {
	Dispatch time.Duration
	OutBytes uint64
	Wait     time.Duration
	Decode   time.Duration
	InBytes  uint64
}

// roundTrip sends req and waits for its response, returning the wire
// request id it assigned (0 when the connection was already dead), the
// round trip's wire-stage timings, and — in arena mode — the release
// func that returns the response's record arena to its pool (nil
// otherwise; the caller folds it into the result's lease). The
// per-request timeout composes with the caller's context deadline —
// whichever expires first wins — and a coordinator-side expiry surfaces
// as ErrTimeout wrapping context.DeadlineExceeded, so both errors.Is
// checks hold. Cancelling ctx abandons the wait (the response, if it
// ever arrives, is recycled by the read loop).
func (dc *deviceConn) roundTrip(ctx context.Context, req Request, timeout time.Duration) (Response, uint64, WireStages, func(), error) {
	var ws WireStages
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, timeout,
			fmt.Errorf("%w after %v: %w", ErrTimeout, timeout, context.DeadlineExceeded))
		defer cancel()
	}
	dc.mu.Lock()
	if dc.err != nil {
		err := dc.err
		dc.mu.Unlock()
		return Response{}, 0, ws, nil, err
	}
	dc.nextID++
	req.ID = dc.nextID
	ch := make(chan wireDelivery, 1)
	dc.pending[req.ID] = ch
	dc.mu.Unlock()

	dc.writeMu.Lock()
	t0 := time.Now()
	out0 := dc.cw.n
	err := dc.codec.writeRequest(&req)
	ws.OutBytes = dc.cw.n - out0
	dc.writeMu.Unlock()
	writeDone := time.Now()
	ws.Dispatch = writeDone.Sub(t0)
	if err != nil {
		dc.mu.Lock()
		delete(dc.pending, req.ID)
		dc.mu.Unlock()
		return Response{}, req.ID, ws, nil, err
	}

	select {
	case d, ok := <-ch:
		if !ok {
			dc.mu.Lock()
			err := dc.err
			dc.mu.Unlock()
			return Response{}, req.ID, ws, nil, err
		}
		if w := d.firstByte.Sub(writeDone); w > 0 {
			ws.Wait = w
		}
		ws.Decode = d.decode
		ws.InBytes = d.bytes
		return d.resp, req.ID, ws, d.release, nil
	case <-ctx.Done():
		dc.mu.Lock()
		delete(dc.pending, req.ID)
		dc.mu.Unlock()
		// The delivery may have been buffered just before we gave up;
		// drain it so its slabs recycle rather than leak to the GC.
		select {
		case d, ok := <-ch:
			if ok {
				dc.discard(d)
			}
		default:
		}
		// Cause distinguishes our per-request timeout (ErrTimeout chain)
		// from the caller's own deadline or cancellation.
		return Response{}, req.ID, ws, nil, context.Cause(ctx)
	}
}

// Coordinator fans partial match queries out to the device servers and
// merges their answers. It holds the file *schema* (for hashing query
// values) but no data. Concurrent Retrieve calls pipeline over the same
// device connections. Retrieval runs on the shared engine executor: eng
// is the plain path, feng the same devices under the ring-successor
// failover retry policy.
type Coordinator struct {
	file    *mkhash.File
	dm      []coordDevMetrics
	tracer  *obs.Tracer
	timeout time.Duration
	noPool  bool
	arena   bool
	backend string
	epoch   int
	eng     *engine.Executor
	feng    *engine.Executor
	prof    *obs.CostProfiler

	// connMu guards conns so the health prober can replace a dead
	// connection while retrievals are in flight.
	connMu sync.RWMutex
	conns  []*deviceConn

	// Resilience (WithResilience / WithInjector).
	rcfg     *retry.Config
	ctrl     *retry.Controller
	injector *resilience.Injector

	probeMu   sync.Mutex
	probeStop chan struct{}
	probeWG   sync.WaitGroup

	// Metrics federation (PullStats / StartStatsPull): fed accumulates
	// per-server NodeStats snapshots into the /debug/cluster fleet view.
	fleetName       string
	fed             *telemetry.Federator
	fleetOnce       sync.Once
	fleetRegistered atomic.Bool
	statsMu         sync.Mutex
	statsStop       chan struct{}
	statsWG         sync.WaitGroup
}

// DialOption configures Dial.
type DialOption func(*Coordinator)

// WithTimeout bounds each per-device request; zero (the default) waits
// indefinitely.
func WithTimeout(d time.Duration) DialOption {
	return func(c *Coordinator) { c.timeout = d }
}

// WithResilience runs the coordinator's retrievals under the adaptive
// retry layer: per-device circuit breakers, backoff budgets, hedged
// failover requests, and (when cfg.Partial) graceful degraded results.
func WithResilience(cfg retry.Config) DialOption {
	return func(c *Coordinator) { c.rcfg = &cfg }
}

// WithInjector applies a fault injector at the connection seam: every
// outgoing device request first passes the injector's schedule for that
// device (chaos testing without touching the servers).
func WithInjector(in *resilience.Injector) DialOption {
	return func(c *Coordinator) { c.injector = in }
}

// WithFleetName sets the name this coordinator's federated fleet view
// registers under on /debug/cluster (default: the backend name). Give
// each coordinator in a multi-fleet process its own name so their
// reports don't shadow each other.
func WithFleetName(name string) DialOption {
	return func(c *Coordinator) { c.fleetName = name }
}

// WithBackendName sets the label this coordinator's telemetry registers
// under — the optimality auditor, plan cache, cost profiler, flight
// recorder, event log and (unless WithFleetName overrides it) fleet
// view. Default "netdist". The elastic rescale dials its new-epoch
// coordinator as "netdist-next" so the cutover guard can read the new
// epoch's per-shape discrepancy separately from the serving backend's.
func WithBackendName(name string) DialOption {
	return func(c *Coordinator) { c.backend = name }
}

// WithEpoch stamps every query this coordinator sends with the given
// declustering epoch (see Request.Epoch). Default 0 — the epoch every
// server starts at. The rescale's new-epoch coordinator dials with the
// next epoch so servers answer from the prepared view.
func WithEpoch(epoch int) DialOption {
	return func(c *Coordinator) { c.epoch = epoch }
}

// WithoutMemPool disables the coordinator's buffer pools: wire frames,
// decoded record arenas, and fan-out scratch all fall back to plain
// allocation. The A/B switch for the differential tests and for ruling
// pooling out when chasing a corruption bug.
func WithoutMemPool() DialOption {
	return func(c *Coordinator) { c.noPool = true }
}

// WithArenaResults makes retrievals lease their records from pooled
// arenas: Result.Records and the strings they point at stay valid only
// until Result.Release returns them for reuse. Callers that don't
// Release simply fall back to the garbage collector. Ignored under
// WithoutMemPool.
func WithArenaResults() DialOption {
	return func(c *Coordinator) { c.arena = true }
}

// Dial connects to one server per device; addrs[i] must serve device i.
// The file provides the schema and hash functions used to lower value
// queries to bucket coordinates — it can be empty of records.
func Dial(file *mkhash.File, addrs []string, opts ...DialOption) (*Coordinator, error) {
	c := &Coordinator{file: file, tracer: obs.DefaultTracer()}
	for _, opt := range opts {
		opt(c)
	}
	if c.backend == "" {
		c.backend = "netdist"
	}
	if c.fleetName == "" {
		c.fleetName = c.backend
	}
	c.prof = obs.CostProfilerFor(c.backend)
	c.fed = telemetry.NewFederator(c.fleetName)
	for i, addr := range addrs {
		dc, err := c.dialDevice(addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netdist: dial %s: %w", addr, err)
		}
		c.conns = append(c.conns, dc)
		c.dm = append(c.dm, newCoordDevMetrics(i))
	}
	devices := make([]engine.Device, len(c.conns))
	for i := range devices {
		devices[i] = &remoteDevice{c: c, server: i, as: -1}
	}
	// The coordinator holds no allocator (servers do their own inverse
	// mapping), so its plans are summaries: cached |R(q)| and bound per
	// shape, computed once — keeping the audit's strict bound stable
	// across the workload instead of re-deriving it per retrieval.
	eng, err := engine.New(engine.Config{
		Schema:       file,
		Devices:      devices,
		Observer:     coordObserver{},
		Tracer:       c.tracer,
		Span:         "netdist.retrieve",
		Audit:        audit.For(c.backend),
		Plans:        plancache.New(c.backend),
		Profile:      c.prof,
		Flight:       obs.FlightRecorderFor(c.backend),
		Events:       telemetry.LogFor(c.backend),
		NoPool:       c.noPool,
		ArenaResults: c.arena,
	})
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("netdist: %w", err)
	}
	c.eng = eng
	c.feng = eng.Derive("netdist.retrieve-failover", c.failover)
	if c.rcfg != nil {
		c.ctrl = retry.NewController(c.backend, *c.rcfg)
		// Hedge backups impersonate the slow device against its ring
		// successor's backup partition — only the failover path may
		// hedge (a plain deployment's successor has no copy to answer
		// from).
		backup := func(dev int) engine.Device {
			return &remoteDevice{c: c, server: (dev + 1) % len(addrs), as: dev}
		}
		c.eng = eng.DeriveResilience("netdist.retrieve", c.ctrl.Resilience(nil, nil))
		c.feng = eng.DeriveResilience("netdist.retrieve-failover", c.ctrl.Resilience(c.failover, backup))
	}
	return c, nil
}

// dialDevice connects to one device server and negotiates the wire
// protocol: the binary magic goes out first, and a server that acks it
// speaks binary frames. No ack within the handshake window means an old
// gob-only server (which reads the magic as a corrupt stream and hangs
// or drops the connection) — redial and speak gob.
func (c *Coordinator) dialDevice(addr string) (*deviceConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	window := 2 * time.Second
	if c.timeout > 0 && c.timeout < window {
		window = c.timeout
	}
	if negotiateClient(conn, window) {
		return newDeviceConn(conn, addr, true, c.noPool, c.arena), nil
	}
	conn.Close()
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newDeviceConn(conn, addr, false, c.noPool, c.arena), nil
}

// negotiateClient offers the binary protocol and reports whether the
// server acked it before the deadline.
func negotiateClient(conn net.Conn, window time.Duration) bool {
	if _, err := conn.Write(wireMagic[:]); err != nil {
		return false
	}
	conn.SetReadDeadline(time.Now().Add(window)) //nolint:errcheck // best effort
	var ack [len(wireMagic)]byte
	_, err := io.ReadFull(conn, ack[:])
	conn.SetReadDeadline(time.Time{}) //nolint:errcheck // best effort
	return err == nil && ack == wireMagic
}

// Controller returns the coordinator's retry controller, nil without
// WithResilience.
func (c *Coordinator) Controller() *retry.Controller { return c.ctrl }

// conn returns device dev's current connection.
func (c *Coordinator) conn(dev int) *deviceConn {
	c.connMu.RLock()
	defer c.connMu.RUnlock()
	return c.conns[dev]
}

// StartHealthProbes pings every device server each interval: a dead
// connection is redialed, and the ping outcome drives the device's
// circuit breaker (a successful probe closes a half-open breaker, so a
// restarted server rejoins without waiting for live traffic to risk
// it). Idempotent; Close stops the prober.
func (c *Coordinator) StartHealthProbes(interval time.Duration) {
	c.probeMu.Lock()
	defer c.probeMu.Unlock()
	if c.probeStop != nil {
		return
	}
	stop := make(chan struct{})
	c.probeStop = stop
	c.probeWG.Add(1)
	go func() {
		defer c.probeWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

func (c *Coordinator) probeAll() {
	c.connMu.RLock()
	m := len(c.conns)
	c.connMu.RUnlock()
	for dev := 0; dev < m; dev++ {
		dc := c.conn(dev)
		if dc.dead() != nil {
			fresh, err := c.dialDevice(dc.addr)
			if err != nil {
				// Still down; charge the breaker so it keeps cooling.
				if c.ctrl != nil {
					c.ctrl.Probe(dev, func() error { return err })
				}
				continue
			}
			c.connMu.Lock()
			c.conns[dev] = fresh
			c.connMu.Unlock()
			dc.conn.Close()
			dc = fresh
		}
		ping := func() error {
			ctx, cancel := context.WithTimeout(context.Background(), c.probeTimeout())
			defer cancel()
			_, _, _, _, err := dc.roundTrip(ctx, Request{Ping: true, AsDevice: -1}, c.timeout)
			return err
		}
		if c.ctrl != nil {
			c.ctrl.Probe(dev, ping)
		} else {
			ping() //nolint:errcheck // next tick retries
		}
	}
}

// Federator exposes the coordinator's fleet accumulator (for rendering
// a report without going through /debug/cluster).
func (c *Coordinator) Federator() *telemetry.Federator { return c.fed }

// nodeName is the federator's key for device dev — fixed by the
// coordinator's own indexing so a failed pull and a successful one land
// on the same row.
func nodeName(dev int) string { return fmt.Sprintf("device-%d", dev) }

// PullStats fetches every device server's telemetry snapshot over the
// wire protocol and folds the results into the coordinator's federator.
// Alongside each node's own snapshot it hands the federator the
// coordinator's cumulative transport-error count for that device, so a
// node whose requests are failing at the coordinator seam (injected
// faults, flaky network) gets flagged even when its stats pull — a
// fresh, uninjected round trip — succeeds. The first pull registers the
// fleet on /debug/cluster. Returns the first pull error, if any.
func (c *Coordinator) PullStats(ctx context.Context) error {
	c.fleetOnce.Do(func() {
		telemetry.RegisterFleet(c.fleetName, c.fed.Report)
		c.fleetRegistered.Store(true)
	})
	c.connMu.RLock()
	m := len(c.conns)
	c.connMu.RUnlock()
	var firstErr error
	for dev := 0; dev < m; dev++ {
		dc := c.conn(dev)
		coordErrs := c.dm[dev].errors.Value()
		pctx, cancel := context.WithTimeout(ctx, c.probeTimeout())
		resp, _, _, _, err := dc.roundTrip(pctx, Request{Stats: true, AsDevice: -1}, c.timeout)
		cancel()
		if err == nil && resp.Err != "" {
			err = errors.New(resp.Err)
		}
		if err == nil && len(resp.StatsJSON) == 0 {
			err = errors.New("netdist: server answered stats pull without a snapshot (pre-stats peer?)")
		}
		var st telemetry.NodeStats
		if err == nil {
			st, err = telemetry.DecodeNodeStats(resp.StatsJSON)
		}
		if err != nil {
			c.fed.ObserveFailure(nodeName(dev), err, coordErrs)
			if firstErr == nil {
				firstErr = fmt.Errorf("netdist: stats pull device %d (%s): %w", dev, dc.addr, err)
			}
			continue
		}
		c.fed.ObserveNode(nodeName(dev), st, coordErrs)
	}
	return firstErr
}

// StartStatsPull pulls every device's stats each interval, keeping the
// /debug/cluster fleet view fresh. Idempotent; Close stops the loop. An
// immediate first pull runs synchronously so the fleet view is populated
// as soon as this returns.
func (c *Coordinator) StartStatsPull(interval time.Duration) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if c.statsStop != nil {
		return
	}
	c.PullStats(context.Background()) //nolint:errcheck // failures land in the federator
	stop := make(chan struct{})
	c.statsStop = stop
	c.statsWG.Add(1)
	go func() {
		defer c.statsWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.PullStats(context.Background()) //nolint:errcheck // failures land in the federator
			}
		}
	}()
}

// probeTimeout bounds one health ping even when no request timeout is
// configured.
func (c *Coordinator) probeTimeout() time.Duration {
	if c.timeout > 0 {
		return c.timeout
	}
	return 2 * time.Second
}

// coordObserver maps the engine's retrieval events onto the coordinator's
// whole-query instruments.
type coordObserver struct{}

func (coordObserver) RetrieveStarted() { mCoordRetrieves.Inc() }
func (coordObserver) RetrieveError()   { mCoordRetrieveErrors.Inc() }
func (coordObserver) RetrieveDone(elapsed time.Duration, _ []int) {
	mCoordRetrieveLatency.Observe(elapsed.Seconds())
}

// RetrieveExemplar implements engine.ExemplarObserver: a tail-sampled
// retrieval links its latency bucket to the retained trace.
func (coordObserver) RetrieveExemplar(elapsed time.Duration, traceID uint64) {
	mCoordRetrieveLatency.SetExemplar(elapsed.Seconds(), traceID)
}

// remoteDevice adapts one device server connection to the engine's Device
// contract: the bucket query travels as a gob Request and the server does
// its own inverse mapping and value re-check. as >= 0 impersonates a dead
// device against the server holding its backup partition (failover).
type remoteDevice struct {
	c      *Coordinator
	server int
	as     int
}

func (d *remoteDevice) Scan(ctx context.Context, q query.Query, pm mkhash.PartialMatch) (engine.Answer, error) {
	req := NewRequest(q.Spec, pm)
	req.AsDevice = d.as
	req.Epoch = d.c.epoch
	if span := engine.SpanFromContext(ctx); span != nil {
		req.TraceID, req.ParentSpan = span.Trace(), span.SpanID()
	}
	resp, release, err := d.c.ask(ctx, d.server, req, q.Shape())
	if err != nil {
		return engine.Answer{}, err
	}
	return engine.Answer{Buckets: resp.Buckets, Records: resp.Scanned, Hits: resp.Records, Release: release}, nil
}

// failover is the engine retry policy for replicated deployments: a
// transport failure on a device re-asks its ring successor to answer from
// the backup copy. Remote rejections (the server answered and said no)
// are not retried — the backup would reject the same request.
func (c *Coordinator) failover(ctx context.Context, dev int, err error) engine.Device {
	var derr *DeviceError
	if errors.As(err, &derr) && derr.Remote {
		return nil
	}
	m := len(c.conns)
	c.dm[dev].failovers.Inc()
	engine.SpanFromContext(ctx).Event(
		fmt.Sprintf("failover: re-asking ring successor %d for device %d", (dev+1)%m, dev))
	return &remoteDevice{c: c, server: (dev + 1) % m, as: dev}
}

// Close stops the health prober and the stats puller, unregisters the
// fleet view, drops all device connections, and releases the plan cache.
func (c *Coordinator) Close() {
	c.probeMu.Lock()
	if c.probeStop != nil {
		close(c.probeStop)
		c.probeStop = nil
	}
	c.probeMu.Unlock()
	c.probeWG.Wait()
	c.statsMu.Lock()
	if c.statsStop != nil {
		close(c.statsStop)
		c.statsStop = nil
	}
	c.statsMu.Unlock()
	c.statsWG.Wait()
	if c.fleetRegistered.Swap(false) {
		telemetry.RegisterFleet(c.fleetName, nil)
	}
	if c.eng != nil && c.eng.Plans() != nil {
		c.eng.Plans().Close()
	}
	c.connMu.Lock()
	defer c.connMu.Unlock()
	for _, dc := range c.conns {
		if dc != nil {
			dc.conn.Close()
		}
	}
}

// PlanCache returns the coordinator's per-shape plan cache.
func (c *Coordinator) PlanCache() *plancache.Cache { return c.eng.Plans() }

// M returns the device count.
func (c *Coordinator) M() int { return len(c.conns) }

// Backend returns the telemetry label the coordinator registers under
// (see WithBackendName).
func (c *Coordinator) Backend() string { return c.backend }

// Epoch returns the declustering epoch stamped on this coordinator's
// queries (see WithEpoch).
func (c *Coordinator) Epoch() int { return c.epoch }

// Addrs returns the device server addresses in device order — what the
// rescale needs to dial the new-epoch coordinator over a superset (or
// prefix) of the old one's servers.
func (c *Coordinator) Addrs() []string {
	c.connMu.RLock()
	defer c.connMu.RUnlock()
	addrs := make([]string, len(c.conns))
	for i, dc := range c.conns {
		addrs[i] = dc.addr
	}
	return addrs
}

// EngineRetrieve runs one retrieval and returns the raw engine result —
// the seam the dual-read combinator (engine.DualReader) races two
// coordinators through during a rescale window.
func (c *Coordinator) EngineRetrieve(ctx context.Context, pm mkhash.PartialMatch) (engine.Result, error) {
	return c.eng.Retrieve(ctx, pm)
}

// ask runs one instrumented round trip against device dev's server,
// classifying errors into the per-device counters and wrapping failures
// with the device id, server address and wire request id. The retrieval
// span travels in ctx (see engine.SpanFromContext); shape, when
// non-empty, attributes the round trip's wire stages (dispatch → first
// byte → decode) to the query shape in the netdist cost profile. The
// returned release func (nil outside arena mode) owns the response's
// record arena; the caller folds it into the result's lease.
func (c *Coordinator) ask(ctx context.Context, dev int, req Request, shape string) (Response, func(), error) {
	dc := c.conn(dev)
	span := engine.SpanFromContext(ctx)
	dm := &c.dm[dev]
	if c.injector != nil {
		if ierr := c.injector.Before(ctx, dev); ierr != nil {
			// Injected faults look like transport failures so the whole
			// resilience stack (retry, breaker, failover) exercises for
			// real.
			dm.errors.Inc()
			derr := &DeviceError{Device: req.targetDevice(dev), Addr: dc.addr, TraceID: span.Trace(), Err: ierr}
			span.Event(derr.Error())
			return Response{}, nil, derr
		}
	}
	dm.inflight.Inc()
	t0 := time.Now()
	resp, id, ws, release, err := dc.roundTrip(ctx, req, c.timeout)
	dm.latency.ObserveSince(t0)
	dm.inflight.Dec()
	if shape != "" && c.prof != nil && err == nil {
		c.prof.ObserveSamples(shape, []obs.StageSample{
			{Stage: obs.StageNetDispatch, Wall: ws.Dispatch, Bytes: ws.OutBytes},
			{Stage: obs.StageNetWait, Wall: ws.Wait},
			{Stage: obs.StageNetDecode, Wall: ws.Decode, Bytes: ws.InBytes},
		})
	}
	if err != nil {
		dm.errors.Inc()
		if errors.Is(err, ErrTimeout) {
			dm.timeouts.Inc()
		}
		derr := &DeviceError{Device: req.targetDevice(dev), Addr: dc.addr, RequestID: id, TraceID: span.Trace(), Err: err}
		span.Event(derr.Error())
		return Response{}, nil, derr
	}
	if resp.Err != "" {
		// Rejections carry no records, but recycle defensively before
		// dropping the response.
		if release != nil {
			release()
		}
		dc.hits.Put(resp.Records)
		dm.errors.Inc()
		cause := error(errors.New(resp.Err))
		if resp.RetryAfterMillis > 0 {
			// The server is shedding load: carry its Retry-After hint so
			// the budget policy backs off at least that long before
			// re-asking the same server.
			cause = &retry.Cooldown{After: time.Duration(resp.RetryAfterMillis) * time.Millisecond, Err: cause}
		}
		derr := &DeviceError{Device: req.targetDevice(dev), Addr: dc.addr, RequestID: id, TraceID: span.Trace(), Remote: true, Err: cause}
		span.Event(derr.Error())
		return Response{}, nil, derr
	}
	span.SetRequestID(id)
	span.Event(fmt.Sprintf("device %d (%s) req %d: %d buckets, %d records in %v",
		req.targetDevice(dev), dc.addr, id, resp.Buckets, resp.Scanned, time.Since(t0)))
	return resp, release, nil
}

// targetDevice reports which device's partition req addresses when sent
// to server dev (failover requests impersonate the dead device).
func (r Request) targetDevice(server int) int {
	if r.AsDevice >= 0 {
		return r.AsDevice
	}
	return server
}

// Result is a merged distributed retrieval.
type Result struct {
	// TraceID identifies the retrieval's stitched span tree in
	// /debug/traces?tree=1 (coordinator root + one child per device).
	TraceID uint64
	// Records are the matching records, grouped by device in device order.
	Records []mkhash.Record
	// DeviceBuckets[i] / DeviceRecords[i] are device i's accessed bucket
	// and scanned record counts.
	DeviceBuckets []int
	DeviceRecords []int
	// LargestResponseSize is max(DeviceBuckets) — the paper's response
	// time determinant.
	LargestResponseSize int
	// Stages is the retrieval's cost-attribution breakdown (see
	// engine.Result.Stages).
	Stages []obs.StageSample

	// lease owns the pooled slabs behind Records under WithArenaResults;
	// see Release.
	lease *engine.Lease
}

// Release returns the result's pooled record slabs for reuse (under
// WithArenaResults; a no-op otherwise). After Release the Records and
// their field strings are invalid. Idempotent; never calling it leaves
// the slabs to the garbage collector.
func (r *Result) Release() { r.lease.Release() }

// Lease exposes the result's arena lease so facades re-wrapping the
// result can carry ownership along.
func (r Result) Lease() *engine.Lease { return r.lease }

// fromEngine projects the engine's merged result onto the wire-level
// Result (the coordinator attaches no cost model, so time fields drop).
func fromEngine(r engine.Result) Result {
	return Result{
		TraceID:             r.TraceID,
		Records:             r.Records,
		DeviceBuckets:       r.DeviceBuckets,
		DeviceRecords:       r.DeviceRecords,
		LargestResponseSize: r.LargestResponseSize,
		Stages:              r.Stages,
		lease:               r.Lease(),
	}
}

// Retrieve lowers the value-level query, broadcasts it to every device in
// parallel, and merges the responses. Any device error fails the whole
// retrieval (partial answers would silently drop matches); the error
// reports every failing device.
func (c *Coordinator) Retrieve(pm mkhash.PartialMatch) (Result, error) {
	return c.RetrieveContext(context.Background(), pm)
}

// RetrieveContext is Retrieve with cancellation and deadlines. Under
// WithResilience(Partial: true), a partially degraded retrieval returns
// the surviving devices' merged records alongside the *engine.PartialError
// manifest (match with errors.As).
func (c *Coordinator) RetrieveContext(ctx context.Context, pm mkhash.PartialMatch) (Result, error) {
	res, err := c.eng.Retrieve(ctx, pm)
	return fromEngine(res), err
}

// RetrieveBatch answers a batch of queries, pipelining all of them over
// the device connections at once; see engine.Executor.RetrieveBatch.
func (c *Coordinator) RetrieveBatch(ctx context.Context, pms []mkhash.PartialMatch) ([]Result, error) {
	engRes, err := c.eng.RetrieveBatch(ctx, pms)
	out := make([]Result, len(engRes))
	for i, r := range engRes {
		out[i] = fromEngine(r)
	}
	return out, err
}
