package netdist

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

func buildFile(t *testing.T, n int) *mkhash.File {
	t.Helper()
	f := mkhash.MustNew(mkhash.Schema{
		Fields: []string{"part", "supplier", "warehouse"},
		Depths: []int{3, 3, 2},
	})
	for i := 0; i < n; i++ {
		r := mkhash.Record{
			fmt.Sprintf("part%d", i%40),
			fmt.Sprintf("sup%d", i%11),
			fmt.Sprintf("wh%d", i%5),
		}
		if err := f.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func deploy(t *testing.T, file *mkhash.File, m int) (*Coordinator, func()) {
	t.Helper()
	fs, err := file.FileSystem(m)
	if err != nil {
		t.Fatal(err)
	}
	fx := decluster.MustFX(fs)
	addrs, stop, err := Deploy(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := Dial(file, addrs)
	if err != nil {
		stop()
		t.Fatal(err)
	}
	return coord, func() { coord.Close(); stop() }
}

func recordKeys(recs []mkhash.Record) []string {
	keys := make([]string, len(recs))
	for i, r := range recs {
		keys[i] = r[0] + "|" + r[1] + "|" + r[2]
	}
	sort.Strings(keys)
	return keys
}

// Distributed retrieval must return exactly what a local search returns,
// across query shapes.
func TestDistributedMatchesLocalSearch(t *testing.T) {
	file := buildFile(t, 400)
	coord, cleanup := deploy(t, file, 8)
	defer cleanup()

	specs := []map[string]string{
		{"supplier": "sup3"},
		{"part": "part7", "warehouse": "wh2"},
		{"part": "part0", "supplier": "sup0", "warehouse": "wh0"},
		{},
		{"supplier": "no-such"},
	}
	for _, s := range specs {
		pm, err := file.Spec(s)
		if err != nil {
			t.Fatal(err)
		}
		want, err := file.Search(pm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.Retrieve(pm)
		if err != nil {
			t.Fatal(err)
		}
		g, w := recordKeys(got.Records), recordKeys(want)
		if len(g) != len(w) {
			t.Fatalf("spec %v: distributed %d records, local %d", s, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("spec %v: record sets differ", s)
			}
		}
	}
}

// Per-device bucket counts over the wire must equal the allocator's load
// vector.
func TestDistributedBucketAccounting(t *testing.T) {
	file := buildFile(t, 300)
	fs, _ := file.FileSystem(8)
	fx := decluster.MustFX(fs)
	addrs, stop, err := Deploy(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	coord, err := Dial(file, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	pm, _ := file.Spec(map[string]string{"warehouse": "wh1"})
	res, err := coord.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := file.BucketQuery(pm)
	loads := query.Loads(fx, q)
	for dev, b := range res.DeviceBuckets {
		if b != loads[dev] {
			t.Errorf("device %d reported %d buckets, load vector says %d", dev, b, loads[dev])
		}
	}
	if res.LargestResponseSize == 0 {
		t.Error("largest response size not computed")
	}
}

// Concurrent retrievals over the same coordinator must not interleave
// corruptly.
func TestDistributedConcurrentRetrievals(t *testing.T) {
	file := buildFile(t, 300)
	coord, cleanup := deploy(t, file, 4)
	defer cleanup()

	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pm, err := file.Spec(map[string]string{"supplier": fmt.Sprintf("sup%d", i%11)})
			if err != nil {
				errs <- err
				return
			}
			want, err := file.Search(pm)
			if err != nil {
				errs <- err
				return
			}
			got, err := coord.Retrieve(pm)
			if err != nil {
				errs <- err
				return
			}
			if len(got.Records) != len(want) {
				errs <- fmt.Errorf("sup%d: got %d, want %d", i%11, len(got.Records), len(want))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestNewServerRejectsForeignBuckets(t *testing.T) {
	file := buildFile(t, 100)
	fs, _ := file.FileSystem(4)
	fx := decluster.MustFX(fs)
	spec, err := decluster.SpecOf(fx)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Partition(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	// Hand device 0's partition to device 1: must be rejected.
	if len(parts[0]) == 0 {
		t.Skip("device 0 happens to hold no buckets")
	}
	if _, err := NewServer(1, spec, parts[0]); err == nil {
		t.Error("foreign bucket partition accepted")
	}
	if _, err := NewServer(9, spec, nil); err == nil {
		t.Error("out-of-range device id accepted")
	}
	if _, err := NewServer(0, spec, map[int][]mkhash.Record{1 << 20: nil}); err == nil {
		t.Error("out-of-grid bucket index accepted")
	}
}

func TestServerRejectsMalformedRequests(t *testing.T) {
	file := buildFile(t, 50)
	fs, _ := file.FileSystem(4)
	fx := decluster.MustFX(fs)
	addrs, stop, err := Deploy(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	coord, err := Dial(file, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Out-of-domain hashed value.
	resp, _, _, _, err := coord.conns[0].roundTrip(context.Background(), NewRequest(
		[]int{99, query.Unspecified, query.Unspecified}, make(mkhash.PartialMatch, 3)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Error("out-of-domain query accepted")
	}
	// Wrong value-filter arity.
	resp, _, _, _, err = coord.conns[0].roundTrip(context.Background(), NewRequest(
		[]int{0, query.Unspecified, query.Unspecified}, make(mkhash.PartialMatch, 1)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Error("wrong filter arity accepted")
	}
}

func TestPartitionValidation(t *testing.T) {
	file := buildFile(t, 10)
	wrongArity := decluster.MustFileSystem([]int{8, 8}, 4)
	if _, err := Partition(file, decluster.MustFX(wrongArity)); err == nil {
		t.Error("arity mismatch accepted")
	}
	wrongSize := decluster.MustFileSystem([]int{4, 8, 4}, 4)
	if _, err := Partition(file, decluster.MustFX(wrongSize)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestDialFailure(t *testing.T) {
	file := buildFile(t, 10)
	if _, err := Dial(file, []string{"127.0.0.1:1"}); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestServerCloseStopsServe(t *testing.T) {
	file := buildFile(t, 20)
	fs, _ := file.FileSystem(2)
	fx := decluster.MustFX(fs)
	spec, _ := decluster.SpecOf(fx)
	parts, _ := Partition(file, fx)
	srv, err := NewServer(0, spec, parts[0])
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	srv.Close()
	if err := <-done; err != nil {
		t.Errorf("Serve returned %v after Close, want nil", err)
	}
	// Serve on a closed server returns immediately without error.
	if err := srv.Serve(l); err != nil {
		t.Errorf("Serve on closed server returned %v, want nil", err)
	}
}
