package netdist

import (
	"context"
	"sort"
	"testing"
	"time"

	"fxdist/internal/decluster"
)

// Healthy replicated deployment answers exactly like the local search.
func TestReplicatedDeployHealthy(t *testing.T) {
	file := buildFile(t, 400)
	fs, _ := file.FileSystem(8)
	fx := decluster.MustFX(fs)
	addrs, stop, err := DeployReplicated(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	coord, err := Dial(file, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	pm, _ := file.Spec(map[string]string{"supplier": "sup4"})
	want, _ := file.Search(pm)
	got, err := coord.RetrieveWithFailover(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want) {
		t.Fatalf("got %d records, want %d", len(got.Records), len(want))
	}
}

// Killing one server: RetrieveWithFailover still returns the complete
// answer via the successor's backup partition, while plain Retrieve
// fails.
func TestFailoverSurvivesOneServerDeath(t *testing.T) {
	file := buildFile(t, 400)
	fs, _ := file.FileSystem(4)
	fx := decluster.MustFX(fs)

	// Deploy servers individually so one can be killed.
	spec, err := decluster.SpecOf(fx)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Partition(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*Server, 4)
	addrs := make([]string, 4)
	for dev := 0; dev < 4; dev++ {
		prev := (dev + 3) % 4
		srv, err := NewReplicatedServer(dev, spec, parts[dev], parts[prev])
		if err != nil {
			t.Fatal(err)
		}
		l, err := newLoopbackListener(t)
		if err != nil {
			t.Fatal(err)
		}
		servers[dev] = srv
		addrs[dev] = l.Addr().String()
		go srv.Serve(l) //nolint:errcheck
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	coord, err := Dial(file, addrs, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	pm, _ := file.Spec(map[string]string{"warehouse": "wh3"})
	want := recordKeys(mustSearch(t, file, pm))

	// Healthy failover path returns everything.
	got, err := coord.RetrieveWithFailover(pm)
	if err != nil {
		t.Fatal(err)
	}
	if g := recordKeys(got.Records); !equalKeys(g, want) {
		t.Fatal("healthy failover answer differs from reference")
	}

	// Kill device 2's server.
	servers[2].Close()
	// Wait until the coordinator notices the dead connection.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := coord.Retrieve(pm); err != nil {
			break // plain retrieve now fails
		}
		if time.Now().After(deadline) {
			t.Fatal("plain retrieve kept succeeding after server death")
		}
		time.Sleep(10 * time.Millisecond)
	}
	got, err = coord.RetrieveWithFailover(pm)
	if err != nil {
		t.Fatalf("failover retrieve failed: %v", err)
	}
	if g := recordKeys(got.Records); !equalKeys(g, want) {
		t.Fatal("failover answer differs from reference after server death")
	}
	// The dead device's buckets are accounted to it (served by backup).
	if got.DeviceBuckets[2] == 0 {
		t.Log("note: device 2 had no qualified buckets for this query")
	}
}

// Backup partition validation: handing the wrong partition as backup must
// be rejected.
func TestNewReplicatedServerValidation(t *testing.T) {
	file := buildFile(t, 100)
	fs, _ := file.FileSystem(4)
	fx := decluster.MustFX(fs)
	spec, _ := decluster.SpecOf(fx)
	parts, _ := Partition(file, fx)
	// Device 1's backup must be device 0's partition, not device 2's.
	if len(parts[2]) == 0 {
		t.Skip("device 2 holds no buckets")
	}
	if _, err := NewReplicatedServer(1, spec, parts[1], parts[2]); err == nil {
		t.Error("wrong backup partition accepted")
	}
	if _, err := NewReplicatedServer(1, spec, parts[1], parts[0]); err != nil {
		t.Errorf("correct backup partition rejected: %v", err)
	}
}

// A plain (non-replicated) server rejects AsDevice requests.
func TestPlainServerRejectsAsDevice(t *testing.T) {
	coord, cleanup := deploy(t, buildFile(t, 50), 4)
	defer cleanup()
	pm := make([]*string, 3)
	q, _ := coord.file.BucketQuery(pm)
	req := NewRequest(q.Spec, pm)
	req.AsDevice = 0 // ask server 1 to impersonate device 0
	resp, _, _, _, err := coord.conns[1].roundTrip(context.Background(), req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Error("plain server accepted an AsDevice request")
	}
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
