package netdist

import (
	"context"
	"encoding/json"
	"net"
	"reflect"
	"strings"
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/mkhash"
)

func TestRequestRescaleExtRoundTrip(t *testing.T) {
	reqs := []Request{
		{AsDevice: -1, Control: OpPrepare, SpecJSON: []byte(`{"M":8}`)},
		{AsDevice: -1, Control: OpFetch, Bucket: 17, Epoch: 3},
		{AsDevice: -1, Control: OpInstall, Bucket: 5, Payload: []mkhash.Record{
			{"a", "b"}, {"", "x\x00y"},
		}},
		{AsDevice: -1, Epoch: 1}, // epoch-stamped query, no control op
		{AsDevice: -1, Control: OpCutover},
		{AsDevice: -1, Control: OpAbort, Bucket: -3},
	}
	for i, req := range reqs {
		payload := appendRequest(nil, &req)
		if len(payload) != requestSize(&req) {
			t.Fatalf("case %d: encoded %d bytes, requestSize says %d", i, len(payload), requestSize(&req))
		}
		// Decode into a dirty Request: ext fields must be replaced, not
		// inherited.
		got := Request{Epoch: 99, Control: 99, Bucket: 99, SpecJSON: []byte("stale")}
		if err := decodeRequest(payload, &got); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if req.Spec == nil {
			req.Spec = []int{}
		}
		if req.Specified == nil {
			req.Specified, req.Values = []bool{}, []string{}
		}
		if !reflect.DeepEqual(req, got) {
			t.Fatalf("case %d: round trip mismatch:\nsent %+v\ngot  %+v", i, req, got)
		}
	}
}

func TestPlainRequestResetsExtFields(t *testing.T) {
	plain := NewRequest([]int{0, 1, 2}, mkhash.PartialMatch{str("a"), nil, nil})
	payload := appendRequest(nil, &plain)
	got := Request{Epoch: 7, Control: OpFetch, Bucket: 12, SpecJSON: []byte("x"), Payload: []mkhash.Record{{"y"}}}
	if err := decodeRequest(payload, &got); err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 0 || got.Control != 0 || got.Bucket != 0 || got.SpecJSON != nil || got.Payload != nil {
		t.Fatalf("ext fields survived a plain request: %+v", got)
	}
}

// deployRescaleFixture starts an oldM-device cluster plus empty rescale
// targets for devices oldM..newM-1, and dials coordinators at both
// epochs. The returned allocator is the one the old fleet was deployed
// under.
func deployRescaleFixture(t *testing.T, file *mkhash.File, oldM, newM int) (
	oldAlloc decluster.GroupAllocator, newSpec decluster.Spec,
	oldCoord, newCoord *Coordinator, cleanup func()) {
	t.Helper()
	fs, err := file.FileSystem(oldM)
	if err != nil {
		t.Fatal(err)
	}
	oldAlloc = decluster.MustFX(fs)
	oldSpec, err := decluster.SpecOf(oldAlloc)
	if err != nil {
		t.Fatal(err)
	}
	newSpec, err = oldSpec.Rescaled(newM)
	if err != nil {
		t.Fatal(err)
	}
	addrs, stopOld, err := Deploy(file, oldAlloc)
	if err != nil {
		t.Fatal(err)
	}
	closers := []func(){stopOld}
	cleanup = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	allAddrs := append([]string(nil), addrs...)
	for dev := oldM; dev < newM; dev++ {
		srv, err := NewServer(dev, newSpec, map[int][]mkhash.Record{})
		if err != nil {
			cleanup()
			t.Fatal(err)
		}
		srv.SetEpoch(1)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			t.Fatal(err)
		}
		closers = append(closers, srv.Close)
		allAddrs = append(allAddrs, l.Addr().String())
		go srv.Serve(l) //nolint:errcheck // ends when srv.Close closes l
	}
	oldCoord, err = Dial(file, addrs)
	if err != nil {
		cleanup()
		t.Fatal(err)
	}
	closers = append(closers, oldCoord.Close)
	newCoord, err = Dial(file, allAddrs, WithBackendName("netdist-next-test"), WithEpoch(1))
	if err != nil {
		cleanup()
		t.Fatal(err)
	}
	closers = append(closers, newCoord.Close)
	return oldAlloc, newSpec, oldCoord, newCoord, cleanup
}

// copyMoves streams every bucket whose owner changes between the two
// allocators, stopping after limit moves (limit < 0 means all). Returns
// how many buckets it moved.
func copyMoves(t *testing.T, ctx context.Context, coord *Coordinator,
	oldAlloc, newAlloc decluster.GroupAllocator, limit int) int {
	t.Helper()
	fs := oldAlloc.FileSystem()
	moved := 0
	fs.EachBucket(func(b []int) {
		if limit >= 0 && moved >= limit {
			return
		}
		from, to := oldAlloc.Device(b), newAlloc.Device(b)
		if from == to {
			return
		}
		idx := fs.Linear(b)
		recs, err := coord.FetchBucket(ctx, from, idx)
		if err != nil {
			t.Fatalf("fetch bucket %d from device %d: %v", idx, from, err)
		}
		if err := coord.InstallBucket(ctx, to, idx, recs); err != nil {
			t.Fatalf("install bucket %d on device %d: %v", idx, to, err)
		}
		moved++
	})
	return moved
}

// TestRescaleProtocolGrow drives the raw control ops through a 2→4 grow
// and checks both epochs answer correctly before and after cutover.
func TestRescaleProtocolGrow(t *testing.T) {
	file := buildFile(t, 300)
	ctx := context.Background()
	oldAlloc, newSpec, oldCoord, newCoord, cleanup := deployRescaleFixture(t, file, 2, 4)
	defer cleanup()

	pm := mkhash.PartialMatch{str("part7"), nil, nil}
	want, err := file.Search(pm)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := oldCoord.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Records) != len(want) {
		t.Fatalf("baseline %d records, want %d", len(baseline.Records), len(want))
	}

	for dev := 0; dev < 2; dev++ {
		if err := newCoord.Prepare(ctx, dev, newSpec); err != nil {
			t.Fatalf("prepare %d: %v", dev, err)
		}
		// Idempotent re-prepare (the crash-resume path).
		if err := newCoord.Prepare(ctx, dev, newSpec); err != nil {
			t.Fatalf("re-prepare %d: %v", dev, err)
		}
	}
	newAlloc, err := newSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if moved := copyMoves(t, ctx, newCoord, oldAlloc, newAlloc, -1); moved == 0 {
		t.Fatal("fixture moved no buckets")
	}

	// Both epochs must now answer identically.
	oldRes, err := oldCoord.Retrieve(pm)
	if err != nil {
		t.Fatalf("old epoch mid-rescale: %v", err)
	}
	newRes, err := newCoord.Retrieve(pm)
	if err != nil {
		t.Fatalf("new epoch pre-cutover: %v", err)
	}
	if !reflect.DeepEqual(recordKeys(oldRes.Records), recordKeys(newRes.Records)) {
		t.Fatal("epochs disagree before cutover")
	}

	for dev := 0; dev < 4; dev++ {
		if err := newCoord.CutoverDevice(ctx, dev); err != nil {
			t.Fatalf("cutover %d: %v", dev, err)
		}
	}
	// The old epoch is gone: epoch-0 queries are rejected by the
	// promoted servers.
	if _, err := oldCoord.Retrieve(pm); err == nil {
		t.Fatal("old-epoch query succeeded after cutover")
	} else if !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("old-epoch query failed for the wrong reason: %v", err)
	}
	// The new epoch answers the full result set.
	final, err := newCoord.Retrieve(pm)
	if err != nil {
		t.Fatalf("new epoch post-cutover: %v", err)
	}
	if !reflect.DeepEqual(recordKeys(final.Records), recordKeys(baseline.Records)) {
		t.Fatal("post-cutover records differ from baseline")
	}
}

// TestRescaleProtocolAbort installs a few buckets, aborts, and checks
// the fleet rolls back to exactly the old epoch.
func TestRescaleProtocolAbort(t *testing.T) {
	file := buildFile(t, 200)
	ctx := context.Background()
	oldAlloc, newSpec, oldCoord, newCoord, cleanup := deployRescaleFixture(t, file, 2, 4)
	defer cleanup()

	pm := mkhash.PartialMatch{nil, str("sup3"), nil}
	baseline, err := oldCoord.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	for dev := 0; dev < 2; dev++ {
		if err := newCoord.Prepare(ctx, dev, newSpec); err != nil {
			t.Fatal(err)
		}
	}
	newAlloc, err := newSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if moved := copyMoves(t, ctx, newCoord, oldAlloc, newAlloc, 5); moved == 0 {
		t.Fatal("fixture moved no buckets")
	}
	for dev := 0; dev < 4; dev++ {
		if err := newCoord.AbortRescale(ctx, dev); err != nil {
			t.Fatalf("abort %d: %v", dev, err)
		}
	}
	// Old epoch unchanged; the next epoch is no longer served by the
	// survivors.
	after, err := oldCoord.Retrieve(pm)
	if err != nil {
		t.Fatalf("old epoch after abort: %v", err)
	}
	if !reflect.DeepEqual(recordKeys(after.Records), recordKeys(baseline.Records)) {
		t.Fatal("old epoch changed across an aborted rescale")
	}
	if _, err := newCoord.Retrieve(pm); err == nil {
		t.Fatal("aborted next epoch still answers")
	}
}

// TestRescalePartialCutoverReplayConverges replays the driver's
// recovery sequence after a partial cutover: some devices promoted,
// others didn't, and a rebuilt driver re-broadcasts Prepare to the
// survivors followed by Cutover to the union. Prepare on an
// already-promoted server must not manufacture a spurious next view —
// otherwise the replayed cutover bumps it a second epoch ahead of the
// stragglers and the fleet diverges instead of converging.
func TestRescalePartialCutoverReplayConverges(t *testing.T) {
	file := buildFile(t, 200)
	ctx := context.Background()
	oldAlloc, newSpec, oldCoord, newCoord, cleanup := deployRescaleFixture(t, file, 2, 4)
	defer cleanup()

	pm := mkhash.PartialMatch{nil, str("sup3"), nil}
	baseline, err := oldCoord.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	for dev := 0; dev < 2; dev++ {
		if err := newCoord.Prepare(ctx, dev, newSpec); err != nil {
			t.Fatalf("prepare %d: %v", dev, err)
		}
	}
	newAlloc, err := newSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if moved := copyMoves(t, ctx, newCoord, oldAlloc, newAlloc, -1); moved == 0 {
		t.Fatal("fixture moved no buckets")
	}

	// Partial cutover: device 0 promotes, device 1 stays a straggler
	// (the crash/partition point).
	if err := newCoord.CutoverDevice(ctx, 0); err != nil {
		t.Fatal(err)
	}

	// Recovery replay, twice — convergence must also be stable under
	// repeated replays.
	for round := 0; round < 2; round++ {
		for dev := 0; dev < 2; dev++ {
			if err := newCoord.Prepare(ctx, dev, newSpec); err != nil {
				t.Fatalf("round %d: replay prepare %d: %v", round, dev, err)
			}
		}
		for dev := 0; dev < 4; dev++ {
			if err := newCoord.CutoverDevice(ctx, dev); err != nil {
				t.Fatalf("round %d: replay cutover %d: %v", round, dev, err)
			}
		}
		// Every device now answers at the new epoch — a double-promoted
		// device would reject the coordinator's epoch-1 queries.
		final, err := newCoord.Retrieve(pm)
		if err != nil {
			t.Fatalf("round %d: new epoch after replay: %v", round, err)
		}
		if !reflect.DeepEqual(recordKeys(final.Records), recordKeys(baseline.Records)) {
			t.Fatalf("round %d: post-replay records differ from baseline", round)
		}
	}
}

// TestRescaleControlValidation exercises the server-side rejection
// paths over the wire.
func TestRescaleControlValidation(t *testing.T) {
	file := buildFile(t, 100)
	ctx := context.Background()
	_, newSpec, _, newCoord, cleanup := deployRescaleFixture(t, file, 2, 4)
	defer cleanup()

	if err := newCoord.Prepare(ctx, 0, newSpec); err != nil {
		t.Fatal(err)
	}
	newAlloc, err := newSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	fs := newAlloc.FileSystem()

	// Installing a bucket on a device that does not own it under the
	// prepared spec must be rejected.
	foreign := -1
	fs.EachBucket(func(b []int) {
		if foreign < 0 && newAlloc.Device(b) != 0 {
			foreign = fs.Linear(b)
		}
	})
	if foreign < 0 {
		t.Fatal("no bucket owned by another device")
	}
	if err := newCoord.InstallBucket(ctx, 0, foreign, nil); err == nil {
		t.Fatal("install accepted on a non-owner")
	}

	// Buckets outside the grid.
	if err := newCoord.InstallBucket(ctx, 0, fs.NumBuckets()+10, nil); err == nil {
		t.Fatal("install accepted an out-of-grid bucket")
	}
	if _, err := newCoord.FetchBucket(ctx, 0, -1); err == nil {
		t.Fatal("fetch accepted a negative bucket")
	}

	// A conflicting prepared spec must be rejected until aborted.
	other := newSpec
	other.Method = decluster.MethodModulo
	other.Kinds = nil
	if err := newCoord.Prepare(ctx, 0, other); err == nil {
		t.Fatal("conflicting prepare accepted")
	}

	// Queries at an unserved epoch are rejected.
	bogus, err := Dial(file, newCoord.Addrs(), WithBackendName("bogus-epoch"), WithEpoch(7))
	if err != nil {
		t.Fatal(err)
	}
	defer bogus.Close()
	if _, err := bogus.Retrieve(mkhash.PartialMatch{str("part1"), nil, nil}); err == nil {
		t.Fatal("epoch-7 query answered")
	}
}

// TestRescalePrepareRejectsReplicated: replicated deployments sit out
// rescales — a server holding a backup partition refuses to prepare.
func TestRescalePrepareRejectsReplicated(t *testing.T) {
	file := buildFile(t, 100)
	fs, err := file.FileSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	fx := decluster.MustFX(fs)
	spec, err := decluster.SpecOf(fx)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Partition(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewReplicatedServer(1, spec, parts[1], parts[0])
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	next, err := spec.Rescaled(8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(next)
	if err != nil {
		t.Fatal(err)
	}
	resp := srv.control(&Request{Control: OpPrepare, SpecJSON: b})
	if resp.Err == "" || !strings.Contains(resp.Err, "replicated") {
		t.Fatalf("replicated server accepted prepare: %q", resp.Err)
	}
}
