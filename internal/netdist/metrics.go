package netdist

import (
	"strconv"

	"fxdist/internal/obs"
)

// Whole-query instruments (registered once at import).
var (
	mCoordRetrieves = obs.Default().Counter("fxdist_netdist_coordinator_retrieves_total",
		"Distributed retrievals started by coordinators in this process.")
	mCoordRetrieveErrors = obs.Default().Counter("fxdist_netdist_coordinator_retrieve_errors_total",
		"Distributed retrievals that failed after any failover attempts.")
	mCoordRetrieveLatency = obs.Default().Histogram("fxdist_netdist_coordinator_retrieve_seconds",
		"End-to-end distributed retrieval latency (fan-out, merge included).", nil)
)

// coordDevMetrics are the coordinator's per-device instruments, cached
// at Dial so the retrieval hot path never touches the registry.
type coordDevMetrics struct {
	latency   *obs.Histogram
	inflight  *obs.Gauge
	errors    *obs.Counter
	timeouts  *obs.Counter
	failovers *obs.Counter
}

func newCoordDevMetrics(dev int) coordDevMetrics {
	r := obs.Default()
	d := obs.L("device", strconv.Itoa(dev))
	return coordDevMetrics{
		latency: r.Histogram("fxdist_netdist_coordinator_device_request_seconds",
			"Per-device request round-trip latency observed by the coordinator.", nil, d),
		inflight: r.Gauge("fxdist_netdist_coordinator_inflight_requests",
			"Requests currently in flight from the coordinator, per device.", d),
		errors: r.Counter("fxdist_netdist_coordinator_device_errors_total",
			"Per-device transport or protocol failures observed by the coordinator.", d),
		timeouts: r.Counter("fxdist_netdist_coordinator_device_timeouts_total",
			"Per-device request timeouts observed by the coordinator.", d),
		failovers: r.Counter("fxdist_netdist_coordinator_failovers_total",
			"Requests re-routed to the device's ring successor after a transport failure.", d),
	}
}

// serverMetrics are one device server's instruments, cached at
// NewServer (re-cached by Server.UseRegistry for per-node isolation).
type serverMetrics struct {
	latency  *obs.Histogram
	inflight *obs.Gauge
	requests *obs.Counter
	errors   *obs.Counter
	backup   *obs.Counter
	shed     *obs.Counter
}

func newServerMetrics(r *obs.Registry, dev int) serverMetrics {
	d := obs.L("device", strconv.Itoa(dev))
	return serverMetrics{
		latency: r.Histogram("fxdist_netdist_server_request_seconds",
			"Per-request service latency on the device server.", nil, d),
		inflight: r.Gauge("fxdist_netdist_server_inflight_requests",
			"Requests the device server is currently answering.", d),
		requests: r.Counter("fxdist_netdist_server_requests_total",
			"Requests answered by the device server.", d),
		errors: r.Counter("fxdist_netdist_server_request_errors_total",
			"Requests the device server rejected with an error.", d),
		backup: r.Counter("fxdist_netdist_server_backup_requests_total",
			"Requests answered from the backup partition on behalf of the ring predecessor.", d),
		shed: r.Counter("fxdist_netdist_server_shed_requests_total",
			"Requests rejected by load shedding with a Retry-After hint.", d),
	}
}
