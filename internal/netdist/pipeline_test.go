package netdist

import (
	"strings"
	"sync"
	"testing"
	"time"

	"fxdist/internal/decluster"
)

// Killing the servers mid-session must fail in-flight and subsequent
// retrievals with a transport error, not hang or return partial data.
func TestServerDeathFailsRetrievals(t *testing.T) {
	file := buildFile(t, 200)
	fs, _ := file.FileSystem(4)
	fx := decluster.MustFX(fs)
	addrs, stop, err := Deploy(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := Dial(file, addrs)
	if err != nil {
		stop()
		t.Fatal(err)
	}
	defer coord.Close()

	pm, _ := file.Spec(map[string]string{"supplier": "sup1"})
	if _, err := coord.Retrieve(pm); err != nil {
		t.Fatalf("healthy retrieve failed: %v", err)
	}
	stop() // kill all servers
	// The read loops notice the closed connections; retrievals must error.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := coord.Retrieve(pm); err != nil {
			if !strings.Contains(err.Error(), "device") {
				t.Fatalf("unexpected error shape: %v", err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("retrieve kept succeeding after servers died")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Requests pipeline: many concurrent retrievals over the same connections
// all complete correctly (IDs demultiplex responses).
func TestPipelinedConcurrentRetrievals(t *testing.T) {
	file := buildFile(t, 300)
	coord, cleanup := deploy(t, file, 4)
	defer cleanup()

	const workers = 32
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				spec := map[string]string{"supplier": "sup" + string(rune('0'+w%10))}
				pm, err := file.Spec(spec)
				if err != nil {
					errs <- err
					return
				}
				want, err := file.Search(pm)
				if err != nil {
					errs <- err
					return
				}
				got, err := coord.Retrieve(pm)
				if err != nil {
					errs <- err
					return
				}
				if len(got.Records) != len(want) {
					errs <- errMismatch(w, len(got.Records), len(want))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type mismatchError struct{ w, got, want int }

func errMismatch(w, got, want int) error { return mismatchError{w, got, want} }
func (e mismatchError) Error() string {
	return "worker result mismatch"
}

// A timeout shorter than any plausible response must fire; a generous one
// must not.
func TestDialTimeoutOption(t *testing.T) {
	file := buildFile(t, 100)
	fs, _ := file.FileSystem(2)
	fx := decluster.MustFX(fs)
	addrs, stop, err := Deploy(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	coord, err := Dial(file, addrs, WithTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	pm, _ := file.Spec(map[string]string{})
	if _, err := coord.Retrieve(pm); err != nil {
		t.Fatalf("generous timeout failed: %v", err)
	}

	// 1ns timeout: effectively always fires before the response arrives.
	fast, err := Dial(file, addrs, WithTimeout(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	if _, err := fast.Retrieve(pm); err == nil {
		t.Error("nanosecond timeout did not fire")
	} else if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("error is not a timeout: %v", err)
	}
}

// A late response to a timed-out request must not corrupt a later
// request's answer (the ID of the dead request is unregistered).
func TestLateResponseAfterTimeoutIsDropped(t *testing.T) {
	file := buildFile(t, 200)
	fs, _ := file.FileSystem(2)
	fx := decluster.MustFX(fs)
	addrs, stop, err := Deploy(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	coord, err := Dial(file, addrs, WithTimeout(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	pm, _ := file.Spec(map[string]string{"supplier": "sup2"})
	if _, err := coord.Retrieve(pm); err == nil {
		t.Fatal("timeout did not fire")
	}
	// Give the late responses time to arrive and be dropped.
	time.Sleep(50 * time.Millisecond)
	// Re-dial with no timeout: correctness restored on fresh requests.
	slow, err := Dial(file, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	want, _ := file.Search(pm)
	got, err := slow.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want) {
		t.Errorf("got %d records, want %d", len(got.Records), len(want))
	}
	// The timed-out coordinator's connections still function for new
	// requests once responses can be awaited... with a 1ns timeout every
	// request times out, but the connection must not be corrupted: the
	// pending map stays empty.
	if _, err := coord.Retrieve(pm); err == nil {
		t.Error("second nanosecond-timeout retrieve unexpectedly succeeded")
	}
	for _, dc := range coord.conns {
		dc.mu.Lock()
		n := len(dc.pending)
		dc.mu.Unlock()
		if n != 0 {
			t.Errorf("pending map leaked %d entries", n)
		}
	}
}
