// Package netdist turns the paper's parallel-device model into an actual
// distributed system: one TCP server per device, each holding the bucket
// partition a declustering allocator assigns to it, and a coordinator
// that fans partial match queries out to all devices and merges the
// results. Every device answers with the per-device inverse mapping of
// package query — it enumerates only its own qualified buckets.
//
// The wire protocol is versioned, length-prefixed binary frames
// (codec.go) negotiated on connect: a coordinator opens with a 4-byte
// magic, a server that recognises it acks and both sides speak binary;
// otherwise the stream is the legacy gob encoding, so old and new peers
// interoperate in both directions. Allocator configuration travels as a
// decluster.Spec so a device server can be started on a different
// process or machine from the data loader.
package netdist

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fxdist/internal/decluster"
	"fxdist/internal/mempool"
	"fxdist/internal/mkhash"
	"fxdist/internal/obs"
	"fxdist/internal/query"
	"fxdist/internal/telemetry"
)

// Request is one coordinator-to-device message. The value filters travel
// as parallel Specified/Values slices so both codecs stay simple: the
// binary protocol writes one presence byte per field, and the gob
// fallback keeps the same struct shape old peers already decode.
type Request struct {
	// ID matches the response to its request; requests pipeline over one
	// connection. Assigned by the coordinator.
	ID uint64
	// Spec is the hashed bucket-level query (query.Unspecified for free
	// fields).
	Spec []int
	// Specified[i] reports whether field i carries a value filter in
	// Values[i]. Devices re-check record values because hashing collides.
	Specified []bool
	Values    []string
	// AsDevice, when >= 0 and not the server's own id, asks a replicated
	// server to answer from the backup partition it holds for that device
	// (coordinator failover). NewRequest sets it to -1.
	AsDevice int
	// TraceID and ParentSpan propagate the coordinator's trace across the
	// wire: the server opens its serving span as a child of ParentSpan
	// inside TraceID, so one query stitches into a single span tree even
	// across processes. Zero means untraced.
	TraceID    uint64
	ParentSpan uint64
	// Ping marks a health probe: the server echoes an empty success
	// immediately, bypassing load shedding, without running a query. The
	// coordinator's health prober uses it to close circuit breakers once
	// a server comes back.
	Ping bool
	// Stats asks the server for its telemetry snapshot instead of a
	// query: the response carries the node's metrics registry serialised
	// as StatsJSON. Like Ping it bypasses load shedding — a drowning
	// node's stats are exactly the ones the fleet view needs. Old servers
	// that predate the field answer it as a malformed query (harmless:
	// the coordinator's stats pull just records the failure).
	Stats bool

	// Epoch selects which declustering epoch a query runs against during
	// an elastic rescale: the server's current view, or — between Prepare
	// and Cutover — the prepared next view at epoch current+1. Outside a
	// rescale every peer is at epoch 0 and the field rides as zero. On
	// the binary wire the rescale extension (Epoch through Payload) is a
	// trailing-optional section gated by a flags bit, so pre-rescale
	// peers interoperate; a rescale itself requires every server at this
	// version (Prepare fails cleanly on older ones).
	Epoch int
	// Control, when non-zero, marks a rescale control operation (the
	// Op* constants) instead of a query. Control ops bypass load
	// shedding — the migration driver bounds its own concurrency — and
	// serialise against queries on the server's view lock.
	Control int
	// Bucket is the linear bucket index for OpFetch / OpInstall.
	Bucket int
	// SpecJSON carries the next epoch's allocator spec (a JSON-encoded
	// decluster.Spec) for OpPrepare.
	SpecJSON []byte
	// Payload carries the bucket's records for OpInstall.
	Payload []mkhash.Record
}

// Rescale control operations (Request.Control).
const (
	// OpPrepare hands the server the next epoch's allocator spec: it
	// builds the view (file system + inverse mapper) and starts serving
	// queries at epoch current+1 alongside the current epoch.
	OpPrepare = 1 + iota
	// OpFetch returns one bucket's records from the current partition.
	OpFetch
	// OpInstall stores one bucket's records into the (prepared or
	// already-current) next-epoch partition. Idempotent: re-installing
	// a bucket overwrites it with identical content.
	OpInstall
	// OpCutover promotes the prepared view to current, bumps the epoch,
	// and prunes buckets the server no longer owns. A no-op on servers
	// with nothing prepared (fresh rescale targets already at the new
	// epoch), so the driver can broadcast it idempotently.
	OpCutover
	// OpAbort drops the prepared view and deletes every bucket installed
	// during the rescale, returning the server to its pre-rescale state.
	OpAbort
)

// NewRequest builds the wire request for a hashed query and its
// value-level filters.
func NewRequest(spec []int, pm mkhash.PartialMatch) Request {
	req := Request{
		Spec:      spec,
		Specified: make([]bool, len(pm)),
		Values:    make([]string, len(pm)),
		AsDevice:  -1,
	}
	for i, v := range pm {
		if v != nil {
			req.Specified[i] = true
			req.Values[i] = *v
		}
	}
	return req
}

// Response is one device-to-coordinator message.
type Response struct {
	// ID echoes the request's ID.
	ID uint64
	// Err is non-empty when the device rejected the request.
	Err string
	// Records are the matching records from this device's partition.
	Records []mkhash.Record
	// Buckets is the number of qualified buckets the device accessed.
	Buckets int
	// Scanned is the number of records the device examined.
	Scanned int
	// RetryAfterMillis, when > 0 alongside a non-empty Err, is the
	// server's load-shedding hint: it rejected the request because it is
	// overloaded and asks not to be re-contacted for this many
	// milliseconds (the wire protocol's Retry-After). The coordinator's
	// retry budget honors it as the minimum backoff.
	RetryAfterMillis int64
	// StatsJSON answers a Stats request: the node's telemetry snapshot
	// (telemetry.NodeStats) as an opaque JSON blob, so the frame layout
	// stays stable as metrics evolve. Trailing-optional on the binary
	// wire; empty on every other response.
	StatsJSON []byte
}

// Server is one device's network frontend.
type Server struct {
	deviceID int
	// dataMu guards the epoch views (spec, fs, im, buckets, epoch,
	// next): queries take the read side, rescale control ops the write
	// side. Outside a rescale the lock is uncontended.
	dataMu  sync.RWMutex
	spec    decluster.Spec
	fs      decluster.FileSystem
	im      *query.InverseMapper
	buckets map[int][]mkhash.Record
	// epoch is the current declustering epoch; next, when non-nil, is
	// the prepared next-epoch view of an in-flight rescale (see
	// Request.Epoch and the Op* control operations).
	epoch int
	next  *nextView
	// Replication (NewReplicatedServer): the backup partition held for
	// the ring predecessor.
	backup    map[int][]mkhash.Record
	backupFor int
	hasBackup bool

	sm     serverMetrics
	reg    *obs.Registry
	tracer *obs.Tracer
	// shapeCounts caches the per-shape request counters (sync.Map keyed
	// by shape string) so the serve loop never re-resolves registry
	// entries; the federated fleet view sums these across nodes.
	shapeCounts sync.Map

	// Load shedding (SetShedding): above shedLimit concurrent requests
	// the server rejects with a Retry-After hint instead of queueing.
	shedLimit   atomic.Int64
	shedAfterMs atomic.Int64
	inflightN   atomic.Int64

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
}

// NewServer builds a device server from a serialized allocator spec and
// the device's bucket partition (keyed by FileSystem.Linear index). The
// server verifies that every bucket it is handed actually belongs to this
// device under the allocator — a partitioning bug fails fast here rather
// than as silently wrong query results.
func NewServer(deviceID int, spec decluster.Spec, buckets map[int][]mkhash.Record) (*Server, error) {
	alloc, err := spec.Build()
	if err != nil {
		return nil, err
	}
	fs := alloc.FileSystem()
	if deviceID < 0 || deviceID >= fs.M {
		return nil, fmt.Errorf("netdist: device id %d outside [0,%d)", deviceID, fs.M)
	}
	var coords []int
	for idx := range buckets {
		if idx < 0 || idx >= fs.NumBuckets() {
			return nil, fmt.Errorf("netdist: bucket index %d outside grid", idx)
		}
		coords = fs.Coords(idx, coords[:0])
		if dev := alloc.Device(coords); dev != deviceID {
			return nil, fmt.Errorf("netdist: bucket %v belongs to device %d, not %d", coords, dev, deviceID)
		}
	}
	return &Server{
		deviceID:  deviceID,
		spec:      spec,
		fs:        fs,
		im:        query.NewInverseMapper(alloc),
		buckets:   buckets,
		sm:        newServerMetrics(obs.Default(), deviceID),
		reg:       obs.Default(),
		tracer:    obs.DefaultTracer(),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}, nil
}

// DeviceID returns the device this server fronts.
func (s *Server) DeviceID() int { return s.deviceID }

// UseRegistry points the server's instruments (and its Stats snapshots)
// at r instead of the process default — the isolation seam that lets a
// single test process run N servers with N distinct registries, each
// answering stats pulls as if it were its own node. Call before Serve.
func (s *Server) UseRegistry(r *obs.Registry) {
	s.reg = r
	s.sm = newServerMetrics(r, s.deviceID)
	s.shapeCounts = sync.Map{}
	obs.RegisterBuildInfo(r)
}

// nodeName is the server's identity in stats snapshots.
func (s *Server) nodeName() string { return fmt.Sprintf("device-%d", s.deviceID) }

// shapeCounter returns (caching) the per-shape request counter.
func (s *Server) shapeCounter(shape string) *obs.Counter {
	if c, ok := s.shapeCounts.Load(shape); ok {
		return c.(*obs.Counter)
	}
	c := s.reg.Counter("fxdist_netdist_server_shape_requests_total",
		"Requests answered by the device server, by query shape.",
		obs.L("device", strconv.Itoa(s.deviceID)), obs.L("shape", shape))
	s.shapeCounts.Store(shape, c)
	return c
}

// stats snapshots the server's registry for a Stats request.
func (s *Server) stats(id uint64) Response {
	st := telemetry.LocalNodeStats(s.nodeName(), s.reg)
	b, err := telemetry.EncodeNodeStats(st)
	if err != nil {
		return Response{ID: id, Err: fmt.Sprintf("netdist: encode stats: %v", err)}
	}
	return Response{ID: id, StatsJSON: b}
}

// SetShedding enables load shedding: beyond maxInflight concurrent
// requests the server rejects new ones with a Retry-After hint of
// retryAfter instead of queueing them behind slow scans. maxInflight
// <= 0 disables shedding. Pings are never shed.
func (s *Server) SetShedding(maxInflight int, retryAfter time.Duration) {
	s.shedLimit.Store(int64(maxInflight))
	s.shedAfterMs.Store(retryAfter.Milliseconds())
}

// Serve accepts connections on l until the listener is closed (by Close
// or externally). Each connection handles a sequence of Request/Response
// pairs. Serve on an already-closed server closes l and returns nil.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return nil
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			delete(s.listeners, l)
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting and drops open connections.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
}

// negotiateServer decides the connection's protocol from its first
// bytes: a new coordinator leads with wireMagic (acked, then binary
// frames both ways), an old one leads with a gob message (no ack, gob
// both ways). Peeking instead of reading keeps the gob bytes in the
// stream for the fallback decoder.
func negotiateServer(conn net.Conn) (serverCodec, error) {
	br := bufio.NewReader(conn)
	peek, err := br.Peek(len(wireMagic))
	if err != nil {
		return nil, err
	}
	if bytes.Equal(peek, wireMagic[:]) {
		if _, err := br.Discard(len(wireMagic)); err != nil {
			return nil, err
		}
		if _, err := conn.Write(wireMagic[:]); err != nil {
			return nil, err
		}
		return &binServerCodec{w: conn, r: br, frames: mempool.Frames}, nil
	}
	return &gobServerCodec{enc: gob.NewEncoder(conn), dec: gob.NewDecoder(br)}, nil
}

// serverHits recycles the per-response record slices the answer paths
// assemble; each slab goes back once its response is on the wire.
var serverHits = mempool.NewSlicePool[mkhash.Record]("netdist.server.hits")

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	codec, err := negotiateServer(conn)
	if err != nil {
		return // connection closed before the first message
	}
	for {
		var req Request
		if err := codec.readRequest(&req); err != nil {
			return // connection closed or corrupt stream
		}
		if req.Ping {
			// Health probes answer before shedding and without a scan: a
			// drowning server is still alive, and the prober must see that.
			if err := codec.writeResponse(&Response{ID: req.ID}); err != nil {
				return
			}
			continue
		}
		if req.Stats {
			// Stats pulls also bypass shedding: an overloaded node's
			// telemetry is exactly what the fleet view needs to show.
			resp := s.stats(req.ID)
			if err := codec.writeResponse(&resp); err != nil {
				return
			}
			continue
		}
		if req.Control != 0 {
			// Rescale control ops bypass shedding (the migration driver
			// bounds its own concurrency and must make progress under
			// load); they serialise with queries on the view lock.
			resp := s.control(&req)
			err := codec.writeResponse(&resp)
			serverHits.Put(resp.Records)
			if err != nil {
				return
			}
			continue
		}
		if n, limit := s.inflightN.Add(1), s.shedLimit.Load(); limit > 0 && n > limit {
			s.inflightN.Add(-1)
			s.sm.shed.Inc()
			resp := Response{ID: req.ID, Err: "netdist: server overloaded", RetryAfterMillis: s.shedAfterMs.Load()}
			if err := codec.writeResponse(&resp); err != nil {
				return
			}
			continue
		}
		s.sm.inflight.Inc()
		t0 := time.Now()
		span := s.tracer.StartChild("netdist.serve", req.TraceID, req.ParentSpan)
		span.SetRequestID(req.ID)
		var resp Response
		if req.AsDevice >= 0 && req.AsDevice != s.deviceID {
			s.sm.backup.Inc()
			resp = s.answerAs(req)
		} else {
			resp = s.answer(req)
		}
		s.sm.requests.Inc()
		s.shapeCounter(query.New(req.Spec).Shape()).Inc()
		if resp.Err != "" {
			s.sm.errors.Inc()
			span.Event("rejected: " + resp.Err)
		} else {
			span.Event(fmt.Sprintf("device %d req %d: %d buckets, %d records", s.deviceID, req.ID, resp.Buckets, resp.Scanned))
		}
		s.sm.latency.ObserveSince(t0)
		span.End()
		s.sm.inflight.Dec()
		s.inflightN.Add(-1)
		err := codec.writeResponse(&resp)
		serverHits.Put(resp.Records)
		if err != nil {
			return
		}
	}
}

// answer runs one query against the local partition of the epoch the
// request names: the current view, or — during a rescale window — the
// prepared next view. Holding the read lock across the scan keeps the
// view (and its bucket map) stable against a concurrent cutover.
func (s *Server) answer(req Request) Response {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	fs, im := s.fs, s.im
	if req.Epoch != s.epoch {
		if s.next == nil || req.Epoch != s.epoch+1 {
			return Response{ID: req.ID, Err: fmt.Sprintf("netdist: epoch %d not served (current %d)", req.Epoch, s.epoch)}
		}
		fs, im = s.next.fs, s.next.im
	}
	q := query.New(req.Spec)
	if err := q.Validate(fs); err != nil {
		return Response{ID: req.ID, Err: err.Error()}
	}
	if len(req.Values) != fs.NumFields() || len(req.Specified) != fs.NumFields() {
		return Response{ID: req.ID, Err: fmt.Sprintf("netdist: %d value filters for %d fields", len(req.Values), fs.NumFields())}
	}
	resp := Response{ID: req.ID}
	im.EachOnDevice(q, s.deviceID, func(coords []int) {
		resp.Buckets++
		for _, r := range s.buckets[fs.Linear(coords)] {
			resp.Scanned++
			if valueMatch(req, r) {
				resp.Records = serverHits.AppendOne(resp.Records, r)
			}
		}
	})
	return resp
}

func valueMatch(req Request, r mkhash.Record) bool {
	for i, specified := range req.Specified {
		if specified && r[i] != req.Values[i] {
			return false
		}
	}
	return true
}

// Partition splits a file's non-empty buckets into per-device partitions
// under the allocator, keyed by linear bucket index — the input NewServer
// expects.
func Partition(file *mkhash.File, alloc decluster.GroupAllocator) ([]map[int][]mkhash.Record, error) {
	fs := alloc.FileSystem()
	sizes := file.Sizes()
	if len(sizes) != fs.NumFields() {
		return nil, fmt.Errorf("netdist: allocator has %d fields, file has %d", fs.NumFields(), len(sizes))
	}
	for i, f := range sizes {
		if fs.Sizes[i] != f {
			return nil, fmt.Errorf("netdist: allocator field %d sized %d, file directory is %d", i, fs.Sizes[i], f)
		}
	}
	parts := make([]map[int][]mkhash.Record, fs.M)
	for i := range parts {
		parts[i] = make(map[int][]mkhash.Record)
	}
	file.EachBucket(func(coords []int, records []mkhash.Record) {
		parts[alloc.Device(coords)][fs.Linear(coords)] = records
	})
	return parts, nil
}

// Deploy partitions the file, starts one Server per device on loopback
// listeners, and returns the addresses (index = device id) plus a stop
// function. It is the one-process path used by tests and the distributed
// example; production deployments construct Servers individually.
func Deploy(file *mkhash.File, alloc decluster.GroupAllocator) (addrs []string, stop func(), err error) {
	spec, err := decluster.SpecOf(alloc)
	if err != nil {
		return nil, nil, err
	}
	parts, err := Partition(file, alloc)
	if err != nil {
		return nil, nil, err
	}
	servers := make([]*Server, 0, len(parts))
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for dev, part := range parts {
		srv, err := NewServer(dev, spec, part)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		servers = append(servers, srv)
		addrs = append(addrs, l.Addr().String())
		go srv.Serve(l) //nolint:errcheck // ends when srv.Close closes l
	}
	return addrs, cleanup, nil
}
