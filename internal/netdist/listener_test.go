package netdist

import (
	"net"
	"sort"
	"testing"

	"fxdist/internal/mkhash"
)

// Test-only helpers shared by the failover tests.

func newLoopbackListener(t *testing.T) (net.Listener, error) {
	t.Helper()
	return net.Listen("tcp", "127.0.0.1:0")
}

func mustSearch(t *testing.T, file *mkhash.File, pm mkhash.PartialMatch) []mkhash.Record {
	t.Helper()
	recs, err := file.Search(pm)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a][0] < recs[b][0] })
	return recs
}
