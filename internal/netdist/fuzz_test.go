package netdist

import (
	"reflect"
	"testing"

	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

// FuzzDecodeRequest throws arbitrary payloads at the binary request
// decoder: it must never panic or over-allocate, and anything it
// accepts must survive a re-encode/re-decode round trip.
func FuzzDecodeRequest(f *testing.F) {
	for _, req := range sampleRequests() {
		f.Add(appendRequest(nil, &req))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := decodeRequest(data, &req); err != nil {
			return
		}
		// Accepted payloads must re-encode to something that decodes to
		// the same request (the encoding itself may differ: varints have
		// non-canonical forms).
		again := appendRequest(nil, &req)
		var req2 Request
		if err := decodeRequest(again, &req2); err != nil {
			t.Fatalf("re-encoded request did not decode: %v", err)
		}
		if !reflect.DeepEqual(req, req2) {
			t.Fatalf("request round trip drifted:\nfirst  %+v\nsecond %+v", req, req2)
		}
	})
}

// FuzzDecodeResponse is the same property for the response decoder,
// with the pass-through (nil) pools so fuzz garbage never lands in the
// shared slab pools.
func FuzzDecodeResponse(f *testing.F) {
	for _, resp := range sampleResponses() {
		f.Add(appendResponse(nil, &resp))
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		var resp Response
		if _, err := decodeResponse(data, &resp, nil, false); err != nil {
			return
		}
		again := appendResponse(nil, &resp)
		if len(again) != responseSize(&resp) {
			t.Fatalf("responseSize says %d, encoder emitted %d", responseSize(&resp), len(again))
		}
		var resp2 Response
		if _, err := decodeResponse(again, &resp2, nil, false); err != nil {
			t.Fatalf("re-encoded response did not decode: %v", err)
		}
		if !respEqual(resp, resp2) {
			t.Fatalf("response round trip drifted:\nfirst  %+v\nsecond %+v", resp, resp2)
		}
	})
}

// respEqual compares responses record-by-record (DeepEqual trips over
// nil-vs-empty field slices that the codec does not distinguish).
func respEqual(a, b Response) bool {
	if a.ID != b.ID || a.Err != b.Err || a.Buckets != b.Buckets ||
		a.Scanned != b.Scanned || a.RetryAfterMillis != b.RetryAfterMillis ||
		len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.Records {
		if len(a.Records[i]) != len(b.Records[i]) {
			return false
		}
		for j := range a.Records[i] {
			if a.Records[i][j] != b.Records[i][j] {
				return false
			}
		}
	}
	return true
}

// FuzzRequestWire pushes NewRequest-shaped queries through the full
// encode/decode pair, checking the exact-size invariant the pooled
// single-write framing depends on.
func FuzzRequestWire(f *testing.F) {
	f.Add(uint64(1), int64(-1), "a", "b", true, false)
	f.Add(uint64(0), int64(3), "", "value", false, true)
	f.Fuzz(func(t *testing.T, id uint64, as int64, v0, v1 string, s0, s1 bool) {
		pm := make(mkhash.PartialMatch, 2)
		if s0 {
			pm[0] = &v0
		}
		if s1 {
			pm[1] = &v1
		}
		req := NewRequest([]int{int(as % 1000), query.Unspecified}, pm)
		req.ID = id
		req.AsDevice = int(as)
		payload := appendRequest(nil, &req)
		if len(payload) != requestSize(&req) {
			t.Fatalf("requestSize says %d, encoder emitted %d", requestSize(&req), len(payload))
		}
		var got Request
		if err := decodeRequest(payload, &got); err != nil {
			t.Fatalf("valid request did not decode: %v", err)
		}
		if !reflect.DeepEqual(req, got) {
			t.Fatalf("request wire drift:\nsent %+v\ngot  %+v", req, got)
		}
	})
}
