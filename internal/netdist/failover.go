package netdist

import (
	"context"
	"fmt"
	"net"

	"fxdist/internal/decluster"
	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

// Replicated deployment: each device server also holds the backup copy of
// its ring predecessor's partition (chained declustering over TCP). When
// a device server dies, the coordinator re-asks its ring successor to
// answer *as* the dead device, so retrievals survive any single server
// failure with no data loss.

// NewReplicatedServer builds a device server that holds its own primary
// partition plus the backup of device (deviceID-1+M)%M. Both partitions
// are validated against the allocator spec.
func NewReplicatedServer(deviceID int, spec decluster.Spec, primary, backup map[int][]mkhash.Record) (*Server, error) {
	srv, err := NewServer(deviceID, spec, primary)
	if err != nil {
		return nil, err
	}
	prev := (deviceID - 1 + srv.fs.M) % srv.fs.M
	alloc := srv.im.Allocator()
	var coords []int
	for idx := range backup {
		if idx < 0 || idx >= srv.fs.NumBuckets() {
			return nil, fmt.Errorf("netdist: backup bucket index %d outside grid", idx)
		}
		coords = srv.fs.Coords(idx, coords[:0])
		if dev := alloc.Device(coords); dev != prev {
			return nil, fmt.Errorf("netdist: backup bucket %v belongs to device %d, not ring predecessor %d", coords, dev, prev)
		}
	}
	srv.backup = backup
	srv.backupFor = prev
	srv.hasBackup = true
	return srv, nil
}

// answerAs runs one query against the backup partition, impersonating the
// failed ring predecessor.
func (s *Server) answerAs(req Request) Response {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	if !s.hasBackup || req.AsDevice != s.backupFor {
		return Response{ID: req.ID, Err: fmt.Sprintf("netdist: device %d holds no backup for device %d", s.deviceID, req.AsDevice)}
	}
	if req.Epoch != s.epoch {
		// Backup partitions are not re-declustered live; replicated
		// deployments sit out rescales (Prepare refuses them).
		return Response{ID: req.ID, Err: fmt.Sprintf("netdist: backup partition serves epoch %d only, not %d", s.epoch, req.Epoch)}
	}
	q := query.New(req.Spec)
	if err := q.Validate(s.fs); err != nil {
		return Response{ID: req.ID, Err: err.Error()}
	}
	if len(req.Values) != s.fs.NumFields() || len(req.Specified) != s.fs.NumFields() {
		return Response{ID: req.ID, Err: fmt.Sprintf("netdist: %d value filters for %d fields", len(req.Values), s.fs.NumFields())}
	}
	resp := Response{ID: req.ID}
	s.im.EachOnDevice(q, s.backupFor, func(coords []int) {
		resp.Buckets++
		for _, r := range s.backup[s.fs.Linear(coords)] {
			resp.Scanned++
			if valueMatch(req, r) {
				resp.Records = serverHits.AppendOne(resp.Records, r)
			}
		}
	})
	return resp
}

// DeployReplicated partitions the file, starts one replicated Server per
// device on loopback listeners (each holding its primary partition and
// its predecessor's backup), and returns the addresses plus a stop
// function.
func DeployReplicated(file *mkhash.File, alloc decluster.GroupAllocator) (addrs []string, stop func(), err error) {
	spec, err := decluster.SpecOf(alloc)
	if err != nil {
		return nil, nil, err
	}
	parts, err := Partition(file, alloc)
	if err != nil {
		return nil, nil, err
	}
	m := len(parts)
	servers := make([]*Server, 0, m)
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for dev := 0; dev < m; dev++ {
		prev := (dev - 1 + m) % m
		srv, err := NewReplicatedServer(dev, spec, parts[dev], parts[prev])
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		servers = append(servers, srv)
		addrs = append(addrs, l.Addr().String())
		go srv.Serve(l) //nolint:errcheck // ends when srv.Close closes l
	}
	return addrs, cleanup, nil
}

// RetrieveWithFailover answers a query like Retrieve, but when a device's
// server is unreachable it re-asks that device's ring successor to serve
// the dead device's partition from its backup copy — the Coordinator's
// failover retry policy on the shared engine executor. It tolerates any
// set of failures in which no two adjacent servers are both dead.
func (c *Coordinator) RetrieveWithFailover(pm mkhash.PartialMatch) (Result, error) {
	return c.RetrieveWithFailoverContext(context.Background(), pm)
}

// RetrieveWithFailoverContext is RetrieveWithFailover with cancellation
// and deadlines.
func (c *Coordinator) RetrieveWithFailoverContext(ctx context.Context, pm mkhash.PartialMatch) (Result, error) {
	res, err := c.feng.Retrieve(ctx, pm)
	return fromEngine(res), err
}
