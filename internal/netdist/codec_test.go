package netdist

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"net"
	"reflect"
	"testing"
	"time"

	"fxdist/internal/decluster"
	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

func str(s string) *string { return &s }

func sampleRequests() []Request {
	return []Request{
		{AsDevice: -1},
		{Ping: true, ID: 7, AsDevice: -1},
		NewRequest([]int{3, query.Unspecified, 0}, mkhash.PartialMatch{str("alpha"), nil, str("")}),
		{
			ID: 1<<63 + 5, TraceID: 42, ParentSpan: 99, AsDevice: 3,
			Spec:      []int{0, 1, query.Unspecified, 7},
			Specified: []bool{true, false, true, true},
			Values:    []string{"héllo", "", "x\x00y", "long-" + string(make([]byte, 300))},
		},
	}
}

func TestRequestBinaryRoundTrip(t *testing.T) {
	for i, req := range sampleRequests() {
		payload := appendRequest(nil, &req)
		if len(payload) != requestSize(&req) {
			t.Fatalf("case %d: encoded %d bytes, requestSize says %d", i, len(payload), requestSize(&req))
		}
		var got Request
		if err := decodeRequest(payload, &got); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		// The codec does not distinguish nil from empty slices; normalize.
		if req.Spec == nil {
			req.Spec = []int{}
		}
		if req.Specified == nil {
			req.Specified, req.Values = []bool{}, []string{}
		}
		if !reflect.DeepEqual(req, got) {
			t.Fatalf("case %d: round trip mismatch:\nsent %+v\ngot  %+v", i, req, got)
		}
	}
}

func sampleResponses() []Response {
	return []Response{
		{ID: 1},
		{ID: 2, Err: "netdist: server overloaded", RetryAfterMillis: 250},
		{ID: 3, Buckets: 4, Scanned: 1000, Records: []mkhash.Record{
			{"a", "b", "c"},
			{"", "", ""},
			{"x\x00", "héllo", string(make([]byte, 500))},
		}},
		{ID: 4, Records: []mkhash.Record{{}}},
	}
}

func TestResponseBinaryRoundTrip(t *testing.T) {
	for _, arena := range []bool{false, true} {
		for _, pooled := range []bool{false, true} {
			for i, resp := range sampleResponses() {
				payload := appendResponse(nil, &resp)
				if len(payload) != responseSize(&resp) {
					t.Fatalf("case %d: encoded %d bytes, responseSize says %d", i, len(payload), responseSize(&resp))
				}
				var got Response
				release, err := decodeResponse(payload, &got, clientHits(!pooled), arena && pooled)
				if err != nil {
					t.Fatalf("case %d (arena=%v pooled=%v): decode: %v", i, arena, pooled, err)
				}
				if len(resp.Records) == 0 {
					if got.Records != nil || release != nil {
						t.Fatalf("case %d: empty response decoded with records/release", i)
					}
					got.Records = resp.Records
				} else if arena && pooled && release == nil {
					t.Fatalf("case %d: arena decode returned no release", i)
				}
				if !respEqual(resp, got) {
					t.Fatalf("case %d (arena=%v pooled=%v): round trip mismatch:\nsent %+v\ngot  %+v",
						i, arena, pooled, resp, got)
				}
				if release != nil {
					release()
				}
			}
		}
	}
}

func TestDecodeRejectsTruncatedAndCorruptFrames(t *testing.T) {
	resp := sampleResponses()[2]
	payload := appendResponse(nil, &resp)
	// Every proper prefix must fail cleanly: the record count is
	// declared up front, so a cut-off frame can never half-decode.
	for i := 0; i < len(payload); i++ {
		var got Response
		if _, err := decodeResponse(payload[:i], &got, nil, false); err == nil {
			t.Fatalf("truncated response frame of %d/%d bytes decoded", i, len(payload))
		}
	}
	req := sampleRequests()[3]
	reqPayload := appendRequest(nil, &req)
	for i := 0; i < len(reqPayload); i++ {
		var got Request
		if err := decodeRequest(reqPayload[:i], &got); err == nil {
			t.Fatalf("truncated request frame of %d/%d bytes decoded", i, len(reqPayload))
		}
	}
	// A record count far beyond the payload is corruption, not an
	// allocation request: swap the empty response's trailing zero count
	// for a huge one.
	base := appendResponse(nil, &Response{ID: 9})
	huge := binary.AppendUvarint(base[:len(base)-1], 1<<40)
	var got Response
	if _, err := decodeResponse(huge, &got, nil, false); err == nil {
		t.Fatal("giant record count decoded")
	}
}

func TestFrameRoundTripAndLimits(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	err := writeFrame(&buf, nil, len(payload), func(b []byte) []byte { return append(b, payload...) })
	if err != nil {
		t.Fatal(err)
	}
	got, done, err := readFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip: got %q", got)
	}
	done()
	if err := writeFrame(&buf, nil, maxFrame+1, nil); err == nil {
		t.Fatal("oversized frame written")
	}
	var hdr [frameLenSize]byte
	binary.LittleEndian.PutUint32(hdr[:], maxFrame+1)
	if _, _, err := readFrame(bytes.NewReader(hdr[:]), nil); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

// TestGobClientAgainstBinaryServer drives a Deploy'd (binary-capable)
// server with a raw legacy gob stream: the server must peek, see no
// magic, and fall back without eating the first gob message.
func TestGobClientAgainstBinaryServer(t *testing.T) {
	file := buildFile(t, 500)
	fs, err := file.FileSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	addrs, stop, err := Deploy(file, decluster.MustFX(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	req := NewRequest([]int{query.Unspecified, query.Unspecified, query.Unspecified}, make(mkhash.PartialMatch, 3))
	req.ID = 11
	if err := enc.Encode(&req); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 11 || resp.Err != "" {
		t.Fatalf("gob fallback response: %+v", resp)
	}
	if resp.Scanned == 0 || len(resp.Records) == 0 {
		t.Fatalf("gob fallback scanned nothing: %+v", resp)
	}
}

// TestDialFallsBackToGobOnlyServer dials a legacy server that never
// acks the magic: the client must give up on the handshake window,
// redial, and speak gob.
func TestDialFallsBackToGobOnlyServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
				for {
					var req Request
					// The magic bytes parse as a gob length prefix, so this
					// blocks until the client closes — exactly how an old
					// server behaves.
					if err := dec.Decode(&req); err != nil {
						return
					}
					if err := enc.Encode(&Response{ID: req.ID, Buckets: 1}); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	c := &Coordinator{timeout: 200 * time.Millisecond}
	dc, err := c.dialDevice(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer dc.conn.Close()
	if dc.binary {
		t.Fatal("gob-only server negotiated binary")
	}
	resp, _, _, release, err := dc.roundTrip(context.Background(), Request{Ping: true, AsDevice: -1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if release != nil {
		release()
	}
	if resp.Buckets != 1 {
		t.Fatalf("gob fallback round trip: %+v", resp)
	}
}

// TestDialNegotiatesBinary checks the happy path: new client against
// new server settles on the binary protocol and retrieval agrees with
// a direct file search.
func TestDialNegotiatesBinary(t *testing.T) {
	file := buildFile(t, 800)
	coord, cleanup := deploy(t, file, 4)
	defer cleanup()
	for i, dc := range coord.conns {
		if !dc.binary {
			t.Fatalf("conn %d did not negotiate binary", i)
		}
	}
	pm, err := file.Spec(map[string]string{"supplier": "sup3"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	want, err := file.Search(pm)
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := recordKeys(res.Records), recordKeys(want); !reflect.DeepEqual(got, exp) {
		t.Fatalf("binary retrieve disagrees with file.Search: got %d records, want %d", len(got), len(exp))
	}
}
