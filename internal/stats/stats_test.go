package stats

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(0); err == nil {
		t.Error("zero fields accepted")
	}
}

func TestTrackerObserve(t *testing.T) {
	tr, err := NewTracker(3)
	if err != nil {
		t.Fatal(err)
	}
	// No observations: uninformative prior.
	for _, p := range tr.SpecProbs() {
		if p != 0.5 {
			t.Errorf("prior %v, want 0.5", p)
		}
	}
	if err := tr.Observe(query.New([]int{1, query.Unspecified, 2})); err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(query.New([]int{3, query.Unspecified, query.Unspecified})); err != nil {
		t.Fatal(err)
	}
	v := "x"
	if err := tr.ObservePartialMatch(mkhash.PartialMatch{nil, &v, &v}); err != nil {
		t.Fatal(err)
	}
	if tr.Queries() != 3 {
		t.Errorf("Queries = %d", tr.Queries())
	}
	want := []float64{2.0 / 3, 1.0 / 3, 2.0 / 3}
	got := tr.SpecProbs()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("probs = %v, want %v", got, want)
		}
	}
	if err := tr.Observe(query.New([]int{1})); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := tr.ObservePartialMatch(make(mkhash.PartialMatch, 1)); err == nil {
		t.Error("partial match arity mismatch accepted")
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr, _ := NewTracker(2)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Observe(query.New([]int{1, query.Unspecified})) //nolint:errcheck
		}()
	}
	wg.Wait()
	if tr.Queries() != 50 {
		t.Errorf("Queries = %d", tr.Queries())
	}
	p := tr.SpecProbs()
	if p[0] != 1 || p[1] != 0 {
		t.Errorf("probs = %v", p)
	}
}

func TestCollectAndMaxDepths(t *testing.T) {
	f := mkhash.MustNew(mkhash.Schema{Fields: []string{"a", "b"}, Depths: []int{3, 3}})
	for i := 0; i < 40; i++ {
		f.Insert(mkhash.Record{fmt.Sprintf("a%d", i%5), fmt.Sprintf("b%d", i%17)}) //nolint:errcheck
	}
	fs := Collect(f)
	if fs.Records != 40 {
		t.Errorf("Records = %d", fs.Records)
	}
	if !reflect.DeepEqual(fs.Distinct, []int{5, 17}) {
		t.Errorf("Distinct = %v", fs.Distinct)
	}
	if !reflect.DeepEqual(fs.MaxDepths(), []int{3, 5}) {
		t.Errorf("MaxDepths = %v", fs.MaxDepths())
	}
}

func TestDesignFields(t *testing.T) {
	fs := FileStats{Records: 10, Distinct: []int{4, 100}}
	fields, err := fs.DesignFields([]float64{0.8, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if fields[0].SpecProb != 0.8 || fields[0].MaxDepth != 2 {
		t.Errorf("field 0 = %+v", fields[0])
	}
	if fields[1].MaxDepth != 7 { // 2^7 = 128 >= 100
		t.Errorf("field 1 = %+v", fields[1])
	}
	if _, err := fs.DesignFields([]float64{0.5}); err == nil {
		t.Error("prob count mismatch accepted")
	}
}
