// Package stats collects the workload and data statistics that drive file
// design and method selection: per-field query specification frequencies
// (the p_i of the paper's §5 model, observed rather than assumed) and
// per-field distinct-value counts (which cap useful directory depths).
package stats

import (
	"fmt"
	"sync"

	"fxdist/internal/design"
	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

// Tracker accumulates per-field specification frequencies from an
// observed query stream. Safe for concurrent use.
type Tracker struct {
	mu        sync.Mutex
	specified []int
	queries   int
}

// NewTracker builds a tracker for an n-field file.
func NewTracker(nFields int) (*Tracker, error) {
	if nFields <= 0 {
		return nil, fmt.Errorf("stats: need at least one field")
	}
	return &Tracker{specified: make([]int, nFields)}, nil
}

// Observe records a bucket-level query.
func (t *Tracker) Observe(q query.Query) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(q.Spec) != len(t.specified) {
		return fmt.Errorf("stats: query has %d fields, tracker %d", len(q.Spec), len(t.specified))
	}
	for i, v := range q.Spec {
		if v != query.Unspecified {
			t.specified[i]++
		}
	}
	t.queries++
	return nil
}

// ObservePartialMatch records a value-level query.
func (t *Tracker) ObservePartialMatch(pm mkhash.PartialMatch) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(pm) != len(t.specified) {
		return fmt.Errorf("stats: query has %d fields, tracker %d", len(pm), len(t.specified))
	}
	for i, v := range pm {
		if v != nil {
			t.specified[i]++
		}
	}
	t.queries++
	return nil
}

// Queries returns the number of observed queries.
func (t *Tracker) Queries() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.queries
}

// SpecProbs returns the observed per-field specification frequencies.
// With no observations it returns the uninformative prior 0.5 everywhere.
func (t *Tracker) SpecProbs() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]float64, len(t.specified))
	if t.queries == 0 {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	for i, s := range t.specified {
		out[i] = float64(s) / float64(t.queries)
	}
	return out
}

// FileStats summarises a file's data distribution.
type FileStats struct {
	// Records is the record count.
	Records int
	// Distinct[i] is the exact number of distinct values in field i.
	Distinct []int
}

// Collect scans a file and counts distinct values per field.
func Collect(file *mkhash.File) FileStats {
	n := file.NumFields()
	sets := make([]map[string]struct{}, n)
	for i := range sets {
		sets[i] = make(map[string]struct{})
	}
	records := 0
	file.EachBucket(func(_ []int, recs []mkhash.Record) {
		for _, r := range recs {
			records++
			for i, v := range r {
				sets[i][v] = struct{}{}
			}
		}
	})
	fs := FileStats{Records: records, Distinct: make([]int, n)}
	for i, s := range sets {
		fs.Distinct[i] = len(s)
	}
	return fs
}

// MaxDepths returns the deepest useful directory per field: beyond
// ceil(log2(distinct)) extra bits leave cells empty.
func (fs FileStats) MaxDepths() []int {
	out := make([]int, len(fs.Distinct))
	for i, d := range fs.Distinct {
		depth := 0
		for 1<<depth < d {
			depth++
		}
		out[i] = depth
	}
	return out
}

// DesignFields combines data statistics with observed specification
// probabilities into inputs for the directory design problem.
func (fs FileStats) DesignFields(probs []float64) ([]design.Field, error) {
	if len(probs) != len(fs.Distinct) {
		return nil, fmt.Errorf("stats: %d probabilities for %d fields", len(probs), len(fs.Distinct))
	}
	depths := fs.MaxDepths()
	out := make([]design.Field, len(probs))
	for i, p := range probs {
		out[i] = design.Field{SpecProb: p, MaxDepth: depths[i]}
	}
	return out, nil
}
