// Package audit turns the paper's optimality theorems into a live
// production invariant. The paper proves that FX is strict optimal for
// a characterised class of query shapes: no device serves more than
// ceil(|R(q)|/M) qualified buckets. The engine executor already
// computes per-device qualified-bucket counts for every retrieval, so
// this package compares them against that bound online, for every
// served query, and aggregates the deviation — violation counts, max
// and mean excess, worst offender device — keyed by *query shape*: the
// set of unspecified fields, i.e. the paper's k classes. A second layer
// tracks per-shape latency SLOs (good/bad counters plus a rolling
// burn-rate) so tail latency attributes to the shapes that cause it.
//
// One Auditor exists per backend ("memory", "durable", "replicated",
// "netdist"); For is idempotent, like the obs registry. Every counter
// the auditor keeps is mirrored into the obs metric registry (labels
// backend + shape), and the whole state renders on /debug/optimality
// (JSON or text) and through the facade's OptimalityReport.
package audit

import (
	"sort"
	"sync"
	"time"

	"fxdist/internal/obs"
	"fxdist/internal/query"
)

// ShapeOf returns the audit key for a query: one byte per field, 's'
// for specified and '*' for unspecified — e.g. "s**s". Two queries with
// the same unspecified field set are the same shape (the paper's query
// class), whatever values they specify.
func ShapeOf(q query.Query) string { return q.Shape() }

// Bound returns the paper's strict-optimality bound ceil(rq/m) for a
// query with |R(q)| = rq qualified buckets on m devices.
func Bound(rq, m int) int {
	if m <= 0 {
		return 0
	}
	return (rq + m - 1) / m
}

// SLO is a per-shape latency objective: at least Goal of the shape's
// queries must complete within Target. Failed retrievals always count
// against the objective. The zero SLO disables tracking.
type SLO struct {
	// Target is the latency objective for one query.
	Target time.Duration
	// Goal is the fraction of queries that must meet Target (e.g. 0.99);
	// 1-Goal is the error budget the burn rate is measured against.
	Goal float64
}

// sloWindow is the rolling window (in queries, per shape) the burn-rate
// gauge is computed over.
const sloWindow = 512

// shapeState is one (backend, shape) accumulation cell. All fields are
// guarded by the owning Auditor's mutex; the obs instruments are
// internally atomic and mirrored for scraping only — reports read the
// fields, so ResetAudit can zero them without fighting the monotonic
// Prometheus counters.
type shapeState struct {
	queries    uint64
	violations uint64
	sumDev     uint64 // total excess over the bound, across all queries
	maxDev     int
	worstDev   int // device that produced maxDev; -1 before any violation
	bound      int // bound of the most recent audited query
	rq         int
	m          int
	maxBuckets int // largest single-device count ever observed

	good, bad uint64
	window    []bool // ring of recent outcomes; true = bad
	wpos      int
	wlen      int
	wbad      int

	mQueries    *obs.Counter
	mViolations *obs.Counter
	mMaxDev     *obs.Gauge
	mBound      *obs.Gauge
	mGood       *obs.Counter
	mBad        *obs.Counter
	mBurn       *obs.Gauge
}

// Auditor audits every retrieval of one backend against the
// strict-optimality bound, keyed by query shape. It implements the
// engine's Auditor hook; construction is via For.
type Auditor struct {
	backend string

	mu        sync.Mutex
	shapes    map[string]*shapeState
	slo       SLO
	overrides map[string]SLO
}

func (a *Auditor) state(shape string) *shapeState {
	st := a.shapes[shape]
	if st == nil {
		r := obs.Default()
		bl, sl := obs.L("backend", a.backend), obs.L("shape", shape)
		st = &shapeState{
			worstDev: -1,
			window:   make([]bool, sloWindow),
			mQueries: r.Counter("fxdist_audit_queries_total",
				"Retrievals audited against the strict-optimality bound, per backend and query shape.", bl, sl),
			mViolations: r.Counter("fxdist_audit_violations_total",
				"Retrievals where some device exceeded ceil(|R(q)|/M) qualified buckets.", bl, sl),
			mMaxDev: r.Gauge("fxdist_audit_max_deviation_buckets",
				"Largest observed per-device excess over the strict-optimality bound.", bl, sl),
			mBound: r.Gauge("fxdist_audit_bound_buckets",
				"Strict-optimality bound ceil(|R(q)|/M) of the most recent audited query.", bl, sl),
			mGood: r.Counter("fxdist_slo_good_total",
				"Queries that met the shape's latency objective.", bl, sl),
			mBad: r.Counter("fxdist_slo_bad_total",
				"Queries that missed the shape's latency objective (failures included).", bl, sl),
			mBurn: r.Gauge("fxdist_slo_burn_rate",
				"Rolling bad-fraction divided by the error budget (1-goal); >1 burns budget faster than allowed.", bl, sl),
		}
		a.shapes[shape] = st
	}
	return st
}

func (a *Auditor) sloFor(shape string) SLO {
	if s, ok := a.overrides[shape]; ok {
		return s
	}
	return a.slo
}

// ShapeSLO returns the latency objective in force for one shape (the
// backend default unless overridden; zero when none is configured).
// The telemetry plane uses it as the wide-event "slow" threshold.
func (a *Auditor) ShapeSLO(shape string) SLO {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sloFor(shape)
}

// RetrievalDone audits one finished retrieval: rq is |R(q)| and
// deviceBuckets the per-device qualified-bucket counts (nil for a
// failed retrieval, which still counts against the shape's SLO). It is
// the engine executor's audit hook.
func (a *Auditor) RetrievalDone(q query.Query, rq int, deviceBuckets []int, elapsed time.Duration) {
	shape := ShapeOf(q)
	burn := 0.0
	a.mu.Lock()
	st := a.state(shape)
	st.queries++
	st.mQueries.Inc()
	ok := deviceBuckets != nil
	if ok {
		m := len(deviceBuckets)
		bound := Bound(rq, m)
		st.bound, st.rq, st.m = bound, rq, m
		st.mBound.Set(float64(bound))
		worst, worstDev := 0, -1
		for dev, b := range deviceBuckets {
			if b > st.maxBuckets {
				st.maxBuckets = b
			}
			if d := b - bound; d > worst {
				worst, worstDev = d, dev
			}
		}
		if worst > 0 {
			st.violations++
			st.mViolations.Inc()
			st.sumDev += uint64(worst)
			if worst >= st.maxDev {
				st.maxDev = worst
				st.worstDev = worstDev
				st.mMaxDev.Set(float64(worst))
			}
		}
	}
	if slo := a.sloFor(shape); slo.Target > 0 {
		bad := !ok || elapsed > slo.Target
		if bad {
			st.bad++
			st.mBad.Inc()
		} else {
			st.good++
			st.mGood.Inc()
		}
		if st.wlen < len(st.window) {
			st.wlen++
		} else if st.window[st.wpos] {
			st.wbad--
		}
		st.window[st.wpos] = bad
		if bad {
			st.wbad++
		}
		st.wpos = (st.wpos + 1) % len(st.window)
		budget := 1 - slo.Goal
		if budget <= 0 {
			budget = 1e-9 // goal of 1.0: any miss burns "infinitely" fast
		}
		burn = (float64(st.wbad) / float64(st.wlen)) / budget
		st.mBurn.Set(burn)
	}
	a.mu.Unlock()
	// Outside the lock: the triggered-profiling hook may kick off an
	// async pprof capture when the shape's burn rate or this query's
	// latency crosses a configured threshold (no-op when off).
	obs.ConsiderProfile(a.backend, shape, elapsed, burn)
}

// Backend returns the backend label this auditor reports under.
func (a *Auditor) Backend() string { return a.backend }

// ShapeReport is one (backend, shape) row of an optimality report.
type ShapeReport struct {
	// Shape is the query-shape key: 's' per specified field, '*' per
	// unspecified one (the paper's query class).
	Shape string `json:"shape"`
	// Queries is the number of audited retrievals of this shape.
	Queries uint64 `json:"queries"`
	// Violations counts retrievals where some device exceeded the bound.
	Violations uint64 `json:"violations"`
	// MaxDeviation is the largest observed per-device excess over the
	// bound; 0 means every retrieval of this shape was strict optimal.
	MaxDeviation int `json:"max_deviation"`
	// MeanDeviation is the mean excess per audited query (0 deviations
	// included).
	MeanDeviation float64 `json:"mean_deviation"`
	// WorstDevice is the device that produced MaxDeviation, -1 if none.
	WorstDevice int `json:"worst_device"`
	// Bound, RQ and M describe the most recent audited query: the
	// strict-optimality bound ceil(RQ/M), |R(q)| and the device count.
	Bound int `json:"bound"`
	RQ    int `json:"r_q"`
	M     int `json:"m"`
	// MaxBuckets is the largest single-device qualified-bucket count
	// observed for this shape.
	MaxBuckets int `json:"max_device_buckets"`
	// SLO state; zero SLOTarget means no objective is configured.
	SLOTarget time.Duration `json:"slo_target_ns,omitempty"`
	SLOGoal   float64       `json:"slo_goal,omitempty"`
	Good      uint64        `json:"slo_good,omitempty"`
	Bad       uint64        `json:"slo_bad,omitempty"`
	// BurnRate is the rolling bad-fraction over the error budget; >1
	// means the shape is burning budget faster than the goal allows.
	BurnRate float64 `json:"slo_burn_rate,omitempty"`
}

// BackendReport is every shape one backend has served.
type BackendReport struct {
	Backend string        `json:"backend"`
	Shapes  []ShapeReport `json:"shapes"`
}

// Report snapshots the auditor's per-shape state, sorted by shape.
func (a *Auditor) Report() BackendReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := BackendReport{Backend: a.backend}
	for shape, st := range a.shapes {
		sr := ShapeReport{
			Shape:        shape,
			Queries:      st.queries,
			Violations:   st.violations,
			MaxDeviation: st.maxDev,
			WorstDevice:  st.worstDev,
			Bound:        st.bound,
			RQ:           st.rq,
			M:            st.m,
			MaxBuckets:   st.maxBuckets,
			Good:         st.good,
			Bad:          st.bad,
		}
		if st.queries > 0 {
			sr.MeanDeviation = float64(st.sumDev) / float64(st.queries)
		}
		if slo := a.sloFor(shape); slo.Target > 0 {
			sr.SLOTarget, sr.SLOGoal = slo.Target, slo.Goal
			if st.wlen > 0 {
				budget := 1 - slo.Goal
				if budget <= 0 {
					budget = 1e-9
				}
				sr.BurnRate = (float64(st.wbad) / float64(st.wlen)) / budget
			}
		}
		rep.Shapes = append(rep.Shapes, sr)
	}
	sort.Slice(rep.Shapes, func(i, j int) bool { return rep.Shapes[i].Shape < rep.Shapes[j].Shape })
	return rep
}

// Reset zeroes the auditor's accumulation (the mirrored Prometheus
// counters stay monotonic; gauges drop to zero). Configured SLOs are
// kept.
func (a *Auditor) Reset() {
	a.mu.Lock()
	for _, st := range a.shapes {
		st.queries, st.violations, st.sumDev = 0, 0, 0
		st.maxDev, st.worstDev, st.maxBuckets = 0, -1, 0
		st.bound, st.rq, st.m = 0, 0, 0
		st.good, st.bad = 0, 0
		st.wpos, st.wlen, st.wbad = 0, 0, 0
		for i := range st.window {
			st.window[i] = false
		}
		st.mMaxDev.Set(0)
		st.mBound.Set(0)
		st.mBurn.Set(0)
	}
	a.mu.Unlock()
}

// Process-wide auditor registry, one Auditor per backend label.
var (
	regMu      sync.Mutex
	auditors   = make(map[string]*Auditor)
	defaultSLO SLO
)

// For returns the auditor for one backend ("memory", "durable",
// "replicated", "netdist"), creating it on first use — idempotent, so
// every cluster of a backend kind shares one accumulation point.
func For(backend string) *Auditor {
	regMu.Lock()
	defer regMu.Unlock()
	a := auditors[backend]
	if a == nil {
		a = &Auditor{
			backend:   backend,
			shapes:    make(map[string]*shapeState),
			slo:       defaultSLO,
			overrides: make(map[string]SLO),
		}
		auditors[backend] = a
	}
	return a
}

// Report snapshots every registered auditor, sorted by backend.
func Report() []BackendReport {
	regMu.Lock()
	all := make([]*Auditor, 0, len(auditors))
	for _, a := range auditors {
		all = append(all, a)
	}
	regMu.Unlock()
	out := make([]BackendReport, 0, len(all))
	for _, a := range all {
		out = append(out, a.Report())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Backend < out[j].Backend })
	return out
}

// Reset zeroes every auditor's accumulated state (configured SLOs are
// kept). Mirrored Prometheus counters stay monotonic.
func Reset() {
	regMu.Lock()
	all := make([]*Auditor, 0, len(auditors))
	for _, a := range auditors {
		all = append(all, a)
	}
	regMu.Unlock()
	for _, a := range all {
		a.Reset()
	}
}

// SetSLO sets the default latency objective for one backend's shapes
// (overridable per shape with SetShapeSLO). backend "" applies to every
// registered auditor and becomes the default for future ones.
func SetSLO(backend string, slo SLO) {
	regMu.Lock()
	defer regMu.Unlock()
	if backend == "" {
		defaultSLO = slo
		for _, a := range auditors {
			a.mu.Lock()
			a.slo = slo
			a.mu.Unlock()
		}
		return
	}
	a := auditors[backend]
	if a == nil {
		a = &Auditor{
			backend:   backend,
			shapes:    make(map[string]*shapeState),
			overrides: make(map[string]SLO),
		}
		auditors[backend] = a
	}
	a.mu.Lock()
	a.slo = slo
	a.mu.Unlock()
}

// SetShapeSLO overrides the latency objective for one (backend, shape),
// creating the backend's auditor if needed.
func SetShapeSLO(backend, shape string, slo SLO) {
	a := For(backend)
	a.mu.Lock()
	a.overrides[shape] = slo
	a.mu.Unlock()
}
