package audit

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"fxdist/internal/obs"
)

func init() {
	obs.RegisterDebugHandler("/debug/optimality", "strict-bound audit per (backend,shape): violations, deviation, SLO burn", Handler())
}

// Handler serves the optimality report of every registered auditor:
// JSON by default, a human-readable per-shape table with ?format=text.
// Mounted as /debug/optimality on every obs.Handler.
func Handler() http.Handler {
	return obs.DebugEndpoint(
		func() (any, error) { return Report(), nil },
		func(w io.Writer, doc any) { writeText(w, doc.([]BackendReport)) },
	)
}

func writeText(w io.Writer, reps []BackendReport) {
	if len(reps) == 0 {
		fmt.Fprintln(w, "no retrievals audited yet")
		return
	}
	for _, rep := range reps {
		fmt.Fprintf(w, "backend %s\n", rep.Backend)
		fmt.Fprintf(w, "  %-12s %8s %6s %6s %8s %6s %6s %8s  %s\n",
			"shape", "queries", "viol", "maxdev", "meandev", "bound", "worst", "burn", "verdict")
		for _, s := range rep.Shapes {
			verdict := "strict optimal"
			if s.Violations > 0 {
				verdict = fmt.Sprintf("VIOLATED (device %d: bound %d exceeded by %d)",
					s.WorstDevice, s.Bound, s.MaxDeviation)
			}
			burn := "-"
			if s.SLOTarget > 0 {
				burn = fmt.Sprintf("%.2f", s.BurnRate)
			}
			fmt.Fprintf(w, "  %-12s %8d %6d %6d %8.3f %6d %6d %8s  %s\n",
				s.Shape, s.Queries, s.Violations, s.MaxDeviation, s.MeanDeviation,
				s.Bound, s.WorstDevice, burn, verdict)
			if s.SLOTarget > 0 {
				fmt.Fprintf(w, "  %-12s slo: target=%s goal=%.4f good=%d bad=%d\n",
					"", time.Duration(s.SLOTarget), s.SLOGoal, s.Good, s.Bad)
			}
		}
	}
}
