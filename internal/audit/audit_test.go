package audit

import (
	"testing"
	"time"

	"fxdist/internal/query"
)

func q(spec ...int) query.Query { return query.New(spec) }

func TestShapeOf(t *testing.T) {
	u := query.Unspecified
	cases := []struct {
		q    query.Query
		want string
	}{
		{q(3, u, 0), "s*s"},
		{q(u, u, u), "***"},
		{q(1, 2), "ss"},
	}
	for _, c := range cases {
		if got := ShapeOf(c.q); got != c.want {
			t.Errorf("ShapeOf(%v) = %q, want %q", c.q, got, c.want)
		}
	}
}

func TestBound(t *testing.T) {
	cases := []struct{ rq, m, want int }{
		{4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {1, 4, 1}, {0, 4, 0}, {7, 0, 0},
	}
	for _, c := range cases {
		if got := Bound(c.rq, c.m); got != c.want {
			t.Errorf("Bound(%d,%d) = %d, want %d", c.rq, c.m, got, c.want)
		}
	}
}

func TestAuditorAggregatesPerShape(t *testing.T) {
	a := For("test-agg")
	u := query.Unspecified

	// Strict optimal retrieval: bound ceil(4/4)=1, all devices at 1.
	a.RetrievalDone(q(u, 0, u), 4, []int{1, 1, 1, 1}, time.Millisecond)
	// Violating retrieval of the same shape: device 2 serves 3 > 1.
	a.RetrievalDone(q(u, 1, u), 4, []int{1, 0, 3, 0}, time.Millisecond)
	// A different shape stays separate.
	a.RetrievalDone(q(0, 0, u), 2, []int{1, 1, 0, 0}, time.Millisecond)
	// Failed retrieval: counted, not audited.
	a.RetrievalDone(q(u, 2, u), 4, nil, time.Millisecond)

	rep := a.Report()
	if len(rep.Shapes) != 2 {
		t.Fatalf("got %d shapes, want 2: %+v", len(rep.Shapes), rep.Shapes)
	}
	var star, spec ShapeReport
	for _, s := range rep.Shapes {
		switch s.Shape {
		case "*s*":
			star = s
		case "ss*":
			spec = s
		default:
			t.Fatalf("unexpected shape %q", s.Shape)
		}
	}
	if star.Queries != 3 || star.Violations != 1 {
		t.Errorf("*s*: queries=%d violations=%d, want 3/1", star.Queries, star.Violations)
	}
	if star.MaxDeviation != 2 || star.WorstDevice != 2 {
		t.Errorf("*s*: maxdev=%d worst=%d, want 2/device 2", star.MaxDeviation, star.WorstDevice)
	}
	if want := 2.0 / 3.0; star.MeanDeviation != want {
		t.Errorf("*s*: meandev=%g, want %g", star.MeanDeviation, want)
	}
	if star.Bound != 1 || star.RQ != 4 || star.M != 4 || star.MaxBuckets != 3 {
		t.Errorf("*s*: bound=%d rq=%d m=%d maxbuckets=%d", star.Bound, star.RQ, star.M, star.MaxBuckets)
	}
	if spec.Queries != 1 || spec.Violations != 0 || spec.MaxDeviation != 0 || spec.WorstDevice != -1 {
		t.Errorf("ss*: %+v, want one clean query", spec)
	}
}

func TestSLOCountsAndBurnRate(t *testing.T) {
	SetSLO("test-slo", SLO{Target: 10 * time.Millisecond, Goal: 0.9})
	a := For("test-slo")
	u := query.Unspecified
	for i := 0; i < 8; i++ {
		a.RetrievalDone(q(u, 0), 2, []int{1, 1}, time.Millisecond) // good
	}
	a.RetrievalDone(q(u, 1), 2, []int{1, 1}, time.Second) // slow: bad
	a.RetrievalDone(q(u, 2), 2, nil, time.Millisecond)    // failed: bad

	rep := a.Report()
	if len(rep.Shapes) != 1 {
		t.Fatalf("got %d shapes, want 1", len(rep.Shapes))
	}
	s := rep.Shapes[0]
	if s.Good != 8 || s.Bad != 2 {
		t.Errorf("good=%d bad=%d, want 8/2", s.Good, s.Bad)
	}
	// Window bad fraction 2/10 over error budget 0.1 → burn rate 2.
	if s.BurnRate < 1.99 || s.BurnRate > 2.01 {
		t.Errorf("burn rate = %g, want 2", s.BurnRate)
	}
	if s.SLOTarget != 10*time.Millisecond || s.SLOGoal != 0.9 {
		t.Errorf("slo echoed wrong: %+v", s)
	}
}

func TestShapeSLOOverride(t *testing.T) {
	SetSLO("test-override", SLO{Target: time.Hour, Goal: 0.99})
	SetShapeSLO("test-override", "*s", SLO{Target: time.Nanosecond, Goal: 0.5})
	a := For("test-override")
	u := query.Unspecified
	a.RetrievalDone(q(u, 0), 2, []int{1, 1}, time.Millisecond) // misses the 1ns override
	a.RetrievalDone(q(0, u), 2, []int{1, 1}, time.Millisecond) // meets the 1h default

	var over, def ShapeReport
	for _, s := range a.Report().Shapes {
		if s.Shape == "*s" {
			over = s
		} else {
			def = s
		}
	}
	if over.Bad != 1 || over.Good != 0 {
		t.Errorf("override shape good=%d bad=%d, want 0/1", over.Good, over.Bad)
	}
	if def.Good != 1 || def.Bad != 0 {
		t.Errorf("default shape good=%d bad=%d, want 1/0", def.Good, def.Bad)
	}
}

func TestResetZeroesState(t *testing.T) {
	a := For("test-reset")
	u := query.Unspecified
	a.RetrievalDone(q(u, 0), 2, []int{2, 0}, time.Millisecond)
	if rep := a.Report(); rep.Shapes[0].Violations != 1 {
		t.Fatalf("setup: %+v", rep.Shapes)
	}
	Reset()
	rep := a.Report()
	s := rep.Shapes[0]
	if s.Queries != 0 || s.Violations != 0 || s.MaxDeviation != 0 || s.WorstDevice != -1 || s.MaxBuckets != 0 {
		t.Errorf("after reset: %+v", s)
	}
}

func TestForIsIdempotent(t *testing.T) {
	if For("test-idem") != For("test-idem") {
		t.Error("For returned distinct auditors for one backend")
	}
}
