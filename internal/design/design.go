// Package design solves the multi-key hash file *design* problem the
// paper inherits from Rothnie & Lozano and Aho & Ullman: given a total
// directory budget of D bits (the file will have 2^D buckets) and, for
// each field, the probability that a partial match query specifies it,
// choose per-field directory depths d_i (F_i = 2^{d_i}, sum d_i = D)
// minimizing the expected number of qualified buckets
//
//	E = prod_i ( p_i + (1-p_i) * 2^{d_i} )
//
// — a specified field contributes factor 1, an unspecified one contributes
// its full directory size. The increments of log(p + (1-p)2^d) are
// increasing in d, so assigning bits greedily to the field with the
// smallest next multiplicative growth is exactly optimal; tests verify the
// greedy against exhaustive search.
//
// This is the "data construction" half the paper defers to its citations;
// combined with FX declustering it completes the pipeline: design the
// grid, then decluster it.
package design

import (
	"fmt"
	"math"
)

// Field describes one field's design inputs.
type Field struct {
	// SpecProb is the probability a query specifies this field.
	SpecProb float64
	// MaxDepth caps the field's directory depth (e.g. log2 of its distinct
	// value count — deeper directories would leave cells empty). Zero
	// means unconstrained.
	MaxDepth int
}

// Result is a depth assignment and its objective value.
type Result struct {
	// Depths holds d_i per field; F_i = 2^{d_i}.
	Depths []int
	// ExpectedQualified is E[number of qualified buckets] for a random
	// query under the independence model.
	ExpectedQualified float64
}

// Sizes returns the field sizes 2^{d_i}.
func (r Result) Sizes() []int {
	out := make([]int, len(r.Depths))
	for i, d := range r.Depths {
		out[i] = 1 << d
	}
	return out
}

func validate(totalBits int, fields []Field) error {
	if len(fields) == 0 {
		return fmt.Errorf("design: need at least one field")
	}
	if totalBits < 0 {
		return fmt.Errorf("design: negative bit budget %d", totalBits)
	}
	capSum := 0
	for i, f := range fields {
		if f.SpecProb < 0 || f.SpecProb > 1 {
			return fmt.Errorf("design: field %d specification probability %v outside [0,1]", i, f.SpecProb)
		}
		if f.MaxDepth < 0 {
			return fmt.Errorf("design: field %d negative max depth", i)
		}
		if f.MaxDepth == 0 {
			capSum += totalBits
		} else {
			capSum += f.MaxDepth
		}
	}
	if capSum < totalBits {
		return fmt.Errorf("design: depth caps admit only %d bits, budget is %d", capSum, totalBits)
	}
	return nil
}

// factor returns p + (1-p) * 2^d.
func factor(p float64, d int) float64 {
	return p + (1-p)*math.Pow(2, float64(d))
}

// ExpectedQualified evaluates the objective for a depth assignment.
func ExpectedQualified(depths []int, probs []float64) float64 {
	e := 1.0
	for i, d := range depths {
		e *= factor(probs[i], d)
	}
	return e
}

// Depths assigns totalBits directory bits across the fields greedily —
// provably optimal for this objective (see package comment).
func Depths(totalBits int, fields []Field) (Result, error) {
	if err := validate(totalBits, fields); err != nil {
		return Result{}, err
	}
	depths := make([]int, len(fields))
	for bit := 0; bit < totalBits; bit++ {
		best, bestGrowth := -1, math.Inf(1)
		for i, f := range fields {
			if f.MaxDepth > 0 && depths[i] >= f.MaxDepth {
				continue
			}
			growth := factor(f.SpecProb, depths[i]+1) / factor(f.SpecProb, depths[i])
			if growth < bestGrowth {
				best, bestGrowth = i, growth
			}
		}
		if best < 0 {
			return Result{}, fmt.Errorf("design: depth caps exhausted before placing %d bits", totalBits)
		}
		depths[best]++
	}
	probs := make([]float64, len(fields))
	for i, f := range fields {
		probs[i] = f.SpecProb
	}
	return Result{Depths: depths, ExpectedQualified: ExpectedQualified(depths, probs)}, nil
}

// ExhaustiveDepths solves the same problem by full enumeration — O(D^n);
// the ground truth greedy is tested against.
func ExhaustiveDepths(totalBits int, fields []Field) (Result, error) {
	if err := validate(totalBits, fields); err != nil {
		return Result{}, err
	}
	probs := make([]float64, len(fields))
	for i, f := range fields {
		probs[i] = f.SpecProb
	}
	best := Result{ExpectedQualified: math.Inf(1)}
	depths := make([]int, len(fields))
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == len(fields)-1 {
			if fields[i].MaxDepth > 0 && remaining > fields[i].MaxDepth {
				return
			}
			depths[i] = remaining
			if e := ExpectedQualified(depths, probs); e < best.ExpectedQualified {
				best.ExpectedQualified = e
				best.Depths = append([]int(nil), depths...)
			}
			return
		}
		maxd := remaining
		if fields[i].MaxDepth > 0 && fields[i].MaxDepth < maxd {
			maxd = fields[i].MaxDepth
		}
		for d := 0; d <= maxd; d++ {
			depths[i] = d
			rec(i+1, remaining-d)
		}
	}
	rec(0, totalBits)
	if best.Depths == nil {
		return Result{}, fmt.Errorf("design: no feasible assignment of %d bits", totalBits)
	}
	return best, nil
}

// BitsFor returns the directory budget needed to hold records at the
// target mean bucket occupancy: the smallest D with 2^D >= records/occupancy.
func BitsFor(records, occupancy int) (int, error) {
	if records <= 0 || occupancy <= 0 {
		return 0, fmt.Errorf("design: records and occupancy must be positive")
	}
	buckets := (records + occupancy - 1) / occupancy
	d := 0
	for 1<<d < buckets {
		d++
	}
	return d, nil
}
