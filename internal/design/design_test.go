package design

import (
	"math"
	"math/rand"
	"testing"
)

func TestValidate(t *testing.T) {
	if _, err := Depths(4, nil); err == nil {
		t.Error("no fields accepted")
	}
	if _, err := Depths(-1, []Field{{SpecProb: 0.5}}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := Depths(4, []Field{{SpecProb: 1.5}}); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := Depths(4, []Field{{SpecProb: 0.5, MaxDepth: -2}}); err == nil {
		t.Error("negative max depth accepted")
	}
	if _, err := Depths(10, []Field{{SpecProb: 0.5, MaxDepth: 3}, {SpecProb: 0.5, MaxDepth: 3}}); err == nil {
		t.Error("infeasible caps accepted")
	}
}

func TestExpectedQualifiedIdentity(t *testing.T) {
	// Verify the closed form against explicit enumeration of all
	// specification patterns: E = sum over patterns of
	// P(pattern) * prod_{unspecified} 2^{d_i}.
	depths := []int{2, 3, 1}
	probs := []float64{0.7, 0.4, 0.9}
	var brute float64
	for mask := 0; mask < 8; mask++ {
		p := 1.0
		buckets := 1.0
		for i := 0; i < 3; i++ {
			if mask&(1<<i) != 0 { // specified
				p *= probs[i]
			} else {
				p *= 1 - probs[i]
				buckets *= math.Pow(2, float64(depths[i]))
			}
		}
		brute += p * buckets
	}
	if got := ExpectedQualified(depths, probs); math.Abs(got-brute) > 1e-9 {
		t.Errorf("closed form %v, brute force %v", got, brute)
	}
}

// Greedy must match exhaustive search on random instances.
func TestGreedyMatchesExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(3)
		fields := make([]Field, n)
		for i := range fields {
			fields[i] = Field{SpecProb: float64(r.Intn(11)) / 10}
			if r.Intn(3) == 0 {
				fields[i].MaxDepth = 1 + r.Intn(4)
			}
		}
		budget := r.Intn(8)
		capSum := 0
		for _, f := range fields {
			if f.MaxDepth == 0 {
				capSum += budget
			} else {
				capSum += f.MaxDepth
			}
		}
		if capSum < budget {
			continue
		}
		g, err := Depths(budget, fields)
		if err != nil {
			t.Fatalf("greedy: %v (fields=%v budget=%d)", err, fields, budget)
		}
		e, err := ExhaustiveDepths(budget, fields)
		if err != nil {
			t.Fatalf("exhaustive: %v", err)
		}
		if math.Abs(g.ExpectedQualified-e.ExpectedQualified) > 1e-9 {
			t.Errorf("fields=%v budget=%d: greedy %v (%v) vs exhaustive %v (%v)",
				fields, budget, g.ExpectedQualified, g.Depths, e.ExpectedQualified, e.Depths)
		}
		sum := 0
		for _, d := range g.Depths {
			sum += d
		}
		if sum != budget {
			t.Errorf("greedy used %d bits of %d", sum, budget)
		}
	}
}

// Classic qualitative result: frequently specified fields deserve deeper
// directories.
func TestBitsFollowSpecificationProbability(t *testing.T) {
	res, err := Depths(6, []Field{
		{SpecProb: 0.9}, // often specified: cheap to grow
		{SpecProb: 0.1}, // rarely specified: expensive to grow
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depths[0] <= res.Depths[1] {
		t.Errorf("depths %v: often-specified field should get more bits", res.Depths)
	}
}

// Equal probabilities: bits split evenly (within one).
func TestEqualProbsSplitEvenly(t *testing.T) {
	res, err := Depths(9, []Field{{SpecProb: 0.5}, {SpecProb: 0.5}, {SpecProb: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	min, max := res.Depths[0], res.Depths[0]
	for _, d := range res.Depths {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max-min > 1 {
		t.Errorf("uneven split %v for equal probabilities", res.Depths)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	res, err := Depths(8, []Field{
		{SpecProb: 0.99, MaxDepth: 2}, // attractive but capped
		{SpecProb: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depths[0] > 2 {
		t.Errorf("cap violated: %v", res.Depths)
	}
	if res.Depths[0]+res.Depths[1] != 8 {
		t.Errorf("budget not used: %v", res.Depths)
	}
}

func TestResultSizes(t *testing.T) {
	r := Result{Depths: []int{0, 3, 1}}
	s := r.Sizes()
	if s[0] != 1 || s[1] != 8 || s[2] != 2 {
		t.Errorf("Sizes = %v", s)
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct {
		records, occupancy, want int
	}{
		{1000, 10, 7}, // 100 buckets -> 128
		{1024, 1, 10}, // exactly 2^10
		{1025, 1, 11}, // just over
		{1, 100, 0},   // one bucket
	}
	for _, c := range cases {
		got, err := BitsFor(c.records, c.occupancy)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("BitsFor(%d,%d) = %d, want %d", c.records, c.occupancy, got, c.want)
		}
	}
	if _, err := BitsFor(0, 1); err == nil {
		t.Error("zero records accepted")
	}
	if _, err := BitsFor(1, 0); err == nil {
		t.Error("zero occupancy accepted")
	}
}

func TestExhaustiveValidatesToo(t *testing.T) {
	if _, err := ExhaustiveDepths(4, nil); err == nil {
		t.Error("no fields accepted")
	}
	// Single field with cap below budget is infeasible.
	if _, err := ExhaustiveDepths(5, []Field{{SpecProb: 0.5, MaxDepth: 3}}); err == nil {
		t.Error("infeasible single-field instance accepted")
	}
}
