package replica

import (
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/query"
)

func fixture(t *testing.T, m int) (*decluster.FX, decluster.FileSystem) {
	t.Helper()
	fs := decluster.MustFileSystem([]int{16, 16, 8}, m)
	return decluster.MustFX(fs), fs
}

func TestModeString(t *testing.T) {
	if Chained.String() != "chained" || Naive.String() != "naive" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode name wrong")
	}
}

func TestPrimaryBackupRing(t *testing.T) {
	fx, fs := fixture(t, 8)
	p := New(fx, Chained)
	fs.EachBucket(func(b []int) {
		prim, back := p.Primary(b), p.Backup(b)
		if back != (prim+1)%fs.M {
			t.Fatalf("bucket %v: backup %d not ring successor of %d", b, back, prim)
		}
	})
}

// With no failures every bucket is served by its primary.
func TestHealthyServesPrimary(t *testing.T) {
	fx, fs := fixture(t, 8)
	for _, mode := range []Mode{Chained, Naive} {
		p := New(fx, mode)
		fs.EachBucket(func(b []int) {
			if p.Server(b) != p.Primary(b) {
				t.Fatalf("mode %v: healthy bucket %v served by %d, primary %d",
					mode, b, p.Server(b), p.Primary(b))
			}
		})
	}
}

func TestFailValidation(t *testing.T) {
	fx, _ := fixture(t, 8)
	p := New(fx, Chained)
	if err := p.Fail(-1); err == nil {
		t.Error("negative device accepted")
	}
	if err := p.Fail(8); err == nil {
		t.Error("out-of-range device accepted")
	}
	if err := p.Fail(3); err != nil {
		t.Fatal(err)
	}
	if err := p.Fail(3); err != nil {
		t.Error("re-failing the same device should be a no-op")
	}
	if err := p.Fail(4); err == nil {
		t.Error("adjacent failure accepted (would lose device 3's backups)")
	}
	if err := p.Fail(2); err == nil {
		t.Error("adjacent failure accepted (device 3 holds 2's backups)")
	}
	if err := p.Fail(6); err != nil {
		t.Errorf("non-adjacent second failure rejected: %v", err)
	}
	if err := p.Restore(3); err != nil {
		t.Fatal(err)
	}
	if p.Failed(3) || !p.Failed(6) {
		t.Error("failure state wrong after restore")
	}
	if err := p.Restore(99); err == nil {
		t.Error("restore of out-of-range device accepted")
	}
}

// Every qualified bucket is served exactly once, never by a failed
// device, under both modes and various failure sets.
func TestCompleteSingleService(t *testing.T) {
	fx, fs := fixture(t, 8)
	queries := []query.Query{
		query.All(3),
		query.New([]int{3, query.Unspecified, query.Unspecified}),
		query.New([]int{query.Unspecified, 7, 2}),
	}
	for _, mode := range []Mode{Chained, Naive} {
		p := New(fx, mode)
		if err := p.Fail(2); err != nil {
			t.Fatal(err)
		}
		if err := p.Fail(5); err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			loads := p.Loads(q)
			total := 0
			for dev, l := range loads {
				total += l
				if p.Failed(dev) && l != 0 {
					t.Fatalf("mode %v: failed device %d serves %d buckets", mode, dev, l)
				}
			}
			if total != q.NumQualified(fs) {
				t.Fatalf("mode %v query %v: served %d buckets, want %d",
					mode, q, total, q.NumQualified(fs))
			}
		}
	}
}

// The headline result: on the whole-file query, naive failover doubles
// the max load while chained declustering keeps it near M/(M-1).
func TestChainedBeatsNaiveAfterFailure(t *testing.T) {
	fx, fs := fixture(t, 8)
	q := query.All(3)
	perDevice := fs.NumBuckets() / fs.M

	naive := New(fx, Naive)
	if err := naive.Fail(3); err != nil {
		t.Fatal(err)
	}
	nd := naive.Degradation(q)
	if nd.DegradedMax != 2*perDevice {
		t.Errorf("naive degraded max = %d, want %d", nd.DegradedMax, 2*perDevice)
	}

	chained := New(fx, Chained)
	if err := chained.Fail(3); err != nil {
		t.Fatal(err)
	}
	cd := chained.Degradation(q)
	// Ideal is M/(M-1) = 8/7 of normal; allow slack for the deterministic
	// fractional split at bucket granularity.
	ideal := float64(fs.M) / float64(fs.M-1)
	if cd.Ratio >= nd.Ratio {
		t.Errorf("chained ratio %.3f not better than naive %.3f", cd.Ratio, nd.Ratio)
	}
	if cd.Ratio > ideal*1.25 {
		t.Errorf("chained ratio %.3f far above ideal %.3f", cd.Ratio, ideal)
	}
	if cd.HealthyMax != perDevice {
		t.Errorf("healthy max = %d, want %d", cd.HealthyMax, perDevice)
	}
}

// Restoring the failed device returns service to primaries.
func TestRestoreReturnsToHealthy(t *testing.T) {
	fx, _ := fixture(t, 8)
	p := New(fx, Chained)
	q := query.All(3)
	healthy := p.Loads(q)
	if err := p.Fail(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Restore(1); err != nil {
		t.Fatal(err)
	}
	restored := p.Loads(q)
	for d := range healthy {
		if healthy[d] != restored[d] {
			t.Fatalf("device %d: load %d after restore, want %d", d, restored[d], healthy[d])
		}
	}
}

// HealthyLoads must agree with the allocator's convolved loads.
func TestHealthyLoadsMatchAllocator(t *testing.T) {
	fx, _ := fixture(t, 4)
	p := New(fx, Chained)
	q := query.New([]int{query.Unspecified, 3, query.Unspecified})
	hl := p.HealthyLoads(q)
	ll := p.Loads(q)
	for d := range hl {
		if hl[d] != ll[d] {
			t.Fatalf("device %d: healthy %d vs served %d", d, hl[d], ll[d])
		}
	}
}

func TestLoadsPanicsOnInvalidQuery(t *testing.T) {
	fx, _ := fixture(t, 4)
	p := New(fx, Chained)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid query accepted")
		}
	}()
	p.Loads(query.New([]int{99, 0, 0}))
}
