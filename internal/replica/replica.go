// Package replica adds availability to a declustered file with *chained
// declustering* (Hsiao & DeWitt): each bucket's primary copy lives on the
// device the allocator chooses, and a backup copy lives on the next
// device around the ring. When a device fails, its buckets are served
// from their backups — and instead of dumping the whole failed load onto
// one successor (naive failover, 2x worst-case load), the chained scheme
// shifts a deterministic fraction of every survivor's primary load to its
// backup holder so the orphaned load spreads around the ring, bounding
// the per-device load at M/(M-1) of normal.
//
// The paper's FX distribution decides *where primaries go*; this package
// shows the same group-allocator machinery carrying a classic
// availability scheme on top.
package replica

import (
	"fmt"

	"fxdist/internal/convolve"
	"fxdist/internal/decluster"
	"fxdist/internal/query"
)

// Mode selects the failover policy.
type Mode int

const (
	// Chained spreads a failed device's load around the ring via
	// fractional offloading (max load M/(M-1) of normal).
	Chained Mode = iota
	// Naive serves all of a failed device's buckets from its single
	// backup holder (max load 2x normal).
	Naive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Chained:
		return "chained"
	case Naive:
		return "naive"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Placement decides, for every bucket, which device serves it given the
// current failure set. It wraps a group allocator; primaries follow the
// allocator, backups sit on (primary+1) mod M.
type Placement struct {
	alloc  decluster.GroupAllocator
	fs     decluster.FileSystem
	mode   Mode
	failed []bool
	nfail  int
}

// New builds a placement over the allocator with no failures.
func New(alloc decluster.GroupAllocator, mode Mode) *Placement {
	fs := alloc.FileSystem()
	return &Placement{alloc: alloc, fs: fs, mode: mode, failed: make([]bool, fs.M)}
}

// Primary returns the bucket's primary device (the allocator's choice).
func (p *Placement) Primary(bucket []int) int { return p.alloc.Device(bucket) }

// Backup returns the bucket's backup device: the ring successor of its
// primary.
func (p *Placement) Backup(bucket []int) int {
	return (p.alloc.Device(bucket) + 1) % p.fs.M
}

// Fail marks a device failed. With chained declustering a single failure
// is survivable; a second adjacent failure would lose data, which Fail
// reports as an error (the backup of a failed device's data must be
// alive).
func (p *Placement) Fail(dev int) error {
	if dev < 0 || dev >= p.fs.M {
		return fmt.Errorf("replica: device %d out of range", dev)
	}
	if p.failed[dev] {
		return nil
	}
	prev := (dev - 1 + p.fs.M) % p.fs.M
	next := (dev + 1) % p.fs.M
	if p.failed[prev] || p.failed[next] {
		return fmt.Errorf("replica: failing device %d with a failed ring neighbour loses data", dev)
	}
	p.failed[dev] = true
	p.nfail++
	return nil
}

// Restore marks a device healthy again.
func (p *Placement) Restore(dev int) error {
	if dev < 0 || dev >= p.fs.M {
		return fmt.Errorf("replica: device %d out of range", dev)
	}
	if p.failed[dev] {
		p.failed[dev] = false
		p.nfail--
	}
	return nil
}

// Failed reports whether dev is failed.
func (p *Placement) Failed(dev int) bool { return p.failed[dev] }

// Server returns the device that serves the bucket under the current
// failure set, implementing the mode's failover policy.
func (p *Placement) Server(bucket []int) int {
	prim := p.alloc.Device(bucket)
	if !p.failed[prim] {
		if p.mode == Chained && p.nfail > 0 {
			// Fractional offload: device f+k serves k/(M-1) of its own
			// primary load; the rest shifts to its backup holder. Only
			// the failure "upstream" of prim matters.
			if f, ok := p.upstreamFailure(prim); ok {
				k := (prim - f + p.fs.M) % p.fs.M // distance from failure
				m1 := p.fs.M - 1
				next := (prim + 1) % p.fs.M
				// The last device in the chain (k = M-1) keeps all its
				// load: its backup holder is the failed device itself.
				if k < m1 && !p.failed[next] && p.bucketFraction(bucket) >= k {
					return next
				}
			}
		}
		return prim
	}
	// Primary failed: the backup holder serves it.
	return (prim + 1) % p.fs.M
}

// upstreamFailure finds the failed device for whose chain dev is a link:
// the nearest failed device scanning backwards around the ring.
func (p *Placement) upstreamFailure(dev int) (int, bool) {
	for k := 1; k < p.fs.M; k++ {
		d := (dev - k + p.fs.M) % p.fs.M
		if p.failed[d] {
			return d, true
		}
	}
	return 0, false
}

// bucketFraction maps a bucket deterministically to 0..M-2, so "serve
// fraction k/(M-1)" becomes "serve buckets whose fraction index < k".
// A multiplicative scramble decorrelates the index from the device number
// (which is itself a function of the coordinates).
func (p *Placement) bucketFraction(bucket []int) int {
	h := uint64(p.fs.Linear(bucket))
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	return int(h % uint64(p.fs.M-1))
}

// Loads returns the per-device served-bucket counts for a query under the
// current failure set. Failed devices always report zero.
func (p *Placement) Loads(q query.Query) []int {
	if err := q.Validate(p.fs); err != nil {
		panic(err)
	}
	loads := make([]int, p.fs.M)
	q.EachQualified(p.fs, func(b []int) {
		loads[p.Server(b)]++
	})
	return loads
}

// HealthyLoads returns what the load vector would be with no failures
// (the allocator's own loads) — the baseline for degradation ratios.
func (p *Placement) HealthyLoads(q query.Query) []int {
	return convolve.Loads(p.alloc, q)
}

// DegradationReport compares the largest response size with and without
// the current failures.
type DegradationReport struct {
	HealthyMax, DegradedMax int
	// Ratio is DegradedMax / HealthyMax.
	Ratio float64
}

// Degradation measures a query's largest-response-size degradation under
// the current failure set.
func (p *Placement) Degradation(q query.Query) DegradationReport {
	healthy := p.HealthyLoads(q)
	degraded := p.Loads(q)
	r := DegradationReport{}
	for _, v := range healthy {
		if v > r.HealthyMax {
			r.HealthyMax = v
		}
	}
	for _, v := range degraded {
		if v > r.DegradedMax {
			r.DegradedMax = v
		}
	}
	if r.HealthyMax > 0 {
		r.Ratio = float64(r.DegradedMax) / float64(r.HealthyMax)
	}
	return r
}
