package decluster

import (
	"testing"
)

// TestDHWRowsArePermutations: each field's contribution row restricted
// to any window of M consecutive values is a permutation of Z_M — the
// latin-square property that keeps every single-field marginal exactly
// uniform.
func TestDHWRowsArePermutations(t *testing.T) {
	for _, c := range []struct {
		sizes []int
		m     int
	}{
		{[]int{8, 8}, 8},
		{[]int{16, 16, 16}, 16},
		{[]int{32, 8, 4}, 4},
		{[]int{64, 64}, 32},
		{[]int{2, 2}, 2},
	} {
		fs := MustFileSystem(c.sizes, c.m)
		d := NewDHW(fs)
		for i, size := range c.sizes {
			for base := 0; base+c.m <= size; base += c.m {
				seen := make([]bool, c.m)
				for v := base; v < base+c.m; v++ {
					cv := d.Contribution(i, v)
					if cv < 0 || cv >= c.m {
						t.Fatalf("sizes=%v M=%d: contribution(%d,%d)=%d outside Z_M", c.sizes, c.m, i, v, cv)
					}
					if seen[cv] {
						t.Fatalf("sizes=%v M=%d field %d window %d: value %d repeats", c.sizes, c.m, i, base, cv)
					}
					seen[cv] = true
				}
			}
		}
	}
}

// TestDHWFullFileUniformity: a latin-square fold spreads the full grid
// exactly evenly, like every other allocator in the family.
func TestDHWFullFileUniformity(t *testing.T) {
	for _, c := range []struct {
		sizes []int
		m     int
	}{
		{[]int{8, 8}, 8},
		{[]int{16, 4, 4}, 16},
		{[]int{32, 2}, 8},
	} {
		fs := MustFileSystem(c.sizes, c.m)
		d := NewDHW(fs)
		h := LoadHistogram(d, fs)
		want := fs.NumBuckets() / fs.M
		for dev, got := range h {
			if got != want {
				t.Errorf("sizes=%v M=%d: device %d holds %d buckets, want %d", c.sizes, c.m, dev, got, want)
			}
		}
	}
}

// TestDHWDeviceEqualsContributionFold: DHW is a proper group allocator.
func TestDHWDeviceEqualsContributionFold(t *testing.T) {
	fs := MustFileSystem([]int{8, 16, 4}, 8)
	d := NewDHW(fs)
	if d.Op() != AddGroup {
		t.Fatalf("Op() = %v, want AddGroup", d.Op())
	}
	fs.EachBucket(func(b []int) {
		dev := 0
		for i, v := range b {
			dev = d.Op().Combine(dev, d.Contribution(i, v), fs.M)
		}
		if got := d.Device(b); got != dev {
			t.Fatalf("Device(%v) = %d, fold = %d", b, got, dev)
		}
	})
}

// TestDHWSpecRoundTrip: DHW serializes through the allocator spec like
// the other methods, so snapshots and rescale prepare carry it.
func TestDHWSpecRoundTrip(t *testing.T) {
	fs := MustFileSystem([]int{16, 16}, 8)
	d := NewDHW(fs)
	spec, err := SpecOf(d)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Method != MethodDHW {
		t.Fatalf("method %q", spec.Method)
	}
	rebuilt, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	fs.EachBucket(func(b []int) {
		if rebuilt.Device(b) != d.Device(b) {
			t.Fatalf("rebuilt allocator disagrees at %v", b)
		}
	})
}

// TestDHWSingleFieldDeviation: on a single free field the latin-square
// rows answer every partial-match query within the Doerr allowance of
// the strict optimum.
func TestDHWSingleFieldDeviation(t *testing.T) {
	fs := MustFileSystem([]int{32, 32}, 16)
	d := NewDHW(fs)
	m := fs.M
	// Fix field 0, leave field 1 free: the response set is one row of
	// the latin square plus the fixed contribution — exactly
	// sizes[1]/M buckets per device.
	for v0 := 0; v0 < fs.Sizes[0]; v0++ {
		counts := make([]int, m)
		for v1 := 0; v1 < fs.Sizes[1]; v1++ {
			counts[d.Device([]int{v0, v1})]++
		}
		strict := (fs.Sizes[1] + m - 1) / m
		allow := DoerrBound(m, 1)
		for dev, got := range counts {
			if got > strict+allow {
				t.Fatalf("fixed v0=%d: device %d holds %d responses, strict %d + allowance %d",
					v0, dev, got, strict, allow)
			}
		}
	}
}

func TestDoerrBound(t *testing.T) {
	cases := []struct {
		m, free, want int
	}{
		{8, 1, 1},   // single free field: floor of 1
		{8, 2, 3},   // log2 8 = 3
		{8, 3, 9},   // 3^2
		{16, 2, 4},  // log2 16 = 4
		{2, 2, 1},   // log2 2 = 1
		{8, 0, 1},   // degenerate: clamped to 1 free field
		{1, 1, 1},   // degenerate m
		{32, 3, 25}, // 5^2
	}
	for _, c := range cases {
		if got := DoerrBound(c.m, c.free); got != c.want {
			t.Errorf("DoerrBound(%d, %d) = %d, want %d", c.m, c.free, got, c.want)
		}
	}
}
