// Package decluster implements the bucket-to-device allocation methods the
// paper studies: the FX (Fieldwise eXclusive-or) distribution — the paper's
// contribution — and the Modulo and GDM (Generalized Disk Modulo) baselines
// it compares against.
//
// A file system is a grid of buckets f_1 x ... x f_n produced by multi-key
// hashing; an Allocator maps each bucket coordinate vector to one of M
// parallel devices. All allocators here are *group allocators*: the device
// number is a fold of per-field contributions under a commutative group on
// Z_M (xor for FX, addition mod M for Modulo and GDM). That shared
// structure powers both the exact load analysis in package convolve and the
// per-device inverse mapping in package query.
package decluster

import (
	"fmt"

	"fxdist/internal/bitsx"
)

// FileSystem describes a multi-key hashed file: the per-field hashed
// domain sizes and the number of parallel devices.
type FileSystem struct {
	// Sizes holds F_i for each field; every F_i is a power of two.
	Sizes []int
	// M is the number of parallel devices, a power of two.
	M int
}

// NewFileSystem validates and returns a file system description.
func NewFileSystem(sizes []int, m int) (FileSystem, error) {
	if len(sizes) == 0 {
		return FileSystem{}, fmt.Errorf("decluster: file system needs at least one field")
	}
	if !bitsx.IsPow2(m) {
		return FileSystem{}, fmt.Errorf("decluster: device count %d is not a power of two", m)
	}
	for i, f := range sizes {
		if !bitsx.IsPow2(f) {
			return FileSystem{}, fmt.Errorf("decluster: size of field %d (%d) is not a power of two", i, f)
		}
	}
	return FileSystem{Sizes: append([]int(nil), sizes...), M: m}, nil
}

// MustFileSystem is NewFileSystem, panicking on error.
func MustFileSystem(sizes []int, m int) FileSystem {
	fs, err := NewFileSystem(sizes, m)
	if err != nil {
		panic(err)
	}
	return fs
}

// NumFields returns n, the number of fields.
func (fs FileSystem) NumFields() int { return len(fs.Sizes) }

// NumBuckets returns the total number of buckets, prod F_i.
func (fs FileSystem) NumBuckets() int {
	n := 1
	for _, f := range fs.Sizes {
		n *= f
	}
	return n
}

// CheckBucket reports whether b is a valid bucket coordinate vector.
func (fs FileSystem) CheckBucket(b []int) error {
	if len(b) != len(fs.Sizes) {
		return fmt.Errorf("decluster: bucket has %d coordinates, file system has %d fields", len(b), len(fs.Sizes))
	}
	for i, v := range b {
		if v < 0 || v >= fs.Sizes[i] {
			return fmt.Errorf("decluster: coordinate %d of bucket is %d, outside field domain [0,%d)", i, v, fs.Sizes[i])
		}
	}
	return nil
}

// EachBucket calls fn for every bucket of the file system in row-major
// order. The slice passed to fn is reused between calls; copy it if it
// must be retained.
func (fs FileSystem) EachBucket(fn func(b []int)) {
	b := make([]int, len(fs.Sizes))
	var rec func(i int)
	rec = func(i int) {
		if i == len(b) {
			fn(b)
			return
		}
		for v := 0; v < fs.Sizes[i]; v++ {
			b[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

// Linear converts bucket coordinates to a row-major linear index in
// [0, NumBuckets()).
func (fs FileSystem) Linear(b []int) int {
	idx := 0
	for i, v := range b {
		idx = idx*fs.Sizes[i] + v
	}
	return idx
}

// Coords converts a linear index back to bucket coordinates, appending to
// buf (pass buf[:0] to reuse storage).
func (fs FileSystem) Coords(idx int, buf []int) []int {
	n := len(fs.Sizes)
	start := len(buf)
	buf = append(buf, make([]int, n)...)
	for i := n - 1; i >= 0; i-- {
		buf[start+i] = idx % fs.Sizes[i]
		idx /= fs.Sizes[i]
	}
	return buf
}

// SmallFieldCount returns the number of fields whose size is less than M
// (the quantity L of the paper's §4.2 summary and the x-axis of Figures
// 1-4).
func (fs FileSystem) SmallFieldCount() int {
	l := 0
	for _, f := range fs.Sizes {
		if f < fs.M {
			l++
		}
	}
	return l
}

// Group is a commutative group structure on Z_M used to fold per-field
// contributions into a device number.
type Group int

const (
	// XorGroup is (Z_M, xor); FX distribution lives here.
	XorGroup Group = iota
	// AddGroup is (Z_M, + mod M); Modulo and GDM live here.
	AddGroup
)

// Combine returns a·b under the group, with operands and result in Z_M.
func (g Group) Combine(a, b, m int) int {
	switch g {
	case XorGroup:
		return (a ^ b) & (m - 1)
	case AddGroup:
		return (a + b) & (m - 1) // m is a power of two
	default:
		panic(fmt.Sprintf("decluster: invalid group %d", int(g)))
	}
}

// Invert returns the group inverse of a in Z_M.
func (g Group) Invert(a, m int) int {
	switch g {
	case XorGroup:
		return a & (m - 1)
	case AddGroup:
		return (m - a) & (m - 1)
	default:
		panic(fmt.Sprintf("decluster: invalid group %d", int(g)))
	}
}

// String names the group.
func (g Group) String() string {
	switch g {
	case XorGroup:
		return "xor"
	case AddGroup:
		return "add"
	default:
		return fmt.Sprintf("Group(%d)", int(g))
	}
}

// Allocator maps bucket coordinate vectors to devices 0..M-1.
type Allocator interface {
	// Device returns the device holding the given bucket.
	Device(bucket []int) int
	// FileSystem returns the file system the allocator was built for.
	FileSystem() FileSystem
	// Name identifies the method, e.g. "FX", "Modulo", "GDM{2,3,5,7,11,13}".
	Name() string
}

// GroupAllocator is an Allocator whose device function is a group fold of
// per-field contributions: Device(b) = c_1(b_1) · c_2(b_2) · ... · c_n(b_n)
// in (Z_M, op). All allocators in this package satisfy it. The structure is
// what makes exact per-query load histograms (package convolve) and
// per-device inverse mapping (package query) possible without enumerating
// the full bucket grid.
type GroupAllocator interface {
	Allocator
	// Op returns the fold group.
	Op() Group
	// Contribution returns c_i(v) in Z_M for value v of field i.
	Contribution(fieldIdx, v int) int
}

// deviceOf folds contributions; shared by the concrete allocators.
func deviceOf(a GroupAllocator, bucket []int) int {
	fs := a.FileSystem()
	if err := fs.CheckBucket(bucket); err != nil {
		panic(err)
	}
	g := a.Op()
	dev := 0
	for i, v := range bucket {
		dev = g.Combine(dev, a.Contribution(i, v), fs.M)
	}
	return dev
}

// LoadHistogram scans the entire bucket grid through the allocator and
// returns the per-device bucket counts. It is O(prod F_i); analysis code
// uses package convolve instead, but the brute-force scan is the ground
// truth the fast paths are tested against.
func LoadHistogram(a Allocator, fs FileSystem) []int {
	h := make([]int, fs.M)
	fs.EachBucket(func(b []int) {
		h[a.Device(b)]++
	})
	return h
}
