package decluster

import (
	"testing"

	"fxdist/internal/field"
)

func TestNewFileSystemValidation(t *testing.T) {
	if _, err := NewFileSystem(nil, 4); err == nil {
		t.Error("empty sizes accepted")
	}
	if _, err := NewFileSystem([]int{4}, 3); err == nil {
		t.Error("non-power-of-two M accepted")
	}
	if _, err := NewFileSystem([]int{5}, 4); err == nil {
		t.Error("non-power-of-two field size accepted")
	}
	fs, err := NewFileSystem([]int{2, 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fs.NumFields() != 2 || fs.NumBuckets() != 16 || fs.M != 4 {
		t.Errorf("file system accessors wrong: %+v", fs)
	}
}

func TestFileSystemSizesCopied(t *testing.T) {
	sizes := []int{2, 8}
	fs := MustFileSystem(sizes, 4)
	sizes[0] = 999
	if fs.Sizes[0] != 2 {
		t.Error("FileSystem aliases caller's sizes slice")
	}
}

func TestCheckBucket(t *testing.T) {
	fs := MustFileSystem([]int{2, 8}, 4)
	if err := fs.CheckBucket([]int{1, 7}); err != nil {
		t.Errorf("valid bucket rejected: %v", err)
	}
	if err := fs.CheckBucket([]int{1}); err == nil {
		t.Error("short bucket accepted")
	}
	if err := fs.CheckBucket([]int{2, 0}); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
	if err := fs.CheckBucket([]int{0, -1}); err == nil {
		t.Error("negative coordinate accepted")
	}
}

func TestEachBucketVisitsAllOnce(t *testing.T) {
	fs := MustFileSystem([]int{2, 4, 2}, 4)
	seen := map[[3]int]int{}
	fs.EachBucket(func(b []int) {
		seen[[3]int{b[0], b[1], b[2]}]++
	})
	if len(seen) != fs.NumBuckets() {
		t.Fatalf("visited %d distinct buckets, want %d", len(seen), fs.NumBuckets())
	}
	for b, c := range seen {
		if c != 1 {
			t.Fatalf("bucket %v visited %d times", b, c)
		}
	}
}

func TestSmallFieldCount(t *testing.T) {
	fs := MustFileSystem([]int{2, 16, 8, 32}, 16)
	if got := fs.SmallFieldCount(); got != 2 {
		t.Errorf("SmallFieldCount = %d, want 2", got)
	}
}

func TestGroupOps(t *testing.T) {
	if XorGroup.Combine(5, 3, 8) != 6 {
		t.Error("xor combine wrong")
	}
	if XorGroup.Combine(9, 3, 8) != 2 { // operands masked
		t.Error("xor combine does not mask")
	}
	if AddGroup.Combine(5, 6, 8) != 3 {
		t.Error("add combine wrong")
	}
	if XorGroup.Invert(5, 8) != 5 {
		t.Error("xor invert wrong")
	}
	if AddGroup.Invert(5, 8) != 3 || AddGroup.Invert(0, 8) != 0 {
		t.Error("add invert wrong")
	}
	for _, g := range []Group{XorGroup, AddGroup} {
		for a := 0; a < 8; a++ {
			if g.Combine(a, g.Invert(a, 8), 8) != 0 {
				t.Errorf("%v: a·a⁻¹ != 0 for a=%d", g, a)
			}
		}
	}
	if XorGroup.String() != "xor" || AddGroup.String() != "add" {
		t.Error("Group.String wrong")
	}
}

// Table 1 of the paper: Basic FX with f1 = {0,1}, f2 = {0..7}, M = 4.
func TestTable1BasicFX(t *testing.T) {
	fs := MustFileSystem([]int{2, 8}, 4)
	fx, err := NewBasicFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{
		0, 1, 2, 3, 0, 1, 2, 3, // J1 = 0
		1, 0, 3, 2, 1, 0, 3, 2, // J1 = 1
	}
	i := 0
	fs.EachBucket(func(b []int) {
		if got := fx.Device(b); got != want[i] {
			t.Fatalf("bucket %v -> device %d, want %d", b, got, want[i])
		}
		i++
	})
}

// Table 2: FX with I(f1), U(f2); f1 = f2 = {0..3}, M = 16 — against Modulo.
func TestTable2FXvsModulo(t *testing.T) {
	fs := MustFileSystem([]int{4, 4}, 16)
	fx := MustFX(fs, field.WithKinds([]field.Kind{field.I, field.U}))
	md := NewModulo(fs)
	wantFX := []int{0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15}
	wantMD := []int{0, 1, 2, 3, 1, 2, 3, 4, 2, 3, 4, 5, 3, 4, 5, 6}
	i := 0
	fs.EachBucket(func(b []int) {
		if got := fx.Device(b); got != wantFX[i] {
			t.Fatalf("FX bucket %v -> %d, want %d", b, got, wantFX[i])
		}
		if got := md.Device(b); got != wantMD[i] {
			t.Fatalf("Modulo bucket %v -> %d, want %d", b, got, wantMD[i])
		}
		i++
	})
}

// Table 3: FX with I(f1), IU1(f2); f1 = f2 = {0..3}, M = 16.
func TestTable3FXIU1(t *testing.T) {
	fs := MustFileSystem([]int{4, 4}, 16)
	fx := MustFX(fs, field.WithKinds([]field.Kind{field.I, field.IU1}))
	want := []int{0, 5, 10, 15, 1, 4, 11, 14, 2, 7, 8, 13, 3, 6, 9, 12}
	i := 0
	fs.EachBucket(func(b []int) {
		if got := fx.Device(b); got != want[i] {
			t.Fatalf("bucket %v -> %d, want %d", b, got, want[i])
		}
		i++
	})
}

// Table 4: FX with I(f1), U(f2), IU1(f3); f = (2,4,2), M = 8.
func TestTable4FXIUIU1(t *testing.T) {
	fs := MustFileSystem([]int{2, 4, 2}, 8)
	fx := MustFX(fs, field.WithKinds([]field.Kind{field.I, field.U, field.IU1}))
	want := []int{0, 5, 2, 7, 4, 1, 6, 3, 1, 4, 3, 6, 5, 0, 7, 2}
	i := 0
	fs.EachBucket(func(b []int) {
		if got := fx.Device(b); got != want[i] {
			t.Fatalf("bucket %v -> %d, want %d", b, got, want[i])
		}
		i++
	})
}

// Table 5: FX with I(f1), IU2(f2); f = (8,2), M = 16.
func TestTable5FXIU2(t *testing.T) {
	fs := MustFileSystem([]int{8, 2}, 16)
	fx := MustFX(fs, field.WithKinds([]field.Kind{field.I, field.IU2}))
	want := []int{0, 13, 1, 12, 2, 15, 3, 14, 4, 9, 5, 8, 6, 11, 7, 10}
	i := 0
	fs.EachBucket(func(b []int) {
		if got := fx.Device(b); got != want[i] {
			t.Fatalf("bucket %v -> %d, want %d", b, got, want[i])
		}
		i++
	})
}

// Table 6: FX with I(f1), U(f2), IU2(f3); f = (4,2,2), M = 16.
func TestTable6FXIUIU2(t *testing.T) {
	fs := MustFileSystem([]int{4, 2, 2}, 16)
	fx := MustFX(fs, field.WithKinds([]field.Kind{field.I, field.U, field.IU2}))
	want := []int{0, 13, 8, 5, 1, 12, 9, 4, 2, 15, 10, 7, 3, 14, 11, 6}
	i := 0
	fs.EachBucket(func(b []int) {
		if got := fx.Device(b); got != want[i] {
			t.Fatalf("bucket %v -> %d, want %d", b, got, want[i])
		}
		i++
	})
}

// §4's motivating example: X(f1) = {0,8} makes Basic FX perfect optimal for
// f = (2,8), M = 16. U transformation produces exactly that mapping.
func TestSection4MotivatingExample(t *testing.T) {
	fn := field.MustNew(field.U, 2, 16)
	img := fn.Image()
	if img[0] != 0 || img[1] != 8 {
		t.Fatalf("U^{16,2} image = %v, want [0 8]", img)
	}
}

func TestFXNames(t *testing.T) {
	fs := MustFileSystem([]int{4, 2, 2}, 16)
	fx := MustFX(fs, field.WithKinds([]field.Kind{field.I, field.U, field.IU2}))
	if got := fx.Name(); got != "FX[I U IU2]" {
		t.Errorf("Name = %q", got)
	}
	if fx.Op() != XorGroup {
		t.Error("FX group is not xor")
	}
	if len(fx.Plan().Funcs) != 3 {
		t.Error("Plan not exposed")
	}
}

func TestModuloBasics(t *testing.T) {
	fs := MustFileSystem([]int{8, 8}, 4)
	md := NewModulo(fs)
	if md.Name() != "Modulo" || md.Op() != AddGroup {
		t.Error("Modulo identity wrong")
	}
	if got := md.Device([]int{7, 6}); got != (7+6)%4 {
		t.Errorf("Modulo device = %d, want %d", got, (7+6)%4)
	}
	if md.FileSystem().M != 4 {
		t.Error("FileSystem not exposed")
	}
}

func TestGDMBasics(t *testing.T) {
	fs := MustFileSystem([]int{8, 8}, 4)
	if _, err := NewGDM(fs, []int{2}); err == nil {
		t.Error("multiplier count mismatch accepted")
	}
	if _, err := NewGDM(fs, []int{2, 0}); err == nil {
		t.Error("non-positive multiplier accepted")
	}
	g := MustGDM(fs, []int{3, 5})
	if got := g.Device([]int{7, 6}); got != (3*7+5*6)%4 {
		t.Errorf("GDM device = %d, want %d", got, (3*7+5*6)%4)
	}
	if g.Name() != "GDM{3,5}" || g.Op() != AddGroup {
		t.Errorf("GDM identity wrong: %s", g.Name())
	}
	m := g.Multipliers()
	m[0] = 99
	if g.Multipliers()[0] != 3 {
		t.Error("Multipliers aliases internal state")
	}
}

// GDM with all multipliers 1 is exactly Modulo.
func TestGDMOnesEqualsModulo(t *testing.T) {
	fs := MustFileSystem([]int{4, 8, 2}, 8)
	g := MustGDM(fs, []int{1, 1, 1})
	md := NewModulo(fs)
	fs.EachBucket(func(b []int) {
		if g.Device(b) != md.Device(b) {
			t.Fatalf("GDM{1,1,1} != Modulo at %v", b)
		}
	})
}

// Every allocator must spread the full file perfectly evenly in the Table
// 1-6 configurations (the full-file query is a partial match query with
// all fields unspecified; FX is strict optimal for it there).
func TestFullFileUniformity(t *testing.T) {
	cases := []struct {
		sizes []int
		m     int
		kinds []field.Kind
	}{
		{[]int{2, 8}, 4, []field.Kind{field.I, field.I}},
		{[]int{4, 4}, 16, []field.Kind{field.I, field.U}},
		{[]int{4, 4}, 16, []field.Kind{field.I, field.IU1}},
		{[]int{2, 4, 2}, 8, []field.Kind{field.I, field.U, field.IU1}},
		{[]int{8, 2}, 16, []field.Kind{field.I, field.IU2}},
		{[]int{4, 2, 2}, 16, []field.Kind{field.I, field.U, field.IU2}},
	}
	for _, c := range cases {
		fs := MustFileSystem(c.sizes, c.m)
		fx := MustFX(fs, field.WithKinds(c.kinds))
		h := LoadHistogram(fx, fs)
		want := fs.NumBuckets() / fs.M
		for dev, got := range h {
			if got != want {
				t.Errorf("%s sizes=%v M=%d: device %d holds %d buckets, want %d",
					fx.Name(), c.sizes, c.m, dev, got, want)
			}
		}
	}
}

// Group-allocator consistency: Device must equal the fold of Contributions.
func TestDeviceEqualsContributionFold(t *testing.T) {
	fs := MustFileSystem([]int{4, 8, 2}, 8)
	allocs := []GroupAllocator{
		MustFX(fs),
		NewModulo(fs),
		MustGDM(fs, []int{2, 3, 5}),
	}
	for _, a := range allocs {
		fs.EachBucket(func(b []int) {
			dev := 0
			for i, v := range b {
				dev = a.Op().Combine(dev, a.Contribution(i, v), fs.M)
			}
			if got := a.Device(b); got != dev {
				t.Fatalf("%s: Device(%v) = %d, fold = %d", a.Name(), b, got, dev)
			}
		})
	}
}

func TestDevicePanicsOnBadBucket(t *testing.T) {
	fs := MustFileSystem([]int{4, 4}, 8)
	fx := MustFX(fs)
	defer func() {
		if recover() == nil {
			t.Fatal("Device with invalid bucket did not panic")
		}
	}()
	fx.Device([]int{4, 0})
}

func TestNewFXPlanMismatch(t *testing.T) {
	fs := MustFileSystem([]int{4, 4}, 8)
	plan := field.MustPlan([]int{4}, 8)
	if _, err := newFXFromPlan(fs, plan); err == nil {
		t.Error("plan/field count mismatch accepted")
	}
	plan2 := field.MustPlan([]int{4, 2}, 8)
	if _, err := newFXFromPlan(fs, plan2); err == nil {
		t.Error("plan built for different sizes accepted")
	}
}
