package decluster

import (
	"testing"

	"fxdist/internal/field"
)

// Spec round-trip: every supported allocator must rebuild to an identical
// bucket-to-device mapping.
func TestSpecRoundTrip(t *testing.T) {
	fs := MustFileSystem([]int{4, 8, 2}, 8)
	allocs := []Allocator{
		MustFX(fs, field.WithKinds([]field.Kind{field.U, field.I, field.IU2})),
		NewModulo(fs),
		MustGDM(fs, []int{3, 5, 7}),
	}
	for _, a := range allocs {
		spec, err := SpecOf(a)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		rebuilt, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if rebuilt.Name() != a.Name() {
			t.Errorf("rebuilt name %q, want %q", rebuilt.Name(), a.Name())
		}
		fs.EachBucket(func(b []int) {
			if rebuilt.Device(b) != a.Device(b) {
				t.Fatalf("%s: rebuilt maps %v to %d, original to %d",
					a.Name(), b, rebuilt.Device(b), a.Device(b))
			}
		})
	}
}

func TestSpecOfUnknownType(t *testing.T) {
	if _, err := SpecOf(fakeAllocator{}); err == nil {
		t.Error("unknown allocator type accepted")
	}
}

type fakeAllocator struct{}

func (fakeAllocator) Device([]int) int       { return 0 }
func (fakeAllocator) FileSystem() FileSystem { return FileSystem{} }
func (fakeAllocator) Name() string           { return "fake" }

func TestSpecBuildValidation(t *testing.T) {
	cases := []Spec{
		{Sizes: []int{4}, M: 3, Method: MethodModulo},                         // bad M
		{Sizes: []int{4, 4}, M: 8, Method: MethodFX, Kinds: []int{0}},         // kind count
		{Sizes: []int{4}, M: 8, Method: MethodFX, Kinds: []int{9}},            // bad kind
		{Sizes: []int{4}, M: 8, Method: MethodGDM, Multipliers: []int{}},      // mult count
		{Sizes: []int{4}, M: 8, Method: Method("zig")},                        // unknown method
		{Sizes: []int{8}, M: 4, Method: MethodFX, Kinds: []int{int(field.U)}}, // U on large field
	}
	for i, s := range cases {
		if _, err := s.Build(); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, s)
		}
	}
}
