package decluster

import (
	"fmt"

	"fxdist/internal/bitsx"
	"fxdist/internal/field"
)

// FX is the paper's Fieldwise eXclusive-or distribution. Bucket
// <J_1..J_n> is placed on device T_M(X_1(J_1) ^ ... ^ X_n(J_n)) where each
// X_i is a field transformation function (identity for fields of size
// >= M; I, U, IU1 or IU2 for smaller fields). With every X_i the identity
// this is the paper's Basic FX distribution (§3); with a transformation
// plan it is the Extended FX distribution (§4).
type FX struct {
	fs   FileSystem
	plan field.Plan
	// contrib[i][v] caches T_M(X_i(v)) so Device is two memory reads and
	// an xor per field — the cheapness §5.2.2 argues for.
	contrib [][]int
}

var _ GroupAllocator = (*FX)(nil)

// NewFX builds an Extended FX allocator for fs, planning field
// transformations with the given options (see field.NewPlan). With no
// options the planner follows the paper's §4.2 guidance.
func NewFX(fs FileSystem, opts ...field.PlanOption) (*FX, error) {
	plan, err := field.NewPlan(fs.Sizes, fs.M, opts...)
	if err != nil {
		return nil, err
	}
	return newFXFromPlan(fs, plan)
}

// NewBasicFX builds the Basic FX allocator (identity transform on every
// field, paper §3).
func NewBasicFX(fs FileSystem) (*FX, error) {
	kinds := make([]field.Kind, fs.NumFields())
	return NewFX(fs, field.WithKinds(kinds))
}

// MustFX is NewFX, panicking on error.
func MustFX(fs FileSystem, opts ...field.PlanOption) *FX {
	x, err := NewFX(fs, opts...)
	if err != nil {
		panic(err)
	}
	return x
}

func newFXFromPlan(fs FileSystem, plan field.Plan) (*FX, error) {
	if len(plan.Funcs) != fs.NumFields() {
		return nil, fmt.Errorf("decluster: plan has %d functions for %d fields", len(plan.Funcs), fs.NumFields())
	}
	x := &FX{fs: fs, plan: plan, contrib: make([][]int, fs.NumFields())}
	for i, fn := range plan.Funcs {
		if fn.FieldSize() != fs.Sizes[i] {
			return nil, fmt.Errorf("decluster: plan function %d built for size %d, field has size %d", i, fn.FieldSize(), fs.Sizes[i])
		}
		c := make([]int, fs.Sizes[i])
		for v := range c {
			c[v] = bitsx.TM(fn.Apply(v), fs.M)
		}
		x.contrib[i] = c
	}
	return x, nil
}

// Device returns T_M of the xor of the transformed field values.
func (x *FX) Device(bucket []int) int { return deviceOf(x, bucket) }

// FileSystem returns the file system x allocates for.
func (x *FX) FileSystem() FileSystem { return x.fs }

// Op returns XorGroup.
func (x *FX) Op() Group { return XorGroup }

// Contribution returns T_M(X_i(v)).
func (x *FX) Contribution(fieldIdx, v int) int { return x.contrib[fieldIdx][v] }

// Plan returns the transformation plan in use.
func (x *FX) Plan() field.Plan { return x.plan }

// Name identifies the allocator, including its transformation methods,
// e.g. "FX[I U IU2]".
func (x *FX) Name() string {
	s := "FX["
	for i, fn := range x.plan.Funcs {
		if i > 0 {
			s += " "
		}
		s += fn.Kind().String()
	}
	return s + "]"
}
