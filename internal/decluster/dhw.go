package decluster

import "math/bits"

// DHW is a latin-square / low-discrepancy declustering scheme in the
// spirit of Doerr, Hebbinghaus and Werth, "Improved Bounds and Schemes
// for the Declustering Problem": each field contributes one row of a
// latin square over Z_M, with the rows built from the van der Corput
// radical-inverse (bit-reversal) permutation — the classic
// low-discrepancy sequence — composed with distinct odd multipliers.
// The per-field contributions fold under addition mod M, so DHW is a
// GroupAllocator like Modulo and GDM and plugs into the exact load
// analysis (package convolve), the per-device inverse mapping (package
// query), and all four cluster backends unchanged.
//
// It is the large-M baseline the FX comparison tables ask for: where
// FX's transformation plan runs out of distinct transforms, a
// low-discrepancy latin square keeps every row a permutation of Z_M,
// so the load stays exactly balanced and per-query deviations grow
// only polylogarithmically in M (the Doerr et al. regime).
type DHW struct {
	fs FileSystem
	// contrib[i][v] caches the row value sigma_i * rho(v) mod M.
	contrib [][]int
}

var _ GroupAllocator = (*DHW)(nil)

// NewDHW builds the latin-square low-discrepancy allocator for fs.
func NewDHW(fs FileSystem) *DHW {
	m := fs.M
	lg := bits.Len(uint(m)) - 1 // log2 M; M is a power of two
	// The row multipliers are successive powers of an odd constant near
	// the golden-section point of M — odd, so each power is invertible
	// mod 2^lg and every row is a permutation of Z_M (a latin square).
	base := int(0.6180339887498949*float64(m)) | 1
	if m <= 2 {
		base = 1
	}
	d := &DHW{fs: fs, contrib: make([][]int, fs.NumFields())}
	sigma := 1
	for i := range d.contrib {
		size := fs.Sizes[i]
		// Fields narrower than M get the radical inverse within their own
		// bit width, so the row's support is {0..F-1} — a generating set
		// of Z_M — rather than a proper subgroup the additive fold could
		// never escape. Fields at least M wide use the full-width inverse,
		// shifted by the high part so they stay exactly uniform over Z_M.
		w := lg
		if size < m {
			w = bits.Len(uint(size)) - 1 // log2 F; sizes are powers of two
		}
		c := make([]int, size)
		for v := range c {
			r := bitrev(v&(1<<w-1), w)
			if w == lg {
				r = (r + v/m) & (m - 1)
			}
			c[v] = (sigma * r) & (m - 1)
		}
		d.contrib[i] = c
		sigma = (sigma * base) & (m - 1)
		sigma |= 1
	}
	return d
}

// bitrev reverses the low n bits of v.
func bitrev(v, n int) int {
	r := 0
	for i := 0; i < n; i++ {
		r = r<<1 | (v & 1)
		v >>= 1
	}
	return r
}

// Device returns the fold of the per-field latin-square rows.
func (d *DHW) Device(bucket []int) int { return deviceOf(d, bucket) }

// FileSystem returns the file system d allocates for.
func (d *DHW) FileSystem() FileSystem { return d.fs }

// Op returns AddGroup.
func (d *DHW) Op() Group { return AddGroup }

// Contribution returns sigma_i * rho(v) mod M.
func (d *DHW) Contribution(fieldIdx, v int) int { return d.contrib[fieldIdx][v] }

// Name identifies the allocator.
func (d *DHW) Name() string { return "DHW-LS" }

// DoerrBound returns the per-device deviation allowance above the
// paper's strict bound ceil(|R(q)|/M) that the Doerr–Hebbinghaus–Werth
// discrepancy results grant a good declustering scheme: O((log M)^(d-1))
// for a query leaving d dimensions unspecified, floored at 1 (no scheme
// beats additive discrepancy 1 on every query). The rescale cutover
// guard refuses to release the old owners while any audited shape's max
// deviation exceeds this.
func DoerrBound(m, freeFields int) int {
	if freeFields < 1 {
		freeFields = 1
	}
	lg := bits.Len(uint(m - 1)) // ceil(log2 m)
	if lg < 1 {
		lg = 1
	}
	b := 1
	for i := 0; i < freeFields-1; i++ {
		b *= lg
	}
	return b
}
