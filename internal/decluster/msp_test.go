package decluster

import (
	"testing"
)

func TestNewTableValidation(t *testing.T) {
	fs := MustFileSystem([]int{2, 2}, 4)
	if _, err := NewTable(fs, []int{0, 1}); err == nil {
		t.Error("short table accepted")
	}
	if _, err := NewTable(fs, []int{0, 1, 2, 4}); err == nil {
		t.Error("out-of-range device accepted")
	}
	if _, err := NewTable(fs, []int{0, 1, 2, -1}); err == nil {
		t.Error("negative device accepted")
	}
	tab, err := NewTable(fs, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "Table" {
		t.Errorf("Name = %q", tab.Name())
	}
	if got := tab.Device([]int{1, 0}); got != 2 {
		t.Errorf("Device = %d", got)
	}
}

func TestTableCopiesInput(t *testing.T) {
	fs := MustFileSystem([]int{2, 2}, 4)
	dev := []int{0, 1, 2, 3}
	tab, _ := NewTable(fs, dev)
	dev[0] = 3
	if tab.Device([]int{0, 0}) != 0 {
		t.Error("table aliases caller's slice")
	}
}

func TestTableDevicePanicsOnBadBucket(t *testing.T) {
	fs := MustFileSystem([]int{2, 2}, 4)
	tab, _ := NewTable(fs, []int{0, 1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("bad bucket accepted")
		}
	}()
	tab.Device([]int{2, 0})
}

func TestMSPCoversAllDevicesEvenly(t *testing.T) {
	fs := MustFileSystem([]int{4, 4, 2}, 8)
	msp := NewMSP(fs)
	if msp.Name() != "MSP" {
		t.Errorf("Name = %q", msp.Name())
	}
	h := LoadHistogram(msp, fs)
	want := fs.NumBuckets() / fs.M
	for dev, c := range h {
		if c != want {
			t.Errorf("device %d holds %d buckets, want %d", dev, c, want)
		}
	}
}

func TestMSPDeterministic(t *testing.T) {
	fs := MustFileSystem([]int{4, 4}, 4)
	a, b := NewMSP(fs), NewMSP(fs)
	fs.EachBucket(func(bk []int) {
		if a.Device(bk) != b.Device(bk) {
			t.Fatalf("MSP not deterministic at %v", bk)
		}
	})
}

// The spanning-path heuristic's defining property: consecutive path
// buckets (which are maximally similar) are on different devices — so at
// minimum, the two buckets differing only in the last coordinate step
// should rarely collide. We check a weaker but exact invariant: for every
// single-unspecified-field query on a grid where F_i <= M, no device
// holds more than a small factor above the optimal bound.
func TestMSPSingleFieldQueriesReasonable(t *testing.T) {
	fs := MustFileSystem([]int{4, 4}, 8)
	msp := NewMSP(fs)
	for i := 0; i < 2; i++ {
		for v := 0; v < 4; v++ {
			loads := make([]int, fs.M)
			fs.EachBucket(func(bk []int) {
				if bk[i] == v {
					loads[msp.Device(bk)]++
				}
			})
			max := 0
			for _, l := range loads {
				if l > max {
					max = l
				}
			}
			// 4 qualified buckets over 8 devices: optimal is 1; allow 2.
			if max > 2 {
				t.Errorf("field %d value %d: max load %d", i, v, max)
			}
		}
	}
}
