package decluster

import (
	"fmt"

	"fxdist/internal/field"
)

// Method names a declustering method in a Spec.
type Method string

// Supported methods.
const (
	MethodFX     Method = "fx"
	MethodModulo Method = "modulo"
	MethodGDM    Method = "gdm"
	MethodDHW    Method = "dhw"
)

// Spec is a serializable description of an allocator: everything needed
// to reconstruct the same bucket-to-device mapping on another process or
// machine. The distributed retrieval layer ships Specs to device servers;
// the persistence layer stores them alongside file snapshots.
type Spec struct {
	// Sizes and M describe the file system.
	Sizes []int
	M     int
	// Method selects the allocation method.
	Method Method
	// Kinds holds the per-field transformation methods for MethodFX
	// (values of field.Kind).
	Kinds []int
	// Multipliers holds the per-field multipliers for MethodGDM.
	Multipliers []int
}

// SpecOf extracts a Spec from a supported allocator. It returns an error
// for allocator types outside this package.
func SpecOf(a Allocator) (Spec, error) {
	fs := a.FileSystem()
	spec := Spec{Sizes: append([]int(nil), fs.Sizes...), M: fs.M}
	switch impl := a.(type) {
	case *FX:
		spec.Method = MethodFX
		for _, k := range impl.Plan().Kinds() {
			spec.Kinds = append(spec.Kinds, int(k))
		}
	case *Modulo:
		spec.Method = MethodModulo
	case *GDM:
		spec.Method = MethodGDM
		spec.Multipliers = impl.Multipliers()
	case *DHW:
		spec.Method = MethodDHW
	default:
		return Spec{}, fmt.Errorf("decluster: cannot describe allocator type %T", a)
	}
	return spec, nil
}

// Build reconstructs the allocator the spec describes.
func (s Spec) Build() (GroupAllocator, error) {
	fs, err := NewFileSystem(s.Sizes, s.M)
	if err != nil {
		return nil, err
	}
	switch s.Method {
	case MethodFX:
		if len(s.Kinds) != len(s.Sizes) {
			return nil, fmt.Errorf("decluster: spec has %d kinds for %d fields", len(s.Kinds), len(s.Sizes))
		}
		kinds := make([]field.Kind, len(s.Kinds))
		for i, k := range s.Kinds {
			if k < int(field.I) || k > int(field.IU2) {
				return nil, fmt.Errorf("decluster: spec kind %d of field %d is not a transformation method", k, i)
			}
			kinds[i] = field.Kind(k)
		}
		return NewFX(fs, field.WithKinds(kinds))
	case MethodModulo:
		return NewModulo(fs), nil
	case MethodGDM:
		return NewGDM(fs, s.Multipliers)
	case MethodDHW:
		return NewDHW(fs), nil
	default:
		return nil, fmt.Errorf("decluster: unknown method %q", s.Method)
	}
}

// Rescaled returns the spec for the same file redeclustered over newM
// devices — the elastic-rescale derivation. Only doubling (newM == 2*M)
// and halving (newM == M/2) are supported: those are the steps where
// the T_M low-bit identity makes the new owner of every bucket
// derivable from its old one (doubling M appends one low bit to T_M).
// The method and its per-field parameters are preserved; whether the
// derivation identity actually holds for the rebuilt allocator is
// checked by rebalance.VerifyDerivation, not assumed here.
func (s Spec) Rescaled(newM int) (Spec, error) {
	if newM != 2*s.M && s.M != 2*newM {
		return Spec{}, fmt.Errorf("decluster: rescale M=%d to %d: only doubling or halving is supported", s.M, newM)
	}
	ns := s
	ns.M = newM
	ns.Sizes = append([]int(nil), s.Sizes...)
	ns.Kinds = append([]int(nil), s.Kinds...)
	ns.Multipliers = append([]int(nil), s.Multipliers...)
	return ns, nil
}
