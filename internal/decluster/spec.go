package decluster

import (
	"fmt"

	"fxdist/internal/field"
)

// Method names a declustering method in a Spec.
type Method string

// Supported methods.
const (
	MethodFX     Method = "fx"
	MethodModulo Method = "modulo"
	MethodGDM    Method = "gdm"
)

// Spec is a serializable description of an allocator: everything needed
// to reconstruct the same bucket-to-device mapping on another process or
// machine. The distributed retrieval layer ships Specs to device servers;
// the persistence layer stores them alongside file snapshots.
type Spec struct {
	// Sizes and M describe the file system.
	Sizes []int
	M     int
	// Method selects the allocation method.
	Method Method
	// Kinds holds the per-field transformation methods for MethodFX
	// (values of field.Kind).
	Kinds []int
	// Multipliers holds the per-field multipliers for MethodGDM.
	Multipliers []int
}

// SpecOf extracts a Spec from a supported allocator. It returns an error
// for allocator types outside this package.
func SpecOf(a Allocator) (Spec, error) {
	fs := a.FileSystem()
	spec := Spec{Sizes: append([]int(nil), fs.Sizes...), M: fs.M}
	switch impl := a.(type) {
	case *FX:
		spec.Method = MethodFX
		for _, k := range impl.Plan().Kinds() {
			spec.Kinds = append(spec.Kinds, int(k))
		}
	case *Modulo:
		spec.Method = MethodModulo
	case *GDM:
		spec.Method = MethodGDM
		spec.Multipliers = impl.Multipliers()
	default:
		return Spec{}, fmt.Errorf("decluster: cannot describe allocator type %T", a)
	}
	return spec, nil
}

// Build reconstructs the allocator the spec describes.
func (s Spec) Build() (GroupAllocator, error) {
	fs, err := NewFileSystem(s.Sizes, s.M)
	if err != nil {
		return nil, err
	}
	switch s.Method {
	case MethodFX:
		if len(s.Kinds) != len(s.Sizes) {
			return nil, fmt.Errorf("decluster: spec has %d kinds for %d fields", len(s.Kinds), len(s.Sizes))
		}
		kinds := make([]field.Kind, len(s.Kinds))
		for i, k := range s.Kinds {
			if k < int(field.I) || k > int(field.IU2) {
				return nil, fmt.Errorf("decluster: spec kind %d of field %d is not a transformation method", k, i)
			}
			kinds[i] = field.Kind(k)
		}
		return NewFX(fs, field.WithKinds(kinds))
	case MethodModulo:
		return NewModulo(fs), nil
	case MethodGDM:
		return NewGDM(fs, s.Multipliers)
	default:
		return nil, fmt.Errorf("decluster: unknown method %q", s.Method)
	}
}
