package decluster

import (
	"testing"

	"fxdist/internal/field"
)

// M = 1: every allocator maps everything to device 0 and is trivially
// perfect optimal.
func TestSingleDevice(t *testing.T) {
	fs := MustFileSystem([]int{4, 8}, 1)
	allocs := []Allocator{
		MustFX(fs),
		NewModulo(fs),
		MustGDM(fs, []int{3, 5}),
	}
	for _, a := range allocs {
		fs.EachBucket(func(b []int) {
			if a.Device(b) != 0 {
				t.Fatalf("%s: bucket %v on device %d with M=1", a.Name(), b, a.Device(b))
			}
		})
	}
}

// Single-field systems: FX reduces to T_M (or a transform) of the value.
func TestSingleField(t *testing.T) {
	fs := MustFileSystem([]int{16}, 4)
	fx, err := NewBasicFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 16; v++ {
		if got := fx.Device([]int{v}); got != v%4 {
			t.Errorf("Device([%d]) = %d, want %d", v, got, v%4)
		}
	}
}

// Fields of size 1 contribute nothing under any transform.
func TestUnitField(t *testing.T) {
	fs := MustFileSystem([]int{1, 8}, 4)
	fx := MustFX(fs)
	for v := 0; v < 8; v++ {
		withUnit := fx.Device([]int{0, v})
		if withUnit < 0 || withUnit >= 4 {
			t.Fatalf("device out of range")
		}
	}
	// Unit field may take any small-field transform without error.
	for _, k := range []field.Kind{field.U, field.IU1, field.IU2} {
		x := MustFX(fs, field.WithKinds([]field.Kind{k, field.I}))
		if x.Contribution(0, 0) != 0 {
			t.Errorf("kind %v: unit field contribution %d, want 0", k, x.Contribution(0, 0))
		}
	}
}

// The biggest grid the table reproductions use: device mapping stays in
// range across a full scan (guards against overflow in linearisation).
func TestLargeGridScan(t *testing.T) {
	fs := MustFileSystem([]int{8, 8, 8, 16, 16, 16}, 512)
	fx := MustFX(fs)
	count := 0
	fs.EachBucket(func(b []int) {
		d := fx.Device(b)
		if d < 0 || d >= 512 {
			t.Fatalf("device %d out of range at %v", d, b)
		}
		count++
	})
	if count != fs.NumBuckets() {
		t.Errorf("scanned %d buckets, want %d", count, fs.NumBuckets())
	}
}

// Linear/Coords are inverse bijections over the grid.
func TestLinearCoordsRoundTrip(t *testing.T) {
	fs := MustFileSystem([]int{4, 2, 8}, 4)
	seen := make([]bool, fs.NumBuckets())
	fs.EachBucket(func(b []int) {
		idx := fs.Linear(b)
		if idx < 0 || idx >= fs.NumBuckets() || seen[idx] {
			t.Fatalf("Linear(%v) = %d invalid or repeated", b, idx)
		}
		seen[idx] = true
		back := fs.Coords(idx, nil)
		for i := range b {
			if back[i] != b[i] {
				t.Fatalf("Coords(Linear(%v)) = %v", b, back)
			}
		}
	})
	// Coords appends to the provided buffer.
	buf := []int{99}
	out := fs.Coords(0, buf)
	if out[0] != 99 || len(out) != 4 {
		t.Errorf("Coords append semantics wrong: %v", out)
	}
}
