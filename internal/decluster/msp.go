package decluster

import (
	"fmt"
)

// Table is an explicit bucket-to-device mapping: the escape hatch for
// allocation methods that are not group folds, such as the
// spanning-path heuristic below or user-supplied placements. Table
// satisfies Allocator but not GroupAllocator, so analyses fall back to
// enumeration instead of convolution.
type Table struct {
	fs   FileSystem
	dev  []int // indexed by FileSystem.Linear
	name string
}

var _ Allocator = (*Table)(nil)

// NewTable wraps an explicit device vector (indexed by linear bucket
// order, values in [0, M)).
func NewTable(fs FileSystem, dev []int) (*Table, error) {
	if len(dev) != fs.NumBuckets() {
		return nil, fmt.Errorf("decluster: table has %d entries for %d buckets", len(dev), fs.NumBuckets())
	}
	for i, d := range dev {
		if d < 0 || d >= fs.M {
			return nil, fmt.Errorf("decluster: table entry %d maps to device %d, outside [0,%d)", i, d, fs.M)
		}
	}
	return &Table{fs: fs, dev: append([]int(nil), dev...), name: "Table"}, nil
}

// Device returns the table's device for the bucket.
func (t *Table) Device(bucket []int) int {
	if err := t.fs.CheckBucket(bucket); err != nil {
		panic(err)
	}
	return t.dev[t.fs.Linear(bucket)]
}

// FileSystem returns the file system the table covers.
func (t *Table) FileSystem() FileSystem { return t.fs }

// Name identifies the allocator.
func (t *Table) Name() string { return t.name }

// NewMSP builds the minimal-spanning-path declustering heuristic of Fang,
// Lee & Chang [FaRC86], which the paper lists among prior methods: order
// the buckets along a greedy maximum-similarity path (similarity between
// two buckets counts the coordinates they share — similar buckets qualify
// together under many partial match queries) and deal devices round-robin
// along the path, so co-qualified buckets land on different devices. The
// construction is O(B^2 * n) in the bucket count, which is why the era
// moved to closed-form methods like GDM and FX for large grids.
func NewMSP(fs FileSystem) *Table {
	b := fs.NumBuckets()
	coords := make([][]int, b)
	fs.EachBucket(func(bk []int) {
		coords[fs.Linear(bk)] = append([]int(nil), bk...)
	})

	similarity := func(a, c []int) int {
		s := 0
		for i := range a {
			if a[i] == c[i] {
				s++
			}
		}
		return s
	}

	visited := make([]bool, b)
	dev := make([]int, b)
	cur := 0
	visited[0] = true
	dev[0] = 0
	for step := 1; step < b; step++ {
		best, bestSim := -1, -1
		for cand := 0; cand < b; cand++ {
			if visited[cand] {
				continue
			}
			if s := similarity(coords[cur], coords[cand]); s > bestSim {
				best, bestSim = cand, s
			}
		}
		visited[best] = true
		dev[best] = step % fs.M
		cur = best
	}
	t, err := NewTable(fs, dev)
	if err != nil {
		panic(err) // unreachable: dev is built in range by construction
	}
	t.name = "MSP"
	return t
}
