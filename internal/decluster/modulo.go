package decluster

import (
	"fmt"
	"strings"
)

// Modulo is the Disk Modulo allocation of Du and Sobolewski [DuSo82]:
// bucket <J_1..J_n> goes to device (J_1 + ... + J_n) mod M. Simple, but —
// as the paper's §1 and §5 argue — not optimal when field sizes fall below
// the device count.
type Modulo struct {
	fs FileSystem
}

var _ GroupAllocator = (*Modulo)(nil)

// NewModulo builds a Modulo allocator for fs.
func NewModulo(fs FileSystem) *Modulo { return &Modulo{fs: fs} }

// Device returns (sum of coordinates) mod M.
func (md *Modulo) Device(bucket []int) int { return deviceOf(md, bucket) }

// FileSystem returns the file system md allocates for.
func (md *Modulo) FileSystem() FileSystem { return md.fs }

// Op returns AddGroup.
func (md *Modulo) Op() Group { return AddGroup }

// Contribution returns v mod M.
func (md *Modulo) Contribution(_, v int) int { return v & (md.fs.M - 1) }

// Name returns "Modulo".
func (md *Modulo) Name() string { return "Modulo" }

// GDM is the Generalized Disk Modulo allocation [DuSo82]: bucket
// <J_1..J_n> goes to device (a_1*J_1 + ... + a_n*J_n) mod M for a fixed
// multiplier vector a. The paper evaluates three multiplier sets (GDM1-3);
// finding good multipliers is trial and error, which is the weakness FX
// removes.
type GDM struct {
	fs   FileSystem
	mult []int
	// contrib caches (a_i * v) mod M per field value.
	contrib [][]int
}

var _ GroupAllocator = (*GDM)(nil)

// Paper §5.2.1 multiplier sets used for Tables 7-9.
var (
	// GDM1Multipliers is the paper's GDM1 set {2, 3, 5, 7, 11, 13}.
	GDM1Multipliers = []int{2, 3, 5, 7, 11, 13}
	// GDM2Multipliers is the paper's GDM2 set {2, 5, 11, 43, 51, 57}.
	GDM2Multipliers = []int{2, 5, 11, 43, 51, 57}
	// GDM3Multipliers is the paper's GDM3 set {41, 43, 47, 51, 53, 57}.
	GDM3Multipliers = []int{41, 43, 47, 51, 53, 57}
)

// NewGDM builds a GDM allocator with one multiplier per field.
func NewGDM(fs FileSystem, multipliers []int) (*GDM, error) {
	if len(multipliers) != fs.NumFields() {
		return nil, fmt.Errorf("decluster: %d GDM multipliers for %d fields", len(multipliers), fs.NumFields())
	}
	for i, a := range multipliers {
		if a <= 0 {
			return nil, fmt.Errorf("decluster: GDM multiplier %d for field %d is not positive", a, i)
		}
	}
	g := &GDM{
		fs:      fs,
		mult:    append([]int(nil), multipliers...),
		contrib: make([][]int, fs.NumFields()),
	}
	for i, f := range fs.Sizes {
		c := make([]int, f)
		for v := range c {
			c[v] = (multipliers[i] * v) & (fs.M - 1)
		}
		g.contrib[i] = c
	}
	return g, nil
}

// MustGDM is NewGDM, panicking on error.
func MustGDM(fs FileSystem, multipliers []int) *GDM {
	g, err := NewGDM(fs, multipliers)
	if err != nil {
		panic(err)
	}
	return g
}

// Device returns (sum of a_i * J_i) mod M.
func (g *GDM) Device(bucket []int) int { return deviceOf(g, bucket) }

// FileSystem returns the file system g allocates for.
func (g *GDM) FileSystem() FileSystem { return g.fs }

// Op returns AddGroup.
func (g *GDM) Op() Group { return AddGroup }

// Contribution returns (a_i * v) mod M.
func (g *GDM) Contribution(fieldIdx, v int) int { return g.contrib[fieldIdx][v] }

// Multipliers returns the multiplier vector.
func (g *GDM) Multipliers() []int { return append([]int(nil), g.mult...) }

// Name identifies the allocator with its multipliers, e.g. "GDM{2,3,5}".
func (g *GDM) Name() string {
	parts := make([]string, len(g.mult))
	for i, a := range g.mult {
		parts[i] = fmt.Sprint(a)
	}
	return "GDM{" + strings.Join(parts, ",") + "}"
}
