package persist

import (
	"encoding/gob"
	"fmt"
	"os"

	"fxdist/internal/decluster"
)

// rescaleVersion guards the journal format.
const rescaleVersion = 1

// Rescale phases recorded in the journal. The driver moves strictly
// forward through copying → dual-read → done, or sideways to aborted;
// a resumed driver trusts the journal's phase and re-copies only the
// buckets not marked done.
const (
	RescaleCopying  = "copying"
	RescaleDualRead = "dual-read"
	RescaleDone     = "done"
	RescaleAborted  = "aborted"
)

// RescaleState is the crash-safe record of one elastic rescale: enough
// to rebuild the plan (both specs), the phase reached, and the set of
// buckets already copied to their new owners. A coordinator killed
// mid-migration reloads it and resumes; install is idempotent, so a
// bucket copied twice around a crash is harmless.
type RescaleState struct {
	Version int
	// OldSpec and NewSpec reconstruct the allocator pair.
	OldSpec, NewSpec decluster.Spec
	// Phase is one of the Rescale* constants.
	Phase string
	// Done lists the linear bucket indices whose copy is complete.
	Done []int
}

// SaveRescale writes the journal atomically (temp file + rename), so a
// crash mid-flush leaves the previous journal intact.
func SaveRescale(path string, st *RescaleState) error {
	st.Version = rescaleVersion
	tmp, err := os.CreateTemp(dirOf(path), ".fxdist-rescale-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(st); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: encode rescale journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadRescale restores a rescale journal. A missing file returns
// os.ErrNotExist (match with errors.Is): no rescale was in flight.
func LoadRescale(path string) (*RescaleState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var st RescaleState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return nil, fmt.Errorf("persist: decode rescale journal: %w", err)
	}
	if st.Version != rescaleVersion {
		return nil, fmt.Errorf("persist: rescale journal version %d, this build reads %d", st.Version, rescaleVersion)
	}
	return &st, nil
}
