package persist

import (
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fxdist/internal/decluster"
)

func TestRescaleJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rescale.journal")
	st := &RescaleState{
		OldSpec: decluster.Spec{Sizes: []int{8, 4}, M: 4, Method: decluster.MethodModulo},
		NewSpec: decluster.Spec{Sizes: []int{8, 4}, M: 8, Method: decluster.MethodModulo},
		Phase:   RescaleCopying,
		Done:    []int{0, 3, 17},
	}
	if err := SaveRescale(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRescale(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != RescaleCopying || !reflect.DeepEqual(got.Done, st.Done) {
		t.Fatalf("got %+v", got)
	}
	if !reflect.DeepEqual(got.OldSpec, st.OldSpec) || !reflect.DeepEqual(got.NewSpec, st.NewSpec) {
		t.Fatalf("specs did not round trip: %+v", got)
	}
	if got.Version != 1 {
		t.Fatalf("version %d", got.Version)
	}

	// Overwrite in place (the driver's periodic flush) and reload.
	st.Phase = RescaleDualRead
	st.Done = append(st.Done, 21)
	if err := SaveRescale(path, st); err != nil {
		t.Fatal(err)
	}
	got, err = LoadRescale(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != RescaleDualRead || len(got.Done) != 4 {
		t.Fatalf("flush not visible: %+v", got)
	}
}

func TestRescaleJournalMissingFile(t *testing.T) {
	_, err := LoadRescale(filepath.Join(t.TempDir(), "absent.journal"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("got %v, want os.ErrNotExist", err)
	}
}

func TestRescaleJournalVersionCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rescale.journal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(&RescaleState{Version: 99, Phase: RescaleDone}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRescale(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future-versioned journal accepted: %v", err)
	}
}

func TestRescaleJournalCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rescale.journal")
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRescale(path); err == nil {
		t.Fatal("corrupt journal accepted")
	}
}

// TestRescaleJournalAtomicSave: the temp file used for the atomic
// rename must not linger after a successful save.
func TestRescaleJournalAtomicSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rescale.journal")
	if err := SaveRescale(path, &RescaleState{Phase: RescaleCopying}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".fxdist-rescale-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}
