// Package persist snapshots a multi-key hashed file — records, current
// directory depths, and optionally the declustering allocator
// configuration — to a gob stream, and restores it. Because bucket
// placement is a pure function of the (deterministic) field hashes and the
// allocator spec, a snapshot needs only the logical content; directories
// and partitions are rebuilt on load.
//
// Files built with custom field hash functions must pass the same
// WithHash options to Load: hash functions are code, not data.
package persist

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"fxdist/internal/decluster"
	"fxdist/internal/mkhash"
)

// formatVersion guards against decoding snapshots from incompatible
// releases.
const formatVersion = 1

// snapshot is the on-disk representation.
type snapshot struct {
	Version int
	Fields  []string
	Depths  []int
	Records [][]string
	// HasAlloc distinguishes "no allocator stored" from a zero Spec.
	HasAlloc bool
	Alloc    decluster.Spec
}

// Save writes the file (and, when alloc is non-nil, its allocator spec)
// to w.
func Save(w io.Writer, file *mkhash.File, alloc decluster.Allocator) error {
	snap := snapshot{
		Version: formatVersion,
		Fields:  file.Schema().Fields,
		Depths:  file.Depths(),
	}
	file.EachBucket(func(_ []int, records []mkhash.Record) {
		for _, r := range records {
			snap.Records = append(snap.Records, r)
		}
	})
	if alloc != nil {
		spec, err := decluster.SpecOf(alloc)
		if err != nil {
			return err
		}
		snap.HasAlloc = true
		snap.Alloc = spec
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load restores a file from r. When the snapshot carries an allocator
// spec, the allocator is rebuilt too (nil otherwise). opts are applied to
// the restored file before records are re-inserted, so custom hash
// functions land the records in their original buckets.
func Load(r io.Reader, opts ...mkhash.Option) (*mkhash.File, decluster.GroupAllocator, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, nil, fmt.Errorf("persist: decode: %w", err)
	}
	if snap.Version != formatVersion {
		return nil, nil, fmt.Errorf("persist: snapshot version %d, this build reads %d", snap.Version, formatVersion)
	}
	file, err := mkhash.New(mkhash.Schema{Fields: snap.Fields, Depths: snap.Depths}, opts...)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range snap.Records {
		if err := file.Insert(r); err != nil {
			return nil, nil, fmt.Errorf("persist: restore record: %w", err)
		}
	}
	var alloc decluster.GroupAllocator
	if snap.HasAlloc {
		alloc, err = snap.Alloc.Build()
		if err != nil {
			return nil, nil, fmt.Errorf("persist: rebuild allocator: %w", err)
		}
	}
	return file, alloc, nil
}

// SaveFile writes a snapshot to path (atomically: temp file + rename).
func SaveFile(path string, file *mkhash.File, alloc decluster.Allocator) error {
	tmp, err := os.CreateTemp(dirOf(path), ".fxdist-snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Save(tmp, file, alloc); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile restores a snapshot from path.
func LoadFile(path string, opts ...mkhash.Option) (*mkhash.File, decluster.GroupAllocator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Load(f, opts...)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
