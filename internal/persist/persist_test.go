package persist

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/mkhash"
)

func buildFile(t *testing.T, n int, opts ...mkhash.Option) *mkhash.File {
	t.Helper()
	f := mkhash.MustNew(mkhash.Schema{
		Fields: []string{"a", "b"},
		Depths: []int{3, 2},
	}, opts...)
	for i := 0; i < n; i++ {
		if err := f.Insert(mkhash.Record{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%9)}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func allRecords(t *testing.T, f *mkhash.File) []string {
	t.Helper()
	recs, err := f.Search(make(mkhash.PartialMatch, f.NumFields()))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(recs))
	for i, r := range recs {
		keys[i] = r[0] + "|" + r[1]
	}
	sort.Strings(keys)
	return keys
}

func TestRoundTripWithAllocator(t *testing.T) {
	file := buildFile(t, 150)
	fs, err := file.FileSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	fx := decluster.MustFX(fs)

	var buf bytes.Buffer
	if err := Save(&buf, file, fx); err != nil {
		t.Fatal(err)
	}
	restored, alloc, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if alloc == nil || alloc.Name() != fx.Name() {
		t.Fatalf("allocator not restored: %v", alloc)
	}
	a, b := allRecords(t, file), allRecords(t, restored)
	if len(a) != len(b) {
		t.Fatalf("restored %d records, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("record sets differ after round trip")
		}
	}
	// Same bucket placement after restore.
	fs.EachBucket(func(bk []int) {
		if len(file.Bucket(bk)) != len(restored.Bucket(bk)) {
			t.Fatalf("bucket %v occupancy differs", bk)
		}
	})
}

func TestRoundTripWithoutAllocator(t *testing.T) {
	file := buildFile(t, 20)
	var buf bytes.Buffer
	if err := Save(&buf, file, nil); err != nil {
		t.Fatal(err)
	}
	restored, alloc, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if alloc != nil {
		t.Error("allocator materialised from nothing")
	}
	if restored.Len() != 20 {
		t.Errorf("restored %d records", restored.Len())
	}
}

// Snapshots taken after Grow restore at the grown depths.
func TestRoundTripAfterGrow(t *testing.T) {
	file := buildFile(t, 100)
	if err := file.Grow(0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, file, nil); err != nil {
		t.Fatal(err)
	}
	restored, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, got := file.Depths(), restored.Depths()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("depths %v, want %v", got, want)
		}
	}
}

// Custom hash functions must be re-applied at load time.
func TestRoundTripCustomHash(t *testing.T) {
	custom := func(v string) uint64 { return uint64(len(v)) }
	file := buildFile(t, 50, mkhash.WithHash(0, custom))
	var buf bytes.Buffer
	if err := Save(&buf, file, nil); err != nil {
		t.Fatal(err)
	}
	restored, _, err := Load(&buf, mkhash.WithHash(0, custom))
	if err != nil {
		t.Fatal(err)
	}
	pm, _ := restored.Spec(map[string]string{"a": "a7"})
	recs, err := restored.Search(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Errorf("search after custom-hash restore found %d records", len(recs))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	file := buildFile(t, 1)
	if err := Save(&buf, file, nil); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a bumped version by decoding and poking the struct.
	var snap snapshot
	if err := decodeInto(&buf, &snap); err != nil {
		t.Fatal(err)
	}
	snap.Version = 99
	var buf2 bytes.Buffer
	if err := encodeFrom(&buf2, &snap); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(&buf2); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	file := buildFile(t, 30)
	fs, _ := file.FileSystem(4)
	md := decluster.NewModulo(fs)
	path := filepath.Join(t.TempDir(), "snap.fx")
	if err := SaveFile(path, file, md); err != nil {
		t.Fatal(err)
	}
	restored, alloc, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 30 || alloc.Name() != "Modulo" {
		t.Errorf("restored %d records, alloc %v", restored.Len(), alloc)
	}
	if _, _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDirOf(t *testing.T) {
	if dirOf("/tmp/x/y.snap") != "/tmp/x" {
		t.Error("dirOf with slash wrong")
	}
	if dirOf("y.snap") != "." {
		t.Error("dirOf without slash wrong")
	}
}
