package persist

import (
	"encoding/gob"
	"io"
)

// Test-only helpers to manipulate raw snapshots.

func decodeInto(r io.Reader, snap *snapshot) error {
	return gob.NewDecoder(r).Decode(snap)
}

func encodeFrom(w io.Writer, snap *snapshot) error {
	return gob.NewEncoder(w).Encode(snap)
}
