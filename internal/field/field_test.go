package field

import (
	"testing"
	"testing/quick"

	"fxdist/internal/bitsx"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{I, "I"}, {U, "U"}, {IU1, "IU1"}, {IU2, "IU2"}, {Kind(9), "Kind(9)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind.String() = %q, want %q", got, c.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(U, 3, 16); err == nil {
		t.Error("non-power-of-two field size accepted")
	}
	if _, err := New(U, 4, 12); err == nil {
		t.Error("non-power-of-two device count accepted")
	}
	if _, err := New(U, 16, 16); err == nil {
		t.Error("U with F >= M accepted")
	}
	if _, err := New(IU1, 32, 16); err == nil {
		t.Error("IU1 with F > M accepted")
	}
	if _, err := New(I, 64, 16); err != nil {
		t.Errorf("I with F > M rejected: %v", err)
	}
}

// Paper Example 3: f = {0,1,2,3}, M = 16 => U(f) = {0,4,8,12}.
func TestUPaperExample(t *testing.T) {
	fn := MustNew(U, 4, 16)
	want := []int{0, 4, 8, 12}
	got := fn.Image()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("U image = %v, want %v", got, want)
		}
	}
}

// Paper Example 4: f = {0..7}, M = 16 => IU1(f) = {0,3,6,5,12,15,10,9}.
func TestIU1PaperExample(t *testing.T) {
	fn := MustNew(IU1, 8, 16)
	want := []int{0, 3, 6, 5, 12, 15, 10, 9}
	got := fn.Image()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IU1 image = %v, want %v", got, want)
		}
	}
}

// Paper Example 5 uses IU1(f2) = {0,5,10,15} for F = 4, M = 16.
func TestIU1PaperExample5(t *testing.T) {
	fn := MustNew(IU1, 4, 16)
	want := []int{0, 5, 10, 15}
	got := fn.Image()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IU1 image = %v, want %v", got, want)
		}
	}
}

// Paper Example 7: f = {0,1}, M = 16 => IU2(f) = {0,13}.
func TestIU2PaperExample(t *testing.T) {
	fn := MustNew(IU2, 2, 16)
	if fn.D1() != 8 || fn.D2() != 4 {
		t.Fatalf("IU2 params d1=%d d2=%d, want 8, 4", fn.D1(), fn.D2())
	}
	want := []int{0, 13}
	got := fn.Image()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IU2 image = %v, want %v", got, want)
		}
	}
}

// Example 6 uses U(f2) = {0,2,4,6} and IU1(f3) = {0,5} with M = 8.
func TestExample6Transforms(t *testing.T) {
	u := MustNew(U, 4, 8)
	if got := u.Image(); got[0] != 0 || got[1] != 2 || got[2] != 4 || got[3] != 6 {
		t.Fatalf("U^{8,4} image = %v", got)
	}
	iu1 := MustNew(IU1, 2, 8)
	if got := iu1.Image(); got[0] != 0 || got[1] != 5 {
		t.Fatalf("IU1^{8,2} image = %v", got)
	}
}

// When F*F >= M, IU2 degenerates to IU1 (paper note after Lemma 7.1).
func TestIU2DegeneratesToIU1(t *testing.T) {
	iu2 := MustNew(IU2, 8, 16) // 64 >= 16
	iu1 := MustNew(IU1, 8, 16)
	for l := 0; l < 8; l++ {
		if iu2.Apply(l) != iu1.Apply(l) {
			t.Fatalf("IU2(%d)=%d != IU1(%d)=%d", l, iu2.Apply(l), l, iu1.Apply(l))
		}
	}
	if !iu2.SameMethod(iu1) {
		t.Error("degenerate IU2 not reported as same method as IU1")
	}
	if MustNew(IU2, 2, 16).SameMethod(iu1) {
		t.Error("non-degenerate IU2 reported as same method as IU1")
	}
}

// Lemmas 5.1 and 7.1: IU1 and IU2 are injective into Z_M for any F < M.
func TestInjectivity(t *testing.T) {
	for _, kind := range []Kind{U, IU1, IU2} {
		for mexp := 1; mexp <= 10; mexp++ {
			m := 1 << mexp
			for fexp := 0; fexp < mexp; fexp++ {
				f := 1 << fexp
				fn := MustNew(kind, f, m)
				seen := make(map[int]bool)
				for l := 0; l < f; l++ {
					v := fn.Apply(l)
					if v < 0 || v >= m {
						t.Fatalf("%v(%d) = %d out of Z_%d", fn, l, v, m)
					}
					if seen[v] {
						t.Fatalf("%v not injective at %d", fn, l)
					}
					seen[v] = true
				}
			}
		}
	}
}

// Lemmas 5.4 and 7.2: IU1 and IU2 place exactly one element in each
// interval [i*d1, (i+1)*d1) of Z_M.
func TestOneElementPerInterval(t *testing.T) {
	for _, kind := range []Kind{IU1, IU2} {
		for mexp := 1; mexp <= 10; mexp++ {
			m := 1 << mexp
			for fexp := 0; fexp < mexp; fexp++ {
				f := 1 << fexp
				fn := MustNew(kind, f, m)
				d1 := m / f
				counts := make([]int, f)
				for _, v := range fn.Image() {
					counts[bitsx.IntervalOf(v, d1)]++
				}
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("%v: interval %d holds %d elements, want 1", fn, i, c)
					}
				}
			}
		}
	}
}

// U places its image exactly at interval boundaries: U(l) = l*d1.
func TestUSpacingProperty(t *testing.T) {
	f := func(mexp, fexp uint8) bool {
		me := int(mexp%10) + 1
		fe := int(fexp) % me
		m, fsz := 1<<me, 1<<fe
		fn := MustNew(U, fsz, m)
		img := fn.Image()
		for l := 1; l < fsz; l++ {
			if img[l]-img[l-1] != m/fsz {
				return false
			}
		}
		return img[0] == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	fn := MustNew(IU2, 2, 16)
	if got := fn.String(); got != "IU2^{16,2}" {
		t.Errorf("Func.String() = %q", got)
	}
	p := MustPlan([]int{4, 2, 2}, 16, WithKinds([]Kind{I, U, IU2}))
	if got := p.String(); got != "[I U IU2]@M=16" {
		t.Errorf("Plan.String() = %q", got)
	}
}

func TestAccessors(t *testing.T) {
	fn := MustNew(U, 4, 32)
	if fn.Kind() != U || fn.FieldSize() != 4 || fn.Devices() != 32 || fn.D1() != 8 || fn.D2() != 0 {
		t.Errorf("accessors wrong: %+v", fn)
	}
}
