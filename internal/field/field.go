// Package field implements the field transformation functions of the FX
// distribution method (paper §4.1): the identity transform I, the equally
// spaced transform U, and the xor-folded transforms IU1 and IU2, together
// with a planner that assigns a transformation method to every field of a
// file system (paper §4.2 and Theorem 9).
//
// A transformation function X^{M,|f|} maps a hashed field domain
// f = {0..F-1} with F < M injectively into Z_M; fields with F >= M always
// use the identity. The FX allocator xors the transformed field values and
// keeps the low log2(M) bits to obtain a device number.
package field

import (
	"fmt"

	"fxdist/internal/bitsx"
)

// Kind identifies a transformation method. Two Funcs are "the same
// transformation method" (paper §4.1) iff their Kinds are equal,
// regardless of M and F.
type Kind int

const (
	// I is the identity transformation.
	I Kind = iota
	// U maps l to l*d with d = M/F, spreading the domain equally over Z_M.
	U
	// IU1 maps l to l ^ (l*d) with d = M/F.
	IU1
	// IU2 maps l to l ^ (l*d1) ^ (l*d2) with d1 = M/F and d2 = d1/F when
	// F*F < M (otherwise d2 = 0, making IU2 identical to IU1).
	IU2
)

// String returns the paper's name for the transformation method.
func (k Kind) String() string {
	switch k {
	case I:
		return "I"
	case U:
		return "U"
	case IU1:
		return "IU1"
	case IU2:
		return "IU2"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Func is a concrete field transformation function X^{M,F}. The zero value
// is not usable; construct with New.
type Func struct {
	kind   Kind
	m      int // number of devices
	f      int // field size |f|
	d1, d2 int // U/IU multipliers; 0 when unused
}

// New constructs the transformation function of the given kind for a field
// of size f under m devices. Both f and m must be powers of two. U, IU1 and
// IU2 additionally require f < m (they are defined only for proper subsets
// of Z_M); I accepts any f.
func New(kind Kind, f, m int) (Func, error) {
	if !bitsx.IsPow2(f) {
		return Func{}, fmt.Errorf("field: size %d is not a power of two", f)
	}
	if !bitsx.IsPow2(m) {
		return Func{}, fmt.Errorf("field: device count %d is not a power of two", m)
	}
	fn := Func{kind: kind, m: m, f: f}
	if kind == I {
		return fn, nil
	}
	if f >= m {
		return Func{}, fmt.Errorf("field: %v transformation requires field size %d < device count %d", kind, f, m)
	}
	fn.d1 = m / f
	if kind == IU2 && f*f < m {
		fn.d2 = fn.d1 / f
	}
	return fn, nil
}

// MustNew is New, panicking on error. For use with statically known
// configurations (tests, table reproduction).
func MustNew(kind Kind, f, m int) Func {
	fn, err := New(kind, f, m)
	if err != nil {
		panic(err)
	}
	return fn
}

// Kind returns the transformation method of fn.
func (fn Func) Kind() Kind { return fn.kind }

// FieldSize returns |f|, the domain size of fn.
func (fn Func) FieldSize() int { return fn.f }

// Devices returns M, the device count fn was built for.
func (fn Func) Devices() int { return fn.m }

// D1 returns the spacing parameter d1 = M/F (0 for the identity).
func (fn Func) D1() int { return fn.d1 }

// D2 returns the second IU2 parameter (0 unless kind is IU2 and F*F < M).
func (fn Func) D2() int { return fn.d2 }

// Apply returns X(l). l must be in [0, F) for non-identity transforms; the
// identity passes any value through unchanged.
func (fn Func) Apply(l int) int {
	switch fn.kind {
	case I:
		return l
	case U:
		return l * fn.d1
	case IU1:
		return l ^ (l * fn.d1)
	case IU2:
		return l ^ (l * fn.d1) ^ (l * fn.d2)
	default:
		panic(fmt.Sprintf("field: apply of invalid kind %d", int(fn.kind)))
	}
}

// Image returns {X(l) : l in f} in domain order. For non-identity
// transforms the image is a subset of Z_M; injectivity (Lemmas 5.1 and 7.1)
// is property-tested.
func (fn Func) Image() []int {
	out := make([]int, fn.f)
	for l := 0; l < fn.f; l++ {
		out[l] = fn.Apply(l)
	}
	return out
}

// SameMethod reports whether fn and other use the same transformation
// method in the paper's sense (equal Kind). IU1 and IU2 count as the same
// method when IU2 degenerates to IU1 (F*F >= M), since their images are
// then identical.
func (fn Func) SameMethod(other Func) bool {
	return fn.effectiveKind() == other.effectiveKind()
}

func (fn Func) effectiveKind() Kind {
	if fn.kind == IU2 && fn.d2 == 0 {
		return IU1
	}
	return fn.kind
}

// String renders the function with its parameters, e.g. "IU2^{16,2}".
func (fn Func) String() string {
	return fmt.Sprintf("%v^{%d,%d}", fn.kind, fn.m, fn.f)
}
