package field

import (
	"testing"
)

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(nil, 16); err == nil {
		t.Error("empty field list accepted")
	}
	if _, err := NewPlan([]int{4, 4}, 12); err == nil {
		t.Error("non-power-of-two M accepted")
	}
	if _, err := NewPlan([]int{4, 6}, 16); err == nil {
		t.Error("non-power-of-two field size accepted")
	}
	if _, err := NewPlan([]int{32, 4}, 16, WithKinds([]Kind{U, I})); err == nil {
		t.Error("non-identity kind on large field accepted")
	}
	if _, err := NewPlan([]int{32, 4}, 16, WithKinds([]Kind{I})); err == nil {
		t.Error("kind count mismatch accepted")
	}
}

func TestPlanAllLargeFieldsGetIdentity(t *testing.T) {
	p := MustPlan([]int{32, 64, 32}, 16)
	for i, fn := range p.Funcs {
		if fn.Kind() != I {
			t.Errorf("field %d: kind %v, want I", i, fn.Kind())
		}
	}
}

// The paper's Table 7/8 assignment: fields 1,4 -> I, 2,5 -> U, 3,6 -> IU1.
func TestPlanRoundRobinMatchesPaperTables(t *testing.T) {
	p := MustPlan([]int{8, 8, 8, 8, 8, 8}, 32,
		WithStrategy(RoundRobin), WithFamily(FamilyIU1))
	want := []Kind{I, U, IU1, I, U, IU1}
	got := p.Kinds()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

// Theorem 9 ordering for three small fields F_i >= F_k >= F_j:
// I on the largest, IU2 on the middle, U on the smallest.
func TestPlanSizeOrderedTheorem9(t *testing.T) {
	p := MustPlan([]int{2, 8, 4}, 16, WithStrategy(SizeOrdered))
	want := []Kind{U, I, IU2} // sizes 2, 8, 4 -> smallest, largest, middle
	got := p.Kinds()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
	// IU2 field must not be smaller than U field (Lemma 9.1 cond. 2).
	var iu2Size, uSize int
	for i, k := range got {
		switch k {
		case IU2:
			iu2Size = p.Funcs[i].FieldSize()
		case U:
			uSize = p.Funcs[i].FieldSize()
		}
	}
	if iu2Size < uSize {
		t.Errorf("IU2 field size %d < U field size %d", iu2Size, uSize)
	}
}

func TestPlanTwoSmallFieldsDifferentMethods(t *testing.T) {
	p := MustPlan([]int{4, 4, 64}, 16, WithStrategy(SizeOrdered))
	k := p.Kinds()
	if k[2] != I {
		t.Errorf("large field kind %v, want I", k[2])
	}
	if k[0] == k[1] {
		t.Errorf("two small fields share method %v", k[0])
	}
}

func TestPlanMixedLargeAndSmall(t *testing.T) {
	p := MustPlan([]int{64, 8, 8, 8}, 32, WithStrategy(RoundRobin), WithFamily(FamilyIU1))
	want := []Kind{I, I, U, IU1}
	got := p.Kinds()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func TestPlanExplicitKinds(t *testing.T) {
	p := MustPlan([]int{2, 4, 2}, 8, WithKinds([]Kind{I, U, IU1}))
	want := []Kind{I, U, IU1}
	got := p.Kinds()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

// With >3 small fields the default strategy still assigns all three methods.
func TestPlanManySmallFieldsUsesAllMethods(t *testing.T) {
	p := MustPlan([]int{8, 8, 8, 8, 8, 8}, 512, WithFamily(FamilyIU2))
	counts := map[Kind]int{}
	for _, k := range p.Kinds() {
		counts[k]++
	}
	if counts[I] != 2 || counts[U] != 2 || counts[IU2] != 2 {
		t.Errorf("method distribution %v, want 2 of each", counts)
	}
}

func TestMustPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPlan with bad config did not panic")
		}
	}()
	MustPlan([]int{3}, 16)
}
