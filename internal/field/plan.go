package field

import (
	"fmt"
	"sort"

	"fxdist/internal/bitsx"
)

// Family selects which xor-folded transform the planner uses alongside I
// and U for fields smaller than M. The paper uses the IU1 family in Tables
// 7 and 8 (and Figures 1-2) and the IU2 family in Table 9 (and Figures
// 3-4); IU2 subsumes IU1 whenever F*F >= M.
type Family Kind

const (
	// FamilyIU1 cycles I, U, IU1 over small fields.
	FamilyIU1 = Family(IU1)
	// FamilyIU2 cycles I, U, IU2 over small fields.
	FamilyIU2 = Family(IU2)
)

// Strategy selects how the planner assigns methods to small fields.
type Strategy int

const (
	// Auto picks SizeOrdered when at most three fields are smaller than M
	// (the regime where Theorem 9 guarantees perfect optimality) and
	// RoundRobin otherwise. This is the default.
	Auto Strategy = iota
	// RoundRobin cycles I, U, IU over small fields in field order. This is
	// the assignment used for the paper's Tables 7-9 (fields 1,4 -> I;
	// 2,5 -> U; 3,6 -> IU1/IU2).
	RoundRobin
	// SizeOrdered applies Theorem 9's ordering: the largest small field
	// gets I, the smallest gets U, the middle gets IU2, so that the IU2
	// field is never smaller than the U field (Lemma 9.1's second
	// condition). With more than three small fields it cycles the ordered
	// assignment.
	SizeOrdered
)

// Plan holds one transformation function per field of a file system.
type Plan struct {
	// M is the device count the plan was built for.
	M int
	// Funcs has one entry per field, in field order.
	Funcs []Func
}

// PlanOption configures NewPlan.
type PlanOption func(*planConfig)

type planConfig struct {
	family   Family
	strategy Strategy
	explicit []Kind
}

// WithFamily selects the xor-folded transform family (default FamilyIU2,
// which degenerates to IU1 exactly when IU1 would have been legal anyway).
func WithFamily(fam Family) PlanOption {
	return func(c *planConfig) { c.family = fam }
}

// WithStrategy selects the assignment strategy (default SizeOrdered for up
// to three small fields, matching Theorem 9; RoundRobin otherwise).
func WithStrategy(s Strategy) PlanOption {
	return func(c *planConfig) { c.strategy = s }
}

// WithKinds overrides the planner entirely with an explicit per-field kind
// assignment. Fields with size >= M must be assigned I.
func WithKinds(kinds []Kind) PlanOption {
	return func(c *planConfig) { c.explicit = append([]Kind(nil), kinds...) }
}

// NewPlan builds a transformation plan for the given field sizes and device
// count. Sizes and m must be powers of two. Fields with size >= M always
// receive the identity; smaller fields receive I, U and IU1/IU2 per the
// configured strategy so that adjacent small fields use different methods
// (the precondition of the paper's §4.2 optimality conditions 3-5).
func NewPlan(sizes []int, m int, opts ...PlanOption) (Plan, error) {
	if len(sizes) == 0 {
		return Plan{}, fmt.Errorf("field: plan needs at least one field")
	}
	if !bitsx.IsPow2(m) {
		return Plan{}, fmt.Errorf("field: device count %d is not a power of two", m)
	}
	for i, f := range sizes {
		if !bitsx.IsPow2(f) {
			return Plan{}, fmt.Errorf("field: size of field %d (%d) is not a power of two", i, f)
		}
	}
	cfg := planConfig{family: FamilyIU2, strategy: Auto}
	for _, opt := range opts {
		opt(&cfg)
	}

	if cfg.explicit != nil {
		return planFromKinds(sizes, m, cfg.explicit)
	}

	small := smallFields(sizes, m)
	kinds := make([]Kind, len(sizes))
	for i := range kinds {
		kinds[i] = I
	}

	strategy := cfg.strategy
	if strategy == Auto {
		if len(small) <= 3 {
			strategy = SizeOrdered
		} else {
			strategy = RoundRobin
		}
	}
	switch {
	case len(small) == 0:
		// All identity: Basic FX suffices (Theorems 1 and 2).
	case strategy == SizeOrdered:
		assignSizeOrdered(sizes, small, kinds, cfg.family)
	default:
		assignRoundRobin(small, kinds, cfg.family)
	}
	return planFromKinds(sizes, m, kinds)
}

// MustPlan is NewPlan, panicking on error.
func MustPlan(sizes []int, m int, opts ...PlanOption) Plan {
	p, err := NewPlan(sizes, m, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

func smallFields(sizes []int, m int) []int {
	var idx []int
	for i, f := range sizes {
		if f < m {
			idx = append(idx, i)
		}
	}
	return idx
}

// assignRoundRobin cycles I, U, IU over the small fields in field order,
// matching the assignment in the paper's Tables 7-9.
func assignRoundRobin(small []int, kinds []Kind, fam Family) {
	cycle := []Kind{I, U, Kind(fam)}
	for j, i := range small {
		kinds[i] = cycle[j%3]
	}
}

// assignSizeOrdered implements Theorem 9's ordering. With small fields
// sorted by descending size F_i >= F_k >= F_j, the theorem applies I to
// the largest, IU2 to the middle and U to the smallest, which guarantees
// the IU2-transformed field is at least as large as the U-transformed one
// (Lemma 9.1 condition 2). With more than three small fields the ordered
// triple assignment repeats over consecutive size-ranked triples.
func assignSizeOrdered(sizes []int, small []int, kinds []Kind, fam Family) {
	ranked := append([]int(nil), small...)
	sort.SliceStable(ranked, func(a, b int) bool {
		return sizes[ranked[a]] > sizes[ranked[b]]
	})
	cycle := []Kind{I, Kind(fam), U}
	if len(ranked) == 2 {
		// Two small fields: any two different methods (Theorems 4-8).
		cycle = []Kind{I, U}
	}
	for j, i := range ranked {
		kinds[i] = cycle[j%len(cycle)]
	}
}

func planFromKinds(sizes []int, m int, kinds []Kind) (Plan, error) {
	if len(kinds) != len(sizes) {
		return Plan{}, fmt.Errorf("field: %d kinds for %d fields", len(kinds), len(sizes))
	}
	funcs := make([]Func, len(sizes))
	for i, k := range kinds {
		if sizes[i] >= m && k != I {
			return Plan{}, fmt.Errorf("field: field %d has size %d >= M=%d and must use I, got %v", i, sizes[i], m, k)
		}
		fn, err := New(k, sizes[i], m)
		if err != nil {
			return Plan{}, fmt.Errorf("field %d: %w", i, err)
		}
		funcs[i] = fn
	}
	return Plan{M: m, Funcs: funcs}, nil
}

// Kinds returns the per-field transformation methods of the plan.
func (p Plan) Kinds() []Kind {
	out := make([]Kind, len(p.Funcs))
	for i, fn := range p.Funcs {
		out[i] = fn.Kind()
	}
	return out
}

// String renders the plan compactly, e.g. "[I U IU2 I]@M=16".
func (p Plan) String() string {
	s := "["
	for i, fn := range p.Funcs {
		if i > 0 {
			s += " "
		}
		s += fn.Kind().String()
	}
	return fmt.Sprintf("%s]@M=%d", s, p.M)
}
