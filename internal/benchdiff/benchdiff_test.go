package benchdiff

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(benches ...Bench) Snapshot {
	return Snapshot{Date: "2026-08-08", Go: "go1.24.0", Commit: "abc1234", Benchmarks: benches}
}

func TestDiffPassesWithinNoise(t *testing.T) {
	base := snap(
		Bench{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100},
		Bench{Name: "BenchmarkB", NsPerOp: 50, AllocsPerOp: 0},
	)
	cur := snap(
		Bench{Name: "BenchmarkA", NsPerOp: 1200, AllocsPerOp: 105}, // +20% ns, +5% allocs
		Bench{Name: "BenchmarkB", NsPerOp: 40, AllocsPerOp: 0},
		Bench{Name: "BenchmarkNew", NsPerOp: 9999, AllocsPerOp: 9999}, // new coverage, not a regression
	)
	deltas, regressed := Diff(base, cur, DefaultThresholds())
	if regressed {
		t.Fatalf("within-noise diff flagged as regression: %+v", deltas)
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2 (baseline benchmarks only)", len(deltas))
	}
}

func TestDiffCatchesNsRegression(t *testing.T) {
	base := snap(Bench{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100})
	cur := snap(Bench{Name: "BenchmarkA", NsPerOp: 1300, AllocsPerOp: 100}) // +30% > 25% gate
	deltas, regressed := Diff(base, cur, DefaultThresholds())
	if !regressed || !deltas[0].NsRegressed {
		t.Fatalf("+30%% ns/op not flagged: %+v", deltas[0])
	}
	if deltas[0].AllocsRegr {
		t.Fatalf("allocs wrongly flagged: %+v", deltas[0])
	}
}

func TestDiffCatchesAllocRegression(t *testing.T) {
	base := snap(Bench{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100})
	cur := snap(Bench{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 115}) // +15% > 10% gate
	deltas, regressed := Diff(base, cur, DefaultThresholds())
	if !regressed || !deltas[0].AllocsRegr {
		t.Fatalf("+15%% allocs/op not flagged: %+v", deltas[0])
	}
}

func TestDiffZeroAllocBaseline(t *testing.T) {
	// 0 → 0 passes; 0 → small rounding slack passes; 0 → 1 fails.
	base := snap(Bench{Name: "BenchmarkA", NsPerOp: 35, AllocsPerOp: 0})
	for _, tc := range []struct {
		cur  float64
		want bool
	}{{0, false}, {0.3, false}, {1, true}} {
		cur := snap(Bench{Name: "BenchmarkA", NsPerOp: 35, AllocsPerOp: tc.cur})
		_, regressed := Diff(base, cur, DefaultThresholds())
		if regressed != tc.want {
			t.Errorf("0 → %.1f allocs/op: regressed=%v, want %v", tc.cur, regressed, tc.want)
		}
	}
}

func TestDiffCatchesBytesRegression(t *testing.T) {
	base := snap(Bench{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 10000, AllocsPerOp: 100})
	cur := snap(Bench{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 13500, AllocsPerOp: 100}) // +35% > 25% gate
	deltas, regressed := Diff(base, cur, DefaultThresholds())
	if !regressed || !deltas[0].BytesRegr {
		t.Fatalf("+35%% B/op not flagged: %+v", deltas[0])
	}
	if deltas[0].NsRegressed || deltas[0].AllocsRegr {
		t.Fatalf("ns/allocs wrongly flagged: %+v", deltas[0])
	}
}

func TestDiffBytesSlackAndMissingBaseline(t *testing.T) {
	// A tiny benchmark growing by one pool size class stays inside the
	// absolute slack even though the fractional growth is huge; a
	// baseline without B/op (pre-benchmem snapshot) is not gated at all.
	base := snap(
		Bench{Name: "BenchmarkTiny", NsPerOp: 50, BytesPerOp: 16, AllocsPerOp: 1},
		Bench{Name: "BenchmarkNoBytes", NsPerOp: 50, AllocsPerOp: 1},
	)
	cur := snap(
		Bench{Name: "BenchmarkTiny", NsPerOp: 50, BytesPerOp: 80, AllocsPerOp: 1}, // +64B: inside slack
		Bench{Name: "BenchmarkNoBytes", NsPerOp: 50, BytesPerOp: 1 << 20, AllocsPerOp: 1},
	)
	deltas, regressed := Diff(base, cur, DefaultThresholds())
	if regressed {
		t.Fatalf("slack/unbaselined B/op growth flagged: %+v", deltas)
	}
}

func TestDiffMissingBenchmarkRegresses(t *testing.T) {
	base := snap(
		Bench{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100},
		Bench{Name: "BenchmarkGone", NsPerOp: 500, AllocsPerOp: 10},
	)
	cur := snap(Bench{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100})
	deltas, regressed := Diff(base, cur, DefaultThresholds())
	if !regressed {
		t.Fatal("missing benchmark not flagged as regression")
	}
	var gone *Delta
	for i := range deltas {
		if deltas[i].Name == "BenchmarkGone" {
			gone = &deltas[i]
		}
	}
	if gone == nil || !gone.Missing || !gone.Regressed() {
		t.Fatalf("BenchmarkGone delta wrong: %+v", gone)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	s := snap(Bench{Name: "BenchmarkA", Runs: 3, Iterations: 42, NsPerOp: 1000.5, BytesPerOp: 64, AllocsPerOp: 2})
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0] != s.Benchmarks[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("loading a missing file did not error")
	}
}

func TestLoadCommittedSnapshotFormat(t *testing.T) {
	// The real snapshot format (awk-emitted by scripts/bench.sh) must
	// decode: guard against the JSON field names drifting apart.
	matches, err := filepath.Glob("../../BENCH_*.json")
	if err != nil || len(matches) == 0 {
		t.Skipf("no committed BENCH_*.json snapshots: %v", err)
	}
	s, err := Load(matches[len(matches)-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) == 0 || s.Date == "" {
		t.Fatalf("snapshot %s decoded empty: %+v", matches[len(matches)-1], s)
	}
	for _, b := range s.Benchmarks {
		if b.Name == "" || b.NsPerOp <= 0 {
			t.Fatalf("benchmark decoded without name or ns/op: %+v", b)
		}
	}
}

func TestWriteTextMarksRegressions(t *testing.T) {
	base := snap(
		Bench{Name: "BenchmarkOK", NsPerOp: 100, AllocsPerOp: 10},
		Bench{Name: "BenchmarkSlow", NsPerOp: 100, AllocsPerOp: 10},
		Bench{Name: "BenchmarkGone", NsPerOp: 100, AllocsPerOp: 10},
	)
	cur := snap(
		Bench{Name: "BenchmarkOK", NsPerOp: 101, AllocsPerOp: 10},
		Bench{Name: "BenchmarkSlow", NsPerOp: 500, AllocsPerOp: 10},
	)
	th := DefaultThresholds()
	deltas, regressed := Diff(base, cur, th)
	if !regressed {
		t.Fatal("expected regression")
	}
	var sb strings.Builder
	WriteText(&sb, base, cur, deltas, th)
	out := sb.String()
	if !strings.Contains(out, "REGRESSED (ns/op)") || !strings.Contains(out, "missing from current") {
		t.Fatalf("text output missing verdicts:\n%s", out)
	}
	if strings.Count(out, "REGRESSED") != 2 {
		t.Fatalf("want exactly 2 REGRESSED rows:\n%s", out)
	}
}
