// Package benchdiff compares two benchmark snapshots produced by
// scripts/bench.sh (the BENCH_<date>.json files in the repo root) and
// flags regressions: ns/op beyond a noise allowance, B/op growth, or
// allocs/op creep beyond a tighter one (alloc counts are
// near-deterministic, so they get a stricter gate than wall time).
// It is the perf-regression gate run in CI against the newest
// committed snapshot.
package benchdiff

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// Bench is one benchmark's folded result in a snapshot.
type Bench struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Snapshot is one BENCH_<date>.json file.
type Snapshot struct {
	Date       string  `json:"date"`
	Go         string  `json:"go"`
	Commit     string  `json:"commit"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Load reads and decodes one snapshot file.
func Load(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Thresholds are the regression gates, as fractions of the baseline.
// Wall time is noisy (scheduler, CPU contention), so it gets a wide
// allowance; allocs/op is near-deterministic and gets a tight one,
// plus half an alloc of absolute slack for the snapshot's mean
// rounding across -count runs. B/op sits in between: with pooled
// buffers on the hot path a pool miss allocates a whole size class
// and misses depend on GC timing, so bytes wobble like wall time
// even when alloc counts hold steady — it gets the wide allowance
// plus 64 bytes of absolute slack so tiny benchmarks aren't gated
// on a single rounded-up slab.
type Thresholds struct {
	NsFrac     float64 // ns/op may grow by this fraction (default 0.25)
	BytesFrac  float64 // B/op may grow by this fraction (default 0.25)
	AllocsFrac float64 // allocs/op may grow by this fraction (default 0.10)
}

// bytesSlack is the absolute B/op growth always allowed on top of the
// fractional gate: one size class of pool-miss rounding.
const bytesSlack = 64

// DefaultThresholds gates ns/op at +25%, B/op at +25% (+64 bytes),
// and allocs/op at +10%.
func DefaultThresholds() Thresholds {
	return Thresholds{NsFrac: 0.25, BytesFrac: 0.25, AllocsFrac: 0.10}
}

// Delta is one benchmark's baseline-to-current comparison.
type Delta struct {
	Name        string  `json:"name"`
	BaseNs      float64 `json:"base_ns_per_op"`
	CurNs       float64 `json:"cur_ns_per_op"`
	NsFrac      float64 `json:"ns_frac"` // (cur-base)/base
	BaseBytes   float64 `json:"base_bytes_per_op"`
	CurBytes    float64 `json:"cur_bytes_per_op"`
	BytesFrac   float64 `json:"bytes_frac"`
	BaseAllocs  float64 `json:"base_allocs_per_op"`
	CurAllocs   float64 `json:"cur_allocs_per_op"`
	AllocsFrac  float64 `json:"allocs_frac"`
	Missing     bool    `json:"missing,omitempty"` // in baseline, absent from current
	NsRegressed bool    `json:"ns_regressed,omitempty"`
	BytesRegr   bool    `json:"bytes_regressed,omitempty"`
	AllocsRegr  bool    `json:"allocs_regressed,omitempty"`
}

// Regressed reports whether this delta trips any gate. A benchmark
// that vanished from the current snapshot counts as a regression — a
// gate that silently stops measuring is no gate.
func (d Delta) Regressed() bool {
	return d.Missing || d.NsRegressed || d.BytesRegr || d.AllocsRegr
}

// Diff compares current against base, one Delta per baseline
// benchmark (sorted by name), and reports whether any regressed.
// Benchmarks only in current are new coverage, not regressions, and
// are not reported.
func Diff(base, cur Snapshot, th Thresholds) ([]Delta, bool) {
	if th.NsFrac <= 0 {
		th.NsFrac = DefaultThresholds().NsFrac
	}
	if th.BytesFrac <= 0 {
		th.BytesFrac = DefaultThresholds().BytesFrac
	}
	if th.AllocsFrac <= 0 {
		th.AllocsFrac = DefaultThresholds().AllocsFrac
	}
	curBy := make(map[string]Bench, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	deltas := make([]Delta, 0, len(base.Benchmarks))
	bad := false
	for _, b := range base.Benchmarks {
		d := Delta{Name: b.Name, BaseNs: b.NsPerOp, BaseBytes: b.BytesPerOp, BaseAllocs: b.AllocsPerOp}
		c, ok := curBy[b.Name]
		if !ok {
			d.Missing = true
			bad = true
			deltas = append(deltas, d)
			continue
		}
		d.CurNs = c.NsPerOp
		d.CurBytes = c.BytesPerOp
		d.CurAllocs = c.AllocsPerOp
		d.NsFrac = frac(b.NsPerOp, c.NsPerOp)
		d.BytesFrac = frac(b.BytesPerOp, c.BytesPerOp)
		d.AllocsFrac = frac(b.AllocsPerOp, c.AllocsPerOp)
		d.NsRegressed = b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+th.NsFrac)
		// Baselines that predate -benchmem carry no B/op; don't gate them.
		d.BytesRegr = b.BytesPerOp > 0 && c.BytesPerOp > b.BytesPerOp*(1+th.BytesFrac)+bytesSlack
		d.AllocsRegr = c.AllocsPerOp > b.AllocsPerOp*(1+th.AllocsFrac)+0.5
		if d.Regressed() {
			bad = true
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, bad
}

func frac(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (cur - base) / base
}

// WriteText renders the comparison as an aligned table, regressions
// marked with the gate they tripped.
func WriteText(w io.Writer, base, cur Snapshot, deltas []Delta, th Thresholds) {
	fmt.Fprintf(w, "base %s (%s)  vs  current %s (%s)\n", base.Date, base.Commit, cur.Date, cur.Commit)
	fmt.Fprintf(w, "gates: ns/op +%.0f%%, B/op +%.0f%%+%dB, allocs/op +%.0f%%\n",
		th.NsFrac*100, th.BytesFrac*100, bytesSlack, th.AllocsFrac*100)
	fmt.Fprintf(w, "%-45s %14s %14s %8s %12s %12s %8s %12s %12s %8s  %s\n",
		"benchmark", "base ns/op", "cur ns/op", "Δns",
		"base B/op", "cur B/op", "ΔB",
		"base allocs", "cur allocs", "Δallocs", "verdict")
	for _, d := range deltas {
		if d.Missing {
			fmt.Fprintf(w, "%-45s %14.1f %14s %8s %12.1f %12s %8s %12.1f %12s %8s  REGRESSED (missing from current snapshot)\n",
				d.Name, d.BaseNs, "-", "-", d.BaseBytes, "-", "-", d.BaseAllocs, "-", "-")
			continue
		}
		var tripped []string
		if d.NsRegressed {
			tripped = append(tripped, "ns/op")
		}
		if d.BytesRegr {
			tripped = append(tripped, "B/op")
		}
		if d.AllocsRegr {
			tripped = append(tripped, "allocs/op")
		}
		verdict := "ok"
		if len(tripped) > 0 {
			verdict = "REGRESSED (" + strings.Join(tripped, " and ") + ")"
		}
		fmt.Fprintf(w, "%-45s %14.1f %14.1f %7.1f%% %12.1f %12.1f %7.1f%% %12.1f %12.1f %7.1f%%  %s\n",
			d.Name, d.BaseNs, d.CurNs, d.NsFrac*100,
			d.BaseBytes, d.CurBytes, d.BytesFrac*100,
			d.BaseAllocs, d.CurAllocs, d.AllocsFrac*100, verdict)
	}
}
