// Package telemetry is the cluster-wide observability plane layered on
// internal/obs. It adds three fleet-level instruments the per-node
// metrics/traces/profiles from earlier PRs cannot provide:
//
//   - a wide-event query log — one structured event per retrieval with
//     everything an operator asks of a single query (shape, plan-cache
//     hit, per-stage costs, per-device bucket counts vs the paper's
//     strict bound ceil(|R(q)|/M), trace ID, error/partial manifest),
//     head-sampled per shape with always-keep rules for errors,
//     SLO-slow and bound-violating queries (/debug/events, NDJSON
//     streamable);
//
//   - metrics federation — node snapshots pulled by the netdist
//     coordinator over the wire protocol and merged into one fleet view
//     (/debug/cluster): per-node liveness/lag/identity, summed
//     counters, merged histograms, worst-device discrepancy and SLO
//     burn across nodes;
//
//   - the keep decision that drives tail-based trace retention and
//     histogram exemplars in obs, so a kept event links to a kept trace
//     tree and a latency bucket links to both.
package telemetry

import (
	"sort"
	"sync"
	"time"

	"fxdist/internal/audit"
	"fxdist/internal/obs"
)

// DeviceSample is one device's share of a wide event.
type DeviceSample struct {
	Device  int           `json:"device"`
	Buckets int           `json:"buckets"`
	Scan    time.Duration `json:"scan_ns,omitempty"`
	Err     string        `json:"err,omitempty"`
}

// Event is one wide event: the full story of one retrieval. The engine
// executor emits one per query; the log decides whether it is kept.
type Event struct {
	Time    time.Time `json:"time"`
	Backend string    `json:"backend"`
	Shape   string    `json:"shape"`
	// Tenant is the caller attribution (a gateway tenant name), empty
	// for unattributed retrievals. See engine.ContextWithCaller.
	Tenant  string        `json:"tenant,omitempty"`
	TraceID uint64        `json:"trace_id,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns"`

	PlanCacheHit bool `json:"plan_cache_hit"`
	// RQ is |R(q)|; Bound is the paper's strict bound ceil(|R(q)|/M);
	// MaxDeviceBuckets the worst single device of this query.
	RQ               int  `json:"rq"`
	Bound            int  `json:"bound"`
	MaxDeviceBuckets int  `json:"max_device_buckets"`
	BoundViolation   bool `json:"bound_violation,omitempty"`

	// Slow is set by the log when Elapsed exceeded the shape's SLO
	// target (recorded in SLOTarget).
	Slow      bool          `json:"slow,omitempty"`
	SLOTarget time.Duration `json:"slo_target_ns,omitempty"`

	// Error/partial manifest.
	Err           string  `json:"err,omitempty"`
	Partial       bool    `json:"partial,omitempty"`
	Coverage      float64 `json:"coverage,omitempty"`
	FailedDevices []int   `json:"failed_devices,omitempty"`

	Devices []DeviceSample    `json:"devices,omitempty"`
	Stages  []obs.StageSample `json:"stages,omitempty"`

	// Keep records why the log kept this event (error/slow/bound =
	// always-keep; head/sample = head sampling).
	Keep []string `json:"keep,omitempty"`
}

// Head-sampling keep reasons (the always-keep reasons are shared with
// trace retention: obs.KeepError/KeepSlow/KeepBound/KeepSample).
const (
	KeepHead = "head"
)

// Decision is the outcome of offering an event to the log. Always is
// true when an always-keep rule fired — the engine mirrors the same
// decision into trace retention (retain on Always, uniform-sample
// otherwise) so kept events and kept traces stay consistent.
type Decision struct {
	Kept    bool
	Always  bool
	Reasons []string
}

// Config tunes one backend's event log.
type Config struct {
	// Capacity bounds the kept-event ring (default 1024).
	Capacity int
	// HeadPerShape keeps the first K events of every shape
	// unconditionally — new shapes are always interesting (default 8).
	HeadPerShape uint64
	// SampleEvery keeps 1 in N per shape after the head (default 16;
	// 0 keeps none beyond head and always-keep).
	SampleEvery uint64
	// SlowFor returns the latency threshold above which a query of the
	// shape is always kept (0 = no slow rule for the shape). Defaults
	// to the backend's audit SLO target.
	SlowFor func(shape string) time.Duration
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	return c
}

// DefaultEventConfig is the sampling policy LogFor starts with.
var DefaultEventConfig = Config{Capacity: 1024, HeadPerShape: 8, SampleEvery: 16}

type shapeSampler struct {
	seen uint64
	kept uint64
}

// EventLog is one backend's wide-event query log: a bounded ring of
// kept events plus per-shape head-sampling state. All methods are safe
// for concurrent use and no-op on nil.
type EventLog struct {
	backend string

	mu     sync.Mutex
	cfg    Config
	ring   []Event
	next   int
	full   bool
	shapes map[string]*shapeSampler
	seen   uint64
	kept   uint64
	subs   map[chan Event]struct{}

	mSeen    *obs.Counter
	mKept    *obs.Counter
	mDropped *obs.Counter
}

// NewEventLog returns a log for one backend with the given config
// (zero-value fields take defaults).
func NewEventLog(backend string, cfg Config) *EventLog {
	cfg = cfg.withDefaults()
	r := obs.Default()
	bl := obs.L("backend", backend)
	return &EventLog{
		backend: backend,
		cfg:     cfg,
		ring:    make([]Event, cfg.Capacity),
		shapes:  make(map[string]*shapeSampler),
		subs:    make(map[chan Event]struct{}),
		mSeen: r.Counter("fxdist_events_seen_total",
			"Wide events offered to the query log, per backend.", bl),
		mKept: r.Counter("fxdist_events_kept_total",
			"Wide events kept by head sampling or an always-keep rule.", bl),
		mDropped: r.Counter("fxdist_events_dropped_total",
			"Wide events dropped by head sampling.", bl),
	}
}

// Configure replaces the log's sampling policy. The kept ring is
// resized (existing events are kept newest-first up to the new
// capacity); per-shape head counters are preserved.
func (l *EventLog) Configure(cfg Config) {
	if l == nil {
		return
	}
	cfg = cfg.withDefaults()
	l.mu.Lock()
	events := l.lockedRecent(cfg.Capacity)
	l.cfg = cfg
	l.ring = make([]Event, cfg.Capacity)
	l.next, l.full = 0, false
	for i := len(events) - 1; i >= 0; i-- { // oldest first
		l.ring[l.next] = events[i]
		l.next++
		if l.next == len(l.ring) {
			l.next, l.full = 0, true
		}
	}
	l.mu.Unlock()
}

// Offer submits one event and returns the keep decision. The event's
// Slow/SLOTarget/Keep fields are filled in by the log.
func (l *EventLog) Offer(ev Event) Decision {
	if l == nil {
		return Decision{}
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	ev.Backend = l.backend
	l.mu.Lock()
	l.seen++
	l.mSeen.Inc()

	var reasons []string
	if ev.Err != "" || ev.Partial {
		reasons = append(reasons, obs.KeepError)
	}
	if l.cfg.SlowFor != nil {
		if target := l.cfg.SlowFor(ev.Shape); target > 0 && ev.Elapsed > target {
			ev.Slow = true
			ev.SLOTarget = target
			reasons = append(reasons, obs.KeepSlow)
		}
	}
	if ev.BoundViolation {
		reasons = append(reasons, obs.KeepBound)
	}
	always := len(reasons) > 0

	ss := l.shapes[ev.Shape]
	if ss == nil {
		ss = &shapeSampler{}
		l.shapes[ev.Shape] = ss
	}
	ss.seen++
	if !always {
		switch {
		case ss.seen <= l.cfg.HeadPerShape:
			reasons = append(reasons, KeepHead)
		case l.cfg.SampleEvery > 0 && ss.seen%l.cfg.SampleEvery == 0:
			reasons = append(reasons, obs.KeepSample)
		}
	}
	if len(reasons) == 0 {
		l.mDropped.Inc()
		l.mu.Unlock()
		return Decision{}
	}

	ev.Keep = reasons
	ss.kept++
	l.kept++
	l.mKept.Inc()
	l.ring[l.next] = ev
	l.next++
	if l.next == len(l.ring) {
		l.next, l.full = 0, true
	}
	for ch := range l.subs {
		select {
		case ch <- ev:
		default: // slow follower: drop rather than stall the hot path
		}
	}
	l.mu.Unlock()
	return Decision{Kept: true, Always: always, Reasons: reasons}
}

// lockedRecent returns up to n kept events, most recent first. Caller
// holds l.mu.
func (l *EventLog) lockedRecent(n int) []Event {
	if n <= 0 {
		return nil
	}
	var out []Event
	for i := l.next - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, l.ring[i])
	}
	if l.full {
		for i := len(l.ring) - 1; i >= l.next && len(out) < n; i-- {
			out = append(out, l.ring[i])
		}
	}
	return out
}

// Recent returns up to n kept events, most recent first.
func (l *EventLog) Recent(n int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lockedRecent(n)
}

// Subscribe registers a live feed of kept events (the NDJSON ?follow=1
// path). Slow subscribers miss events instead of stalling retrievals.
func (l *EventLog) Subscribe() (<-chan Event, func()) {
	if l == nil {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	ch := make(chan Event, 64)
	l.mu.Lock()
	l.subs[ch] = struct{}{}
	l.mu.Unlock()
	return ch, func() {
		l.mu.Lock()
		delete(l.subs, ch)
		l.mu.Unlock()
	}
}

// ShapeStats is one shape's sampling counters.
type ShapeStats struct {
	Shape string `json:"shape"`
	Seen  uint64 `json:"seen"`
	Kept  uint64 `json:"kept"`
}

// LogStats summarises one backend's log.
type LogStats struct {
	Backend      string       `json:"backend"`
	Seen         uint64       `json:"seen"`
	Kept         uint64       `json:"kept"`
	Capacity     int          `json:"capacity"`
	HeadPerShape uint64       `json:"head_per_shape"`
	SampleEvery  uint64       `json:"sample_every"`
	Shapes       []ShapeStats `json:"shapes,omitempty"`
}

// Stats snapshots the log's sampling counters.
func (l *EventLog) Stats() LogStats {
	if l == nil {
		return LogStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	st := LogStats{
		Backend:      l.backend,
		Seen:         l.seen,
		Kept:         l.kept,
		Capacity:     l.cfg.Capacity,
		HeadPerShape: l.cfg.HeadPerShape,
		SampleEvery:  l.cfg.SampleEvery,
	}
	for shape, ss := range l.shapes {
		st.Shapes = append(st.Shapes, ShapeStats{Shape: shape, Seen: ss.seen, Kept: ss.kept})
	}
	sortShapeStats(st.Shapes)
	return st
}

// Reset discards kept events and sampling state (config is kept).
func (l *EventLog) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ring = make([]Event, l.cfg.Capacity)
	l.next, l.full = 0, false
	l.shapes = make(map[string]*shapeSampler)
	l.seen, l.kept = 0, 0
	l.mu.Unlock()
}

// Process-wide log registry, one per backend (mirrors
// obs.FlightRecorderFor).
var (
	logMu sync.Mutex
	logs  = make(map[string]*EventLog)
)

// LogFor returns the process-wide event log for backend, creating it on
// first use with DefaultEventConfig and the backend's audit SLO target
// as the slow threshold.
func LogFor(backend string) *EventLog {
	logMu.Lock()
	defer logMu.Unlock()
	l := logs[backend]
	if l == nil {
		cfg := DefaultEventConfig
		a := audit.For(backend)
		cfg.SlowFor = func(shape string) time.Duration { return a.ShapeSLO(shape).Target }
		l = NewEventLog(backend, cfg)
		logs[backend] = l
	}
	return l
}

// Logs snapshots every registered log, sorted by backend.
func Logs() []*EventLog {
	logMu.Lock()
	defer logMu.Unlock()
	out := make([]*EventLog, 0, len(logs))
	for _, l := range logs {
		out = append(out, l)
	}
	sortLogs(out)
	return out
}

// ResetEventLogs clears every backend's kept events and sampling state.
func ResetEventLogs() {
	for _, l := range Logs() {
		l.Reset()
	}
}

func sortShapeStats(s []ShapeStats) {
	sort.Slice(s, func(i, j int) bool { return s[i].Shape < s[j].Shape })
}

func sortLogs(ls []*EventLog) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].backend < ls[j].backend })
}
