package telemetry

import (
	"sync"
	"time"
)

// RescaleEvent is one wide event from the elastic-rescale migration
// driver: phase transitions, per-batch copy progress, retries, the
// cutover guard's verdicts. The ring behind RescaleEvents keeps the
// recent window for /debug/rescale; everything is also a line in the
// driver's status, so losing old entries loses no state.
type RescaleEvent struct {
	Time  time.Time `json:"time"`
	Phase string    `json:"phase"`
	Msg   string    `json:"msg"`
	// Copied/Total snapshot migration progress at the time of the
	// event; Bucket/From/To identify a per-bucket event (-1 otherwise).
	Copied int `json:"copied"`
	Total  int `json:"total"`
	Bucket int `json:"bucket"`
	From   int `json:"from"`
	To     int `json:"to"`
}

const rescaleRingSize = 256

var (
	rescaleMu   sync.Mutex
	rescaleRing []RescaleEvent
	rescaleNext int
)

// LogRescale appends one migration event to the process-wide ring.
func LogRescale(ev RescaleEvent) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	rescaleMu.Lock()
	defer rescaleMu.Unlock()
	if len(rescaleRing) < rescaleRingSize {
		rescaleRing = append(rescaleRing, ev)
		return
	}
	rescaleRing[rescaleNext] = ev
	rescaleNext = (rescaleNext + 1) % rescaleRingSize
}

// RescaleEvents returns the retained migration events, oldest first.
func RescaleEvents() []RescaleEvent {
	rescaleMu.Lock()
	defer rescaleMu.Unlock()
	out := make([]RescaleEvent, 0, len(rescaleRing))
	out = append(out, rescaleRing[rescaleNext:]...)
	out = append(out, rescaleRing[:rescaleNext]...)
	return out
}
