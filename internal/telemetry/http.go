package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"fxdist/internal/obs"
)

// backendEvents is one backend's slice of the /debug/events document.
type backendEvents struct {
	Stats  LogStats `json:"stats"`
	Events []Event  `json:"events"`
}

func eventsDoc(backend string, n int) map[string]backendEvents {
	doc := make(map[string]backendEvents)
	for _, l := range Logs() {
		st := l.Stats()
		if backend != "" && st.Backend != backend {
			continue
		}
		doc[st.Backend] = backendEvents{Stats: st, Events: l.Recent(n)}
	}
	return doc
}

func writeEventsText(w io.Writer, doc map[string]backendEvents) {
	backends := make([]string, 0, len(doc))
	for b := range doc {
		backends = append(backends, b)
	}
	sort.Strings(backends)
	if len(backends) == 0 {
		fmt.Fprintln(w, "no events recorded")
		return
	}
	for _, b := range backends {
		be := doc[b]
		fmt.Fprintf(w, "%s: seen=%d kept=%d (head=%d per shape, then 1 in %d; errors/slow/bound always)\n",
			b, be.Stats.Seen, be.Stats.Kept, be.Stats.HeadPerShape, be.Stats.SampleEvery)
		for _, ev := range be.Events {
			fmt.Fprintf(w, "  %s shape=%s elapsed=%v trace=%d rq=%d bound=%d max=%d keep=%v",
				ev.Time.Format(time.RFC3339Nano), ev.Shape, ev.Elapsed, ev.TraceID, ev.RQ, ev.Bound, ev.MaxDeviceBuckets, ev.Keep)
			if ev.Err != "" {
				fmt.Fprintf(w, " err=%q", ev.Err)
			}
			if ev.Partial {
				fmt.Fprintf(w, " partial coverage=%.2f failed=%v", ev.Coverage, ev.FailedDevices)
			}
			fmt.Fprintln(w)
		}
	}
}

// eventsHandler serves /debug/events. On top of the standard
// ?format=json|text it supports ?format=ndjson (one kept event per
// line, oldest first) and ?follow=1 with ndjson (stream kept events
// live until the client disconnects). ?backend= filters, ?n= bounds
// the dump (default 256).
func eventsHandler() http.Handler {
	base := obs.DebugEndpoint(
		func() (any, error) { return eventsDoc("", 256), nil },
		func(w io.Writer, doc any) { writeEventsText(w, doc.(map[string]backendEvents)) },
	)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		backend := q.Get("backend")
		n := 256
		if s := q.Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		if q.Get("format") == "ndjson" {
			w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
			enc := json.NewEncoder(w)
			for _, be := range eventsDoc(backend, n) {
				for i := len(be.Events) - 1; i >= 0; i-- { // oldest first
					if enc.Encode(be.Events[i]) != nil {
						return // client gone
					}
				}
			}
			if q.Get("follow") != "1" {
				return
			}
			flusher, _ := w.(http.Flusher)
			if flusher != nil {
				flusher.Flush()
			}
			var feeds []<-chan Event
			var cancels []func()
			for _, l := range Logs() {
				if backend != "" && l.Stats().Backend != backend {
					continue
				}
				ch, cancel := l.Subscribe()
				feeds = append(feeds, ch)
				cancels = append(cancels, cancel)
			}
			defer func() {
				for _, c := range cancels {
					c()
				}
			}()
			merged := make(chan Event, 64)
			for _, ch := range feeds {
				go func(ch <-chan Event) {
					for ev := range ch {
						select {
						case merged <- ev:
						case <-r.Context().Done():
							return
						}
					}
				}(ch)
			}
			for {
				select {
				case ev := <-merged:
					if enc.Encode(ev) != nil {
						return
					}
					if flusher != nil {
						flusher.Flush()
					}
				case <-r.Context().Done():
					return
				}
			}
		}
		if backend != "" || q.Get("n") != "" {
			// Re-run the standard endpoint shape with filters applied.
			obs.DebugEndpoint(
				func() (any, error) { return eventsDoc(backend, n), nil },
				func(w io.Writer, doc any) { writeEventsText(w, doc.(map[string]backendEvents)) },
			).ServeHTTP(w, r)
			return
		}
		base.ServeHTTP(w, r)
	})
}

func writeClusterText(w io.Writer, reports map[string]ClusterReport) {
	names := make([]string, 0, len(reports))
	for n := range reports {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(w, "no fleets registered (start a netdist coordinator with stats pulling)")
		return
	}
	for _, name := range names {
		rep := reports[name]
		fmt.Fprintf(w, "fleet %s (generated %s)\n", name, rep.Generated.Format(time.RFC3339))
		fmt.Fprintf(w, "  queries=%d plan-cache-hit=%.1f%% recycle=%.1f%% worst-discrepancy=%.0f (%s %s) worst-burn=%.2f (%s %s)\n",
			rep.Summary.Queries, 100*rep.Summary.PlanCacheHitRate, 100*rep.Summary.MempoolRecycleRate,
			rep.Summary.WorstDiscrepancy, rep.Summary.WorstDiscrepancyNode, rep.Summary.WorstDiscrepancyShape,
			rep.Summary.WorstBurnRate, rep.Summary.WorstBurnNode, rep.Summary.WorstBurnShape)
		for _, n := range rep.Nodes {
			status := "alive"
			if !n.Alive {
				status = "DEAD"
			}
			flag := ""
			if n.Flagged {
				flag = "  FLAGGED: " + n.FlagReason
			}
			fmt.Fprintf(w, "  node %-12s %-5s lag=%.1fs uptime=%.0fs pulls=%d fails=%d errs=%d %s %s%s\n",
				n.Node, status, n.LagSeconds, n.UptimeSeconds, n.Pulls, n.Failures, n.CoordErrors, n.Version, n.GoVersion, flag)
		}
	}
}

func init() {
	obs.RegisterDebugHandler("/debug/events",
		"wide-event query log: one sampled event per retrieval (?backend=, ?n=, ?format=ndjson, &follow=1)",
		eventsHandler())
	obs.RegisterDebugHandler("/debug/cluster",
		"federated fleet view: per-node liveness/lag, merged counters+histograms, worst discrepancy and SLO burn",
		obs.DebugEndpoint(
			func() (any, error) { return FleetReports(), nil },
			func(w io.Writer, doc any) { writeClusterText(w, doc.(map[string]ClusterReport)) },
		))
}
