package telemetry

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"fxdist/internal/obs"
)

// Metrics federation: every node can serialise its registry into a
// NodeStats snapshot; the netdist coordinator pulls one per server over
// the wire protocol (Request.Stats) and folds them into a Federator,
// which merges counters/gauges/histograms across nodes and renders the
// fleet view on /debug/cluster.

// MetricSample is one metric point in a node snapshot — the
// wire/merge-friendly form of obs.Point.
type MetricSample struct {
	Name      string                 `json:"name"`
	Kind      string                 `json:"kind"` // counter | gauge | histogram
	Labels    map[string]string      `json:"labels,omitempty"`
	Value     float64                `json:"value,omitempty"`
	Histogram *obs.HistogramSnapshot `json:"histogram,omitempty"`
}

// NodeStats is one node's self-description plus its full metric
// snapshot.
type NodeStats struct {
	Node          string         `json:"node"`
	Version       string         `json:"version"`
	GoVersion     string         `json:"goversion"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Time          time.Time      `json:"time"` // node's clock at snapshot
	Metrics       []MetricSample `json:"metrics"`
}

// LocalNodeStats snapshots registry r as node's NodeStats.
func LocalNodeStats(node string, r *obs.Registry) NodeStats {
	st := NodeStats{
		Node:          node,
		Version:       obs.BuildVersion(),
		GoVersion:     runtime.Version(),
		UptimeSeconds: obs.Uptime().Seconds(),
		Time:          time.Now(),
	}
	for _, p := range r.Snapshot() {
		ms := MetricSample{Name: p.Name, Kind: p.Kind.String()}
		if len(p.Labels) > 0 {
			ms.Labels = make(map[string]string, len(p.Labels))
			for _, l := range p.Labels {
				ms.Labels[l.Key] = l.Value
			}
		}
		if p.Histogram != nil {
			h := *p.Histogram
			ms.Histogram = &h
		} else {
			ms.Value = p.Value
		}
		st.Metrics = append(st.Metrics, ms)
	}
	return st
}

// EncodeNodeStats serialises a snapshot for the wire (the netdist
// Response carries it as an opaque JSON blob so the binary codec stays
// schema-stable as metrics evolve).
func EncodeNodeStats(st NodeStats) ([]byte, error) { return json.Marshal(st) }

// DecodeNodeStats parses a wire snapshot.
func DecodeNodeStats(b []byte) (NodeStats, error) {
	var st NodeStats
	err := json.Unmarshal(b, &st)
	return st, err
}

// nodeState is the federator's book-keeping for one node.
type nodeState struct {
	stats           NodeStats
	lastPull        time.Time
	lastErr         string
	pulls, failures uint64
	consecFails     int
	coordErrors     uint64 // coordinator-observed transport errors for this node
	prevCoordErrors uint64
	flagged         bool
	flagReason      string
}

// Federator accumulates node snapshots into one fleet view. The
// coordinator's stats-pull loop feeds it; /debug/cluster renders it.
type Federator struct {
	cluster string
	mu      sync.Mutex
	nodes   map[string]*nodeState
}

// NewFederator returns an empty federator for one cluster label.
func NewFederator(cluster string) *Federator {
	return &Federator{cluster: cluster, nodes: make(map[string]*nodeState)}
}

func (f *Federator) node(name string) *nodeState {
	n := f.nodes[name]
	if n == nil {
		n = &nodeState{}
		f.nodes[name] = n
	}
	return n
}

// ObserveNode records a successful pull. coordErrors is the pulling
// coordinator's cumulative transport-error count for the node; growth
// between pulls flags the node even when the pull itself succeeds —
// injected faults surface at the coordinator seam, not in the node's
// own snapshot.
func (f *Federator) ObserveNode(name string, st NodeStats, coordErrors uint64) {
	f.mu.Lock()
	n := f.node(name)
	n.stats = st
	n.lastPull = time.Now()
	n.lastErr = ""
	n.pulls++
	n.consecFails = 0
	n.prevCoordErrors, n.coordErrors = n.coordErrors, coordErrors
	if grew := coordErrors - n.prevCoordErrors; coordErrors > n.prevCoordErrors {
		n.flagged = true
		n.flagReason = fmt.Sprintf("coordinator observed %d new transport errors since last pull", grew)
	} else {
		n.flagged = false
		n.flagReason = ""
	}
	f.mu.Unlock()
}

// ObserveFailure records a failed pull.
func (f *Federator) ObserveFailure(name string, err error, coordErrors uint64) {
	f.mu.Lock()
	n := f.node(name)
	n.lastErr = err.Error()
	n.failures++
	n.consecFails++
	n.prevCoordErrors, n.coordErrors = n.coordErrors, coordErrors
	n.flagged = true
	n.flagReason = fmt.Sprintf("stats pull failed: %v", err)
	f.mu.Unlock()
}

// NodeRow is one node's line in the cluster report.
type NodeRow struct {
	Node          string    `json:"node"`
	Alive         bool      `json:"alive"`
	LastPull      time.Time `json:"last_pull,omitempty"`
	LagSeconds    float64   `json:"lag_seconds"`
	UptimeSeconds float64   `json:"uptime_seconds,omitempty"`
	Version       string    `json:"version,omitempty"`
	GoVersion     string    `json:"goversion,omitempty"`
	Pulls         uint64    `json:"pulls"`
	Failures      uint64    `json:"failures,omitempty"`
	CoordErrors   uint64    `json:"coord_errors,omitempty"`
	Flagged       bool      `json:"flagged,omitempty"`
	FlagReason    string    `json:"flag_reason,omitempty"`
	Err           string    `json:"err,omitempty"`
}

// Summary is the fleet-level digest fxtop leads with.
type Summary struct {
	// Queries sums per-shape server request counts across the fleet;
	// QueriesByShape is its per-shape breakdown.
	Queries        uint64            `json:"queries"`
	QueriesByShape map[string]uint64 `json:"queries_by_shape,omitempty"`
	// WorstDiscrepancy is the largest per-device excess over the strict
	// bound anywhere in the fleet (fxdist_audit_max_deviation_buckets).
	WorstDiscrepancy      float64 `json:"worst_discrepancy"`
	WorstDiscrepancyNode  string  `json:"worst_discrepancy_node,omitempty"`
	WorstDiscrepancyShape string  `json:"worst_discrepancy_shape,omitempty"`
	// WorstBurnRate is the highest SLO burn rate anywhere in the fleet.
	WorstBurnRate      float64 `json:"worst_burn_rate"`
	WorstBurnNode      string  `json:"worst_burn_node,omitempty"`
	WorstBurnShape     string  `json:"worst_burn_shape,omitempty"`
	PlanCacheHitRate   float64 `json:"plan_cache_hit_rate"`
	MempoolRecycleRate float64 `json:"mempool_recycle_rate"`
}

// ClusterReport is the merged fleet view served on /debug/cluster.
type ClusterReport struct {
	Cluster   string         `json:"cluster"`
	Generated time.Time      `json:"generated"`
	Nodes     []NodeRow      `json:"nodes"`
	Summary   Summary        `json:"summary"`
	Merged    []MetricSample `json:"merged,omitempty"`
}

// droppedMergeLabels are node-identifying labels removed before
// cross-node merging, so per-device series from different nodes sum
// into one fleet series (standard federation practice).
var droppedMergeLabels = map[string]bool{"device": true}

func mergeKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !droppedMergeLabels[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteByte(0xff)
		b.WriteString(k)
		b.WriteByte(0xfe)
		b.WriteString(labels[k])
	}
	return b.String()
}

func mergedLabels(labels map[string]string) map[string]string {
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		if !droppedMergeLabels[k] {
			out[k] = v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// mergeHistogram folds src into dst (same bounds required; snapshots
// with different bucketing are kept separate by key, so this only sees
// compatible pairs in practice — incompatible ones are skipped).
func mergeHistogram(dst, src *obs.HistogramSnapshot) {
	if len(dst.Bounds) != len(src.Bounds) || len(dst.Counts) != len(src.Counts) {
		return
	}
	for i := range dst.Counts {
		dst.Counts[i] += src.Counts[i]
	}
	dst.Count += src.Count
	dst.Sum += src.Sum
}

// Report merges the latest snapshot of every node into one fleet view.
func (f *Federator) Report() ClusterReport {
	f.mu.Lock()
	defer f.mu.Unlock()
	rep := ClusterReport{Cluster: f.cluster, Generated: time.Now()}
	merged := make(map[string]*MetricSample)
	var order []string

	names := make([]string, 0, len(f.nodes))
	for name := range f.nodes {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		n := f.nodes[name]
		row := NodeRow{
			Node:        name,
			Alive:       n.consecFails == 0 && !n.lastPull.IsZero(),
			LastPull:    n.lastPull,
			Pulls:       n.pulls,
			Failures:    n.failures,
			CoordErrors: n.coordErrors,
			Flagged:     n.flagged,
			FlagReason:  n.flagReason,
			Err:         n.lastErr,
		}
		if !n.lastPull.IsZero() {
			row.LagSeconds = time.Since(n.lastPull).Seconds()
			row.UptimeSeconds = n.stats.UptimeSeconds
			row.Version = n.stats.Version
			row.GoVersion = n.stats.GoVersion
		}
		rep.Nodes = append(rep.Nodes, row)

		for i := range n.stats.Metrics {
			ms := &n.stats.Metrics[i]
			key := mergeKey(ms.Name, ms.Labels)
			dst := merged[key]
			if dst == nil {
				cp := MetricSample{Name: ms.Name, Kind: ms.Kind, Labels: mergedLabels(ms.Labels), Value: ms.Value}
				if ms.Histogram != nil {
					h := obs.HistogramSnapshot{
						Bounds: append([]float64(nil), ms.Histogram.Bounds...),
						Counts: append([]uint64(nil), ms.Histogram.Counts...),
						Count:  ms.Histogram.Count,
						Sum:    ms.Histogram.Sum,
					}
					cp.Histogram = &h
				}
				merged[key] = &cp
				order = append(order, key)
			} else if ms.Histogram != nil && dst.Histogram != nil {
				mergeHistogram(dst.Histogram, ms.Histogram)
			} else {
				dst.Value += ms.Value
			}

			// Fleet-level worst-of digests (max, not sum).
			switch ms.Name {
			case "fxdist_audit_max_deviation_buckets":
				if ms.Value > rep.Summary.WorstDiscrepancy {
					rep.Summary.WorstDiscrepancy = ms.Value
					rep.Summary.WorstDiscrepancyNode = name
					rep.Summary.WorstDiscrepancyShape = ms.Labels["shape"]
				}
			case "fxdist_slo_burn_rate":
				if ms.Value > rep.Summary.WorstBurnRate {
					rep.Summary.WorstBurnRate = ms.Value
					rep.Summary.WorstBurnNode = name
					rep.Summary.WorstBurnShape = ms.Labels["shape"]
				}
			case "fxdist_netdist_server_shape_requests_total":
				if shape := ms.Labels["shape"]; shape != "" {
					if rep.Summary.QueriesByShape == nil {
						rep.Summary.QueriesByShape = make(map[string]uint64)
					}
					rep.Summary.QueriesByShape[shape] += uint64(ms.Value)
					rep.Summary.Queries += uint64(ms.Value)
				}
			}
		}
	}

	sort.Strings(order)
	var hits, misses, poolGets, poolRecycled float64
	for _, key := range order {
		ms := merged[key]
		rep.Merged = append(rep.Merged, *ms)
		switch ms.Name {
		case "fxdist_plancache_hit_total":
			hits += ms.Value
		case "fxdist_plancache_miss_total":
			misses += ms.Value
		case "fxdist_mempool_gets":
			poolGets += ms.Value
		case "fxdist_mempool_recycled_slabs":
			poolRecycled += ms.Value
		}
	}
	if hits+misses > 0 {
		rep.Summary.PlanCacheHitRate = hits / (hits + misses)
	}
	if poolGets > 0 {
		rep.Summary.MempoolRecycleRate = poolRecycled / poolGets
	}
	return rep
}

// Fleet registry: coordinators register their federator so
// /debug/cluster can render every fleet this process coordinates.
var (
	fleetMu sync.Mutex
	fleets  = make(map[string]func() ClusterReport)
)

// RegisterFleet installs (or replaces) a fleet report source under
// name. A nil fn unregisters it.
func RegisterFleet(name string, fn func() ClusterReport) {
	fleetMu.Lock()
	if fn == nil {
		delete(fleets, name)
	} else {
		fleets[name] = fn
	}
	fleetMu.Unlock()
}

// FleetReports snapshots every registered fleet, sorted by name.
func FleetReports() map[string]ClusterReport {
	fleetMu.Lock()
	fns := make(map[string]func() ClusterReport, len(fleets))
	for name, fn := range fleets {
		fns[name] = fn
	}
	fleetMu.Unlock()
	out := make(map[string]ClusterReport, len(fns))
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}
