// Package butterfly simulates the multistage interconnection network of
// the machines the paper targets (BBN Butterfly-style multiprocessors,
// §5.2.1): M = 2^n nodes connected through n stages of 2x2 switches with
// destination-tag routing, one message per link per cycle, FIFO queueing
// at every link, store-and-forward.
//
// The simulator turns the paper's "symmetric network topology" assumption
// into something that can be checked: balanced per-node message loads
// (what FX declustering produces) traverse an all-to-all repartition
// faster than skewed loads (what Modulo produces), because a hot node is
// limited to injecting one message per cycle and its switch links
// saturate.
package butterfly

import (
	"fmt"
	"math/rand"

	"fxdist/internal/bitsx"
)

// Network is an M-node butterfly MIN.
type Network struct {
	m      int
	stages int
}

// New builds the network for m nodes (a power of two, at least 2).
func New(m int) (*Network, error) {
	if !bitsx.IsPow2(m) || m < 2 {
		return nil, fmt.Errorf("butterfly: node count %d is not a power of two >= 2", m)
	}
	return &Network{m: m, stages: bitsx.Log2(m)}, nil
}

// Nodes returns M.
func (nw *Network) Nodes() int { return nw.m }

// Stages returns log2(M).
func (nw *Network) Stages() int { return nw.stages }

// route returns the position after traversing stage s toward dst:
// destination-tag routing fixes bit s of the position to dst's bit s.
func (nw *Network) route(pos, s, dst int) int {
	bit := 1 << s
	return (pos &^ bit) | (dst & bit)
}

// Message is one unit of traffic.
type Message struct {
	Src, Dst int
}

// Stats reports one simulation run.
type Stats struct {
	// Cycles is the number of cycles until the last delivery.
	Cycles int
	// Delivered is the number of messages delivered (always all of them).
	Delivered int
	// MaxQueue is the deepest link queue observed — a congestion measure.
	MaxQueue int
	// IdealCycles is a lower bound: the larger of the maximum per-source
	// injection count and the maximum per-destination delivery count,
	// plus pipeline latency.
	IdealCycles int
}

// Run simulates delivering the messages. Each node injects at most one
// message per cycle (in input order); each link forwards at most one
// message per cycle; messages advance at most one stage per cycle.
func (nw *Network) Run(msgs []Message) (Stats, error) {
	for i, msg := range msgs {
		if msg.Src < 0 || msg.Src >= nw.m || msg.Dst < 0 || msg.Dst >= nw.m {
			return Stats{}, fmt.Errorf("butterfly: message %d endpoints (%d -> %d) outside [0,%d)", i, msg.Src, msg.Dst, nw.m)
		}
	}
	type flight struct {
		dst int
		pos int // output position of the stage the flight is queued at
	}
	// injection[src] is the FIFO of messages not yet injected.
	injection := make([][]flight, nw.m)
	srcMax, dstMax := make([]int, nw.m), make([]int, nw.m)
	for _, msg := range msgs {
		injection[msg.Src] = append(injection[msg.Src], flight{dst: msg.Dst, pos: msg.Src})
		srcMax[msg.Src]++
		dstMax[msg.Dst]++
	}
	// queues[s][p] is the FIFO of flights contending for the OUTPUT link
	// of stage s at position p — switch output-port contention is what
	// limits throughput, so queues key on the link a flight must cross,
	// and each link transmits one flight per cycle.
	queues := make([][][]flight, nw.stages)
	for s := range queues {
		queues[s] = make([][]flight, nw.m)
	}

	stats := Stats{}
	remaining := len(msgs)
	for cycle := 1; remaining > 0; cycle++ {
		// Advance stages from last to first so a flight crosses at most
		// one link per cycle.
		for s := nw.stages - 1; s >= 0; s-- {
			for p := 0; p < nw.m; p++ {
				q := queues[s][p]
				if len(q) == 0 {
					continue
				}
				if len(q) > stats.MaxQueue {
					stats.MaxQueue = len(q)
				}
				f := q[0]
				queues[s][p] = q[1:]
				if s == nw.stages-1 {
					// All destination bits fixed: f.pos == f.dst.
					stats.Delivered++
					remaining--
					stats.Cycles = cycle
				} else {
					f.pos = nw.route(f.pos, s+1, f.dst)
					queues[s+1][f.pos] = append(queues[s+1][f.pos], f)
				}
			}
		}
		// Inject one message per node per cycle, routed through stage 0's
		// switch to its first output link.
		for src := 0; src < nw.m; src++ {
			if len(injection[src]) == 0 {
				continue
			}
			f := injection[src][0]
			injection[src] = injection[src][1:]
			f.pos = nw.route(f.pos, 0, f.dst)
			queues[0][f.pos] = append(queues[0][f.pos], f)
		}
		if cycle > nw.stages+2*len(msgs)+4 {
			return Stats{}, fmt.Errorf("butterfly: simulation did not drain (bug)")
		}
	}
	maxSrc, maxDst := 0, 0
	for i := 0; i < nw.m; i++ {
		if srcMax[i] > maxSrc {
			maxSrc = srcMax[i]
		}
		if dstMax[i] > maxDst {
			maxDst = dstMax[i]
		}
	}
	bound := maxSrc
	if maxDst > bound {
		bound = maxDst
	}
	stats.IdealCycles = bound + nw.stages
	return stats, nil
}

// Gather builds the message list for collecting loads[i] result messages
// from every node i at a single front-end node.
func (nw *Network) Gather(loads []int, frontEnd int) ([]Message, error) {
	if len(loads) != nw.m {
		return nil, fmt.Errorf("butterfly: %d loads for %d nodes", len(loads), nw.m)
	}
	if frontEnd < 0 || frontEnd >= nw.m {
		return nil, fmt.Errorf("butterfly: front end %d outside [0,%d)", frontEnd, nw.m)
	}
	var msgs []Message
	for src, n := range loads {
		for i := 0; i < n; i++ {
			msgs = append(msgs, Message{Src: src, Dst: frontEnd})
		}
	}
	return msgs, nil
}

// Repartition builds the all-to-all message list of a parallel operator
// (e.g. the Butterfly projection work the paper cites): node i holds
// loads[i] tuples, each rehashed to a pseudo-random destination.
// Deterministic for a seed.
func (nw *Network) Repartition(loads []int, seed int64) ([]Message, error) {
	if len(loads) != nw.m {
		return nil, fmt.Errorf("butterfly: %d loads for %d nodes", len(loads), nw.m)
	}
	r := rand.New(rand.NewSource(seed))
	var msgs []Message
	for src, n := range loads {
		for i := 0; i < n; i++ {
			msgs = append(msgs, Message{Src: src, Dst: r.Intn(nw.m)})
		}
	}
	return msgs, nil
}
