package butterfly

import (
	"testing"

	"fxdist/internal/convolve"
	"fxdist/internal/decluster"
	"fxdist/internal/field"
	"fxdist/internal/query"
)

func TestNewValidation(t *testing.T) {
	for _, m := range []int{0, 1, 3, 12} {
		if _, err := New(m); err == nil {
			t.Errorf("node count %d accepted", m)
		}
	}
	nw, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Nodes() != 8 || nw.Stages() != 3 {
		t.Errorf("Nodes=%d Stages=%d", nw.Nodes(), nw.Stages())
	}
}

// Destination-tag routing: after all stages the position equals the
// destination, for every src/dst pair.
func TestRoutingReachesDestination(t *testing.T) {
	nw, _ := New(16)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			pos := src
			for s := 0; s < nw.Stages(); s++ {
				pos = nw.route(pos, s, dst)
			}
			if pos != dst {
				t.Fatalf("src %d dst %d: landed at %d", src, dst, pos)
			}
		}
	}
}

// One message: latency = injection cycle + one cycle per stage.
func TestSingleMessageLatency(t *testing.T) {
	nw, _ := New(8)
	stats, err := nw.Run([]Message{{Src: 5, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles != 1+nw.Stages() {
		t.Errorf("cycles = %d, want %d", stats.Cycles, 1+nw.Stages())
	}
	if stats.Delivered != 1 {
		t.Errorf("delivered = %d", stats.Delivered)
	}
}

func TestRunValidation(t *testing.T) {
	nw, _ := New(4)
	if _, err := nw.Run([]Message{{Src: -1, Dst: 0}}); err == nil {
		t.Error("negative src accepted")
	}
	if _, err := nw.Run([]Message{{Src: 0, Dst: 4}}); err == nil {
		t.Error("out-of-range dst accepted")
	}
	stats, err := nw.Run(nil)
	if err != nil || stats.Cycles != 0 || stats.Delivered != 0 {
		t.Errorf("empty run = %+v, %v", stats, err)
	}
}

// Gather to one node serialises on the final link: cycles ~ total
// messages (+ pipeline latency), regardless of distribution.
func TestGatherSerialisesAtSink(t *testing.T) {
	nw, _ := New(8)
	loads := []int{5, 5, 5, 5, 5, 5, 5, 5}
	msgs, err := nw.Gather(loads, 0)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := nw.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	total := 40
	if stats.Delivered != total {
		t.Fatalf("delivered %d", stats.Delivered)
	}
	if stats.Cycles < total {
		t.Errorf("cycles %d below sink serialisation bound %d", stats.Cycles, total)
	}
	if stats.Cycles > total+nw.Stages()+2 {
		t.Errorf("cycles %d far above bound %d", stats.Cycles, total+nw.Stages())
	}
}

func TestGatherValidation(t *testing.T) {
	nw, _ := New(4)
	if _, err := nw.Gather([]int{1, 2}, 0); err == nil {
		t.Error("wrong load count accepted")
	}
	if _, err := nw.Gather([]int{1, 1, 1, 1}, 7); err == nil {
		t.Error("out-of-range front end accepted")
	}
}

// All-to-all repartition: balanced source loads finish no later than a
// skewed distribution of the same total (the declustering connection).
func TestBalancedRepartitionBeatsSkewed(t *testing.T) {
	nw, _ := New(16)
	balanced := make([]int, 16)
	skewed := make([]int, 16)
	for i := range balanced {
		balanced[i] = 32
	}
	skewed[3] = 16 * 32 // same total, one hot node
	bMsgs, err := nw.Repartition(balanced, 1)
	if err != nil {
		t.Fatal(err)
	}
	sMsgs, err := nw.Repartition(skewed, 1)
	if err != nil {
		t.Fatal(err)
	}
	bStats, err := nw.Run(bMsgs)
	if err != nil {
		t.Fatal(err)
	}
	sStats, err := nw.Run(sMsgs)
	if err != nil {
		t.Fatal(err)
	}
	if bStats.Delivered != sStats.Delivered {
		t.Fatalf("delivered differ: %d vs %d", bStats.Delivered, sStats.Delivered)
	}
	// The hot node injects one message per cycle: >= 512 cycles. Balanced
	// sources pipeline: strictly faster.
	if sStats.Cycles < 16*32 {
		t.Errorf("skewed cycles %d below injection bound %d", sStats.Cycles, 16*32)
	}
	if bStats.Cycles >= sStats.Cycles {
		t.Errorf("balanced (%d cycles) not faster than skewed (%d)", bStats.Cycles, sStats.Cycles)
	}
	if bStats.IdealCycles > bStats.Cycles {
		t.Errorf("ideal bound %d exceeds actual %d", bStats.IdealCycles, bStats.Cycles)
	}
}

func TestRepartitionValidation(t *testing.T) {
	nw, _ := New(4)
	if _, err := nw.Repartition([]int{1}, 1); err == nil {
		t.Error("wrong load count accepted")
	}
	// Determinism.
	a, _ := nw.Repartition([]int{2, 2, 2, 2}, 9)
	b, _ := nw.Repartition([]int{2, 2, 2, 2}, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("repartition not deterministic")
		}
	}
}

// End-to-end declustering connection: FX's balanced query loads repartition
// faster through the network than Modulo's skewed loads for the same
// query on the same grid.
func TestFXLoadsRepartitionFasterThanModulo(t *testing.T) {
	fs := decluster.MustFileSystem([]int{8, 8}, 16)
	fx := decluster.MustFX(fs, field.WithKinds([]field.Kind{field.I, field.IU1}))
	md := decluster.NewModulo(fs)
	q := query.All(2)
	nw, _ := New(16)

	run := func(a decluster.GroupAllocator) Stats {
		loads := convolve.Loads(a, q)
		msgs, err := nw.Repartition(loads, 3)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := nw.Run(msgs)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	fxStats, mdStats := run(fx), run(md)
	if fxStats.Cycles > mdStats.Cycles {
		t.Errorf("FX repartition %d cycles, Modulo %d — balanced should not be slower",
			fxStats.Cycles, mdStats.Cycles)
	}
}
