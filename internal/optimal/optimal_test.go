package optimal

import (
	"math/rand"
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/field"
	"fxdist/internal/query"
)

func TestEachSubsetOfSizeCounts(t *testing.T) {
	binom := func(n, k int) int {
		if k < 0 || k > n {
			return 0
		}
		r := 1
		for i := 0; i < k; i++ {
			r = r * (n - i) / (i + 1)
		}
		return r
	}
	for n := 0; n <= 8; n++ {
		total := 0
		for k := 0; k <= n; k++ {
			count := 0
			EachSubsetOfSize(n, k, func(s []int) {
				if len(s) != k {
					t.Fatalf("subset %v has size %d, want %d", s, len(s), k)
				}
				for i := 1; i < len(s); i++ {
					if s[i] <= s[i-1] {
						t.Fatalf("subset %v not strictly increasing", s)
					}
				}
				count++
			})
			if count != binom(n, k) {
				t.Fatalf("n=%d k=%d: %d subsets, want %d", n, k, count, binom(n, k))
			}
			total += count
		}
		allCount := 0
		EachSubset(n, func([]int) { allCount++ })
		if allCount != total || allCount != 1<<n {
			t.Fatalf("n=%d: EachSubset visited %d, want %d", n, allCount, 1<<n)
		}
	}
	EachSubsetOfSize(4, -1, func([]int) { t.Fatal("k=-1 visited") })
	EachSubsetOfSize(4, 5, func([]int) { t.Fatal("k>n visited") })
}

// Theorem 1: Basic FX is always 0-optimal and 1-optimal.
func TestTheorem1(t *testing.T) {
	configs := []struct {
		sizes []int
		m     int
	}{
		{[]int{2, 8}, 4},
		{[]int{2, 2, 2}, 16},
		{[]int{4, 8, 16}, 8},
		{[]int{2, 4, 8, 16}, 32},
	}
	for _, c := range configs {
		fs := decluster.MustFileSystem(c.sizes, c.m)
		fx, err := decluster.NewBasicFX(fs)
		if err != nil {
			t.Fatal(err)
		}
		if !KOptimal(fx, 0) {
			t.Errorf("sizes=%v m=%d: Basic FX not 0-optimal", c.sizes, c.m)
		}
		if !KOptimal(fx, 1) {
			t.Errorf("sizes=%v m=%d: Basic FX not 1-optimal", c.sizes, c.m)
		}
	}
}

// Theorem 2: Basic FX is strict optimal for any query with >= 2
// unspecified fields at least one of which has size >= M.
func TestTheorem2(t *testing.T) {
	configs := []struct {
		sizes []int
		m     int
	}{
		{[]int{2, 8}, 4},
		{[]int{2, 16, 4}, 8},
		{[]int{32, 2, 2, 4}, 16},
	}
	for _, c := range configs {
		fs := decluster.MustFileSystem(c.sizes, c.m)
		fx, err := decluster.NewBasicFX(fs)
		if err != nil {
			t.Fatal(err)
		}
		EachSubset(fs.NumFields(), func(s []int) {
			if len(s) < 2 {
				return
			}
			hasLarge := false
			for _, i := range s {
				if fs.Sizes[i] >= fs.M {
					hasLarge = true
				}
			}
			if hasLarge && !StrictForSubset(fx, s) {
				t.Errorf("sizes=%v m=%d: Basic FX not strict optimal for %v", c.sizes, c.m, s)
			}
		})
	}
}

// Basic FX fails for two small unspecified fields (paper §4 motivating
// example: f = (2,8), M = 16).
func TestBasicFXFailsForTwoSmallFields(t *testing.T) {
	fs := decluster.MustFileSystem([]int{2, 8}, 16)
	fx, err := decluster.NewBasicFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	if StrictForSubset(fx, []int{0, 1}) {
		t.Error("Basic FX unexpectedly optimal for two small unspecified fields")
	}
	// The §4 fix: U transformation on field 1 makes it perfect optimal.
	fixed := decluster.MustFX(fs, field.WithKinds([]field.Kind{field.U, field.I}))
	if !PerfectOptimal(fixed) {
		t.Error("FX with U on small field not perfect optimal")
	}
}

// Theorems 4-8: for a file system with exactly two fields smaller than M,
// FX with any two *different* transformation methods (excluding the
// IU1+IU2 combination) is perfect optimal. Swept over field sizes and M.
func TestPairwiseTheorems(t *testing.T) {
	pairs := []struct {
		name string
		a, b field.Kind
	}{
		{"Theorem4 I+U", field.I, field.U},
		{"Theorem5 I+IU1", field.I, field.IU1},
		{"Theorem6 U+IU1", field.U, field.IU1},
		{"Theorem7 I+IU2", field.I, field.IU2},
		{"Theorem8 U+IU2", field.U, field.IU2},
	}
	for _, p := range pairs {
		for mexp := 2; mexp <= 7; mexp++ {
			m := 1 << mexp
			for fa := 1; fa < mexp; fa++ {
				for fb := 1; fb < mexp; fb++ {
					fs := decluster.MustFileSystem([]int{1 << fa, 1 << fb}, m)
					fx := decluster.MustFX(fs, field.WithKinds([]field.Kind{p.a, p.b}))
					if !PerfectOptimal(fx) {
						t.Errorf("%s: sizes=(%d,%d) M=%d not perfect optimal",
							p.name, 1<<fa, 1<<fb, m)
					}
				}
			}
		}
	}
}

// The pairwise theorems continue to hold with extra large fields present
// (fields of size >= M never break optimality).
func TestPairwiseTheoremsWithLargeField(t *testing.T) {
	m := 16
	for fa := 1; fa <= 3; fa++ {
		for fb := 1; fb <= 3; fb++ {
			fs := decluster.MustFileSystem([]int{1 << fa, 16, 1 << fb}, m)
			fx := decluster.MustFX(fs, field.WithKinds([]field.Kind{field.I, field.I, field.IU2}))
			if !PerfectOptimal(fx) {
				t.Errorf("sizes=(%d,16,%d) M=%d not perfect optimal", 1<<fa, 1<<fb, m)
			}
		}
	}
}

// Theorem 9: with at most three fields smaller than M, the planner's
// default assignment is perfect optimal — swept over sizes and M.
func TestTheorem9(t *testing.T) {
	for mexp := 2; mexp <= 6; mexp++ {
		m := 1 << mexp
		for fa := 1; fa < mexp; fa++ {
			for fb := 1; fb < mexp; fb++ {
				for fc := 1; fc < mexp; fc++ {
					sizes := []int{1 << fa, 1 << fb, 1 << fc}
					fs := decluster.MustFileSystem(sizes, m)
					fx := decluster.MustFX(fs) // Auto => Theorem 9 ordering
					if !PerfectOptimal(fx) {
						t.Errorf("sizes=%v M=%d plan=%v not perfect optimal",
							sizes, m, fx.Plan())
					}
				}
			}
		}
	}
}

// Theorem 9 with a large field added: L is still 3, perfect optimality
// must survive.
func TestTheorem9WithLargeField(t *testing.T) {
	m := 16
	sizes := []int{4, 32, 2, 8}
	fs := decluster.MustFileSystem(sizes, m)
	fx := decluster.MustFX(fs)
	if !PerfectOptimal(fx) {
		t.Errorf("sizes=%v M=%d plan=%v not perfect optimal", sizes, m, fx.Plan())
	}
}

// StrictForQuery is the query-level entry to StrictForSubset.
func TestStrictForQuery(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 16)
	fx := decluster.MustFX(fs, field.WithKinds([]field.Kind{field.I, field.U}))
	md := decluster.NewModulo(fs)
	q := query.All(2)
	if !StrictForQuery(fx, q) {
		t.Error("FX(I,U) not optimal for the whole-file query")
	}
	if StrictForQuery(md, q) {
		t.Error("Modulo unexpectedly optimal for the whole-file query")
	}
}

// FindWitness returns the smallest failing class, or nothing when perfect.
func TestFindWitnessDirect(t *testing.T) {
	fs := decluster.MustFileSystem([]int{2, 8}, 16)
	basic, err := decluster.NewBasicFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := FindWitness(basic)
	if !ok || len(w.Unspec) != 2 || w.MaxLoad <= w.Bound {
		t.Errorf("witness = %+v, ok=%v", w, ok)
	}
	fixed := decluster.MustFX(fs)
	if w, ok := FindWitness(fixed); ok {
		t.Errorf("witness %+v on perfect optimal allocator", w)
	}
}

// Regression: grids whose |R(q)| exceeds int64 (ten fields of size 512,
// M=512, all unspecified: 512^10 buckets) must still get exact verdicts —
// the uniform-histogram short-circuit avoids materialising the counts.
func TestStrictForSubsetHugeGrid(t *testing.T) {
	sizes := make([]int, 10)
	for i := range sizes {
		sizes[i] = 512
	}
	fs := decluster.MustFileSystem(sizes, 512)
	md := decluster.NewModulo(fs)
	all := make([]int, 10)
	for i := range all {
		all[i] = i
	}
	if !StrictForSubset(md, all) {
		t.Error("Modulo with all fields of size M unspecified must be optimal")
	}
	fx, err := decluster.NewBasicFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !StrictForSubset(fx, all) {
		t.Error("Basic FX with all fields of size M unspecified must be optimal")
	}
}

// Soundness of the §4.2 sufficient conditions: whenever FXSufficient says
// "guaranteed", the exact verdict must agree. Randomized sweep over file
// systems and plans, including systems with L >= 4 where FX is not always
// optimal.
func TestFXSufficientSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	kindsPool := []field.Kind{field.I, field.U, field.IU1, field.IU2}
	for trial := 0; trial < 60; trial++ {
		nf := 2 + r.Intn(4) // 2..5 fields
		mexp := 2 + r.Intn(5)
		m := 1 << mexp
		sizes := make([]int, nf)
		kinds := make([]field.Kind, nf)
		for i := range sizes {
			sizes[i] = 1 << (1 + r.Intn(mexp)) // may reach M
			if sizes[i] >= m {
				kinds[i] = field.I
			} else {
				kinds[i] = kindsPool[r.Intn(len(kindsPool))]
			}
		}
		fs := decluster.MustFileSystem(sizes, m)
		fx := decluster.MustFX(fs, field.WithKinds(kinds))
		EachSubset(nf, func(s []int) {
			if FXSufficient(fx, s) && !StrictForSubset(fx, s) {
				t.Errorf("unsound: sizes=%v m=%d plan=%v subset=%v predicted optimal but is not",
					sizes, m, fx.Plan(), s)
			}
		})
	}
}

// Soundness of the Modulo sufficient condition.
func TestModuloSufficientSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		nf := 2 + r.Intn(4)
		mexp := 2 + r.Intn(4)
		m := 1 << mexp
		sizes := make([]int, nf)
		for i := range sizes {
			sizes[i] = 1 << (1 + r.Intn(mexp+1))
		}
		fs := decluster.MustFileSystem(sizes, m)
		md := decluster.NewModulo(fs)
		EachSubset(nf, func(s []int) {
			if ModuloSufficient(fs, s) && !StrictForSubset(md, s) {
				t.Errorf("unsound: sizes=%v m=%d subset=%v predicted optimal but is not",
					sizes, m, s)
			}
		})
	}
}

// §4.2 claim: with power-of-two sizes, the FX-optimal query class contains
// the Modulo-optimal class. Verified with exact verdicts over a sweep.
func TestFXSupersetOfModulo(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nf := 2 + r.Intn(3)
		mexp := 2 + r.Intn(4)
		m := 1 << mexp
		sizes := make([]int, nf)
		for i := range sizes {
			sizes[i] = 1 << (1 + r.Intn(mexp+1))
		}
		fs := decluster.MustFileSystem(sizes, m)
		fx := decluster.MustFX(fs)
		md := decluster.NewModulo(fs)
		EachSubset(nf, func(s []int) {
			if StrictForSubset(md, s) && !StrictForSubset(fx, s) {
				t.Errorf("sizes=%v m=%d subset=%v: Modulo optimal but FX (plan %v) is not",
					sizes, m, s, fx.Plan())
			}
		})
	}
}

// Predicate-level superset holds by construction: ModuloSufficient implies
// FXSufficient for any plan (both conditions reduce to a large unspecified
// field or k <= 1).
func TestPredicateSuperset(t *testing.T) {
	fs := decluster.MustFileSystem([]int{2, 4, 16, 8}, 16)
	fx := decluster.MustFX(fs)
	EachSubset(4, func(s []int) {
		if ModuloSufficient(fs, s) && !FXSufficient(fx, s) {
			t.Errorf("subset %v: Modulo sufficient but FX not", s)
		}
	})
}

// Table 2's file system: FX(I,U) perfect optimal, Modulo is not 2-optimal.
func TestTable2Optimality(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 16)
	fx := decluster.MustFX(fs, field.WithKinds([]field.Kind{field.I, field.U}))
	if !PerfectOptimal(fx) {
		t.Error("FX(I,U) not perfect optimal on Table 2 file system")
	}
	md := decluster.NewModulo(fs)
	if KOptimal(md, 2) {
		t.Error("Modulo unexpectedly 2-optimal on Table 2 file system")
	}
	if !KOptimal(md, 0) || !KOptimal(md, 1) {
		t.Error("Modulo should be 0- and 1-optimal")
	}
}

// Sung's impossibility context (§4.2): with L >= 4 no method is always
// perfect optimal; verify FX indeed fails somewhere for an L=4 system but
// the failing subsets are exactly those FXSufficient declines to certify.
func TestL4NotAlwaysOptimal(t *testing.T) {
	fs := decluster.MustFileSystem([]int{2, 2, 2, 2}, 16)
	fx := decluster.MustFX(fs, field.WithStrategy(field.RoundRobin))
	if PerfectOptimal(fx) {
		t.Skip("this particular L=4 system happens to be perfect optimal")
	}
	foundFailure := false
	EachSubset(4, func(s []int) {
		if !StrictForSubset(fx, s) {
			foundFailure = true
			if FXSufficient(fx, s) {
				t.Errorf("subset %v fails but predicate certified it", s)
			}
		}
	})
	if !foundFailure {
		t.Error("PerfectOptimal false but no failing subset found")
	}
}
