package optimal

import (
	"testing"

	"fxdist/internal/bitsx"
	"fxdist/internal/decluster"
	"fxdist/internal/query"
)

// bruteKOptimal checks k-optimality by enumerating every concrete query
// (every unspecified subset AND every assignment of specified values) and
// counting loads by scanning R(q) — the definition, with no reliance on
// convolution or translation invariance.
func bruteKOptimal(a decluster.GroupAllocator, k int) bool {
	fs := a.FileSystem()
	n := fs.NumFields()
	ok := true
	EachSubsetOfSize(n, k, func(unspec []int) {
		if !ok {
			return
		}
		isUnspec := make([]bool, n)
		for _, i := range unspec {
			isUnspec[i] = true
		}
		// Enumerate all assignments of specified values.
		spec := make([]int, n)
		var rec func(i int)
		rec = func(i int) {
			if !ok {
				return
			}
			if i == n {
				q := query.New(spec)
				loads := query.Loads(a, q)
				if bitsx.MaxInt(loads) > bitsx.CeilDiv(q.NumQualified(fs), fs.M) {
					ok = false
				}
				return
			}
			if isUnspec[i] {
				spec[i] = query.Unspecified
				rec(i + 1)
				return
			}
			for v := 0; v < fs.Sizes[i]; v++ {
				spec[i] = v
				rec(i + 1)
			}
		}
		rec(0)
	})
	return ok
}

// KOptimal (one profile per subset, via convolution) must agree with the
// brute-force definition over every concrete query — this validates the
// translation-invariance shortcut the whole analysis pipeline rests on.
func TestKOptimalMatchesDefinition(t *testing.T) {
	configs := []struct {
		sizes []int
		m     int
	}{
		{[]int{2, 4}, 4},
		{[]int{4, 4}, 8},
		{[]int{2, 2, 4}, 4},
		{[]int{2, 4, 2}, 8},
	}
	for _, c := range configs {
		fs := decluster.MustFileSystem(c.sizes, c.m)
		allocs := []decluster.GroupAllocator{
			decluster.MustFX(fs),
			decluster.NewModulo(fs),
			decluster.MustGDM(fs, multipliersFor(len(c.sizes))),
		}
		for _, a := range allocs {
			for k := 0; k <= fs.NumFields(); k++ {
				fast := KOptimal(a, k)
				slow := bruteKOptimal(a, k)
				if fast != slow {
					t.Errorf("%s sizes=%v m=%d k=%d: KOptimal=%v, definition=%v",
						a.Name(), c.sizes, c.m, k, fast, slow)
				}
			}
		}
	}
}

func multipliersFor(n int) []int {
	base := []int{3, 5, 7, 11, 13, 17}
	return base[:n]
}

// PerfectOptimal must equal the conjunction of all k-optimalities.
func TestPerfectOptimalIsConjunction(t *testing.T) {
	fs := decluster.MustFileSystem([]int{2, 4, 2}, 8)
	for _, a := range []decluster.GroupAllocator{
		decluster.MustFX(fs),
		decluster.NewModulo(fs),
	} {
		all := true
		for k := 0; k <= 3; k++ {
			if !KOptimal(a, k) {
				all = false
			}
		}
		if PerfectOptimal(a) != all {
			t.Errorf("%s: PerfectOptimal=%v, conjunction=%v", a.Name(), PerfectOptimal(a), all)
		}
	}
}
