package optimal

import (
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/field"
)

// Pin the individual clauses of the §4.2 sufficient-condition summary.

func fxWith(t *testing.T, sizes []int, m int, kinds []field.Kind) *decluster.FX {
	t.Helper()
	fs := decluster.MustFileSystem(sizes, m)
	return decluster.MustFX(fs, field.WithKinds(kinds))
}

// Condition (1): k <= 1 is always certified, whatever the transforms.
func TestConditionOneUnspecified(t *testing.T) {
	fx := fxWith(t, []int{2, 2}, 16, []field.Kind{field.I, field.I})
	if !FXSufficient(fx, nil) {
		t.Error("k=0 not certified")
	}
	if !FXSufficient(fx, []int{1}) {
		t.Error("k=1 not certified")
	}
}

// Condition (2): any unspecified field of size >= M certifies the query.
func TestConditionLargeField(t *testing.T) {
	fx := fxWith(t, []int{2, 32, 2}, 16, []field.Kind{field.I, field.I, field.I})
	if !FXSufficient(fx, []int{0, 1, 2}) {
		t.Error("large unspecified field not certified")
	}
	if FXSufficient(fx, []int{0, 2}) {
		t.Error("two same-method small fields wrongly certified")
	}
}

// Condition (3): two small unspecified fields certify iff their methods
// differ — and the IU1+IU2 pair does NOT count as different.
func TestConditionPairMethods(t *testing.T) {
	cases := []struct {
		kinds []field.Kind
		want  bool
	}{
		{[]field.Kind{field.I, field.U}, true},
		{[]field.Kind{field.I, field.IU1}, true},
		{[]field.Kind{field.U, field.IU1}, true},
		{[]field.Kind{field.I, field.IU2}, true},
		{[]field.Kind{field.U, field.IU2}, true},
		{[]field.Kind{field.I, field.I}, false},
		{[]field.Kind{field.U, field.U}, false},
		{[]field.Kind{field.IU1, field.IU1}, false},
		{[]field.Kind{field.IU1, field.IU2}, false}, // the §4.2 caveat
	}
	for _, c := range cases {
		fx := fxWith(t, []int{2, 2}, 16, c.kinds)
		if got := FXSufficient(fx, []int{0, 1}); got != c.want {
			t.Errorf("kinds %v: certified=%v, want %v", c.kinds, got, c.want)
		}
	}
}

// Degenerate IU2 (F*F >= M) counts as IU1: pairing it with true IU1 must
// not certify.
func TestConditionDegenerateIU2CountsAsIU1(t *testing.T) {
	// F=8, M=16: 64 >= 16, IU2 degenerates.
	fx := fxWith(t, []int{8, 8}, 16, []field.Kind{field.IU1, field.IU2})
	if FXSufficient(fx, []int{0, 1}) {
		t.Error("IU1 + degenerate-IU2 pair wrongly certified")
	}
	// And it IS strict-optimal-equivalent to IU1+IU1 — the exact check
	// agrees with the refusal or not; either way the predicate must be
	// sound, which TestFXSufficientSoundness already sweeps.
}

// Condition (4)a / (5)a: a pair with product >= M and different methods.
func TestConditionPairProduct(t *testing.T) {
	// Three small fields, all same method: not certified.
	same := fxWith(t, []int{8, 8, 8}, 32, []field.Kind{field.I, field.I, field.I})
	if FXSufficient(same, []int{0, 1, 2}) {
		t.Error("all-same-method triple wrongly certified")
	}
	// Same sizes, two different methods with product 64 >= 32: certified.
	diff := fxWith(t, []int{8, 8, 8}, 32, []field.Kind{field.I, field.U, field.I})
	if !FXSufficient(diff, []int{0, 1, 2}) {
		t.Error("triple with qualifying pair not certified")
	}
	// Two different methods but product below M: not certified via (4)a...
	small := fxWith(t, []int{2, 2, 2}, 32, []field.Kind{field.I, field.U, field.I})
	if FXSufficient(small, []int{0, 1, 2}) {
		t.Error("triple without qualifying pair or I/U/IU2 wrongly certified")
	}
}

// Condition (4)b: an I, U, IU2 triple with F_IU2 >= F_U certifies even
// when every pairwise product is below M.
func TestConditionTripleIUIU2(t *testing.T) {
	// M=512: pairwise products 8*8=64 < 512.
	ok := fxWith(t, []int{8, 8, 8}, 512, []field.Kind{field.I, field.U, field.IU2})
	if !FXSufficient(ok, []int{0, 1, 2}) {
		t.Error("I/U/IU2 triple not certified")
	}
	// IU2 field smaller than U field: refused.
	bad := fxWith(t, []int{8, 8, 2}, 512, []field.Kind{field.I, field.U, field.IU2})
	if FXSufficient(bad, []int{0, 1, 2}) {
		t.Error("I/U/IU2 with F_IU2 < F_U wrongly certified")
	}
}

// Condition (5)b: with four or more unspecified fields the I/U/IU2 triple
// must additionally cover the device count (product >= M).
func TestConditionQuadProductRequirement(t *testing.T) {
	// Triple product 8*8*8 = 512 >= 512: certified.
	ok := fxWith(t, []int{8, 8, 8, 2}, 512,
		[]field.Kind{field.I, field.U, field.IU2, field.I})
	if !FXSufficient(ok, []int{0, 1, 2, 3}) {
		t.Error("quad with covering I/U/IU2 triple not certified")
	}
	// Triple product 2*2*2 = 8 < 512: refused.
	bad := fxWith(t, []int{2, 2, 2, 2}, 512,
		[]field.Kind{field.I, field.U, field.IU2, field.I})
	if FXSufficient(bad, []int{0, 1, 2, 3}) {
		t.Error("quad with non-covering triple wrongly certified")
	}
}

// Modulo's condition: only multiples of M (here: size >= M, powers of 2).
func TestModuloConditionClauses(t *testing.T) {
	fs := decluster.MustFileSystem([]int{16, 8, 2}, 16)
	if !ModuloSufficient(fs, nil) || !ModuloSufficient(fs, []int{2}) {
		t.Error("k<=1 not certified")
	}
	if !ModuloSufficient(fs, []int{0, 2}) {
		t.Error("unspecified multiple-of-M field not certified")
	}
	if ModuloSufficient(fs, []int{1, 2}) {
		t.Error("two small fields wrongly certified")
	}
}

// GDM with an odd multiplier on a field of size M permutes Z_M — a
// property the GDM columns of Tables 7-9 implicitly rely on.
func TestGDMOddMultiplierPermutes(t *testing.T) {
	fs := decluster.MustFileSystem([]int{16, 2}, 16)
	g := decluster.MustGDM(fs, []int{11, 3})
	seen := make([]bool, 16)
	for v := 0; v < 16; v++ {
		c := g.Contribution(0, v)
		if seen[c] {
			t.Fatalf("contribution %d repeated", c)
		}
		seen[c] = true
	}
}
