// Package optimal implements the paper's optimality theory: exact
// strict/k/perfect optimality verdicts for group allocators, and the
// closed-form *sufficient conditions* of §4.2 (Corollaries 6.1 and 9.1)
// for FX and of [DuSo82] for Modulo, which the paper uses to compute the
// probability-of-optimality comparisons in Figures 1-4.
//
// A distribution is strict optimal for query q when no device holds more
// than ceil(|R(q)|/M) qualified buckets. For group allocators the load
// multiset depends only on the set of unspecified fields (see package
// convolve), so every verdict here is a function of that set.
package optimal

import (
	"fxdist/internal/bitsx"
	"fxdist/internal/convolve"
	"fxdist/internal/decluster"
	"fxdist/internal/field"
	"fxdist/internal/query"
)

// StrictForSubset reports whether a is strict optimal for every query
// whose unspecified field set is exactly unspec. Exact (via convolution),
// not a sufficient condition.
//
// A field whose contribution histogram is uniform over Z_M makes the load
// vector uniform outright (convolution with a uniform operand is uniform),
// so such subsets return true without convolving — which also keeps counts
// within int range for grids whose |R(q)| would overflow (e.g. ten fields
// of size 512).
func StrictForSubset(a decluster.GroupAllocator, unspec []int) bool {
	fs := a.FileSystem()
	hists := make([][]int, 0, len(unspec))
	for _, i := range unspec {
		h := convolve.FieldHistogram(a, i)
		if convolve.Uniform(h) {
			return true
		}
		hists = append(hists, h)
	}
	vec := make([]int, fs.M)
	vec[0] = 1
	r := 1
	for j, h := range hists {
		vec = convolve.Fold(a.Op(), fs.M, vec, h)
		r *= fs.Sizes[unspec[j]]
	}
	return bitsx.MaxInt(vec) <= bitsx.CeilDiv(r, fs.M)
}

// StrictForQuery reports whether a is strict optimal for q. Exact.
func StrictForQuery(a decluster.GroupAllocator, q query.Query) bool {
	return StrictForSubset(a, q.UnspecifiedFields())
}

// KOptimal reports whether a is strict optimal for all queries with
// exactly k unspecified fields (the paper's k-optimality). Exact.
func KOptimal(a decluster.GroupAllocator, k int) bool {
	ok := true
	EachSubsetOfSize(a.FileSystem().NumFields(), k, func(s []int) {
		if ok && !StrictForSubset(a, s) {
			ok = false
		}
	})
	return ok
}

// PerfectOptimal reports whether a is k-optimal for every k = 0..n. Exact.
func PerfectOptimal(a decluster.GroupAllocator) bool {
	ok := true
	EachSubset(a.FileSystem().NumFields(), func(s []int) {
		if ok && !StrictForSubset(a, s) {
			ok = false
		}
	})
	return ok
}

// EachSubset calls fn with every subset of {0..n-1}, smallest first. The
// slice passed to fn is reused; copy to retain.
func EachSubset(n int, fn func(subset []int)) {
	for k := 0; k <= n; k++ {
		EachSubsetOfSize(n, k, fn)
	}
}

// EachSubsetOfSize calls fn with every k-element subset of {0..n-1} in
// lexicographic order. The slice passed to fn is reused; copy to retain.
func EachSubsetOfSize(n, k int, fn func(subset []int)) {
	if k < 0 || k > n {
		return
	}
	s := make([]int, k)
	var rec func(pos, next int)
	rec = func(pos, next int) {
		if pos == k {
			fn(s)
			return
		}
		for v := next; v <= n-(k-pos); v++ {
			s[pos] = v
			rec(pos+1, v+1)
		}
	}
	rec(0, 0)
}

// effectiveKind maps a plan function to its effective method: IU2 with
// F*F >= M degenerates to IU1 (paper note after Lemma 7.1), so §4.2's
// conditions must treat it as IU1.
func effectiveKind(fn field.Func) field.Kind {
	if fn.Kind() == field.IU2 && fn.D2() == 0 {
		return field.IU1
	}
	return fn.Kind()
}

// differentMethods reports whether the §4.2 "different transformation
// methods" precondition holds for fields i and j of the plan. The summary
// notes that "IU1 and IU2 combination do not apply", so that pair does not
// count as different.
func differentMethods(plan field.Plan, i, j int) bool {
	ki, kj := effectiveKind(plan.Funcs[i]), effectiveKind(plan.Funcs[j])
	if ki == kj {
		return false
	}
	iu := func(k field.Kind) bool { return k == field.IU1 || k == field.IU2 }
	return !(iu(ki) && iu(kj))
}

// FXSufficient evaluates the paper's §4.2 summary conditions (the union of
// Theorems 1-9 and Corollaries 6.1 and 9.1): it returns true only when the
// theory *guarantees* FX is strict optimal for every query with the given
// unspecified field set. A false return means "not guaranteed", not "not
// optimal" — compare with StrictForSubset for the exact verdict.
func FXSufficient(x *decluster.FX, unspec []int) bool {
	fs := x.FileSystem()
	plan := x.Plan()
	k := len(unspec)

	// (1) Zero or one unspecified field: Theorem 1.
	if k <= 1 {
		return true
	}
	// (2) Any unspecified field of size >= M: Theorem 2.
	for _, i := range unspec {
		if fs.Sizes[i] >= fs.M {
			return true
		}
	}
	// From here every unspecified field is smaller than M.
	if k == 2 {
		// (3) Two unspecified fields with different methods:
		// Theorems 4, 5, 6, 7, 8.
		return differentMethods(plan, unspec[0], unspec[1])
	}
	// (4)a / (5)a: a pair p, q with F_p*F_q >= M and different methods:
	// Theorem 3 combined with the pairwise theorems (Corollary 6.1 cond. 3,
	// Corollary 9.1 cond. 3).
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			p, q := unspec[a], unspec[b]
			if fs.Sizes[p]*fs.Sizes[q] >= fs.M && differentMethods(plan, p, q) {
				return true
			}
		}
	}
	// (4)b / (5)b: an I, U, IU2 triple with F_IU2 >= F_U (Lemma 9.1's
	// second condition; a non-degenerate IU2 implies F_IU2^2 < M). For
	// four or more unspecified fields the triple must additionally cover
	// the device count: F_i*F_j*F_k >= M (Corollary 9.1 cond. 5).
	var iIdx, uIdx, iu2Idx []int
	for _, i := range unspec {
		switch effectiveKind(plan.Funcs[i]) {
		case field.I:
			iIdx = append(iIdx, i)
		case field.U:
			uIdx = append(uIdx, i)
		case field.IU2:
			iu2Idx = append(iu2Idx, i)
		}
	}
	for _, i := range iIdx {
		for _, j := range uIdx {
			for _, l := range iu2Idx {
				if fs.Sizes[l] < fs.Sizes[j] {
					continue
				}
				if k > 3 && fs.Sizes[i]*fs.Sizes[j]*fs.Sizes[l] < fs.M {
					continue
				}
				return true
			}
		}
	}
	return false
}

// Witness describes a query class on which an allocator misses strict
// optimality.
type Witness struct {
	// Unspec is the unspecified field set.
	Unspec []int
	// MaxLoad is the largest response size; Bound is ceil(|R(q)|/M). A
	// witness always has MaxLoad > Bound.
	MaxLoad, Bound int
}

// FindWitness returns a query class for which a is NOT strict optimal, or
// ok=false if a is perfect optimal. Among failing classes it returns one
// with the fewest unspecified fields (the earliest k at which optimality
// breaks).
func FindWitness(a decluster.GroupAllocator) (w Witness, ok bool) {
	fs := a.FileSystem()
	n := fs.NumFields()
	for k := 0; k <= n; k++ {
		found := false
		EachSubsetOfSize(n, k, func(s []int) {
			if found {
				return
			}
			if !StrictForSubset(a, s) {
				r := convolve.QualifiedCount(fs, s)
				found = true
				w = Witness{
					Unspec:  append([]int(nil), s...),
					MaxLoad: convolve.LargestLoad(a, s),
					Bound:   bitsx.CeilDiv(r, fs.M),
				}
			}
		})
		if found {
			return w, true
		}
	}
	return Witness{}, false
}

// ModuloSufficient evaluates the [DuSo82] sufficient condition for Disk
// Modulo allocation, which the paper uses as the Modulo side of Figures
// 1-4: strict optimality is guaranteed when at most one field is
// unspecified, or when some unspecified field's size is a multiple of M
// (with power-of-two sizes: F_i >= M).
func ModuloSufficient(fs decluster.FileSystem, unspec []int) bool {
	if len(unspec) <= 1 {
		return true
	}
	for _, i := range unspec {
		if fs.Sizes[i]%fs.M == 0 {
			return true
		}
	}
	return false
}
