package mkhash

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

func testSchema() Schema {
	return Schema{
		Fields: []string{"make", "model", "year"},
		Depths: []int{2, 3, 1},
	}
}

func strptr(s string) *string { return &s }

func TestSchemaValidate(t *testing.T) {
	if err := (Schema{}).Validate(); err == nil {
		t.Error("empty schema accepted")
	}
	if err := (Schema{Fields: []string{"a"}, Depths: []int{1, 2}}).Validate(); err == nil {
		t.Error("depth/field mismatch accepted")
	}
	if err := (Schema{Fields: []string{"a"}, Depths: []int{-1}}).Validate(); err == nil {
		t.Error("negative depth accepted")
	}
	if err := (Schema{Fields: []string{"a"}, Depths: []int{31}}).Validate(); err == nil {
		t.Error("oversized depth accepted")
	}
	if err := testSchema().Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

func TestNewAndAccessors(t *testing.T) {
	f := MustNew(testSchema())
	if got := f.Sizes(); !reflect.DeepEqual(got, []int{4, 8, 2}) {
		t.Errorf("Sizes = %v", got)
	}
	if f.NumFields() != 3 || f.Len() != 0 {
		t.Error("accessors wrong")
	}
	if i, err := f.FieldIndex("model"); err != nil || i != 1 {
		t.Errorf("FieldIndex(model) = %d, %v", i, err)
	}
	if _, err := f.FieldIndex("nope"); err == nil {
		t.Error("unknown field accepted")
	}
	fs, err := f.FileSystem(4)
	if err != nil || fs.M != 4 || fs.NumBuckets() != 64 {
		t.Errorf("FileSystem = %+v, %v", fs, err)
	}
}

func TestInsertAndBucketOf(t *testing.T) {
	f := MustNew(testSchema())
	r := Record{"ford", "escort", "1988"}
	b, err := f.BucketOf(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(r); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 1 {
		t.Error("Len after insert wrong")
	}
	got := f.Bucket(b)
	if len(got) != 1 || !reflect.DeepEqual(got[0], r) {
		t.Errorf("Bucket = %v", got)
	}
	// Stored record is a copy, not an alias.
	r[0] = "mutated"
	if f.Bucket(b)[0][0] == "mutated" {
		t.Error("Insert aliases caller's record")
	}
	if err := f.Insert(Record{"too", "short"}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := f.BucketOf(Record{"x"}); err == nil {
		t.Error("BucketOf arity mismatch accepted")
	}
}

func TestHashDeterminismAndRange(t *testing.T) {
	f := MustNew(testSchema())
	for trial := 0; trial < 50; trial++ {
		v := fmt.Sprintf("value-%d", trial)
		b1, _ := f.BucketOf(Record{v, v, v})
		b2, _ := f.BucketOf(Record{v, v, v})
		if !reflect.DeepEqual(b1, b2) {
			t.Fatal("hashing not deterministic")
		}
		sizes := f.Sizes()
		for i, c := range b1 {
			if c < 0 || c >= sizes[i] {
				t.Fatalf("coordinate %d out of range: %d", i, c)
			}
		}
	}
	// Field salting: the same value should (generally) hash differently in
	// different fields of equal depth.
	g := MustNew(Schema{Fields: []string{"a", "b"}, Depths: []int{8, 8}})
	diff := 0
	for trial := 0; trial < 32; trial++ {
		v := fmt.Sprintf("value-%d", trial)
		b, _ := g.BucketOf(Record{v, v})
		if b[0] != b[1] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("field salting ineffective: all 32 values collide across fields")
	}
}

func TestWithHashOverride(t *testing.T) {
	constant := func(string) uint64 { return 3 }
	f := MustNew(testSchema(), WithHash(0, constant))
	b, _ := f.BucketOf(Record{"anything", "else", "x"})
	if b[0] != 3 {
		t.Errorf("override ignored: %v", b)
	}
}

func TestSearchExactAndPartial(t *testing.T) {
	f := MustNew(testSchema())
	records := []Record{
		{"ford", "escort", "1988"},
		{"ford", "sierra", "1988"},
		{"bmw", "e30", "1988"},
		{"ford", "escort", "1990"},
	}
	for _, r := range records {
		if err := f.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	pm, err := f.Spec(map[string]string{"make": "ford"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Search(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("Search(make=ford) returned %d records, want 3", len(got))
	}
	for _, r := range got {
		if r[0] != "ford" {
			t.Errorf("non-matching record returned: %v", r)
		}
	}
	pm2, _ := f.Spec(map[string]string{"make": "ford", "model": "escort", "year": "1988"})
	got2, _ := f.Search(pm2)
	if len(got2) != 1 || got2[0][1] != "escort" {
		t.Errorf("exact search = %v", got2)
	}
	// Unspecified everything returns all records.
	all, _ := f.Search(make(PartialMatch, 3))
	if len(all) != 4 {
		t.Errorf("full scan returned %d records", len(all))
	}
	// Non-existent value returns nothing (hash collisions filtered).
	pm3, _ := f.Spec(map[string]string{"make": "lada"})
	got3, _ := f.Search(pm3)
	if len(got3) != 0 {
		t.Errorf("Search(make=lada) = %v, want empty", got3)
	}
}

func TestSpecUnknownField(t *testing.T) {
	f := MustNew(testSchema())
	if _, err := f.Spec(map[string]string{"colour": "red"}); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestBucketQueryArity(t *testing.T) {
	f := MustNew(testSchema())
	if _, err := f.BucketQuery(make(PartialMatch, 2)); err == nil {
		t.Error("wrong arity accepted")
	}
	pm := make(PartialMatch, 3)
	pm[1] = strptr("escort")
	q, err := f.BucketQuery(pm)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumUnspecified() != 2 {
		t.Errorf("NumUnspecified = %d", q.NumUnspecified())
	}
	if _, err := f.Search(make(PartialMatch, 1)); err == nil {
		t.Error("Search with wrong arity accepted")
	}
}

func TestGrowPreservesRecordsAndSearch(t *testing.T) {
	f := MustNew(testSchema())
	var want []string
	for i := 0; i < 200; i++ {
		r := Record{fmt.Sprintf("make%d", i%5), fmt.Sprintf("model%d", i), "1988"}
		want = append(want, r[1])
		if err := f.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for fieldIdx := 0; fieldIdx < 3; fieldIdx++ {
		if err := f.Grow(fieldIdx); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Sizes(); !reflect.DeepEqual(got, []int{8, 16, 4}) {
		t.Errorf("Sizes after grow = %v", got)
	}
	if f.Len() != 200 {
		t.Errorf("Len after grow = %d", f.Len())
	}
	all, err := f.Search(make(PartialMatch, 3))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range all {
		got = append(got, r[1])
	}
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Error("records lost or duplicated by Grow")
	}
	// Point search still works after growth.
	pm, _ := f.Spec(map[string]string{"model": "model7"})
	res, _ := f.Search(pm)
	if len(res) != 1 || res[0][1] != "model7" {
		t.Errorf("post-grow search = %v", res)
	}
}

func TestGrowValidation(t *testing.T) {
	f := MustNew(testSchema())
	if err := f.Grow(-1); err == nil {
		t.Error("negative field accepted")
	}
	if err := f.Grow(3); err == nil {
		t.Error("out-of-range field accepted")
	}
	g := MustNew(Schema{Fields: []string{"a"}, Depths: []int{30}})
	if err := g.Grow(0); err == nil {
		t.Error("grow past max depth accepted")
	}
}

func TestEachBucket(t *testing.T) {
	f := MustNew(testSchema())
	for i := 0; i < 50; i++ {
		f.Insert(Record{fmt.Sprintf("m%d", i), fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i)})
	}
	total := 0
	sizes := f.Sizes()
	f.EachBucket(func(coords []int, recs []Record) {
		for i, c := range coords {
			if c < 0 || c >= sizes[i] {
				t.Fatalf("coords out of range: %v", coords)
			}
		}
		// Coordinates must round-trip: every record in the bucket hashes
		// to these coordinates.
		for _, r := range recs {
			b, _ := f.BucketOf(r)
			if !reflect.DeepEqual(b, coords) {
				t.Fatalf("record %v in bucket %v hashes to %v", r, coords, b)
			}
		}
		total += len(recs)
	})
	if total != 50 {
		t.Errorf("EachBucket visited %d records, want 50", total)
	}
}

func TestDelete(t *testing.T) {
	f := MustNew(testSchema())
	dup := Record{"ford", "escort", "1988"}
	f.Insert(dup)                          //nolint:errcheck
	f.Insert(dup)                          //nolint:errcheck
	f.Insert(Record{"bmw", "e30", "1988"}) //nolint:errcheck
	n, err := f.Delete(dup)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || f.Len() != 1 {
		t.Errorf("deleted %d, Len %d; want 2, 1", n, f.Len())
	}
	// Deleting again removes nothing.
	n, err = f.Delete(dup)
	if err != nil || n != 0 {
		t.Errorf("second delete = %d, %v", n, err)
	}
	// Remaining record still searchable.
	pm, _ := f.Spec(map[string]string{"make": "bmw"})
	recs, _ := f.Search(pm)
	if len(recs) != 1 {
		t.Errorf("survivor not found: %v", recs)
	}
	if _, err := f.Delete(Record{"arity"}); err == nil {
		t.Error("wrong-arity delete accepted")
	}
}

func TestOccupancy(t *testing.T) {
	f := MustNew(testSchema())
	if mean, max := f.Occupancy(); mean != 0 || max != 0 {
		t.Errorf("empty occupancy = %v, %v", mean, max)
	}
	for i := 0; i < 30; i++ {
		f.Insert(Record{"same", "same", "same"}) //nolint:errcheck // all one bucket
	}
	mean, max := f.Occupancy()
	if mean != 30 || max != 30 {
		t.Errorf("occupancy = %v, %v; want 30, 30", mean, max)
	}
}

func TestGrowAdvice(t *testing.T) {
	f := MustNew(testSchema())
	if _, ok := f.GrowAdvice(); ok {
		t.Error("advice on an empty file")
	}
	// Field 0 constant (splits nothing), field 1 diverse, field 2 constant.
	for i := 0; i < 200; i++ {
		f.Insert(Record{"const", fmt.Sprintf("v%d", i), "const"}) //nolint:errcheck
	}
	idx, ok := f.GrowAdvice()
	if !ok || idx != 1 {
		t.Errorf("GrowAdvice = %d, %v; want field 1", idx, ok)
	}
	// Following the advice actually reduces peak occupancy.
	_, maxBefore := f.Occupancy()
	if err := f.Grow(idx); err != nil {
		t.Fatal(err)
	}
	_, maxAfter := f.Occupancy()
	if maxAfter >= maxBefore {
		t.Errorf("max occupancy %d -> %d after advised growth", maxBefore, maxAfter)
	}
}

func TestGrowSplitsBuckets(t *testing.T) {
	// With enough records, growing a field must actually split occupancy:
	// some bucket cell along that field gains a sibling.
	f := MustNew(Schema{Fields: []string{"k"}, Depths: []int{1}})
	for i := 0; i < 64; i++ {
		f.Insert(Record{fmt.Sprintf("key-%d", i)})
	}
	before := len(f.buckets)
	if err := f.Grow(0); err != nil {
		t.Fatal(err)
	}
	after := len(f.buckets)
	if after <= before {
		t.Errorf("bucket count did not increase on grow: %d -> %d", before, after)
	}
}
