// Package mkhash implements the multi-key hashed file the paper assumes as
// its substrate (after Rivest [Rive76] and Rothnie & Lozano [RoLo74]): a
// record's n field values are hashed independently, field i into a
// directory of F_i cells (F_i a power of two, as in dynamic/partitioned
// hashing schemes), and the record lands in the bucket addressed by the
// vector of hash values. Partial match queries then qualify a sub-grid of
// buckets.
//
// The file supports dynamic growth in the style of extendible hashing:
// each field has a depth d_i with F_i = 2^d_i, and growing a field doubles
// its directory by revealing one more bit of the 64-bit field hash, so
// existing records redistribute without rehashing from scratch.
package mkhash

import (
	"fmt"
	"hash/fnv"

	"fxdist/internal/decluster"
	"fxdist/internal/query"
)

// Record is one tuple; the file stores records by value.
type Record []string

// clone copies a record.
func (r Record) clone() Record { return append(Record(nil), r...) }

// Schema names the fields and fixes the initial directory depths.
type Schema struct {
	// Fields holds the field names, in order.
	Fields []string
	// Depths holds the initial per-field directory depth d_i (F_i = 2^d_i).
	Depths []int
}

// Validate checks the schema.
func (s Schema) Validate() error {
	if len(s.Fields) == 0 {
		return fmt.Errorf("mkhash: schema needs at least one field")
	}
	if len(s.Depths) != len(s.Fields) {
		return fmt.Errorf("mkhash: %d depths for %d fields", len(s.Depths), len(s.Fields))
	}
	for i, d := range s.Depths {
		if d < 0 || d > 30 {
			return fmt.Errorf("mkhash: depth of field %q is %d, want 0..30", s.Fields[i], d)
		}
	}
	return nil
}

// FieldHash maps a field value to a 64-bit hash; the file uses the low
// depth bits. Implementations must be deterministic.
type FieldHash func(value string) uint64

// DefaultHash is FNV-1a over the value bytes, salted with the field index
// so equal values in different fields hash independently.
func DefaultHash(fieldIdx int) FieldHash {
	return func(value string) uint64 {
		h := fnv.New64a()
		// Salt with the field index byte-wise.
		h.Write([]byte{byte(fieldIdx), byte(fieldIdx >> 8)})
		h.Write([]byte(value))
		return h.Sum64()
	}
}

// File is a multi-key hashed file held in memory as a bucket grid.
type File struct {
	schema Schema
	depths []int
	hashes []FieldHash
	// buckets maps the linear bucket index to its records.
	buckets map[int][]Record
	count   int
}

// Option configures New.
type Option func(*File)

// WithHash overrides the hash function of one field.
func WithHash(fieldIdx int, h FieldHash) Option {
	return func(f *File) { f.hashes[fieldIdx] = h }
}

// New builds an empty file for the schema.
func New(schema Schema, opts ...Option) (*File, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	f := &File{
		schema:  schema,
		depths:  append([]int(nil), schema.Depths...),
		hashes:  make([]FieldHash, len(schema.Fields)),
		buckets: make(map[int][]Record),
	}
	for i := range f.hashes {
		f.hashes[i] = DefaultHash(i)
	}
	for _, opt := range opts {
		opt(f)
	}
	return f, nil
}

// MustNew is New, panicking on error.
func MustNew(schema Schema, opts ...Option) *File {
	f, err := New(schema, opts...)
	if err != nil {
		panic(err)
	}
	return f
}

// Schema returns the file's schema (with the original depths).
func (f *File) Schema() Schema { return f.schema }

// FileSystem returns the current bucket-grid description for m devices.
func (f *File) FileSystem(m int) (decluster.FileSystem, error) {
	return decluster.NewFileSystem(f.Sizes(), m)
}

// Sizes returns the current per-field directory sizes F_i = 2^d_i.
func (f *File) Sizes() []int {
	out := make([]int, len(f.depths))
	for i, d := range f.depths {
		out[i] = 1 << d
	}
	return out
}

// Depths returns the current per-field directory depths (they grow past
// the schema's initial depths as Grow is called).
func (f *File) Depths() []int { return append([]int(nil), f.depths...) }

// NumFields returns n.
func (f *File) NumFields() int { return len(f.depths) }

// Len returns the number of stored records.
func (f *File) Len() int { return f.count }

// FieldIndex returns the index of the named field, or an error.
func (f *File) FieldIndex(name string) (int, error) {
	for i, n := range f.schema.Fields {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("mkhash: no field named %q", name)
}

// hashValue returns the directory cell of value in field i at the current
// depth.
func (f *File) hashValue(i int, value string) int {
	return int(f.hashes[i](value) & uint64(1<<f.depths[i]-1))
}

// BucketOf returns the bucket coordinates the record hashes to.
func (f *File) BucketOf(r Record) ([]int, error) {
	return f.BucketInto(r, nil)
}

// BucketInto is BucketOf reusing b's backing array when it has the
// capacity — the allocation-free form for bulk routing loops.
func (f *File) BucketInto(r Record, b []int) ([]int, error) {
	if len(r) != len(f.depths) {
		return nil, fmt.Errorf("mkhash: record has %d fields, schema has %d", len(r), len(f.depths))
	}
	if cap(b) < len(r) {
		b = make([]int, len(r))
	}
	b = b[:len(r)]
	for i, v := range r {
		b[i] = f.hashValue(i, v)
	}
	return b, nil
}

// linear converts bucket coordinates to the linear index.
func (f *File) linear(b []int) int {
	idx := 0
	for i, v := range b {
		idx = idx<<f.depths[i] | v
	}
	return idx
}

// Insert stores a record.
func (f *File) Insert(r Record) error {
	b, err := f.BucketOf(r)
	if err != nil {
		return err
	}
	idx := f.linear(b)
	f.buckets[idx] = append(f.buckets[idx], r.clone())
	f.count++
	return nil
}

// Delete removes every stored record equal to r, returning the number
// removed.
func (f *File) Delete(r Record) (int, error) {
	b, err := f.BucketOf(r)
	if err != nil {
		return 0, err
	}
	idx := f.linear(b)
	recs := f.buckets[idx]
	kept := recs[:0]
	removed := 0
	for _, stored := range recs {
		if stored.equal(r) {
			removed++
			continue
		}
		kept = append(kept, stored)
	}
	if len(kept) == 0 {
		delete(f.buckets, idx)
	} else {
		f.buckets[idx] = kept
	}
	f.count -= removed
	return removed, nil
}

// equal compares records field-wise.
func (r Record) equal(other Record) bool {
	if len(r) != len(other) {
		return false
	}
	for i := range r {
		if r[i] != other[i] {
			return false
		}
	}
	return true
}

// Bucket returns the records stored in the bucket with the given
// coordinates (nil when empty). The result aliases internal storage; do
// not mutate.
func (f *File) Bucket(b []int) []Record { return f.buckets[f.linear(b)] }

// EachBucket calls fn for every non-empty bucket. The coordinate slice is
// reused between calls.
func (f *File) EachBucket(fn func(coords []int, records []Record)) {
	coords := make([]int, len(f.depths))
	for idx, recs := range f.buckets {
		if len(recs) == 0 {
			continue
		}
		rem := idx
		for i := len(f.depths) - 1; i >= 0; i-- {
			coords[i] = rem & (1<<f.depths[i] - 1)
			rem >>= f.depths[i]
		}
		fn(coords, recs)
	}
}

// Grow doubles field i's directory (d_i += 1) and redistributes records.
// Extendible-hashing style: each record moves to the cell revealed by one
// more bit of its field hash.
func (f *File) Grow(fieldIdx int) error {
	if fieldIdx < 0 || fieldIdx >= len(f.depths) {
		return fmt.Errorf("mkhash: grow of field %d, file has %d fields", fieldIdx, len(f.depths))
	}
	if f.depths[fieldIdx] >= 30 {
		return fmt.Errorf("mkhash: field %d already at maximum depth", fieldIdx)
	}
	old := f.buckets
	f.depths[fieldIdx]++
	f.buckets = make(map[int][]Record, len(old)*2)
	f.count = 0
	for _, recs := range old {
		for _, r := range recs {
			b, err := f.BucketOf(r)
			if err != nil {
				return err // unreachable: stored records always match arity
			}
			idx := f.linear(b)
			f.buckets[idx] = append(f.buckets[idx], r)
			f.count++
		}
	}
	return nil
}

// Occupancy returns the mean number of records per non-empty bucket and
// the largest bucket's size — the signals that trigger directory growth.
func (f *File) Occupancy() (mean float64, max int) {
	if len(f.buckets) == 0 {
		return 0, 0
	}
	for _, recs := range f.buckets {
		if len(recs) > max {
			max = len(recs)
		}
	}
	return float64(f.count) / float64(len(f.buckets)), max
}

// GrowAdvice returns the field whose directory doubling would split the
// stored records most evenly: for each field it counts how many records
// would move to the new upper half (their next hash bit is set) and
// scores the split by min(moved, stayed). A field whose values all share
// the next bit scores zero — growing it would double the directory
// without splitting anything. Ties go to the lowest field index; ok is
// false when the file is empty or no field can grow.
func (f *File) GrowAdvice() (fieldIdx int, ok bool) {
	if f.count == 0 {
		return 0, false
	}
	bestScore := -1
	for i, d := range f.depths {
		if d >= 30 {
			continue
		}
		moved := 0
		bit := uint64(1) << d
		f.EachBucket(func(_ []int, recs []Record) {
			for _, r := range recs {
				if f.hashes[i](r[i])&bit != 0 {
					moved++
				}
			}
		})
		stayed := f.count - moved
		score := moved
		if stayed < moved {
			score = stayed
		}
		if score > bestScore {
			bestScore = score
			fieldIdx = i
			ok = true
		}
	}
	return fieldIdx, ok
}

// PartialMatch describes a value-level partial match query: nil entries
// are unspecified fields.
type PartialMatch []*string

// Spec builds a value-level query: pairs of (field name, value). Fields
// not mentioned are unspecified.
func (f *File) Spec(pairs map[string]string) (PartialMatch, error) {
	pm := make(PartialMatch, len(f.depths))
	for name, value := range pairs {
		i, err := f.FieldIndex(name)
		if err != nil {
			return nil, err
		}
		v := value
		pm[i] = &v
	}
	return pm, nil
}

// BucketQuery lowers a value-level partial match to a bucket-level query
// by hashing the specified values.
func (f *File) BucketQuery(pm PartialMatch) (query.Query, error) {
	if len(pm) != len(f.depths) {
		return query.Query{}, fmt.Errorf("mkhash: query has %d fields, schema has %d", len(pm), len(f.depths))
	}
	spec := make([]int, len(pm))
	for i, v := range pm {
		if v == nil {
			spec[i] = query.Unspecified
		} else {
			spec[i] = f.hashValue(i, *v)
		}
	}
	return query.New(spec), nil
}

// matches reports whether the record's actual values satisfy the
// value-level query (needed because hashing collides: a qualified bucket
// can hold false positives).
func (pm PartialMatch) matches(r Record) bool {
	for i, v := range pm {
		if v != nil && r[i] != *v {
			return false
		}
	}
	return true
}

// Search answers a value-level partial match query against the file
// directly (single-device semantics): it visits only qualified buckets and
// filters false hash positives.
func (f *File) Search(pm PartialMatch) ([]Record, error) {
	q, err := f.BucketQuery(pm)
	if err != nil {
		return nil, err
	}
	fs, err := f.FileSystem(1)
	if err != nil {
		return nil, err
	}
	var out []Record
	q.EachQualified(fs, func(b []int) {
		for _, r := range f.buckets[f.linear(b)] {
			if pm.matches(r) {
				out = append(out, r)
			}
		}
	})
	return out, nil
}
