package mkhash

import "testing"

// FuzzInsertSearch: any inserted record must be found by its own
// exact-match query, and partial matches on each single field must
// include it.
func FuzzInsertSearch(f *testing.F) {
	f.Add("ford", "escort", "1988")
	f.Add("", "", "")
	f.Add("a\x00b", "unicode ✓", "\xff\xfe")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		file := MustNew(Schema{Fields: []string{"x", "y", "z"}, Depths: []int{2, 3, 1}})
		rec := Record{a, b, c}
		if err := file.Insert(rec); err != nil {
			t.Fatalf("insert: %v", err)
		}
		// Exact match.
		pm := PartialMatch{&a, &b, &c}
		got, err := file.Search(pm)
		if err != nil {
			t.Fatalf("search: %v", err)
		}
		if len(got) != 1 {
			t.Fatalf("exact search found %d records", len(got))
		}
		// Each single-field partial match.
		for i, v := range []string{a, b, c} {
			pm := make(PartialMatch, 3)
			val := v
			pm[i] = &val
			got, err := file.Search(pm)
			if err != nil {
				t.Fatalf("partial search: %v", err)
			}
			if len(got) != 1 {
				t.Fatalf("field %d partial match found %d records", i, len(got))
			}
		}
		// Delete removes it.
		n, err := file.Delete(rec)
		if err != nil || n != 1 {
			t.Fatalf("delete = %d, %v", n, err)
		}
		if file.Len() != 0 {
			t.Fatal("file not empty after delete")
		}
	})
}
