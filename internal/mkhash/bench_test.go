package mkhash

import (
	"fmt"
	"testing"
)

func benchFile(b *testing.B, n int) *File {
	b.Helper()
	f := MustNew(Schema{
		Fields: []string{"make", "model", "year"},
		Depths: []int{3, 5, 3},
	})
	for i := 0; i < n; i++ {
		if err := f.Insert(Record{
			fmt.Sprintf("make%d", i%20),
			fmt.Sprintf("model%d", i%300),
			fmt.Sprintf("%d", 1980+i%12),
		}); err != nil {
			b.Fatal(err)
		}
	}
	return f
}

func BenchmarkInsert(b *testing.B) {
	f := MustNew(Schema{Fields: []string{"a", "b"}, Depths: []int{4, 4}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Insert(Record{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchPartial(b *testing.B) {
	f := benchFile(b, 20000)
	pm, err := f.Spec(map[string]string{"make": "make7"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Search(pm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchExact(b *testing.B) {
	f := benchFile(b, 20000)
	pm, err := f.Spec(map[string]string{"make": "make7", "model": "model47", "year": "1987"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Search(pm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGrow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := benchFile(b, 5000)
		b.StartTimer()
		if err := f.Grow(1); err != nil {
			b.Fatal(err)
		}
	}
}
