package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// Hammer tests for the two bounded evidence buffers the telemetry plane
// leans on: the slow-query flight recorder and the tail-sampling trace
// retention ring. Run with -race in CI; beyond data races they assert
// the buffers' core invariants under contention — per-shape slot counts
// never exceeded, no always-keep trace lost while sample entries exist
// to evict, and memory bounded by the configured capacities.

// TestFlightRecorderHammer offers globally-unique latencies from many
// goroutines while readers snapshot and pre-check concurrently. Keeping
// the K slowest is order-independent for distinct keys, so the final
// retained set must be exactly the top K per shape no matter how the
// writes interleaved.
func TestFlightRecorderHammer(t *testing.T) {
	const (
		workers   = 8
		perWorker = 500
		slots     = 8
		shapes    = 3
	)
	f := NewFlightRecorder("hammer", slots)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shape := fmt.Sprintf("shape-%d", w%shapes)
			for i := 0; i < perWorker; i++ {
				// Unique per (worker, iteration): the top-K set is deterministic.
				elapsed := time.Duration(w*perWorker + i + 1)
				if f.Admits(shape, elapsed) {
					f.Note(FlightRecord{Shape: shape, Elapsed: elapsed})
				}
				if i%64 == 0 {
					f.Report()
					f.Admits(shape, time.Duration(i))
				}
			}
		}(w)
	}
	wg.Wait()

	// Expected top-K per shape: workers w with w%shapes == s each
	// contribute latencies (w*perWorker+1 .. (w+1)*perWorker), so the K
	// slowest come off the top of the highest such worker's range.
	rep := f.Report()
	if len(rep.Shapes) != shapes {
		t.Fatalf("got %d shapes, want %d", len(rep.Shapes), shapes)
	}
	for _, sf := range rep.Shapes {
		var s int
		fmt.Sscanf(sf.Shape, "shape-%d", &s)
		top := 0 // highest worker index with w%shapes == s
		for w := 0; w < workers; w++ {
			if w%shapes == s {
				top = w
			}
		}
		if len(sf.Records) != slots {
			t.Fatalf("%s: retained %d records, want %d", sf.Shape, len(sf.Records), slots)
		}
		for i, r := range sf.Records { // slowest first
			want := time.Duration((top+1)*perWorker - i)
			if r.Elapsed != want {
				t.Errorf("%s record %d: elapsed %d, want %d (lost or duplicated insert)", sf.Shape, i, r.Elapsed, want)
			}
		}
		// The floor hint must now reject anything at or below the fastest
		// retained record and admit anything above it.
		floor := sf.Records[len(sf.Records)-1].Elapsed
		if f.Admits(sf.Shape, floor) {
			t.Errorf("%s: Admits(%d) = true at the floor", sf.Shape, floor)
		}
		if !f.Admits(sf.Shape, floor+1) {
			t.Errorf("%s: Admits(%d) = false above the floor", sf.Shape, floor+1)
		}
	}

	// Reset racing against writers must still end empty once all writers
	// finish (Reset is last).
	var wg2 sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg2.Add(1)
		go func(w int) {
			defer wg2.Done()
			for i := 0; i < 100; i++ {
				f.Note(FlightRecord{Shape: "reset-race", Elapsed: time.Duration(i + 1)})
				if i%10 == 0 {
					f.Reset()
				}
			}
		}(w)
	}
	wg2.Wait()
	f.Reset()
	if rep := f.Report(); len(rep.Shapes) != 0 {
		t.Errorf("after Reset: %d shapes retained, want 0", len(rep.Shapes))
	}
}

// TestTraceRetentionHammer retains always-keep traces (error/bound) from
// many goroutines while a flood of sampled traffic churns the buffer.
// Fewer always-keep traces are offered than the buffer holds, so every
// successfully retained one must survive — the eviction policy may only
// displace uniform samples — and the buffer must never exceed capacity.
func TestTraceRetentionHammer(t *testing.T) {
	const (
		workers   = 8
		perWorker = 400
		capacity  = 128
		akPer     = 8 // always-keep per worker: 64 total, half the buffer
	)
	tr := NewTracer(4096)
	tr.SetRetention(capacity, 4)

	var mu sync.Mutex
	kept := make(map[uint64]string) // always-keep traces Retain acknowledged
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.Start("query")
				sp.Event("scan")
				sp.End()
				tid := sp.Trace()
				if i < akPer {
					reason := KeepError
					if i%2 == 0 {
						reason = KeepBound
					}
					if tr.Retain(tid, reason) {
						mu.Lock()
						kept[tid] = reason
						mu.Unlock()
					}
				} else {
					tr.MaybeSample(tid)
				}
				if i%50 == 0 {
					tr.Retained(10)
					tr.RetainedTrace(tid)
					if got := tr.Retained(capacity + 1); len(got) > capacity {
						t.Errorf("retained %d traces, capacity %d", len(got), capacity)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	all := tr.Retained(capacity * 2)
	if len(all) > capacity {
		t.Fatalf("retained %d traces, capacity %d", len(all), capacity)
	}
	for tid, reason := range kept {
		rt, ok := tr.RetainedTrace(tid)
		if !ok {
			t.Errorf("always-keep trace %d (%s) evicted while samples existed", tid, reason)
			continue
		}
		if rt.Reason != reason {
			t.Errorf("trace %d: reason %q, want %q", tid, rt.Reason, reason)
		}
		if rt.Root.TraceID != tid {
			t.Errorf("trace %d: root tree has trace id %d", tid, rt.Root.TraceID)
		}
	}

	// Shrinking retention under concurrent writers keeps the bound.
	var wg3 sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg3.Add(1)
		go func() {
			defer wg3.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Start("churn")
				sp.End()
				tr.Retain(sp.Trace(), KeepError)
			}
		}()
	}
	wg3.Add(1)
	go func() {
		defer wg3.Done()
		for c := capacity; c >= 8; c /= 2 {
			tr.SetRetention(c, 4)
		}
	}()
	wg3.Wait()
	if got := tr.Retained(capacity * 2); len(got) > 8 {
		t.Errorf("after shrink to 8: retained %d traces", len(got))
	}
}
