package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind identifies a metric family's type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one name=value metric dimension.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// entry is one labelled instrument inside a family.
type entry struct {
	labels  []Label
	key     string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	// gaugeFn, when set, is read instead of gauge at render time
	// (callback gauges such as fxdist_uptime_seconds).
	gaugeFn atomic.Pointer[func() float64]
}

// gaugeValue reads the entry's gauge, preferring a callback when one is
// registered.
func (e *entry) gaugeValue() float64 {
	if fn := e.gaugeFn.Load(); fn != nil {
		return (*fn)()
	}
	return e.gauge.Value()
}

// family groups every label combination of one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64 // histogram families only
	index  map[string]*entry
}

// Registry holds named metric families. Lookups (Counter, Gauge,
// Histogram) are idempotent: the same name+labels returns the same
// instrument, so independent subsystems can share accumulation points.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the instrumented packages
// register against.
func Default() *Registry { return defaultRegistry }

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(0xff)
		}
		b.WriteString(l.Key)
		b.WriteByte(0xfe)
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortLabels returns labels sorted by key (copied; inputs are small).
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func (r *Registry) entryFor(name, help string, kind Kind, bounds []float64, labels []Label) *entry {
	labels = sortLabels(labels)
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, index: make(map[string]*entry)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	e := f.index[key]
	if e == nil {
		e = &entry{labels: labels, key: key}
		switch kind {
		case KindCounter:
			e.counter = &Counter{}
		case KindGauge:
			e.gauge = &Gauge{}
		case KindHistogram:
			e.hist = newHistogram(f.bounds)
		}
		f.index[key] = e
	}
	return e
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.entryFor(name, help, KindCounter, nil, labels).counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.entryFor(name, help, KindGauge, nil, labels).gauge
}

// GaugeFunc registers a callback gauge: renders read fn() instead of a
// stored value. Re-registering the same name+labels replaces the
// callback. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.entryFor(name, help, KindGauge, nil, labels).gaugeFn.Store(&fn)
}

// Histogram returns the histogram for name+labels, creating it on first
// use. The family's bucket bounds are fixed by the first registration;
// pass nil to default to DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return r.entryFor(name, help, KindHistogram, bounds, labels).hist
}

// famView is a consistent copy of one family's structure (entry sets
// are copied under the registry lock; instrument values stay live).
type famView struct {
	name    string
	help    string
	kind    Kind
	entries []*entry
}

// sortedFamilies returns families sorted by name, each with entries
// sorted by label key — the deterministic render order. Entry slices
// are copied under the lock so renders are safe against concurrent
// registration.
func (r *Registry) sortedFamilies() []famView {
	r.mu.Lock()
	fams := make([]famView, 0, len(r.families))
	for _, f := range r.families {
		v := famView{name: f.name, help: f.help, kind: f.kind, entries: make([]*entry, 0, len(f.index))}
		for _, e := range f.index {
			v.entries = append(v.entries, e)
		}
		fams = append(fams, v)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		entries := f.entries
		sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	}
	return fams
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes HELP text per the exposition format: backslashes
// and newlines only (quotes are legal in help strings).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promLabels renders {k="v",...}; extra (e.g. le) is appended last.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error { return r.writeProm(w, false) }

// WritePrometheusExemplars renders the registry like WritePrometheus
// but appends OpenMetrics-style exemplars (` # {trace_id="…"} v ts`)
// to histogram bucket lines that have one. Served by /metrics under
// ?exemplars=1 — kept off the default path because strict 0.0.4
// parsers reject exemplar syntax.
func (r *Registry) WritePrometheusExemplars(w io.Writer) error { return r.writeProm(w, true) }

func (r *Registry) writeProm(w io.Writer, exemplars bool) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, e := range f.entries {
			var err error
			switch f.kind {
			case KindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(e.labels), e.counter.Value())
			case KindGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(e.labels), formatFloat(e.gaugeValue()))
			case KindHistogram:
				err = writePromHistogram(w, f.name, e, exemplars)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, e *entry, exemplars bool) error {
	s := e.hist.Snapshot()
	writeBucket := func(b int, le string, cum uint64) error {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d", name, promLabels(e.labels, L("le", le)), cum); err != nil {
			return err
		}
		if exemplars && s.Exemplars != nil && s.Exemplars[b] != nil {
			ex := s.Exemplars[b]
			if _, err := fmt.Fprintf(w, " # {trace_id=\"%d\"} %s %d", ex.TraceID, formatFloat(ex.Value), ex.Time.Unix()); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	var cum uint64
	for b, bound := range s.Bounds {
		cum += s.Counts[b]
		if err := writeBucket(b, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Bounds)]
	if err := writeBucket(len(s.Bounds), "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(e.labels), formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(e.labels), s.Count)
	return err
}

// JSON rendering (expvar-style: one top-level key per metric family).

type jsonBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

type jsonExemplar struct {
	LE      string  `json:"le"` // bucket bound, "+Inf" for the overflow bucket
	Value   float64 `json:"value"`
	TraceID uint64  `json:"trace_id"`
}

type jsonMetric struct {
	Labels    map[string]string `json:"labels,omitempty"`
	Value     *float64          `json:"value,omitempty"`
	Count     *uint64           `json:"count,omitempty"`
	Sum       *float64          `json:"sum,omitempty"`
	P50       *float64          `json:"p50,omitempty"`
	P99       *float64          `json:"p99,omitempty"`
	Buckets   []jsonBucket      `json:"buckets,omitempty"`
	Exemplars []jsonExemplar    `json:"exemplars,omitempty"`
}

type jsonFamily struct {
	Kind    string       `json:"kind"`
	Help    string       `json:"help,omitempty"`
	Metrics []jsonMetric `json:"metrics"`
}

// WriteJSON renders the registry as a JSON object keyed by metric name
// (served on /debug/vars).
func (r *Registry) WriteJSON(w io.Writer) error {
	top := make(map[string]jsonFamily)
	for _, f := range r.sortedFamilies() {
		jf := jsonFamily{Kind: f.kind.String(), Help: f.help}
		for _, e := range f.entries {
			m := jsonMetric{}
			if len(e.labels) > 0 {
				m.Labels = make(map[string]string, len(e.labels))
				for _, l := range e.labels {
					m.Labels[l.Key] = l.Value
				}
			}
			switch f.kind {
			case KindCounter:
				v := float64(e.counter.Value())
				m.Value = &v
			case KindGauge:
				v := e.gaugeValue()
				m.Value = &v
			case KindHistogram:
				s := e.hist.Snapshot()
				count, sum := s.Count, s.Sum
				p50, p99 := s.Quantile(0.5), s.Quantile(0.99)
				m.Count, m.Sum, m.P50, m.P99 = &count, &sum, &p50, &p99
				var cum uint64
				for b, bound := range s.Bounds {
					cum += s.Counts[b]
					m.Buckets = append(m.Buckets, jsonBucket{LE: bound, Count: cum})
				}
				if s.Exemplars != nil {
					for b, ex := range s.Exemplars {
						if ex == nil {
							continue
						}
						le := "+Inf"
						if b < len(s.Bounds) {
							le = formatFloat(s.Bounds[b])
						}
						m.Exemplars = append(m.Exemplars, jsonExemplar{LE: le, Value: ex.Value, TraceID: ex.TraceID})
					}
				}
			}
			jf.Metrics = append(jf.Metrics, m)
		}
		top[f.name] = jf
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(top)
}

// Point is one metric sample in a programmatic snapshot.
type Point struct {
	Name   string
	Kind   Kind
	Labels []Label
	// Value carries counter (as float64) and gauge readings.
	Value float64
	// Histogram is set for histogram points.
	Histogram *HistogramSnapshot
}

// Snapshot returns every registered metric's current value, sorted by
// name then label key.
func (r *Registry) Snapshot() []Point {
	var out []Point
	for _, f := range r.sortedFamilies() {
		for _, e := range f.entries {
			p := Point{Name: f.name, Kind: f.kind, Labels: append([]Label(nil), e.labels...)}
			switch f.kind {
			case KindCounter:
				p.Value = float64(e.counter.Value())
			case KindGauge:
				p.Value = e.gaugeValue()
			case KindHistogram:
				s := e.hist.Snapshot()
				p.Histogram = &s
			}
			out = append(out, p)
		}
	}
	return out
}
