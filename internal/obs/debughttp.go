package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// DebugEndpoint is the shared shape of every /debug/* document
// endpoint: doc builds the snapshot, text renders it human-readably.
// All endpoints accept ?format=json (default) or ?format=text, send a
// consistent Content-Type with charset, and — because the document is
// marshalled to a buffer before any byte reaches the client — return
// 500 instead of a truncated 200 when building or marshalling fails.
func DebugEndpoint(doc func() (any, error), text func(io.Writer, any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		format := r.URL.Query().Get("format")
		switch format {
		case "", "json", "text":
		default:
			http.Error(w, fmt.Sprintf("unknown format %q (want json or text)", format), http.StatusBadRequest)
			return
		}
		if format == "text" && text == nil {
			http.Error(w, "text format not supported on this endpoint", http.StatusBadRequest)
			return
		}
		d, err := doc()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		var buf bytes.Buffer
		if format == "text" {
			text(&buf, d)
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		} else {
			enc := json.NewEncoder(&buf)
			enc.SetIndent("", "  ")
			if err := enc.Encode(d); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
		}
		w.Write(buf.Bytes()) //nolint:errcheck // client gone
	})
}
