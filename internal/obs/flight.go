package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Slow-query flight recorder: a fixed-size ring of the K worst queries
// per (backend, shape), each retaining the full evidence needed to
// diagnose it after the fact — stage breakdown, span events
// (retry/hedge/breaker decisions land there), plan-cache hit/miss, and
// per-device bucket counts against the paper's strict bound
// ceil(|R(q)|/M). Served on /debug/flight and dumpable via
// pmquery -flight.

// DefaultFlightSlots is how many worst queries each shape retains.
const DefaultFlightSlots = 8

// FlightDevice is one device's share of a recorded query.
type FlightDevice struct {
	Device  int           `json:"device"`
	Buckets int           `json:"buckets"`
	Scan    time.Duration `json:"scan_ns"`
	Err     string        `json:"err,omitempty"`
}

// FlightRecord is one retained slow query.
type FlightRecord struct {
	Backend string    `json:"backend"`
	Shape   string    `json:"shape"`
	TraceID uint64    `json:"trace_id,omitempty"`
	Start   time.Time `json:"start"`
	// Elapsed is the whole-query latency (the ranking key).
	Elapsed time.Duration `json:"elapsed_ns"`
	// PlanCacheHit reports whether the plan came from the cache.
	PlanCacheHit bool `json:"plan_cache_hit"`
	// RQ is |R(q)| (total buckets touched); Bound is ceil(|R(q)|/M).
	RQ    int `json:"rq"`
	Bound int `json:"bound"`
	// Stages is the query's stage breakdown.
	Stages []StageSample `json:"stages,omitempty"`
	// Devices details each device's bucket count vs the bound and scan
	// duration — the slowest entry is the query's critical path.
	Devices []FlightDevice `json:"devices,omitempty"`
	// Events is the root span's annotation log (cache hit/miss, retry,
	// hedge and breaker decisions, degraded merges).
	Events []SpanEvent `json:"events,omitempty"`
	Err    string      `json:"err,omitempty"`
}

// flightShape is one shape's ring, sorted ascending by Elapsed so the
// eviction candidate is always index 0.
type flightShape struct {
	records []FlightRecord
}

// FlightRecorder retains the K slowest queries per shape for one
// backend. All methods are safe for concurrent use and no-op on nil.
type FlightRecorder struct {
	backend string
	slots   int

	mu     sync.Mutex
	shapes map[string]*flightShape
	// floors caches, per shape, the Elapsed a query must beat to enter
	// that shape's full ring (shape → *atomic.Int64). It is only a
	// fast-path hint; Note re-checks under the lock.
	floors sync.Map
}

// NewFlightRecorder returns a recorder keeping slots records per shape
// (DefaultFlightSlots when slots <= 0).
func NewFlightRecorder(backend string, slots int) *FlightRecorder {
	if slots <= 0 {
		slots = DefaultFlightSlots
	}
	return &FlightRecorder{backend: backend, slots: slots, shapes: make(map[string]*flightShape)}
}

// Admits reports whether a query of the given latency could enter the
// shape's ring — a cheap, lock-free pre-check so the fast path skips
// building FlightRecords that would be discarded. A true result is
// advisory; Note re-checks under the lock.
func (f *FlightRecorder) Admits(shape string, elapsed time.Duration) bool {
	if f == nil {
		return false
	}
	v, ok := f.floors.Load(shape)
	if !ok {
		return true // shape not seen yet (or ring not full): admit
	}
	return int64(elapsed) > v.(*atomic.Int64).Load()
}

// Note offers a record; it is kept iff it ranks among the shape's K
// slowest.
func (f *FlightRecorder) Note(rec FlightRecord) {
	if f == nil {
		return
	}
	rec.Backend = f.backend
	f.mu.Lock()
	fs := f.shapes[rec.Shape]
	if fs == nil {
		fs = &flightShape{}
		f.shapes[rec.Shape] = fs
	}
	if len(fs.records) >= f.slots {
		if rec.Elapsed <= fs.records[0].Elapsed {
			f.mu.Unlock()
			return
		}
		fs.records = fs.records[1:]
	}
	// Insert keeping ascending Elapsed order.
	i := sort.Search(len(fs.records), func(i int) bool { return fs.records[i].Elapsed > rec.Elapsed })
	fs.records = append(fs.records, FlightRecord{})
	copy(fs.records[i+1:], fs.records[i:])
	fs.records[i] = rec
	// Once the ring is full, a query must beat its fastest retained
	// record; until then the shape admits everything (floor 0).
	var floor int64
	if len(fs.records) >= f.slots {
		floor = int64(fs.records[0].Elapsed)
	}
	v, _ := f.floors.LoadOrStore(rec.Shape, new(atomic.Int64))
	v.(*atomic.Int64).Store(floor)
	f.mu.Unlock()
}

// Reset discards all retained records.
func (f *FlightRecorder) Reset() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.shapes = make(map[string]*flightShape)
	f.floors.Range(func(k, _ any) bool { f.floors.Delete(k); return true })
	f.mu.Unlock()
}

// ShapeFlights is one shape's retained records, slowest first.
type ShapeFlights struct {
	Shape   string         `json:"shape"`
	Records []FlightRecord `json:"records"`
}

// BackendFlights is every shape one backend has recorded.
type BackendFlights struct {
	Backend string         `json:"backend"`
	Shapes  []ShapeFlights `json:"shapes"`
}

// Report snapshots the recorder: shapes sorted by name, records slowest
// first.
func (f *FlightRecorder) Report() BackendFlights {
	if f == nil {
		return BackendFlights{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := BackendFlights{Backend: f.backend}
	for shape, fs := range f.shapes {
		row := ShapeFlights{Shape: shape, Records: make([]FlightRecord, 0, len(fs.records))}
		for i := len(fs.records) - 1; i >= 0; i-- { // ascending ring → slowest first
			row.Records = append(row.Records, fs.records[i])
		}
		out.Shapes = append(out.Shapes, row)
	}
	sort.Slice(out.Shapes, func(i, j int) bool { return out.Shapes[i].Shape < out.Shapes[j].Shape })
	return out
}

// Process-wide recorder registry, one per backend.
var (
	flightMu        sync.Mutex
	flightRecorders = make(map[string]*FlightRecorder)
)

// FlightRecorderFor returns the process-wide flight recorder for
// backend, creating it (with DefaultFlightSlots) on first use.
func FlightRecorderFor(backend string) *FlightRecorder {
	flightMu.Lock()
	defer flightMu.Unlock()
	f := flightRecorders[backend]
	if f == nil {
		f = NewFlightRecorder(backend, DefaultFlightSlots)
		flightRecorders[backend] = f
	}
	return f
}

// FlightReport snapshots every backend's flight recorder, sorted by
// backend; backends with no records are omitted.
func FlightReport() []BackendFlights {
	flightMu.Lock()
	recs := make([]*FlightRecorder, 0, len(flightRecorders))
	for _, f := range flightRecorders {
		recs = append(recs, f)
	}
	flightMu.Unlock()
	var out []BackendFlights
	for _, f := range recs {
		r := f.Report()
		if len(r.Shapes) > 0 {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Backend < out[j].Backend })
	return out
}

// ResetFlightRecorders clears every backend's retained records.
func ResetFlightRecorders() {
	flightMu.Lock()
	recs := make([]*FlightRecorder, 0, len(flightRecorders))
	for _, f := range flightRecorders {
		recs = append(recs, f)
	}
	flightMu.Unlock()
	for _, f := range recs {
		f.Reset()
	}
}

func init() {
	RegisterDebugHandler("/debug/flight", "slow-query flight recorder: K worst queries per (backend,shape) with full evidence", DebugEndpoint(
		func() (any, error) { return FlightReport(), nil },
		func(w io.Writer, doc any) { WriteFlightReport(w, doc.([]BackendFlights)) },
	))
}

// WriteFlightReport renders a flight report as text, one block per
// record, slowest first.
func WriteFlightReport(w io.Writer, report []BackendFlights) {
	if len(report) == 0 {
		fmt.Fprintln(w, "no flights recorded")
		return
	}
	for _, b := range report {
		for _, s := range b.Shapes {
			for _, r := range s.Records {
				hit := "miss"
				if r.PlanCacheHit {
					hit = "hit"
				}
				fmt.Fprintf(w, "%s/%s elapsed=%v trace=%d plan-cache=%s |R(q)|=%d bound=%d\n",
					b.Backend, s.Shape, r.Elapsed, r.TraceID, hit, r.RQ, r.Bound)
				for _, st := range r.Stages {
					fmt.Fprintf(w, "  stage %-14s %12v bytes=%d objs=%d\n", st.Stage, st.Wall, st.Bytes, st.Objects)
				}
				for _, d := range r.Devices {
					over := ""
					if r.Bound > 0 && d.Buckets > r.Bound {
						over = fmt.Sprintf("  OVER BOUND +%d", d.Buckets-r.Bound)
					}
					errs := ""
					if d.Err != "" {
						errs = "  err=" + d.Err
					}
					fmt.Fprintf(w, "  device %-3d buckets=%-4d scan=%v%s%s\n", d.Device, d.Buckets, d.Scan, over, errs)
				}
				for _, e := range r.Events {
					fmt.Fprintf(w, "  event +%v %s\n", e.At, e.Msg)
				}
				if r.Err != "" {
					fmt.Fprintf(w, "  err: %s\n", r.Err)
				}
			}
		}
	}
}
