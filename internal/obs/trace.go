package obs

import (
	"sync"
	"time"
)

// Tracer keeps a bounded ring of recent query spans. A span is created
// when the coordinator (or a device server) starts work on a query and
// carries timestamped events; spans on both sides share the pipelined
// wire request ID, so a coordinator trace correlates with the matching
// server traces.
type Tracer struct {
	mu   sync.Mutex
	cap  int
	ring []*Span // oldest-first once full; insertion point is next
	next int
	full bool
	seq  uint64
}

// NewTracer returns a tracer retaining the last capacity spans.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{cap: capacity, ring: make([]*Span, capacity)}
}

var defaultTracer = NewTracer(256)

// DefaultTracer returns the process-wide tracer the instrumented
// packages record against.
func DefaultTracer() *Tracer { return defaultTracer }

// Start opens a span and records it in the ring (in-flight spans are
// visible in Recent, marked not Done). Safe on a nil tracer, which
// returns a nil span whose methods no-op.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.seq++
	s := &Span{ID: t.seq, Name: name, start: time.Now()}
	t.ring[t.next] = s
	t.next++
	if t.next == t.cap {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
	return s
}

// Recent returns up to n span snapshots, most recent first.
func (t *Tracer) Recent(n int) []SpanSnapshot {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	var spans []*Span
	for i := t.next - 1; i >= 0; i-- {
		spans = append(spans, t.ring[i])
	}
	if t.full {
		for i := t.cap - 1; i >= t.next; i-- {
			spans = append(spans, t.ring[i])
		}
	}
	t.mu.Unlock()
	if len(spans) > n {
		spans = spans[:n]
	}
	out := make([]SpanSnapshot, 0, len(spans))
	for _, s := range spans {
		if s != nil {
			out = append(out, s.snapshot())
		}
	}
	return out
}

// SpanEvent is one timestamped annotation inside a span.
type SpanEvent struct {
	// At is the offset from the span's start.
	At  time.Duration `json:"at_ns"`
	Msg string        `json:"msg"`
}

// Span is one in-progress or completed traced operation. All methods
// are safe for concurrent use and no-op on a nil span.
type Span struct {
	ID   uint64
	Name string

	start time.Time

	mu        sync.Mutex
	requestID uint64
	events    []SpanEvent
	duration  time.Duration
	done      bool
}

// SetRequestID attaches the pipelined wire request ID, correlating this
// span with its peer on the other side of the connection.
func (s *Span) SetRequestID(id uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.requestID = id
	s.mu.Unlock()
}

// Event records a timestamped annotation.
func (s *Span) Event(msg string) {
	if s == nil {
		return
	}
	at := time.Since(s.start)
	s.mu.Lock()
	s.events = append(s.events, SpanEvent{At: at, Msg: msg})
	s.mu.Unlock()
}

// End closes the span, fixing its duration. Repeated End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if !s.done {
		s.done = true
		s.duration = d
	}
	s.mu.Unlock()
}

func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.duration
	if !s.done {
		d = time.Since(s.start)
	}
	return SpanSnapshot{
		ID:        s.ID,
		RequestID: s.requestID,
		Name:      s.Name,
		Start:     s.start,
		Duration:  d,
		Done:      s.done,
		Events:    append([]SpanEvent(nil), s.events...),
	}
}

// SpanSnapshot is a point-in-time copy of a span, safe to retain.
type SpanSnapshot struct {
	ID        uint64      `json:"id"`
	RequestID uint64      `json:"request_id,omitempty"`
	Name      string      `json:"name"`
	Start     time.Time   `json:"start"`
	Duration  time.Duration `json:"duration_ns"`
	Done      bool        `json:"done"`
	Events    []SpanEvent `json:"events,omitempty"`
}
