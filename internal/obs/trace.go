package obs

import (
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// Tracer keeps a bounded ring of recent query spans. A span is created
// when the coordinator (or a device server) starts work on a query and
// carries timestamped events; spans on both sides share the pipelined
// wire request ID, so a coordinator trace correlates with the matching
// server traces. Spans additionally carry a trace ID and a parent span
// ID: the coordinator's retrieval span is the root of a trace, and the
// device-server spans it fans out to are its children — the netdist
// protocol propagates both IDs on the wire, so one query stitches into
// a single parent→child tree even across processes (see Trees).
type Tracer struct {
	mu   sync.Mutex
	cap  int
	ring []*Span // oldest-first once full; insertion point is next
	next int
	full bool
	seq  uint64

	// Tail-based retention: the ring above is only a staging window —
	// whether a trace outlives it is decided at query end (error, SLO
	// miss, bound violation → always keep; otherwise a uniform 1-in-N
	// sample). Kept trees are immutable snapshots, so a retained trace
	// stays recoverable by its exemplar trace ID long after its spans
	// were evicted from the ring.
	retainMu    sync.Mutex
	retainCap   int
	retained    []RetainedTrace // insertion order (oldest first)
	sampleEvery uint64
	sampleSeq   uint64
}

// Keep reasons recorded on retained traces.
const (
	KeepError  = "error"  // the query failed (or returned partial results)
	KeepSlow   = "slow"   // latency exceeded the shape's SLO target
	KeepBound  = "bound"  // a device exceeded the strict bound ceil(|R(q)|/M)
	KeepSample = "sample" // uniform 1-in-N sample of unremarkable traffic
)

// RetainedTrace is one trace tree kept by the tail-sampling decision.
type RetainedTrace struct {
	TraceID uint64    `json:"trace_id"`
	Reason  string    `json:"reason"`
	At      time.Time `json:"at"`
	Root    SpanTree  `json:"root"`
}

// DefaultRetainedTraces and DefaultSampleEvery size the retention
// buffer: up to 64 kept trees, 1-in-16 uniform sampling of queries that
// trip no always-keep rule.
const (
	DefaultRetainedTraces = 64
	DefaultSampleEvery    = 16
)

// NewTracer returns a tracer retaining the last capacity spans. Span
// ids count up from 1 — deterministic, which tests rely on; the
// process-wide DefaultTracer instead starts from a random epoch so ids
// crossing the wire don't collide between processes.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		cap:         capacity,
		ring:        make([]*Span, capacity),
		retainCap:   DefaultRetainedTraces,
		sampleEvery: DefaultSampleEvery,
	}
}

// newProcessTracer seeds the span-id sequence with a per-process random
// epoch. Device servers receive coordinator span ids off the wire;
// with every process counting from 1, a server's own span id would
// collide with the coordinator's parent id and Trees would stitch
// foreign spans into the wrong tree (or cycle a span onto itself).
func newProcessTracer(capacity int) *Tracer {
	t := NewTracer(capacity)
	t.seq = rand.Uint64() >> 1 // keep 2^63 ids of monotonic headroom
	return t
}

var defaultTracer = newProcessTracer(256)

// DefaultTracer returns the process-wide tracer the instrumented
// packages record against.
func DefaultTracer() *Tracer { return defaultTracer }

// Start opens a root span and records it in the ring (in-flight spans
// are visible in Recent, marked not Done). A root span's trace ID is
// its own span ID. Safe on a nil tracer, which returns a nil span whose
// methods no-op.
func (t *Tracer) Start(name string) *Span { return t.StartChild(name, 0, 0) }

// StartChild opens a span inside an existing trace: traceID is the
// root's trace ID and parent the span ID of the caller's span — both
// may come off the wire from another process. traceID 0 starts a new
// root (the span's own ID becomes the trace ID). Safe on a nil tracer.
func (t *Tracer) StartChild(name string, traceID, parent uint64) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.seq++
	if traceID == 0 {
		traceID = t.seq
		parent = 0
	}
	s := &Span{ID: t.seq, Name: name, traceID: traceID, parent: parent, start: time.Now()}
	t.ring[t.next] = s
	t.next++
	if t.next == t.cap {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
	return s
}

// Recent returns up to n span snapshots, most recent first.
func (t *Tracer) Recent(n int) []SpanSnapshot {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	var spans []*Span
	for i := t.next - 1; i >= 0; i-- {
		spans = append(spans, t.ring[i])
	}
	if t.full {
		for i := t.cap - 1; i >= t.next; i-- {
			spans = append(spans, t.ring[i])
		}
	}
	t.mu.Unlock()
	if len(spans) > n {
		spans = spans[:n]
	}
	out := make([]SpanSnapshot, 0, len(spans))
	for _, s := range spans {
		if s != nil {
			out = append(out, s.snapshot())
		}
	}
	return out
}

// SpanTree is one span and the spans that ran under it — a stitched
// view of a whole query: coordinator root, one child per device server.
type SpanTree struct {
	SpanSnapshot
	Children []SpanTree `json:"children,omitempty"`
}

// Trees groups up to n recent spans into parent→child trees, most
// recent root first. A span whose parent is absent from the window
// (evicted from the ring, or rooted in another process's tracer) is
// promoted to a root so no span is dropped.
func (t *Tracer) Trees(n int) []SpanTree {
	return stitchTrees(t.Recent(n))
}

// stitchTrees groups span snapshots into parent→child trees (see Trees
// for the attach rule).
func stitchTrees(snaps []SpanSnapshot) []SpanTree {
	if len(snaps) == 0 {
		return nil
	}
	present := make(map[uint64]uint64, len(snaps)) // span id → trace id
	for _, s := range snaps {
		present[s.ID] = s.TraceID
	}
	children := make(map[uint64][]SpanSnapshot)
	var roots []SpanSnapshot
	for _, s := range snaps {
		// Attach only under a local parent in the same trace; a parent id
		// minted by another process can collide with a local span id, and
		// a span must never parent itself.
		ptrace, ok := present[s.Parent]
		if s.Parent != 0 && s.Parent != s.ID && ok && ptrace == s.TraceID {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var build func(s SpanSnapshot) SpanTree
	build = func(s SpanSnapshot) SpanTree {
		tree := SpanTree{SpanSnapshot: s}
		kids := children[s.ID]
		sort.Slice(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
		for _, k := range kids {
			tree.Children = append(tree.Children, build(k))
		}
		return tree
	}
	out := make([]SpanTree, 0, len(roots))
	for _, r := range roots {
		out = append(out, build(r))
	}
	return out
}

// SetRetention reconfigures the tail-sampling buffer: capacity bounds
// how many trees are kept, sampleEvery sets the uniform keep rate for
// unremarkable queries (1 in sampleEvery; 0 disables sampling). Kept
// trees beyond the new capacity are dropped oldest-first.
func (t *Tracer) SetRetention(capacity, sampleEvery int) {
	if t == nil {
		return
	}
	if capacity < 1 {
		capacity = 1
	}
	if sampleEvery < 0 {
		sampleEvery = 0
	}
	t.retainMu.Lock()
	t.retainCap = capacity
	t.sampleEvery = uint64(sampleEvery)
	if over := len(t.retained) - capacity; over > 0 {
		t.retained = append(t.retained[:0], t.retained[over:]...)
	}
	t.retainMu.Unlock()
}

// Retain snapshots every span of traceID still in the ring, stitches
// them into a tree, and keeps it with the given reason. When the buffer
// is full, the oldest uniform-sample entry is evicted first — an
// always-keep tree (error/slow/bound) is only displaced by newer
// always-keep trees, so memory stays bounded without losing the
// interesting tail. Returns false when no span of the trace remains.
func (t *Tracer) Retain(traceID uint64, reason string) bool {
	if t == nil || traceID == 0 {
		return false
	}
	snaps := t.Recent(t.cap)
	var mine []SpanSnapshot
	for _, s := range snaps {
		if s.TraceID == traceID {
			mine = append(mine, s)
		}
	}
	if len(mine) == 0 {
		return false
	}
	trees := stitchTrees(mine)
	root := trees[0]
	for _, tr := range trees {
		if tr.ID == traceID { // prefer the true root (its ID is the trace ID)
			root = tr
			break
		}
	}
	rec := RetainedTrace{TraceID: traceID, Reason: reason, At: time.Now(), Root: root}
	t.retainMu.Lock()
	// Replace an existing entry for the same trace (e.g. sampled first,
	// then retained again with an always-keep reason).
	for i := range t.retained {
		if t.retained[i].TraceID == traceID {
			if t.retained[i].Reason != KeepSample && reason == KeepSample {
				rec.Reason = t.retained[i].Reason
			}
			t.retained[i] = rec
			t.retainMu.Unlock()
			return true
		}
	}
	if len(t.retained) >= t.retainCap {
		evict := -1
		for i := range t.retained {
			if t.retained[i].Reason == KeepSample {
				evict = i
				break
			}
		}
		if evict < 0 {
			evict = 0 // all always-keep: drop the oldest to stay bounded
		}
		t.retained = append(t.retained[:evict], t.retained[evict+1:]...)
	}
	t.retained = append(t.retained, rec)
	t.retainMu.Unlock()
	return true
}

// MaybeSample applies the uniform 1-in-N tail-sampling policy to a
// query that tripped no always-keep rule, retaining its tree when the
// counter lands on a sampling point.
func (t *Tracer) MaybeSample(traceID uint64) bool {
	if t == nil || traceID == 0 {
		return false
	}
	t.retainMu.Lock()
	every := t.sampleEvery
	t.sampleSeq++
	hit := every > 0 && t.sampleSeq%every == 0
	t.retainMu.Unlock()
	if !hit {
		return false
	}
	return t.Retain(traceID, KeepSample)
}

// Retained returns up to n kept trace trees, most recent first.
func (t *Tracer) Retained(n int) []RetainedTrace {
	if t == nil || n <= 0 {
		return nil
	}
	t.retainMu.Lock()
	defer t.retainMu.Unlock()
	if n > len(t.retained) {
		n = len(t.retained)
	}
	out := make([]RetainedTrace, 0, n)
	for i := len(t.retained) - 1; i >= len(t.retained)-n; i-- {
		out = append(out, t.retained[i])
	}
	return out
}

// RetainedTrace looks up a kept tree by trace ID — the path an operator
// follows from a histogram exemplar back to the query's full tree.
func (t *Tracer) RetainedTrace(traceID uint64) (RetainedTrace, bool) {
	if t == nil {
		return RetainedTrace{}, false
	}
	t.retainMu.Lock()
	defer t.retainMu.Unlock()
	for i := len(t.retained) - 1; i >= 0; i-- {
		if t.retained[i].TraceID == traceID {
			return t.retained[i], true
		}
	}
	return RetainedTrace{}, false
}

// SpanEvent is one timestamped annotation inside a span.
type SpanEvent struct {
	// At is the offset from the span's start.
	At  time.Duration `json:"at_ns"`
	Msg string        `json:"msg"`
}

// Span is one in-progress or completed traced operation. All methods
// are safe for concurrent use and no-op on a nil span.
type Span struct {
	ID   uint64
	Name string

	traceID uint64
	parent  uint64
	start   time.Time

	mu        sync.Mutex
	requestID uint64
	events    []SpanEvent
	duration  time.Duration
	done      bool
}

// SpanID returns the span's own ID, 0 on a nil span.
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.ID
}

// Trace returns the ID of the trace this span belongs to (its own ID
// for roots), 0 on a nil span.
func (s *Span) Trace() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

// ParentID returns the span ID of this span's parent, 0 for roots.
func (s *Span) ParentID() uint64 {
	if s == nil {
		return 0
	}
	return s.parent
}

// SetRequestID attaches the pipelined wire request ID, correlating this
// span with its peer on the other side of the connection.
func (s *Span) SetRequestID(id uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.requestID = id
	s.mu.Unlock()
}

// Event records a timestamped annotation.
func (s *Span) Event(msg string) {
	if s == nil {
		return
	}
	at := time.Since(s.start)
	s.mu.Lock()
	s.events = append(s.events, SpanEvent{At: at, Msg: msg})
	s.mu.Unlock()
}

// End closes the span, fixing its duration. Repeated End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if !s.done {
		s.done = true
		s.duration = d
	}
	s.mu.Unlock()
}

// Snapshot returns a point-in-time copy of the span (zero value on a
// nil span) — used by the flight recorder to retain a slow query's
// event log after the span itself is evicted from the ring.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	return s.snapshot()
}

func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.duration
	if !s.done {
		d = time.Since(s.start)
	}
	return SpanSnapshot{
		ID:        s.ID,
		TraceID:   s.traceID,
		Parent:    s.parent,
		RequestID: s.requestID,
		Name:      s.Name,
		Start:     s.start,
		Duration:  d,
		Done:      s.done,
		Events:    append([]SpanEvent(nil), s.events...),
	}
}

// SpanSnapshot is a point-in-time copy of a span, safe to retain.
type SpanSnapshot struct {
	ID        uint64        `json:"id"`
	TraceID   uint64        `json:"trace_id"`
	Parent    uint64        `json:"parent_id,omitempty"`
	RequestID uint64        `json:"request_id,omitempty"`
	Name      string        `json:"name"`
	Start     time.Time     `json:"start"`
	Duration  time.Duration `json:"duration_ns"`
	Done      bool          `json:"done"`
	Events    []SpanEvent   `json:"events,omitempty"`
}
