package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// Build identity metrics: fxdist_build_info carries the module version
// and Go toolchain as labels (constant 1, the Prometheus idiom), and
// fxdist_uptime_seconds counts up from process start — together they
// make federated node rows identifiable and let fxtop spot restarts.

var processStart = time.Now()

// BuildVersion returns the main module's version as recorded by the Go
// toolchain ("(devel)" for source builds).
func BuildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "(devel)"
}

// Uptime returns the time since process start.
func Uptime() time.Duration { return time.Since(processStart) }

// RegisterBuildInfo installs fxdist_build_info and
// fxdist_uptime_seconds into r. The default registry gets them at init;
// per-node registries (netdist server isolation in tests) call this
// explicitly.
func RegisterBuildInfo(r *Registry) {
	r.Gauge("fxdist_build_info",
		"Build identity; constant 1 with version and goversion labels.",
		L("version", BuildVersion()), L("goversion", runtime.Version()),
	).Set(1)
	r.GaugeFunc("fxdist_uptime_seconds",
		"Seconds since process start.",
		func() float64 { return Uptime().Seconds() },
	)
}

func init() { RegisterBuildInfo(Default()) }
