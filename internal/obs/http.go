package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
)

// Debug handler registry: packages that layer on obs (e.g. the
// optimality auditor) mount their own endpoints on every Handler
// without obs importing them.
var (
	debugMu       sync.Mutex
	debugHandlers = make(map[string]registeredDebugHandler)
)

type registeredDebugHandler struct {
	desc string
	h    http.Handler
}

// RegisterDebugHandler mounts h at path (e.g. "/debug/optimality") on
// every handler built by Handler/HandlerFor, with a one-line
// description shown on the /debug/ index. Registering the same path
// again replaces the handler. Typically called from an init function.
func RegisterDebugHandler(path, desc string, h http.Handler) {
	debugMu.Lock()
	debugHandlers[path] = registeredDebugHandler{desc: desc, h: h}
	debugMu.Unlock()
}

// EndpointInfo describes one debug endpoint on the /debug/ index.
type EndpointInfo struct {
	Path string `json:"path"`
	Desc string `json:"desc"`
}

// builtinEndpoints are the surfaces HandlerFor mounts itself.
var builtinEndpoints = []EndpointInfo{
	{Path: "/metrics", Desc: "Prometheus text exposition of every metric (?exemplars=1 appends trace-linked exemplars)"},
	{Path: "/debug/", Desc: "this index: every debug endpoint with a one-line description"},
	{Path: "/debug/vars", Desc: "expvar-style JSON of every metric, with histogram quantiles and exemplars"},
	{Path: "/debug/traces", Desc: "recent query spans (?n=K; ?tree=1 stitches parent→child; ?retained=1 lists tail-sampled kept trees)"},
	{Path: "/debug/pprof/", Desc: "net/http/pprof runtime profiles (cpu, heap, goroutine, ...)"},
}

// DebugEndpoints lists every debug endpoint a Handler would serve —
// built-ins plus everything registered — sorted by path. fxnode logs
// this set at startup.
func DebugEndpoints() []EndpointInfo {
	out := append([]EndpointInfo(nil), builtinEndpoints...)
	debugMu.Lock()
	for path, reg := range debugHandlers {
		out = append(out, EndpointInfo{Path: path, Desc: reg.desc})
	}
	debugMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Handler serves the default registry and tracer:
//
//	/metrics            Prometheus text exposition (?exemplars=1)
//	/debug/             index of every debug endpoint
//	/debug/vars         expvar-style JSON of every metric
//	/debug/traces       recent query spans as JSON (?n=K, default 32;
//	                    ?tree=1 stitches parent→child span trees;
//	                    ?retained=1 lists tail-sampled kept trees)
//	/debug/pprof/       net/http/pprof runtime profiles
//
// plus every endpoint mounted via RegisterDebugHandler (the optimality
// auditor's /debug/optimality, the telemetry plane's /debug/events and
// /debug/cluster, ... — see /debug/ for the full list).
func Handler() http.Handler { return HandlerFor(Default(), DefaultTracer()) }

// HandlerFor builds the observability handler for a specific registry
// and tracer (either may be nil to omit that surface).
func HandlerFor(r *Registry, t *Tracer) http.Handler {
	mux := http.NewServeMux()
	if r != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if req.URL.Query().Get("exemplars") == "1" {
				r.WritePrometheusExemplars(w) //nolint:errcheck // client gone
				return
			}
			r.WritePrometheus(w) //nolint:errcheck // client gone
		})
		mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
			var buf bytes.Buffer
			if err := r.WriteJSON(&buf); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Write(buf.Bytes()) //nolint:errcheck // client gone
		})
	}
	if t != nil {
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
			n := 32
			if q := req.URL.Query().Get("n"); q != "" {
				if v, err := parsePositive(q); err == nil {
					n = v
				}
			}
			var doc any
			switch {
			case req.URL.Query().Get("retained") == "1":
				doc = t.Retained(n)
			case req.URL.Query().Get("tree") == "1":
				doc = t.Trees(n)
			default:
				doc = t.Recent(n)
			}
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Write(buf.Bytes()) //nolint:errcheck // client gone
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Index: exact /debug (and /debug/) only; this pattern also catches
	// unregistered /debug/* paths, which 404 with a pointer to the index.
	index := DebugEndpoint(
		func() (any, error) { return DebugEndpoints(), nil },
		func(w io.Writer, doc any) {
			for _, e := range doc.([]EndpointInfo) {
				fmt.Fprintf(w, "%-22s %s\n", e.Path, e.Desc)
			}
		},
	)
	mux.HandleFunc("/debug/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/debug/" && req.URL.Path != "/debug" {
			http.Error(w, "unknown debug endpoint (see /debug/ for the index)", http.StatusNotFound)
			return
		}
		index.ServeHTTP(w, req)
	})
	debugMu.Lock()
	for path, reg := range debugHandlers {
		mux.Handle(path, reg.h)
	}
	debugMu.Unlock()
	return mux
}

func parsePositive(s string) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errNotANumber
		}
		n = n*10 + int(c-'0')
		if n > 1<<20 {
			break
		}
	}
	return n, nil
}

var errNotANumber = &net.ParseError{Type: "number", Text: "not a number"}

// ListenAndServe starts the observability handler on addr (e.g.
// "127.0.0.1:9100"; ":0" picks a free port) and returns the bound
// address and a shutdown function.
func ListenAndServe(addr string) (string, func(), error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler()}
	go srv.Serve(l) //nolint:errcheck // ends on Close
	return l.Addr().String(), func() { srv.Close() }, nil
}
