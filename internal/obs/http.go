package obs

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Debug handler registry: packages that layer on obs (e.g. the
// optimality auditor) mount their own endpoints on every Handler
// without obs importing them.
var (
	debugMu       sync.Mutex
	debugHandlers = make(map[string]http.Handler)
)

// RegisterDebugHandler mounts h at path (e.g. "/debug/optimality") on
// every handler built by Handler/HandlerFor. Registering the same path
// again replaces the handler. Typically called from an init function.
func RegisterDebugHandler(path string, h http.Handler) {
	debugMu.Lock()
	debugHandlers[path] = h
	debugMu.Unlock()
}

// Handler serves the default registry and tracer:
//
//	/metrics            Prometheus text exposition
//	/debug/vars         expvar-style JSON of every metric
//	/debug/traces       recent query spans as JSON (?n=K, default 32;
//	                    ?tree=1 stitches parent→child span trees)
//	/debug/pprof/       net/http/pprof runtime profiles
//
// plus every endpoint mounted via RegisterDebugHandler (the optimality
// auditor's /debug/optimality, when internal/audit is linked in).
func Handler() http.Handler { return HandlerFor(Default(), DefaultTracer()) }

// HandlerFor builds the observability handler for a specific registry
// and tracer (either may be nil to omit that surface).
func HandlerFor(r *Registry, t *Tracer) http.Handler {
	mux := http.NewServeMux()
	if r != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			r.WritePrometheus(w) //nolint:errcheck // client gone
		})
		mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
			var buf bytes.Buffer
			if err := r.WriteJSON(&buf); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Write(buf.Bytes()) //nolint:errcheck // client gone
		})
	}
	if t != nil {
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
			n := 32
			if q := req.URL.Query().Get("n"); q != "" {
				if v, err := parsePositive(q); err == nil {
					n = v
				}
			}
			var doc any
			if req.URL.Query().Get("tree") == "1" {
				doc = t.Trees(n)
			} else {
				doc = t.Recent(n)
			}
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Write(buf.Bytes()) //nolint:errcheck // client gone
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	debugMu.Lock()
	for path, h := range debugHandlers {
		mux.Handle(path, h)
	}
	debugMu.Unlock()
	return mux
}

func parsePositive(s string) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errNotANumber
		}
		n = n*10 + int(c-'0')
		if n > 1<<20 {
			break
		}
	}
	return n, nil
}

var errNotANumber = &net.ParseError{Type: "number", Text: "not a number"}

// ListenAndServe starts the observability handler on addr (e.g.
// "127.0.0.1:9100"; ":0" picks a free port) and returns the bound
// address and a shutdown function.
func ListenAndServe(addr string) (string, func(), error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler()}
	go srv.Serve(l) //nolint:errcheck // ends on Close
	return l.Addr().String(), func() { srv.Close() }, nil
}
