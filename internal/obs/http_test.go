package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "Test counter.", L("device", "0")).Add(5)
	tr := NewTracer(8)
	sp := tr.Start("q")
	sp.SetRequestID(42)
	sp.End()

	srv := httptest.NewServer(HandlerFor(r, tr))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, `h_total{device="0"} 5`) {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}
	if !strings.Contains(body, "# TYPE h_total counter") {
		t.Error("/metrics missing TYPE line")
	}

	code, body = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Errorf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["h_total"]; !ok {
		t.Error("/debug/vars missing h_total")
	}

	code, body = get("/debug/traces?n=5")
	if code != 200 {
		t.Fatalf("/debug/traces = %d", code)
	}
	var spans []SpanSnapshot
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Errorf("/debug/traces not JSON: %v", err)
	}
	if len(spans) != 1 || spans[0].RequestID != 42 {
		t.Errorf("/debug/traces = %+v", spans)
	}

	if code, _ = get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, _ = get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestListenAndServe(t *testing.T) {
	addr, stop, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/metrics = %d", resp.StatusCode)
	}
}
