package obs

import (
	"math"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %g, want 4", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Errorf("gauge = %g, want -1", got)
	}
}

func TestHistogramCountSum(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 105.0; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
	s := h.Snapshot()
	wantCounts := []uint64{1, 1, 1, 1} // (..1], (1,2], (2,4], (4,+Inf]
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
}

func TestHistogramBoundaryValuesAreInclusive(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.Observe(1) // exactly on a bound lands in that bucket (le semantics)
	h.Observe(2)
	h.Observe(4)
	s := h.Snapshot()
	for i, want := range []uint64{1, 1, 1, 0} {
		if s.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], want)
		}
	}
}

// TestHistogramQuantileExact pins quantile estimates on a known
// distribution: 100 observations spread evenly, 25 per bucket, over
// bounds 10/20/30/40. Linear interpolation inside the containing bucket
// makes every quantile exactly computable.
func TestHistogramQuantileExact(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40})
	for b := 0; b < 4; b++ {
		for i := 0; i < 25; i++ {
			h.Observe(float64(b*10) + 5) // 5, 15, 25, 35 — 25 of each
		}
	}
	cases := []struct{ q, want float64 }{
		// target = q*100; bucket holds 25, spans 10 wide.
		{0.10, 4},  // target 10 in (0,10]: 0 + 10*(10-0)/25
		{0.25, 10}, // exactly exhausts bucket 0
		{0.50, 20}, // exactly exhausts bucket 1
		{0.625, 25},
		{0.90, 36}, // target 90: 30 + 10*(90-75)/25
		{1.00, 40},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	h.Observe(1000) // +Inf bucket only
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("+Inf-bucket quantile = %g, want largest finite bound 2", got)
	}

	// A single observation: every quantile lands in its bucket.
	single := newHistogram([]float64{1, 2, 4})
	single.Observe(1.5)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := single.Quantile(q); got <= 1 || got > 2 {
			t.Errorf("single-observation quantile(%g) = %g, want in (1, 2]", q, got)
		}
	}

	// All observations equal: quantiles stay within that one bucket and
	// are monotone in q.
	equal := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		equal.Observe(3)
	}
	prev := 0.0
	for _, q := range []float64{0.1, 0.5, 0.9, 1} {
		got := equal.Quantile(q)
		if got <= 2 || got > 4 {
			t.Errorf("all-equal quantile(%g) = %g, want in (2, 4]", q, got)
		}
		if got < prev {
			t.Errorf("quantile not monotone: q=%g gave %g < %g", q, got, prev)
		}
		prev = got
	}
	if got := equal.Quantile(1); got != 4 {
		t.Errorf("all-equal quantile(1) = %g, want bucket upper bound 4", got)
	}

	// Out-of-range q clamps rather than panicking or extrapolating.
	if lo, hi := equal.Quantile(-1), equal.Quantile(2); lo != equal.Quantile(0) || hi != 4 {
		t.Errorf("clamped quantiles = %g, %g", lo, hi)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	for i := 1; i < len(DefLatencyBuckets); i++ {
		if DefLatencyBuckets[i] <= DefLatencyBuckets[i-1] {
			t.Fatal("DefLatencyBuckets not strictly increasing")
		}
	}
}

func TestObserveSince(t *testing.T) {
	h := newHistogram(DefLatencyBuckets)
	h.ObserveSince(time.Now().Add(-10 * time.Millisecond))
	if h.Count() != 1 {
		t.Fatal("ObserveSince did not record")
	}
	if s := h.Sum(); s < 0.01 || s > 1 {
		t.Errorf("ObserveSince recorded %g seconds, want ~0.01", s)
	}
}
