package obs

import (
	"io"
	"strconv"
	"sync"
	"testing"
)

// TestConcurrentPrimitives hammers every obs primitive from many
// goroutines; run with -race in CI. Final values are asserted so the
// test also catches lost updates (e.g. a non-atomic float add).
func TestConcurrentPrimitives(t *testing.T) {
	const workers, perWorker = 16, 1000
	r := NewRegistry()
	tr := NewTracer(32)
	lg := NewLogger(LevelDebug, io.Discard)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Shared instruments looked up concurrently through the registry.
			c := r.Counter("race_total", "")
			g := r.Gauge("race_gauge", "")
			h := r.Histogram("race_seconds", "", []float64{1, 10, 100})
			own := r.Counter("race_per_worker_total", "", L("w", strconv.Itoa(w)))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
				own.Inc()
				if i%100 == 0 {
					sp := tr.Start("race")
					sp.SetRequestID(uint64(i))
					sp.Event("tick")
					sp.End()
					lg.Infof("worker %d at %d", w, i)
				}
			}
			// Concurrent renders and snapshots against live writers.
			if i := w % 3; i == 0 {
				r.WritePrometheus(io.Discard) //nolint:errcheck
			} else if i == 1 {
				r.WriteJSON(io.Discard) //nolint:errcheck
			} else {
				r.Snapshot()
				tr.Recent(10)
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("race_total", "").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d (lost updates)", got, workers*perWorker)
	}
	if got := r.Gauge("race_gauge", "").Value(); got != workers*perWorker {
		t.Errorf("gauge = %g, want %d (lost updates)", got, workers*perWorker)
	}
	h := r.Histogram("race_seconds", "", nil)
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// Sum of i%200 over perWorker iterations, times workers.
	var wantSum float64
	for i := 0; i < perWorker; i++ {
		wantSum += float64(i % 200)
	}
	wantSum *= workers
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %g, want %g (lost float updates)", got, wantSum)
	}
	for w := 0; w < workers; w++ {
		if got := r.Counter("race_per_worker_total", "", L("w", strconv.Itoa(w))).Value(); got != perWorker {
			t.Errorf("worker %d counter = %d, want %d", w, got, perWorker)
		}
	}
}

// TestConcurrentParentedSpans hammers the trace ring with parented span
// writers while readers stitch trees; run with -race in CI. Each worker
// builds a root with children (as the netdist coordinator and device
// servers do concurrently) and the final window must still stitch into
// consistent trees.
func TestConcurrentParentedSpans(t *testing.T) {
	const workers, traces, children = 8, 50, 4
	tr := NewTracer(workers * traces * (children + 1)) // big enough: no eviction
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < traces; i++ {
				root := tr.Start("root")
				var cwg sync.WaitGroup
				for c := 0; c < children; c++ {
					cwg.Add(1)
					go func(c int) {
						defer cwg.Done()
						sp := tr.StartChild("child", root.Trace(), root.SpanID())
						sp.SetRequestID(uint64(c))
						sp.Event("work")
						sp.End()
					}(c)
				}
				if i%10 == 0 {
					tr.Trees(64) // concurrent reader against live writers
					tr.Recent(64)
				}
				cwg.Wait()
				root.End()
			}
		}()
	}
	wg.Wait()

	trees := tr.Trees(workers * traces * (children + 1))
	roots := 0
	for _, tree := range trees {
		if tree.Name != "root" {
			t.Fatalf("orphaned child promoted to root: %+v (ring should not have evicted)", tree.SpanSnapshot)
		}
		roots++
		if len(tree.Children) != children {
			t.Errorf("root %d has %d children, want %d", tree.ID, len(tree.Children), children)
		}
		for _, c := range tree.Children {
			if c.TraceID != tree.ID || c.Parent != tree.ID {
				t.Errorf("child %d trace=%d parent=%d, want both %d", c.ID, c.TraceID, c.Parent, tree.ID)
			}
		}
	}
	if roots != workers*traces {
		t.Errorf("stitched %d roots, want %d", roots, workers*traces)
	}
}
