package obs

import (
	"io"
	"strconv"
	"sync"
	"testing"
)

// TestConcurrentPrimitives hammers every obs primitive from many
// goroutines; run with -race in CI. Final values are asserted so the
// test also catches lost updates (e.g. a non-atomic float add).
func TestConcurrentPrimitives(t *testing.T) {
	const workers, perWorker = 16, 1000
	r := NewRegistry()
	tr := NewTracer(32)
	lg := NewLogger(LevelDebug, io.Discard)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Shared instruments looked up concurrently through the registry.
			c := r.Counter("race_total", "")
			g := r.Gauge("race_gauge", "")
			h := r.Histogram("race_seconds", "", []float64{1, 10, 100})
			own := r.Counter("race_per_worker_total", "", L("w", strconv.Itoa(w)))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
				own.Inc()
				if i%100 == 0 {
					sp := tr.Start("race")
					sp.SetRequestID(uint64(i))
					sp.Event("tick")
					sp.End()
					lg.Infof("worker %d at %d", w, i)
				}
			}
			// Concurrent renders and snapshots against live writers.
			if i := w % 3; i == 0 {
				r.WritePrometheus(io.Discard) //nolint:errcheck
			} else if i == 1 {
				r.WriteJSON(io.Discard) //nolint:errcheck
			} else {
				r.Snapshot()
				tr.Recent(10)
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("race_total", "").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d (lost updates)", got, workers*perWorker)
	}
	if got := r.Gauge("race_gauge", "").Value(); got != workers*perWorker {
		t.Errorf("gauge = %g, want %d (lost updates)", got, workers*perWorker)
	}
	h := r.Histogram("race_seconds", "", nil)
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// Sum of i%200 over perWorker iterations, times workers.
	var wantSum float64
	for i := 0; i < perWorker; i++ {
		wantSum += float64(i % 200)
	}
	wantSum *= workers
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %g, want %g (lost float updates)", got, wantSum)
	}
	for w := 0; w < workers; w++ {
		if got := r.Counter("race_per_worker_total", "", L("w", strconv.Itoa(w))).Value(); got != perWorker {
			t.Errorf("worker %d counter = %d, want %d", w, got, perWorker)
		}
	}
}
