package obs

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Triggered profiling: when a shape's SLO burn rate or a latency
// threshold trips, capture a bounded pprof CPU+heap profile pair into a
// spool directory. Captures are rate-limited (one at a time, a minimum
// interval between captures, a cap on total captures) so a sustained
// incident cannot fill the disk, and the spool is browsable at
// /debug/profiles.

// ProfileTriggerConfig bounds the capture behaviour.
type ProfileTriggerConfig struct {
	// Dir is the spool directory for profile files (created if absent).
	Dir string
	// CPUDuration is how long each CPU profile runs (default 2s).
	CPUDuration time.Duration
	// MinInterval is the minimum time between captures (default 1m).
	MinInterval time.Duration
	// MaxCaptures caps the number of captures over the trigger's
	// lifetime (default 16).
	MaxCaptures int
	// BurnThreshold trips a capture when a shape's SLO burn rate
	// reaches it (<= 0 disables burn triggering).
	BurnThreshold float64
	// LatencyThreshold trips a capture when a single query's latency
	// reaches it (<= 0 disables latency triggering).
	LatencyThreshold time.Duration
}

// ProfileCapture describes one completed (or failed) capture.
type ProfileCapture struct {
	At       time.Time     `json:"at"`
	Backend  string        `json:"backend"`
	Shape    string        `json:"shape"`
	Reason   string        `json:"reason"`
	CPUFile  string        `json:"cpu_file,omitempty"`
	HeapFile string        `json:"heap_file,omitempty"`
	Elapsed  time.Duration `json:"elapsed_ns,omitempty"`
	Burn     float64       `json:"burn,omitempty"`
	Err      string        `json:"err,omitempty"`
}

// ProfileTrigger watches per-query signals and spools pprof captures.
type ProfileTrigger struct {
	cfg ProfileTriggerConfig

	mu        sync.Mutex
	last      time.Time
	captures  []ProfileCapture
	total     int
	capturing bool
	wg        sync.WaitGroup
	seq       int
}

// NewProfileTrigger returns a trigger with defaults applied.
func NewProfileTrigger(cfg ProfileTriggerConfig) *ProfileTrigger {
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 2 * time.Second
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = time.Minute
	}
	if cfg.MaxCaptures <= 0 {
		cfg.MaxCaptures = 16
	}
	if cfg.Dir == "" {
		cfg.Dir = filepath.Join(os.TempDir(), "fxdist-profiles")
	}
	return &ProfileTrigger{cfg: cfg}
}

// Config returns the trigger's effective (defaulted) configuration.
func (t *ProfileTrigger) Config() ProfileTriggerConfig { return t.cfg }

// Consider evaluates one query's signals and starts an async capture if
// a threshold trips and the rate limiter admits it. It never blocks the
// query path.
func (t *ProfileTrigger) Consider(backend, shape string, elapsed time.Duration, burn float64) {
	if t == nil {
		return
	}
	reason := ""
	switch {
	case t.cfg.LatencyThreshold > 0 && elapsed >= t.cfg.LatencyThreshold:
		reason = fmt.Sprintf("latency %v >= %v", elapsed, t.cfg.LatencyThreshold)
	case t.cfg.BurnThreshold > 0 && burn >= t.cfg.BurnThreshold:
		reason = fmt.Sprintf("slo burn %.2f >= %.2f", burn, t.cfg.BurnThreshold)
	default:
		return
	}
	t.mu.Lock()
	now := time.Now()
	if t.capturing || t.total >= t.cfg.MaxCaptures ||
		(!t.last.IsZero() && now.Sub(t.last) < t.cfg.MinInterval) {
		t.mu.Unlock()
		return
	}
	t.capturing = true
	t.total++
	t.last = now
	t.seq++
	seq := t.seq
	t.wg.Add(1)
	t.mu.Unlock()

	go t.capture(ProfileCapture{
		At: now, Backend: backend, Shape: shape, Reason: reason,
		Elapsed: elapsed, Burn: burn,
	}, seq)
}

func (t *ProfileTrigger) capture(c ProfileCapture, seq int) {
	defer func() {
		t.mu.Lock()
		t.capturing = false
		t.captures = append(t.captures, c)
		t.mu.Unlock()
		t.wg.Done()
	}()
	if err := os.MkdirAll(t.cfg.Dir, 0o755); err != nil {
		c.Err = err.Error()
		return
	}
	stamp := fmt.Sprintf("%s-%03d", c.At.Format("20060102-150405"), seq)
	cpuName := "cpu-" + stamp + ".pprof"
	f, err := os.Create(filepath.Join(t.cfg.Dir, cpuName))
	if err != nil {
		c.Err = err.Error()
		return
	}
	// StartCPUProfile fails when another CPU profile is running (e.g. a
	// live /debug/pprof/profile scrape); skip the CPU half, still take
	// the heap profile.
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(filepath.Join(t.cfg.Dir, cpuName))
		c.Err = err.Error()
	} else {
		time.Sleep(t.cfg.CPUDuration)
		pprof.StopCPUProfile()
		f.Close()
		c.CPUFile = cpuName
	}
	heapName := "heap-" + stamp + ".pprof"
	hf, err := os.Create(filepath.Join(t.cfg.Dir, heapName))
	if err != nil {
		if c.Err == "" {
			c.Err = err.Error()
		}
		return
	}
	if err := pprof.WriteHeapProfile(hf); err != nil && c.Err == "" {
		c.Err = err.Error()
	} else {
		c.HeapFile = heapName
	}
	hf.Close()
}

// Wait blocks until any in-flight capture completes (for tests and
// orderly shutdown).
func (t *ProfileTrigger) Wait() {
	if t == nil {
		return
	}
	t.wg.Wait()
}

// Captures returns completed captures, most recent first.
func (t *ProfileTrigger) Captures() []ProfileCapture {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]ProfileCapture, len(t.captures))
	copy(out, t.captures)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].At.After(out[j].At) })
	return out
}

// Process-wide trigger (atomic so the query path reads it without a
// lock; nil means triggered profiling is off).
var activeTrigger atomic.Pointer[ProfileTrigger]

// SetProfileTrigger installs (or, with nil, removes) the process-wide
// trigger and returns the previous one.
func SetProfileTrigger(t *ProfileTrigger) *ProfileTrigger {
	return activeTrigger.Swap(t)
}

// ActiveProfileTrigger returns the installed trigger, nil when off.
func ActiveProfileTrigger() *ProfileTrigger { return activeTrigger.Load() }

// ConsiderProfile feeds one query's signals to the installed trigger;
// a no-op when triggered profiling is off.
func ConsiderProfile(backend, shape string, elapsed time.Duration, burn float64) {
	if t := activeTrigger.Load(); t != nil {
		t.Consider(backend, shape, elapsed, burn)
	}
}

// profilesDoc is the /debug/profiles document.
type profilesDoc struct {
	Enabled  bool             `json:"enabled"`
	Dir      string           `json:"dir,omitempty"`
	Captures []ProfileCapture `json:"captures"`
}

func init() {
	RegisterDebugHandler("/debug/profiles", "threshold-triggered pprof captures (SLO burn / latency): status and spooled files", DebugEndpoint(
		func() (any, error) {
			t := ActiveProfileTrigger()
			d := profilesDoc{Enabled: t != nil}
			if t != nil {
				d.Dir = t.cfg.Dir
				d.Captures = t.Captures()
			}
			return d, nil
		},
		func(w io.Writer, doc any) {
			d := doc.(profilesDoc)
			if !d.Enabled {
				fmt.Fprintln(w, "triggered profiling off")
				return
			}
			fmt.Fprintf(w, "spool dir %s (%d captures)\n", d.Dir, len(d.Captures))
			for _, c := range d.Captures {
				fmt.Fprintf(w, "  %s %s/%s %s cpu=%s heap=%s", c.At.Format(time.RFC3339), c.Backend, c.Shape, c.Reason, c.CPUFile, c.HeapFile)
				if c.Err != "" {
					fmt.Fprintf(w, " err=%s", c.Err)
				}
				fmt.Fprintln(w)
			}
		},
	))
	RegisterDebugHandler("/debug/profiles/", "download one spooled pprof capture by name", http.HandlerFunc(serveProfileFile))
}

// serveProfileFile serves a single spooled profile by base name
// (/debug/profiles/<file>); names are sanitized against traversal.
func serveProfileFile(w http.ResponseWriter, r *http.Request) {
	t := ActiveProfileTrigger()
	if t == nil {
		http.Error(w, "triggered profiling off", http.StatusNotFound)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/debug/profiles/")
	if name == "" || name != filepath.Base(name) || strings.HasPrefix(name, ".") {
		http.Error(w, "bad profile name", http.StatusBadRequest)
		return
	}
	f, err := os.Open(filepath.Join(t.cfg.Dir, name))
	if err != nil {
		http.Error(w, "no such profile", http.StatusNotFound)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, f) //nolint:errcheck // client gone
}
