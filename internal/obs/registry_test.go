package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests served.", L("device", "0")).Add(7)
	r.Counter("test_requests_total", "Requests served.", L("device", "1")).Add(3)
	r.Gauge("test_imbalance_ratio", "Max over mean load.").Set(1.25)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(5)
	return r
}

// TestWritePrometheusGolden pins the full text exposition byte-for-byte:
// families sorted by name, entries by label, cumulative le buckets.
func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := buildTestRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_imbalance_ratio Max over mean load.
# TYPE test_imbalance_ratio gauge
test_imbalance_ratio 1.25
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.001"} 1
test_latency_seconds_bucket{le="0.01"} 3
test_latency_seconds_bucket{le="0.1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 5.0105
test_latency_seconds_count 4
# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total{device="0"} 7
test_requests_total{device="1"} 3
`
	if got := sb.String(); got != want {
		t.Errorf("prometheus render mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteJSONGolden pins the /debug/vars JSON structure.
func TestWriteJSONGolden(t *testing.T) {
	var sb strings.Builder
	if err := buildTestRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got map[string]struct {
		Kind    string `json:"kind"`
		Help    string `json:"help"`
		Metrics []struct {
			Labels  map[string]string `json:"labels"`
			Value   *float64          `json:"value"`
			Count   *uint64           `json:"count"`
			Sum     *float64          `json:"sum"`
			P50     *float64          `json:"p50"`
			P99     *float64          `json:"p99"`
			Buckets []struct {
				LE    float64 `json:"le"`
				Count uint64  `json:"count"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(got) != 3 {
		t.Fatalf("got %d families, want 3", len(got))
	}
	reqs := got["test_requests_total"]
	if reqs.Kind != "counter" || len(reqs.Metrics) != 2 {
		t.Fatalf("test_requests_total = %+v", reqs)
	}
	if reqs.Metrics[0].Labels["device"] != "0" || *reqs.Metrics[0].Value != 7 {
		t.Errorf("device 0 counter = %+v", reqs.Metrics[0])
	}
	gauge := got["test_imbalance_ratio"]
	if gauge.Kind != "gauge" || *gauge.Metrics[0].Value != 1.25 {
		t.Errorf("gauge = %+v", gauge)
	}
	hist := got["test_latency_seconds"]
	if hist.Kind != "histogram" || *hist.Metrics[0].Count != 4 || *hist.Metrics[0].Sum != 5.0105 {
		t.Errorf("histogram = %+v", hist.Metrics[0])
	}
	if hist.Metrics[0].P50 == nil || hist.Metrics[0].P99 == nil {
		t.Error("histogram JSON missing quantile estimates")
	}
	if n := len(hist.Metrics[0].Buckets); n != 3 {
		t.Errorf("got %d finite buckets, want 3", n)
	}
}

func TestRegistryIdempotentLookup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("k", "v"))
	b := r.Counter("x_total", "", L("k", "v"))
	if a != b {
		t.Error("same name+labels returned different counters")
	}
	c := r.Counter("x_total", "", L("k", "w"))
	if a == c {
		t.Error("different labels returned the same counter")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("path", `a"b\c`+"\n")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{path="a\"b\\c\n"} 1`) {
		t.Errorf("escaping wrong:\n%s", sb.String())
	}
}

func TestHelpEscaping(t *testing.T) {
	// HELP text with a raw newline would split the comment line and
	// corrupt the exposition; backslashes must double. Label values on
	// the same metric must keep their own (stricter) escaping.
	r := NewRegistry()
	r.Counter("hostile_total", "line one\nline two \\ done", L("who", "a\nb")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# HELP hostile_total line one\nline two \\ done`+"\n") {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `hostile_total{who="a\nb"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	// Every line must still parse as exposition format: comments or
	// name{labels} value.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := buildTestRegistry()
	points := r.Snapshot()
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	// Sorted by name: gauge, histogram, counter{0}, counter{1}.
	if points[0].Name != "test_imbalance_ratio" || points[0].Value != 1.25 {
		t.Errorf("point 0 = %+v", points[0])
	}
	if points[1].Histogram == nil || points[1].Histogram.Count != 4 {
		t.Errorf("point 1 missing histogram: %+v", points[1])
	}
	if points[2].Labels[0].Value != "0" || points[2].Value != 7 {
		t.Errorf("point 2 = %+v", points[2])
	}
}
