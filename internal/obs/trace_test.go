package obs

import (
	"testing"
	"time"
)

func TestTracerRecentOrderAndEvents(t *testing.T) {
	tr := NewTracer(8)
	s1 := tr.Start("first")
	s1.SetRequestID(11)
	s1.Event("hello")
	s1.End()
	s2 := tr.Start("second")
	s2.Event("a")
	s2.Event("b")
	s2.End()

	got := tr.Recent(10)
	if len(got) != 2 {
		t.Fatalf("got %d spans, want 2", len(got))
	}
	if got[0].Name != "second" || got[1].Name != "first" {
		t.Errorf("order = %s, %s; want most recent first", got[0].Name, got[1].Name)
	}
	if got[1].RequestID != 11 {
		t.Errorf("request id = %d, want 11", got[1].RequestID)
	}
	if len(got[0].Events) != 2 || got[0].Events[0].Msg != "a" {
		t.Errorf("events = %+v", got[0].Events)
	}
	if !got[0].Done || got[0].Duration <= 0 {
		t.Errorf("span not finalized: %+v", got[0])
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Start("s").End()
	}
	got := tr.Recent(100)
	if len(got) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(got))
	}
	// IDs are 1..10; the ring keeps the last 4, most recent first.
	for i, want := range []uint64{10, 9, 8, 7} {
		if got[i].ID != want {
			t.Errorf("span %d id = %d, want %d", i, got[i].ID, want)
		}
	}
}

func TestTracerInFlightSpanVisible(t *testing.T) {
	tr := NewTracer(4)
	s := tr.Start("open")
	time.Sleep(time.Millisecond)
	got := tr.Recent(1)
	if len(got) != 1 || got[0].Done {
		t.Fatalf("in-flight span not visible: %+v", got)
	}
	if got[0].Duration <= 0 {
		t.Error("in-flight duration not running")
	}
	s.End()
}

func TestNilTracerAndSpanNoOp(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x") // must not panic
	s.SetRequestID(1)
	s.Event("y")
	s.End()
	if tr.Recent(5) != nil {
		t.Error("nil tracer returned spans")
	}
}
