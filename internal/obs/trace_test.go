package obs

import (
	"testing"
	"time"
)

func TestTracerRecentOrderAndEvents(t *testing.T) {
	tr := NewTracer(8)
	s1 := tr.Start("first")
	s1.SetRequestID(11)
	s1.Event("hello")
	s1.End()
	s2 := tr.Start("second")
	s2.Event("a")
	s2.Event("b")
	s2.End()

	got := tr.Recent(10)
	if len(got) != 2 {
		t.Fatalf("got %d spans, want 2", len(got))
	}
	if got[0].Name != "second" || got[1].Name != "first" {
		t.Errorf("order = %s, %s; want most recent first", got[0].Name, got[1].Name)
	}
	if got[1].RequestID != 11 {
		t.Errorf("request id = %d, want 11", got[1].RequestID)
	}
	if len(got[0].Events) != 2 || got[0].Events[0].Msg != "a" {
		t.Errorf("events = %+v", got[0].Events)
	}
	if !got[0].Done || got[0].Duration <= 0 {
		t.Errorf("span not finalized: %+v", got[0])
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Start("s").End()
	}
	got := tr.Recent(100)
	if len(got) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(got))
	}
	// IDs are 1..10; the ring keeps the last 4, most recent first.
	for i, want := range []uint64{10, 9, 8, 7} {
		if got[i].ID != want {
			t.Errorf("span %d id = %d, want %d", i, got[i].ID, want)
		}
	}
}

func TestTracerInFlightSpanVisible(t *testing.T) {
	tr := NewTracer(4)
	s := tr.Start("open")
	time.Sleep(time.Millisecond)
	got := tr.Recent(1)
	if len(got) != 1 || got[0].Done {
		t.Fatalf("in-flight span not visible: %+v", got)
	}
	if got[0].Duration <= 0 {
		t.Error("in-flight duration not running")
	}
	s.End()
}

func TestNilTracerAndSpanNoOp(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x") // must not panic
	s.SetRequestID(1)
	s.Event("y")
	s.End()
	if tr.Recent(5) != nil {
		t.Error("nil tracer returned spans")
	}
	if s.SpanID() != 0 || s.Trace() != 0 || s.ParentID() != 0 {
		t.Error("nil span reported nonzero ids")
	}
	if tr.Trees(5) != nil {
		t.Error("nil tracer returned trees")
	}
}

func TestStartChildParenting(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("root")
	if root.Trace() != root.SpanID() || root.ParentID() != 0 {
		t.Fatalf("root trace=%d parent=%d span=%d; want trace==span, parent 0",
			root.Trace(), root.ParentID(), root.SpanID())
	}
	child := tr.StartChild("child", root.Trace(), root.SpanID())
	if child.Trace() != root.Trace() || child.ParentID() != root.SpanID() {
		t.Errorf("child trace=%d parent=%d; want trace %d parent %d",
			child.Trace(), child.ParentID(), root.Trace(), root.SpanID())
	}
	// traceID 0 forces a new root even with a nonzero parent hint.
	fresh := tr.StartChild("fresh", 0, 999)
	if fresh.Trace() != fresh.SpanID() || fresh.ParentID() != 0 {
		t.Errorf("zero traceID did not start a new root: trace=%d parent=%d span=%d",
			fresh.Trace(), fresh.ParentID(), fresh.SpanID())
	}
	child.End()
	root.End()
	fresh.End()
}

func TestTreesStitchParentChild(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("coordinator")
	c1 := tr.StartChild("serve-0", root.Trace(), root.SpanID())
	c1.End()
	grand := tr.StartChild("scan", root.Trace(), c1.SpanID())
	grand.End()
	c2 := tr.StartChild("serve-1", root.Trace(), root.SpanID())
	c2.End()
	root.End()
	other := tr.Start("loner")
	other.End()

	trees := tr.Trees(16)
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2: %+v", len(trees), trees)
	}
	// Most recent root first.
	if trees[0].Name != "loner" || len(trees[0].Children) != 0 {
		t.Errorf("trees[0] = %+v, want childless loner", trees[0])
	}
	coord := trees[1]
	if coord.Name != "coordinator" || len(coord.Children) != 2 {
		t.Fatalf("coordinator tree = %+v, want 2 children", coord)
	}
	// Children sorted by start time.
	if coord.Children[0].Name != "serve-0" || coord.Children[1].Name != "serve-1" {
		t.Errorf("children = %s, %s", coord.Children[0].Name, coord.Children[1].Name)
	}
	if len(coord.Children[0].Children) != 1 || coord.Children[0].Children[0].Name != "scan" {
		t.Errorf("grandchild missing: %+v", coord.Children[0])
	}
	for _, c := range coord.Children {
		if c.TraceID != coord.ID {
			t.Errorf("child %s trace %d, want %d", c.Name, c.TraceID, coord.ID)
		}
	}
}

// TestTreesForeignParentIDCollision reproduces the cross-process trap:
// every process's span ids would count from 1, so a server's first
// local span can share an id with the remote coordinator parent it (or
// a sibling) references. Such spans must become roots — never parent
// themselves, never adopt a same-id span from a different trace.
func TestTreesForeignParentIDCollision(t *testing.T) {
	tr := NewTracer(8)
	// Local span id 1 whose wire parent is also id 1 (the remote
	// coordinator's root): self-id parent, must be promoted.
	self := tr.StartChild("serve-a", 1, 1)
	self.End()
	// Local span id 2 referencing remote trace 7, parent id 1: span 1
	// exists locally but belongs to trace 1, not 7 — no adoption.
	foreign := tr.StartChild("serve-b", 7, 1)
	foreign.End()
	trees := tr.Trees(8)
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2 promoted roots: %+v", len(trees), trees)
	}
	for _, tree := range trees {
		if len(tree.Children) != 0 {
			t.Errorf("%s adopted children across traces: %+v", tree.Name, tree.Children)
		}
	}
}

// TestDefaultTracerRandomEpoch: the process tracer's span ids start at
// a random epoch so two processes' ids (and trace ids) don't collide.
func TestDefaultTracerRandomEpoch(t *testing.T) {
	sp := DefaultTracer().Start("epoch-probe")
	sp.End()
	if sp.SpanID() < 1<<32 {
		t.Errorf("default tracer span id %d looks sequential, want random epoch", sp.SpanID())
	}
}

func TestTreesOrphanPromotedToRoot(t *testing.T) {
	tr := NewTracer(2) // tiny ring: the root gets evicted
	root := tr.Start("root")
	a := tr.StartChild("a", root.Trace(), root.SpanID())
	b := tr.StartChild("b", root.Trace(), root.SpanID())
	a.End()
	b.End()
	root.End()
	trees := tr.Trees(4) // ring holds only a and b; root evicted
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2 promoted orphans: %+v", len(trees), trees)
	}
	for _, tree := range trees {
		if tree.Parent == 0 {
			t.Errorf("orphan %s lost its parent id", tree.Name)
		}
		if len(tree.Children) != 0 {
			t.Errorf("orphan %s has children", tree.Name)
		}
	}
}
