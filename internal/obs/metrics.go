package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down (in-flight requests,
// imbalance ratios, queue depths).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; safe under concurrent Add/Set).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram of non-negative observations
// (typically latencies in seconds). Bucket b counts observations v with
// bounds[b-1] < v <= bounds[b]; an implicit +Inf bucket catches the
// rest. Observe is lock-free and allocation-free.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	// exemplars holds, per bucket, the most recent trace-linked
	// observation (tail-sampled queries only) — the hook that lets an
	// operator jump from a latency bucket to a retained trace tree.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one observed value to the trace that produced it.
type Exemplar struct {
	Value   float64   `json:"value"`
	TraceID uint64    `json:"trace_id"`
	Time    time.Time `json:"time"`
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// bucketIndex returns the index of the first bound >= v (the +Inf
// bucket when v exceeds every bound).
func (h *Histogram) bucketIndex(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetExemplar attaches an exemplar for value v to its bucket without
// observing it — callers pair it with a regular Observe of the same
// value. The latest exemplar per bucket wins. No-op when traceID is 0.
func (h *Histogram) SetExemplar(v float64, traceID uint64) {
	if traceID == 0 {
		return
	}
	h.exemplars[h.bucketIndex(v)].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
}

// ObserveWithExemplar records one value and links it to traceID.
func (h *Histogram) ObserveWithExemplar(v float64, traceID uint64) {
	h.Observe(v)
	h.SetExemplar(v, traceID)
}

// ObserveSince records the elapsed time since t0, in seconds.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns a consistent-enough copy for rendering (individual
// bucket loads are atomic; cross-bucket skew is bounded by in-flight
// observations).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		if ex := h.exemplars[i].Load(); ex != nil {
			if s.Exemplars == nil {
				s.Exemplars = make([]*Exemplar, len(h.counts))
			}
			s.Exemplars[i] = ex
		}
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the containing bucket, as histogram_quantile
// does. It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// HistogramSnapshot is a point-in-time copy of a Histogram. Counts has
// one extra element for the +Inf bucket. Exemplars, when non-nil, is
// parallel to Counts (nil slots mean the bucket has no exemplar).
type HistogramSnapshot struct {
	Bounds    []float64
	Counts    []uint64
	Count     uint64
	Sum       float64
	Exemplars []*Exemplar `json:",omitempty"`
}

// Quantile estimates the q-quantile by linear interpolation within the
// containing bucket. Observations in the +Inf bucket report the largest
// finite bound. It returns 0 when the snapshot is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum uint64
	for b, n := range s.Counts {
		prev := float64(cum)
		cum += n
		if float64(cum) < target || n == 0 {
			continue
		}
		if b >= len(s.Bounds) { // +Inf bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if b > 0 {
			lower = s.Bounds[b-1]
		}
		upper := s.Bounds[b]
		return lower + (upper-lower)*(target-prev)/float64(n)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// ExpBuckets returns n strictly increasing bucket bounds starting at
// start and multiplying by factor: start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets spans 1µs .. ~8.4s in powers of two — wide enough
// for both main-memory device scans and network round trips.
var DefLatencyBuckets = ExpBuckets(1e-6, 2, 24)
