package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Per-query cost attribution. The paper's response-time model (§5) is
// entirely about where a query's time goes — the slowest device sets
// the latency, and FX keeps every device's share near ceil(|R(q)|/M) —
// so the profiler splits every retrieval into named stages and
// aggregates wall time, bytes and allocation deltas per (backend,
// query shape). The aggregate is served on /debug/hotpath and is the
// measurement baseline any allocation-reduction work is judged against.

// Top-level stage names: these four partition a whole retrieval, so
// their wall times sum to (approximately) the measured query latency.
const (
	// StagePlan is plan compilation or plan-cache lookup.
	StagePlan = "plan"
	// StageFanout spans launch of the first device task until the last
	// device answer (or error) arrives — the paper's max-over-devices
	// term, including queue wait, scan, and for netdist the wire.
	StageFanout = "fanout"
	// StageMerge is answer consolidation under the §5.2.1 cost model.
	StageMerge = "merge"
	// StageAudit is the optimality audit + observer notification tail.
	StageAudit = "audit"
)

// Auxiliary stage names: these overlap the top-level stages (they run
// inside fanout) and refine where its time goes. They are excluded from
// coverage sums.
const (
	// StageDeviceScan is the sum of per-device scan durations — compare
	// against fanout to see parallelism (scan ≈ fanout·M when all
	// devices run concurrently).
	StageDeviceScan = "device.scan"
	// StageNetDispatch is request encode+write on the coordinator side;
	// Bytes counts wire bytes out, not allocations.
	StageNetDispatch = "net.dispatch"
	// StageNetWait is dispatch-done → first response byte.
	StageNetWait = "net.wait"
	// StageNetDecode is gob decode of the response; Bytes counts wire
	// bytes in.
	StageNetDecode = "net.decode"
)

// TopStages lists the stages that partition a retrieval, in execution
// order. Their wall-time sum is the profiler's coverage numerator.
var TopStages = []string{StagePlan, StageFanout, StageMerge, StageAudit}

func isTopStage(name string) bool {
	for _, s := range TopStages {
		if s == name {
			return true
		}
	}
	return false
}

// StageSample is one stage measurement from one query. For engine
// stages Bytes/Objects are heap-allocation deltas and
// RecycledBytes/RecycledSlabs the demand the buffer pools absorbed
// over the same interval; for the net.* wire stages Bytes counts wire
// bytes and the rest are zero.
type StageSample struct {
	Stage         string        `json:"stage"`
	Wall          time.Duration `json:"wall_ns"`
	Bytes         uint64        `json:"bytes,omitempty"`
	Objects       uint64        `json:"objects,omitempty"`
	RecycledBytes uint64        `json:"recycled_bytes,omitempty"`
	RecycledSlabs uint64        `json:"recycled_slabs,omitempty"`
}

// stageAcc accumulates one stage across queries of one shape.
type stageAcc struct {
	count     uint64
	wallNS    int64
	maxWallNS int64
	bytes     uint64
	objects   uint64
	recBytes  uint64
	recSlabs  uint64
}

// shapeCosts accumulates every stage of one query shape.
type shapeCosts struct {
	queries uint64
	totalNS int64
	stages  map[string]*stageAcc
}

// CostProfiler aggregates stage samples per query shape for one
// backend. All methods are safe for concurrent use and no-op on nil.
type CostProfiler struct {
	backend string

	mu     sync.Mutex
	shapes map[string]*shapeCosts
}

// NewCostProfiler returns an empty profiler labelled with backend.
func NewCostProfiler(backend string) *CostProfiler {
	return &CostProfiler{backend: backend, shapes: make(map[string]*shapeCosts)}
}

func (p *CostProfiler) shapeLocked(shape string) *shapeCosts {
	sc := p.shapes[shape]
	if sc == nil {
		sc = &shapeCosts{stages: make(map[string]*stageAcc)}
		p.shapes[shape] = sc
	}
	return sc
}

func (sc *shapeCosts) add(samples []StageSample) {
	for _, s := range samples {
		acc := sc.stages[s.Stage]
		if acc == nil {
			acc = &stageAcc{}
			sc.stages[s.Stage] = acc
		}
		acc.count++
		acc.wallNS += int64(s.Wall)
		if int64(s.Wall) > acc.maxWallNS {
			acc.maxWallNS = int64(s.Wall)
		}
		acc.bytes += s.Bytes
		acc.objects += s.Objects
		acc.recBytes += s.RecycledBytes
		acc.recSlabs += s.RecycledSlabs
	}
}

// ObserveQuery records one whole retrieval: its total latency and its
// stage breakdown. total should cover the same interval the top-level
// stages partition.
func (p *CostProfiler) ObserveQuery(shape string, total time.Duration, samples []StageSample) {
	if p == nil {
		return
	}
	p.mu.Lock()
	sc := p.shapeLocked(shape)
	sc.queries++
	sc.totalNS += int64(total)
	sc.add(samples)
	p.mu.Unlock()
}

// ObserveSamples records auxiliary stage samples (e.g. per-request wire
// stages) without counting a query.
func (p *CostProfiler) ObserveSamples(shape string, samples []StageSample) {
	if p == nil || len(samples) == 0 {
		return
	}
	p.mu.Lock()
	sc := p.shapeLocked(shape)
	sc.add(samples)
	p.mu.Unlock()
}

// Reset discards all accumulated samples.
func (p *CostProfiler) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.shapes = make(map[string]*shapeCosts)
	p.mu.Unlock()
}

// StageCost is one aggregated stage of one query shape.
type StageCost struct {
	Stage string `json:"stage"`
	// Count is how many samples were recorded (= queries for top-level
	// stages; per-request for wire stages).
	Count uint64 `json:"count"`
	// MeanWall and MaxWall are per-sample wall times.
	MeanWall time.Duration `json:"mean_wall_ns"`
	MaxWall  time.Duration `json:"max_wall_ns"`
	// MeanBytes/MeanObjects are per-sample heap-alloc deltas (wire
	// bytes for net.* stages); MeanRecycledBytes/MeanRecycledSlabs are
	// the per-sample demand served from buffer pools instead — the two
	// together attribute a stage's true memory traffic once pooling is
	// on.
	MeanBytes         float64 `json:"mean_bytes"`
	MeanObjects       float64 `json:"mean_objects"`
	MeanRecycledBytes float64 `json:"mean_recycled_bytes,omitempty"`
	MeanRecycledSlabs float64 `json:"mean_recycled_slabs,omitempty"`
	// WallFrac is this stage's share of the shape's total query time
	// (top-level stages only; auxiliary stages overlap fanout).
	WallFrac float64 `json:"wall_frac"`
}

// ShapeCost is the aggregated cost profile of one query shape.
type ShapeCost struct {
	Shape   string        `json:"shape"`
	Queries uint64        `json:"queries"`
	MeanT   time.Duration `json:"mean_total_ns"`
	// StageCoverage is sum(top-level stage wall) / total wall — how much
	// of the measured latency the breakdown explains (≈1.0 when the
	// stamps are sound).
	StageCoverage float64     `json:"stage_coverage"`
	Stages        []StageCost `json:"stages"`
}

// BackendCost is every profiled shape of one backend.
type BackendCost struct {
	Backend string      `json:"backend"`
	Shapes  []ShapeCost `json:"shapes"`
}

// Report snapshots the profiler, shapes sorted by name, stages with
// top-level stages first in execution order then auxiliary stages by
// name.
func (p *CostProfiler) Report() BackendCost {
	if p == nil {
		return BackendCost{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := BackendCost{Backend: p.backend}
	for shape, sc := range p.shapes {
		row := ShapeCost{Shape: shape, Queries: sc.queries}
		if sc.queries > 0 {
			row.MeanT = time.Duration(sc.totalNS / int64(sc.queries))
		}
		var topNS int64
		for name, acc := range sc.stages {
			st := StageCost{
				Stage:             name,
				Count:             acc.count,
				MaxWall:           time.Duration(acc.maxWallNS),
				MeanBytes:         float64(acc.bytes) / float64(acc.count),
				MeanObjects:       float64(acc.objects) / float64(acc.count),
				MeanRecycledBytes: float64(acc.recBytes) / float64(acc.count),
				MeanRecycledSlabs: float64(acc.recSlabs) / float64(acc.count),
			}
			st.MeanWall = time.Duration(acc.wallNS / int64(acc.count))
			if isTopStage(name) {
				topNS += acc.wallNS
				if sc.totalNS > 0 {
					st.WallFrac = float64(acc.wallNS) / float64(sc.totalNS)
				}
			}
			row.Stages = append(row.Stages, st)
		}
		if sc.totalNS > 0 {
			row.StageCoverage = float64(topNS) / float64(sc.totalNS)
		}
		sort.Slice(row.Stages, func(i, j int) bool {
			return stageOrder(row.Stages[i].Stage) < stageOrder(row.Stages[j].Stage)
		})
		out.Shapes = append(out.Shapes, row)
	}
	sort.Slice(out.Shapes, func(i, j int) bool { return out.Shapes[i].Shape < out.Shapes[j].Shape })
	return out
}

// stageOrder keys render order: top-level stages in execution order,
// then auxiliary stages alphabetically.
func stageOrder(name string) string {
	for i, s := range TopStages {
		if s == name {
			return fmt.Sprintf("0%d", i)
		}
	}
	return "1" + name
}

// Process-wide profiler registry, one per backend (the audit.For idiom:
// backends grab their profiler by name at construction, reports list
// every backend that has recorded anything).
var (
	costMu        sync.Mutex
	costProfilers = make(map[string]*CostProfiler)
)

// CostProfilerFor returns the process-wide profiler for backend,
// creating it on first use.
func CostProfilerFor(backend string) *CostProfiler {
	costMu.Lock()
	defer costMu.Unlock()
	p := costProfilers[backend]
	if p == nil {
		p = NewCostProfiler(backend)
		costProfilers[backend] = p
	}
	return p
}

// CostReport snapshots every backend's cost profile, sorted by backend.
// Backends with no recorded queries are omitted.
func CostReport() []BackendCost {
	costMu.Lock()
	profs := make([]*CostProfiler, 0, len(costProfilers))
	for _, p := range costProfilers {
		profs = append(profs, p)
	}
	costMu.Unlock()
	var out []BackendCost
	for _, p := range profs {
		r := p.Report()
		if len(r.Shapes) > 0 {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Backend < out[j].Backend })
	return out
}

// ResetCostProfilers zeroes every backend's accumulated cost profile.
func ResetCostProfilers() {
	costMu.Lock()
	profs := make([]*CostProfiler, 0, len(costProfilers))
	for _, p := range costProfilers {
		profs = append(profs, p)
	}
	costMu.Unlock()
	for _, p := range profs {
		p.Reset()
	}
}

func init() {
	RegisterDebugHandler("/debug/hotpath", "per-(backend,shape) stage cost aggregates: plan/fanout/merge/audit wall, bytes, objects", DebugEndpoint(
		func() (any, error) { return CostReport(), nil },
		func(w io.Writer, doc any) { WriteCostReport(w, doc.([]BackendCost)) },
	))
}

// WriteCostReport renders a cost report as an aligned text table.
func WriteCostReport(w io.Writer, report []BackendCost) {
	if len(report) == 0 {
		fmt.Fprintln(w, "no queries profiled")
		return
	}
	for _, b := range report {
		fmt.Fprintf(w, "backend %s\n", b.Backend)
		for _, s := range b.Shapes {
			fmt.Fprintf(w, "  shape %-8s queries=%d mean=%v coverage=%.2f\n",
				s.Shape, s.Queries, s.MeanT, s.StageCoverage)
			fmt.Fprintf(w, "    %-14s %8s %12s %12s %14s %12s %14s %12s %8s\n",
				"stage", "count", "mean", "max", "bytes/op", "objs/op", "recycled/op", "slabs/op", "wall%")
			for _, st := range s.Stages {
				frac := "-"
				if isTopStage(st.Stage) {
					frac = fmt.Sprintf("%.1f%%", st.WallFrac*100)
				}
				fmt.Fprintf(w, "    %-14s %8d %12v %12v %14.1f %12.1f %14.1f %12.1f %8s\n",
					st.Stage, st.Count, st.MeanWall, st.MaxWall, st.MeanBytes, st.MeanObjects,
					st.MeanRecycledBytes, st.MeanRecycledSlabs, frac)
			}
		}
	}
}
