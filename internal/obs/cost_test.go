package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCostProfilerAggregates(t *testing.T) {
	p := NewCostProfiler("test")
	for i := 0; i < 4; i++ {
		p.ObserveQuery("ss**", 100*time.Microsecond, []StageSample{
			{Stage: StagePlan, Wall: 10 * time.Microsecond, Bytes: 100, Objects: 2},
			{Stage: StageFanout, Wall: 80 * time.Microsecond, Bytes: 4000, Objects: 40},
			{Stage: StageMerge, Wall: 5 * time.Microsecond},
			{Stage: StageAudit, Wall: 5 * time.Microsecond},
			{Stage: StageDeviceScan, Wall: 300 * time.Microsecond},
		})
	}
	p.ObserveSamples("ss**", []StageSample{{Stage: StageNetWait, Wall: 50 * time.Microsecond, Bytes: 900}})

	rep := p.Report()
	if rep.Backend != "test" || len(rep.Shapes) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	s := rep.Shapes[0]
	if s.Shape != "ss**" || s.Queries != 4 || s.MeanT != 100*time.Microsecond {
		t.Fatalf("shape row = %+v", s)
	}
	// plan+fanout+merge+audit = 100µs = total → coverage 1.0 exactly.
	if s.StageCoverage < 0.999 || s.StageCoverage > 1.001 {
		t.Errorf("coverage = %g, want 1.0", s.StageCoverage)
	}
	// Top stages render first, in execution order; auxiliaries after.
	var order []string
	for _, st := range s.Stages {
		order = append(order, st.Stage)
	}
	want := []string{StagePlan, StageFanout, StageMerge, StageAudit, StageDeviceScan, StageNetWait}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("stage order = %v, want %v", order, want)
	}
	fanout := s.Stages[1]
	if fanout.Count != 4 || fanout.MeanWall != 80*time.Microsecond ||
		fanout.MeanBytes != 4000 || fanout.MeanObjects != 40 {
		t.Errorf("fanout agg = %+v", fanout)
	}
	if fanout.WallFrac < 0.79 || fanout.WallFrac > 0.81 {
		t.Errorf("fanout wall frac = %g, want 0.8", fanout.WallFrac)
	}
	// Auxiliary stages carry no wall fraction and don't inflate coverage.
	if scan := s.Stages[4]; scan.WallFrac != 0 {
		t.Errorf("device.scan has wall frac %g", scan.WallFrac)
	}
	// ObserveSamples counts samples, not queries.
	if wait := s.Stages[5]; wait.Count != 1 || wait.MeanBytes != 900 {
		t.Errorf("net.wait agg = %+v", wait)
	}

	p.Reset()
	if rep := p.Report(); len(rep.Shapes) != 0 {
		t.Fatalf("report after reset = %+v", rep)
	}
}

func TestCostProfilerNil(t *testing.T) {
	var p *CostProfiler
	p.ObserveQuery("s", time.Second, nil) // must not panic
	p.ObserveSamples("s", []StageSample{{Stage: StagePlan}})
	p.Reset()
	if rep := p.Report(); rep.Backend != "" || len(rep.Shapes) != 0 {
		t.Fatalf("nil profiler report = %+v", rep)
	}
}

func TestFlightRecorderKeepsSlowest(t *testing.T) {
	f := NewFlightRecorder("test", 3)
	for _, ms := range []int{5, 1, 9, 3, 7, 2, 8} {
		f.Note(FlightRecord{Shape: "s*", Elapsed: time.Duration(ms) * time.Millisecond})
	}
	rep := f.Report()
	if len(rep.Shapes) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	var got []time.Duration
	for _, r := range rep.Shapes[0].Records {
		got = append(got, r.Elapsed)
		if r.Backend != "test" {
			t.Errorf("record backend = %q", r.Backend)
		}
	}
	want := []time.Duration{9 * time.Millisecond, 8 * time.Millisecond, 7 * time.Millisecond}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("retained %v, want slowest-first %v", got, want)
	}
}

func TestFlightRecorderAdmits(t *testing.T) {
	f := NewFlightRecorder("test", 2)
	if !f.Admits("new-shape", time.Nanosecond) {
		t.Fatal("unseen shape must admit everything")
	}
	f.Note(FlightRecord{Shape: "s", Elapsed: 10 * time.Millisecond})
	if !f.Admits("s", time.Nanosecond) {
		t.Fatal("ring not full yet: must still admit")
	}
	f.Note(FlightRecord{Shape: "s", Elapsed: 20 * time.Millisecond})
	// Ring full: floor is the fastest retained record (10ms).
	if f.Admits("s", 5*time.Millisecond) {
		t.Error("admitted a query below the floor")
	}
	if !f.Admits("s", 15*time.Millisecond) {
		t.Error("rejected a query above the floor")
	}
	// A full ring on one shape must not starve another.
	if !f.Admits("other", time.Nanosecond) {
		t.Error("full ring on one shape starved a new shape")
	}
	// Note below the floor is a no-op even if forced past Admits.
	f.Note(FlightRecord{Shape: "s", Elapsed: time.Millisecond})
	if got := f.Report().Shapes[0].Records; len(got) != 2 || got[1].Elapsed != 10*time.Millisecond {
		t.Errorf("below-floor Note changed the ring: %+v", got)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder("race", 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			shape := fmt.Sprintf("shape-%d", g%2)
			for i := 0; i < 200; i++ {
				el := time.Duration(i*(g+1)) * time.Microsecond
				if f.Admits(shape, el) {
					f.Note(FlightRecord{Shape: shape, Elapsed: el})
				}
				if i%50 == 0 {
					f.Report()
				}
			}
		}(g)
	}
	wg.Wait()
	rep := f.Report()
	if len(rep.Shapes) != 2 {
		t.Fatalf("got %d shapes, want 2", len(rep.Shapes))
	}
	for _, s := range rep.Shapes {
		if len(s.Records) != 4 {
			t.Errorf("shape %s retained %d records, want 4", s.Shape, len(s.Records))
		}
		for i := 1; i < len(s.Records); i++ {
			if s.Records[i].Elapsed > s.Records[i-1].Elapsed {
				t.Errorf("shape %s not slowest-first: %v", s.Shape, s.Records)
			}
		}
	}
}

func TestDebugEndpointFormats(t *testing.T) {
	h := DebugEndpoint(
		func() (any, error) { return map[string]int{"n": 1}, nil },
		func(w io.Writer, doc any) { fmt.Fprintf(w, "n is %d\n", doc.(map[string]int)["n"]) },
	)
	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}

	rec := get("/debug/x")
	if rec.Code != 200 || rec.Header().Get("Content-Type") != "application/json; charset=utf-8" {
		t.Fatalf("default: code=%d content-type=%q", rec.Code, rec.Header().Get("Content-Type"))
	}
	var doc map[string]int
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil || doc["n"] != 1 {
		t.Fatalf("default body %q: %v", rec.Body.String(), err)
	}
	if rec2 := get("/debug/x?format=json"); rec2.Body.String() != rec.Body.String() {
		t.Error("?format=json differs from default")
	}

	rec = get("/debug/x?format=text")
	if rec.Code != 200 || rec.Header().Get("Content-Type") != "text/plain; charset=utf-8" ||
		rec.Body.String() != "n is 1\n" {
		t.Fatalf("text: code=%d content-type=%q body=%q", rec.Code, rec.Header().Get("Content-Type"), rec.Body.String())
	}

	if rec = get("/debug/x?format=xml"); rec.Code != 400 {
		t.Errorf("unknown format: code=%d, want 400", rec.Code)
	}

	textless := DebugEndpoint(func() (any, error) { return 1, nil }, nil)
	rec = httptest.NewRecorder()
	textless.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/x?format=text", nil))
	if rec.Code != 400 {
		t.Errorf("text on textless endpoint: code=%d, want 400", rec.Code)
	}
}

func TestDebugEndpointErrorsAreNon200(t *testing.T) {
	failing := DebugEndpoint(func() (any, error) { return nil, errors.New("boom") }, nil)
	rec := httptest.NewRecorder()
	failing.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/x", nil))
	if rec.Code != 500 || !strings.Contains(rec.Body.String(), "boom") {
		t.Fatalf("doc error: code=%d body=%q, want 500", rec.Code, rec.Body.String())
	}

	// A document JSON can't marshal must yield 500, not a truncated 200.
	unmarshalable := DebugEndpoint(func() (any, error) { return map[string]any{"f": func() {}}, nil }, nil)
	rec = httptest.NewRecorder()
	unmarshalable.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/x", nil))
	if rec.Code != 500 {
		t.Fatalf("marshal error: code=%d, want 500", rec.Code)
	}
}

func TestProfileTriggerCapturesAndRateLimits(t *testing.T) {
	dir := t.TempDir()
	tr := NewProfileTrigger(ProfileTriggerConfig{
		Dir:              dir,
		CPUDuration:      10 * time.Millisecond,
		MinInterval:      time.Hour, // only the first capture may run
		MaxCaptures:      4,
		LatencyThreshold: 100 * time.Millisecond,
	})

	tr.Consider("test", "ss**", 50*time.Millisecond, 0) // below threshold
	tr.Consider("test", "ss**", 200*time.Millisecond, 0)
	tr.Consider("test", "s***", 300*time.Millisecond, 0) // rate-limited away
	tr.Wait()

	caps := tr.Captures()
	if len(caps) != 1 {
		t.Fatalf("got %d captures, want 1 (rate limited): %+v", len(caps), caps)
	}
	c := caps[0]
	if c.Backend != "test" || c.Shape != "ss**" || !strings.Contains(c.Reason, "latency") {
		t.Errorf("capture = %+v", c)
	}
	if c.Err != "" {
		t.Fatalf("capture failed: %s", c.Err)
	}
	for _, name := range []string{c.CPUFile, c.HeapFile} {
		if name == "" {
			t.Fatalf("capture missing a profile file: %+v", c)
		}
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil || fi.Size() == 0 {
			t.Errorf("profile %s: err=%v size=%v", name, err, fi)
		}
	}
}

func TestProfileTriggerBurnThreshold(t *testing.T) {
	tr := NewProfileTrigger(ProfileTriggerConfig{
		Dir:           t.TempDir(),
		CPUDuration:   time.Millisecond,
		BurnThreshold: 2.0,
	})
	tr.Consider("test", "s", time.Millisecond, 1.5) // below
	tr.Wait()
	if got := tr.Captures(); len(got) != 0 {
		t.Fatalf("burn 1.5 < 2.0 captured: %+v", got)
	}
	tr.Consider("test", "s", time.Millisecond, 2.5)
	tr.Wait()
	caps := tr.Captures()
	if len(caps) != 1 || !strings.Contains(caps[0].Reason, "burn") {
		t.Fatalf("burn 2.5 >= 2.0: %+v", caps)
	}
}

func TestConsiderProfileGlobal(t *testing.T) {
	tr := NewProfileTrigger(ProfileTriggerConfig{
		Dir:              t.TempDir(),
		CPUDuration:      time.Millisecond,
		LatencyThreshold: time.Microsecond,
	})
	old := SetProfileTrigger(tr)
	defer SetProfileTrigger(old)

	ConsiderProfile("test", "s", time.Second, 0)
	tr.Wait()
	if len(tr.Captures()) != 1 {
		t.Fatalf("global trigger did not capture: %+v", tr.Captures())
	}

	SetProfileTrigger(nil)
	ConsiderProfile("test", "s", time.Second, 0) // must not panic with no trigger
}
