package obs

import (
	"runtime/metrics"
	"sync"
	"sync/atomic"
)

// Allocation sampling for the cost profiler. Stage boundaries read the
// process-global heap-allocation counters from runtime/metrics — unlike
// runtime.ReadMemStats this does not stop the world, so it is cheap
// enough to call four or five times per query. Deltas between two reads
// attribute allocation volume to the stage between them; concurrent
// queries smear into each other's deltas, which is acceptable for an
// aggregate profile (the per-shape means converge on the true split).

// AllocStat is a point-in-time reading of cumulative heap allocation,
// plus — when a buffer-pool layer has registered its counters via
// SetRecycleCounter — the cumulative demand those pools served without
// touching the heap. The pair keeps the profiler honest once pooling
// lands: a stage whose alloc delta collapses but whose recycled delta
// grows moved its traffic into the pools; a stage where both collapse
// genuinely stopped asking for memory.
type AllocStat struct {
	// Bytes is the cumulative count of heap bytes allocated.
	Bytes uint64
	// Objects is the cumulative count of heap objects allocated.
	Objects uint64
	// RecycledBytes is the cumulative count of bytes served from
	// recycled pool slabs instead of the heap (zero when no pool layer
	// is registered).
	RecycledBytes uint64
	// RecycledSlabs is the cumulative count of slabs served from pools.
	RecycledSlabs uint64
}

// Sub returns the allocation delta from earlier to s, clamped at zero
// (counters are monotonic, but a zero reading from a disabled metric
// must not underflow).
func (s AllocStat) Sub(earlier AllocStat) AllocStat {
	d := AllocStat{}
	if s.Bytes > earlier.Bytes {
		d.Bytes = s.Bytes - earlier.Bytes
	}
	if s.Objects > earlier.Objects {
		d.Objects = s.Objects - earlier.Objects
	}
	if s.RecycledBytes > earlier.RecycledBytes {
		d.RecycledBytes = s.RecycledBytes - earlier.RecycledBytes
	}
	if s.RecycledSlabs > earlier.RecycledSlabs {
		d.RecycledSlabs = s.RecycledSlabs - earlier.RecycledSlabs
	}
	return d
}

// recycleCounter, when set, reports cumulative (bytes, slabs) served
// from buffer pools. The mempool package registers itself here from an
// init function; obs cannot import it directly without a cycle.
var recycleCounter atomic.Pointer[func() (uint64, uint64)]

// SetRecycleCounter registers the pool layer's cumulative recycle
// counters so ReadAllocs can sample them alongside the heap counters.
func SetRecycleCounter(f func() (bytes, slabs uint64)) {
	recycleCounter.Store(&f)
}

var allocSamplePool = sync.Pool{
	New: func() any {
		s := make([]metrics.Sample, 2)
		s[0].Name = "/gc/heap/allocs:bytes"
		s[1].Name = "/gc/heap/allocs:objects"
		return &s
	},
}

// ReadAllocs samples the cumulative heap-allocation counters.
func ReadAllocs() AllocStat {
	sp := allocSamplePool.Get().(*[]metrics.Sample)
	metrics.Read(*sp)
	var st AllocStat
	if (*sp)[0].Value.Kind() == metrics.KindUint64 {
		st.Bytes = (*sp)[0].Value.Uint64()
	}
	if (*sp)[1].Value.Kind() == metrics.KindUint64 {
		st.Objects = (*sp)[1].Value.Uint64()
	}
	allocSamplePool.Put(sp)
	if f := recycleCounter.Load(); f != nil {
		st.RecycledBytes, st.RecycledSlabs = (*f)()
	}
	return st
}
