package obs

import (
	"runtime/metrics"
	"sync"
)

// Allocation sampling for the cost profiler. Stage boundaries read the
// process-global heap-allocation counters from runtime/metrics — unlike
// runtime.ReadMemStats this does not stop the world, so it is cheap
// enough to call four or five times per query. Deltas between two reads
// attribute allocation volume to the stage between them; concurrent
// queries smear into each other's deltas, which is acceptable for an
// aggregate profile (the per-shape means converge on the true split).

// AllocStat is a point-in-time reading of cumulative heap allocation.
type AllocStat struct {
	// Bytes is the cumulative count of heap bytes allocated.
	Bytes uint64
	// Objects is the cumulative count of heap objects allocated.
	Objects uint64
}

// Sub returns the allocation delta from earlier to s, clamped at zero
// (counters are monotonic, but a zero reading from a disabled metric
// must not underflow).
func (s AllocStat) Sub(earlier AllocStat) AllocStat {
	d := AllocStat{}
	if s.Bytes > earlier.Bytes {
		d.Bytes = s.Bytes - earlier.Bytes
	}
	if s.Objects > earlier.Objects {
		d.Objects = s.Objects - earlier.Objects
	}
	return d
}

var allocSamplePool = sync.Pool{
	New: func() any {
		s := make([]metrics.Sample, 2)
		s[0].Name = "/gc/heap/allocs:bytes"
		s[1].Name = "/gc/heap/allocs:objects"
		return &s
	},
}

// ReadAllocs samples the cumulative heap-allocation counters.
func ReadAllocs() AllocStat {
	sp := allocSamplePool.Get().(*[]metrics.Sample)
	metrics.Read(*sp)
	var st AllocStat
	if (*sp)[0].Value.Kind() == metrics.KindUint64 {
		st.Bytes = (*sp)[0].Value.Uint64()
	}
	if (*sp)[1].Value.Kind() == metrics.KindUint64 {
		st.Objects = (*sp)[1].Value.Uint64()
	}
	allocSamplePool.Put(sp)
	return st
}
