package obs

import (
	"strings"
	"testing"
)

func TestLoggerLevelFiltering(t *testing.T) {
	var sb strings.Builder
	lg := NewLogger(LevelWarn, &sb)
	lg.Debugf("d")
	lg.Infof("i")
	lg.Warnf("w%d", 1)
	lg.Errorf("e")
	out := sb.String()
	if strings.Contains(out, "DEBUG") || strings.Contains(out, "INFO") {
		t.Errorf("below-threshold records written:\n%s", out)
	}
	if !strings.Contains(out, "WARN  w1") || !strings.Contains(out, "ERROR e") {
		t.Errorf("missing records:\n%s", out)
	}

	lg.SetLevel(LevelOff)
	sb.Reset()
	lg.Errorf("silent")
	if sb.Len() != 0 {
		t.Errorf("LevelOff wrote %q", sb.String())
	}

	lg.SetLevel(LevelDebug)
	sb.Reset()
	lg.Debugf("loud")
	if !strings.Contains(sb.String(), "DEBUG loud") {
		t.Errorf("debug record missing: %q", sb.String())
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"error": LevelError, "off": LevelOff,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

// The default process logger must stay quiet below Warn so routine
// recovery/compaction events do not spam test output.
func TestDefaultLoggerQuiet(t *testing.T) {
	if StdLogger().Level() != LevelWarn {
		t.Errorf("default level = %v, want warn", StdLogger().Level())
	}
}
