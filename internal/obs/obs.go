// Package obs is the stdlib-only observability layer for the fxdist
// runtime: atomic counters and gauges, bounded-bucket latency histograms
// with quantile estimation, a metric Registry that renders both
// Prometheus text exposition and expvar-style JSON, per-query trace
// spans keyed by the coordinator's pipelined request IDs, and a small
// leveled logger.
//
// The paper's argument (§5.2.1) is that response time equals the
// slowest device, so the load balance of a declustering method is only
// as good as what you can measure at runtime. This package is the
// measurement substrate: netdist, storage and pagestore register their
// instruments against Default(), and cmd/fxnode exposes the registry
// over HTTP (/metrics, /debug/vars, /debug/pprof/, /debug/traces).
//
// All primitives are safe for concurrent use and allocation-free on the
// hot observation paths (Counter.Inc, Gauge.Set/Add, Histogram.Observe).
// Registry lookups take a mutex and should be done once at construction
// time, caching the returned instrument.
package obs
