package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff disables all output.
	LevelOff
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	case LevelOff:
		return "OFF"
	}
	return "UNKNOWN"
}

// ParseLevel maps "debug", "info", "warn", "error" or "off" to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off":
		return LevelOff, nil
	}
	return LevelOff, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, error or off)", s)
}

// Logger is a minimal leveled logger. The default logger filters at
// LevelWarn, so routine recovery/compaction events (logged at Info) are
// quiet in tests; CLIs opt into Info or Debug.
type Logger struct {
	level atomic.Int32

	mu  sync.Mutex
	out io.Writer
}

// NewLogger builds a logger writing records at or above level to out.
func NewLogger(level Level, out io.Writer) *Logger {
	l := &Logger{out: out}
	l.level.Store(int32(level))
	return l
}

var std = NewLogger(LevelWarn, os.Stderr)

// StdLogger returns the process-wide logger.
func StdLogger() *Logger { return std }

// SetLevel changes the logger's threshold.
func (l *Logger) SetLevel(level Level) { l.level.Store(int32(level)) }

// Level returns the current threshold.
func (l *Logger) Level() Level { return Level(l.level.Load()) }

// SetOutput redirects the logger.
func (l *Logger) SetOutput(w io.Writer) {
	l.mu.Lock()
	l.out = w
	l.mu.Unlock()
}

// Logf writes one record when level passes the threshold.
func (l *Logger) Logf(level Level, format string, args ...any) {
	if level < Level(l.level.Load()) || Level(l.level.Load()) == LevelOff {
		return
	}
	ts := time.Now().UTC().Format("2006-01-02T15:04:05.000Z")
	line := fmt.Sprintf("%s %-5s %s\n", ts, level, fmt.Sprintf(format, args...))
	l.mu.Lock()
	io.WriteString(l.out, line) //nolint:errcheck // best-effort logging
	l.mu.Unlock()
}

// Debugf logs at LevelDebug.
func (l *Logger) Debugf(format string, args ...any) { l.Logf(LevelDebug, format, args...) }

// Infof logs at LevelInfo.
func (l *Logger) Infof(format string, args ...any) { l.Logf(LevelInfo, format, args...) }

// Warnf logs at LevelWarn.
func (l *Logger) Warnf(format string, args ...any) { l.Logf(LevelWarn, format, args...) }

// Errorf logs at LevelError.
func (l *Logger) Errorf(format string, args ...any) { l.Logf(LevelError, format, args...) }

// Package-level shorthands on the process logger.

// SetLogLevel changes the process logger's threshold.
func SetLogLevel(level Level) { std.SetLevel(level) }

// Debugf logs at LevelDebug on the process logger.
func Debugf(format string, args ...any) { std.Debugf(format, args...) }

// Infof logs at LevelInfo on the process logger.
func Infof(format string, args ...any) { std.Infof(format, args...) }

// Warnf logs at LevelWarn on the process logger.
func Warnf(format string, args ...any) { std.Warnf(format, args...) }

// Errorf logs at LevelError on the process logger.
func Errorf(format string, args ...any) { std.Errorf(format, args...) }
