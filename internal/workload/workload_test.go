package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"fxdist/internal/query"
)

func carSpec() RecordSpec {
	return RecordSpec{Fields: []FieldSpec{
		{Name: "make", Cardinality: 20},
		{Name: "model", Cardinality: 200},
		{Name: "year", Cardinality: 30},
	}}
}

func TestValidate(t *testing.T) {
	if err := (RecordSpec{}).Validate(); err == nil {
		t.Error("empty spec accepted")
	}
	bad := carSpec()
	bad.Fields[0].Cardinality = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero cardinality accepted")
	}
	bad2 := carSpec()
	bad2.Fields[1].ZipfS = 0.5
	if err := bad2.Validate(); err == nil {
		t.Error("ZipfS in (0,1] accepted")
	}
	ok := carSpec()
	ok.Fields[1].ZipfS = 1.5
	if err := ok.Validate(); err != nil {
		t.Errorf("valid skewed spec rejected: %v", err)
	}
}

func TestRecordsDeterministicAndWellFormed(t *testing.T) {
	a, err := Records(carSpec(), 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Records(carSpec(), 100, 42)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different records")
	}
	c, _ := Records(carSpec(), 100, 43)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical records")
	}
	for _, r := range a {
		if len(r) != 3 {
			t.Fatalf("record arity %d", len(r))
		}
		if !strings.HasPrefix(r[0], "make-") || !strings.HasPrefix(r[1], "model-") {
			t.Fatalf("value prefixes wrong: %v", r)
		}
	}
}

func TestRecordsZipfSkew(t *testing.T) {
	spec := RecordSpec{Fields: []FieldSpec{{Name: "k", Cardinality: 100, ZipfS: 2.0}}}
	recs, err := Records(spec, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range recs {
		counts[r[0]]++
	}
	// Under Zipf(2) the most common value dominates heavily.
	if counts["k-0"] < 800 {
		t.Errorf("Zipf skew too weak: k-0 appeared %d/2000 times", counts["k-0"])
	}
}

func TestRecordsInvalidSpec(t *testing.T) {
	if _, err := Records(RecordSpec{}, 10, 1); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestSchemaDerivation(t *testing.T) {
	s := Schema(carSpec(), []int{2, 4, 2})
	if !reflect.DeepEqual(s.Fields, []string{"make", "model", "year"}) {
		t.Errorf("fields = %v", s.Fields)
	}
	if !reflect.DeepEqual(s.Depths, []int{2, 4, 2}) {
		t.Errorf("depths = %v", s.Depths)
	}
}

func TestPartialMatchesSpecificationProbability(t *testing.T) {
	pms, err := PartialMatches(carSpec(), 3000, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	specified := 0
	for _, pm := range pms {
		if len(pm) != 3 {
			t.Fatalf("arity %d", len(pm))
		}
		for _, v := range pm {
			if v != nil {
				specified++
			}
		}
	}
	frac := float64(specified) / float64(3000*3)
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("specified fraction %.3f, want ~0.5", frac)
	}
	// p=0: nothing specified; p=1: everything specified.
	all, _ := PartialMatches(carSpec(), 10, 1, 1)
	for _, pm := range all {
		for _, v := range pm {
			if v == nil {
				t.Fatal("p=1 left a field unspecified")
			}
		}
	}
	none, _ := PartialMatches(carSpec(), 10, 0, 1)
	for _, pm := range none {
		for _, v := range pm {
			if v != nil {
				t.Fatal("p=0 specified a field")
			}
		}
	}
	if _, err := PartialMatches(carSpec(), 1, 1.5, 1); err == nil {
		t.Error("p > 1 accepted")
	}
	if _, err := PartialMatches(RecordSpec{}, 1, 0.5, 1); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestBucketQueries(t *testing.T) {
	sizes := []int{4, 8, 16}
	qs, err := BucketQueries(sizes, 2000, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	unspec := 0
	for _, q := range qs {
		if len(q.Spec) != 3 {
			t.Fatalf("arity %d", len(q.Spec))
		}
		for j, v := range q.Spec {
			if v == query.Unspecified {
				unspec++
				continue
			}
			if v < 0 || v >= sizes[j] {
				t.Fatalf("value %d out of domain for field %d", v, j)
			}
		}
	}
	frac := float64(unspec) / float64(2000*3)
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("unspecified fraction %.3f, want ~0.5", frac)
	}
	if _, err := BucketQueries(nil, 1, 0.5, 1); err == nil {
		t.Error("empty sizes accepted")
	}
	if _, err := BucketQueries(sizes, 1, -0.1, 1); err == nil {
		t.Error("negative p accepted")
	}
	// Determinism.
	a, _ := BucketQueries(sizes, 50, 0.5, 9)
	b, _ := BucketQueries(sizes, 50, 0.5, 9)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different queries")
	}
}

func TestFieldSpecValue(t *testing.T) {
	f := FieldSpec{Name: "year", Cardinality: 10}
	if got := f.Value(7); got != "year-7" {
		t.Errorf("Value = %q", got)
	}
}
