// Package workload generates synthetic relations and partial match query
// mixes for the examples and benchmarks. Query generation follows the
// paper's §5 assumption: every field is specified independently with the
// same probability.
//
// All generators are deterministic for a given seed.
package workload

import (
	"fmt"
	"math/rand"

	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

// FieldSpec describes one field's value universe.
type FieldSpec struct {
	// Name labels the field (also used as the value prefix).
	Name string
	// Cardinality is the number of distinct values in the universe.
	Cardinality int
	// ZipfS, when > 1, skews value frequencies with a Zipf(s) law; 0 draws
	// values uniformly. Values in (0, 1] are invalid.
	ZipfS float64
}

// RecordSpec describes a synthetic relation.
type RecordSpec struct {
	Fields []FieldSpec
}

// Validate checks the spec.
func (rs RecordSpec) Validate() error {
	if len(rs.Fields) == 0 {
		return fmt.Errorf("workload: record spec needs at least one field")
	}
	for i, f := range rs.Fields {
		if f.Cardinality <= 0 {
			return fmt.Errorf("workload: field %d cardinality %d, want > 0", i, f.Cardinality)
		}
		if f.ZipfS != 0 && f.ZipfS <= 1 {
			return fmt.Errorf("workload: field %d ZipfS %v, want 0 or > 1", i, f.ZipfS)
		}
	}
	return nil
}

// valueDrawer returns a deterministic per-field value index generator.
func valueDrawer(r *rand.Rand, f FieldSpec) func() int {
	if f.ZipfS == 0 {
		return func() int { return r.Intn(f.Cardinality) }
	}
	z := rand.NewZipf(r, f.ZipfS, 1, uint64(f.Cardinality-1))
	return func() int { return int(z.Uint64()) }
}

// Value renders value index v of field f, e.g. "make-17".
func (f FieldSpec) Value(v int) string { return fmt.Sprintf("%s-%d", f.Name, v) }

// Records generates n records under the spec.
func Records(spec RecordSpec, n int, seed int64) ([]mkhash.Record, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	draw := make([]func() int, len(spec.Fields))
	for i, f := range spec.Fields {
		draw[i] = valueDrawer(r, f)
	}
	out := make([]mkhash.Record, n)
	for i := range out {
		rec := make(mkhash.Record, len(spec.Fields))
		for j, f := range spec.Fields {
			rec[j] = f.Value(draw[j]())
		}
		out[i] = rec
	}
	return out, nil
}

// Schema derives an mkhash schema for the spec with the given per-field
// directory depths.
func Schema(spec RecordSpec, depths []int) mkhash.Schema {
	names := make([]string, len(spec.Fields))
	for i, f := range spec.Fields {
		names[i] = f.Name
	}
	return mkhash.Schema{Fields: names, Depths: depths}
}

// PartialMatches generates value-level partial match queries: each field
// is specified independently with probability p, and specified values are
// drawn from the field's universe (with its skew).
func PartialMatches(spec RecordSpec, count int, p float64, seed int64) ([]mkhash.PartialMatch, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("workload: specification probability %v outside [0,1]", p)
	}
	r := rand.New(rand.NewSource(seed))
	draw := make([]func() int, len(spec.Fields))
	for i, f := range spec.Fields {
		draw[i] = valueDrawer(r, f)
	}
	out := make([]mkhash.PartialMatch, count)
	for i := range out {
		pm := make(mkhash.PartialMatch, len(spec.Fields))
		for j, f := range spec.Fields {
			if r.Float64() < p {
				v := f.Value(draw[j]())
				pm[j] = &v
			}
		}
		out[i] = pm
	}
	return out, nil
}

// BucketQueries generates bucket-level partial match queries against a
// file system with the given field sizes: each field is specified
// independently with probability p, with specified hash values uniform
// over the field domain.
func BucketQueries(sizes []int, count int, p float64, seed int64) ([]query.Query, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("workload: need at least one field")
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("workload: specification probability %v outside [0,1]", p)
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]query.Query, count)
	for i := range out {
		spec := make([]int, len(sizes))
		for j, f := range sizes {
			if r.Float64() < p {
				spec[j] = r.Intn(f)
			} else {
				spec[j] = query.Unspecified
			}
		}
		out[i] = query.New(spec)
	}
	return out, nil
}
