package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"fxdist/internal/analysis"
	"fxdist/internal/cost"
	"fxdist/internal/decluster"
	"fxdist/internal/field"
)

func smallTable() analysis.TableSpec {
	fs := decluster.MustFileSystem([]int{4, 4}, 16)
	return analysis.TableSpec{
		Name:    "MiniTable",
		Caption: "M=16, F=4,4",
		FS:      fs,
		Methods: []decluster.GroupAllocator{
			decluster.NewModulo(fs),
			decluster.MustFX(fs, field.WithKinds([]field.Kind{field.I, field.U})),
		},
		Ks: []int{1, 2},
	}
}

func TestParseFormat(t *testing.T) {
	for _, s := range []string{"text", "csv", "json"} {
		if _, err := ParseFormat(s); err != nil {
			t.Errorf("ParseFormat(%q) = %v", s, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestTableText(t *testing.T) {
	var buf bytes.Buffer
	if err := Table(&buf, smallTable(), Text); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "MiniTable") || !strings.Contains(out, "Optimal") {
		t.Errorf("text output missing pieces:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Table(&buf, smallTable(), CSV); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // header + 2 rows
		t.Fatalf("csv rows = %d", len(recs))
	}
	if recs[0][0] != "k" || recs[0][len(recs[0])-1] != "Optimal" {
		t.Errorf("csv header = %v", recs[0])
	}
	// k=2 row: Modulo 4, FX 1, Optimal 1.
	if recs[2][1] != "4" || recs[2][2] != "1" || recs[2][3] != "1" {
		t.Errorf("csv k=2 row = %v", recs[2])
	}
}

func TestTableJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := Table(&buf, smallTable(), JSON); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Name string `json:"name"`
		Rows []struct {
			K       int                `json:"k"`
			Methods map[string]float64 `json:"methods"`
			Optimal float64            `json:"optimal"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Name != "MiniTable" || len(decoded.Rows) != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Rows[1].Methods["Modulo"] != 4 {
		t.Errorf("k=2 Modulo = %v", decoded.Rows[1].Methods)
	}
}

func TestFigureFormats(t *testing.T) {
	spec := analysis.FigureSpec{
		Name: "MiniFig", Caption: "test", N: 3, M: 16, SmallF: 4, LargeF: 16,
		Family: field.FamilyIU2,
	}
	for _, exact := range []bool{false, true} {
		var text, csvBuf, jsonBuf bytes.Buffer
		if err := Figure(&text, spec, exact, Text); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(text.String(), "MiniFig") {
			t.Error("text output missing name")
		}
		if err := Figure(&csvBuf, spec, exact, CSV); err != nil {
			t.Fatal(err)
		}
		recs, err := csv.NewReader(&csvBuf).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		wantCols := 3
		if exact {
			wantCols = 5
		}
		if len(recs) != 5 || len(recs[0]) != wantCols { // header + 4 points
			t.Fatalf("exact=%v: csv shape %dx%d", exact, len(recs), len(recs[0]))
		}
		if err := Figure(&jsonBuf, spec, exact, JSON); err != nil {
			t.Fatal(err)
		}
		if !json.Valid(jsonBuf.Bytes()) {
			t.Error("invalid JSON")
		}
	}
}

func TestCPUCostFormats(t *testing.T) {
	plan := field.MustPlan([]int{8, 8}, 32)
	rows := cost.Compare(cost.MC68000, plan)
	for _, f := range []Format{Text, CSV, JSON} {
		var buf bytes.Buffer
		if err := CPUCost(&buf, rows, f); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%v: empty output", f)
		}
	}
}

func TestUnknownFormatErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Table(&buf, smallTable(), Format("xml")); err == nil {
		t.Error("Table accepted unknown format")
	}
	if err := Figure(&buf, analysis.Figure1(), false, Format("xml")); err == nil {
		t.Error("Figure accepted unknown format")
	}
	if err := CPUCost(&buf, nil, Format("xml")); err == nil {
		t.Error("CPUCost accepted unknown format")
	}
}

func TestClip(t *testing.T) {
	if clip("abcdef", 3) != "abc" || clip("ab", 3) != "ab" {
		t.Error("clip wrong")
	}
}
