// Package report renders analysis results (response-size tables,
// optimality curves, CPU cost comparisons) as plain text, CSV or JSON, so
// the CLIs can feed plotting pipelines directly.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"fxdist/internal/analysis"
	"fxdist/internal/cost"
)

// Format selects an output encoding.
type Format string

// Supported formats.
const (
	Text Format = "text"
	CSV  Format = "csv"
	JSON Format = "json"
)

// ParseFormat validates a format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case Text, CSV, JSON:
		return Format(s), nil
	default:
		return "", fmt.Errorf("report: unknown format %q (want text, csv or json)", s)
	}
}

// Table renders a response-size table.
func Table(w io.Writer, spec analysis.TableSpec, format Format) error {
	rows := spec.Rows()
	header := spec.Header()
	switch format {
	case Text:
		fmt.Fprintf(w, "%s — %s\n", spec.Name, spec.Caption)
		line := fmt.Sprintf("  %-3s", header[0])
		for _, h := range header[1:] {
			line += fmt.Sprintf(" %14s", shortName(h))
		}
		fmt.Fprintln(w, line)
		for _, r := range rows {
			line := fmt.Sprintf("  %-3d", r.K)
			for _, v := range r.Avg {
				line += fmt.Sprintf(" %14.1f", v)
			}
			line += fmt.Sprintf(" %14.1f", r.Optimal)
			fmt.Fprintln(w, line)
		}
		return nil
	case CSV:
		cw := csv.NewWriter(w)
		if err := cw.Write(header); err != nil {
			return err
		}
		for _, r := range rows {
			rec := []string{strconv.Itoa(r.K)}
			for _, v := range r.Avg {
				rec = append(rec, formatFloat(v))
			}
			rec = append(rec, formatFloat(r.Optimal))
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	case JSON:
		type jsonRow struct {
			K       int                `json:"k"`
			Methods map[string]float64 `json:"methods"`
			Optimal float64            `json:"optimal"`
		}
		out := struct {
			Name    string    `json:"name"`
			Caption string    `json:"caption"`
			Rows    []jsonRow `json:"rows"`
		}{Name: spec.Name, Caption: spec.Caption}
		for _, r := range rows {
			jr := jsonRow{K: r.K, Methods: map[string]float64{}, Optimal: r.Optimal}
			for i, v := range r.Avg {
				jr.Methods[header[i+1]] = v
			}
			out.Rows = append(out.Rows, jr)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	default:
		return fmt.Errorf("report: unknown format %q", format)
	}
}

// Figure renders an optimality curve.
func Figure(w io.Writer, spec analysis.FigureSpec, exact bool, format Format) error {
	points := spec.Points(exact)
	switch format {
	case Text:
		fmt.Fprintf(w, "%s — %s\n", spec.Name, spec.Caption)
		if exact {
			fmt.Fprintf(w, "  %-12s %8s %8s %12s %12s\n", "smallFields", "MD%", "FD%", "MD-exact%", "FD-exact%")
		} else {
			fmt.Fprintf(w, "  %-12s %8s %8s\n", "smallFields", "MD%", "FD%")
		}
		for _, p := range points {
			if exact {
				fmt.Fprintf(w, "  %-12d %8.1f %8.1f %12.1f %12.1f\n",
					p.SmallFields, p.ModuloPct, p.FXPct, p.ModuloExactPct, p.FXExactPct)
			} else {
				fmt.Fprintf(w, "  %-12d %8.1f %8.1f\n", p.SmallFields, p.ModuloPct, p.FXPct)
			}
		}
		return nil
	case CSV:
		cw := csv.NewWriter(w)
		header := []string{"small_fields", "md_pct", "fd_pct"}
		if exact {
			header = append(header, "md_exact_pct", "fd_exact_pct")
		}
		if err := cw.Write(header); err != nil {
			return err
		}
		for _, p := range points {
			rec := []string{strconv.Itoa(p.SmallFields), formatFloat(p.ModuloPct), formatFloat(p.FXPct)}
			if exact {
				rec = append(rec, formatFloat(p.ModuloExactPct), formatFloat(p.FXExactPct))
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	case JSON:
		out := struct {
			Name    string                     `json:"name"`
			Caption string                     `json:"caption"`
			Exact   bool                       `json:"exact"`
			Points  []analysis.OptimalityPoint `json:"points"`
		}{Name: spec.Name, Caption: spec.Caption, Exact: exact, Points: points}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	default:
		return fmt.Errorf("report: unknown format %q", format)
	}
}

// CPUCost renders the §5.2.2 comparison for the given CPUs and plan rows.
func CPUCost(w io.Writer, rows []cost.Comparison, format Format) error {
	switch format {
	case Text:
		for _, r := range rows {
			fmt.Fprintln(w, "  "+r.String())
		}
		return nil
	case CSV:
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"cpu", "method", "cycles", "vs_gdm"}); err != nil {
			return err
		}
		for _, r := range rows {
			if err := cw.Write([]string{r.CPU, r.Method, strconv.Itoa(r.Cycles), formatFloat(r.VsGDM)}); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	case JSON:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	default:
		return fmt.Errorf("report: unknown format %q", format)
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// shortName maps verbose allocator names to the paper's column labels.
func shortName(name string) string {
	switch name {
	case "GDM{2,3,5,7,11,13}":
		return "GDM1"
	case "GDM{2,5,11,43,51,57}":
		return "GDM2"
	case "GDM{41,43,47,51,53,57}":
		return "GDM3"
	}
	if len(name) > 3 && name[:3] == "FX[" {
		return "FX"
	}
	return clip(name, 14)
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}
