package gate

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fxdist"
	"fxdist/client"
)

// maxBodyBytes bounds one HTTP request body (a JSON-RPC frame or an
// array of frames).
const maxBodyBytes = 8 << 20

// ServeHTTP is the gate's RPC endpoint: POST one JSON-RPC 2.0 request
// (or a JSON array of requests — the JSON-RPC batch envelope) with an
// Authorization: Bearer <api-key> header. Connections are persistent:
// plain HTTP/1.1 keep-alive, any number of requests per connection.
//
// HTTP status carries the admission outcome for single frames: 401
// unauthenticated, 429 + Retry-After for rate limits / quota / shed
// rejections, 200 otherwise (method-level failures are JSON-RPC error
// objects, as the spec wants). Batch envelopes are always 200 unless
// unauthenticated; per-frame outcomes ride inside the array.
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "fxgate speaks JSON-RPC 2.0 over POST", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeResponse(w, http.StatusBadRequest, errorResponse(nil, client.ParseError("read body: "+err.Error())))
		return
	}
	t := g.tenants.authenticate(bearerToken(r))
	if t == nil {
		g.metrics.rejected("", "unauthorized")
		e := fxdist.NewError(fxdist.ErrCodeUnauthorized, "unknown or missing API key")
		writeResponse(w, http.StatusUnauthorized, errorResponse(nil, client.FromError(e)))
		return
	}

	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var reqs []client.Request
		if err := json.Unmarshal(body, &reqs); err != nil {
			writeResponse(w, http.StatusOK, errorResponse(nil, client.ParseError(err.Error())))
			return
		}
		if len(reqs) == 0 {
			writeResponse(w, http.StatusOK, errorResponse(nil, client.InvalidRequestError("empty batch envelope")))
			return
		}
		responses := make([]client.Response, len(reqs))
		for i := range reqs {
			responses[i], _ = g.serveOne(r, t, &reqs[i])
		}
		writeJSON(w, http.StatusOK, responses)
		return
	}

	var req client.Request
	if err := json.Unmarshal(body, &req); err != nil {
		writeResponse(w, http.StatusOK, errorResponse(nil, client.ParseError(err.Error())))
		return
	}
	res, status := g.serveOne(r, t, &req)
	if res.Error != nil && res.Error.Data != nil && res.Error.Data.RetryAfterMillis > 0 {
		secs := int(math.Ceil(float64(res.Error.Data.RetryAfterMillis) / 1000))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeResponse(w, status, res)
}

// serveOne admits and runs one JSON-RPC frame, returning its response
// and the HTTP status a single-frame envelope should carry.
func (g *Gate) serveOne(r *http.Request, t *tenant, req *client.Request) (client.Response, int) {
	if req.JSONRPC != "2.0" || req.Method == "" {
		return errorResponse(req.ID, client.InvalidRequestError("not a JSON-RPC 2.0 request")), http.StatusOK
	}
	h := g.methods.Lookup(req.Method)
	if h == nil {
		e := fxdist.NewError(fxdist.ErrCodeUnknownMethod, "unknown method "+req.Method)
		return errorResponse(req.ID, client.FromError(e)), http.StatusOK
	}

	// Admission, outermost first: token bucket, per-tenant in-flight
	// quota, front-door shed. Each rejection carries a Retry-After.
	cost := requestCost(req)
	if ok, retry := t.take(time.Now(), cost); !ok {
		t.mu.Lock()
		t.rateLimited++
		t.mu.Unlock()
		g.rateLimited.Add(1)
		g.metrics.rejected(t.cfg.Name, "rate_limited")
		e := fxdist.NewError(fxdist.ErrCodeRateLimited, "tenant rate limit exceeded")
		e.RetryAfter = maxDuration(retry, time.Second)
		return errorResponse(req.ID, client.FromError(e)), http.StatusTooManyRequests
	}
	if !t.acquire() {
		t.mu.Lock()
		t.quotaRejected++
		t.mu.Unlock()
		g.quotaRejects.Add(1)
		g.metrics.rejected(t.cfg.Name, "quota")
		e := fxdist.NewError(fxdist.ErrCodeRateLimited, "tenant in-flight quota exceeded")
		e.RetryAfter = g.cfg.ShedRetryAfter
		return errorResponse(req.ID, client.FromError(e)), http.StatusTooManyRequests
	}
	defer t.release()
	maxInFlight, shedRetry := g.shedConfig()
	if n := g.inFlight.Add(1); maxInFlight > 0 && n > int64(maxInFlight) {
		g.inFlight.Add(-1)
		t.mu.Lock()
		t.shed++
		t.mu.Unlock()
		g.frontSheds.Add(1)
		g.metrics.rejected(t.cfg.Name, "shed")
		e := fxdist.NewError(fxdist.ErrCodeOverloaded, "gate at max in-flight requests")
		e.RetryAfter = shedRetry
		return errorResponse(req.ID, client.FromError(e)), http.StatusTooManyRequests
	}
	defer func() {
		g.metrics.inflight.Set(float64(g.inFlight.Add(-1)))
	}()
	g.metrics.inflight.Set(float64(g.inFlight.Load()))

	t.mu.Lock()
	t.requests++
	t.mu.Unlock()
	g.metrics.request(t.cfg.Name, req.Method)

	start := time.Now()
	result, herr := h.ServeJSONRPC(r.Context(), t, req.Params)
	g.metrics.latency.ObserveSince(start)
	if herr != nil {
		if herr.Code == fxdist.ErrCodeOverloaded {
			g.metrics.rejected(t.cfg.Name, "burn")
		}
		status := http.StatusOK
		switch herr.Code {
		case fxdist.ErrCodeRateLimited, fxdist.ErrCodeOverloaded:
			status = http.StatusTooManyRequests
		case fxdist.ErrCodeUnauthorized:
			status = http.StatusUnauthorized
		}
		return errorResponse(req.ID, client.FromError(herr)), status
	}
	raw, err := json.Marshal(result)
	if err != nil {
		e := fxdist.NewError(fxdist.ErrCodeInternal, "marshal result: "+err.Error())
		return errorResponse(req.ID, client.FromError(e)), http.StatusOK
	}
	return client.Response{JSONRPC: "2.0", ID: req.ID, Result: raw}, http.StatusOK
}

// requestCost prices a frame in rate-limiter tokens: one per query.
func requestCost(req *client.Request) float64 {
	if req.Method != client.MethodRetrieveBatch {
		return 1
	}
	var p client.BatchParams
	if err := json.Unmarshal(req.Params, &p); err != nil || len(p.Queries) == 0 {
		return 1
	}
	return float64(len(p.Queries))
}

// bearerToken extracts the Authorization: Bearer credential.
func bearerToken(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) {
		return auth[len(prefix):]
	}
	return ""
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func errorResponse(id json.RawMessage, e *client.ErrorObject) client.Response {
	return client.Response{JSONRPC: "2.0", ID: id, Error: e}
}

func writeResponse(w http.ResponseWriter, status int, res client.Response) {
	writeJSON(w, status, res)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(buf)
}
