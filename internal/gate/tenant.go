package gate

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// TenantConfig declares one tenant of the gateway: its API key and the
// admission limits the front door enforces for it. This is the JSON
// element of the -tenants config file (an array of these).
type TenantConfig struct {
	// Name labels the tenant everywhere: wide events (tenant dimension),
	// /debug/tenants rows, metrics.
	Name string `json:"name"`
	// APIKey authenticates the tenant (Authorization: Bearer <key>).
	APIKey string `json:"api_key"`
	// RatePerSec is the tenant's sustained request rate; 0 means
	// unlimited. One fx.retrieve costs one token, one fx.retrieveBatch
	// costs one token per query.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst bounds the token bucket (default: max(1, ceil(RatePerSec))).
	Burst int `json:"burst,omitempty"`
	// MaxInFlight bounds the tenant's concurrent requests; 0 means
	// unlimited.
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// LoadTenants reads a tenants config file: a JSON array of
// TenantConfig.
func LoadTenants(path string) ([]TenantConfig, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfgs []TenantConfig
	if err := json.Unmarshal(b, &cfgs); err != nil {
		return nil, fmt.Errorf("gate: parse tenants config %s: %w", path, err)
	}
	return cfgs, nil
}

// shapeStats is one tenant's per-query-shape audit slice.
type shapeStats struct {
	Queries    uint64        `json:"queries"`
	Errors     uint64        `json:"errors"`
	SumLatency time.Duration `json:"-"`
	MaxLatency time.Duration `json:"max_latency_ns"`
}

// tenant is the runtime state behind one TenantConfig.
type tenant struct {
	cfg TenantConfig

	mu       sync.Mutex
	tokens   float64
	lastFill time.Time

	inFlight int

	requests      uint64
	rateLimited   uint64
	quotaRejected uint64
	shed          uint64 // admission-control (SLO burn / front-door) rejections
	errors        uint64
	coalesced     uint64 // queries served through a coalesced batch
	shapes        map[string]*shapeStats
}

func newTenant(cfg TenantConfig) *tenant {
	burst := cfg.Burst
	if burst <= 0 {
		burst = int(cfg.RatePerSec + 0.999)
		if burst < 1 {
			burst = 1
		}
	}
	cfg.Burst = burst
	return &tenant{cfg: cfg, tokens: float64(burst), shapes: make(map[string]*shapeStats)}
}

// take charges n tokens from the bucket, reporting whether the request
// is admitted and — when it is not — how long until n tokens will have
// refilled (the Retry-After hint). Unlimited tenants always admit.
func (t *tenant) take(now time.Time, n float64) (ok bool, retryAfter time.Duration) {
	if t.cfg.RatePerSec <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.lastFill.IsZero() {
		t.tokens += now.Sub(t.lastFill).Seconds() * t.cfg.RatePerSec
		if max := float64(t.cfg.Burst); t.tokens > max {
			t.tokens = max
		}
	}
	t.lastFill = now
	if t.tokens >= n {
		t.tokens -= n
		return true, 0
	}
	need := n - t.tokens
	return false, time.Duration(need / t.cfg.RatePerSec * float64(time.Second))
}

// acquire claims an in-flight slot; release undoes it.
func (t *tenant) acquire() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.MaxInFlight > 0 && t.inFlight >= t.cfg.MaxInFlight {
		return false
	}
	t.inFlight++
	return true
}

func (t *tenant) release() {
	t.mu.Lock()
	t.inFlight--
	t.mu.Unlock()
}

// observe records one finished query for the tenant's audit slice.
func (t *tenant) observe(shape string, elapsed time.Duration, coalesced bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ss := t.shapes[shape]
	if ss == nil {
		ss = &shapeStats{}
		t.shapes[shape] = ss
	}
	ss.Queries++
	ss.SumLatency += elapsed
	if elapsed > ss.MaxLatency {
		ss.MaxLatency = elapsed
	}
	if err != nil {
		ss.Errors++
		t.errors++
	}
	if coalesced {
		t.coalesced++
	}
}

// tenantSet is the gate's tenant registry, keyed by API key.
type tenantSet struct {
	mu      sync.RWMutex
	byKey   map[string]*tenant
	byName  map[string]*tenant
	ordered []*tenant
}

func newTenantSet(cfgs []TenantConfig) (*tenantSet, error) {
	s := &tenantSet{byKey: make(map[string]*tenant), byName: make(map[string]*tenant)}
	for _, cfg := range cfgs {
		if cfg.Name == "" || cfg.APIKey == "" {
			return nil, errors.New("gate: every tenant needs a name and an api_key")
		}
		if s.byName[cfg.Name] != nil {
			return nil, fmt.Errorf("gate: duplicate tenant name %q", cfg.Name)
		}
		if s.byKey[cfg.APIKey] != nil {
			return nil, fmt.Errorf("gate: duplicate api key (tenant %q)", cfg.Name)
		}
		t := newTenant(cfg)
		s.byKey[cfg.APIKey] = t
		s.byName[cfg.Name] = t
		s.ordered = append(s.ordered, t)
	}
	return s, nil
}

// authenticate resolves an API key to its tenant in constant time per
// candidate key.
func (s *tenantSet) authenticate(key string) *tenant {
	if key == "" {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.byKey[key]
	if t == nil {
		return nil
	}
	if subtle.ConstantTimeCompare([]byte(key), []byte(t.cfg.APIKey)) != 1 {
		return nil
	}
	return t
}

func (s *tenantSet) all() []*tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*tenant(nil), s.ordered...)
}
