// Package gate is fxdist's multi-tenant front door: a persistent-
// connection serving tier that speaks the public client contract
// (JSON-RPC 2.0, package client) in front of one fxdist.Cluster.
//
// The gate authenticates tenants by API key, enforces per-tenant token
// buckets and in-flight quotas, sheds load when the cluster's SLO burn
// rate says a query shape is over budget, and — its reason to exist —
// coalesces concurrent requests across tenants: retrievals arriving
// within one coalescing window are grouped by query shape and driven
// through Cluster.RetrieveBatch as a single call, so the plan cache
// compiles each shape once and the engine fans out once per batch.
// Results are demultiplexed back to each tenant, and per-tenant wide
// events are preserved via fxdist.ContextWithCallers. See DESIGN §S37.
package gate

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fxdist"
	"fxdist/internal/audit"
)

// Config assembles a Gate.
type Config struct {
	// Cluster is the serving cluster (required). The gate owns nothing:
	// callers open and close the cluster.
	Cluster *fxdist.Cluster
	// File is the multi-key hashed file's schema view, used to compile
	// map-form queries to PartialMatch specs and to answer fx.explain
	// (required).
	File *fxdist.File
	// Allocator, when set, lets fx.explain report exact per-device loads
	// by group convolution.
	Allocator fxdist.GroupAllocator
	// Tenants declares the tenant set (at least one).
	Tenants []TenantConfig
	// CoalesceWindow is how long an fx.retrieve waits for shape-mates
	// before dispatch. 0 means the 1ms default; negative disables
	// coalescing (every retrieve dispatches alone, immediately).
	CoalesceWindow time.Duration
	// MaxBatch bounds one coalesced dispatch (default 64).
	MaxBatch int
	// MaxInFlight bounds requests in flight across all tenants; beyond
	// it the front door sheds with 429/Retry-After before touching the
	// cluster. 0 disables.
	MaxInFlight int
	// ShedRetryAfter is the Retry-After hint for front-door sheds
	// (default 500ms).
	ShedRetryAfter time.Duration
	// BurnShedThreshold enables SLO-burn admission control: when a query
	// shape's rolling burn rate (audit.ShapeReport.BurnRate) meets or
	// exceeds it, new queries of that shape are rejected with
	// 429/Retry-After until the burn decays. 0 disables. 1.0 means "shed
	// exactly when the shape is burning its whole error budget".
	BurnShedThreshold float64
	// BurnRetryAfter is the Retry-After hint for burn sheds (default 1s).
	BurnRetryAfter time.Duration
}

const (
	defaultCoalesceWindow = time.Millisecond
	defaultMaxBatch       = 64
	defaultShedRetryAfter = 500 * time.Millisecond
	defaultBurnRetryAfter = time.Second
	burnCacheTTL          = 250 * time.Millisecond
)

// Gate is the serving tier. Create with New, serve its HTTP handler
// (ServeHTTP), stop with Close.
type Gate struct {
	cfg     Config
	tenants *tenantSet
	methods *MethodRepository
	co      *coalescer
	start   time.Time

	inFlight atomic.Int64

	// Dispatch accounting: batches counts coalesced dispatches (each one
	// Cluster.RetrieveBatch call), coalesced counts queries that shared
	// a dispatch with at least one other query.
	batches      atomic.Uint64
	coalescedQ   atomic.Uint64
	directBatch  atomic.Uint64 // fx.retrieveBatch pass-through dispatches
	rateLimited  atomic.Uint64
	quotaRejects atomic.Uint64
	burnSheds    atomic.Uint64
	frontSheds   atomic.Uint64

	burnMu   sync.Mutex
	burnAt   time.Time
	burnRate map[string]float64

	metrics *gateMetrics
}

// New builds a Gate over an open cluster and starts its coalescing
// dispatcher.
func New(cfg Config) (*Gate, error) {
	if cfg.Cluster == nil {
		return nil, errors.New("gate: Config.Cluster is required")
	}
	if cfg.File == nil {
		return nil, errors.New("gate: Config.File is required")
	}
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("gate: at least one tenant is required")
	}
	ts, err := newTenantSet(cfg.Tenants)
	if err != nil {
		return nil, err
	}
	if cfg.CoalesceWindow == 0 {
		cfg.CoalesceWindow = defaultCoalesceWindow
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	if cfg.ShedRetryAfter <= 0 {
		cfg.ShedRetryAfter = defaultShedRetryAfter
	}
	if cfg.BurnRetryAfter <= 0 {
		cfg.BurnRetryAfter = defaultBurnRetryAfter
	}
	g := &Gate{
		cfg:     cfg,
		tenants: ts,
		start:   time.Now(),
		metrics: newGateMetrics(),
	}
	g.methods = newMethodRepository(g)
	g.co = newCoalescer(g)
	registerDebugTenants(g)
	return g, nil
}

// Close stops the coalescing dispatcher. In-flight dispatches finish;
// queued queries are failed with overloaded.
func (g *Gate) Close() { g.co.stop() }

// SetShedding re-arms the front door's global in-flight shed at
// runtime, symmetric with netdist.Server.SetShedding.
func (g *Gate) SetShedding(maxInFlight int, retryAfter time.Duration) {
	g.burnMu.Lock()
	g.cfg.MaxInFlight = maxInFlight
	if retryAfter > 0 {
		g.cfg.ShedRetryAfter = retryAfter
	}
	g.burnMu.Unlock()
}

// shedConfig reads the (mutable) front-door shed settings.
func (g *Gate) shedConfig() (int, time.Duration) {
	g.burnMu.Lock()
	defer g.burnMu.Unlock()
	return g.cfg.MaxInFlight, g.cfg.ShedRetryAfter
}

// shapeOf derives the query-shape key straight from a spec: 's' per
// specified field, '*' per unspecified.
func shapeOf(pm fxdist.PartialMatch) string {
	var b strings.Builder
	b.Grow(len(pm))
	for _, v := range pm {
		if v == nil {
			b.WriteByte('*')
		} else {
			b.WriteByte('s')
		}
	}
	return b.String()
}

// burnFor returns the cluster backend's current SLO burn rate for a
// shape, from a briefly-cached audit report (the audit is rolled up on
// every retrieval; re-snapshotting it per request would be pure
// overhead).
func (g *Gate) burnFor(shape string) float64 {
	g.burnMu.Lock()
	defer g.burnMu.Unlock()
	if g.burnRate == nil || time.Since(g.burnAt) > burnCacheTTL {
		rep := audit.For(g.cfg.Cluster.Kind()).Report()
		g.burnRate = make(map[string]float64, len(rep.Shapes))
		for _, sr := range rep.Shapes {
			g.burnRate[sr.Shape] = sr.BurnRate
		}
		g.burnAt = time.Now()
	}
	return g.burnRate[shape]
}

// admitShape applies SLO-burn admission control for one query shape.
func (g *Gate) admitShape(shape string) *fxdist.Error {
	if g.cfg.BurnShedThreshold <= 0 {
		return nil
	}
	burn := g.burnFor(shape)
	if burn < g.cfg.BurnShedThreshold {
		return nil
	}
	g.burnSheds.Add(1)
	e := fxdist.NewError(fxdist.ErrCodeOverloaded,
		fmt.Sprintf("shape %s over SLO burn budget (burn rate %.2f)", shape, burn))
	e.RetryAfter = g.cfg.BurnRetryAfter
	return e
}

// spec compiles a map-form query into the cluster's PartialMatch.
func (g *Gate) spec(query map[string]string) (fxdist.PartialMatch, *fxdist.Error) {
	pm, err := g.cfg.File.Spec(query)
	if err != nil {
		return nil, fxdist.NewError(fxdist.ErrCodeInvalidQuery, err.Error())
	}
	return pm, nil
}

// retrieve serves one tenant query through the coalescer (or directly
// when coalescing is disabled), returning the engine result plus the
// dispatch's batch size (1 when it ran alone).
func (g *Gate) retrieve(ctx context.Context, t *tenant, pm fxdist.PartialMatch) (fxdist.RetrieveResult, int, error) {
	shape := shapeOf(pm)
	if e := g.admitShape(shape); e != nil {
		return fxdist.RetrieveResult{}, 0, e
	}
	start := time.Now()
	var (
		res   fxdist.RetrieveResult
		batch int
		err   error
	)
	if g.cfg.CoalesceWindow < 0 {
		ctx = fxdist.ContextWithCaller(ctx, t.cfg.Name)
		res, err = g.cfg.Cluster.RetrieveContext(ctx, pm)
		batch = 1
	} else {
		res, batch, err = g.co.do(ctx, t, shape, pm)
	}
	t.observe(shape, time.Since(start), batch > 1, err)
	return res, batch, err
}

// retrieveBatch serves an explicit tenant batch: one
// Cluster.RetrieveBatch pass-through (the caller already batched; the
// coalescing window would only add latency), with every query
// attributed to the tenant.
func (g *Gate) retrieveBatch(ctx context.Context, t *tenant, pms []fxdist.PartialMatch) ([]fxdist.RetrieveResult, []error) {
	shapes := make([]string, len(pms))
	errs := make([]error, len(pms))
	run := make([]fxdist.PartialMatch, 0, len(pms))
	runIdx := make([]int, 0, len(pms))
	for i, pm := range pms {
		shapes[i] = shapeOf(pm)
		if e := g.admitShape(shapes[i]); e != nil {
			errs[i] = e
			continue
		}
		run = append(run, pm)
		runIdx = append(runIdx, i)
	}
	results := make([]fxdist.RetrieveResult, len(pms))
	start := time.Now()
	if len(run) > 0 {
		g.directBatch.Add(1)
		ctx := fxdist.ContextWithCaller(ctx, t.cfg.Name)
		rs, err := g.cfg.Cluster.RetrieveBatch(ctx, run)
		per := splitBatchError(err, len(run))
		for j, i := range runIdx {
			results[i] = rs[j]
			errs[i] = per[j]
		}
	}
	elapsed := time.Since(start)
	for i := range pms {
		t.observe(shapes[i], elapsed, false, errs[i])
	}
	return results, errs
}

// splitBatchError demultiplexes Cluster.RetrieveBatch's joined error
// (errors.Join of "query %d: <cause>" wrappers) back into per-query
// errors. Unattributable causes fall back onto every still-unset slot.
func splitBatchError(err error, n int) []error {
	per := make([]error, n)
	if err == nil {
		return per
	}
	var rest []error
	var walk func(error)
	walk = func(e error) {
		if joined, ok := e.(interface{ Unwrap() []error }); ok {
			for _, sub := range joined.Unwrap() {
				walk(sub)
			}
			return
		}
		var idx int
		if _, scanErr := fmt.Sscanf(e.Error(), "query %d:", &idx); scanErr == nil && idx >= 0 && idx < n {
			cause := errors.Unwrap(e)
			if cause == nil {
				cause = e
			}
			per[idx] = cause
			return
		}
		rest = append(rest, e)
	}
	walk(err)
	if len(rest) > 0 {
		fallback := errors.Join(rest...)
		for i := range per {
			if per[i] == nil {
				per[i] = fallback
			}
		}
	}
	return per
}
