package gate

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"fxdist"
	"fxdist/client"
)

// Handler serves one JSON-RPC method for an authenticated tenant. The
// returned value is marshalled as the JSON-RPC result; a non-nil
// *fxdist.Error becomes the JSON-RPC error object (and, for
// rate/overload codes, the HTTP status).
type Handler interface {
	ServeJSONRPC(ctx context.Context, t *tenant, params json.RawMessage) (any, *fxdist.Error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx context.Context, t *tenant, params json.RawMessage) (any, *fxdist.Error)

func (f HandlerFunc) ServeJSONRPC(ctx context.Context, t *tenant, params json.RawMessage) (any, *fxdist.Error) {
	return f(ctx, t, params)
}

// MethodRepository is the gate's method registry: name → handler, in
// the style of JSON-RPC method repositories (register at startup, look
// up per request under a read lock).
type MethodRepository struct {
	mu      sync.RWMutex
	methods map[string]Handler
}

// RegisterMethod adds a method; re-registering a name or registering a
// nil handler is an error.
func (mr *MethodRepository) RegisterMethod(name string, h Handler) error {
	if name == "" || h == nil {
		return fmt.Errorf("gate: method registration needs a name and a handler")
	}
	mr.mu.Lock()
	defer mr.mu.Unlock()
	if mr.methods == nil {
		mr.methods = make(map[string]Handler)
	}
	if _, dup := mr.methods[name]; dup {
		return fmt.Errorf("gate: method %q already registered", name)
	}
	mr.methods[name] = h
	return nil
}

// Lookup resolves a method name (nil when unknown).
func (mr *MethodRepository) Lookup(name string) Handler {
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	return mr.methods[name]
}

// Methods lists the registered method names, sorted.
func (mr *MethodRepository) Methods() []string {
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	names := make([]string, 0, len(mr.methods))
	for name := range mr.methods {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// newMethodRepository registers the fx.* method surface.
func newMethodRepository(g *Gate) *MethodRepository {
	mr := &MethodRepository{}
	must := func(name string, h HandlerFunc) {
		if err := mr.RegisterMethod(name, h); err != nil {
			panic(err)
		}
	}
	must(client.MethodRetrieve, g.handleRetrieve)
	must(client.MethodRetrieveBatch, g.handleRetrieveBatch)
	must(client.MethodExplain, g.handleExplain)
	must(client.MethodHealth, g.handleHealth)
	return mr
}

// toWireResult projects an engine result onto the versioned envelope.
func toWireResult(res fxdist.RetrieveResult, batch int) *client.RetrieveResult {
	records := make([][]string, len(res.Records))
	for i, rec := range res.Records {
		records[i] = rec
	}
	out := &client.RetrieveResult{
		APIVersion:          client.APIVersion,
		Records:             records,
		DeviceBuckets:       res.DeviceBuckets,
		LargestResponseSize: res.LargestResponseSize,
		TraceID:             res.TraceID,
	}
	if batch > 1 {
		out.Coalesced = true
		out.BatchSize = batch
	}
	return out
}

func (g *Gate) handleRetrieve(ctx context.Context, t *tenant, params json.RawMessage) (any, *fxdist.Error) {
	var p client.RetrieveParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, fxdist.NewError(fxdist.ErrCodeInvalidQuery, "malformed params: "+err.Error())
	}
	pm, e := g.spec(p.Query)
	if e != nil {
		return nil, e
	}
	res, batch, err := g.retrieve(ctx, t, pm)
	if err != nil {
		return nil, fxdist.Classify(err)
	}
	return toWireResult(res, batch), nil
}

func (g *Gate) handleRetrieveBatch(ctx context.Context, t *tenant, params json.RawMessage) (any, *fxdist.Error) {
	var p client.BatchParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, fxdist.NewError(fxdist.ErrCodeInvalidQuery, "malformed params: "+err.Error())
	}
	if len(p.Queries) == 0 {
		return nil, fxdist.NewError(fxdist.ErrCodeInvalidQuery, "empty batch")
	}
	items := make([]client.BatchItem, len(p.Queries))
	pms := make([]fxdist.PartialMatch, 0, len(p.Queries))
	idx := make([]int, 0, len(p.Queries))
	for i, q := range p.Queries {
		pm, e := g.spec(q)
		if e != nil {
			items[i].Error = client.FromError(e)
			continue
		}
		pms = append(pms, pm)
		idx = append(idx, i)
	}
	if len(pms) > 0 {
		results, errs := g.retrieveBatch(ctx, t, pms)
		for j, i := range idx {
			if errs[j] != nil {
				items[i].Error = client.FromError(fxdist.Classify(errs[j]))
				continue
			}
			items[i].Result = toWireResult(results[j], 1)
		}
	}
	return &client.BatchResult{APIVersion: client.APIVersion, Items: items}, nil
}

func (g *Gate) handleExplain(ctx context.Context, t *tenant, params json.RawMessage) (any, *fxdist.Error) {
	var p client.RetrieveParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, fxdist.NewError(fxdist.ErrCodeInvalidQuery, "malformed params: "+err.Error())
	}
	pm, e := g.spec(p.Query)
	if e != nil {
		return nil, e
	}
	q, err := g.cfg.File.BucketQuery(pm)
	if err != nil {
		return nil, fxdist.NewError(fxdist.ErrCodeInvalidQuery, err.Error())
	}
	m := g.cfg.Cluster.M()
	rq := 1
	sizes := g.cfg.File.Sizes()
	for i, v := range pm {
		if v == nil {
			rq *= sizes[i]
		}
	}
	out := &client.ExplainResult{
		APIVersion: client.APIVersion,
		Shape:      q.Shape(),
		RQ:         rq,
		Bound:      (rq + m - 1) / m,
		M:          m,
	}
	if g.cfg.Allocator != nil {
		out.DeviceLoads = fxdist.Loads(g.cfg.Allocator, q)
	}
	for _, plan := range g.cfg.Cluster.PlanCache().Plans {
		if plan.Shape == out.Shape {
			out.PlanCached = true
			break
		}
	}
	return out, nil
}

func (g *Gate) handleHealth(ctx context.Context, t *tenant, params json.RawMessage) (any, *fxdist.Error) {
	return &client.HealthResult{
		APIVersion:    client.APIVersion,
		Status:        "ok",
		Backend:       g.cfg.Cluster.Kind(),
		M:             g.cfg.Cluster.M(),
		Fields:        append([]string(nil), g.cfg.File.Schema().Fields...),
		UptimeSeconds: time.Since(g.start).Seconds(),
	}, nil
}
