package gate

import (
	"fmt"
	"io"
	"sort"
	"time"

	"fxdist/internal/obs"
)

// TenantShapeRow is one (tenant, query shape) audit slice on
// /debug/tenants.
type TenantShapeRow struct {
	Shape      string  `json:"shape"`
	Queries    uint64  `json:"queries"`
	Errors     uint64  `json:"errors"`
	MeanMillis float64 `json:"mean_ms"`
	MaxMillis  float64 `json:"max_ms"`
}

// TenantRow is one tenant's slice of the gate's audit.
type TenantRow struct {
	Name          string           `json:"name"`
	InFlight      int              `json:"in_flight"`
	Requests      uint64           `json:"requests"`
	RateLimited   uint64           `json:"rate_limited"`
	QuotaRejected uint64           `json:"quota_rejected"`
	Shed          uint64           `json:"shed"`
	Errors        uint64           `json:"errors"`
	Coalesced     uint64           `json:"coalesced_queries"`
	RatePerSec    float64          `json:"rate_per_sec,omitempty"`
	MaxInFlight   int              `json:"max_in_flight,omitempty"`
	Shapes        []TenantShapeRow `json:"shapes,omitempty"`
}

// Report is the /debug/tenants document: the gate's dispatch counters
// plus one row per tenant.
type Report struct {
	WindowMillis     float64     `json:"coalesce_window_ms"`
	MaxBatch         int         `json:"max_batch"`
	Batches          uint64      `json:"batches"`
	CoalescedQueries uint64      `json:"coalesced_queries"`
	DirectBatches    uint64      `json:"direct_batches"`
	RateLimited      uint64      `json:"rate_limited"`
	QuotaRejected    uint64      `json:"quota_rejected"`
	BurnSheds        uint64      `json:"burn_sheds"`
	FrontSheds       uint64      `json:"front_sheds"`
	Tenants          []TenantRow `json:"tenants"`
}

// Report snapshots the gate's per-tenant audit (the programmatic
// /debug/tenants).
func (g *Gate) Report() Report {
	rep := Report{
		WindowMillis:     float64(g.cfg.CoalesceWindow) / float64(time.Millisecond),
		MaxBatch:         g.cfg.MaxBatch,
		Batches:          g.batches.Load(),
		CoalescedQueries: g.coalescedQ.Load(),
		DirectBatches:    g.directBatch.Load(),
		RateLimited:      g.rateLimited.Load(),
		QuotaRejected:    g.quotaRejects.Load(),
		BurnSheds:        g.burnSheds.Load(),
		FrontSheds:       g.frontSheds.Load(),
	}
	for _, t := range g.tenants.all() {
		t.mu.Lock()
		row := TenantRow{
			Name:          t.cfg.Name,
			InFlight:      t.inFlight,
			Requests:      t.requests,
			RateLimited:   t.rateLimited,
			QuotaRejected: t.quotaRejected,
			Shed:          t.shed,
			Errors:        t.errors,
			Coalesced:     t.coalesced,
			RatePerSec:    t.cfg.RatePerSec,
			MaxInFlight:   t.cfg.MaxInFlight,
		}
		for shape, ss := range t.shapes {
			sr := TenantShapeRow{
				Shape:     shape,
				Queries:   ss.Queries,
				Errors:    ss.Errors,
				MaxMillis: float64(ss.MaxLatency) / float64(time.Millisecond),
			}
			if ss.Queries > 0 {
				sr.MeanMillis = float64(ss.SumLatency) / float64(ss.Queries) / float64(time.Millisecond)
			}
			row.Shapes = append(row.Shapes, sr)
		}
		t.mu.Unlock()
		sort.Slice(row.Shapes, func(i, j int) bool { return row.Shapes[i].Shape < row.Shapes[j].Shape })
		rep.Tenants = append(rep.Tenants, row)
	}
	return rep
}

// registerDebugTenants serves the gate's audit on /debug/tenants
// (?format=json|text) through the process-wide debug handler registry,
// next to /debug/optimality, /debug/events and friends.
func registerDebugTenants(g *Gate) {
	obs.RegisterDebugHandler("/debug/tenants",
		"per-tenant gate audit: admission counters and shape slices",
		obs.DebugEndpoint(
			func() (any, error) { return g.Report(), nil },
			func(w io.Writer, doc any) {
				rep, ok := doc.(Report)
				if !ok {
					return
				}
				fmt.Fprintf(w, "fxgate: window %.2fms max-batch %d\n", rep.WindowMillis, rep.MaxBatch)
				fmt.Fprintf(w, "batches %d  coalesced %d  direct %d  rate-limited %d  quota %d  burn-sheds %d  front-sheds %d\n\n",
					rep.Batches, rep.CoalescedQueries, rep.DirectBatches,
					rep.RateLimited, rep.QuotaRejected, rep.BurnSheds, rep.FrontSheds)
				for _, t := range rep.Tenants {
					fmt.Fprintf(w, "tenant %s: req %d err %d coalesced %d rate-limited %d quota %d shed %d inflight %d\n",
						t.Name, t.Requests, t.Errors, t.Coalesced, t.RateLimited, t.QuotaRejected, t.Shed, t.InFlight)
					for _, s := range t.Shapes {
						fmt.Fprintf(w, "  %-12s q %-7d err %-5d mean %7.3fms max %7.3fms\n",
							s.Shape, s.Queries, s.Errors, s.MeanMillis, s.MaxMillis)
					}
				}
			},
		))
}
