package gate

import "fxdist/internal/obs"

// gateMetrics exposes the gate on the process-wide metric registry
// (scraped at /metrics alongside the cluster's own metrics).
type gateMetrics struct {
	batches  *obs.Counter
	inflight *obs.Gauge
	latency  *obs.Histogram
}

func newGateMetrics() *gateMetrics {
	r := obs.Default()
	return &gateMetrics{
		batches: r.Counter("fxgate_batches_total",
			"Coalesced batch dispatches driven through RetrieveBatch."),
		inflight: r.Gauge("fxgate_inflight",
			"Requests currently in flight through the gate."),
		latency: r.Histogram("fxgate_request_seconds",
			"End-to-end gate request latency.", nil),
	}
}

// request counts one admitted request.
func (m *gateMetrics) request(tenant, method string) {
	obs.Default().Counter("fxgate_requests_total",
		"JSON-RPC requests admitted, by tenant and method.",
		obs.L("tenant", tenant), obs.L("method", method)).Inc()
}

// rejected counts one rejected request by reason: unauthorized,
// rate_limited, quota, shed, burn.
func (m *gateMetrics) rejected(tenant, reason string) {
	obs.Default().Counter("fxgate_rejected_total",
		"Requests rejected at the front door, by tenant and reason.",
		obs.L("tenant", tenant), obs.L("reason", reason)).Inc()
}

// coalesced counts queries that shared a dispatch with shape-mates.
func (m *gateMetrics) coalesced(n uint64) {
	obs.Default().Counter("fxgate_coalesced_queries_total",
		"Queries served inside a multi-query coalesced dispatch.").Add(n)
}
