package gate

import (
	"context"
	"time"

	"fxdist"
)

// The coalescer is the gate's cross-tenant batching dispatcher. Every
// fx.retrieve enqueues a pending query and sleeps on its outcome
// channel; a single dispatcher goroutine wakes on the first arrival,
// waits out the coalescing window so shape-mates can pile up, then
// drains the queue, groups it by query shape, chunks each group at
// MaxBatch and drives every chunk through one Cluster.RetrieveBatch —
// with fxdist.ContextWithCallers carrying each query's tenant so the
// engine's wide events stay per-tenant. One chunk therefore costs one
// plan-cache lookup per shape (one compilation ever, across tenants)
// and one engine fan-out wave, however many tenants fed it.

// pending is one enqueued query waiting for a coalesced dispatch.
type pending struct {
	tenant string
	shape  string
	pm     fxdist.PartialMatch
	ctx    context.Context
	done   chan outcome // buffered 1; dispatcher never blocks on it
}

// outcome is what the dispatcher hands back to a waiter.
type outcome struct {
	res   fxdist.RetrieveResult
	batch int // size of the dispatch this query rode in
	err   error
}

type coalescer struct {
	g      *Gate
	wake   chan struct{} // buffered 1: first enqueue arms the window
	quit   chan struct{}
	idle   chan struct{} // closed when the dispatcher exits
	queueC chan *pending
}

func newCoalescer(g *Gate) *coalescer {
	co := &coalescer{
		g:      g,
		wake:   make(chan struct{}, 1),
		quit:   make(chan struct{}),
		idle:   make(chan struct{}),
		queueC: make(chan *pending, 4*g.cfg.MaxBatch),
	}
	go co.run()
	return co
}

func (co *coalescer) stop() {
	close(co.quit)
	<-co.idle
}

// do enqueues one query and waits for its coalesced outcome. The
// caller's context cancels the wait (the query itself may still be
// served inside the batch; its result is then discarded).
func (co *coalescer) do(ctx context.Context, t *tenant, shape string, pm fxdist.PartialMatch) (fxdist.RetrieveResult, int, error) {
	p := &pending{
		tenant: t.cfg.Name,
		shape:  shape,
		pm:     pm,
		ctx:    ctx,
		done:   make(chan outcome, 1),
	}
	select {
	case co.queueC <- p:
	default:
		// Queue saturated: the dispatcher is running far behind arrivals.
		e := fxdist.NewError(fxdist.ErrCodeOverloaded, "coalescing queue full")
		e.RetryAfter = co.g.cfg.ShedRetryAfter
		return fxdist.RetrieveResult{}, 0, e
	}
	select {
	case co.wake <- struct{}{}:
	default:
	}
	select {
	case out := <-p.done:
		return out.res, out.batch, out.err
	case <-ctx.Done():
		return fxdist.RetrieveResult{}, 0, fxdist.Classify(ctx.Err())
	case <-co.quit:
		return fxdist.RetrieveResult{}, 0, fxdist.NewError(fxdist.ErrCodeOverloaded, "gate shutting down")
	}
}

// run is the dispatcher loop.
func (co *coalescer) run() {
	defer close(co.idle)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-co.quit:
			co.failQueued()
			return
		case <-co.wake:
		}
		// Arm the window: whoever woke us is already queued; shape-mates
		// arriving within the window join the same dispatch.
		timer.Reset(co.g.cfg.CoalesceWindow)
		select {
		case <-co.quit:
			timer.Stop()
			co.failQueued()
			return
		case <-timer.C:
		}
		co.flush()
	}
}

// failQueued drains the queue on shutdown.
func (co *coalescer) failQueued() {
	for {
		select {
		case p := <-co.queueC:
			p.done <- outcome{err: fxdist.NewError(fxdist.ErrCodeOverloaded, "gate shutting down")}
		default:
			return
		}
	}
}

// flush drains everything queued right now, groups by shape, chunks at
// MaxBatch and dispatches each chunk concurrently.
func (co *coalescer) flush() {
	var all []*pending
drain:
	for {
		select {
		case p := <-co.queueC:
			all = append(all, p)
		default:
			break drain
		}
	}
	if len(all) == 0 {
		return
	}
	// Group by shape, preserving arrival order within a group.
	groups := make(map[string][]*pending)
	var order []string
	for _, p := range all {
		if _, seen := groups[p.shape]; !seen {
			order = append(order, p.shape)
		}
		groups[p.shape] = append(groups[p.shape], p)
	}
	for _, shape := range order {
		group := groups[shape]
		for len(group) > 0 {
			n := len(group)
			if n > co.g.cfg.MaxBatch {
				n = co.g.cfg.MaxBatch
			}
			chunk := group[:n]
			group = group[n:]
			go co.dispatch(chunk)
		}
	}
}

// dispatch drives one shape-homogeneous chunk through a single
// Cluster.RetrieveBatch and demultiplexes results to each waiter.
func (co *coalescer) dispatch(chunk []*pending) {
	pms := make([]fxdist.PartialMatch, len(chunk))
	callers := make([]string, len(chunk))
	for i, p := range chunk {
		pms[i] = p.pm
		callers[i] = p.tenant
	}
	co.g.batches.Add(1)
	if len(chunk) > 1 {
		co.g.coalescedQ.Add(uint64(len(chunk)))
		co.g.metrics.coalesced(uint64(len(chunk)))
	}
	co.g.metrics.batches.Inc()
	// The dispatch runs under its own context: individual waiters may
	// have given up, but the batch serves whoever is still listening.
	ctx := fxdist.ContextWithCallers(context.Background(), callers)
	results, err := co.g.cfg.Cluster.RetrieveBatch(ctx, pms)
	per := splitBatchError(err, len(chunk))
	for i, p := range chunk {
		out := outcome{batch: len(chunk), err: per[i]}
		if results != nil {
			out.res = results[i]
		}
		p.done <- out
	}
}
