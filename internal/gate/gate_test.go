package gate

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestShapeOf(t *testing.T) {
	s := "x"
	cases := []struct {
		pm   []*string
		want string
	}{
		{[]*string{nil, nil, nil}, "***"},
		{[]*string{&s, nil, &s}, "s*s"},
		{[]*string{&s}, "s"},
		{nil, ""},
	}
	for _, tc := range cases {
		if got := shapeOf(tc.pm); got != tc.want {
			t.Fatalf("shapeOf = %q, want %q", got, tc.want)
		}
	}
}

func TestTokenBucket(t *testing.T) {
	tn := newTenant(TenantConfig{Name: "t", APIKey: "k", RatePerSec: 10, Burst: 2})
	now := time.Unix(1000, 0)
	if ok, _ := tn.take(now, 1); !ok {
		t.Fatal("first token refused")
	}
	if ok, _ := tn.take(now, 1); !ok {
		t.Fatal("burst token refused")
	}
	ok, retry := tn.take(now, 1)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry hint %v, want ~100ms", retry)
	}
	// 100ms at 10/s refills one token.
	if ok, _ := tn.take(now.Add(100*time.Millisecond), 1); !ok {
		t.Fatal("refilled token refused")
	}
	// Unlimited tenants never refuse.
	free := newTenant(TenantConfig{Name: "f", APIKey: "k2"})
	for i := 0; i < 100; i++ {
		if ok, _ := free.take(now, 5); !ok {
			t.Fatal("unlimited tenant refused")
		}
	}
}

func TestInFlightQuota(t *testing.T) {
	tn := newTenant(TenantConfig{Name: "t", APIKey: "k", MaxInFlight: 2})
	if !tn.acquire() || !tn.acquire() {
		t.Fatal("slots under quota refused")
	}
	if tn.acquire() {
		t.Fatal("slot over quota admitted")
	}
	tn.release()
	if !tn.acquire() {
		t.Fatal("released slot not reusable")
	}
}

func TestSplitBatchError(t *testing.T) {
	cause0 := errors.New("boom0")
	cause2 := errors.New("boom2")
	joined := errors.Join(
		fmt.Errorf("query %d: %w", 0, cause0),
		fmt.Errorf("query %d: %w", 2, cause2),
	)
	per := splitBatchError(joined, 3)
	if !errors.Is(per[0], cause0) {
		t.Fatalf("per[0] = %v", per[0])
	}
	if per[1] != nil {
		t.Fatalf("per[1] = %v, want nil", per[1])
	}
	if !errors.Is(per[2], cause2) {
		t.Fatalf("per[2] = %v", per[2])
	}
	if per := splitBatchError(nil, 2); per[0] != nil || per[1] != nil {
		t.Fatal("nil error should split to nils")
	}
	// Unattributable errors land on every unresolved slot.
	per = splitBatchError(errors.New("global failure"), 2)
	if per[0] == nil || per[1] == nil {
		t.Fatalf("global failure not fanned out: %v", per)
	}
}

func TestTenantSetValidation(t *testing.T) {
	if _, err := newTenantSet([]TenantConfig{{Name: "", APIKey: "k"}}); err == nil {
		t.Fatal("nameless tenant accepted")
	}
	if _, err := newTenantSet([]TenantConfig{
		{Name: "a", APIKey: "k"}, {Name: "a", APIKey: "k2"},
	}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := newTenantSet([]TenantConfig{
		{Name: "a", APIKey: "k"}, {Name: "b", APIKey: "k"},
	}); err == nil {
		t.Fatal("duplicate key accepted")
	}
	ts, err := newTenantSet([]TenantConfig{{Name: "a", APIKey: "k"}})
	if err != nil {
		t.Fatal(err)
	}
	if ts.authenticate("k") == nil {
		t.Fatal("valid key refused")
	}
	if ts.authenticate("wrong") != nil || ts.authenticate("") != nil {
		t.Fatal("invalid key admitted")
	}
}
