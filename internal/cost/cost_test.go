package cost

import (
	"testing"

	"fxdist/internal/field"
)

func TestCyclesArithmetic(t *testing.T) {
	s := Sequence{XORs: 2, ADDs: 1, ANDs: 1, MULs: 1, Shifts: []int{2, 3}}
	// MC68000: 2*8 + 4 + 4 + 70 + (6+4) + (6+6) = 116
	if got := MC68000.Cycles(s); got != 116 {
		t.Errorf("MC68000 cycles = %d, want 116", got)
	}
	// i80286: 2*2 + 2 + 2 + 21 + (5+2) + (5+3) = 44
	if got := I80286.Cycles(s); got != 44 {
		t.Errorf("i80286 cycles = %d, want 44", got)
	}
}

func TestSequenceShapes(t *testing.T) {
	g := GDMSequence(6)
	if g.MULs != 6 || g.ADDs != 5 || g.ANDs != 1 || g.XORs != 0 {
		t.Errorf("GDM sequence = %+v", g)
	}
	m := ModuloSequence(6)
	if m.ADDs != 5 || m.ANDs != 1 || m.MULs != 0 {
		t.Errorf("Modulo sequence = %+v", m)
	}
}

func TestFXSequenceByKind(t *testing.T) {
	// Plan: I, U (d1=4 -> shift 2), IU1 (d1=4 -> shift 2 + 1 xor),
	// IU2 on size-2 field with M=32 (d1=16 shift 4, d2=8 shift 3, 2 xors).
	plan := field.MustPlan([]int{8, 8, 8, 2}, 32,
		field.WithKinds([]field.Kind{field.I, field.U, field.IU1, field.IU2}))
	s := FXSequence(plan)
	if s.XORs != 1+2+3 { // IU1: 1, IU2: 2, combine: 3
		t.Errorf("XORs = %d, want 6", s.XORs)
	}
	if len(s.Shifts) != 4 {
		t.Fatalf("Shifts = %v, want 4 entries", s.Shifts)
	}
	if s.Shifts[0] != 2 || s.Shifts[1] != 2 || s.Shifts[2] != 4 || s.Shifts[3] != 3 {
		t.Errorf("Shift widths = %v", s.Shifts)
	}
	if s.ANDs != 1 || s.MULs != 0 || s.ADDs != 0 {
		t.Errorf("sequence = %+v", s)
	}
}

// Degenerate IU2 (F*F >= M) behaves like IU1 in the instruction stream.
func TestFXSequenceDegenerateIU2(t *testing.T) {
	plan := field.MustPlan([]int{8, 8}, 16,
		field.WithKinds([]field.Kind{field.I, field.IU2}))
	s := FXSequence(plan)
	if s.XORs != 1+1 || len(s.Shifts) != 1 {
		t.Errorf("degenerate IU2 sequence = %+v", s)
	}
}

// The paper's claim: on MC68000 the FX computation takes roughly a third
// of GDM's (the multiply dominates), and Modulo is cheaper than FX.
func TestPaperRatioClaim(t *testing.T) {
	plan := field.MustPlan([]int{8, 8, 8, 8, 8, 8}, 32,
		field.WithStrategy(field.RoundRobin), field.WithFamily(field.FamilyIU1))
	rows := Compare(MC68000, plan)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	fx, gdm, md := rows[0], rows[1], rows[2]
	if fx.Method != "FX" || gdm.Method != "GDM" || md.Method != "Modulo" {
		t.Fatalf("row order wrong: %v", rows)
	}
	if gdm.VsGDM != 1.0 {
		t.Errorf("GDM ratio = %f", gdm.VsGDM)
	}
	if fx.VsGDM > 0.45 {
		t.Errorf("FX/GDM cycle ratio = %.2f, paper claims about one third", fx.VsGDM)
	}
	if fx.VsGDM < 0.1 {
		t.Errorf("FX/GDM cycle ratio = %.2f suspiciously low", fx.VsGDM)
	}
	if md.Cycles >= fx.Cycles {
		t.Errorf("Modulo (%d cycles) should be cheaper than FX (%d)", md.Cycles, fx.Cycles)
	}
	// Same ordering on the 80286.
	rows286 := Compare(I80286, plan)
	if !(rows286[2].Cycles < rows286[0].Cycles && rows286[0].Cycles < rows286[1].Cycles) {
		t.Errorf("i80286 ordering violated: %v", rows286)
	}
}

func TestComparisonString(t *testing.T) {
	c := Comparison{CPU: "MC68000", Method: "FX", Cycles: 100, VsGDM: 0.25}
	if got := c.String(); got != "MC68000  FX        100 cycles  0.25x GDM" {
		t.Errorf("String = %q", got)
	}
}
