// Package cost reproduces the paper's §5.2.2 CPU computation time
// comparison. The paper argues that in main-memory databases the address
// computation (bucket distribution and inverse mapping) dominates, and
// compares optimized instruction sequences on MC68000 cycle counts:
// XOR 8, ADD 4, AND 4, n-bit shift 6+2n, multiply 70. FX needs only xors,
// shifts (its multipliers are powers of two) and a final AND; GDM needs a
// genuine multiply per field because its multipliers are primes or odd
// numbers; Modulo needs only adds and an AND.
package cost

import (
	"fmt"

	"fxdist/internal/bitsx"
	"fxdist/internal/field"
)

// CPU holds per-instruction cycle counts.
type CPU struct {
	Name string
	// XOR, ADD, AND, MUL are register-to-register cycle counts.
	XOR, ADD, AND, MUL int
	// An n-bit shift costs ShiftBase + ShiftPerBit*n cycles.
	ShiftBase, ShiftPerBit int
}

// MC68000 is the cycle table the paper quotes: XOR 8, ADD 4, AND 4,
// shift 6+2n, MUL 70.
var MC68000 = CPU{Name: "MC68000", XOR: 8, ADD: 4, AND: 4, MUL: 70, ShiftBase: 6, ShiftPerBit: 2}

// I80286 approximates the Intel 80286 the paper mentions ("the ratios of
// clock cycles between different operations are almost similar to those of
// MC68000"): ALU ops 2 cycles, shifts 5+n, 16-bit multiply 21.
var I80286 = CPU{Name: "i80286", XOR: 2, ADD: 2, AND: 2, MUL: 21, ShiftBase: 5, ShiftPerBit: 1}

// Sequence is the instruction mix of one bucket-address computation.
type Sequence struct {
	Method string
	XORs   int
	ADDs   int
	ANDs   int
	MULs   int
	// Shifts lists the bit widths of each shift instruction.
	Shifts []int
}

// Cycles evaluates the sequence on the CPU.
func (c CPU) Cycles(s Sequence) int {
	total := s.XORs*c.XOR + s.ADDs*c.ADD + s.ANDs*c.AND + s.MULs*c.MUL
	for _, n := range s.Shifts {
		total += c.ShiftBase + c.ShiftPerBit*n
	}
	return total
}

// FXSequence returns the instruction mix to compute one FX device number
// under the given transformation plan: per field, the transform's shifts
// and xors (multiplications by d1/d2 become shifts because the multipliers
// are powers of two); n-1 xors to combine the fields; one final AND for
// T_M.
func FXSequence(plan field.Plan) Sequence {
	s := Sequence{Method: "FX"}
	for _, fn := range plan.Funcs {
		switch fn.Kind() {
		case field.I:
			// No work: the hashed value is used as is.
		case field.U:
			s.Shifts = append(s.Shifts, bitsx.Log2(fn.D1()))
		case field.IU1:
			s.Shifts = append(s.Shifts, bitsx.Log2(fn.D1()))
			s.XORs++
		case field.IU2:
			s.Shifts = append(s.Shifts, bitsx.Log2(fn.D1()))
			s.XORs++
			if fn.D2() > 0 {
				s.Shifts = append(s.Shifts, bitsx.Log2(fn.D2()))
				s.XORs++
			}
		}
	}
	s.XORs += len(plan.Funcs) - 1 // combine fields
	s.ANDs++                      // T_M
	return s
}

// GDMSequence returns the instruction mix for GDM over n fields: one
// multiply per field (multipliers are primes/odd, so no shift trick),
// n-1 adds, and an AND implementing mod M for power-of-two M.
func GDMSequence(n int) Sequence {
	return Sequence{Method: "GDM", MULs: n, ADDs: n - 1, ANDs: 1}
}

// ModuloSequence returns the instruction mix for Modulo over n fields:
// n-1 adds and a final AND.
func ModuloSequence(n int) Sequence {
	return Sequence{Method: "Modulo", ADDs: n - 1, ANDs: 1}
}

// Comparison is one row of the §5.2.2 comparison for a CPU.
type Comparison struct {
	CPU    string
	Method string
	Cycles int
	VsGDM  float64 // this method's cycles / GDM's cycles
}

// Compare evaluates FX (under plan), GDM and Modulo on the CPU and reports
// cycle counts and ratios against GDM — the paper's "FX takes about one
// third of GDM" claim is the FX row's VsGDM.
func Compare(c CPU, plan field.Plan) []Comparison {
	n := len(plan.Funcs)
	seqs := []Sequence{FXSequence(plan), GDMSequence(n), ModuloSequence(n)}
	gdm := c.Cycles(seqs[1])
	out := make([]Comparison, len(seqs))
	for i, s := range seqs {
		cy := c.Cycles(s)
		out[i] = Comparison{CPU: c.Name, Method: s.Method, Cycles: cy, VsGDM: float64(cy) / float64(gdm)}
	}
	return out
}

// String renders a comparison row.
func (cm Comparison) String() string {
	return fmt.Sprintf("%-8s %-7s %5d cycles  %.2fx GDM", cm.CPU, cm.Method, cm.Cycles, cm.VsGDM)
}
