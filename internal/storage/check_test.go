package storage

import (
	"strings"
	"testing"

	"fxdist/internal/mkhash"
)

func TestCheckHealthyCluster(t *testing.T) {
	file, fx := durableFixture(t, 300, 4)
	c, err := CreateDurable(t.TempDir(), file, fx, MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	report, err := c.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Ok() {
		t.Fatalf("healthy cluster failed check: %v", report.Problems)
	}
	if report.Records != 300 || report.Devices != 4 {
		t.Errorf("report = %+v", report)
	}
	sum := 0
	for _, n := range report.DeviceRecords {
		sum += n
	}
	if sum != 300 {
		t.Errorf("device records sum %d", sum)
	}
}

// Opening a cluster without the custom hash the file was built with must
// be caught by Check as mishashed records.
func TestCheckDetectsHashMismatch(t *testing.T) {
	custom := func(v string) uint64 { return uint64(len(v)) * 7 }
	file := mkhash.MustNew(mkhash.Schema{
		Fields: []string{"make", "model", "year"},
		Depths: []int{2, 3, 1},
	}, mkhash.WithHash(0, custom))
	for i := 0; i < 100; i++ {
		rec := mkhash.Record{
			strings.Repeat("x", i%9),
			"model",
			"1988",
		}
		if err := file.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	fs, _ := file.FileSystem(4)
	dir := t.TempDir()
	c, err := CreateDurable(dir, file, mustBasicFX(t, fs), MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Reopen WITHOUT the custom hash: placement no longer matches.
	re, err := OpenDurable(dir, MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	report, err := re.Check()
	if err != nil {
		t.Fatal(err)
	}
	if report.MishashedRecords == 0 {
		t.Error("hash mismatch not detected")
	}
	if report.Ok() {
		t.Error("report claims OK despite mishashed records")
	}
	// With the right hash option, the check passes.
	good, err := OpenDurable(dir, MainMemory, WithFileOptions(mkhash.WithHash(0, custom)))
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	report, err = good.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Ok() {
		t.Errorf("correctly-opened cluster failed check: %v", report.Problems)
	}
}

func TestCheckProblemCap(t *testing.T) {
	var r CheckReport
	for i := 0; i < 50; i++ {
		r.problem("p%d", i)
	}
	if len(r.Problems) != 20 {
		t.Errorf("problems = %d, want capped at 20", len(r.Problems))
	}
}
