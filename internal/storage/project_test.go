package storage

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"fxdist/internal/butterfly"
	"fxdist/internal/mkhash"
)

func TestProjectValidation(t *testing.T) {
	file := carFile(t, 50)
	c := newCluster(t, file, 4)
	if _, err := c.Project(nil, nil); err == nil {
		t.Error("empty field list accepted")
	}
	if _, err := c.Project([]int{3}, nil); err == nil {
		t.Error("out-of-range field accepted")
	}
	if _, err := c.Project([]int{0, 0}, nil); err == nil {
		t.Error("repeated field accepted")
	}
	nw, _ := butterfly.New(8) // cluster has 4 devices
	if _, err := c.Project([]int{0}, nw); err == nil {
		t.Error("mismatched network accepted")
	}
}

// The parallel projection must equal the single-threaded reference
// projection with duplicate elimination.
func TestProjectMatchesReference(t *testing.T) {
	file := carFile(t, 500)
	c := newCluster(t, file, 8)
	for _, fields := range [][]int{{0}, {2}, {0, 2}, {1, 0, 2}} {
		res, err := c.Project(fields, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: project + dedup over a full scan.
		want := map[string]bool{}
		all, _ := file.Search(make(mkhash.PartialMatch, 3))
		for _, r := range all {
			row := make([]string, len(fields))
			for i, f := range fields {
				row[i] = r[f]
			}
			want[strings.Join(row, "\x00")] = true
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("fields %v: %d rows, want %d", fields, len(res.Rows), len(want))
		}
		for _, row := range res.Rows {
			if !want[strings.Join(row, "\x00")] {
				t.Fatalf("fields %v: spurious row %v", fields, row)
			}
		}
		// Sorted output.
		keys := make([]string, len(res.Rows))
		for i, row := range res.Rows {
			keys[i] = strings.Join(row, "\x00")
		}
		if !sort.StringsAreSorted(keys) {
			t.Error("rows not sorted")
		}
	}
}

func TestProjectDeterministic(t *testing.T) {
	file := carFile(t, 300)
	c := newCluster(t, file, 4)
	a, err := c.Project([]int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Project([]int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Error("projection not deterministic")
	}
}

func TestProjectWithNetwork(t *testing.T) {
	file := carFile(t, 400)
	c := newCluster(t, file, 8)
	nw, err := butterfly.New(8)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.Project([]int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	networked, err := c.Project([]int{0}, nw)
	if err != nil {
		t.Fatal(err)
	}
	if plain.GatherCycles != 0 {
		t.Error("gather cycles without a network")
	}
	if networked.GatherCycles <= 0 {
		t.Error("no gather cycles with a network")
	}
	if networked.Response <= plain.Response {
		t.Error("network gather should add to the response time")
	}
	if !reflect.DeepEqual(plain.Rows, networked.Rows) {
		t.Error("network changed the projection result")
	}
	total := 0
	for _, n := range networked.DeviceRows {
		total += n
	}
	// Gather serialises at the sink: cycles >= total local rows.
	if networked.GatherCycles < total {
		t.Errorf("gather cycles %d below message count %d", networked.GatherCycles, total)
	}
}

func TestProjectSingleDevicePerRowCounts(t *testing.T) {
	// Two devices, known contents: device rows must count local distinct
	// projections.
	file := mkhash.MustNew(mkhash.Schema{Fields: []string{"a", "b"}, Depths: []int{1, 1}})
	for i := 0; i < 20; i++ {
		file.Insert(mkhash.Record{fmt.Sprintf("a%d", i%2), fmt.Sprintf("b%d", i%4)}) //nolint:errcheck
	}
	fs, _ := file.FileSystem(2)
	fx, err := NewCluster(file, mustBasicFX(t, fs), MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fx.Project([]int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, n := range res.DeviceRows {
		sum += n
	}
	if sum < len(res.Rows) {
		t.Errorf("device rows %v sum below global distinct %d", res.DeviceRows, len(res.Rows))
	}
	if len(res.Rows) != 2 { // a0, a1
		t.Errorf("distinct projections = %d, want 2", len(res.Rows))
	}
}
