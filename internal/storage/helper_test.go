package storage

import (
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/mkhash"
	"fxdist/internal/persist"
)

// persistSaveFile is a test seam around persist.SaveFile with no
// allocator.
func persistSaveFile(path string, schemaOnly *mkhash.File) error {
	return persist.SaveFile(path, schemaOnly, nil)
}

// mustBasicFX builds a Basic FX allocator or fails the test.
func mustBasicFX(t testing.TB, fs decluster.FileSystem) *decluster.FX {
	t.Helper()
	fx, err := decluster.NewBasicFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	return fx
}
