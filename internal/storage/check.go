package storage

import (
	"fmt"

	"fxdist/internal/mkhash"
)

// CheckReport summarises an integrity verification of a durable cluster.
type CheckReport struct {
	// Devices is the device count; Records the total live records.
	Devices, Records int
	// DeviceRecords[i] is device i's live record count.
	DeviceRecords []int
	// MisplacedRecords counts records stored on a device other than the
	// one the allocator assigns their bucket to (must be 0).
	MisplacedRecords int
	// MishashedRecords counts records whose field values no longer hash to
	// the bucket they are stored under (indicates a hash-function mismatch
	// at open time, e.g. missing WithHash options; must be 0).
	MishashedRecords int
	// Problems lists human-readable descriptions of everything found,
	// capped at 20 entries.
	Problems []string
}

// Ok reports whether the check found no problems.
func (r CheckReport) Ok() bool { return len(r.Problems) == 0 }

func (r *CheckReport) problem(format string, args ...any) {
	if len(r.Problems) < 20 {
		r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
	}
}

// Check verifies a durable cluster's invariants: every stored record (a)
// hashes to the bucket it is filed under and (b) lives on the device its
// bucket's allocator assignment names. Log-level integrity (CRC framing)
// is already enforced by pagestore recovery at open time; Check covers
// the placement layer above it.
func (c *DurableCluster) Check() (CheckReport, error) {
	report := CheckReport{
		Devices:       c.fs.M,
		DeviceRecords: make([]int, c.fs.M),
	}
	var coords []int
	for dev, store := range c.stores {
		if store == nil {
			continue
		}
		err := store.EachBucket(func(bucket uint32) error {
			coords = c.fs.Coords(int(bucket), coords[:0])
			if want := c.alloc.Device(coords); want != dev {
				report.problem("bucket %v stored on device %d, allocator assigns %d", coords, dev, want)
			}
			return store.Scan(bucket, func(rec mkhash.Record) error {
				report.DeviceRecords[dev]++
				report.Records++
				actual, err := c.schema.BucketOf(rec)
				if err != nil {
					report.problem("device %d bucket %v: record arity %d", dev, coords, len(rec))
					report.MishashedRecords++
					return nil
				}
				if c.fs.Linear(actual) != int(bucket) {
					report.MishashedRecords++
					report.problem("device %d: record hashes to bucket %v but is filed under %v", dev, actual, coords)
					return nil
				}
				if want := c.alloc.Device(actual); want != dev {
					report.MisplacedRecords++
				}
				return nil
			})
		})
		if err != nil {
			return CheckReport{}, fmt.Errorf("storage: check device %d: %w", dev, err)
		}
	}
	return report, nil
}
