package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"fxdist/internal/butterfly"
	"fxdist/internal/mkhash"
)

// ProjectResult reports a parallel projection with duplicate elimination —
// the relational operator the paper's citation [RoJa87] ran on the
// Butterfly machine.
type ProjectResult struct {
	// Rows are the distinct projected tuples, sorted lexicographically
	// (determinism for tests and callers).
	Rows []mkhash.Record
	// DeviceRows[i] is device i's locally deduplicated row count — the
	// messages it must ship to the front end.
	DeviceRows []int
	// ScanTime is the slowest device's local scan+dedup time.
	ScanTime time.Duration
	// GatherCycles is the simulated interconnect cost of collecting the
	// local results at the front end (0 when no network is attached).
	GatherCycles int
	// Response combines scan time and, when a network is attached, the
	// gather phase at one cycle per CostModel.PerRecord.
	Response time.Duration
}

// Project computes the duplicate-free projection of the whole file onto
// the given field indices, in parallel: every device scans its local
// buckets and deduplicates locally, then the local results are merged.
// When nw is non-nil, the merge's gather phase is costed on the simulated
// Butterfly interconnect (local row counts become messages to node 0).
func (c *Cluster) Project(fields []int, nw *butterfly.Network) (ProjectResult, error) {
	if len(fields) == 0 {
		return ProjectResult{}, fmt.Errorf("storage: projection needs at least one field")
	}
	seen := map[int]bool{}
	for _, f := range fields {
		if f < 0 || f >= c.fs.NumFields() {
			return ProjectResult{}, fmt.Errorf("storage: projection field %d outside [0,%d)", f, c.fs.NumFields())
		}
		if seen[f] {
			return ProjectResult{}, fmt.Errorf("storage: projection field %d repeated", f)
		}
		seen[f] = true
	}
	if nw != nil && nw.Nodes() != c.fs.M {
		return ProjectResult{}, fmt.Errorf("storage: network has %d nodes, cluster %d devices", nw.Nodes(), c.fs.M)
	}

	m := c.fs.M
	res := ProjectResult{DeviceRows: make([]int, m)}
	locals := make([][]mkhash.Record, m)
	times := make([]time.Duration, m)
	var wg sync.WaitGroup
	for dev := 0; dev < m; dev++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			distinct := map[string]mkhash.Record{}
			scanned := 0
			for _, recs := range c.devs[dev].buckets {
				for _, r := range recs {
					scanned++
					row := make(mkhash.Record, len(fields))
					for i, f := range fields {
						row[i] = r[f]
					}
					distinct[strings.Join(row, "\x00")] = row
				}
			}
			rows := make([]mkhash.Record, 0, len(distinct))
			for _, row := range distinct {
				rows = append(rows, row)
			}
			locals[dev] = rows
			times[dev] = c.model.PerQuery + time.Duration(scanned)*c.model.PerRecord
		}(dev)
	}
	wg.Wait()

	global := map[string]mkhash.Record{}
	for dev, rows := range locals {
		res.DeviceRows[dev] = len(rows)
		if times[dev] > res.ScanTime {
			res.ScanTime = times[dev]
		}
		for _, row := range rows {
			global[strings.Join(row, "\x00")] = row
		}
	}
	for _, row := range global {
		res.Rows = append(res.Rows, row)
	}
	sort.Slice(res.Rows, func(a, b int) bool {
		return strings.Join(res.Rows[a], "\x00") < strings.Join(res.Rows[b], "\x00")
	})

	res.Response = res.ScanTime
	if nw != nil {
		msgs, err := nw.Gather(res.DeviceRows, 0)
		if err != nil {
			return ProjectResult{}, err
		}
		stats, err := nw.Run(msgs)
		if err != nil {
			return ProjectResult{}, err
		}
		res.GatherCycles = stats.Cycles
		res.Response += time.Duration(stats.Cycles) * c.model.PerRecord
	}
	return res, nil
}
