package storage

import (
	"fxdist/internal/engine"
	"fxdist/internal/mkhash"
	"fxdist/internal/resilience"
	"fxdist/internal/retry"
)

// Option configures a cluster constructor (NewCluster, NewReplicated,
// CreateDurable, OpenDurable) beyond its required arguments.
type Option func(*settings)

type settings struct {
	retry    *retry.Config
	injector *resilience.Injector
	fileOpts []mkhash.Option
	noPool   bool
	arena    bool
}

func newSettings(opts []Option) *settings {
	s := &settings{}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// WithRetry runs the cluster's retrievals under the adaptive retry
// layer: per-device circuit breakers, backoff budgets, same-device
// hedging, and (when cfg.Partial) graceful degraded results.
func WithRetry(cfg retry.Config) Option {
	return func(s *settings) { s.retry = &cfg }
}

// WithInjector fronts every device with a fault injector's schedule
// (chaos testing the local backends at the engine Device seam).
func WithInjector(in *resilience.Injector) Option {
	return func(s *settings) { s.injector = in }
}

// WithFileOptions passes schema options (e.g. mkhash.WithHash) through
// to OpenDurable's metadata load; other constructors ignore them.
func WithFileOptions(opts ...mkhash.Option) Option {
	return func(s *settings) { s.fileOpts = append(s.fileOpts, opts...) }
}

// WithoutMemPool disables the cluster's buffer pools: hit frames,
// fan-out scratch, page frames, and decode arenas all fall back to
// plain allocation. The A/B switch for the differential tests and for
// ruling pooling out when chasing a corruption bug.
func WithoutMemPool() Option {
	return func(s *settings) { s.noPool = true }
}

// WithArenaResults makes retrievals lease their result slabs from the
// pools: Result.Records (and, on the durable backend, the field strings
// they point at) stay valid only until Result.Release returns them for
// reuse. Callers that never Release simply fall back to the garbage
// collector. Ignored under WithoutMemPool.
func WithArenaResults() Option {
	return func(s *settings) { s.arena = true }
}

// engineConfig stamps the pooling choices onto an engine config.
func (s *settings) engineConfig(cfg engine.Config) engine.Config {
	cfg.NoPool = s.noPool
	cfg.ArenaResults = s.arena
	return cfg
}

// wrap applies the injector (if any) in front of the device set.
func (s *settings) wrap(devices []engine.Device) []engine.Device {
	if s.injector == nil {
		return devices
	}
	return s.injector.Wrap(devices)
}

// resilienceFor builds the engine's resilience bundle for one backend
// label. Hedge backups re-dispatch the same device — a second
// independent scan races the first; local backends hold no impersonable
// backup copy (the replicated cluster's successor routes buckets by the
// placement's Server decision, so asking it directly would answer the
// wrong subset).
func (s *settings) resilienceFor(backend string, devices []engine.Device) engine.Resilience {
	if s.retry == nil {
		return engine.Resilience{}
	}
	ctrl := retry.NewController(backend, *s.retry)
	backup := func(dev int) engine.Device { return devices[dev] }
	return ctrl.Resilience(nil, backup)
}
