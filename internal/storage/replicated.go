package storage

import (
	"context"

	"fxdist/internal/audit"
	"fxdist/internal/decluster"
	"fxdist/internal/engine"
	"fxdist/internal/mempool"
	"fxdist/internal/mkhash"
	"fxdist/internal/obs"
	"fxdist/internal/plancache"
	"fxdist/internal/query"
	"fxdist/internal/replica"
	"fxdist/internal/telemetry"
)

// ReplicatedCluster is a simulated parallel cluster with chained
// declustering: every bucket is stored on its primary device (the
// allocator's choice) and on the ring successor. Devices can fail and be
// restored; retrieval routes each qualified bucket to the device the
// failover policy selects and keeps answering with no data loss through
// any single failure (and any non-adjacent multiple failure).
type ReplicatedCluster struct {
	file      *mkhash.File
	fs        decluster.FileSystem
	placement *replica.Placement
	im        *query.InverseMapper
	// devs[d].buckets holds both d's primary buckets and its backup
	// copies (primaries of d-1).
	devs []*device
	eng  *engine.Executor
	hits *mempool.SlicePool[mkhash.Record] // nil under WithoutMemPool
}

// NewReplicated distributes file's buckets over the allocator's devices
// with primary and backup copies.
func NewReplicated(file *mkhash.File, alloc decluster.GroupAllocator, mode replica.Mode, model CostModel, opts ...Option) (*ReplicatedCluster, error) {
	fs := alloc.FileSystem()
	if err := checkAllocator(file, fs); err != nil {
		return nil, err
	}
	st := newSettings(opts)
	c := &ReplicatedCluster{
		file:      file,
		fs:        fs,
		placement: replica.New(alloc, mode),
		im:        query.NewInverseMapper(alloc),
		devs:      make([]*device, fs.M),
		hits:      engine.HitsPool(!st.noPool),
	}
	for i := range c.devs {
		c.devs[i] = &device{buckets: make(map[int][]mkhash.Record)}
	}
	file.EachBucket(func(coords []int, records []mkhash.Record) {
		idx := fs.Linear(coords)
		prim := c.placement.Primary(coords)
		back := c.placement.Backup(coords)
		c.devs[prim].buckets[idx] = records
		c.devs[back].buckets[idx] = records
	})
	devices := make([]engine.Device, fs.M)
	for dev := range devices {
		devices[dev] = replDevice{c: c, dev: dev}
	}
	devices = st.wrap(devices)
	eng, err := engine.New(st.engineConfig(engine.Config{
		Schema:     file,
		FS:         fs,
		Devices:    devices,
		Model:      model,
		Observer:   engine.NewClusterMetrics("replicated", fs.M),
		Tracer:     obs.DefaultTracer(),
		Span:       "storage.retrieve",
		Audit:      audit.For("replicated"),
		Alloc:      alloc,
		Plans:      plancache.New("replicated"),
		Profile:    obs.CostProfilerFor("replicated"),
		Flight:     obs.FlightRecorderFor("replicated"),
		Events:     telemetry.LogFor("replicated"),
		Resilience: st.resilienceFor("replicated", devices),
	}))
	if err != nil {
		return nil, err
	}
	c.eng = eng
	return c, nil
}

// replDevice adapts one replicated device to the engine's Device
// contract: its candidate buckets are its own primaries plus the backups
// it holds (primaries of the ring predecessor), filtered by the failover
// policy's routing decision. A failed device reports itself idle, so the
// cost model charges it nothing while its ring successor absorbs its
// share.
type replDevice struct {
	c   *ReplicatedCluster
	dev int
}

func (d replDevice) Scan(ctx context.Context, q query.Query, pm mkhash.PartialMatch) (engine.Answer, error) {
	c := d.c
	if c.placement.Failed(d.dev) {
		return engine.Answer{Idle: true}, nil
	}
	var ans engine.Answer
	store := c.devs[d.dev]
	var err error
	serve := func(coords []int) {
		if err != nil {
			return
		}
		if err = ctx.Err(); err != nil {
			return
		}
		if c.placement.Server(coords) != d.dev {
			return
		}
		ans.Buckets++
		for _, r := range store.buckets[c.fs.Linear(coords)] {
			ans.Records++
			if engine.Matches(pm, r) {
				ans.Hits = c.hits.AppendOne(ans.Hits, r)
			}
		}
	}
	eachOnDevice(ctx, c.im, q, d.dev, serve)
	prev := (d.dev - 1 + c.fs.M) % c.fs.M
	eachOnDevice(ctx, c.im, q, prev, serve)
	if err != nil {
		c.hits.Put(ans.Hits)
		return engine.Answer{}, err
	}
	return ans, nil
}

// Fail marks a device failed (see replica.Placement.Fail for the adjacency
// constraint).
func (c *ReplicatedCluster) Fail(dev int) error {
	if err := c.placement.Fail(dev); err != nil {
		return err
	}
	obs.Infof("storage: replicated cluster device %d marked failed; ring successor now serves its primaries", dev)
	return nil
}

// Restore marks a device healthy.
func (c *ReplicatedCluster) Restore(dev int) error {
	if err := c.placement.Restore(dev); err != nil {
		return err
	}
	obs.Infof("storage: replicated cluster device %d restored", dev)
	return nil
}

// Failed reports whether dev is failed.
func (c *ReplicatedCluster) Failed(dev int) bool { return c.placement.Failed(dev) }

// M returns the device count.
func (c *ReplicatedCluster) M() int { return c.fs.M }

// RetrieveContext answers a value-level partial match query under the
// current failure set through the shared engine executor. Each healthy
// device serves the qualified buckets the failover policy routes to it:
// a subset of its own primaries plus a subset of the backups it holds.
// This is the canonical retrieval entry point; Retrieve is its
// context.Background() wrapper.
func (c *ReplicatedCluster) RetrieveContext(ctx context.Context, pm mkhash.PartialMatch) (Result, error) {
	return c.eng.Retrieve(ctx, pm)
}

// Retrieve is RetrieveContext with context.Background().
func (c *ReplicatedCluster) Retrieve(pm mkhash.PartialMatch) (Result, error) {
	return c.RetrieveContext(context.Background(), pm)
}

// PlanCache returns the cluster's per-shape plan cache.
func (c *ReplicatedCluster) PlanCache() *plancache.Cache { return c.eng.Plans() }

// RetrieveBatch answers a batch of queries over the shared device pool;
// see engine.Executor.RetrieveBatch.
func (c *ReplicatedCluster) RetrieveBatch(ctx context.Context, pms []mkhash.PartialMatch) ([]Result, error) {
	return c.eng.RetrieveBatch(ctx, pms)
}

// StorageOverhead returns the total stored bucket copies divided by the
// number of non-empty buckets (2.0 for full chained replication).
func (c *ReplicatedCluster) StorageOverhead() float64 {
	copies := 0
	for _, d := range c.devs {
		copies += len(d.buckets)
	}
	nonEmpty := 0
	c.file.EachBucket(func([]int, []mkhash.Record) { nonEmpty++ })
	if nonEmpty == 0 {
		return 0
	}
	return float64(copies) / float64(nonEmpty)
}
