package storage

import (
	"fmt"
	"sync"
	"time"

	"fxdist/internal/decluster"
	"fxdist/internal/mkhash"
	"fxdist/internal/obs"
	"fxdist/internal/query"
	"fxdist/internal/replica"
)

// ReplicatedCluster is a simulated parallel cluster with chained
// declustering: every bucket is stored on its primary device (the
// allocator's choice) and on the ring successor. Devices can fail and be
// restored; retrieval routes each qualified bucket to the device the
// failover policy selects and keeps answering with no data loss through
// any single failure (and any non-adjacent multiple failure).
type ReplicatedCluster struct {
	file      *mkhash.File
	fs        decluster.FileSystem
	placement *replica.Placement
	im        *query.InverseMapper
	model     CostModel
	// devs[d].buckets holds both d's primary buckets and its backup
	// copies (primaries of d-1).
	devs    []*device
	metrics clusterMetrics
}

// NewReplicated distributes file's buckets over the allocator's devices
// with primary and backup copies.
func NewReplicated(file *mkhash.File, alloc decluster.GroupAllocator, mode replica.Mode, model CostModel) (*ReplicatedCluster, error) {
	fs := alloc.FileSystem()
	sizes := file.Sizes()
	if len(sizes) != fs.NumFields() {
		return nil, fmt.Errorf("storage: allocator has %d fields, file has %d", fs.NumFields(), len(sizes))
	}
	for i, f := range sizes {
		if fs.Sizes[i] != f {
			return nil, fmt.Errorf("storage: allocator field %d sized %d, file directory is %d", i, fs.Sizes[i], f)
		}
	}
	c := &ReplicatedCluster{
		file:      file,
		fs:        fs,
		placement: replica.New(alloc, mode),
		im:        query.NewInverseMapper(alloc),
		model:     model,
		devs:      make([]*device, fs.M),
		metrics:   newClusterMetrics("replicated", fs.M),
	}
	for i := range c.devs {
		c.devs[i] = &device{buckets: make(map[int][]mkhash.Record)}
	}
	file.EachBucket(func(coords []int, records []mkhash.Record) {
		idx := fs.Linear(coords)
		prim := c.placement.Primary(coords)
		back := c.placement.Backup(coords)
		c.devs[prim].buckets[idx] = records
		c.devs[back].buckets[idx] = records
	})
	return c, nil
}

// Fail marks a device failed (see replica.Placement.Fail for the adjacency
// constraint).
func (c *ReplicatedCluster) Fail(dev int) error {
	if err := c.placement.Fail(dev); err != nil {
		return err
	}
	obs.Infof("storage: replicated cluster device %d marked failed; ring successor now serves its primaries", dev)
	return nil
}

// Restore marks a device healthy.
func (c *ReplicatedCluster) Restore(dev int) error {
	if err := c.placement.Restore(dev); err != nil {
		return err
	}
	obs.Infof("storage: replicated cluster device %d restored", dev)
	return nil
}

// Failed reports whether dev is failed.
func (c *ReplicatedCluster) Failed(dev int) bool { return c.placement.Failed(dev) }

// M returns the device count.
func (c *ReplicatedCluster) M() int { return c.fs.M }

// Retrieve answers a value-level partial match query under the current
// failure set. Each healthy device serves the qualified buckets the
// failover policy routes to it: a subset of its own primaries plus a
// subset of the backups it holds. Devices work concurrently, as in
// Cluster.Retrieve.
func (c *ReplicatedCluster) Retrieve(pm mkhash.PartialMatch) (Result, error) {
	c.metrics.retrieves.Inc()
	t0 := time.Now()
	defer c.metrics.latency.ObserveSince(t0)
	q, err := c.file.BucketQuery(pm)
	if err != nil {
		c.metrics.errors.Inc()
		return Result{}, err
	}
	if err := q.Validate(c.fs); err != nil {
		c.metrics.errors.Inc()
		return Result{}, err
	}
	m := c.fs.M
	res := Result{
		DeviceBuckets: make([]int, m),
		DeviceRecords: make([]int, m),
		DeviceTime:    make([]time.Duration, m),
	}
	perDev := make([][]mkhash.Record, m)
	var wg sync.WaitGroup
	for dev := 0; dev < m; dev++ {
		if c.placement.Failed(dev) {
			continue
		}
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			d := c.devs[dev]
			buckets, records := 0, 0
			var hits []mkhash.Record
			serve := func(coords []int) {
				if c.placement.Server(coords) != dev {
					return
				}
				buckets++
				for _, r := range d.buckets[c.fs.Linear(coords)] {
					records++
					if matches(pm, r) {
						hits = append(hits, r)
					}
				}
			}
			// Candidates: this device's primary buckets, plus the
			// backups it holds (primaries of the ring predecessor).
			c.im.EachOnDevice(q, dev, serve)
			prev := (dev - 1 + m) % m
			c.im.EachOnDevice(q, prev, serve)
			res.DeviceBuckets[dev] = buckets
			res.DeviceRecords[dev] = records
			res.DeviceTime[dev] = c.model.PerQuery +
				time.Duration(buckets)*c.model.PerBucket +
				time.Duration(records)*c.model.PerRecord
			perDev[dev] = hits
		}(dev)
	}
	wg.Wait()
	c.metrics.observe(res.DeviceBuckets)
	for dev := 0; dev < m; dev++ {
		res.Records = append(res.Records, perDev[dev]...)
		res.TotalWork += res.DeviceTime[dev]
		if res.DeviceTime[dev] > res.Response {
			res.Response = res.DeviceTime[dev]
		}
		if res.DeviceBuckets[dev] > res.LargestResponseSize {
			res.LargestResponseSize = res.DeviceBuckets[dev]
		}
	}
	return res, nil
}

// StorageOverhead returns the total stored bucket copies divided by the
// number of non-empty buckets (2.0 for full chained replication).
func (c *ReplicatedCluster) StorageOverhead() float64 {
	copies := 0
	for _, d := range c.devs {
		copies += len(d.buckets)
	}
	nonEmpty := 0
	c.file.EachBucket(func([]int, []mkhash.Record) { nonEmpty++ })
	if nonEmpty == 0 {
		return 0
	}
	return float64(copies) / float64(nonEmpty)
}
