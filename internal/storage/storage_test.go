package storage

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"fxdist/internal/convolve"
	"fxdist/internal/decluster"
	"fxdist/internal/field"
	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

func carFile(t *testing.T, n int) *mkhash.File {
	t.Helper()
	f := mkhash.MustNew(mkhash.Schema{
		Fields: []string{"make", "model", "year"},
		Depths: []int{2, 3, 1},
	})
	for i := 0; i < n; i++ {
		r := mkhash.Record{
			fmt.Sprintf("make%d", i%7),
			fmt.Sprintf("model%d", i%23),
			fmt.Sprintf("%d", 1980+i%10),
		}
		if err := f.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func newCluster(t *testing.T, file *mkhash.File, m int) *Cluster {
	t.Helper()
	fs, err := file.FileSystem(m)
	if err != nil {
		t.Fatal(err)
	}
	fx := decluster.MustFX(fs)
	c, err := NewCluster(file, fx, MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	file := carFile(t, 10)
	wrong := decluster.MustFileSystem([]int{4, 8}, 4) // wrong arity
	if _, err := NewCluster(file, decluster.MustFX(wrong), MainMemory); err == nil {
		t.Error("arity mismatch accepted")
	}
	wrong2 := decluster.MustFileSystem([]int{4, 4, 2}, 4) // wrong size
	if _, err := NewCluster(file, decluster.MustFX(wrong2), MainMemory); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestClusterDistributesAllBuckets(t *testing.T) {
	file := carFile(t, 300)
	c := newCluster(t, file, 8)
	if c.M() != 8 {
		t.Errorf("M = %d", c.M())
	}
	total := 0
	for _, n := range c.DeviceBucketCounts() {
		total += n
	}
	nonEmpty := 0
	file.EachBucket(func([]int, []mkhash.Record) { nonEmpty++ })
	if total != nonEmpty {
		t.Errorf("devices hold %d buckets, file has %d non-empty", total, nonEmpty)
	}
	if c.Allocator().Name() == "" {
		t.Error("allocator not exposed")
	}
}

// Parallel retrieval must return exactly the records a single-device
// search returns.
func TestRetrieveMatchesSingleDeviceSearch(t *testing.T) {
	file := carFile(t, 500)
	c := newCluster(t, file, 8)
	specs := []map[string]string{
		{"make": "make3"},
		{"model": "model7"},
		{"make": "make1", "year": "1984"},
		{"make": "make0", "model": "model0", "year": "1980"},
		{},
		{"make": "no-such-make"},
	}
	for _, s := range specs {
		pm, err := file.Spec(s)
		if err != nil {
			t.Fatal(err)
		}
		want, err := file.Search(pm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Retrieve(pm)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Records) != len(want) {
			t.Fatalf("spec %v: cluster returned %d records, search returned %d",
				s, len(got.Records), len(want))
		}
		key := func(r mkhash.Record) string { return r[0] + "|" + r[1] + "|" + r[2] }
		var a, b []string
		for _, r := range got.Records {
			a = append(a, key(r))
		}
		for _, r := range want {
			b = append(b, key(r))
		}
		sort.Strings(a)
		sort.Strings(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("spec %v: record sets differ", s)
			}
		}
	}
}

func TestRetrieveCostAccounting(t *testing.T) {
	file := carFile(t, 200)
	c := newCluster(t, file, 4)
	pm, _ := file.Spec(map[string]string{"year": "1985"})
	res, err := c.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	// Response = max device time; TotalWork = sum.
	var sum, max time.Duration
	for dev, dt := range res.DeviceTime {
		wantTime := MainMemory.PerQuery +
			time.Duration(res.DeviceBuckets[dev])*MainMemory.PerBucket +
			time.Duration(res.DeviceRecords[dev])*MainMemory.PerRecord
		if dt != wantTime {
			t.Errorf("device %d time %v, want %v", dev, dt, wantTime)
		}
		sum += dt
		if dt > max {
			max = dt
		}
	}
	if res.Response != max || res.TotalWork != sum {
		t.Errorf("Response/TotalWork accounting wrong: %v/%v vs %v/%v",
			res.Response, res.TotalWork, max, sum)
	}
	// Largest response size = max device buckets.
	wantLRS := 0
	for _, b := range res.DeviceBuckets {
		if b > wantLRS {
			wantLRS = b
		}
	}
	if res.LargestResponseSize != wantLRS {
		t.Errorf("LargestResponseSize = %d, want %d", res.LargestResponseSize, wantLRS)
	}
	// Device bucket counts must equal the allocator's load vector.
	q, _ := file.BucketQuery(pm)
	loads := convolve.Loads(c.Allocator(), q)
	for dev, b := range res.DeviceBuckets {
		if b != loads[dev] {
			t.Errorf("device %d accessed %d buckets, load vector says %d", dev, b, loads[dev])
		}
	}
}

func TestRetrieveInvalidQuery(t *testing.T) {
	file := carFile(t, 10)
	c := newCluster(t, file, 4)
	if _, err := c.Retrieve(make(mkhash.PartialMatch, 1)); err == nil {
		t.Error("wrong arity accepted")
	}
}

// A better declustering method must give a faster simulated response on
// the same workload: FX(I,U) vs Modulo on the Table 2 file system.
func TestDeclusteringAffectsResponseTime(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 16)
	fx := decluster.MustFX(fs, field.WithKinds([]field.Kind{field.I, field.U}))
	md := decluster.NewModulo(fs)
	q := query.All(2)
	fxRes := Simulate(convolve.Loads(fx, q), ParallelDisk)
	mdRes := Simulate(convolve.Loads(md, q), ParallelDisk)
	if fxRes.LargestResponseSize != 1 || mdRes.LargestResponseSize != 4 {
		t.Fatalf("largest response sizes: FX=%d MD=%d", fxRes.LargestResponseSize, mdRes.LargestResponseSize)
	}
	if fxRes.Response >= mdRes.Response {
		t.Errorf("FX response %v not faster than Modulo %v", fxRes.Response, mdRes.Response)
	}
	// Total work is identical: declustering moves work, it doesn't remove it.
	fxBuckets, mdBuckets := 0, 0
	for _, l := range fxRes.Loads {
		fxBuckets += l
	}
	for _, l := range mdRes.Loads {
		mdBuckets += l
	}
	if fxBuckets != mdBuckets {
		t.Errorf("total buckets differ: %d vs %d", fxBuckets, mdBuckets)
	}
}

func TestSimulateEmptyDevices(t *testing.T) {
	res := Simulate([]int{0, 0, 3, 0}, MainMemory)
	if res.LargestResponseSize != 3 {
		t.Errorf("LargestResponseSize = %d", res.LargestResponseSize)
	}
	want := MainMemory.PerQuery + 3*MainMemory.PerBucket
	if res.Response != want {
		t.Errorf("Response = %v, want %v", res.Response, want)
	}
}
