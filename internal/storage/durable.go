package storage

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"fxdist/internal/audit"
	"fxdist/internal/decluster"
	"fxdist/internal/engine"
	"fxdist/internal/mempool"
	"fxdist/internal/mkhash"
	"fxdist/internal/obs"
	"fxdist/internal/pagestore"
	"fxdist/internal/persist"
	"fxdist/internal/plancache"
	"fxdist/internal/query"
	"fxdist/internal/telemetry"
)

// DurableCluster is the disk-backed counterpart of Cluster: every device
// persists its bucket partition in a crash-safe pagestore log, and the
// cluster's schema and allocator spec live in a metadata snapshot, so the
// whole deployment survives restarts via OpenDurable.
//
// Layout under dir:
//
//	meta.snap        schema + allocator spec (package persist format)
//	device-NNNN.log  one pagestore log per device
type DurableCluster struct {
	dir    string
	fs     decluster.FileSystem
	alloc  decluster.GroupAllocator
	im     *query.InverseMapper
	schema *mkhash.File // schema-only file used to hash queries
	stores []*pagestore.Store
	eng    *engine.Executor
	hits   *mempool.SlicePool[mkhash.Record] // nil under WithoutMemPool
	noPool bool
	arena  bool // lease decode arenas to results (WithArenaResults)
}

// openStores opens one pagestore log per device, disabling its frame
// pool under WithoutMemPool.
func (c *DurableCluster) openStores() error {
	for dev := range c.stores {
		s, err := pagestore.Open(devicePath(c.dir, dev))
		if err != nil {
			return err
		}
		if c.noPool {
			s.SetFramePool(nil)
		}
		c.stores[dev] = s
	}
	return nil
}

// engineFor wires the cluster's per-device stores into the shared
// retrieval executor.
func (c *DurableCluster) engineFor(model CostModel, st *settings) (*engine.Executor, error) {
	devices := make([]engine.Device, c.fs.M)
	for dev := range devices {
		devices[dev] = durDevice{c: c, dev: dev}
	}
	devices = st.wrap(devices)
	return engine.New(st.engineConfig(engine.Config{
		Schema:     c.schema,
		FS:         c.fs,
		Devices:    devices,
		Model:      model,
		Observer:   engine.NewClusterMetrics("durable", c.fs.M),
		Tracer:     obs.DefaultTracer(),
		Span:       "storage.retrieve",
		Audit:      audit.For("durable"),
		Alloc:      c.alloc,
		Plans:      plancache.New("durable"),
		Profile:    obs.CostProfilerFor("durable"),
		Flight:     obs.FlightRecorderFor("durable"),
		Events:     telemetry.LogFor("durable"),
		Resilience: st.resilienceFor("durable", devices),
	}))
}

// durDevice adapts one device's pagestore log to the engine's Device
// contract. A scan error stops the device immediately: no further
// qualified buckets are counted once the device has failed.
type durDevice struct {
	c   *DurableCluster
	dev int
}

func (d durDevice) Scan(ctx context.Context, q query.Query, pm mkhash.PartialMatch) (engine.Answer, error) {
	var ans engine.Answer
	c := d.c
	// One builder per scan: decoded records share its chunked arena
	// instead of allocating two objects each. In arena mode the chunks
	// are pooled and the lease travels on the answer; otherwise they are
	// plain heap the results own outright.
	b := mempool.NewRecordBuilder(c.arena)
	var err error
	eachOnDevice(ctx, c.im, q, d.dev, func(coords []int) {
		if err != nil {
			return
		}
		if err = ctx.Err(); err != nil {
			return
		}
		ans.Buckets++
		err = c.stores[d.dev].ScanInto(uint32(c.fs.Linear(coords)), b, func(r mkhash.Record) error {
			ans.Records++
			if engine.Matches(pm, r) {
				ans.Hits = c.hits.AppendOne(ans.Hits, r)
			}
			return nil
		})
	})
	if err != nil {
		c.hits.Put(ans.Hits)
		b.Release()
		return engine.Answer{}, err
	}
	if c.arena {
		ans.Release = b.Release
	}
	return ans, nil
}

const metaName = "meta.snap"

func devicePath(dir string, dev int) string {
	return filepath.Join(dir, fmt.Sprintf("device-%04d.log", dev))
}

// CreateDurable materialises file's buckets as per-device logs under dir
// (which must exist and be empty of cluster files) and writes the
// metadata snapshot. The allocator must match the file's directory sizes.
func CreateDurable(dir string, file *mkhash.File, alloc decluster.GroupAllocator, model CostModel, opts ...Option) (*DurableCluster, error) {
	fs := alloc.FileSystem()
	if err := checkAllocator(file, fs); err != nil {
		return nil, err
	}
	st := newSettings(opts)
	if _, err := os.Stat(filepath.Join(dir, metaName)); err == nil {
		return nil, fmt.Errorf("storage: %s already holds a durable cluster", dir)
	}

	// Metadata: a schema-only snapshot plus the allocator spec.
	schemaOnly, err := mkhash.New(mkhash.Schema{Fields: file.Schema().Fields, Depths: file.Depths()})
	if err != nil {
		return nil, err
	}
	if err := persist.SaveFile(filepath.Join(dir, metaName), schemaOnly, alloc); err != nil {
		return nil, err
	}

	c := &DurableCluster{
		dir:    dir,
		fs:     fs,
		alloc:  alloc,
		im:     query.NewInverseMapper(alloc),
		schema: schemaOnly,
		stores: make([]*pagestore.Store, fs.M),
		hits:   engine.HitsPool(!st.noPool),
		noPool: st.noPool,
		arena:  st.arena && !st.noPool,
	}
	if c.eng, err = c.engineFor(model, st); err != nil {
		return nil, err
	}
	if err := c.openStores(); err != nil {
		c.Close()
		return nil, err
	}
	var insertErr error
	file.EachBucket(func(coords []int, records []mkhash.Record) {
		if insertErr != nil {
			return
		}
		dev := alloc.Device(coords)
		bucket := uint32(fs.Linear(coords))
		for _, r := range records {
			if err := c.stores[dev].Append(bucket, r); err != nil {
				insertErr = err
				return
			}
		}
	})
	if insertErr != nil {
		c.Close()
		return nil, insertErr
	}
	if err := c.Sync(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// OpenDurable reopens a durable cluster created by CreateDurable. Files
// built with custom field hashes must pass the same WithHash options
// via WithFileOptions.
func OpenDurable(dir string, model CostModel, opts ...Option) (*DurableCluster, error) {
	st := newSettings(opts)
	schemaOnly, alloc, err := persist.LoadFile(filepath.Join(dir, metaName), st.fileOpts...)
	if err != nil {
		return nil, err
	}
	if alloc == nil {
		return nil, fmt.Errorf("storage: %s metadata carries no allocator spec", dir)
	}
	fs := alloc.FileSystem()
	c := &DurableCluster{
		dir:    dir,
		fs:     fs,
		alloc:  alloc,
		im:     query.NewInverseMapper(alloc),
		schema: schemaOnly,
		stores: make([]*pagestore.Store, fs.M),
		hits:   engine.HitsPool(!st.noPool),
		noPool: st.noPool,
		arena:  st.arena && !st.noPool,
	}
	if c.eng, err = c.engineFor(model, st); err != nil {
		return nil, err
	}
	if err := c.openStores(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Allocator returns the declustering method in use.
func (c *DurableCluster) Allocator() decluster.GroupAllocator { return c.alloc }

// Spec builds a value-level partial match query against the cluster's
// schema: pairs of (field name, value); unmentioned fields are
// unspecified.
func (c *DurableCluster) Spec(pairs map[string]string) (mkhash.PartialMatch, error) {
	return c.schema.Spec(pairs)
}

// Fields returns the schema's field names.
func (c *DurableCluster) Fields() []string {
	return append([]string(nil), c.schema.Schema().Fields...)
}

// M returns the device count.
func (c *DurableCluster) M() int { return c.fs.M }

// Len returns the total stored record count across devices.
func (c *DurableCluster) Len() int {
	n := 0
	for _, s := range c.stores {
		if s != nil {
			n += s.Len()
		}
	}
	return n
}

// Insert routes one record to its device log. Call Sync to make a batch
// durable.
func (c *DurableCluster) Insert(r mkhash.Record) error {
	coords, err := c.schema.BucketOf(r)
	if err != nil {
		return err
	}
	dev := c.alloc.Device(coords)
	return c.stores[dev].Append(uint32(c.fs.Linear(coords)), r)
}

// Delete removes every stored record equal to r from its device log
// (tombstoned, so the deletion survives restarts) and returns the number
// removed.
func (c *DurableCluster) Delete(r mkhash.Record) (int, error) {
	coords, err := c.schema.BucketOf(r)
	if err != nil {
		return 0, err
	}
	dev := c.alloc.Device(coords)
	return c.stores[dev].Delete(uint32(c.fs.Linear(coords)), r)
}

// Compact rewrites every device log with only live records.
func (c *DurableCluster) Compact() error {
	t0 := time.Now()
	before := c.Len()
	for dev, s := range c.stores {
		if s == nil {
			continue
		}
		if err := s.Compact(); err != nil {
			return fmt.Errorf("storage: compact device %d: %w", dev, err)
		}
	}
	obs.Infof("storage: compacted %d device logs under %s (%d live records) in %v",
		len(c.stores), c.dir, before, time.Since(t0))
	return nil
}

// BulkInsert loads a batch of records concurrently: records are
// partitioned by target device, then each device's partition is appended
// by its own goroutine (one writer per store, so no locking), followed by
// a single sync. Either every record is appended and synced, or an error
// is returned; on error the logs may contain a durable prefix of the
// batch (appends are idempotent to re-run only if the caller dedupes).
func (c *DurableCluster) BulkInsert(records []mkhash.Record) error {
	type routed struct {
		bucket uint32
		rec    mkhash.Record
	}
	parts := make([][]routed, c.fs.M)
	var coords []int // routing scratch, reused across the whole batch
	for _, r := range records {
		var err error
		coords, err = c.schema.BucketInto(r, coords)
		if err != nil {
			return err
		}
		dev := c.alloc.Device(coords)
		parts[dev] = append(parts[dev], routed{uint32(c.fs.Linear(coords)), r})
	}
	errs := make([]error, c.fs.M)
	var wg sync.WaitGroup
	for dev, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(dev int, part []routed) {
			defer wg.Done()
			for _, it := range part {
				if err := c.stores[dev].Append(it.bucket, it.rec); err != nil {
					errs[dev] = err
					return
				}
			}
		}(dev, part)
	}
	wg.Wait()
	for dev, err := range errs {
		if err != nil {
			return fmt.Errorf("storage: bulk insert device %d: %w", dev, err)
		}
	}
	return c.Sync()
}

// Sync flushes every device log to stable storage.
func (c *DurableCluster) Sync() error {
	for dev, s := range c.stores {
		if s == nil {
			continue
		}
		if err := s.Sync(); err != nil {
			return fmt.Errorf("storage: sync device %d: %w", dev, err)
		}
	}
	return nil
}

// Close closes every device log and releases the plan cache.
func (c *DurableCluster) Close() error {
	if c.eng != nil && c.eng.Plans() != nil {
		c.eng.Plans().Close()
	}
	var first error
	for _, s := range c.stores {
		if s == nil {
			continue
		}
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// RetrieveContext answers a value-level partial match query through the
// shared engine executor: every device enumerates its qualified buckets
// (from the cached plan when one is compiled) and scans them from disk.
// The simulated cost accounting matches Cluster.RetrieveContext. When
// devices fail, the returned error reports every failing device (match
// individual ones with errors.As on *engine.DeviceFailure). This is the
// canonical retrieval entry point; Retrieve is its context.Background()
// wrapper.
func (c *DurableCluster) RetrieveContext(ctx context.Context, pm mkhash.PartialMatch) (Result, error) {
	return c.eng.Retrieve(ctx, pm)
}

// Retrieve is RetrieveContext with context.Background().
func (c *DurableCluster) Retrieve(pm mkhash.PartialMatch) (Result, error) {
	return c.RetrieveContext(context.Background(), pm)
}

// PlanCache returns the cluster's per-shape plan cache.
func (c *DurableCluster) PlanCache() *plancache.Cache { return c.eng.Plans() }

// RetrieveBatch answers a batch of queries over the shared device pool;
// see engine.Executor.RetrieveBatch.
func (c *DurableCluster) RetrieveBatch(ctx context.Context, pms []mkhash.PartialMatch) ([]Result, error) {
	return c.eng.RetrieveBatch(ctx, pms)
}
