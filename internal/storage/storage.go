// Package storage simulates the parallel device environments of the
// paper's §5.2: M identical devices behind a symmetric interconnect
// (parallel disks on a shared bus, or Butterfly-style multiprocessor
// memories), each holding the buckets a declustering allocator assigns to
// it. The response time of a partial match query is the service time of
// the slowest device — the paper's "largest response size" argument made
// executable.
//
// Devices answer queries with the per-device inverse mapping of package
// query: each device enumerates only its own qualified buckets, never the
// whole grid, exactly as the paper's §4.2 prescribes for main-memory
// databases. Retrieval itself — validation, fan-out, cancellation, cost
// aggregation, metrics — is package engine's single executor; this
// package contributes only the Device adapters that know where the
// records live.
package storage

import (
	"context"
	"fmt"
	"time"

	"fxdist/internal/audit"
	"fxdist/internal/decluster"
	"fxdist/internal/engine"
	"fxdist/internal/mempool"
	"fxdist/internal/mkhash"
	"fxdist/internal/obs"
	"fxdist/internal/plancache"
	"fxdist/internal/query"
	"fxdist/internal/telemetry"
)

// CostModel is the per-device service time model; see engine.CostModel.
type CostModel = engine.CostModel

// ParallelDisk models late-1980s disks on a shared bus.
var ParallelDisk = engine.ParallelDisk

// MainMemory models a multiprocessor main-memory database node.
var MainMemory = engine.MainMemory

// Result reports one retrieval; see engine.Result.
type Result = engine.Result

// device is one parallel device's local bucket store.
type device struct {
	buckets map[int][]mkhash.Record
}

// Cluster distributes a multi-key hashed file over M simulated devices
// according to a declustering allocator.
type Cluster struct {
	file  *mkhash.File
	fs    decluster.FileSystem
	alloc decluster.GroupAllocator
	im    *query.InverseMapper
	model CostModel // used by Project; retrieval prices via eng
	devs  []*device
	eng   *engine.Executor
	hits  *mempool.SlicePool[mkhash.Record] // nil under WithoutMemPool
}

// checkAllocator verifies the allocator was built for the file's current
// directory sizes — shared by every cluster constructor.
func checkAllocator(file *mkhash.File, fs decluster.FileSystem) error {
	sizes := file.Sizes()
	if len(sizes) != fs.NumFields() {
		return fmt.Errorf("storage: allocator has %d fields, file has %d", fs.NumFields(), len(sizes))
	}
	for i, f := range sizes {
		if fs.Sizes[i] != f {
			return fmt.Errorf("storage: allocator field %d sized %d, file directory is %d", i, fs.Sizes[i], f)
		}
	}
	return nil
}

// NewCluster distributes file's buckets over the allocator's devices. The
// allocator must be built for the file's current directory sizes.
func NewCluster(file *mkhash.File, alloc decluster.GroupAllocator, model CostModel, opts ...Option) (*Cluster, error) {
	fs := alloc.FileSystem()
	if err := checkAllocator(file, fs); err != nil {
		return nil, err
	}
	st := newSettings(opts)
	c := &Cluster{
		file:  file,
		fs:    fs,
		alloc: alloc,
		im:    query.NewInverseMapper(alloc),
		model: model,
		devs:  make([]*device, fs.M),
		hits:  engine.HitsPool(!st.noPool),
	}
	for i := range c.devs {
		c.devs[i] = &device{buckets: make(map[int][]mkhash.Record)}
	}
	file.EachBucket(func(coords []int, records []mkhash.Record) {
		d := alloc.Device(coords)
		c.devs[d].buckets[fs.Linear(coords)] = records
	})
	devices := make([]engine.Device, fs.M)
	for dev := range devices {
		devices[dev] = memDevice{c: c, dev: dev}
	}
	devices = st.wrap(devices)
	eng, err := engine.New(st.engineConfig(engine.Config{
		Schema:     file,
		FS:         fs,
		Devices:    devices,
		Model:      model,
		Observer:   engine.NewClusterMetrics("memory", fs.M),
		Tracer:     obs.DefaultTracer(),
		Span:       "storage.retrieve",
		Audit:      audit.For("memory"),
		Alloc:      alloc,
		Plans:      plancache.New("memory"),
		Profile:    obs.CostProfilerFor("memory"),
		Flight:     obs.FlightRecorderFor("memory"),
		Events:     telemetry.LogFor("memory"),
		Resilience: st.resilienceFor("memory", devices),
	}))
	if err != nil {
		return nil, err
	}
	c.eng = eng
	return c, nil
}

// memDevice adapts one in-memory device's bucket map to the engine's
// Device contract.
type memDevice struct {
	c   *Cluster
	dev int
}

func (d memDevice) Scan(ctx context.Context, q query.Query, pm mkhash.PartialMatch) (engine.Answer, error) {
	var ans engine.Answer
	store := d.c.devs[d.dev]
	var err error
	eachOnDevice(ctx, d.c.im, q, d.dev, func(coords []int) {
		if err != nil {
			return
		}
		if err = ctx.Err(); err != nil {
			return
		}
		ans.Buckets++
		for _, r := range store.buckets[d.c.fs.Linear(coords)] {
			ans.Records++
			if engine.Matches(pm, r) {
				ans.Hits = d.c.hits.AppendOne(ans.Hits, r)
			}
		}
	})
	if err != nil {
		d.c.hits.Put(ans.Hits)
		return engine.Answer{}, err
	}
	return ans, nil
}

// eachOnDevice enumerates q's qualified buckets on dev from the cached
// plan the executor put in ctx when one is compiled, falling back to
// the per-call inverse-mapper walk otherwise. Both produce buckets in
// the same order, so cached and uncached retrievals are byte-identical.
func eachOnDevice(ctx context.Context, im *query.InverseMapper, q query.Query, dev int, fn func(bucket []int)) {
	if p := engine.PlanFromContext(ctx); p != nil {
		p.EachOnDevice(q, dev, fn)
		return
	}
	im.EachOnDevice(q, dev, fn)
}

// M returns the device count.
func (c *Cluster) M() int { return c.fs.M }

// Allocator returns the declustering method in use.
func (c *Cluster) Allocator() decluster.GroupAllocator { return c.alloc }

// DeviceBucketCounts returns how many non-empty buckets each device holds
// (static storage balance).
func (c *Cluster) DeviceBucketCounts() []int {
	out := make([]int, len(c.devs))
	for i, d := range c.devs {
		out[i] = len(d.buckets)
	}
	return out
}

// RetrieveContext answers a value-level partial match query in
// parallel: every device concurrently enumerates its qualified buckets
// (from the cached plan when one is compiled) and scans them.
// Cancelling ctx returns promptly with its error. This is the canonical
// retrieval entry point; Retrieve is its context.Background() wrapper.
func (c *Cluster) RetrieveContext(ctx context.Context, pm mkhash.PartialMatch) (Result, error) {
	return c.eng.Retrieve(ctx, pm)
}

// Retrieve is RetrieveContext with context.Background().
func (c *Cluster) Retrieve(pm mkhash.PartialMatch) (Result, error) {
	return c.RetrieveContext(context.Background(), pm)
}

// PlanCache returns the cluster's per-shape plan cache.
func (c *Cluster) PlanCache() *plancache.Cache { return c.eng.Plans() }

// RetrieveBatch answers a batch of queries over the shared device pool;
// see engine.Executor.RetrieveBatch.
func (c *Cluster) RetrieveBatch(ctx context.Context, pms []mkhash.PartialMatch) ([]Result, error) {
	return c.eng.RetrieveBatch(ctx, pms)
}

// SimResult is a record-free simulated retrieval at bucket granularity,
// for experiments at paper scale where materialising records would be
// wasteful.
type SimResult struct {
	Loads               []int
	LargestResponseSize int
	Response            time.Duration
	TotalWork           time.Duration
}

// Simulate computes the simulated response time of a bucket-level query
// directly from its per-device load vector (e.g. convolve.Loads) —
// §5.2.1's model via the same cost accumulation the executor merge uses.
func Simulate(loads []int, model CostModel) SimResult {
	times := make([]time.Duration, len(loads))
	for i, l := range loads {
		times[i] = model.DeviceTime(l, 0)
	}
	res := SimResult{Loads: loads}
	res.Response, res.TotalWork, res.LargestResponseSize = engine.AccumulateCost(times, loads)
	return res
}
