// Package storage simulates the parallel device environments of the
// paper's §5.2: M identical devices behind a symmetric interconnect
// (parallel disks on a shared bus, or Butterfly-style multiprocessor
// memories), each holding the buckets a declustering allocator assigns to
// it. The response time of a partial match query is the service time of
// the slowest device — the paper's "largest response size" argument made
// executable.
//
// Devices answer queries with the per-device inverse mapping of package
// query: each device enumerates only its own qualified buckets, never the
// whole grid, exactly as the paper's §4.2 prescribes for main-memory
// databases.
package storage

import (
	"fmt"
	"sync"
	"time"

	"fxdist/internal/decluster"
	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

// CostModel is the per-device service time model. Service time for a
// query on one device is PerQuery + buckets*PerBucket + records*PerRecord.
type CostModel struct {
	Name string
	// PerQuery is the fixed per-device overhead of dispatching one query.
	PerQuery time.Duration
	// PerBucket is the cost of accessing one qualified bucket (for disks:
	// seek + rotational latency + transfer of one bucket).
	PerBucket time.Duration
	// PerRecord is the cost of scanning or shipping one record.
	PerRecord time.Duration
}

// ParallelDisk models late-1980s disks on a shared bus: ~28 ms per bucket
// access (16 ms average seek + 8.3 ms rotational latency + transfer), plus
// per-record transfer cost.
var ParallelDisk = CostModel{Name: "parallel-disk", PerQuery: 1 * time.Millisecond, PerBucket: 28 * time.Millisecond, PerRecord: 50 * time.Microsecond}

// MainMemory models a multiprocessor main-memory database node: bucket
// access is a few microseconds of address computation and pointer chasing.
var MainMemory = CostModel{Name: "main-memory", PerQuery: 2 * time.Microsecond, PerBucket: 2 * time.Microsecond, PerRecord: 200 * time.Nanosecond}

// device is one parallel device's local bucket store.
type device struct {
	buckets map[int][]mkhash.Record
}

// Cluster distributes a multi-key hashed file over M simulated devices
// according to a declustering allocator.
type Cluster struct {
	file  *mkhash.File
	fs    decluster.FileSystem
	alloc decluster.GroupAllocator
	im      *query.InverseMapper
	model   CostModel
	devs    []*device
	metrics clusterMetrics
}

// NewCluster distributes file's buckets over the allocator's devices. The
// allocator must be built for the file's current directory sizes.
func NewCluster(file *mkhash.File, alloc decluster.GroupAllocator, model CostModel) (*Cluster, error) {
	fs := alloc.FileSystem()
	sizes := file.Sizes()
	if len(sizes) != fs.NumFields() {
		return nil, fmt.Errorf("storage: allocator has %d fields, file has %d", fs.NumFields(), len(sizes))
	}
	for i, f := range sizes {
		if fs.Sizes[i] != f {
			return nil, fmt.Errorf("storage: allocator field %d sized %d, file directory is %d", i, fs.Sizes[i], f)
		}
	}
	c := &Cluster{
		file:    file,
		fs:      fs,
		alloc:   alloc,
		im:      query.NewInverseMapper(alloc),
		model:   model,
		devs:    make([]*device, fs.M),
		metrics: newClusterMetrics("memory", fs.M),
	}
	for i := range c.devs {
		c.devs[i] = &device{buckets: make(map[int][]mkhash.Record)}
	}
	file.EachBucket(func(coords []int, records []mkhash.Record) {
		d := alloc.Device(coords)
		c.devs[d].buckets[fs.Linear(coords)] = records
	})
	return c, nil
}

// M returns the device count.
func (c *Cluster) M() int { return c.fs.M }

// Allocator returns the declustering method in use.
func (c *Cluster) Allocator() decluster.GroupAllocator { return c.alloc }

// DeviceBucketCounts returns how many non-empty buckets each device holds
// (static storage balance).
func (c *Cluster) DeviceBucketCounts() []int {
	out := make([]int, len(c.devs))
	for i, d := range c.devs {
		out[i] = len(d.buckets)
	}
	return out
}

// Result reports one retrieval: the matching records plus the simulated
// parallel cost breakdown.
type Result struct {
	// Records are the matching records, grouped by device in device order.
	Records []mkhash.Record
	// DeviceBuckets[i] is the number of qualified buckets device i accessed.
	DeviceBuckets []int
	// DeviceRecords[i] is the number of records device i scanned.
	DeviceRecords []int
	// DeviceTime[i] is device i's simulated service time.
	DeviceTime []time.Duration
	// Response is the simulated parallel response time: the slowest device.
	Response time.Duration
	// TotalWork is the sum of all device times (what a single device would
	// have spent, modulo per-query overhead).
	TotalWork time.Duration
	// LargestResponseSize is max(DeviceBuckets), the paper's metric.
	LargestResponseSize int
}

// Retrieve answers a value-level partial match query in parallel: every
// device concurrently inverse-maps its qualified buckets and scans them.
func (c *Cluster) Retrieve(pm mkhash.PartialMatch) (Result, error) {
	c.metrics.retrieves.Inc()
	t0 := time.Now()
	defer c.metrics.latency.ObserveSince(t0)
	q, err := c.file.BucketQuery(pm)
	if err != nil {
		c.metrics.errors.Inc()
		return Result{}, err
	}
	if err := q.Validate(c.fs); err != nil {
		c.metrics.errors.Inc()
		return Result{}, err
	}

	m := c.fs.M
	res := Result{
		DeviceBuckets: make([]int, m),
		DeviceRecords: make([]int, m),
		DeviceTime:    make([]time.Duration, m),
	}
	perDev := make([][]mkhash.Record, m)

	var wg sync.WaitGroup
	for dev := 0; dev < m; dev++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			d := c.devs[dev]
			buckets, records := 0, 0
			var hits []mkhash.Record
			c.im.EachOnDevice(q, dev, func(coords []int) {
				buckets++
				for _, r := range d.buckets[c.fs.Linear(coords)] {
					records++
					if matches(pm, r) {
						hits = append(hits, r)
					}
				}
			})
			res.DeviceBuckets[dev] = buckets
			res.DeviceRecords[dev] = records
			res.DeviceTime[dev] = c.model.PerQuery +
				time.Duration(buckets)*c.model.PerBucket +
				time.Duration(records)*c.model.PerRecord
			perDev[dev] = hits
		}(dev)
	}
	wg.Wait()
	c.metrics.observe(res.DeviceBuckets)

	for dev := 0; dev < m; dev++ {
		res.Records = append(res.Records, perDev[dev]...)
		res.TotalWork += res.DeviceTime[dev]
		if res.DeviceTime[dev] > res.Response {
			res.Response = res.DeviceTime[dev]
		}
		if res.DeviceBuckets[dev] > res.LargestResponseSize {
			res.LargestResponseSize = res.DeviceBuckets[dev]
		}
	}
	return res, nil
}

// matches re-checks actual values (hash collisions can put non-matching
// records in qualified buckets).
func matches(pm mkhash.PartialMatch, r mkhash.Record) bool {
	for i, v := range pm {
		if v != nil && r[i] != *v {
			return false
		}
	}
	return true
}

// SimResult is a record-free simulated retrieval at bucket granularity,
// for experiments at paper scale where materialising records would be
// wasteful.
type SimResult struct {
	Loads               []int
	LargestResponseSize int
	Response            time.Duration
	TotalWork           time.Duration
}

// Simulate computes the simulated response time of a bucket-level query
// directly from its per-device load vector (e.g. convolve.Loads) —
// §5.2.1's model: response time is determined by the device with the most
// qualified buckets.
func Simulate(loads []int, model CostModel) SimResult {
	res := SimResult{Loads: loads}
	for _, l := range loads {
		t := model.PerQuery + time.Duration(l)*model.PerBucket
		res.TotalWork += t
		if t > res.Response {
			res.Response = t
		}
		if l > res.LargestResponseSize {
			res.LargestResponseSize = l
		}
	}
	return res
}
