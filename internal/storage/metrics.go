package storage

import (
	"strconv"

	"fxdist/internal/obs"
)

// clusterMetrics instruments one cluster's retrieval path, cached at
// construction. The cluster label separates the durable (disk-backed)
// and replicated (simulated, failure-injecting) retrieval paths.
//
// The deviceBuckets counters accumulate qualified-bucket accesses per
// device over the cluster's whole lifetime; imbalance is their max/mean
// ratio — the paper's strict-optimality criterion (§5.2.1: response
// time is the slowest device) measured on real traffic. 1.0 means the
// allocator is spreading observed queries perfectly.
type clusterMetrics struct {
	retrieves     *obs.Counter
	errors        *obs.Counter
	latency       *obs.Histogram
	deviceBuckets []*obs.Counter
	imbalance     *obs.Gauge
}

func newClusterMetrics(cluster string, m int) clusterMetrics {
	r := obs.Default()
	cl := obs.L("cluster", cluster)
	cm := clusterMetrics{
		retrieves: r.Counter("fxdist_storage_retrieves_total",
			"Retrievals answered by this cluster kind.", cl),
		errors: r.Counter("fxdist_storage_retrieve_errors_total",
			"Retrievals that failed on this cluster kind.", cl),
		latency: r.Histogram("fxdist_storage_retrieve_seconds",
			"Wall-clock retrieval latency (all devices, merge included).", nil, cl),
		imbalance: r.Gauge("fxdist_storage_load_imbalance_ratio",
			"Max/mean of cumulative per-device qualified-bucket counts; 1.0 is a perfectly balanced declustering.", cl),
	}
	cm.deviceBuckets = make([]*obs.Counter, m)
	for dev := range cm.deviceBuckets {
		cm.deviceBuckets[dev] = r.Counter("fxdist_storage_device_qualified_buckets_total",
			"Qualified buckets accessed per device.", cl, obs.L("device", strconv.Itoa(dev)))
	}
	return cm
}

// observe folds one retrieval's per-device bucket counts into the
// cumulative counters and refreshes the live imbalance gauge.
func (cm *clusterMetrics) observe(deviceBuckets []int) {
	for dev, b := range deviceBuckets {
		if b > 0 {
			cm.deviceBuckets[dev].Add(uint64(b))
		}
	}
	var sum, max uint64
	for _, c := range cm.deviceBuckets {
		v := c.Value()
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return
	}
	mean := float64(sum) / float64(len(cm.deviceBuckets))
	cm.imbalance.Set(float64(max) / mean)
}
