package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/mkhash"
)

func durableFixture(t *testing.T, n, m int) (*mkhash.File, decluster.GroupAllocator) {
	t.Helper()
	file := carFile(t, n)
	fs, err := file.FileSystem(m)
	if err != nil {
		t.Fatal(err)
	}
	return file, decluster.MustFX(fs)
}

func sortedKeys(recs []mkhash.Record) []string {
	keys := make([]string, len(recs))
	for i, r := range recs {
		keys[i] = r[0] + "|" + r[1] + "|" + r[2]
	}
	sort.Strings(keys)
	return keys
}

func TestDurableCreateRetrieveMatchesSearch(t *testing.T) {
	file, fx := durableFixture(t, 400, 8)
	dir := t.TempDir()
	c, err := CreateDurable(dir, file, fx, MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Len() != file.Len() || c.M() != 8 {
		t.Fatalf("Len=%d M=%d", c.Len(), c.M())
	}
	for _, spec := range []map[string]string{
		{"make": "make3"},
		{"model": "model7", "year": "1987"},
		{},
	} {
		pm, err := file.Spec(spec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := file.Search(pm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Retrieve(pm)
		if err != nil {
			t.Fatal(err)
		}
		g, w := sortedKeys(got.Records), sortedKeys(want)
		if len(g) != len(w) {
			t.Fatalf("spec %v: durable %d records, search %d", spec, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("spec %v: record sets differ", spec)
			}
		}
	}
}

func TestDurableReopen(t *testing.T) {
	file, fx := durableFixture(t, 250, 4)
	dir := t.TempDir()
	c, err := CreateDurable(dir, file, fx, MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	// Insert extra records after creation, sync, close.
	extra := mkhash.Record{"make99", "model99", "1999"}
	if err := c.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurable(dir, MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 251 {
		t.Fatalf("reopened Len=%d, want 251", re.Len())
	}
	if re.Allocator().Name() != fx.Name() {
		t.Errorf("allocator %q, want %q", re.Allocator().Name(), fx.Name())
	}
	pm, _ := file.Spec(map[string]string{"make": "make99"})
	got, err := re.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 1 || got.Records[0][1] != "model99" {
		t.Errorf("post-reopen retrieve = %v", got.Records)
	}
}

func TestDurableSurvivesTornDeviceLog(t *testing.T) {
	file, fx := durableFixture(t, 300, 4)
	dir := t.TempDir()
	c, err := CreateDurable(dir, file, fx, MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Len()
	c.Close()
	// Simulate a crash mid-append on device 2.
	path := devicePath(dir, 2)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < 10 {
		t.Skip("device 2 holds too little data to tear")
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(dir, MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() >= before || re.Len() < before-1 {
		t.Errorf("after torn log Len=%d, want %d-1", re.Len(), before)
	}
	// Queries still work.
	pm, _ := file.Spec(map[string]string{"year": "1985"})
	if _, err := re.Retrieve(pm); err != nil {
		t.Fatal(err)
	}
}

func TestCreateDurableValidation(t *testing.T) {
	file, fx := durableFixture(t, 10, 4)
	dir := t.TempDir()
	if _, err := CreateDurable(dir, file, fx, MainMemory); err != nil {
		t.Fatal(err)
	}
	// Second create in the same dir must refuse.
	if _, err := CreateDurable(dir, file, fx, MainMemory); err == nil {
		t.Error("create over existing cluster accepted")
	}
	wrong := decluster.MustFX(decluster.MustFileSystem([]int{4, 8}, 4))
	if _, err := CreateDurable(t.TempDir(), file, wrong, MainMemory); err == nil {
		t.Error("allocator arity mismatch accepted")
	}
	wrongSizes := decluster.MustFX(decluster.MustFileSystem([]int{4, 4, 2}, 4))
	if _, err := CreateDurable(t.TempDir(), file, wrongSizes, MainMemory); err == nil {
		t.Error("allocator size mismatch accepted")
	}
}

func TestOpenDurableErrors(t *testing.T) {
	if _, err := OpenDurable(t.TempDir(), MainMemory); err == nil {
		t.Error("open of empty dir succeeded")
	}
	// Metadata without an allocator spec is rejected.
	dir := t.TempDir()
	schemaOnly := mkhash.MustNew(mkhash.Schema{Fields: []string{"a"}, Depths: []int{2}})
	if err := persistSaveNoAlloc(dir, schemaOnly); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, MainMemory); err == nil {
		t.Error("metadata without allocator accepted")
	}
}

func TestDurableInsertValidation(t *testing.T) {
	file, fx := durableFixture(t, 10, 4)
	c, err := CreateDurable(t.TempDir(), file, fx, MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Insert(mkhash.Record{"wrong", "arity"}); err == nil {
		t.Error("wrong-arity record accepted")
	}
	if _, err := c.Retrieve(make(mkhash.PartialMatch, 1)); err == nil {
		t.Error("wrong-arity query accepted")
	}
}

// Durable retrieval under load: many inserts across syncs, queried back.
func TestDurableBulkConsistency(t *testing.T) {
	file, fx := durableFixture(t, 0, 4)
	dir := t.TempDir()
	c, err := CreateDurable(dir, file, fx, MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := c.Insert(mkhash.Record{
			fmt.Sprintf("make%d", i%7),
			fmt.Sprintf("model%d", i),
			fmt.Sprintf("%d", 1980+i%10),
		}); err != nil {
			t.Fatal(err)
		}
		if i%100 == 99 {
			if err := c.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	pm, _ := file.Spec(map[string]string{"make": "make3"})
	got, err := c.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 500; i++ {
		if i%7 == 3 {
			want++
		}
	}
	if len(got.Records) != want {
		t.Errorf("bulk retrieve %d records, want %d", len(got.Records), want)
	}
	c.Close()
}

func TestDurableBulkInsert(t *testing.T) {
	file, fx := durableFixture(t, 0, 8)
	c, err := CreateDurable(t.TempDir(), file, fx, MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var batch []mkhash.Record
	for i := 0; i < 1000; i++ {
		batch = append(batch, mkhash.Record{
			fmt.Sprintf("make%d", i%9),
			fmt.Sprintf("model%d", i),
			fmt.Sprintf("%d", 1980+i%6),
		})
	}
	if err := c.BulkInsert(batch); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1000 {
		t.Fatalf("Len = %d", c.Len())
	}
	pm, _ := file.Spec(map[string]string{"make": "make4"})
	res, err := c.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 1000; i++ {
		if i%9 == 4 {
			want++
		}
	}
	if len(res.Records) != want {
		t.Errorf("retrieved %d, want %d", len(res.Records), want)
	}
	// Bad record arity fails before any routing.
	if err := c.BulkInsert([]mkhash.Record{{"short"}}); err == nil {
		t.Error("wrong-arity batch accepted")
	}
}

func TestDurableDeleteAndCompact(t *testing.T) {
	file, fx := durableFixture(t, 0, 4)
	dir := t.TempDir()
	c, err := CreateDurable(dir, file, fx, MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	target := mkhash.Record{"makeX", "modelX", "1999"}
	if err := c.Insert(target); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(target); err != nil { // duplicate
		t.Fatal(err)
	}
	if err := c.Insert(mkhash.Record{"makeY", "modelY", "1998"}); err != nil {
		t.Fatal(err)
	}
	n, err := c.Delete(target)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || c.Len() != 1 {
		t.Errorf("deleted %d, Len %d; want 2, 1", n, c.Len())
	}
	if _, err := c.Delete(mkhash.Record{"bad"}); err == nil {
		t.Error("wrong-arity delete accepted")
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Deletion and compaction survive reopen.
	re, err := OpenDurable(dir, MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Errorf("Len after reopen = %d, want 1", re.Len())
	}
	pm, _ := file.Spec(map[string]string{"make": "makeY"})
	res, err := re.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Errorf("surviving record not found: %v", res.Records)
	}
}

// persistSaveNoAlloc writes cluster metadata without an allocator.
func persistSaveNoAlloc(dir string, schemaOnly *mkhash.File) error {
	return persistSaveFile(filepath.Join(dir, metaName), schemaOnly)
}
