package storage

import (
	"sort"
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/mkhash"
	"fxdist/internal/replica"
)

func newReplicated(t *testing.T, n, m int, mode replica.Mode) (*mkhash.File, *ReplicatedCluster) {
	t.Helper()
	file := carFile(t, n)
	fs, err := file.FileSystem(m)
	if err != nil {
		t.Fatal(err)
	}
	fx := decluster.MustFX(fs)
	c, err := NewReplicated(file, fx, mode, MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	return file, c
}

func keysOf(recs []mkhash.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r[0] + "|" + r[1] + "|" + r[2]
	}
	sort.Strings(out)
	return out
}

func TestReplicatedValidation(t *testing.T) {
	file := carFile(t, 10)
	wrong := decluster.MustFX(decluster.MustFileSystem([]int{4, 8}, 4))
	if _, err := NewReplicated(file, wrong, replica.Chained, MainMemory); err == nil {
		t.Error("arity mismatch accepted")
	}
	wrongSize := decluster.MustFX(decluster.MustFileSystem([]int{4, 4, 2}, 4))
	if _, err := NewReplicated(file, wrongSize, replica.Chained, MainMemory); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestReplicatedStorageOverheadIsTwo(t *testing.T) {
	_, c := newReplicated(t, 300, 8, replica.Chained)
	if got := c.StorageOverhead(); got != 2.0 {
		t.Errorf("storage overhead %.2f, want 2.0", got)
	}
}

// Retrieval must match the reference search when healthy and under every
// single-device failure, for both failover modes.
func TestReplicatedRetrieveUnderFailures(t *testing.T) {
	for _, mode := range []replica.Mode{replica.Chained, replica.Naive} {
		file, c := newReplicated(t, 400, 8, mode)
		specs := []map[string]string{
			{"make": "make2"},
			{"year": "1983"},
			{},
		}
		check := func(label string) {
			t.Helper()
			for _, s := range specs {
				pm, err := file.Spec(s)
				if err != nil {
					t.Fatal(err)
				}
				want, err := file.Search(pm)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.Retrieve(pm)
				if err != nil {
					t.Fatal(err)
				}
				g, w := keysOf(got.Records), keysOf(want)
				if len(g) != len(w) {
					t.Fatalf("%s mode %v spec %v: %d records, want %d", label, mode, s, len(g), len(w))
				}
				for i := range g {
					if g[i] != w[i] {
						t.Fatalf("%s mode %v spec %v: record sets differ", label, mode, s)
					}
				}
			}
		}
		check("healthy")
		for dev := 0; dev < c.M(); dev++ {
			if err := c.Fail(dev); err != nil {
				t.Fatal(err)
			}
			if !c.Failed(dev) {
				t.Fatal("Failed() wrong")
			}
			check("failed")
			if err := c.Restore(dev); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// A failed device must never appear in the service accounting.
func TestReplicatedFailedDeviceIdle(t *testing.T) {
	file, c := newReplicated(t, 300, 8, replica.Chained)
	if err := c.Fail(4); err != nil {
		t.Fatal(err)
	}
	pm, _ := file.Spec(map[string]string{})
	res, err := c.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeviceBuckets[4] != 0 || res.DeviceTime[4] != 0 {
		t.Errorf("failed device did work: buckets=%d time=%v",
			res.DeviceBuckets[4], res.DeviceTime[4])
	}
}

// Chained failover spreads the orphaned work better than naive: its
// post-failure largest response size on the whole-file query must be
// strictly smaller.
func TestReplicatedChainedSpreadsLoad(t *testing.T) {
	file, chained := newReplicated(t, 2000, 8, replica.Chained)
	_, naive := newReplicated(t, 2000, 8, replica.Naive)
	if err := chained.Fail(3); err != nil {
		t.Fatal(err)
	}
	if err := naive.Fail(3); err != nil {
		t.Fatal(err)
	}
	pm, _ := file.Spec(map[string]string{})
	cRes, err := chained.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	nRes, err := naive.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	if cRes.LargestResponseSize >= nRes.LargestResponseSize {
		t.Errorf("chained largest %d not below naive %d",
			cRes.LargestResponseSize, nRes.LargestResponseSize)
	}
	if len(cRes.Records) != len(nRes.Records) {
		t.Errorf("record counts differ: %d vs %d", len(cRes.Records), len(nRes.Records))
	}
}
