package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"fxdist/internal/engine"
)

// fakeClock is a manually advanced time source for breaker cooldowns.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerFullCycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var trans []string
	b := NewBreaker(3, time.Second, clk.now, func(from, to State) {
		trans = append(trans, fmt.Sprintf("%v->%v", from, to))
	})

	// Closed passes and absorbs sub-threshold failures.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker vetoed attempt %d: %v", i, err)
		}
		b.Failure()
	}
	if b.State() != Closed || b.Consecutive() != 2 {
		t.Fatalf("state=%v consecutive=%d, want closed/2", b.State(), b.Consecutive())
	}

	// Third consecutive failure opens it.
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state=%v after threshold failures, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker allowed an attempt: %v", err)
	}

	// Cooldown elapses: exactly one half-open probe passes.
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe vetoed: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("second concurrent half-open probe admitted")
	}

	// Probe failure re-opens immediately and restarts the cooldown.
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state=%v after failed probe, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("re-opened breaker admitted an attempt before the new cooldown")
	}

	// Next cooldown, successful probe closes it.
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe vetoed: %v", err)
	}
	b.Success()
	if b.State() != Closed || b.Consecutive() != 0 {
		t.Fatalf("state=%v consecutive=%d after good probe, want closed/0", b.State(), b.Consecutive())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker vetoed: %v", err)
	}

	want := []string{
		"closed->open", "open->half-open", "half-open->open",
		"open->half-open", "half-open->closed",
	}
	if fmt.Sprint(trans) != fmt.Sprint(want) {
		t.Errorf("transitions = %v, want %v", trans, want)
	}
}

func TestBackoffBoundsAndDeterminism(t *testing.T) {
	base, max := 2*time.Millisecond, 16*time.Millisecond
	a := newBackoff(base, max, 42)
	b := newBackoff(base, max, 42)
	for attempt := 1; attempt <= 10; attempt++ {
		cap := base << (attempt - 1)
		if cap > max || cap <= 0 {
			cap = max
		}
		da, db := a.delay(attempt), b.delay(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", attempt, da, db)
		}
		if da < 0 || da > cap {
			t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, da, cap)
		}
	}
}

func TestBudgetPolicy(t *testing.T) {
	c := NewController("test-budget", Config{MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond})
	p := &budgetPolicy{c: c}
	ctx := context.Background()
	failed := errors.New("scan failed")

	if dec := p.Failure(ctx, engine.Attempt{Device: 0, N: 1, Primary: true, Err: failed}); !dec.Retry {
		t.Fatal("budget declined a retryable first failure")
	}
	if dec := p.Failure(ctx, engine.Attempt{Device: 0, N: 3, Primary: true, Err: failed}); dec.Retry {
		t.Fatal("budget retried past MaxAttempts")
	}
	if dec := p.Failure(ctx, engine.Attempt{Device: 0, N: 1, Primary: true, Err: ErrOpen}); dec.Retry {
		t.Fatal("budget retried a breaker veto")
	}
	if dec := p.Failure(ctx, engine.Attempt{Device: 0, N: 1, Primary: true, Err: context.Canceled}); dec.Retry {
		t.Fatal("budget retried after cancellation")
	}

	// A server Cooldown hint raises the backoff floor.
	cd := &Cooldown{After: 50 * time.Millisecond, Err: failed}
	if dec := p.Failure(ctx, engine.Attempt{Device: 0, N: 1, Primary: true, Err: cd}); !dec.Retry || dec.Delay < cd.After {
		t.Fatalf("cooldown hint not honored: retry=%v delay=%v", dec.Retry, dec.Delay)
	}

	// A retry that cannot finish before the deadline is declined.
	dctx, cancel := context.WithDeadline(ctx, c.now().Add(time.Millisecond))
	defer cancel()
	if dec := p.Failure(dctx, engine.Attempt{Device: 0, N: 1, Primary: true, Err: cd}); dec.Retry {
		t.Fatal("budget scheduled a retry past the caller's deadline")
	}
}

func TestBreakerPolicyChargesOnlyPrimary(t *testing.T) {
	c := NewController("test-charge", Config{BreakerFailures: 1, BreakerCooldown: time.Hour})
	p := &breakerPolicy{c: c}
	ctx := context.Background()

	// Backup failures and breaker vetoes never charge the breaker.
	p.Failure(ctx, engine.Attempt{Device: 0, N: 2, Primary: false, Err: errors.New("backup failed")})
	p.Failure(ctx, engine.Attempt{Device: 0, N: 1, Primary: true, Err: ErrOpen})
	if err := p.Allow(ctx, 0); err != nil {
		t.Fatalf("breaker charged by non-primary/veto failures: %v", err)
	}

	// One primary failure (threshold 1) opens it.
	p.Failure(ctx, engine.Attempt{Device: 0, N: 1, Primary: true, Err: errors.New("real")})
	if err := p.Allow(ctx, 0); !errors.Is(err, ErrOpen) {
		t.Fatalf("breaker did not open: %v", err)
	}

	// Only primary successes reset.
	p.Success(0, false, time.Millisecond)
	if c.breaker(0).State() != Open {
		t.Fatal("backup success closed the breaker")
	}
}

func TestProbeDrivesRecovery(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := NewController("test-probe", Config{BreakerFailures: 1, BreakerCooldown: time.Second})
	c.SetClock(clk.now)

	c.breaker(0).Failure()
	if c.breaker(0).State() != Open {
		t.Fatal("breaker not open")
	}

	// Probe during cooldown is vetoed and must not run fn.
	ran := false
	c.Probe(0, func() error { ran = true; return nil })
	if ran {
		t.Fatal("probe ran while the breaker was cooling down")
	}

	// After the cooldown a failing probe re-opens, a good one closes.
	clk.advance(time.Second)
	c.Probe(0, func() error { return errors.New("still down") })
	if c.breaker(0).State() != Open {
		t.Fatal("failed probe left the breaker non-open")
	}
	clk.advance(time.Second)
	c.Probe(0, func() error { return nil })
	if c.breaker(0).State() != Closed {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestHedgerOutlierGate(t *testing.T) {
	c := NewController("test-hedge", Config{Hedge: true, HedgeMin: 2 * time.Millisecond, HedgeObservations: 4})
	var backupAsked []int
	h := c.newHedger(func(dev int) engine.Device {
		backupAsked = append(backupAsked, dev)
		return nil
	})

	// Too few samples: never hedge.
	if _, _, ok := h.Plan(0); ok {
		t.Fatal("hedged with no samples")
	}

	// Healthy peers at ~1ms, device 0 at 10ms.
	for i := 0; i < 8; i++ {
		h.Observe(0, 10*time.Millisecond, nil)
		h.Observe(1, time.Millisecond, nil)
		h.Observe(2, time.Millisecond, nil)
	}
	_, after, ok := h.Plan(0)
	if !ok {
		t.Fatal("outlier device not hedged")
	}
	// Delay = peers' p99 (1ms) floored at HedgeMin (2ms).
	if after != 2*time.Millisecond {
		t.Errorf("hedge delay = %v, want HedgeMin floor 2ms", after)
	}
	if len(backupAsked) != 1 || backupAsked[0] != 0 {
		t.Errorf("backup source asked for %v, want [0]", backupAsked)
	}

	// A healthy device among healthy peers never hedges.
	if _, _, ok := h.Plan(1); ok {
		t.Fatal("healthy device hedged")
	}

	// Failures carry no latency sample: a failing-only device stays
	// below the observation gate.
	for i := 0; i < 8; i++ {
		h.Observe(3, 50*time.Millisecond, errors.New("failed"))
	}
	if _, _, ok := h.Plan(3); ok {
		t.Fatal("failure observations armed a hedge")
	}
}

func TestControllerRegistryAndReport(t *testing.T) {
	c := NewController("test-report", Config{BreakerFailures: 2, Partial: true})
	if For("test-report") != c {
		t.Fatal("For did not return the registered controller")
	}
	// Latest controller wins the backend label.
	c2 := NewController("test-report", Config{})
	if For("test-report") != c2 {
		t.Fatal("registry did not replace on re-register")
	}

	c3 := NewController("test-report-2", Config{BreakerFailures: 1, BreakerCooldown: time.Hour})
	c3.breaker(1).Failure()
	c3.OnPartial(0.75, []int{1})
	rep := c3.Report()
	if rep.Backend != "test-report-2" || rep.Partials != 1 || rep.LastCoverage != 0.75 {
		t.Errorf("report = %+v", rep)
	}
	if len(rep.Breakers) != 1 || rep.Breakers[0].Device != 1 || rep.Breakers[0].State != "open" {
		t.Errorf("breaker report = %+v", rep.Breakers)
	}
	if rep.Transitions["open"] != 1 {
		t.Errorf("transitions = %v", rep.Transitions)
	}

	all := ReportAll()
	found := 0
	for _, r := range all {
		if r.Backend == "test-report" || r.Backend == "test-report-2" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("ReportAll missing registered backends: %+v", all)
	}
}
