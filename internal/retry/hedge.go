package retry

import (
	"sort"
	"sync"
	"time"

	"fxdist/internal/engine"
)

// sampleRing is the per-device latency window the hedger computes p99s
// over.
const sampleRing = 64

// recomputeEvery bounds how often a device's cached p99 is re-sorted.
const recomputeEvery = 16

// hedger implements engine.Hedger with outlier detection: a device is
// hedged only when its own p99 breaches twice its peers', and the
// hedge fires after the peers' p99 (floored at HedgeMin) — so on a
// healthy cluster no hedge ever arms, and a genuinely slow device is
// raced against its backup almost immediately.
type hedger struct {
	c      *Controller
	backup func(dev int) engine.Device

	mu   sync.Mutex
	devs map[int]*hedgeSamples
}

type hedgeSamples struct {
	ring  [sampleRing]time.Duration
	pos   int
	n     int
	since int // observations since the cached p99 was computed
	p99   time.Duration
}

func (c *Controller) newHedger(backup func(dev int) engine.Device) engine.Hedger {
	return &hedger{c: c, backup: backup, devs: make(map[int]*hedgeSamples)}
}

// p99Of returns the 99th percentile of the ring's live window.
func (s *hedgeSamples) p99Of() time.Duration {
	if s.n == 0 {
		return 0
	}
	buf := make([]time.Duration, s.n)
	copy(buf, s.ring[:s.n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := (len(buf)*99 + 99) / 100
	if idx > len(buf) {
		idx = len(buf)
	}
	return buf[idx-1]
}

func (h *hedger) samples(dev int) *hedgeSamples {
	s := h.devs[dev]
	if s == nil {
		s = &hedgeSamples{}
		h.devs[dev] = s
	}
	return s
}

// Observe records one completed primary scan; failures carry no
// latency signal and are skipped.
func (h *hedger) Observe(dev int, elapsed time.Duration, err error) {
	if err != nil {
		return
	}
	h.mu.Lock()
	s := h.samples(dev)
	s.ring[s.pos] = elapsed
	s.pos = (s.pos + 1) % sampleRing
	if s.n < sampleRing {
		s.n++
	}
	s.since++
	if s.since >= recomputeEvery || s.n <= recomputeEvery {
		s.p99 = s.p99Of()
		s.since = 0
	}
	h.mu.Unlock()
}

// Plan decides whether dev's next primary scan should be hedged: only
// once dev has enough samples, at least one peer has samples, and dev's
// p99 breaches twice the peers' merged p99. The hedge delay is the
// peers' p99 floored at HedgeMin — the backup starts as soon as a
// healthy device would have answered.
func (h *hedger) Plan(dev int) (engine.Device, time.Duration, bool) {
	h.mu.Lock()
	s := h.devs[dev]
	if s == nil || s.n < h.c.cfg.HedgeObservations {
		h.mu.Unlock()
		return nil, 0, false
	}
	own := s.p99
	var peers time.Duration
	seen := false
	for d, ps := range h.devs {
		if d == dev || ps.n < h.c.cfg.HedgeObservations {
			continue
		}
		seen = true
		if ps.p99 > peers {
			peers = ps.p99
		}
	}
	h.mu.Unlock()
	if !seen || own <= 2*peers {
		return nil, 0, false
	}
	after := peers
	if after < h.c.cfg.HedgeMin {
		after = h.c.cfg.HedgeMin
	}
	return h.backup(dev), after, true
}

// Hedged records that a backup request was actually launched.
func (h *hedger) Hedged(dev int) {
	h.c.mHedges.Inc()
	h.c.mu.Lock()
	h.c.hedges++
	h.c.mu.Unlock()
}

// HedgeWon records a backup that beat its primary.
func (h *hedger) HedgeWon(dev int) {
	h.c.mHedgeWins.Inc()
	h.c.mu.Lock()
	h.c.hedgeWins++
	h.c.mu.Unlock()
}
