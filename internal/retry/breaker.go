package retry

import (
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int32

const (
	// Closed passes every attempt (the healthy state).
	Closed State = iota
	// HalfOpen lets exactly one probe through after the cooldown; its
	// outcome decides between Closed and another Open period.
	HalfOpen
	// Open rejects every attempt until the cooldown elapses.
	Open
)

// String renders the state for reports and metric labels.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// Breaker is one device's circuit breaker: threshold consecutive
// primary failures open it, the cooldown later it admits a single
// half-open probe, and that probe's outcome closes or re-opens it.
// The clock is injectable for tests. Safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	// onTransition observes every state change (for metrics/reports);
	// called with the breaker's own mutex held — must not re-enter.
	onTransition func(from, to State)

	mu          sync.Mutex
	state       State
	consecutive int
	openedAt    time.Time
	probing     bool
}

// NewBreaker builds a breaker opening after threshold consecutive
// failures and cooling down for cooldown before half-open probing.
// now and onTransition may be nil.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time, onTransition func(from, to State)) *Breaker {
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now, onTransition: onTransition}
}

func (b *Breaker) transition(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// Allow reports whether an attempt may proceed: nil when closed, nil
// for the single half-open probe after the cooldown, ErrOpen otherwise.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.transition(HalfOpen)
			b.probing = true
			return nil
		}
		return ErrOpen
	default: // HalfOpen
		if b.probing {
			return ErrOpen
		}
		b.probing = true
		return nil
	}
}

// Success records a successful primary attempt: it closes a half-open
// breaker and resets the consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.consecutive = 0
	b.probing = false
	if b.state != Closed {
		b.transition(Closed)
	}
	b.mu.Unlock()
}

// Failure records a failed primary attempt: it re-opens a half-open
// breaker immediately and opens a closed one at the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	switch b.state {
	case HalfOpen:
		b.probing = false
		b.openedAt = b.now()
		b.transition(Open)
	case Closed:
		b.consecutive++
		if b.threshold > 0 && b.consecutive >= b.threshold {
			b.openedAt = b.now()
			b.transition(Open)
		}
	}
	b.mu.Unlock()
}

// State returns the breaker's current state (an Open breaker past its
// cooldown still reports Open until the next Allow probes it).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Consecutive returns the current consecutive primary-failure count.
func (b *Breaker) Consecutive() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consecutive
}
