package retry

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"sync"
	"time"

	"fxdist/internal/engine"
	"fxdist/internal/obs"
)

// Controller is one backend's resilience brain: it owns the per-device
// circuit breakers, the seeded backoff, the fxdist_resilience_*
// instruments, and builds the engine policy chain and hedger. One
// controller exists per backend label at a time (NewController
// replaces); every cluster handle of that backend shares it.
type Controller struct {
	backend string
	cfg     Config
	now     func() time.Time
	bo      *backoff

	mu       sync.Mutex
	breakers map[int]*Breaker
	stateG   map[int]*obs.Gauge
	// accumulated report state (counters are mirrored into obs)
	retries, rejected uint64
	hedges, hedgeWins uint64
	partials          uint64
	lastCoverage      float64
	transitions       map[string]uint64

	mRetries   *obs.Counter
	mRejected  *obs.Counter
	mHedges    *obs.Counter
	mHedgeWins *obs.Counter
	mPartials  *obs.Counter
	mCoverage  *obs.Gauge
	mTransTo   map[State]*obs.Counter
}

// NewController builds (and registers) the controller for one backend
// label. The config is normalized; the obs instruments are idempotent
// by name+label, so rebuilding a backend's controller keeps its metric
// continuity.
func NewController(backend string, cfg Config) *Controller {
	cfg = cfg.Normalize()
	r := obs.Default()
	bl := obs.L("backend", backend)
	c := &Controller{
		backend:     backend,
		cfg:         cfg,
		now:         time.Now,
		bo:          newBackoff(cfg.BackoffBase, cfg.BackoffMax, cfg.Seed),
		breakers:    make(map[int]*Breaker),
		stateG:      make(map[int]*obs.Gauge),
		transitions: make(map[string]uint64),
		mRetries: r.Counter("fxdist_resilience_retries_total",
			"Device attempts re-run by the retry budget after a failure.", bl),
		mRejected: r.Counter("fxdist_resilience_rejected_total",
			"Device attempts vetoed by an open circuit breaker.", bl),
		mHedges: r.Counter("fxdist_resilience_hedges_total",
			"Backup requests launched against slow primary devices.", bl),
		mHedgeWins: r.Counter("fxdist_resilience_hedge_wins_total",
			"Hedged backup requests that beat their primary.", bl),
		mPartials: r.Counter("fxdist_resilience_partial_results_total",
			"Retrievals served degraded: some devices failed, the rest answered.", bl),
		mCoverage: r.Gauge("fxdist_resilience_coverage_fraction",
			"Fraction of |R(q)| covered by the most recent degraded retrieval.", bl),
		mTransTo: map[State]*obs.Counter{
			Closed: r.Counter("fxdist_resilience_breaker_transitions_total",
				"Circuit breaker state transitions, by destination state.", bl, obs.L("to", "closed")),
			HalfOpen: r.Counter("fxdist_resilience_breaker_transitions_total",
				"Circuit breaker state transitions, by destination state.", bl, obs.L("to", "half-open")),
			Open: r.Counter("fxdist_resilience_breaker_transitions_total",
				"Circuit breaker state transitions, by destination state.", bl, obs.L("to", "open")),
		},
	}
	register(c)
	return c
}

// SetClock injects the time source for the breakers' cooldown checks
// (tests); it must be called before any breaker exists.
func (c *Controller) SetClock(now func() time.Time) { c.now = now }

// Backend returns the backend label.
func (c *Controller) Backend() string { return c.backend }

// Config returns the normalized configuration.
func (c *Controller) Config() Config { return c.cfg }

// breaker returns dev's circuit breaker, creating it on first use;
// nil when breakers are disabled.
func (c *Controller) breaker(dev int) *Breaker {
	if c.cfg.BreakerFailures <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[dev]
	if b == nil {
		g := obs.Default().Gauge("fxdist_resilience_breaker_state",
			"Circuit breaker state per device: 0 closed, 1 half-open, 2 open.",
			obs.L("backend", c.backend), obs.L("device", strconv.Itoa(dev)))
		c.stateG[dev] = g
		b = NewBreaker(c.cfg.BreakerFailures, c.cfg.BreakerCooldown, c.now, func(from, to State) {
			g.Set(float64(int(to)))
			c.mTransTo[to].Inc()
			c.mu.Lock()
			c.transitions[to.String()]++
			c.mu.Unlock()
		})
		c.breakers[dev] = b
	}
	return b
}

// Lock order: breaker mutex → controller mutex (the transition
// callback). The controller never calls into a breaker while holding
// its own mutex — Report snapshots the breaker list under the lock and
// reads states after releasing it.

// Probe runs fn as a health probe for dev's breaker: vetoed while the
// breaker is cooling down, otherwise the outcome feeds the breaker like
// a primary attempt (a successful probe closes a half-open breaker —
// the coordinator's health prober drives recovery through here).
func (c *Controller) Probe(dev int, fn func() error) {
	b := c.breaker(dev)
	if b == nil {
		fn() //nolint:errcheck // nothing to record the outcome against
		return
	}
	if b.Allow() != nil {
		return
	}
	if err := fn(); err != nil {
		b.Failure()
	} else {
		b.Success()
	}
}

// OnPartial records one degraded retrieval (the engine's OnPartial
// hook).
func (c *Controller) OnPartial(coverage float64, failed []int) {
	c.mPartials.Inc()
	c.mCoverage.Set(coverage)
	c.mu.Lock()
	c.partials++
	c.lastCoverage = coverage
	c.mu.Unlock()
}

// Resilience assembles the engine-facing bundle: the policy chain
// (breaker → reroute → budget, so reroutes beat backoff), the hedger
// (when enabled and backup is non-nil), and the degraded mode. reroute
// and backup may be nil.
func (c *Controller) Resilience(reroute func(ctx context.Context, dev int, err error) engine.Device, backup func(dev int) engine.Device) engine.Resilience {
	policies := []engine.Policy{&breakerPolicy{c: c}}
	if reroute != nil {
		policies = append(policies, &reroutePolicy{reroute: reroute})
	}
	policies = append(policies, &budgetPolicy{c: c})
	res := engine.Resilience{
		Policies:  policies,
		Partial:   c.cfg.Partial,
		OnPartial: c.OnPartial,
	}
	if c.cfg.Hedge && backup != nil {
		res.Hedger = c.newHedger(backup)
	}
	return res
}

// breakerPolicy gates first attempts on the device's circuit breaker
// and feeds primary outcomes back into it. It never asks for a retry
// itself.
type breakerPolicy struct{ c *Controller }

func (p *breakerPolicy) Allow(ctx context.Context, dev int) error {
	b := p.c.breaker(dev)
	if b == nil {
		return nil
	}
	if err := b.Allow(); err != nil {
		p.c.mRejected.Inc()
		p.c.mu.Lock()
		p.c.rejected++
		p.c.mu.Unlock()
		return err
	}
	return nil
}

func (p *breakerPolicy) Failure(ctx context.Context, at engine.Attempt) engine.Decision {
	if at.Primary && !errors.Is(at.Err, ErrOpen) {
		if b := p.c.breaker(at.Device); b != nil {
			b.Failure()
		}
	}
	return engine.Decision{}
}

func (p *breakerPolicy) Success(dev int, primary bool, elapsed time.Duration) {
	if !primary {
		return
	}
	if b := p.c.breaker(dev); b != nil {
		b.Success()
	}
}

// reroutePolicy adapts a backend's failover routing (e.g. the netdist
// ring-successor answerAs impersonation) into the chain: the first
// failure of a slot's primary device — including a breaker veto — is
// immediately re-asked on the backup, with no backoff.
type reroutePolicy struct {
	reroute func(ctx context.Context, dev int, err error) engine.Device
}

func (p *reroutePolicy) Allow(ctx context.Context, dev int) error { return nil }

func (p *reroutePolicy) Failure(ctx context.Context, at engine.Attempt) engine.Decision {
	if !at.Primary {
		return engine.Decision{}
	}
	if alt := p.reroute(ctx, at.Device, at.Err); alt != nil {
		return engine.Decision{Retry: true, Device: alt}
	}
	return engine.Decision{}
}

func (p *reroutePolicy) Success(dev int, primary bool, elapsed time.Duration) {}

// budgetPolicy is the deadline-aware retry budget: same-device retries
// with full-jitter exponential backoff, honoring server Cooldown hints,
// stopping at MaxAttempts, on context errors, on breaker vetoes, and
// when the backoff would outlive the caller's deadline.
type budgetPolicy struct{ c *Controller }

func (p *budgetPolicy) Allow(ctx context.Context, dev int) error { return nil }

func (p *budgetPolicy) Failure(ctx context.Context, at engine.Attempt) engine.Decision {
	if at.N >= p.c.cfg.MaxAttempts {
		return engine.Decision{}
	}
	if errors.Is(at.Err, ErrOpen) || errors.Is(at.Err, context.Canceled) || errors.Is(at.Err, context.DeadlineExceeded) {
		return engine.Decision{}
	}
	delay := p.c.bo.delay(at.N)
	var cd *Cooldown
	if errors.As(at.Err, &cd) && cd.After > delay {
		delay = cd.After
	}
	if dl, ok := ctx.Deadline(); ok && p.c.now().Add(delay).After(dl) {
		return engine.Decision{}
	}
	p.c.mRetries.Inc()
	p.c.mu.Lock()
	p.c.retries++
	p.c.mu.Unlock()
	return engine.Decision{Retry: true, Delay: delay}
}

func (p *budgetPolicy) Success(dev int, primary bool, elapsed time.Duration) {}

// BreakerReport is one device's breaker state in a Report.
type BreakerReport struct {
	Device      int    `json:"device"`
	State       string `json:"state"`
	Consecutive int    `json:"consecutive_failures"`
}

// Report is one backend's resilience snapshot — the /debug/resilience
// payload alongside the fault injector reports.
type Report struct {
	Backend      string            `json:"backend"`
	MaxAttempts  int               `json:"max_attempts"`
	Retries      uint64            `json:"retries"`
	Rejected     uint64            `json:"rejected"`
	Hedges       uint64            `json:"hedges"`
	HedgeWins    uint64            `json:"hedge_wins"`
	Partials     uint64            `json:"partial_results"`
	LastCoverage float64           `json:"last_coverage,omitempty"`
	Transitions  map[string]uint64 `json:"breaker_transitions,omitempty"`
	Breakers     []BreakerReport   `json:"breakers,omitempty"`
}

// Report snapshots the controller.
func (c *Controller) Report() Report {
	c.mu.Lock()
	rep := Report{
		Backend:      c.backend,
		MaxAttempts:  c.cfg.MaxAttempts,
		Retries:      c.retries,
		Rejected:     c.rejected,
		Hedges:       c.hedges,
		HedgeWins:    c.hedgeWins,
		Partials:     c.partials,
		LastCoverage: c.lastCoverage,
	}
	if len(c.transitions) > 0 {
		rep.Transitions = make(map[string]uint64, len(c.transitions))
		for k, v := range c.transitions {
			rep.Transitions[k] = v
		}
	}
	devs := make([]int, 0, len(c.breakers))
	for dev := range c.breakers {
		devs = append(devs, dev)
	}
	breakers := make([]*Breaker, len(devs))
	sort.Ints(devs)
	for i, dev := range devs {
		breakers[i] = c.breakers[dev]
	}
	c.mu.Unlock()
	// Breaker state reads take each breaker's own lock; done outside
	// the controller lock to keep the order breaker→controller only.
	for i, b := range breakers {
		rep.Breakers = append(rep.Breakers, BreakerReport{
			Device:      devs[i],
			State:       b.State().String(),
			Consecutive: b.Consecutive(),
		})
	}
	return rep
}

// Process-wide controller registry, one per backend label, latest wins
// (a re-Open with new options replaces the old controller; the obs
// instruments persist across replacements).
var (
	regMu       sync.Mutex
	controllers = make(map[string]*Controller)
)

func register(c *Controller) {
	regMu.Lock()
	controllers[c.backend] = c
	regMu.Unlock()
}

// ReportAll snapshots every registered controller, sorted by backend.
func ReportAll() []Report {
	regMu.Lock()
	all := make([]*Controller, 0, len(controllers))
	for _, c := range controllers {
		all = append(all, c)
	}
	regMu.Unlock()
	out := make([]Report, 0, len(all))
	for _, c := range all {
		out = append(out, c.Report())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Backend < out[j].Backend })
	return out
}

// For returns the registered controller for a backend, nil if none.
func For(backend string) *Controller {
	regMu.Lock()
	defer regMu.Unlock()
	return controllers[backend]
}
