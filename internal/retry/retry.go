// Package retry is the adaptive retry layer behind the engine's
// composable policy chain: exponential backoff with full jitter,
// per-device circuit breakers with half-open probing, deadline-aware
// retry budgets, and hedged requests against a backup device once a
// device's p99 breaches its peers'. One Controller exists per backend;
// it owns the breakers and the fxdist_resilience_* metrics, renders on
// /debug/resilience (via internal/resilience), and hands the engine a
// ready-made policy chain through Resilience.
//
// The FX distribution makes every device load-bearing for every query —
// the paper's evenness guarantee means a single slow or dead device
// gates the whole retrieval — so this layer is what keeps tail latency
// and availability intact when devices misbehave.
package retry

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Config tunes one backend's resilience behaviour. The zero value gets
// sensible defaults from Normalize; tests inject small thresholds.
type Config struct {
	// MaxAttempts bounds attempts per device slot per retrieval,
	// replacements included (default 3; 1 disables retries).
	MaxAttempts int
	// BackoffBase is the cap of the first backoff interval; attempt n
	// sleeps a full-jitter duration in [0, min(BackoffMax,
	// BackoffBase<<(n-1))] (default 2ms).
	BackoffBase time.Duration
	// BackoffMax caps the backoff interval (default 250ms).
	BackoffMax time.Duration
	// Seed seeds the jitter and any other randomness; a fixed seed makes
	// retry schedules reproducible (default 1).
	Seed int64
	// BreakerFailures is the consecutive primary-failure count that
	// opens a device's circuit breaker; <= 0 disables breakers.
	BreakerFailures int
	// BreakerCooldown is how long an open breaker rejects attempts
	// before letting one half-open probe through (default 2s).
	BreakerCooldown time.Duration
	// Hedge enables hedged requests (needs a backup device source).
	Hedge bool
	// HedgeMin floors the hedge delay so healthy jitter never triggers
	// an immediate double-send (default 1ms).
	HedgeMin time.Duration
	// HedgeObservations is the per-device latency samples required
	// before hedging can arm (default 8).
	HedgeObservations int
	// Partial enables graceful degradation: partial results with an
	// error manifest instead of all-or-nothing failures.
	Partial bool
}

// Normalize fills zero fields with the defaults.
func (c Config) Normalize() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 2 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = time.Millisecond
	}
	if c.HedgeObservations <= 0 {
		c.HedgeObservations = 8
	}
	return c
}

// Cooldown is an error carrying a server's load-shedding hint: the
// sender is overloaded and asks not to be re-contacted for After (the
// wire protocol's Retry-After). The budget policy honors After as the
// minimum backoff before the next attempt. Match with errors.As.
type Cooldown struct {
	After time.Duration
	Err   error
}

func (e *Cooldown) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.After)
}

func (e *Cooldown) Unwrap() error { return e.Err }

// ErrOpen marks an attempt vetoed by an open circuit breaker; match
// with errors.Is. The budget policy never retries it (the breaker would
// veto again), but a reroute policy still offers the device's backup.
var ErrOpen = errors.New("retry: circuit breaker open")

// backoff computes the full-jitter exponential backoff for attempt n
// (1-based): uniform in [0, min(max, base<<(n-1))]. Seeded and guarded
// by the controller's mutex for reproducibility.
type backoff struct {
	base, max time.Duration
	mu        sync.Mutex
	rng       *rand.Rand
}

func newBackoff(base, max time.Duration, seed int64) *backoff {
	return &backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

func (b *backoff) delay(attempt int) time.Duration {
	cap := b.base
	for i := 1; i < attempt && cap < b.max; i++ {
		cap *= 2
	}
	if cap > b.max {
		cap = b.max
	}
	b.mu.Lock()
	d := time.Duration(b.rng.Int63n(int64(cap) + 1))
	b.mu.Unlock()
	return d
}
